//===- liftc.cpp - Command-line driver for the Lift stencil compiler -------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
// A small driver exposing the pipeline on the command line:
//
//   liftc list
//   liftc show  <benchmark>
//   liftc lower <benchmark> [variant options]
//   liftc emit  <benchmark> [variant options]
//   liftc run   <benchmark> [variant options] [--extents a,b,c]
//   liftc tune  <benchmark> [--device <name>] [--large] [--jobs <n>]
//   liftc profile <benchmark> [variant options] [--extents a,b,c]
//
// Variant options: --tile <v> --local --unroll --coarsen <c>
//                  --tile-coarsen <c>
//
// Observability (every command): --trace=<file> --metrics=<file>
//                                --calibration=<file> --obs-report
//
//===----------------------------------------------------------------------===//

#include "analysis/InteriorSpec.h"
#include "analysis/RangeAnalysis.h"
#include "codegen/AccessAnalysis.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "ir/TypeInference.h"
#include "native/NativeRunner.h"
#include "native/Peaks.h"
#include "native/Profiler.h"
#include "obs/Obs.h"
#include "ocl/Emitter.h"
#include "rewrite/Exploration.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"
#include "tuner/Tuner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: liftc <command> [args]\n"
      "  list                          list available benchmarks\n"
      "  show <bench>                  print the high-level Lift IR\n"
      "  lower <bench> [variant]       print the lowered (OpenCL-level) IR\n"
      "  emit <bench> [variant]        print generated OpenCL C\n"
      "  analyze <bench> [variant]     coalescing report per access\n"
      "  run <bench> [variant] [--extents a,b,c]\n"
      "                                execute on the simulator\n"
      "  tune <bench> [--device <NvidiaK20c|AmdHd7970|MaliT628>] [--large]\n"
      "               [--jobs <n>]      search the implementation space\n"
      "  profile <bench> [variant] [--extents a,b,c] [--json <file>]\n"
      "                                per-region timers + static work\n"
      "                                counts + roofline report (native)\n"
      "variant: --tile <v> [--local] [--tile-coarsen <c>] | --coarsen <c>;"
      " plus [--unroll]\n"
      "backend (emit/run/tune): --backend <sim|native>. native emits C,\n"
      "  compiles it with the host compiler, dlopens and executes for\n"
      "  real; 'run' then reports wall-clock time (--warmup W untimed +\n"
      "  --repeats R timed executions, fastest wins; --jobs = OpenMP\n"
      "  threads), and 'tune' ranks candidates by measured seconds\n"
      "  instead of the device model\n"
      "analysis (emit/run): --specialize splits each grid loop into\n"
"  left-edge / clamp-free-interior / right-edge loops before emitting\n"
"  or running; --check-bounds statically proves every buffer access\n"
"  in bounds (prints a violation report and exits 1 otherwise; 'run'\n"
"  and --extents make the check concrete, plain 'emit' is symbolic)\n"
      "profiling: 'profile' (or --profile on run/tune with the native\n"
      "  backend) recompiles the kernel with per-region monotonic timers\n"
      "  and reports seconds, bytes, FLOPs, GB/s, GFLOP/s and arithmetic\n"
      "  intensity per loop-nest region against STREAM-style machine\n"
      "  peaks (--no-peaks skips the probe); --json <file> writes the\n"
      "  same report as JSON\n"
      "observability (any command): --trace=<file> (Chrome trace_event\n"
      "  JSON for chrome://tracing / ui.perfetto.dev), --metrics=<file>\n"
      "  (metrics + tuner flight records as JSON), --calibration=<file>\n"
      "  (modeled-vs-measured tuner calibration as JSON), --obs-report\n");
  return 1;
}

struct Args {
  std::string Command;
  std::string Bench;
  LoweringOptions Options;
  Extents ExtentsOverride;
  std::string Device = "NvidiaK20c";
  bool Large = false;
  unsigned Jobs = 1;
  std::string Backend = "sim";
  unsigned Warmup = 1;
  unsigned Repeats = 3;
  bool Specialize = false;
  bool CheckBounds = false;
  bool Profile = false;
  bool NoPeaks = false;
  std::string ProfileJson;
  obs::ObsOptions Obs;
};

bool parseArgs(int Argc, char **Argv, Args &A) {
  if (Argc < 2)
    return false;
  A.Command = Argv[1];
  int I = 2;
  if (A.Command != "list") {
    if (I >= Argc)
      return false;
    A.Bench = Argv[I++];
  }
  for (; I < Argc; ++I) {
    std::string Opt = Argv[I];
    auto NextInt = [&](std::int64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = std::atoll(Argv[++I]);
      return true;
    };
    if (obs::parseObsFlag(Argv[I], A.Obs)) {
      continue;
    } else if (Opt == "--backend" || Opt.rfind("--backend=", 0) == 0) {
      if (Opt == "--backend") {
        if (I + 1 >= Argc)
          return false;
        A.Backend = Argv[++I];
      } else {
        A.Backend = Opt.substr(std::strlen("--backend="));
      }
      if (A.Backend != "sim" && A.Backend != "native") {
        std::fprintf(stderr, "unknown backend '%s' (sim|native)\n",
                     A.Backend.c_str());
        return false;
      }
    } else if (Opt == "--warmup") {
      std::int64_t N = 0;
      if (!NextInt(N) || N < 0)
        return false;
      A.Warmup = unsigned(N);
    } else if (Opt == "--repeats") {
      std::int64_t N = 0;
      if (!NextInt(N) || N < 1)
        return false;
      A.Repeats = unsigned(N);
    } else if (Opt == "--jobs") {
      std::int64_t N = 0;
      if (!NextInt(N) || N < 0)
        return false;
      A.Jobs = unsigned(N);
    } else if (Opt == "--tile") {
      A.Options.Tile = true;
      if (!NextInt(A.Options.TileOutputs))
        return false;
    } else if (Opt == "--local") {
      A.Options.UseLocalMem = true;
    } else if (Opt == "--unroll") {
      A.Options.UnrollReduce = true;
    } else if (Opt == "--coarsen") {
      if (!NextInt(A.Options.Coarsen))
        return false;
    } else if (Opt == "--tile-coarsen") {
      if (!NextInt(A.Options.TileCoarsen))
        return false;
    } else if (Opt == "--specialize") {
      A.Specialize = true;
    } else if (Opt == "--profile") {
      A.Profile = true;
    } else if (Opt == "--no-peaks") {
      A.NoPeaks = true;
    } else if (Opt == "--json") {
      if (I + 1 >= Argc)
        return false;
      A.ProfileJson = Argv[++I];
    } else if (Opt == "--check-bounds") {
      A.CheckBounds = true;
    } else if (Opt == "--large") {
      A.Large = true;
    } else if (Opt == "--device") {
      if (I + 1 >= Argc)
        return false;
      A.Device = Argv[++I];
    } else if (Opt == "--extents") {
      if (I + 1 >= Argc)
        return false;
      std::string S = Argv[++I];
      std::size_t Pos = 0;
      while (Pos < S.size()) {
        std::size_t Comma = S.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = S.size();
        A.ExtentsOverride.push_back(
            std::atoll(S.substr(Pos, Comma - Pos).c_str()));
        Pos = Comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", Opt.c_str());
      return false;
    }
  }
  return true;
}

ocl::DeviceSpec findDevice(const std::string &Name) {
  for (const ocl::DeviceSpec &D : ocl::paperDevices())
    if (D.Name == Name)
      return D;
  std::fprintf(stderr, "unknown device %s, using NvidiaK20c\n",
               Name.c_str());
  return ocl::deviceNvidiaK20c();
}

int cmdList() {
  std::printf("%-14s %-4s %-4s %-7s %s\n", "name", "dim", "pts", "grids",
              "sizes");
  for (const Benchmark &B : allBenchmarks()) {
    std::string Sizes;
    for (std::size_t D = 0; D != B.SmallExtents.size(); ++D)
      Sizes += (D ? "x" : "") + std::to_string(B.SmallExtents[D]);
    std::printf("%-14s %-4u %-4d %-7d %s\n", B.Name.c_str(), B.Dims,
                B.Points, B.NumGrids, Sizes.c_str());
  }
  return 0;
}

ir::Program lowerOrDie(const Benchmark &B, const BenchmarkInstance &I,
                       const LoweringOptions &O) {
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  if (!Low) {
    std::fprintf(stderr,
                 "error: options '%s' do not apply to benchmark %s: %s\n",
                 O.describe().c_str(), B.Name.c_str(), WhyNot.c_str());
    std::exit(1);
  }
  return Low;
}

/// Applies --specialize and --check-bounds to a compiled kernel, in
/// that order (the check sees what will actually run). Returns false —
/// with the violation report already printed — when the bounds check
/// cannot discharge every access; \p Sizes null means a fully symbolic
/// check.
bool applyAnalysis(const Args &A, Compiled &C,
                   const std::unordered_map<unsigned, std::int64_t> *Sizes) {
  if (A.Specialize) {
    analysis::SpecStats S;
    C.K = analysis::specializeInterior(C.K, &S);
    std::fprintf(stderr,
                 "specialize: split %u grid loop%s, resolved %u pad "
                 "select%s\n",
                 S.LoopsSplit, S.LoopsSplit == 1 ? "" : "s",
                 S.SelectsResolved, S.SelectsResolved == 1 ? "" : "s");
  }
  if (A.CheckBounds) {
    std::vector<analysis::BoundsViolation> V =
        analysis::checkKernelBounds(C.K, Sizes);
    if (!V.empty()) {
      std::fprintf(stderr, "%s", analysis::describeViolations(V).c_str());
      std::fprintf(stderr,
                   "check-bounds: %zu access%s not provably in bounds\n",
                   V.size(), V.size() == 1 ? "" : "es");
      return false;
    }
    std::fprintf(stderr, "check-bounds: all accesses provably in bounds\n");
  }
  return true;
}

std::string extentsString(const Extents &E) {
  std::string S;
  for (std::size_t D = 0; D != E.size(); ++D)
    S += (D ? "x" : "") + std::to_string((long long)E[D]);
  return S;
}

/// Shared core of `liftc profile` and `--profile` on run/tune:
/// recompiles \p C in profile mode, executes it, joins the region
/// timers with static work counts, validates against the golden
/// implementation and renders the roofline report (text to stdout,
/// JSON to --json when given, Chrome-trace spans into --trace).
int profileCompiled(const Args &A, const Benchmark &B,
                    const BenchmarkInstance &I, const ir::Program &Low,
                    const Compiled &C, const Extents &E,
                    const std::vector<std::vector<float>> &Inputs,
                    const std::string &Variant) {
  native::ProfiledKernelRun Run;
  try {
    native::probeToolchain();
    std::size_t Hash = ir::structuralHash(Low);
    if (A.Specialize)
      Hash ^= 0xA5A5A5A5A5A5A5A5ULL;
    native::MachinePeaks Peaks;
    const native::MachinePeaks *PeaksPtr = nullptr;
    if (!A.NoPeaks) {
      Peaks = native::probeMachinePeaks();
      PeaksPtr = &Peaks;
    }
    Run = native::profileKernel(C, Hash, Inputs, makeSizeEnv(I, E),
                                A.Warmup, A.Repeats, {}, PeaksPtr);
  } catch (const native::NativeError &Ex) {
    std::fprintf(stderr, "error: profiling failed: %s\n", Ex.what());
    return 1;
  }
  Run.P.Variant = Variant;
  Run.P.Grid = extentsString(E);

  std::vector<float> Want = B.Golden(Inputs, E);
  double MaxErr = 0;
  for (std::size_t X = 0; X != Want.size(); ++X)
    MaxErr = std::max(MaxErr, double(std::abs(Run.Output[X] - Want[X])));

  std::printf("%s", Run.P.toText().c_str());
  std::printf("max |err| vs golden  %.3g\n", MaxErr);
  if (!A.ProfileJson.empty()) {
    std::FILE *F = std::fopen(A.ProfileJson.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   A.ProfileJson.c_str());
      return 1;
    }
    std::string Json = Run.P.toJsonString();
    std::fwrite(Json.data(), 1, Json.size(), F);
    std::fclose(F);
  }
  Run.P.emitTraceSpans();
  return MaxErr < 1e-3 ? 0 : 1;
}

int cmdProfile(const Args &A) {
  const Benchmark &B = findBenchmark(A.Bench);
  BenchmarkInstance I = B.Build();
  Extents E = A.ExtentsOverride.empty() ? B.MeasureExtents
                                        : A.ExtentsOverride;
  if (E.size() != B.Dims) {
    std::fprintf(stderr, "error: %s needs %u extents\n", B.Name.c_str(),
                 B.Dims);
    return 1;
  }
  // Lower at the concrete extents so the clamped tiling scheme can
  // clamp per-dimension tiles to short extents.
  rewrite::LoweringOptions LO = A.Options;
  LO.OutputExtents.assign(E.begin(), E.end());
  ir::Program Low = lowerOrDie(B, I, LO);
  Compiled C = compileProgram(Low, B.Name);
  auto Env = makeSizeEnv(I, E);
  if (!applyAnalysis(A, C, &Env))
    return 1;
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  return profileCompiled(A, B, I, Low, C, E, Inputs,
                         A.Options.describe());
}

/// run --backend native: compile the emitted C, execute for real and
/// report wall-clock time alongside the golden validation.
int cmdRunNative(const Args &A, const Benchmark &B,
                 const BenchmarkInstance &I, const ir::Program &Low,
                 const Compiled &C, const Extents &E,
                 const std::vector<std::vector<float>> &Inputs) {
  native::NativeRunResult R;
  try {
    // Specialized kernels get a distinct cache identity: same lowered
    // program, different C source.
    std::size_t Hash = ir::structuralHash(Low);
    if (A.Specialize)
      Hash ^= 0xA5A5A5A5A5A5A5A5ULL;
    native::NativeKernelPtr Kern =
        native::KernelCache::global().getOrCompile(Hash, C.K);
    R = native::runNative(C, *Kern, Inputs, makeSizeEnv(I, E), A.Jobs,
                          A.Warmup, A.Repeats);
  } catch (const native::NativeError &Ex) {
    std::fprintf(stderr, "error: native backend failed: %s\n", Ex.what());
    return 1;
  }

  std::vector<float> Want = B.Golden(Inputs, E);
  double MaxErr = 0;
  for (std::size_t X = 0; X != Want.size(); ++X)
    MaxErr = std::max(MaxErr, double(std::abs(R.Output[X] - Want[X])));

  std::printf("variant           %s\n", A.Options.describe().c_str());
  std::printf("backend           native (%u thread%s, %u warmup + %u "
              "timed)\n",
              A.Jobs, A.Jobs == 1 ? "" : "s", A.Warmup, A.Repeats);
  std::printf("grid              ");
  for (std::size_t D = 0; D != E.size(); ++D)
    std::printf("%s%lld", D ? "x" : "", (long long)E[D]);
  std::printf(" (%lld points)\n", (long long)totalElems(E));
  std::printf("max |err| vs golden  %.3g\n", MaxErr);
  std::printf("wall time         %.3f ms (best of %u)\n", R.Seconds * 1e3,
              A.Repeats);
  std::printf("throughput        %.3f GElem/s\n",
              double(totalElems(E)) / R.Seconds / 1e9);
  int RC = MaxErr < 1e-3 ? 0 : 1;
  if (A.Profile) {
    int PRC = profileCompiled(A, B, I, Low, C, E, Inputs,
                              A.Options.describe());
    RC = RC ? RC : PRC;
  }
  return RC;
}

int cmdRun(const Args &A) {
  const Benchmark &B = findBenchmark(A.Bench);
  BenchmarkInstance I = B.Build();
  Extents E = A.ExtentsOverride.empty() ? B.MeasureExtents
                                        : A.ExtentsOverride;
  if (E.size() != B.Dims) {
    std::fprintf(stderr, "error: %s needs %u extents\n", B.Name.c_str(),
                 B.Dims);
    return 1;
  }
  // Lower at the concrete extents (see cmdProfile).
  rewrite::LoweringOptions LO = A.Options;
  LO.OutputExtents.assign(E.begin(), E.end());
  ir::Program Low = lowerOrDie(B, I, LO);
  Compiled C = compileProgram(Low, B.Name);
  auto Env = makeSizeEnv(I, E);
  if (!applyAnalysis(A, C, &Env))
    return 1;
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  if (A.Backend == "native")
    return cmdRunNative(A, B, I, Low, C, E, Inputs);
  RunResult R = runCompiled(C, Inputs, Env, ocl::CacheConfig(), A.Jobs);

  // Validate against the independent golden implementation.
  std::vector<float> Want = B.Golden(Inputs, E);
  double MaxErr = 0;
  for (std::size_t X = 0; X != Want.size(); ++X)
    MaxErr = std::max(MaxErr, double(std::abs(R.Output[X] - Want[X])));

  std::printf("variant           %s\n", A.Options.describe().c_str());
  std::printf("grid              ");
  for (std::size_t D = 0; D != E.size(); ++D)
    std::printf("%s%lld", D ? "x" : "", (long long)E[D]);
  std::printf(" (%lld points)\n", (long long)totalElems(E));
  std::printf("max |err| vs golden  %.3g\n", MaxErr);
  const ocl::ExecCounters &Ct = R.Counters;
  std::printf("global loads      %llu (line misses %llu)\n",
              (unsigned long long)Ct.GlobalLoads,
              (unsigned long long)Ct.GlobalLoadLineMisses);
  std::printf("global stores     %llu\n",
              (unsigned long long)Ct.GlobalStores);
  std::printf("local accesses    %llu\n",
              (unsigned long long)(Ct.LocalLoads + Ct.LocalStores));
  std::printf("user-fun flops    %llu\n", (unsigned long long)Ct.Flops);
  std::printf("barriers          %llu\n", (unsigned long long)Ct.Barriers);
  int RC = MaxErr < 1e-3 ? 0 : 1;
  if (A.Profile) {
    // Profiling always runs through the native backend, regardless of
    // which backend executed the validation run above.
    int PRC = profileCompiled(A, B, I, Low, C, E, Inputs,
                              A.Options.describe());
    RC = RC ? RC : PRC;
  }
  return RC;
}

int cmdTune(const Args &A) {
  const Benchmark &B = findBenchmark(A.Bench);
  ocl::DeviceSpec Dev = findDevice(A.Device);
  tuner::TuningProblem P = tuner::makeProblem(B, A.Large);

  // A bounded exploration pre-pass over the rewrite space: confirms the
  // high-level program admits rewrites and surfaces the rule engine
  // (explore span, per-rule match/apply counters) in tuning traces.
  ExplorationOptions EO;
  EO.MaxDepth = 2;
  EO.MaxPrograms = 64;
  std::vector<Derivation> Ds =
      explore(P.Instance.P, stencilExplorationRules(), EO);
  std::printf("explored %zu rewrite variants of %s (depth <= %d)\n",
              Ds.size(), B.Name.c_str(), EO.MaxDepth);

  tuner::TuneOptions TO;
  TO.Jobs = A.Jobs;
  const bool Measured = A.Backend == "native";
  if (Measured) {
    // Measured runs are serialized process-wide, so candidate-level
    // parallelism buys nothing; --jobs becomes the per-run OpenMP
    // thread count instead.
    TO.Obj = tuner::Objective::Measured;
    TO.Jobs = 1;
    TO.MeasureThreads = A.Jobs;
    TO.MeasureWarmup = A.Warmup;
    TO.MeasureRepeats = A.Repeats;
    try {
      native::probeToolchain();
    } catch (const native::NativeError &Ex) {
      std::fprintf(stderr, "error: --backend native unavailable: %s\n",
                   Ex.what());
      return 1;
    }
  }
  tuner::TuneResult R = tuner::tuneStencil(P, Dev, tuner::liftSpace(), TO);
  std::sort(R.All.begin(), R.All.end(),
            [Measured](const tuner::Evaluated &X, const tuner::Evaluated &Y) {
              return Measured
                         ? X.MeasuredGElemsPerSec > Y.MeasuredGElemsPerSec
                         : X.GElemsPerSec > Y.GElemsPerSec;
            });
  std::printf("tuning %s on %s (target ", B.Name.c_str(), Dev.Name.c_str());
  for (std::size_t D = 0; D != P.Target.size(); ++D)
    std::printf("%s%lld", D ? "x" : "", (long long)P.Target[D]);
  if (Measured) {
    std::printf(", objective: measured wall clock)\n%-30s %14s %12s\n",
                "variant", "meas GElem/s", "model GElem/s");
    for (const tuner::Evaluated &E : R.All)
      std::printf("%-30s %14.3f %12.3f%s\n", E.C.describe().c_str(),
                  E.MeasuredGElemsPerSec, E.GElemsPerSec,
                  &E == &R.All.front() ? "   <-- best" : "");
  } else {
    std::printf(")\n%-30s %12s\n", "variant", "GElem/s");
    for (const tuner::Evaluated &E : R.All)
      std::printf("%-30s %12.3f%s\n", E.C.describe().c_str(), E.GElemsPerSec,
                  &E == &R.All.front() ? "   <-- best" : "");
  }
  std::printf("pruned %llu of %zu candidates (%s), %llu memo hits\n",
              (unsigned long long)R.Prunes.total(),
              R.All.size() + std::size_t(R.Prunes.total()),
              R.Prunes.describe().c_str(),
              (unsigned long long)R.MemoHits);
  if (A.Profile && !R.All.empty()) {
    // Profile the winning candidate on the tuning target grid.
    const tuner::Candidate &Best = R.All.front().C;
    std::printf("\nprofiling best candidate %s\n", Best.describe().c_str());
    ir::Program Low = lowerOrDie(B, P.Instance, Best.Options);
    Compiled C = compileProgram(Low, B.Name);
    std::vector<std::vector<float>> Inputs =
        makeBenchmarkInputs(B, P.Target);
    return profileCompiled(A, B, P.Instance, Low, C, P.Target, Inputs,
                           Best.describe());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  if (!parseArgs(Argc, Argv, A))
    return usage();

  obs::ObsSession Session(A.Obs);
  auto Done = [&Session](int RC) {
    int ObsRC = Session.finish();
    return RC ? RC : ObsRC;
  };

  if (A.Command == "list")
    return Done(cmdList());

  if (A.Command == "show") {
    const Benchmark &B = findBenchmark(A.Bench);
    BenchmarkInstance I = B.Build();
    ir::TypePtr T = ir::inferTypes(I.P);
    std::printf("%s\n\nresult type: %s\n", ir::toString(I.P).c_str(),
                T->toString().c_str());
    return Done(0);
  }

  if (A.Command == "lower") {
    const Benchmark &B = findBenchmark(A.Bench);
    BenchmarkInstance I = B.Build();
    ir::Program Low = lowerOrDie(B, I, A.Options);
    std::printf("%s\n", ir::toString(Low).c_str());
    return Done(0);
  }

  if (A.Command == "emit") {
    const Benchmark &B = findBenchmark(A.Bench);
    BenchmarkInstance I = B.Build();
    // With --extents the emission is concrete end to end: the lowering
    // clamps per-dimension tiles to short extents and the bounds
    // checker sees the same sizes. Without it, emission is symbolic.
    rewrite::LoweringOptions LO = A.Options;
    if (!A.ExtentsOverride.empty() && A.ExtentsOverride.size() == B.Dims)
      LO.OutputExtents.assign(A.ExtentsOverride.begin(),
                              A.ExtentsOverride.end());
    ir::Program Low = lowerOrDie(B, I, LO);
    Compiled C = compileProgram(Low, B.Name);
    std::unordered_map<unsigned, std::int64_t> Env;
    const std::unordered_map<unsigned, std::int64_t> *Sizes = nullptr;
    if (!A.ExtentsOverride.empty()) {
      if (A.ExtentsOverride.size() != B.Dims) {
        std::fprintf(stderr, "error: %s needs %u extents\n",
                     B.Name.c_str(), B.Dims);
        return Done(1);
      }
      Env = makeSizeEnv(I, A.ExtentsOverride);
      Sizes = &Env;
    }
    if (!applyAnalysis(A, C, Sizes))
      return Done(1);
    if (A.Backend == "native")
      std::printf("%s", native::emitC(C.K).c_str());
    else
      std::printf("%s", ocl::emitOpenCL(C.K).c_str());
    return Done(0);
  }

  if (A.Command == "analyze") {
    const Benchmark &B = findBenchmark(A.Bench);
    BenchmarkInstance I = B.Build();
    ir::Program Low = lowerOrDie(B, I, A.Options);
    Compiled C = compileProgram(Low, B.Name);
    Extents E = A.ExtentsOverride.empty() ? B.MeasureExtents
                                          : A.ExtentsOverride;
    AccessReport R = analyzeAccesses(C.K, makeSizeEnv(I, E));
    std::printf("%-6s %-8s %-12s %8s  %s\n", "kind", "buffer", "pattern",
                "stride", "index");
    for (const AccessSite &S : R.Sites)
      std::printf("%-6s %-8s %-12s %8lld  %s\n",
                  S.IsStore ? "store" : "load", S.BufferName.c_str(),
                  accessPatternName(S.Pattern), (long long)S.Stride,
                  S.Index->toString().c_str());
    std::printf("summary: %d coalesced, %d uniform, %d strided, "
                "%d irregular, %d sequential -> %s\n",
                R.count(AccessPattern::Coalesced),
                R.count(AccessPattern::Uniform),
                R.count(AccessPattern::Strided),
                R.count(AccessPattern::Irregular),
                R.count(AccessPattern::Sequential),
                R.fullyCoalesced() ? "fully coalesced" : "NOT coalesced");
    return Done(0);
  }

  if (A.Command == "run")
    return Done(cmdRun(A));
  if (A.Command == "tune")
    return Done(cmdTune(A));
  if (A.Command == "profile")
    return Done(cmdProfile(A));

  return usage();
}
