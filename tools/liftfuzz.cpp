//===- liftfuzz.cpp - Differential fuzzing driver -------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver for the differential fuzzer (src/fuzz). Runs a
// deterministic campaign: every program is derived from --seed alone,
// so any reported mismatch is replayable with the same flags.
//
//   liftfuzz --seed 7 --count 200            # quick campaign
//   liftfuzz --seed 7 --count 300 --self-test
//
// --self-test injects a known-wrong rewrite rule (a side-swapped pad
// merge) and exits 0 only if the harness both *catches* it and
// *shrinks* it to a <= 3-primitive reproducer — the end-to-end proof
// that the oracle stack would notice a real semantics bug.
//
// Exit codes: 0 = clean campaign (or successful self-test), 1 = at
// least one mismatch (or self-test failed to catch the planted bug),
// 2 = bad usage.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "native/NativeRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/Obs.h"

using namespace lift::fuzz;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: liftfuzz [--seed S] [--count N] [--jobs J] [--artifact-dir D]\n"
      "                [--no-shrink] [--no-tiled] [--native] [--specialize]\n"
      "                [--check-bounds] [--self-test] [--quiet]\n"
      "\n"
      "Runs N seed-derived random stencil programs through the reference\n"
      "interpreter, random legal rewrite sequences, the sequential\n"
      "simulator and the parallel simulator (J jobs), requiring\n"
      "bit-identical outputs and counters everywhere. Mismatches are\n"
      "shrunk to minimal reproducers; with --artifact-dir each one is\n"
      "also written to a replayable artifact file.\n"
      "\n"
      "  --native     also compile every lowered kernel to C with the\n"
      "               host compiler, dlopen and run it, and require its\n"
      "               output to be bit-identical to the interpreter;\n"
      "               mismatch artifacts include the emitted C source\n"
      "  --specialize run every native kernel through the interior/edge\n"
      "               specializer first (implies nothing else; combine\n"
      "               with --native); outputs must stay bit-identical\n"
      "  --check-bounds\n"
      "               statically bounds-check every lowered kernel at the\n"
      "               concrete sizes; unprovable accesses are mismatches\n"
      "  --self-test  inject a deliberately broken pad-merge rewrite and\n"
      "               verify the harness catches and shrinks it\n");
}

bool parseU64(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::uint64_t Seed = 1;
  std::uint64_t Count = 100;
  std::uint64_t Jobs = 8;
  CampaignOptions O;
  bool SelfTest = false;
  bool Quiet = false;
  lift::obs::ObsOptions ObsOpts;

  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    if (lift::obs::parseObsFlag(Argv[I], ObsOpts))
      continue;
    auto Value = [&](std::uint64_t &Out) {
      if (I + 1 == Argc || !parseU64(Argv[++I], Out)) {
        std::fprintf(stderr, "liftfuzz: %s needs an integer argument\n",
                     A.c_str());
        std::exit(2);
      }
    };
    if (A == "--seed")
      Value(Seed);
    else if (A == "--count")
      Value(Count);
    else if (A == "--jobs")
      Value(Jobs);
    else if (A == "--artifact-dir") {
      if (I + 1 == Argc) {
        std::fprintf(stderr, "liftfuzz: --artifact-dir needs a path\n");
        return 2;
      }
      O.ArtifactDir = Argv[++I];
    } else if (A == "--no-shrink")
      O.Shrink = false;
    else if (A == "--no-tiled")
      O.Diff.TryTiled = false;
    else if (A == "--native")
      O.Diff.Native = true;
    else if (A == "--specialize")
      O.Diff.Specialize = true;
    else if (A == "--check-bounds")
      O.Diff.CheckBounds = true;
    else if (A == "--self-test")
      SelfTest = true;
    else if (A == "--quiet")
      Quiet = true;
    else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "liftfuzz: unknown flag '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  O.Diff.ParJobs = unsigned(Jobs);
  O.Diff.InjectBug = SelfTest;

  if (O.Diff.Native) {
    // Fail up front, with a clear message, when the machine cannot
    // compile-and-dlopen at all — that is an environment problem, not
    // a pipeline bug, and must not masquerade as N mismatches.
    try {
      lift::native::probeToolchain();
    } catch (const lift::native::NativeError &Ex) {
      std::fprintf(stderr,
                   "liftfuzz: --native unavailable: %s\n"
                   "liftfuzz: set $LIFT_NATIVE_CC or $CC to a working C "
                   "compiler and retry\n",
                   Ex.what());
      return 2;
    }
  }

  lift::obs::ObsSession ObsSession(ObsOpts);
  CampaignStats Stats = runCampaign(Seed, unsigned(Count), O);

  if (!Quiet)
  {
    std::string Extra;
    if (O.Diff.CheckBounds)
      Extra = " bounds-unproven=" + std::to_string(Stats.BoundsUnproven);
    if (O.Diff.TryTiled)
      Extra += " tiled-remainder=" + std::to_string(Stats.TiledRemainder) +
               " tiled-indivisible=" + std::to_string(Stats.TiledIndivisible);
    std::printf("liftfuzz: seed=%llu count=%llu ok=%u discarded=%u "
                "mismatches=%u skipped-rewrites=%u%s%s\n",
                (unsigned long long)Seed, (unsigned long long)Count,
                Stats.Ok, Stats.Discarded, Stats.Mismatches,
                Stats.RewriteSkips, Extra.c_str(),
                SelfTest ? " (self-test: bug injected)" : "");
  }

  for (const CampaignFailure &F : Stats.Failures) {
    std::fprintf(stderr, "\n=== mismatch (spec seed %llu) ===\n%s\n%s",
                 (unsigned long long)F.Original.Seed,
                 describeSpec(F.Original).c_str(), F.Detail.c_str());
    std::fprintf(stderr, "--- minimal reproducer (%u primitives) ---\n%s",
                 F.MinimalPrims, describeSpec(F.Minimal).c_str());
    if (!F.ArtifactPath.empty())
      std::fprintf(stderr, "artifact: %s\n", F.ArtifactPath.c_str());
  }

  if (SelfTest) {
    if (Stats.Mismatches == 0) {
      std::fprintf(stderr,
                   "liftfuzz: SELF-TEST FAILED: the planted rewrite bug "
                   "was not caught by any of %llu programs\n",
                   (unsigned long long)Count);
      return 1;
    }
    if (O.Shrink) {
      for (const CampaignFailure &F : Stats.Failures) {
        if (F.MinimalPrims == 0 || F.MinimalPrims > 3) {
          std::fprintf(stderr,
                       "liftfuzz: SELF-TEST FAILED: reproducer not shrunk "
                       "to <= 3 primitives (got %u)\n",
                       F.MinimalPrims);
          return 1;
        }
      }
    }
    if (!Quiet)
      std::printf("liftfuzz: self-test passed: planted bug caught %u "
                  "time(s) and shrunk to minimal reproducers\n",
                  Stats.Mismatches);
    return 0;
  }

  if (Stats.TiledIndivisible != 0) {
    std::fprintf(stderr,
                 "liftfuzz: %u tile(s) the picker judged legal were refused "
                 "as tile-indivisible by the lowering\n",
                 Stats.TiledIndivisible);
    return 1;
  }
  return Stats.Mismatches == 0 ? 0 : 1;
}
