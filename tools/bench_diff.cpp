//===- bench_diff.cpp - Compare two bench snapshot JSON files --------------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
// Compares two BENCH_*.json snapshots (a committed baseline and a
// fresh run) metric by metric and exits nonzero when the fresh run
// regressed past the noise threshold. The perf-smoke CI job runs the
// bench harnesses with --json and diffs against the snapshots at the
// repo root.
//
//   bench_diff <baseline.json> <current.json>
//              [--max-ratio R]   worst allowed slowdown (default 1.75x,
//                                chosen so an injected 2x trips but
//                                scheduler jitter does not)
//              [--min-ns N]      ignore ns_per_iter rows faster than N
//                                (default 1.0 ns: sub-nanosecond loops
//                                are pure noise)
//              [--min-ms M]      ignore *_ms values below M in both
//                                snapshots (default 0.02 ms)
//
// Row identity is the tuple of the row's string fields ("name" plus
// "variant"/"grid"/... when present, but never "skipped"), so
// renaming a benchmark reads as a removal. A row present in the
// baseline but missing from the current snapshot is a failure:
// silently losing coverage is the regression CI exists to catch. A
// baseline row marked "skipped" (e.g. "tile-indivisible") that the
// current run measures is the opposite -- a coverage gain -- and is
// reported as MEASURED without failing; the reverse transition fails
// like a missing row. Metric direction comes from the
// name: *_ms / ns_per_iter / *_seconds are lower-is-better,
// *_per_sec / speedup are higher-is-better, anything else
// (iterations, max_err, memo_hits, the "meta" provenance block, ...)
// is informational and skipped.
//
// Exit codes: 0 within thresholds, 1 regression or missing row,
// 2 usage / parse error.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using lift::obs::json::Value;

namespace {

struct Options {
  double MaxRatio = 1.75;
  double MinNs = 1.0;
  double MinMs = 0.02;
};

/// lower-is-better / higher-is-better / not a perf metric.
enum class Direction { Lower, Higher, Skip };

bool endsWith(const std::string &S, const char *Suffix) {
  std::size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

Direction metricDirection(const std::string &Key) {
  if (endsWith(Key, "_ms") || endsWith(Key, "_seconds") ||
      Key == "ns_per_iter")
    return Direction::Lower;
  if (endsWith(Key, "_per_sec") || Key == "speedup")
    return Direction::Higher;
  return Direction::Skip;
}

/// A value too small for the ratio test to mean anything: timer
/// granularity and scheduler jitter dominate.
bool belowNoiseFloor(const Options &O, const std::string &Key, double Base,
                     double Cur) {
  if (Key == "ns_per_iter")
    return Base < O.MinNs && Cur < O.MinNs;
  if (endsWith(Key, "_ms"))
    return Base < O.MinMs && Cur < O.MinMs;
  if (endsWith(Key, "_seconds"))
    return Base < O.MinMs * 1e-3 && Cur < O.MinMs * 1e-3;
  return false;
}

/// "name=BM_Baseline variant=global": every string field of the row,
/// in insertion order, identifies it across the two snapshots. The
/// "skipped" field is *excluded* from the identity on purpose: a row
/// that was "skipped": "tile-indivisible" in the baseline and is
/// measured in the current run is the same benchmark gaining
/// coverage, not a renamed row.
std::string rowKey(const Value &Row) {
  std::string Key;
  for (const auto &KV : Row.object())
    if (KV.second.kind() == Value::Kind::String && KV.first != "skipped")
      Key += KV.first + "=" + KV.second.asString() + " ";
  if (!Key.empty())
    Key.pop_back();
  return Key;
}

struct RowTable {
  std::string Section; ///< the array's key, e.g. "benchmarks"
  std::vector<const Value *> Rows;
};

/// Collects every top-level array-of-objects as a row table. The
/// "meta" block and scalar config fields (threads, jobs, ...) are
/// left alone by construction.
std::vector<RowTable> rowTables(const Value &Doc) {
  std::vector<RowTable> Tables;
  if (Doc.kind() != Value::Kind::Object)
    return Tables;
  for (const auto &KV : Doc.object()) {
    if (KV.second.kind() != Value::Kind::Array)
      continue;
    RowTable T;
    T.Section = KV.first;
    for (const Value &Row : KV.second.array())
      if (Row.kind() == Value::Kind::Object)
        T.Rows.push_back(&Row);
    if (!T.Rows.empty())
      Tables.push_back(std::move(T));
  }
  return Tables;
}

const Value *findRow(const RowTable &T, const std::string &Key) {
  for (const Value *Row : T.Rows)
    if (rowKey(*Row) == Key)
      return Row;
  return nullptr;
}

bool loadJson(const char *Path, Value &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", Path);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Error;
  if (!lift::obs::json::parse(SS.str(), Out, &Error)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", Path, Error.c_str());
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json>\n"
               "                  [--max-ratio R] [--min-ns N] [--min-ms M]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  Options O;
  std::vector<const char *> Paths;
  for (int I = 1; I < argc; ++I) {
    auto NextDouble = [&](double &Out) {
      if (I + 1 >= argc)
        return false;
      Out = std::atof(argv[++I]);
      return Out > 0;
    };
    if (std::strcmp(argv[I], "--max-ratio") == 0) {
      if (!NextDouble(O.MaxRatio))
        return usage();
    } else if (std::strcmp(argv[I], "--min-ns") == 0) {
      if (!NextDouble(O.MinNs))
        return usage();
    } else if (std::strcmp(argv[I], "--min-ms") == 0) {
      if (!NextDouble(O.MinMs))
        return usage();
    } else if (argv[I][0] == '-') {
      return usage();
    } else {
      Paths.push_back(argv[I]);
    }
  }
  if (Paths.size() != 2)
    return usage();

  Value Base, Cur;
  if (!loadJson(Paths[0], Base) || !loadJson(Paths[1], Cur))
    return 2;

  unsigned Compared = 0, Regressions = 0, Missing = 0, Gained = 0;
  for (const RowTable &BT : rowTables(Base)) {
    // The same section in the current snapshot, or an empty table.
    RowTable CT;
    for (RowTable &T : rowTables(Cur))
      if (T.Section == BT.Section)
        CT = std::move(T);
    for (const Value *BRow : BT.Rows) {
      std::string Key = rowKey(*BRow);
      const Value *CRow = findRow(CT, Key);
      if (!CRow) {
        std::printf("MISSING  %s/%s\n", BT.Section.c_str(), Key.c_str());
        ++Missing;
        continue;
      }
      // Skipped-row transitions: measuring a row the baseline only
      // skipped is a coverage gain (report, never fail); skipping a
      // row the baseline measured is a coverage loss (fails like a
      // missing row). Both directions have no metrics to compare.
      const Value *BSkip = BRow->find("skipped");
      const Value *CSkip = CRow->find("skipped");
      if (BSkip && !CSkip) {
        std::printf("MEASURED %s/%s (baseline skipped: %s)\n",
                    BT.Section.c_str(), Key.c_str(),
                    BSkip->kind() == Value::Kind::String
                        ? BSkip->asString().c_str()
                        : "?");
        ++Gained;
        continue;
      }
      if (!BSkip && CSkip) {
        std::printf("SKIPPED  %s/%s (now skipped: %s)\n", BT.Section.c_str(),
                    Key.c_str(),
                    CSkip->kind() == Value::Kind::String
                        ? CSkip->asString().c_str()
                        : "?");
        ++Missing;
        continue;
      }
      for (const auto &KV : BRow->object()) {
        Direction Dir = metricDirection(KV.first);
        if (Dir == Direction::Skip ||
            KV.second.kind() != Value::Kind::Number)
          continue;
        const Value *CV = CRow->find(KV.first);
        if (!CV || CV->kind() != Value::Kind::Number)
          continue;
        double B = KV.second.asNumber(), C = CV->asNumber();
        ++Compared;
        if (belowNoiseFloor(O, KV.first, B, C))
          continue;
        // Ratio of (current cost) to (baseline cost); > MaxRatio is a
        // regression in either direction convention.
        double Ratio;
        if (Dir == Direction::Lower)
          Ratio = B > 0 ? C / B : (C > 0 ? O.MaxRatio + 1 : 1);
        else
          Ratio = C > 0 ? B / C : (B > 0 ? O.MaxRatio + 1 : 1);
        if (Ratio > O.MaxRatio) {
          std::printf("REGRESSED  %s/%s %s: %.4g -> %.4g (%.2fx, limit "
                      "%.2fx)\n",
                      BT.Section.c_str(), Key.c_str(), KV.first.c_str(), B,
                      C, Ratio, O.MaxRatio);
          ++Regressions;
        }
      }
    }
  }

  if (Missing || Regressions) {
    std::printf("bench_diff: FAIL (%u regression%s, %u missing row%s, %u "
                "metric%s compared)\n",
                Regressions, Regressions == 1 ? "" : "s", Missing,
                Missing == 1 ? "" : "s", Compared, Compared == 1 ? "" : "s");
    return 1;
  }
  std::printf("bench_diff: OK (%u metric%s compared, max ratio %.2fx%s)\n",
              Compared, Compared == 1 ? "" : "s", O.MaxRatio,
              Gained ? (", " + std::to_string(Gained) + " row(s) gained "
                        "coverage")
                           .c_str()
                     : "");
  return 0;
}
