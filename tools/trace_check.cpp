//===- trace_check.cpp - Validate observability output files ---------------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
// Validates the files the --trace/--metrics flags produce, for CI and
// for quick local sanity checks:
//
//   trace_check --trace t.json [--expect-span NAME]...
//               [--expect-span-prefix PREFIX]...
//   trace_check --metrics m.json [--expect-counter NAME]...
//
// A trace file must parse as JSON, carry a "traceEvents" array, and
// every event must have the Chrome trace_event required fields (name,
// ph, pid, tid, ts; complete "X" events also dur). A metrics file must
// parse and carry the {"metrics": {...}, "tunes": [...]} document
// shape. --expect-span/--expect-counter assert that a span name
// appears among the events / a counter key exists in the dump;
// --expect-span-prefix matches any span starting with the prefix
// (profile-region spans embed the region's loop variable, e.g.
// "profile.region.glb.i0", so exact names vary by kernel).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using lift::obs::json::Value;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_check [--trace <file>] [--expect-span <name>]...\n"
               "                   [--expect-span-prefix <prefix>]...\n"
               "                   [--metrics <file>] [--expect-counter "
               "<name>]...\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool parseFile(const std::string &Path, Value &Doc) {
  std::string Text;
  if (!readFile(Path, Text))
    return false;
  std::string Err;
  if (!lift::obs::json::parse(Text, Doc, &Err)) {
    std::fprintf(stderr, "trace_check: %s: malformed JSON: %s\n",
                 Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

/// Chrome trace_event structural validation + span-name collection.
bool checkTrace(const std::string &Path,
                const std::vector<std::string> &ExpectSpans,
                const std::vector<std::string> &ExpectSpanPrefixes) {
  Value Doc;
  if (!parseFile(Path, Doc))
    return false;
  const Value *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray()) {
    std::fprintf(stderr, "trace_check: %s: no \"traceEvents\" array\n",
                 Path.c_str());
    return false;
  }
  std::vector<std::string> SpanNames;
  std::size_t Idx = 0;
  for (const Value &E : Events->array()) {
    auto Missing = [&](const char *Field) {
      std::fprintf(stderr, "trace_check: %s: event %zu missing \"%s\"\n",
                   Path.c_str(), Idx, Field);
      return false;
    };
    if (!E.isObject()) {
      std::fprintf(stderr, "trace_check: %s: event %zu is not an object\n",
                   Path.c_str(), Idx);
      return false;
    }
    const Value *Name = E.find("name");
    const Value *Ph = E.find("ph");
    if (!Name || !Name->isString())
      return Missing("name");
    if (!Ph || !Ph->isString())
      return Missing("ph");
    for (const char *Field : {"pid", "tid"}) {
      const Value *F = E.find(Field);
      if (!F || !F->isNumber())
        return Missing(Field);
    }
    if (Ph->asString() == "X") {
      for (const char *Field : {"ts", "dur"}) {
        const Value *F = E.find(Field);
        if (!F || !F->isNumber())
          return Missing(Field);
      }
      SpanNames.push_back(Name->asString());
    }
    ++Idx;
  }
  bool Ok = true;
  for (const std::string &Want : ExpectSpans) {
    bool Found = false;
    for (const std::string &Have : SpanNames)
      if (Have == Want) {
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr, "trace_check: %s: no span named \"%s\"\n",
                   Path.c_str(), Want.c_str());
      Ok = false;
    }
  }
  for (const std::string &Prefix : ExpectSpanPrefixes) {
    bool Found = false;
    for (const std::string &Have : SpanNames)
      if (Have.compare(0, Prefix.size(), Prefix) == 0) {
        Found = true;
        break;
      }
    if (!Found) {
      std::fprintf(stderr,
                   "trace_check: %s: no span with prefix \"%s\"\n",
                   Path.c_str(), Prefix.c_str());
      Ok = false;
    }
  }
  if (Ok)
    std::printf("trace_check: %s: %zu events, %zu spans, OK\n", Path.c_str(),
                Idx, SpanNames.size());
  return Ok;
}

bool checkMetrics(const std::string &Path,
                  const std::vector<std::string> &ExpectCounters) {
  Value Doc;
  if (!parseFile(Path, Doc))
    return false;
  const Value *Metrics = Doc.find("metrics");
  if (!Metrics || !Metrics->isObject()) {
    std::fprintf(stderr, "trace_check: %s: no \"metrics\" object\n",
                 Path.c_str());
    return false;
  }
  const Value *Counters = Metrics->find("counters");
  const Value *Tunes = Doc.find("tunes");
  if (!Counters || !Counters->isObject()) {
    std::fprintf(stderr, "trace_check: %s: no \"counters\" object\n",
                 Path.c_str());
    return false;
  }
  if (!Tunes || !Tunes->isArray()) {
    std::fprintf(stderr, "trace_check: %s: no \"tunes\" array\n",
                 Path.c_str());
    return false;
  }
  bool Ok = true;
  for (const std::string &Want : ExpectCounters)
    if (!Counters->find(Want)) {
      std::fprintf(stderr, "trace_check: %s: no counter \"%s\"\n",
                   Path.c_str(), Want.c_str());
      Ok = false;
    }
  if (Ok)
    std::printf("trace_check: %s: %zu counters, %zu tune sweeps, OK\n",
                Path.c_str(), Counters->object().size(),
                Tunes->array().size());
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string TracePath, MetricsPath;
  std::vector<std::string> ExpectSpans, ExpectSpanPrefixes, ExpectCounters;
  for (int I = 1; I < Argc; ++I) {
    std::string Opt = Argv[I];
    auto Next = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    std::string V;
    if (Opt == "--trace" && Next(V))
      TracePath = V;
    else if (Opt == "--metrics" && Next(V))
      MetricsPath = V;
    else if (Opt == "--expect-span" && Next(V))
      ExpectSpans.push_back(V);
    else if (Opt == "--expect-span-prefix" && Next(V))
      ExpectSpanPrefixes.push_back(V);
    else if (Opt == "--expect-counter" && Next(V))
      ExpectCounters.push_back(V);
    else
      return usage();
  }
  if (TracePath.empty() && MetricsPath.empty())
    return usage();

  bool Ok = true;
  if (!TracePath.empty())
    Ok &= checkTrace(TracePath, ExpectSpans, ExpectSpanPrefixes);
  if (!MetricsPath.empty())
    Ok &= checkMetrics(MetricsPath, ExpectCounters);
  return Ok ? 0 : 1;
}
