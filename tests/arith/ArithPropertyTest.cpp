//===- ArithPropertyTest.cpp - Randomized simplifier properties -----------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//
//
// Property tests for the interned ArithExpr simplifier: random
// expression trees are built both as a plain, unsimplified shadow tree
// and through the simplifying/interning factories, then compared under
// random variable assignments. Seeded RandomSource keeps every run
// reproducible.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"
#include "support/Support.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace lift;

namespace {

//===----------------------------------------------------------------------===//
// Shadow trees: the unsimplified reference semantics
//===----------------------------------------------------------------------===//

/// A plain expression tree mirroring the factory calls, evaluated
/// directly so simplification bugs cannot cancel out.
struct Shadow {
  enum Op { Cst, Var, Add, Sub, Mul, Div, Mod, Min, Max };
  Op K;
  std::int64_t C = 0;        // Cst payload
  std::size_t VarIdx = 0;    // Var payload: index into the variable pool
  std::unique_ptr<Shadow> L, R;
};

std::int64_t evalShadow(const Shadow &S, const std::vector<std::int64_t> &Vals) {
  switch (S.K) {
  case Shadow::Cst:
    return S.C;
  case Shadow::Var:
    return Vals[S.VarIdx];
  case Shadow::Add:
    return evalShadow(*S.L, Vals) + evalShadow(*S.R, Vals);
  case Shadow::Sub:
    return evalShadow(*S.L, Vals) - evalShadow(*S.R, Vals);
  case Shadow::Mul:
    return evalShadow(*S.L, Vals) * evalShadow(*S.R, Vals);
  case Shadow::Div:
    return floorDivInt(evalShadow(*S.L, Vals), evalShadow(*S.R, Vals));
  case Shadow::Mod:
    return floorModInt(evalShadow(*S.L, Vals), evalShadow(*S.R, Vals));
  case Shadow::Min:
    return std::min(evalShadow(*S.L, Vals), evalShadow(*S.R, Vals));
  case Shadow::Max:
    return std::max(evalShadow(*S.L, Vals), evalShadow(*S.R, Vals));
  }
  unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Random generation
//===----------------------------------------------------------------------===//

/// A pool of variables shared by every generated tree so random trees
/// can have common subexpressions (exercising the intern table).
struct VarPool {
  std::vector<AExpr> Vars;

  explicit VarPool(std::size_t N) {
    // Strictly positive ranges so any variable may appear in a divisor.
    for (std::size_t I = 0; I != N; ++I)
      Vars.push_back(var("v" + std::to_string(I), Range(1, 6)));
  }

  std::vector<std::int64_t> randomAssignment(RandomSource &Rng) const {
    std::vector<std::int64_t> Vals;
    for (const AExpr &V : Vars)
      Vals.push_back(Rng.nextInt(*V->getVarRange().Min, *V->getVarRange().Max));
    return Vals;
  }
};

/// Result of one random build: the shadow tree and the factory-built,
/// simplified and interned equivalent.
struct BuiltExpr {
  std::unique_ptr<Shadow> Ref;
  AExpr E;
};

BuiltExpr randomLeaf(RandomSource &Rng, const VarPool &Pool, bool Positive) {
  auto S = std::make_unique<Shadow>();
  if ((!Positive && Rng.nextInt(0, 2) == 0) ||
      (Positive && Rng.nextInt(0, 1) == 0)) {
    S->K = Shadow::Cst;
    S->C = Rng.nextInt(Positive ? 1 : -4, 4);
    AExpr E = cst(S->C);
    return {std::move(S), std::move(E)};
  }
  S->K = Shadow::Var;
  S->VarIdx = std::size_t(Rng.nextInt(0, std::int64_t(Pool.Vars.size()) - 1));
  AExpr E = Pool.Vars[S->VarIdx];
  return {std::move(S), std::move(E)};
}

/// Builds a random tree of the given depth. \p Positive requests a
/// subtree whose value is guaranteed strictly positive (needed for
/// divisors), which restricts it to positive leaves and Add/Mul/Min/Max
/// combinations of positive subtrees.
BuiltExpr randomTree(RandomSource &Rng, const VarPool &Pool, int Depth,
                     bool Positive) {
  if (Depth == 0)
    return randomLeaf(Rng, Pool, Positive);
  auto S = std::make_unique<Shadow>();
  if (Positive) {
    static const Shadow::Op PosOps[] = {Shadow::Add, Shadow::Mul, Shadow::Min,
                                        Shadow::Max};
    S->K = PosOps[Rng.nextInt(0, 3)];
  } else {
    static const Shadow::Op Ops[] = {Shadow::Add, Shadow::Sub, Shadow::Mul,
                                     Shadow::Div, Shadow::Mod, Shadow::Min,
                                     Shadow::Max};
    S->K = Ops[Rng.nextInt(0, 6)];
  }
  bool RightPositive = Positive || S->K == Shadow::Div || S->K == Shadow::Mod;
  BuiltExpr L = randomTree(Rng, Pool, Depth - 1, Positive);
  BuiltExpr R = randomTree(Rng, Pool, Depth - 1, RightPositive);
  AExpr E;
  switch (S->K) {
  case Shadow::Add: E = add(L.E, R.E); break;
  case Shadow::Sub: E = sub(L.E, R.E); break;
  case Shadow::Mul: E = mul(L.E, R.E); break;
  case Shadow::Div: E = floorDiv(L.E, R.E); break;
  case Shadow::Mod: E = floorMod(L.E, R.E); break;
  case Shadow::Min: E = amin(L.E, R.E); break;
  case Shadow::Max: E = amax(L.E, R.E); break;
  case Shadow::Cst:
  case Shadow::Var: unreachable("leaf op in interior node");
  }
  S->L = std::move(L.Ref);
  S->R = std::move(R.Ref);
  return {std::move(S), std::move(E)};
}

std::unordered_map<unsigned, std::int64_t>
makeEnv(const VarPool &Pool, const std::vector<std::int64_t> &Vals) {
  std::unordered_map<unsigned, std::int64_t> Env;
  for (std::size_t I = 0; I != Pool.Vars.size(); ++I)
    Env[Pool.Vars[I]->getVarId()] = Vals[I];
  return Env;
}

//===----------------------------------------------------------------------===//
// Properties
//===----------------------------------------------------------------------===//

TEST(ArithProperty, SimplifiedFormAgreesWithDirectEvaluation) {
  RandomSource Rng(0x5eed0001);
  VarPool Pool(3);
  for (int Trial = 0; Trial != 300; ++Trial) {
    BuiltExpr B = randomTree(Rng, Pool, Rng.nextInt(1, 4) == 4 ? 4 : 3,
                             /*Positive=*/false);
    for (int Assign = 0; Assign != 5; ++Assign) {
      std::vector<std::int64_t> Vals = Pool.randomAssignment(Rng);
      std::int64_t Want = evalShadow(*B.Ref, Vals);
      std::int64_t Got = B.E->evaluate(makeEnv(Pool, Vals));
      ASSERT_EQ(Got, Want) << "simplified " << B.E->toString()
                           << " disagrees with the unsimplified tree";
    }
  }
}

TEST(ArithProperty, StructuralEqualityCoincidesWithPointerEquality) {
  // Within one arena generation, exprEquals(A, B) must hold exactly
  // when A and B are the same interned node — in both directions.
  RandomSource Rng(0x5eed0002);
  VarPool Pool(2);
  std::vector<AExpr> Exprs;
  for (int Trial = 0; Trial != 120; ++Trial)
    Exprs.push_back(randomTree(Rng, Pool, 3, false).E);
  for (const AExpr &A : Exprs)
    for (const AExpr &B : Exprs) {
      ASSERT_EQ(exprEquals(A, B), A.get() == B.get())
          << A->toString() << " vs " << B->toString();
      if (A.get() == B.get()) {
        ASSERT_EQ(A->hash(), B->hash());
      }
    }
}

TEST(ArithProperty, CompareExprsConsistentWithInterning) {
  // compareExprs is the total order behind canonicalization; its zero
  // class must be exactly the interned-pointer class.
  RandomSource Rng(0x5eed0003);
  VarPool Pool(2);
  std::vector<AExpr> Exprs;
  for (int Trial = 0; Trial != 60; ++Trial)
    Exprs.push_back(randomTree(Rng, Pool, 2, false).E);
  for (const AExpr &A : Exprs)
    for (const AExpr &B : Exprs)
      ASSERT_EQ(compareExprs(A, B) == 0, A.get() == B.get());
}

TEST(ArithProperty, SubstitutionAgreesWithEvaluation) {
  // Substituting every variable by a constant must fold the expression
  // to the literal the evaluator produces.
  RandomSource Rng(0x5eed0004);
  VarPool Pool(3);
  for (int Trial = 0; Trial != 150; ++Trial) {
    BuiltExpr B = randomTree(Rng, Pool, 3, false);
    std::vector<std::int64_t> Vals = Pool.randomAssignment(Rng);
    std::unordered_map<unsigned, AExpr> Subst;
    for (std::size_t I = 0; I != Pool.Vars.size(); ++I)
      Subst[Pool.Vars[I]->getVarId()] = cst(Vals[I]);
    AExpr Folded = substitute(B.E, Subst);
    ASSERT_TRUE(Folded->isCst(B.E->evaluate(makeEnv(Pool, Vals))))
        << B.E->toString() << " substituted to " << Folded->toString();
  }
}

TEST(ArithProperty, RangeAnalysisBoundsActualValues) {
  // The memoized interval analysis must be conservative: every concrete
  // evaluation lies inside the computed range.
  RandomSource Rng(0x5eed0005);
  VarPool Pool(3);
  for (int Trial = 0; Trial != 150; ++Trial) {
    BuiltExpr B = randomTree(Rng, Pool, 3, false);
    Range R = B.E->getRange();
    for (int Assign = 0; Assign != 4; ++Assign) {
      std::vector<std::int64_t> Vals = Pool.randomAssignment(Rng);
      std::int64_t V = B.E->evaluate(makeEnv(Pool, Vals));
      if (R.Min) {
        ASSERT_LE(*R.Min, V) << B.E->toString();
      }
      if (R.Max) {
        ASSERT_GE(*R.Max, V) << B.E->toString();
      }
    }
  }
}

} // namespace
