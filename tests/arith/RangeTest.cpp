//===- RangeTest.cpp - Unit tests for interval analysis ------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"

#include <gtest/gtest.h>

using namespace lift;

namespace {

TEST(Range, ConstantIsPoint) {
  Range R = cst(5)->getRange();
  ASSERT_TRUE(R.isBounded());
  EXPECT_EQ(*R.Min, 5);
  EXPECT_EQ(*R.Max, 5);
}

TEST(Range, VarCarriesDeclaredRange) {
  AExpr I = var("i", Range(0, 9));
  Range R = I->getRange();
  EXPECT_EQ(*R.Min, 0);
  EXPECT_EQ(*R.Max, 9);
}

TEST(Range, SumOfRanges) {
  AExpr I = var("i", Range(0, 9));
  AExpr J = var("j", Range(-2, 2));
  Range R = add(I, J)->getRange();
  EXPECT_EQ(*R.Min, -2);
  EXPECT_EQ(*R.Max, 11);
}

TEST(Range, ProductOfSignedRanges) {
  AExpr I = var("i", Range(-3, 2));
  AExpr J = var("j", Range(-1, 4));
  Range R = mul(I, J)->getRange();
  EXPECT_EQ(*R.Min, -12);
  EXPECT_EQ(*R.Max, 8);
}

TEST(Range, UnboundedVar) {
  AExpr N = var("n"); // fully unknown
  Range R = add(N, cst(1))->getRange();
  EXPECT_FALSE(R.Min.has_value());
  EXPECT_FALSE(R.Max.has_value());
}

TEST(Range, NonNegativeProductLowerBound) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(2, 1 << 30));
  Range R = mul(N, M)->getRange();
  ASSERT_TRUE(R.Min.has_value());
  EXPECT_EQ(*R.Min, 2);
}

TEST(Range, DivisionByPositive) {
  AExpr I = var("i", Range(0, 100));
  Range R = floorDiv(I, cst(8))->getRange();
  EXPECT_EQ(*R.Min, 0);
  EXPECT_EQ(*R.Max, 12);
}

TEST(Range, ModuloByPositiveIsBounded) {
  AExpr I = var("i", Range(-50, 100));
  Range R = floorMod(I, cst(8))->getRange();
  EXPECT_EQ(*R.Min, 0);
  EXPECT_EQ(*R.Max, 7);
}

TEST(Range, MinMaxCombination) {
  AExpr I = var("i", Range(0, 9));
  AExpr J = var("j", Range(5, 20));
  // These fold because ranges do not decide them only when overlapping;
  // here they overlap, so nodes survive and ranges combine.
  Range RMin = amin(I, J)->getRange();
  EXPECT_EQ(*RMin.Min, 0);
  EXPECT_EQ(*RMin.Max, 9);
  Range RMax = amax(I, J)->getRange();
  EXPECT_EQ(*RMax.Min, 5);
  EXPECT_EQ(*RMax.Max, 20);
}

TEST(Range, ClampIndexRange) {
  AExpr N = var("n", Range(1, 1 << 20));
  AExpr I = var("i", Range(-5, 1 << 20));
  Range R = clampIndex(I, N)->getRange();
  ASSERT_TRUE(R.Min.has_value());
  EXPECT_EQ(*R.Min, 0);
}

} // namespace
