//===- ConcurrentInternTest.cpp - Shared-arena thread-safety stress -------===//
//
// Part of the liftcpp project.
//
// N threads build and simplify the same pseudo-random expression
// sequences against the shared hash-consing arena concurrently. The
// interning contract must hold across threads: structurally equal
// expressions are the *same node*, no matter which thread interned
// them first. Runs under the ThreadSanitizer CI job.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithCtx.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

using namespace lift;

namespace {

/// Deterministic xorshift so every thread can replay the same recipe
/// without sharing mutable generator state.
struct Rng {
  std::uint64_t S;
  explicit Rng(std::uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  std::uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
};

/// Builds one pseudo-random expression over the shared variables; the
/// same (Rng state, depth) always yields the same structure, so every
/// thread submits identical interning requests in identical order.
AExpr randomExpr(Rng &R, const std::vector<AExpr> &Vars, int Depth) {
  if (Depth == 0) {
    if (R.next() % 2)
      return Vars[R.next() % Vars.size()];
    return cst(std::int64_t(R.next() % 17));
  }
  AExpr A = randomExpr(R, Vars, Depth - 1);
  AExpr B = randomExpr(R, Vars, Depth - 1);
  switch (R.next() % 6) {
  case 0:
    return add(A, B);
  case 1:
    return sub(A, B);
  case 2:
    return mul(A, B);
  case 3: // max(B,0)+1 >= 1 keeps the divisor strictly positive
    return floorDiv(A, add(amax(B, cst(0)), cst(1)));
  case 4:
    return floorMod(A, add(amax(B, cst(0)), cst(1)));
  default:
    return amax(amin(A, B), cst(0));
  }
}

TEST(ConcurrentIntern, CrossThreadPointerIdentity) {
  // Shared free variables, created up front so every thread refers to
  // the same nodes.
  std::vector<AExpr> Vars;
  for (int I = 0; I != 4; ++I)
    Vars.push_back(var("cv" + std::to_string(I), Range(0, 1 << 20)));

  const unsigned NumThreads = 8;
  const int ExprsPerThread = 400;
  std::vector<std::vector<AExpr>> Built(NumThreads);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      // Same seed in every thread: all threads race to intern the
      // exact same structures.
      Rng R(42);
      Built[T].reserve(ExprsPerThread);
      for (int E = 0; E != ExprsPerThread; ++E) {
        AExpr X = randomExpr(R, Vars, 3);
        // Exercise the concurrent range memo too.
        (void)X->getRange();
        Built[T].push_back(X);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  // Identical recipes must have produced identical interned nodes.
  for (unsigned T = 1; T != NumThreads; ++T) {
    ASSERT_EQ(Built[T].size(), Built[0].size());
    for (int E = 0; E != ExprsPerThread; ++E) {
      EXPECT_EQ(Built[T][std::size_t(E)].get(), Built[0][std::size_t(E)].get())
          << "thread " << T << ", expr " << E;
      EXPECT_TRUE(exprEquals(Built[T][std::size_t(E)], Built[0][std::size_t(E)]));
    }
  }
}

TEST(ConcurrentIntern, DisjointThreadsKeepDistinctNodesDistinct) {
  // Per-thread seeds: threads intern mostly different structures; the
  // arena must keep them all, and rebuilding any of them afterwards
  // must hit the same node.
  std::vector<AExpr> Vars;
  for (int I = 0; I != 3; ++I)
    Vars.push_back(var("dv" + std::to_string(I), Range(0, 1000)));

  const unsigned NumThreads = 8;
  std::vector<std::vector<AExpr>> Built(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Rng R(1000 + T);
      for (int E = 0; E != 200; ++E)
        Built[T].push_back(randomExpr(R, Vars, 2));
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned T = 0; T != NumThreads; ++T) {
    Rng R(1000 + T);
    for (int E = 0; E != 200; ++E) {
      AExpr Again = randomExpr(R, Vars, 2);
      EXPECT_EQ(Again.get(), Built[T][std::size_t(E)].get());
    }
  }
}

TEST(ConcurrentIntern, StatsAggregateAcrossShards) {
  ArithCtx &Ctx = ArithCtx::global();
  std::vector<AExpr> Vars{var("sv0", Range(0, 100)), var("sv1", Range(0, 100))};
  // Force some nodes in, then reset and rebuild concurrently: the
  // aggregated stats must register activity.
  Rng Warm(7);
  for (int E = 0; E != 50; ++E)
    (void)randomExpr(Warm, Vars, 2);
  Ctx.resetStats();

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      Rng R(7);
      for (int E = 0; E != 50; ++E)
        (void)randomExpr(R, Vars, 2);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_GT(Ctx.stats().Hits, 0u);
}

} // namespace
