//===- ArithCtxTest.cpp - Hash-consing arena tests ------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithCtx.h"

#include <gtest/gtest.h>

using namespace lift;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

TEST(ArithCtx, ConstantsArePointerEqual) {
  EXPECT_EQ(cst(42).get(), cst(42).get());
  EXPECT_EQ(cst(0).get(), cst(0).get());
  EXPECT_NE(cst(1).get(), cst(2).get());
}

TEST(ArithCtx, StructurallyEqualExpressionsArePointerEqual) {
  // The central interning guarantee: building the same structure twice
  // through the factories yields the same node.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  AExpr A = add(mul(N, cst(2)), sub(M, cst(3)));
  AExpr B = add(mul(N, cst(2)), sub(M, cst(3)));
  EXPECT_EQ(A.get(), B.get());
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_EQ(A->hash(), B->hash());
}

TEST(ArithCtx, CanonicalizedFormsShareNodes) {
  // The simplifier canonicalizes before interning, so expressions that
  // simplify to the same form are the same node even when built
  // differently.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  EXPECT_EQ(add(N, M).get(), add(M, N).get());          // commutativity
  EXPECT_EQ(add(N, N).get(), mul(cst(2), N).get());     // like terms
  EXPECT_EQ(add(N, cst(0)).get(), N.get());             // identity
  EXPECT_EQ(floorDiv(mul(N, M), M).get(), N.get());     // exact division
}

TEST(ArithCtx, DistinctVariablesAreDistinctNodes) {
  // var() mints a fresh id per call; two "n"s are different variables.
  AExpr N1 = sizeVar("n");
  AExpr N2 = sizeVar("n");
  EXPECT_NE(N1.get(), N2.get());
  EXPECT_FALSE(exprEquals(N1, N2));
  EXPECT_NE(add(N1, cst(1)).get(), add(N2, cst(1)).get());
}

TEST(ArithCtx, StatsCountHitsAndMisses) {
  ArithCtx &Ctx = ArithCtx::global();
  AExpr N = sizeVar("n");
  // Force the compound node into the table, then reset and rebuild:
  // every interning probe on the second build must hit.
  AExpr First = add(N, cst(7));
  Ctx.resetStats();
  AExpr Second = add(N, cst(7));
  EXPECT_EQ(First.get(), Second.get());
  EXPECT_GT(Ctx.stats().Hits, 0u);
  EXPECT_EQ(Ctx.stats().Misses, 0u);
}

TEST(ArithCtx, EqualityStaysCorrectAcrossGenerations) {
  ArithCtx &Ctx = ArithCtx::global();
  AExpr N = sizeVar("n");
  AExpr Before = add(mul(N, N), cst(1));
  std::size_t SizeBefore = Ctx.size();
  EXPECT_GT(SizeBefore, 0u);

  Ctx.clear();
  EXPECT_EQ(Ctx.size(), 0u);

  // Handles from the old generation stay valid and usable.
  EXPECT_EQ(Before->toString(), add(mul(N, N), cst(1))->toString());

  // The same structure interned in the new generation is a different
  // node, but exprEquals still identifies it via the structural
  // fallback.
  AExpr After = add(mul(N, N), cst(1));
  EXPECT_NE(Before.get(), After.get());
  EXPECT_TRUE(exprEquals(Before, After));
  EXPECT_EQ(Before->hash(), After->hash());

  // Within the new generation, pointer equality is restored.
  EXPECT_EQ(After.get(), add(mul(N, N), cst(1)).get());
}

TEST(ArithCtx, SubstituteReturnsInternedNodes) {
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(0, 100));
  AExpr E = add(mul(N, cst(4)), I);
  std::unordered_map<unsigned, AExpr> Subst{{I->getVarId(), cst(3)}};
  AExpr Substituted = substitute(E, Subst);
  // The result is built through the factories, so it is the same node
  // as the directly constructed equivalent.
  EXPECT_EQ(Substituted.get(), add(mul(N, cst(4)), cst(3)).get());
}

TEST(ArithCtx, RangeMemoizationIsConsistent) {
  AExpr I = var("i", Range(0, 9));
  AExpr E = add(mul(I, cst(2)), cst(1));
  Range First = E->getRange();  // computes and caches
  Range Second = E->getRange(); // served from the memo
  EXPECT_EQ(First.Min, Second.Min);
  EXPECT_EQ(First.Max, Second.Max);
  ASSERT_TRUE(First.isBounded());
  EXPECT_EQ(*First.Min, 1);
  EXPECT_EQ(*First.Max, 19);
}

} // namespace
