//===- ArithExprTest.cpp - Unit tests for symbolic arithmetic ------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"

#include <gtest/gtest.h>

using namespace lift;

namespace {

// A large bound standing in for "unbounded above but known non-negative".
constexpr std::int64_t Huge = 1 << 30;

AExpr sizeVar(const char *Name) { return var(Name, Range(1, Huge)); }

TEST(ArithExpr, ConstantFolding) {
  EXPECT_TRUE(add(cst(2), cst(3))->isCst(5));
  EXPECT_TRUE(mul(cst(4), cst(-3))->isCst(-12));
  EXPECT_TRUE(sub(cst(2), cst(7))->isCst(-5));
  EXPECT_TRUE(floorDiv(cst(7), cst(2))->isCst(3));
  EXPECT_TRUE(floorDiv(cst(-7), cst(2))->isCst(-4)); // floor, not trunc
  EXPECT_TRUE(floorMod(cst(-7), cst(2))->isCst(1));  // result in [0, 2)
  EXPECT_TRUE(amin(cst(3), cst(5))->isCst(3));
  EXPECT_TRUE(amax(cst(3), cst(5))->isCst(5));
}

TEST(ArithExpr, AdditionIdentities) {
  AExpr N = sizeVar("n");
  EXPECT_TRUE(exprEquals(add(N, cst(0)), N));
  EXPECT_TRUE(exprEquals(add(cst(0), N), N));
  EXPECT_TRUE(sub(N, N)->isCst(0));
}

TEST(ArithExpr, MultiplicationIdentities) {
  AExpr N = sizeVar("n");
  EXPECT_TRUE(exprEquals(mul(N, cst(1)), N));
  EXPECT_TRUE(mul(N, cst(0))->isCst(0));
  EXPECT_TRUE(exprEquals(mul(cst(1), N), N));
}

TEST(ArithExpr, LikeTermsMerge) {
  AExpr N = sizeVar("n");
  // n + n == 2*n
  AExpr TwoN = add(N, N);
  EXPECT_TRUE(exprEquals(TwoN, mul(cst(2), N)));
  // 2n + 3n - 5n == 0
  AExpr Zero = sub(add(mul(cst(2), N), mul(cst(3), N)), mul(cst(5), N));
  EXPECT_TRUE(Zero->isCst(0));
}

TEST(ArithExpr, SumsAreCommutative) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  EXPECT_TRUE(exprEquals(add(N, M), add(M, N)));
  EXPECT_TRUE(exprEquals(mul(N, M), mul(M, N)));
}

TEST(ArithExpr, DistributesOverSums) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  // (n + 1) * m == n*m + m
  AExpr Left = mul(add(N, cst(1)), M);
  AExpr Right = add(mul(N, M), M);
  EXPECT_TRUE(exprEquals(Left, Right));
}

TEST(ArithExpr, SplitJoinSizeRoundTrips) {
  // join(split(m, in)) has size (n/m)*m. For Lift the split size m must
  // evenly divide n; the canonical Lift identity we rely on is the index
  // form: (i / m) * m + i % m == i cannot be proven without the divisibility
  // assumption, but (n * m) / m == n must fold.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  EXPECT_TRUE(exprEquals(floorDiv(mul(N, M), M), N));
}

TEST(ArithExpr, SlideOutputSize) {
  // slide(size=3, step=1) on [T]n produces (n - 3 + 1) / 1 == n - 2.
  AExpr N = sizeVar("n");
  AExpr OutSize = floorDiv(add(sub(N, cst(3)), cst(1)), cst(1));
  EXPECT_TRUE(exprEquals(OutSize, sub(N, cst(2))));
}

TEST(ArithExpr, DivisionTermSplitting) {
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(0, 3));
  // (4*n + i) / 4 == n + i/4 == n  (since i in [0,3])
  AExpr E = floorDiv(add(mul(cst(4), N), I), cst(4));
  EXPECT_TRUE(exprEquals(E, N));
}

TEST(ArithExpr, ModuloSimplification) {
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(0, 3));
  // (4*n + i) % 4 == i
  AExpr E = floorMod(add(mul(cst(4), N), I), cst(4));
  EXPECT_TRUE(exprEquals(E, I));
  // (n*m + r) % m == r % m for symbolic m
  AExpr M = sizeVar("m");
  AExpr R = var("r", Range(0, Huge));
  AExpr E2 = floorMod(add(mul(N, M), R), M);
  EXPECT_TRUE(exprEquals(E2, floorMod(R, M)));
}

TEST(ArithExpr, SymbolicDivisorSplitting) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  AExpr J = var("j", Range(0, Huge));
  // (n*m + j) / m == n + j/m
  AExpr E = floorDiv(add(mul(N, M), J), M);
  EXPECT_TRUE(exprEquals(E, add(N, floorDiv(J, M))));
}

TEST(ArithExpr, NestedDivisionCollapses) {
  AExpr N = sizeVar("n");
  // (n / 2) / 4 == n / 8
  AExpr E = floorDiv(floorDiv(N, cst(2)), cst(4));
  EXPECT_TRUE(exprEquals(E, floorDiv(N, cst(8))));
}

TEST(ArithExpr, RangeBasedDivMod) {
  AExpr I = var("i", Range(0, 7));
  EXPECT_TRUE(floorDiv(I, cst(8))->isCst(0));
  EXPECT_TRUE(exprEquals(floorMod(I, cst(8)), I));
}

TEST(ArithExpr, SelfDivision) {
  AExpr N = sizeVar("n");
  EXPECT_TRUE(floorDiv(N, N)->isCst(1));
  EXPECT_TRUE(floorMod(N, N)->isCst(0));
}

TEST(ArithExpr, MinMaxRangeDecided) {
  AExpr I = var("i", Range(0, 3));
  AExpr J = var("j", Range(10, 20));
  EXPECT_TRUE(exprEquals(amin(I, J), I));
  EXPECT_TRUE(exprEquals(amax(I, J), J));
}

TEST(ArithExpr, ClampIndexInRangeIsIdentityLike) {
  // clamp of an index that is already within [0, n-1] stays symbolic but
  // evaluates to the identity.
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(-1, Huge));
  AExpr Clamped = clampIndex(I, N);
  std::unordered_map<unsigned, std::int64_t> Env{{I->getVarId(), -1},
                                                 {N->getVarId(), 10}};
  EXPECT_EQ(Clamped->evaluate(Env), 0);
  Env[I->getVarId()] = 5;
  EXPECT_EQ(Clamped->evaluate(Env), 5);
  Env[I->getVarId()] = 42;
  EXPECT_EQ(Clamped->evaluate(Env), 9);
}

TEST(ArithExpr, EvaluateMatchesSemantics) {
  AExpr N = sizeVar("n");
  AExpr I = var("i");
  AExpr E = add(mul(N, I), floorDiv(I, cst(3)));
  std::unordered_map<unsigned, std::int64_t> Env{{N->getVarId(), 7},
                                                 {I->getVarId(), 10}};
  EXPECT_EQ(E->evaluate(Env), 7 * 10 + 10 / 3);
}

TEST(ArithExpr, SubstituteRewritesAndSimplifies) {
  AExpr N = sizeVar("n");
  AExpr I = var("i");
  AExpr E = add(mul(cst(4), N), I);
  std::unordered_map<unsigned, AExpr> Subst{{I->getVarId(), mul(cst(-4), N)}};
  EXPECT_TRUE(substitute(E, Subst)->isCst(0));
}

TEST(ArithExpr, HashConsistentWithEquality) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  AExpr A = add(mul(N, M), cst(3));
  AExpr B = add(cst(3), mul(M, N));
  ASSERT_TRUE(exprEquals(A, B));
  EXPECT_EQ(A->hash(), B->hash());
}

TEST(ArithExpr, CollectVars) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  std::vector<unsigned> Vars;
  collectVars(floorDiv(add(N, M), cst(2)), Vars);
  EXPECT_EQ(Vars.size(), 2u);
}

TEST(ArithExpr, ToStringIsStable) {
  AExpr N = sizeVar("n");
  AExpr E = add(mul(cst(2), N), cst(1));
  EXPECT_EQ(E->toString(), "(1 + (2 * n))");
}

//===----------------------------------------------------------------------===//
// Property test: simplification preserves evaluation.
//===----------------------------------------------------------------------===//

/// Builds a random expression over the given variables, returning the
/// unsimplified semantics through direct evaluation of the construction
/// recipe alongside the simplified AExpr.
struct RandomExprGen {
  RandomSource Rand;
  std::vector<AExpr> Vars;
  std::vector<std::int64_t> Values;

  explicit RandomExprGen(std::uint64_t Seed) : Rand(Seed) {
    for (int I = 0; I < 4; ++I) {
      // Keep values small and positive so products stay in range and
      // divisors are valid.
      std::int64_t V = Rand.nextInt(1, 12);
      Vars.push_back(var("v" + std::to_string(I), Range(1, 16)));
      Values.push_back(V);
    }
  }

  /// Returns (expression, ground-truth value) for a random tree.
  std::pair<AExpr, std::int64_t> gen(int Depth) {
    if (Depth == 0 || Rand.nextBool(0.3)) {
      if (Rand.nextBool(0.5)) {
        std::size_t I = Rand.nextInt(0, Vars.size() - 1);
        return {Vars[I], Values[I]};
      }
      std::int64_t C = Rand.nextInt(-8, 8);
      return {cst(C), C};
    }
    auto [A, VA] = gen(Depth - 1);
    auto [B, VB] = gen(Depth - 1);
    switch (Rand.nextInt(0, 5)) {
    case 0:
      return {add(A, B), VA + VB};
    case 1:
      return {sub(A, B), VA - VB};
    case 2:
      return {mul(A, B), VA * VB};
    case 3:
      if (VB == 0)
        return {add(A, B), VA + VB};
      return {floorDiv(A, B), floorDivInt(VA, VB)};
    case 4:
      if (VB == 0)
        return {add(A, B), VA + VB};
      return {floorMod(A, B), floorModInt(VA, VB)};
    default:
      if (Rand.nextBool())
        return {amin(A, B), std::min(VA, VB)};
      return {amax(A, B), std::max(VA, VB)};
    }
  }
};

class ArithProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArithProperty, SimplificationPreservesEvaluation) {
  RandomExprGen Gen(GetParam());
  std::unordered_map<unsigned, std::int64_t> Env;
  for (std::size_t I = 0; I < Gen.Vars.size(); ++I)
    Env[Gen.Vars[I]->getVarId()] = Gen.Values[I];

  for (int Trial = 0; Trial < 50; ++Trial) {
    // Min/max ground truth is easier to recompute than to thread through
    // the generator, so rebuild pairs here.
    auto [A, VA] = Gen.gen(3);
    auto [B, VB] = Gen.gen(3);
    EXPECT_EQ(add(A, B)->evaluate(Env), VA + VB);
    EXPECT_EQ(sub(A, B)->evaluate(Env), VA - VB);
    EXPECT_EQ(mul(A, B)->evaluate(Env), VA * VB);
    EXPECT_EQ(amin(A, B)->evaluate(Env), std::min(VA, VB));
    EXPECT_EQ(amax(A, B)->evaluate(Env), std::max(VA, VB));
    if (VB != 0) {
      EXPECT_EQ(floorDiv(A, B)->evaluate(Env), floorDivInt(VA, VB));
      EXPECT_EQ(floorMod(A, B)->evaluate(Env), floorModInt(VA, VB));
    }
    EXPECT_EQ(A->evaluate(Env), VA);
    EXPECT_EQ(B->evaluate(Env), VB);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 1234));

} // namespace
