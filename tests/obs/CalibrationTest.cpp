//===- CalibrationTest.cpp - Cost model calibration reports ----------------===//
//
// Part of the liftcpp project.
//
// The calibration layer's contract: Spearman rank correlation with
// average-rank tie handling, argmin agreement with the tuner's
// first-minimum tie-break, per-pair relative error, the JSON schema of
// calibration.json, and the flight-recorder join that produces pairs
// only from candidates evaluated under both objectives.
//
//===----------------------------------------------------------------------===//

#include "obs/Calibration.h"

#include "obs/FlightRecorder.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lift::obs;

namespace {

CalibrationPair pair(const char *Variant, double Modeled, double Measured) {
  CalibrationPair P;
  P.Variant = Variant;
  P.ModeledSeconds = Modeled;
  P.MeasuredSeconds = Measured;
  return P;
}

//===----------------------------------------------------------------------===//
// Spearman rank correlation
//===----------------------------------------------------------------------===//

TEST(Spearman, PerfectAgreementIsOne) {
  EXPECT_DOUBLE_EQ(spearmanRho({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  // Rank correlation cares about order only, not scale or linearity.
  EXPECT_DOUBLE_EQ(spearmanRho({1, 2, 3, 4}, {1, 100, 10000, 1000000}), 1.0);
}

TEST(Spearman, ReversedOrderIsMinusOne) {
  EXPECT_DOUBLE_EQ(spearmanRho({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
}

TEST(Spearman, TiesGetAverageRanks) {
  // A = (1, 2, 2, 3) -> ranks (1, 2.5, 2.5, 4); B strictly increasing.
  double Rho = spearmanRho({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(Rho, 0.9);
  EXPECT_LT(Rho, 1.0);
}

TEST(Spearman, DegenerateInputsAreDefinedAsOne) {
  EXPECT_DOUBLE_EQ(spearmanRho({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(spearmanRho({5}, {7}), 1.0);
  // Constant ranks leave the correlation undefined; report 1.0 so a
  // single-variant sweep does not read as a calibration failure.
  EXPECT_DOUBLE_EQ(spearmanRho({3, 3, 3}, {1, 2, 3}), 1.0);
}

//===----------------------------------------------------------------------===//
// calibrate(): known orderings
//===----------------------------------------------------------------------===//

TEST(Calibration, AgreeingOrderingAgreesOnArgmin) {
  CalibrationReport R = calibrate(
      "bench", {pair("a", 1.0, 10.0), pair("b", 2.0, 20.0),
                pair("c", 3.0, 30.0)});
  EXPECT_DOUBLE_EQ(R.SpearmanRho, 1.0);
  EXPECT_EQ(R.ModeledBest, "a");
  EXPECT_EQ(R.MeasuredBest, "a");
  EXPECT_TRUE(R.ArgminAgreement);
  // relative error of each pair is |m - w|/w = 0.9; the mean too.
  EXPECT_NEAR(R.MeanRelativeError, 0.9, 1e-12);
}

TEST(Calibration, ReversedOrderingDisagreesOnArgmin) {
  CalibrationReport R = calibrate(
      "bench", {pair("a", 1.0, 30.0), pair("b", 2.0, 20.0),
                pair("c", 3.0, 10.0)});
  EXPECT_DOUBLE_EQ(R.SpearmanRho, -1.0);
  EXPECT_EQ(R.ModeledBest, "a");
  EXPECT_EQ(R.MeasuredBest, "c");
  EXPECT_FALSE(R.ArgminAgreement);
}

TEST(Calibration, ArgminTieBreaksToFirstLikeTheTuner) {
  CalibrationReport R = calibrate(
      "bench", {pair("a", 2.0, 5.0), pair("b", 2.0, 5.0)});
  EXPECT_EQ(R.ModeledBest, "a");
  EXPECT_EQ(R.MeasuredBest, "a");
  EXPECT_TRUE(R.ArgminAgreement);
}

TEST(Calibration, RelativeErrorGuardsZeroMeasured) {
  EXPECT_DOUBLE_EQ(pair("x", 1.0, 0.0).relativeError(), 0.0);
  EXPECT_DOUBLE_EQ(pair("x", 3.0, 2.0).relativeError(), 0.5);
}

//===----------------------------------------------------------------------===//
// JSON schema
//===----------------------------------------------------------------------===//

TEST(Calibration, ReportJsonSchemaRoundTrips) {
  CalibrationReport R = calibrate(
      "Jacobi2D5pt", {pair("global", 0.001, 0.002),
                      pair("tiled16-local", 0.003, 0.001)});
  std::string Text = R.toJson().serialize();
  json::Value Doc;
  ASSERT_TRUE(json::parse(Text, Doc)) << Text;
  EXPECT_EQ(Doc.find("label")->asString(), "Jacobi2D5pt");
  EXPECT_EQ(Doc.find("modeled_best")->asString(), "global");
  EXPECT_EQ(Doc.find("measured_best")->asString(), "tiled16-local");
  EXPECT_FALSE(Doc.find("argmin_agreement")->asBool());
  EXPECT_DOUBLE_EQ(Doc.find("spearman_rho")->asNumber(), -1.0);
  ASSERT_NE(Doc.find("pairs"), nullptr);
  ASSERT_EQ(Doc.find("pairs")->array().size(), 2u);
  const json::Value &P0 = Doc.find("pairs")->array()[0];
  EXPECT_EQ(P0.find("variant")->asString(), "global");
  EXPECT_DOUBLE_EQ(P0.find("modeled_seconds")->asNumber(), 0.001);
  EXPECT_DOUBLE_EQ(P0.find("measured_seconds")->asNumber(), 0.002);
  EXPECT_DOUBLE_EQ(P0.find("relative_error")->asNumber(), 0.5);
}

//===----------------------------------------------------------------------===//
// Flight-recorder join
//===----------------------------------------------------------------------===//

TEST(Calibration, LogJoinSkipsCandidatesWithoutBothTimes) {
  FlightRecorder::TuneLog Log;
  Log.Label = "sweep";
  CandidateRecord A;
  A.Variant = "a";
  A.Valid = true;
  A.PredictedTime = 0.5;
  A.MeasuredTime = 1.0;
  CandidateRecord Pruned;
  Pruned.Variant = "pruned";
  Pruned.Valid = false;
  CandidateRecord ModeledOnly;
  ModeledOnly.Variant = "modeled-only";
  ModeledOnly.Valid = true;
  ModeledOnly.PredictedTime = 0.25;
  ModeledOnly.MeasuredTime = 0.0;
  Log.Records = {A, Pruned, ModeledOnly};

  CalibrationReport R = calibrateLog(Log);
  EXPECT_EQ(R.Label, "sweep");
  ASSERT_EQ(R.Pairs.size(), 1u);
  EXPECT_EQ(R.Pairs[0].Variant, "a");
  EXPECT_DOUBLE_EQ(R.Pairs[0].ModeledSeconds, 0.5);
  EXPECT_DOUBLE_EQ(R.Pairs[0].MeasuredSeconds, 1.0);
}

TEST(Calibration, TextSummaryMentionsHeadlineNumbers) {
  CalibrationReport R = calibrate(
      "bench", {pair("a", 1.0, 10.0), pair("b", 2.0, 20.0)});
  std::string Text = R.toText();
  EXPECT_NE(Text.find("bench"), std::string::npos);
  EXPECT_NE(Text.find("spearman"), std::string::npos);
}

} // namespace
