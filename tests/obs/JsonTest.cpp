//===- JsonTest.cpp - Observability JSON layer ----------------------------===//
//
// Part of the liftcpp project.
//
// The minimal JSON layer must round-trip everything the trace/metrics
// exporters emit (escapes included) and reject malformed input with a
// located error, because trace_check and the tests below rely on it to
// validate exporter output.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <gtest/gtest.h>

using namespace lift::obs::json;

namespace {

TEST(Json, EscapeCoversQuotesBackslashesAndControls) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("a\nb\tc"), "a\\nb\\tc");
  // Control characters without a short form become \u00XX.
  EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, ParsesScalars) {
  Value V;
  ASSERT_TRUE(parse("null", V));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(parse("true", V));
  EXPECT_TRUE(V.isBool());
  EXPECT_TRUE(V.asBool());
  ASSERT_TRUE(parse("false", V));
  EXPECT_FALSE(V.asBool());
  ASSERT_TRUE(parse("-12.5e2", V));
  EXPECT_TRUE(V.isNumber());
  EXPECT_DOUBLE_EQ(V.asNumber(), -1250.0);
  ASSERT_TRUE(parse("\"a\\nb\\u0041\"", V));
  EXPECT_TRUE(V.isString());
  EXPECT_EQ(V.asString(), "a\nbA");
}

TEST(Json, ParsesNestedContainers) {
  Value V;
  ASSERT_TRUE(parse("{\"xs\": [1, {\"y\": \"z\"}, []], \"n\": null}", V));
  ASSERT_TRUE(V.isObject());
  const Value *Xs = V.find("xs");
  ASSERT_NE(Xs, nullptr);
  ASSERT_TRUE(Xs->isArray());
  ASSERT_EQ(Xs->array().size(), 3u);
  EXPECT_DOUBLE_EQ(Xs->array()[0].asNumber(), 1.0);
  const Value *Y = Xs->array()[1].find("y");
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(Y->asString(), "z");
  EXPECT_TRUE(Xs->array()[2].array().empty());
  const Value *N = V.find("n");
  ASSERT_NE(N, nullptr);
  EXPECT_TRUE(N->isNull());
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(Json, FindReturnsFirstDuplicateKey) {
  Value V;
  ASSERT_TRUE(parse("{\"k\": 1, \"k\": 2}", V));
  ASSERT_NE(V.find("k"), nullptr);
  EXPECT_DOUBLE_EQ(V.find("k")->asNumber(), 1.0);
  EXPECT_EQ(V.object().size(), 2u);
}

TEST(Json, SerializeParsesBack) {
  Value Doc = Value::makeObject();
  Doc.set("name", Value::string("span \"x\"\n"));
  Doc.set("count", Value::number(42));
  Doc.set("ok", Value::boolean(true));
  Value Arr = Value::makeArray();
  Arr.push(Value::number(1.5));
  Arr.push(Value::null());
  Doc.set("xs", std::move(Arr));

  Value Back;
  ASSERT_TRUE(parse(Doc.serialize(), Back)) << Doc.serialize();
  EXPECT_EQ(Back.find("name")->asString(), "span \"x\"\n");
  EXPECT_DOUBLE_EQ(Back.find("count")->asNumber(), 42.0);
  EXPECT_TRUE(Back.find("ok")->asBool());
  ASSERT_EQ(Back.find("xs")->array().size(), 2u);
  EXPECT_TRUE(Back.find("xs")->array()[1].isNull());
}

TEST(Json, EveryControlCharacterRoundTripsThroughSerialize) {
  // One string holding all 32 control bytes plus the two escapables;
  // profile/calibration variant names are user-influenced, so the
  // writer must never emit a byte that breaks the document.
  std::string Nasty = "\"\\";
  for (char C = 1; C < 0x20; ++C)
    Nasty.push_back(C);
  Value Doc = Value::makeObject();
  Doc.set("s", Value::string(Nasty));
  Value Back;
  ASSERT_TRUE(parse(Doc.serialize(), Back)) << Doc.serialize();
  EXPECT_EQ(Back.find("s")->asString(), Nasty);
}

TEST(Json, DeeplyNestedContainersRoundTrip) {
  // [[[...{"k":[...]}...]]] 24 levels deep: the parser must not cap
  // nesting below what real profile/trace documents use, and
  // serialize/parse must be a fixed point.
  Value Leaf = Value::makeArray();
  Leaf.push(Value::number(1));
  Value Cur = std::move(Leaf);
  for (int I = 0; I != 24; ++I) {
    if (I % 2) {
      Value Obj = Value::makeObject();
      Obj.set("k", std::move(Cur));
      Cur = std::move(Obj);
    } else {
      Value Arr = Value::makeArray();
      Arr.push(std::move(Cur));
      Cur = std::move(Arr);
    }
  }
  std::string Once = Cur.serialize();
  Value Back;
  ASSERT_TRUE(parse(Once, Back));
  EXPECT_EQ(Back.serialize(), Once);
}

TEST(Json, NumberEdgeCasesSurviveRoundTrip) {
  for (double N : {0.0, -0.0, 1e-9, 6.2837996665621176e-05, 1e18}) {
    Value Doc = Value::makeArray();
    Doc.push(Value::number(N));
    Value Back;
    ASSERT_TRUE(parse(Doc.serialize(), Back)) << Doc.serialize();
    EXPECT_DOUBLE_EQ(Back.array()[0].asNumber(), N) << Doc.serialize();
  }
}

TEST(Json, RejectsMalformedInputWithError) {
  Value V;
  std::string Err;
  // Truncated object, bad literal, trailing garbage, lone comma.
  for (const char *Bad : {"{\"a\": 1", "tru", "1 2", "[1,]", "{\"a\" 1}",
                          "\"unterminated", ""}) {
    Err.clear();
    EXPECT_FALSE(parse(Bad, V, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

} // namespace
