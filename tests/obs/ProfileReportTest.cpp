//===- ProfileReportTest.cpp - Profile record reporting --------------------===//
//
// Part of the liftcpp project.
//
// obs::Profile with synthetic data (no toolchain needed): derived
// metrics (GB/s, GFLOP/s, arithmetic intensity), the text table with
// and without machine peaks, the pinned JSON schema and its round-trip
// through fromJson, and the Chrome-trace merge of profile regions.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

using namespace lift::obs;

namespace {

Profile sampleProfile() {
  Profile P;
  P.KernelName = "Jacobi2D5pt";
  P.Variant = "tiled16-local";
  P.Grid = "256x256";
  P.TotalSeconds = 2e-3;
  P.PeakGBPerSec = 20.0;
  P.PeakGFlopsPerSec = 10.0;
  ProfileRegion Fill;
  Fill.Name = "lcl.i2";
  Fill.Kind = "lcl";
  Fill.Seconds = 0.5e-3;
  Fill.Iterations = 4608;
  Fill.BytesRead = 1000000;
  ProfileRegion Compute;
  Compute.Name = "lcl.i4";
  Compute.Kind = "lcl";
  Compute.Seconds = 1.5e-3;
  Compute.Iterations = 4096;
  Compute.BytesWritten = 262144;
  Compute.Flops = 655360;
  P.Regions = {Fill, Compute};
  return P;
}

TEST(ProfileRecord, DerivedMetrics) {
  Profile P = sampleProfile();
  const ProfileRegion &Fill = P.Regions[0];
  // 1 MB in 0.5 ms = 2 GB/s.
  EXPECT_NEAR(Fill.gbPerSec(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(Fill.gflopsPerSec(), 0.0);
  EXPECT_DOUBLE_EQ(Fill.intensity(), 0.0);
  const ProfileRegion &Compute = P.Regions[1];
  EXPECT_NEAR(Compute.intensity(), 2.5, 1e-12);
  EXPECT_NEAR(Compute.gflopsPerSec(), 655360 / 1.5e-3 / 1e9, 1e-9);
  EXPECT_EQ(P.totalBytes(), 1000000u + 262144u);
  EXPECT_EQ(P.totalFlops(), 655360u);
}

TEST(ProfileRecord, UntimedRegionHasZeroRates) {
  ProfileRegion R;
  R.BytesRead = 100;
  R.Flops = 100;
  EXPECT_DOUBLE_EQ(R.gbPerSec(), 0.0);
  EXPECT_DOUBLE_EQ(R.gflopsPerSec(), 0.0);
}

TEST(ProfileRecord, TextTableCarriesRegionsAndPeaks) {
  Profile P = sampleProfile();
  std::string Text = P.toText();
  EXPECT_NE(Text.find("Jacobi2D5pt"), std::string::npos);
  EXPECT_NE(Text.find("tiled16-local"), std::string::npos);
  EXPECT_NE(Text.find("lcl.i2"), std::string::npos);
  EXPECT_NE(Text.find("lcl.i4"), std::string::npos);
  EXPECT_NE(Text.find("peak"), std::string::npos);

  // Without peaks, no roofline column.
  Profile NoPeaks = sampleProfile();
  NoPeaks.PeakGBPerSec = 0;
  NoPeaks.PeakGFlopsPerSec = 0;
  EXPECT_EQ(NoPeaks.toText().find("% of"), std::string::npos);
}

TEST(ProfileRecord, JsonSchemaRoundTrips) {
  Profile P = sampleProfile();
  json::Value Doc;
  ASSERT_TRUE(json::parse(P.toJsonString(), Doc));
  EXPECT_EQ(Doc.find("kernel")->asString(), "Jacobi2D5pt");
  EXPECT_EQ(Doc.find("variant")->asString(), "tiled16-local");
  EXPECT_EQ(Doc.find("grid")->asString(), "256x256");
  EXPECT_DOUBLE_EQ(Doc.find("total_seconds")->asNumber(), 2e-3);
  ASSERT_NE(Doc.find("regions"), nullptr);
  ASSERT_EQ(Doc.find("regions")->array().size(), 2u);
  const json::Value &R0 = Doc.find("regions")->array()[0];
  EXPECT_EQ(R0.find("name")->asString(), "lcl.i2");
  EXPECT_EQ(R0.find("kind")->asString(), "lcl");
  EXPECT_DOUBLE_EQ(R0.find("bytes_read")->asNumber(), 1000000.0);
  EXPECT_DOUBLE_EQ(R0.find("gb_per_sec")->asNumber(),
                   P.Regions[0].gbPerSec());

  Profile Back;
  ASSERT_TRUE(Profile::fromJson(Doc, Back));
  EXPECT_EQ(Back.KernelName, P.KernelName);
  EXPECT_EQ(Back.Variant, P.Variant);
  EXPECT_EQ(Back.Grid, P.Grid);
  EXPECT_DOUBLE_EQ(Back.TotalSeconds, P.TotalSeconds);
  ASSERT_EQ(Back.Regions.size(), 2u);
  EXPECT_EQ(Back.Regions[1].Name, "lcl.i4");
  EXPECT_EQ(Back.Regions[1].Flops, 655360u);
  EXPECT_EQ(Back.Regions[0].BytesRead, 1000000u);
}

TEST(ProfileRecord, FromJsonRejectsSchemaMismatch) {
  json::Value NotAProfile;
  ASSERT_TRUE(json::parse("{\"kernel\": 7}", NotAProfile));
  Profile Out;
  EXPECT_FALSE(Profile::fromJson(NotAProfile, Out));
  ASSERT_TRUE(json::parse("[1,2,3]", NotAProfile));
  EXPECT_FALSE(Profile::fromJson(NotAProfile, Out));
}

TEST(ProfileRecord, TraceSpansMergeIntoTimeline) {
  Tracer &T = Tracer::global();
  T.enable();
  sampleProfile().emitTraceSpans();
  std::string Exported = T.exportChromeJson();
  T.clear();
  json::Value Doc;
  ASSERT_TRUE(json::parse(Exported, Doc));
  bool Envelope = false, Fill = false, Compute = false;
  for (const json::Value &E : Doc.find("traceEvents")->array()) {
    const json::Value *Name = E.find("name");
    if (!Name)
      continue;
    if (Name->asString() == "profile.kernel.Jacobi2D5pt")
      Envelope = true;
    if (Name->asString() == "profile.region.lcl.i2")
      Fill = true;
    if (Name->asString() == "profile.region.lcl.i4")
      Compute = true;
  }
  EXPECT_TRUE(Envelope);
  EXPECT_TRUE(Fill);
  EXPECT_TRUE(Compute);
}

TEST(ProfileRecord, TraceSpansNoOpWhileDisabled) {
  Tracer &T = Tracer::global();
  T.clear(); // disables
  sampleProfile().emitTraceSpans();
  std::string Exported = T.exportChromeJson();
  json::Value Doc;
  ASSERT_TRUE(json::parse(Exported, Doc));
  EXPECT_TRUE(Doc.find("traceEvents")->array().empty());
}

} // namespace
