//===- ClockTest.cpp - Deterministic clock seam ----------------------------===//
//
// Part of the liftcpp project.
//
// The clock seam (obs/Clock.h) is the single time source for the
// tracer and the native runner's wall-clock measurements. These tests
// pin its two halves: the real clock is monotonic, and a test-installed
// fake produces exactly the scripted timestamps — which makes timing-
// dependent code (span durations, runner seconds) assertable to the
// nanosecond.
//
//===----------------------------------------------------------------------===//

#include "obs/Clock.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

using namespace lift::obs;

namespace {

TEST(Clock, RealClockIsMonotonic) {
  std::uint64_t Prev = monotonicNowNs();
  for (int I = 0; I != 1000; ++I) {
    std::uint64_t Now = monotonicNowNs();
    ASSERT_GE(Now, Prev);
    Prev = Now;
  }
}

TEST(Clock, FakeClockStepsDeterministically) {
  ScopedFakeClock Fake(/*StartNs=*/1000, /*StepNs=*/10);
  EXPECT_EQ(monotonicNowNs(), 1000u);
  EXPECT_EQ(monotonicNowNs(), 1010u);
  EXPECT_EQ(monotonicNowNs(), 1020u);
}

TEST(Clock, FakeClockAdvanceAndPeek) {
  ScopedFakeClock Fake(/*StartNs=*/0, /*StepNs=*/1);
  EXPECT_EQ(Fake.peek(), 0u);
  Fake.advance(500);
  EXPECT_EQ(Fake.peek(), 500u);
  EXPECT_EQ(monotonicNowNs(), 500u);
}

TEST(Clock, RealClockRestoredAfterScopeExit) {
  std::uint64_t Before = monotonicNowNs();
  {
    ScopedFakeClock Fake(/*StartNs=*/42, /*StepNs=*/1);
    EXPECT_EQ(monotonicNowNs(), 42u);
  }
  // Back on the real clock: still monotonic relative to Before, and
  // nowhere near the fake's epoch.
  EXPECT_GE(monotonicNowNs(), Before);
}

TEST(Clock, DoubleInstallIsFatal) {
  ScopedFakeClock Fake;
  EXPECT_DEATH({ ScopedFakeClock Second; }, "already installed");
}

// The tracer times spans through the seam: under a fake clock a span's
// duration is exactly the scripted step count. Span construction
// queries the clock once at open and once at close; the Chrome "ts" /
// "dur" fields are microseconds.
TEST(Clock, TracerSpansAreDeterministicUnderFakeClock) {
  Tracer &T = Tracer::global();
  ScopedFakeClock Fake(/*StartNs=*/0, /*StepNs=*/1000);
  T.enable(); // re-anchors the trace epoch on the fake clock
  {
    Span S("clock.test", "test");
  }
  std::string Exported = T.exportChromeJson();
  T.clear();
  json::Value Doc;
  ASSERT_TRUE(json::parse(Exported, Doc));
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  const json::Value *Found = nullptr;
  for (const json::Value &E : Events->array())
    if (E.find("name") && E.find("name")->asString() == "clock.test")
      Found = &E;
  ASSERT_NE(Found, nullptr);
  // Exactly one fake step between open and close: dur == 1 us.
  ASSERT_NE(Found->find("dur"), nullptr);
  EXPECT_DOUBLE_EQ(Found->find("dur")->asNumber(), 1.0);
}

} // namespace
