//===- ObsPipelineTest.cpp - End-to-end pipeline observability --------------===//
//
// Part of the liftcpp project.
//
// The observability determinism contract, end to end: a tuning sweep
// produces identical counter totals and identical flight-recorder
// records (modulo wall time and memo attribution) at jobs=1 and
// jobs=8, the metrics document has its published shape, and the span
// trace of a parallel tune nests candidate evaluations inside the
// sweep span.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "tuner/Tuner.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::obs;
using namespace lift::ocl;
using namespace lift::stencil;
using namespace lift::tuner;

namespace {

/// Same trimmed space as ParallelTunerTest: small enough to sweep in
/// milliseconds, rich enough to exercise tiling, coarsening and
/// local-memory variants.
TuningSpace trimmedSpace() {
  TuningSpace S = liftSpace();
  S.TileOutputs = {8, 16};
  S.CoarsenFactors = {1, 2};
  S.TileCoarsenFactors = {1, 4};
  S.WorkGroupSizes = {64, 128};
  return S;
}

/// The counter prefixes the tuner guarantees are schedule-independent
/// (pure sums over per-candidate work; see DESIGN.md "Observability").
const char *DeterministicPrefixes[] = {"tuner.prune.", "tuner.candidates.",
                                       "tuner.sim.", "rewrite.rule."};

struct TuneRun {
  std::map<std::string, std::uint64_t> Counters;
  std::vector<CandidateRecord> Records;
  TuneResult Result;
};

/// Note: runs comparing LoweredHash must share one TuningProblem —
/// the problem's free size variables are created fresh per
/// makeProblem() call, and the structural hash is alpha-invariant
/// only over bound variables, so hashes are comparable within a
/// problem, not across rebuilt ones.
TuneRun runInstrumentedTune(const TuningProblem &P, unsigned Jobs) {
  Registry &Reg = Registry::global();
  Reg.reset();
  FlightRecorder &FR = FlightRecorder::global();
  FR.clear();
  FR.setEnabled(true);

  DeviceSpec Dev = deviceNvidiaK20c();
  TuneOptions O;
  O.Jobs = Jobs;

  TuneRun R;
  R.Result = tuneStencil(P, Dev, trimmedSpace(), O);

  FR.setEnabled(false);
  for (const char *Prefix : DeterministicPrefixes) {
    std::map<std::string, std::uint64_t> Vals = Reg.counterValues(Prefix);
    R.Counters.insert(Vals.begin(), Vals.end());
  }
  std::vector<FlightRecorder::TuneLog> Logs = FR.logs();
  EXPECT_EQ(Logs.size(), 1u);
  if (!Logs.empty())
    R.Records = Logs.back().Records;
  FR.clear();
  return R;
}

TEST(ObsPipeline, MetricTotalsIdenticalAtJobs1And8) {
  TuningProblem P = makeProblem(findBenchmark("Jacobi2D5pt"), false);
  TuneRun R1 = runInstrumentedTune(P, 1);
  TuneRun R8 = runInstrumentedTune(P, 8);

  // Sanity: the sweep actually counted work.
  ASSERT_GT(R1.Counters["tuner.candidates.enumerated"], 0u);
  EXPECT_GT(R1.Counters["tuner.sim.flops"], 0u);

  // The deterministic counter families agree key-for-key: same names,
  // same totals, regardless of the thread schedule and the memo.
  EXPECT_EQ(R1.Counters, R8.Counters);
}

TEST(ObsPipeline, FlightRecorderCapturesEveryCandidate) {
  TuningProblem P = makeProblem(findBenchmark("Jacobi2D5pt"), false);
  TuneRun R = runInstrumentedTune(P, 2);

  ASSERT_EQ(R.Records.size(), R.Counters["tuner.candidates.enumerated"]);
  std::size_t Valid = 0;
  for (std::size_t I = 0; I != R.Records.size(); ++I) {
    const CandidateRecord &Rec = R.Records[I];
    EXPECT_EQ(Rec.Index, I); // slot == enumeration order
    EXPECT_FALSE(Rec.Variant.empty());
    if (Rec.Valid) {
      ++Valid;
      EXPECT_TRUE(Rec.PruneReason.empty());
      EXPECT_NE(Rec.LoweredHash, 0u);
      EXPECT_GT(Rec.PredictedTime, 0.0);
      EXPECT_GT(Rec.GElemsPerSec, 0.0);
    } else {
      EXPECT_FALSE(Rec.PruneReason.empty());
      EXPECT_DOUBLE_EQ(Rec.PredictedTime, 0.0);
    }
  }
  EXPECT_EQ(Valid, R.Result.All.size());
}

TEST(ObsPipeline, FlightRecordsIdenticalAcrossJobsExceptTiming) {
  TuningProblem P = makeProblem(findBenchmark("Jacobi2D5pt"), false);
  TuneRun R1 = runInstrumentedTune(P, 1);
  TuneRun R8 = runInstrumentedTune(P, 8);

  ASSERT_EQ(R1.Records.size(), R8.Records.size());
  for (std::size_t I = 0; I != R1.Records.size(); ++I) {
    const CandidateRecord &A = R1.Records[I];
    const CandidateRecord &B = R8.Records[I];
    EXPECT_EQ(A.Index, B.Index);
    EXPECT_EQ(A.Variant, B.Variant);
    EXPECT_EQ(A.LoweredHash, B.LoweredHash);
    EXPECT_DOUBLE_EQ(A.PredictedTime, B.PredictedTime);
    EXPECT_DOUBLE_EQ(A.GElemsPerSec, B.GElemsPerSec);
    EXPECT_EQ(A.PruneReason, B.PruneReason);
    EXPECT_EQ(A.Valid, B.Valid);
    // WallMicros and FromMemo are the two fields that legitimately
    // depend on the schedule (the memo only engages at jobs != 1).
  }
}

TEST(ObsPipeline, MetricsDocumentHasPublishedShape) {
  Registry::global().reset();
  FlightRecorder &FR = FlightRecorder::global();
  FR.clear();
  FR.setEnabled(true);

  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, false);
  TuneOptions O;
  O.Jobs = 2;
  TuneResult Result = tuneStencil(P, deviceNvidiaK20c(), trimmedSpace(), O);
  FR.setEnabled(false);

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(metricsDocumentJson(), Doc, &Err)) << Err;

  const json::Value *Metrics = Doc.find("metrics");
  ASSERT_NE(Metrics, nullptr);
  const json::Value *Counters = Metrics->find("counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Counters->find("tuner.candidates.enumerated"), nullptr);

  const json::Value *Tunes = Doc.find("tunes");
  ASSERT_NE(Tunes, nullptr);
  ASSERT_EQ(Tunes->array().size(), 1u);
  const json::Value &Sweep = Tunes->array()[0];
  EXPECT_EQ(Sweep.find("label")->asString(), "Jacobi2D5pt");
  const json::Value *Cands = Sweep.find("candidates");
  ASSERT_NE(Cands, nullptr);
  ASSERT_FALSE(Cands->array().empty());

  // One record per enumerated candidate, each with the full field set.
  EXPECT_EQ(double(Cands->array().size()),
            Counters->find("tuner.candidates.enumerated")->asNumber());
  std::size_t ValidInDoc = 0;
  for (const json::Value &C : Cands->array()) {
    for (const char *Key : {"index", "variant", "lowered_hash",
                            "predicted_time", "gelems_per_sec",
                            "prune_reason", "from_memo", "valid", "wall_us"})
      ASSERT_NE(C.find(Key), nullptr) << Key;
    if (C.find("valid")->asBool()) {
      ++ValidInDoc;
      EXPECT_TRUE(C.find("prune_reason")->isNull());
    } else {
      EXPECT_TRUE(C.find("prune_reason")->isString());
    }
  }
  EXPECT_EQ(ValidInDoc, Result.All.size());
  FR.clear();
}

TEST(ObsPipeline, TraceOfParallelTuneNestsCandidatesInSweep) {
  Tracer &T = Tracer::global();
  T.clear();
  Registry::global().reset();
  T.enable();

  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, false);
  TuneOptions O;
  O.Jobs = 8;
  tuneStencil(P, deviceNvidiaK20c(), trimmedSpace(), O);

  T.disable();
  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(T.exportChromeJson(), Doc, &Err)) << Err;
  const json::Value *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);

  double TuneTs = -1, TuneEnd = -1;
  std::vector<std::pair<double, double>> CandSpans;
  for (const json::Value &E : Events->array()) {
    if (E.find("ph")->asString() != "X")
      continue;
    const std::string &Name = E.find("name")->asString();
    double Ts = E.find("ts")->asNumber();
    double End = Ts + E.find("dur")->asNumber();
    if (Name == "tune") {
      TuneTs = Ts;
      TuneEnd = End;
    } else if (Name == "tuner.candidate") {
      CandSpans.emplace_back(Ts, End);
    }
  }
  ASSERT_GE(TuneTs, 0.0) << "no tune span recorded";
  std::uint64_t Enumerated =
      Registry::global().counterValues(
          "tuner.candidates.")["tuner.candidates.enumerated"];
  EXPECT_EQ(CandSpans.size(), Enumerated);
  for (const auto &CS : CandSpans) {
    EXPECT_GE(CS.first, TuneTs);
    EXPECT_LE(CS.second, TuneEnd);
  }
  T.clear();
}

} // namespace
