//===- TracerTest.cpp - Span tracer -----------------------------------------===//
//
// Part of the liftcpp project.
//
// The tracer's contract: disabled spans record nothing, enabled spans
// export as Chrome trace_event JSON that parses back (validated with
// the obs JSON parser, as trace_check does), nesting in the C++ scope
// structure is visible in the timestamps, and spans recorded from
// ThreadPool workers land on the worker's stable trace row.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>

using namespace lift;
using namespace lift::obs;

namespace {

/// Parses the tracer's export and returns the "traceEvents" array.
json::Value parsedEvents() {
  json::Value Doc;
  std::string Err;
  EXPECT_TRUE(json::parse(Tracer::global().exportChromeJson(), Doc, &Err))
      << Err;
  const json::Value *Events = Doc.find("traceEvents");
  EXPECT_NE(Events, nullptr);
  EXPECT_TRUE(Events && Events->isArray());
  return Events ? *Events : json::Value::makeArray();
}

/// First "X" event with the given name, or nullptr.
const json::Value *findSpan(const json::Value &Events,
                            const std::string &Name) {
  for (const json::Value &E : Events.array())
    if (E.find("ph")->asString() == "X" &&
        E.find("name")->asString() == Name)
      return &E;
  return nullptr;
}

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer &T = Tracer::global();
  T.clear(); // also disables
  {
    Span S("should-not-appear", "test");
    S.arg("k", std::int64_t(1));
    S.arg("s", std::string("v"));
  }
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Tracer, NestedSpansExportValidChromeJson) {
  Tracer &T = Tracer::global();
  T.enable();
  {
    Span Outer("outer", "test");
    Outer.arg("label", std::string("a \"quoted\" value"));
    {
      Span Inner("inner", "test");
      Inner.arg("n", std::int64_t(-7));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  T.disable();
  ASSERT_EQ(T.eventCount(), 2u);

  json::Value Events = parsedEvents();
  // Thread metadata for the registered main thread.
  bool MainNamed = false;
  for (const json::Value &E : Events.array())
    if (E.find("ph")->asString() == "M" &&
        E.find("args")->find("name")->asString() == "main" &&
        E.find("tid")->asNumber() == 0)
      MainNamed = true;
  EXPECT_TRUE(MainNamed);

  const json::Value *Outer = findSpan(Events, "outer");
  const json::Value *Inner = findSpan(Events, "inner");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);

  // Scope nesting shows up in the timestamps: inner starts no earlier
  // and ends no later than outer.
  double OuterTs = Outer->find("ts")->asNumber();
  double OuterEnd = OuterTs + Outer->find("dur")->asNumber();
  double InnerTs = Inner->find("ts")->asNumber();
  double InnerEnd = InnerTs + Inner->find("dur")->asNumber();
  EXPECT_GE(InnerTs, OuterTs);
  EXPECT_LE(InnerEnd, OuterEnd);

  // Args survive the escape/parse round trip.
  EXPECT_EQ(Outer->find("args")->find("label")->asString(),
            "a \"quoted\" value");
  EXPECT_DOUBLE_EQ(Inner->find("args")->find("n")->asNumber(), -7.0);
  EXPECT_EQ(Outer->find("cat")->asString(), "test");

  T.clear();
}

TEST(Tracer, PoolWorkersGetStableTraceRows) {
  Tracer &T = Tracer::global();
  T.clear();
  T.enable();

  // A private 8-worker pool (independent of the hardware size) so
  // spans really do come from concurrent background threads.
  ThreadPool Pool(8);
  ASSERT_EQ(Pool.workers(), 8u);
  Pool.parallelFor(64, [](std::size_t I) {
    Span S("work", "test");
    S.arg("item", std::int64_t(I));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  T.disable();
  json::Value Events = parsedEvents();

  std::map<double, std::string> ThreadNames; // tid -> metadata name
  std::set<double> WorkTids;
  std::set<double> Items;
  for (const json::Value &E : Events.array()) {
    const std::string &Ph = E.find("ph")->asString();
    double Tid = E.find("tid")->asNumber();
    if (Ph == "M")
      ThreadNames[Tid] = E.find("args")->find("name")->asString();
    if (Ph == "X" && E.find("name")->asString() == "work") {
      WorkTids.insert(Tid);
      Items.insert(E.find("args")->find("item")->asNumber());
    }
  }

  // Every iteration recorded exactly once, across more than one row.
  EXPECT_EQ(Items.size(), 64u);
  EXPECT_GT(WorkTids.size(), 1u);
  for (double Tid : WorkTids) {
    ASSERT_TRUE(ThreadNames.count(Tid)) << "tid " << Tid << " unnamed";
    const std::string &Name = ThreadNames[Tid];
    if (Tid == 0)
      EXPECT_EQ(Name, "main");
    else
      EXPECT_EQ(Name, "worker-" + std::to_string(unsigned(Tid)));
  }

  T.clear();
}

TEST(Tracer, ClearDropsBufferedEvents) {
  Tracer &T = Tracer::global();
  T.clear();
  T.enable();
  { Span S("ephemeral", "test"); }
  EXPECT_EQ(T.eventCount(), 1u);
  T.clear();
  EXPECT_EQ(T.eventCount(), 0u);
  EXPECT_FALSE(Tracer::enabled());
}

} // namespace
