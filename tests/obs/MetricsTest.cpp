//===- MetricsTest.cpp - Metrics registry -----------------------------------===//
//
// Part of the liftcpp project.
//
// The registry's contract: metric references are stable, dumps are
// sorted and parse as JSON, providers refresh subsystem gauges at dump
// time, and counter sums are order-independent (the property the
// jobs=1 vs jobs=8 determinism guarantee rests on).
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::obs;

namespace {

TEST(Metrics, CounterGaugeHistogramBasics) {
  Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);

  Gauge G;
  G.set(2.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
  G.set(-1);
  EXPECT_DOUBLE_EQ(G.value(), -1.0);

  Histogram H;
  EXPECT_EQ(H.snapshot().Count, 0u);
  H.observe(4);
  H.observe(1);
  H.observe(10);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_DOUBLE_EQ(S.Sum, 15.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 10.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Registry &R = Registry::global();
  Counter &A = R.counter("test.metrics.stable");
  A.inc(7);
  Counter &B = R.counter("test.metrics.stable");
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(B.value(), 7u);
  A.reset();
}

TEST(Metrics, CounterValuesFiltersByPrefixSorted) {
  Registry &R = Registry::global();
  R.counter("test.prefix.b").inc(2);
  R.counter("test.prefix.a").inc(1);
  R.counter("test.other.c").inc(3);

  std::map<std::string, std::uint64_t> Vals =
      R.counterValues("test.prefix.");
  ASSERT_EQ(Vals.size(), 2u);
  EXPECT_EQ(Vals["test.prefix.a"], 1u);
  EXPECT_EQ(Vals["test.prefix.b"], 2u);

  std::string Text = R.dumpText("test.prefix.");
  std::size_t PosA = Text.find("test.prefix.a");
  std::size_t PosB = Text.find("test.prefix.b");
  EXPECT_NE(PosA, std::string::npos);
  EXPECT_NE(PosB, std::string::npos);
  EXPECT_LT(PosA, PosB); // sorted by name

  R.counter("test.prefix.a").reset();
  R.counter("test.prefix.b").reset();
  R.counter("test.other.c").reset();
}

TEST(Metrics, DumpJsonParsesBackWithAllSections) {
  Registry &R = Registry::global();
  R.counter("test.dump.count").inc(5);
  R.gauge("test.dump.rate").set(0.5);
  R.histogram("test.dump.wall").observe(3.0);

  json::Value Doc;
  std::string Err;
  ASSERT_TRUE(json::parse(R.dumpJson(), Doc, &Err)) << Err;
  const json::Value *Counters = Doc.find("counters");
  const json::Value *Gauges = Doc.find("gauges");
  const json::Value *Hists = Doc.find("histograms");
  ASSERT_NE(Counters, nullptr);
  ASSERT_NE(Gauges, nullptr);
  ASSERT_NE(Hists, nullptr);
  ASSERT_NE(Counters->find("test.dump.count"), nullptr);
  EXPECT_DOUBLE_EQ(Counters->find("test.dump.count")->asNumber(), 5.0);
  ASSERT_NE(Gauges->find("test.dump.rate"), nullptr);
  EXPECT_DOUBLE_EQ(Gauges->find("test.dump.rate")->asNumber(), 0.5);
  const json::Value *Wall = Hists->find("test.dump.wall");
  ASSERT_NE(Wall, nullptr);
  ASSERT_NE(Wall->find("count"), nullptr);
  EXPECT_DOUBLE_EQ(Wall->find("count")->asNumber(), 1.0);

  R.counter("test.dump.count").reset();
  R.gauge("test.dump.rate").reset();
  R.histogram("test.dump.wall").reset();
}

TEST(Metrics, ProvidersRefreshGaugesAtDumpTime) {
  Registry &R = Registry::global();
  // Static: providers live as long as the registry, so the callback
  // must not capture stack locals.
  static int Calls = 0;
  R.addProvider([](Registry &Reg) {
    Reg.gauge("test.provider.refreshed").set(double(++Calls));
  });
  int Before = Calls;
  R.counterValues("test.");
  R.dumpText("test.");
  EXPECT_GE(Calls, Before + 2);
  EXPECT_DOUBLE_EQ(R.gauge("test.provider.refreshed").value(),
                   double(Calls));
}

TEST(Metrics, ConcurrentIncrementsSumExactly) {
  // The determinism contract for tuner counters: sums of atomic
  // increments are schedule-independent.
  Registry &R = Registry::global();
  Counter &C = R.counter("test.concurrent.sum");
  C.reset();
  ThreadPool Pool(8);
  Pool.parallelFor(1000, [&](std::size_t I) { C.inc(I % 3 + 1); });
  std::uint64_t Want = 0;
  for (std::size_t I = 0; I != 1000; ++I)
    Want += I % 3 + 1;
  EXPECT_EQ(C.value(), Want);
  C.reset();
}

TEST(Metrics, FormatCountsSkipsZerosAndKeepsOrder) {
  EXPECT_EQ(formatCounts({}), "none");
  EXPECT_EQ(formatCounts({{"a", 0}, {"b", 0}}), "none");
  EXPECT_EQ(formatCounts({{"b", 2}, {"a", 1}, {"zero", 0}}), "b=2, a=1");
}

} // namespace
