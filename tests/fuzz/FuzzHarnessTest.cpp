//===- FuzzHarnessTest.cpp - Tests for the differential fuzzer ------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//
//
// The fuzzer is itself test infrastructure, so these tests pin down its
// own contracts: deterministic generation, agreement of all oracles on
// fixed seed sets, the discard semantics for rewrites that make a
// program partial, and — most importantly — the end-to-end self-test:
// a deliberately wrong rewrite rule must be caught by the differential
// check and shrunk to a <= 3-primitive reproducer.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "interp/Interpreter.h"
#include "ir/TypeInference.h"
#include "rewrite/Exploration.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::fuzz;

namespace {

TEST(FuzzGenerator, IsDeterministic) {
  for (std::uint64_t Seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    ProgramSpec A = generateSpec(Seed);
    ProgramSpec B = generateSpec(Seed);
    EXPECT_EQ(describeSpec(A), describeSpec(B));
    std::optional<BuiltProgram> PA = buildProgram(A);
    std::optional<BuiltProgram> PB = buildProgram(B);
    ASSERT_TRUE(PA.has_value());
    ASSERT_TRUE(PB.has_value());
    EXPECT_EQ(toString(PA->P), toString(PB->P));
    EXPECT_EQ(PA->Flat, PB->Flat);
  }
}

TEST(FuzzGenerator, GeneratedSpecsAreRealizableAndTyped) {
  for (std::uint64_t Seed = 0; Seed != 200; ++Seed) {
    ProgramSpec S = generateSpec(Seed * 7919 + 1);
    std::optional<BuiltProgram> B = buildProgram(S);
    ASSERT_TRUE(B.has_value()) << describeSpec(S);
    EXPECT_TRUE(tryInferTypes(B->P)) << describeSpec(S);
    EXPECT_GE(countPrims(B->P), 1u);
  }
}

TEST(FuzzGenerator, UnrealizableSpecIsRejectedNotFatal) {
  ProgramSpec S = generateSpec(1);
  S.Extents.clear(); // breaks the Dims <-> Extents invariant
  EXPECT_FALSE(buildProgram(S).has_value());
}

TEST(FuzzDifferential, FixedSeedSweepAllOraclesAgree) {
  // The PR-gate sweep: 200 programs must pass every oracle. A few
  // discards (rewrites hitting divisibility at symbolic sizes) are
  // expected; mismatches are not.
  CampaignOptions O;
  CampaignStats Stats = runCampaign(7, 200, O);
  EXPECT_EQ(Stats.Mismatches, 0u);
  for (const CampaignFailure &F : Stats.Failures)
    ADD_FAILURE() << describeSpec(F.Original) << F.Detail;
  EXPECT_GT(Stats.Ok, 190u);
}

TEST(FuzzDifferential, RewriteOnSymbolicLengthSkipsNotDiscards) {
  // seed 42+289 (see runCampaign's splitmix64 derivation) is a known
  // spec where splitJoin(2) applies to a symbolic length bound to 5 at
  // runtime: the rewritten program would be partial at these sizes.
  // Such steps used to surface as whole-program discards (nothing
  // checked); the static divisibility refutation
  // (analysis::refuteSplitDivisibility) now rejects just the offending
  // step, so the spec must complete Ok with RewriteSkips recorded —
  // never a discard, a mismatch or a crash.
  bool SawSkip = false;
  DiffOptions O;
  for (unsigned I = 0; I != 400 && !SawSkip; ++I) {
    std::uint64_t X = 42 + I;
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    ProgramSpec S = generateSpec(X ^ (X >> 31));
    DiffResult R = runDifferential(S, O);
    ASSERT_NE(R.Status, DiffStatus::Mismatch)
        << describeSpec(S) << R.Detail;
    EXPECT_NE(R.Status, DiffStatus::Discarded)
        << "divisibility must be refuted statically, not discarded: "
        << describeSpec(S) << R.Detail;
    if (R.RewriteSkips > 0) {
      SawSkip = true;
      EXPECT_EQ(R.Status, DiffStatus::Ok) << R.Detail;
    }
  }
  EXPECT_TRUE(SawSkip);
}

TEST(FuzzDifferential, EnumeratedRewritesPreserveInterpreterSemantics) {
  // Property: every single enumerated legal step, applied to a fixed
  // seed-set of programs, is semantics-preserving under the reference
  // interpreter (or makes the program partial, which is allowed for
  // divisibility-constrained rules at symbolic sizes).
  std::vector<rewrite::Rule> Rules = fuzzRuleSet(false);
  unsigned Checked = 0;
  for (std::uint64_t Seed = 0; Seed != 40; ++Seed) {
    ProgramSpec S = generateSpec(Seed * 104729 + 3);
    std::optional<BuiltProgram> B = buildProgram(S);
    ASSERT_TRUE(B.has_value());
    std::optional<interp::Value> Ref =
        interp::tryEvalProgram(B->P, B->Vals, B->Sizes);
    ASSERT_TRUE(Ref.has_value()) << describeSpec(S);
    std::vector<float> RefFlat;
    interp::flattenValue(*Ref, RefFlat);

    for (const rewrite::ApplicableRewrite &Step :
         rewrite::enumerateApplicableRewrites(B->P, Rules)) {
      Program Next = rewrite::applyRewrite(B->P, Rules, Step);
      std::optional<interp::Value> Got =
          interp::tryEvalProgram(Next, B->Vals, B->Sizes);
      if (!Got)
        continue; // partial at these sizes: legal for symbolic lengths
      std::vector<float> GotFlat;
      interp::flattenValue(*Got, GotFlat);
      ASSERT_EQ(RefFlat, GotFlat)
          << describeSpec(S) << "rule: " << Rules[Step.RuleIndex].Name;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 50u);
}

TEST(FuzzSelfTest, InjectedRewriteBugIsCaughtAndShrunk) {
  // End-to-end proof of the harness: with a side-swapped pad-merge
  // rule injected, a fixed-seed campaign must (1) report at least one
  // mismatch and (2) shrink every failure to <= 3 primitives — a bare
  // map over two pads.
  CampaignOptions O;
  O.Diff.InjectBug = true;
  CampaignStats Stats = runCampaign(3, 300, O);
  ASSERT_GT(Stats.Mismatches, 0u);
  for (const CampaignFailure &F : Stats.Failures) {
    EXPECT_NE(F.Detail.find("padPadMerge(buggy)"), std::string::npos)
        << F.Detail;
    EXPECT_GE(F.MinimalPrims, 1u) << describeSpec(F.Minimal);
    EXPECT_LE(F.MinimalPrims, 3u) << describeSpec(F.Minimal);
    // The minimal reproducer must itself still be a mismatch.
    DiffResult R = runDifferential(F.Minimal, O.Diff);
    EXPECT_EQ(R.Status, DiffStatus::Mismatch) << describeSpec(F.Minimal);
  }
}

TEST(FuzzSelfTest, CleanRuleSetHasNoBuggyRule) {
  for (const rewrite::Rule &R : fuzzRuleSet(false))
    EXPECT_EQ(R.Name.find("buggy"), std::string::npos) << R.Name;
  bool SawBuggy = false;
  for (const rewrite::Rule &R : fuzzRuleSet(true))
    SawBuggy |= R.Name.find("buggy") != std::string::npos;
  EXPECT_TRUE(SawBuggy);
}

} // namespace
