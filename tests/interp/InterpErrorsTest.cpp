//===- InterpErrorsTest.cpp - Recoverable interpreter errors --------------===//
//
// Part of the liftcpp project.
//
// Runtime precondition violations the type system cannot express
// (split divisibility, zip length agreement at runtime, slide window
// fit, ...) must surface as interp::EvalError in every build mode —
// they used to be asserts, which vanish under NDEBUG and let Release
// builds run malformed programs into undefined behaviour.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/TypeInference.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

TEST(InterpErrors, SplitNonDivisorIsRecoverable) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, split(cst(3), A));
  // n = 7 is not divisible by 3; the type [[f]3]{7/3} is well-formed
  // symbolically, so only evaluation can catch it.
  SizeEnv Sizes{{N->getVarId(), 7}};
  std::string Err;
  auto R = tryEvalProgram(P, {makeFloatArray({1, 2, 3, 4, 5, 6, 7})}, Sizes,
                          &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Err.find("split factor"), std::string::npos) << Err;
}

TEST(InterpErrors, ZipRuntimeLengthMismatchIsRecoverable) {
  AExpr N = sizeVar("n");
  // Both inputs claim length n, so zip type-checks; binding inputs of
  // different actual lengths is only detectable at runtime.
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), N));
  Program P = makeProgram({A, B}, zip(A, B));
  SizeEnv Sizes{{N->getVarId(), 3}};
  std::string Err;
  auto R = tryEvalProgram(P, {makeFloatArray({1, 2, 3}), makeFloatArray({1, 2})},
                          Sizes, &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Err.find("zip length mismatch"), std::string::npos) << Err;
}

TEST(InterpErrors, SlideWindowLargerThanArrayIsRecoverable) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, slide(cst(5), cst(1), A));
  SizeEnv Sizes{{N->getVarId(), 2}};
  std::string Err;
  auto R = tryEvalProgram(P, {makeFloatArray({1, 2})}, Sizes, &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Err.find("slide window"), std::string::npos) << Err;
}

TEST(InterpErrors, InputCountMismatchIsRecoverable) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  SizeEnv Sizes{{N->getVarId(), 2}};
  std::string Err;
  auto R = tryEvalProgram(P, {}, Sizes, &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Err.find("input count mismatch"), std::string::npos) << Err;
}

TEST(InterpErrors, IllTypedProgramIsRecoverableViaTryEval) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), M));
  Program P = makeProgram({A, B}, zip(A, B));
  SizeEnv Sizes{{N->getVarId(), 2}, {M->getVarId(), 3}};
  std::string Err;
  auto R = tryEvalProgram(P, {makeFloatArray({1, 2}), makeFloatArray({1, 2, 3})},
                          Sizes, &Err);
  EXPECT_FALSE(R.has_value());
  EXPECT_NE(Err.find("zip of arrays with different lengths"),
            std::string::npos)
      << Err;
}

TEST(InterpErrors, ValidProgramStillEvaluates) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, split(cst(2), A));
  SizeEnv Sizes{{N->getVarId(), 4}};
  auto R = tryEvalProgram(P, {makeFloatArray({1, 2, 3, 4})}, Sizes);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->size(), 2u);
}

} // namespace
