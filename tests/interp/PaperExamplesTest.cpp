//===- PaperExamplesTest.cpp - The paper's worked examples ---------------===//
//
// Part of the liftcpp project.
//
// Executable versions of the examples worked through in the paper:
// Listing 1/2 (3-point Jacobi in C vs Lift), the pad2 and slide2
// expansion examples of §3.4, and the overlapped-tiling Listing 4.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;

namespace {

/// Paper Listing 1: the C reference for the 3-point Jacobi stencil with
/// clamping boundaries.
std::vector<float> listing1Reference(const std::vector<float> &A) {
  std::int64_t N = std::int64_t(A.size());
  std::vector<float> B(A.size());
  for (std::int64_t I = 0; I != N; ++I) {
    float Sum = 0;
    for (std::int64_t J = -1; J <= 1; ++J) {
      std::int64_t Pos = I + J;
      Pos = Pos < 0 ? 0 : Pos;
      Pos = Pos > N - 1 ? N - 1 : Pos;
      Sum += A[std::size_t(Pos)];
    }
    B[std::size_t(I)] = Sum;
  }
  return B;
}

/// Paper Listing 2: map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))).
Program listing2Program(ParamPtr A) {
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram(
      {A},
      map(SumNbh,
          slide(cst(3), cst(1), pad(cst(1), cst(1), Boundary::clamp(), A))));
}

TEST(PaperExamples, Listing2MatchesListing1) {
  std::vector<float> In{3, 1, 4, 1, 5, 9, 2, 6};
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = listing2Program(A);

  SizeEnv Sizes{{N->getVarId(), std::int64_t(In.size())}};
  Value Out = evalProgram(P, {makeFloatArray(In)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, listing1Reference(In));
}

TEST(PaperExamples, Pad2WorkedExample) {
  // Paper §3.4: pad2(1, 1, clamp, [[a,b],[c,d]]) ==
  //   [[a,a,b,b],[a,a,b,b],[c,c,d,d],[c,c,d,d]]
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P =
      makeProgram({A}, padNd(2, cst(1), cst(1), Boundary::clamp(), A));

  float a = 1, b = 2, c = 3, d = 4;
  SizeEnv Sizes{{N->getVarId(), 2}, {M->getVarId(), 2}};
  Value Out = evalProgram(P, {makeFloatArray2D({a, b, c, d}, 2, 2)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, (std::vector<float>{a, a, b, b, //
                                      a, a, b, b, //
                                      c, c, d, d, //
                                      c, c, d, d}));
}

TEST(PaperExamples, Slide2WorkedExample) {
  // Paper §3.4: slide2(2, 1, [[a,b,c],[d,e,f],[g,h,i]]) yields four 2x2
  // neighborhoods [[a,b],[d,e]], [[b,c],[e,f]], [[d,e],[g,h]],
  // [[e,f],[h,i]].
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, slideNd(2, cst(2), cst(1), A));

  float a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8, i = 9;
  SizeEnv Sizes{{N->getVarId(), 3}, {M->getVarId(), 3}};
  Value Out = evalProgram(
      P, {makeFloatArray2D({a, b, c, d, e, f, g, h, i}, 3, 3)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, (std::vector<float>{a, b, d, e, //
                                      b, c, e, f, //
                                      d, e, g, h, //
                                      e, f, h, i}));
}

TEST(PaperExamples, Listing4TilingEquivalence) {
  // Listing 4: map(tile => map(sumNbh, slide(3,1,tile)), slide(5,3,
  // pad(1,1,clamp,A))) then flattened must equal Listing 2's result.
  std::vector<float> In{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8};
  ASSERT_EQ(In.size() % 3, 0u) << "tile step must divide padded size";

  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
    return map(SumNbh, slide(cst(3), cst(1), Tile));
  });
  Program P = makeProgram(
      {A},
      join(map(PerTile, slide(cst(5), cst(3),
                              pad(cst(1), cst(1), Boundary::clamp(), A)))));

  SizeEnv Sizes{{N->getVarId(), std::int64_t(In.size())}};
  Value Out = evalProgram(P, {makeFloatArray(In)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, listing1Reference(In));
}

//===----------------------------------------------------------------------===//
// Property: slideNd equals a direct neighborhood gather.
//===----------------------------------------------------------------------===//

struct SlideNdCase {
  unsigned Dims;
  std::int64_t GridSize; // per-dimension input extent
  std::int64_t Window;
  std::int64_t Step;
};

class SlideNdProperty : public ::testing::TestWithParam<SlideNdCase> {};

TEST_P(SlideNdProperty, MatchesDirectGather) {
  const SlideNdCase C = GetParam();
  ASSERT_TRUE(C.Dims == 2 || C.Dims == 3);

  std::int64_t Total = 1;
  for (unsigned D = 0; D != C.Dims; ++D)
    Total *= C.GridSize;
  std::vector<float> Data(static_cast<std::size_t>(Total));
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = float(I);

  AExpr N = var("n", Range(1, 1 << 30));
  TypePtr Ty = floatT();
  for (unsigned D = 0; D != C.Dims; ++D)
    Ty = arrayT(Ty, N);
  ParamPtr A = param("A", Ty);
  Program P =
      makeProgram({A}, slideNd(C.Dims, cst(C.Window), cst(C.Step), A));

  SizeEnv Sizes{{N->getVarId(), C.GridSize}};
  Value In = C.Dims == 2
                 ? makeFloatArray2D(Data, std::size_t(C.GridSize),
                                    std::size_t(C.GridSize))
                 : makeFloatArray3D(Data, std::size_t(C.GridSize),
                                    std::size_t(C.GridSize),
                                    std::size_t(C.GridSize));
  Value Out = evalProgram(P, {In}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);

  // Direct gather.
  std::int64_t W = floorDivInt(C.GridSize - C.Window + C.Step, C.Step);
  std::vector<float> Expected;
  auto Flatten = [&](std::int64_t I, std::int64_t J, std::int64_t K) {
    if (C.Dims == 2)
      return Data[std::size_t(I * C.GridSize + J)];
    return Data[std::size_t((I * C.GridSize + J) * C.GridSize + K)];
  };
  if (C.Dims == 2) {
    for (std::int64_t WI = 0; WI != W; ++WI)
      for (std::int64_t WJ = 0; WJ != W; ++WJ)
        for (std::int64_t A0 = 0; A0 != C.Window; ++A0)
          for (std::int64_t A1 = 0; A1 != C.Window; ++A1)
            Expected.push_back(
                Flatten(WI * C.Step + A0, WJ * C.Step + A1, 0));
  } else {
    for (std::int64_t WI = 0; WI != W; ++WI)
      for (std::int64_t WJ = 0; WJ != W; ++WJ)
        for (std::int64_t WK = 0; WK != W; ++WK)
          for (std::int64_t A0 = 0; A0 != C.Window; ++A0)
            for (std::int64_t A1 = 0; A1 != C.Window; ++A1)
              for (std::int64_t A2 = 0; A2 != C.Window; ++A2)
                Expected.push_back(Flatten(WI * C.Step + A0,
                                           WJ * C.Step + A1,
                                           WK * C.Step + A2));
  }
  EXPECT_EQ(Flat, Expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlideNdProperty,
    ::testing::Values(SlideNdCase{2, 4, 2, 1}, SlideNdCase{2, 5, 3, 1},
                      SlideNdCase{2, 7, 3, 2}, SlideNdCase{3, 4, 2, 1},
                      SlideNdCase{3, 5, 3, 1}, SlideNdCase{2, 8, 5, 3},
                      SlideNdCase{3, 5, 3, 2}));

//===----------------------------------------------------------------------===//
// Property: padNd + slideNd + mapNd(sum) equals a direct stencil loop.
//===----------------------------------------------------------------------===//

struct StencilNdCase {
  unsigned Dims;
  std::int64_t GridSize;
  Boundary::Kind BK;
};

class StencilNdProperty : public ::testing::TestWithParam<StencilNdCase> {};

TEST_P(StencilNdProperty, SumStencilMatchesLoopNest) {
  const StencilNdCase C = GetParam();
  std::int64_t Total = 1;
  for (unsigned D = 0; D != C.Dims; ++D)
    Total *= C.GridSize;
  std::vector<float> Data(static_cast<std::size_t>(Total));
  for (std::size_t I = 0; I != Data.size(); ++I)
    Data[I] = float((I * 7) % 13);

  Boundary B{C.BK, 0.0f};
  AExpr N = var("n", Range(1, 1 << 30));
  TypePtr Ty = floatT();
  for (unsigned D = 0; D != C.Dims; ++D)
    Ty = arrayT(Ty, N);
  ParamPtr A = param("A", Ty);
  Program P = makeProgram(
      {A}, stencilNd(C.Dims, sumNeighborhood(C.Dims), cst(3), cst(1), cst(1),
                     cst(1), B, A));

  SizeEnv Sizes{{N->getVarId(), C.GridSize}};
  Value In = C.Dims == 1 ? makeFloatArray(Data)
             : C.Dims == 2
                 ? makeFloatArray2D(Data, std::size_t(C.GridSize),
                                    std::size_t(C.GridSize))
                 : makeFloatArray3D(Data, std::size_t(C.GridSize),
                                    std::size_t(C.GridSize),
                                    std::size_t(C.GridSize));
  Value Out = evalProgram(P, {In}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);

  // Direct loop nest with boundary resolution.
  std::int64_t G = C.GridSize;
  auto Load = [&](std::int64_t I, std::int64_t J, std::int64_t K) -> float {
    if (C.BK == Boundary::Kind::Constant) {
      bool Out0 = I < 0 || I >= G;
      bool Out1 = C.Dims >= 2 && (J < 0 || J >= G);
      bool Out2 = C.Dims >= 3 && (K < 0 || K >= G);
      if (Out0 || Out1 || Out2)
        return 0.0f;
    } else {
      I = resolveBoundaryIndex(C.BK, I, G);
      if (C.Dims >= 2)
        J = resolveBoundaryIndex(C.BK, J, G);
      if (C.Dims >= 3)
        K = resolveBoundaryIndex(C.BK, K, G);
    }
    std::int64_t Idx = I;
    if (C.Dims >= 2)
      Idx = Idx * G + J;
    if (C.Dims >= 3)
      Idx = Idx * G + K;
    return Data[std::size_t(Idx)];
  };

  std::vector<float> Expected;
  if (C.Dims == 1) {
    for (std::int64_t I = 0; I != G; ++I) {
      float S = 0;
      for (std::int64_t DI = -1; DI <= 1; ++DI)
        S += Load(I + DI, 0, 0);
      Expected.push_back(S);
    }
  } else if (C.Dims == 2) {
    for (std::int64_t I = 0; I != G; ++I)
      for (std::int64_t J = 0; J != G; ++J) {
        float S = 0;
        for (std::int64_t DI = -1; DI <= 1; ++DI)
          for (std::int64_t DJ = -1; DJ <= 1; ++DJ)
            S += Load(I + DI, J + DJ, 0);
        Expected.push_back(S);
      }
  } else {
    for (std::int64_t I = 0; I != G; ++I)
      for (std::int64_t J = 0; J != G; ++J)
        for (std::int64_t K = 0; K != G; ++K) {
          float S = 0;
          for (std::int64_t DI = -1; DI <= 1; ++DI)
            for (std::int64_t DJ = -1; DJ <= 1; ++DJ)
              for (std::int64_t DK = -1; DK <= 1; ++DK)
                S += Load(I + DI, J + DJ, K + DK);
          Expected.push_back(S);
        }
  }
  ASSERT_EQ(Flat.size(), Expected.size());
  for (std::size_t I = 0; I != Flat.size(); ++I)
    EXPECT_FLOAT_EQ(Flat[I], Expected[I]) << "at " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StencilNdProperty,
    ::testing::Values(StencilNdCase{1, 8, Boundary::Kind::Clamp},
                      StencilNdCase{1, 8, Boundary::Kind::Mirror},
                      StencilNdCase{1, 8, Boundary::Kind::Wrap},
                      StencilNdCase{1, 8, Boundary::Kind::Constant},
                      StencilNdCase{2, 6, Boundary::Kind::Clamp},
                      StencilNdCase{2, 6, Boundary::Kind::Mirror},
                      StencilNdCase{2, 6, Boundary::Kind::Wrap},
                      StencilNdCase{2, 6, Boundary::Kind::Constant},
                      StencilNdCase{3, 5, Boundary::Kind::Clamp},
                      StencilNdCase{3, 5, Boundary::Kind::Constant}));

} // namespace
