//===- InterpreterTest.cpp - Unit tests for the interpreter --------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;

namespace {

/// Helper: builds a program over one 1D float input of symbolic size n
/// and evaluates it on \p Data.
std::vector<float> run1D(const std::function<ExprPtr(ParamPtr)> &Build,
                         const std::vector<float> &Data) {
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, Build(A));
  SizeEnv Sizes{{N->getVarId(), std::int64_t(Data.size())}};
  Value Out = evalProgram(P, {makeFloatArray(Data)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  return Flat;
}

TEST(Interpreter, MapAppliesFunction) {
  auto Out = run1D(
      [](ParamPtr A) {
        return map(lam("x", [](ExprPtr X) {
                     return apply(ufAddFloat(), {X, lit(10.0f)});
                   }),
                   A);
      },
      {1, 2, 3});
  EXPECT_EQ(Out, (std::vector<float>{11, 12, 13}));
}

TEST(Interpreter, ReduceSums) {
  auto Out = run1D(
      [](ParamPtr A) {
        return reduce(etaLambda(ufAddFloat()), lit(0.0f), A);
      },
      {1, 2, 3, 4});
  EXPECT_EQ(Out, (std::vector<float>{10}));
}

TEST(Interpreter, SplitChunksAndJoinRestores) {
  auto Out = run1D([](ParamPtr A) { return join(split(cst(2), A)); },
                   {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(Out, (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(Interpreter, SlideCreatesOverlappingWindows) {
  // Paper Figure 3 step 2: slide(3, 1) groups neighborhoods.
  auto Out = run1D([](ParamPtr A) { return slide(cst(3), cst(1), A); },
                   {0, 1, 2, 3});
  // Windows: [0,1,2], [1,2,3]
  EXPECT_EQ(Out, (std::vector<float>{0, 1, 2, 1, 2, 3}));
}

TEST(Interpreter, SlideWithStepThree) {
  // Listing 4 tiles: slide(5, 3) over 11 elements -> 3 tiles.
  std::vector<float> In(11);
  for (std::size_t I = 0; I != In.size(); ++I)
    In[I] = float(I);
  auto Out = run1D([](ParamPtr A) { return slide(cst(5), cst(3), A); }, In);
  EXPECT_EQ(Out, (std::vector<float>{0, 1, 2, 3, 4, //
                                     3, 4, 5, 6, 7, //
                                     6, 7, 8, 9, 10}));
}

TEST(Interpreter, PadClampRepeatsEdges) {
  // Paper §3.2: pad(2, 3, clamp, input) repeats boundary values.
  auto Out = run1D(
      [](ParamPtr A) { return pad(cst(2), cst(3), Boundary::clamp(), A); },
      {1, 2, 3});
  EXPECT_EQ(Out, (std::vector<float>{1, 1, 1, 2, 3, 3, 3, 3}));
}

TEST(Interpreter, PadMirrorReflects) {
  auto Out = run1D(
      [](ParamPtr A) { return pad(cst(2), cst(2), Boundary::mirror(), A); },
      {1, 2, 3});
  EXPECT_EQ(Out, (std::vector<float>{2, 1, 1, 2, 3, 3, 2}));
}

TEST(Interpreter, PadWrapRotates) {
  auto Out = run1D(
      [](ParamPtr A) { return pad(cst(1), cst(1), Boundary::wrap(), A); },
      {1, 2, 3});
  EXPECT_EQ(Out, (std::vector<float>{3, 1, 2, 3, 1}));
}

TEST(Interpreter, PadConstantAppends) {
  auto Out = run1D(
      [](ParamPtr A) {
        return pad(cst(1), cst(2), Boundary::constant(9.0f), A);
      },
      {1, 2, 3});
  EXPECT_EQ(Out, (std::vector<float>{9, 1, 2, 3, 9, 9}));
}

TEST(Interpreter, ZipAndGet) {
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), N));
  // map(\t. t.0 * t.1, zip(A, B))
  Program P = makeProgram(
      {A, B}, map(lam("t", [](ExprPtr T) {
                    return apply(ufMultFloat(), {get(0, T), get(1, T)});
                  }),
                  zip(A, B)));
  SizeEnv Sizes{{N->getVarId(), 3}};
  Value Out = evalProgram(
      P, {makeFloatArray({1, 2, 3}), makeFloatArray({4, 5, 6})}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, (std::vector<float>{4, 10, 18}));
}

TEST(Interpreter, IterateAppliesRepeatedly) {
  auto Out = run1D(
      [](ParamPtr A) {
        return iterate(3, lam("xs", [](ExprPtr Xs) {
                         return map(lam("x",
                                        [](ExprPtr X) {
                                          return apply(ufMultFloat(),
                                                       {X, lit(2.0f)});
                                        }),
                                    Xs);
                       }),
                       A);
      },
      {1, 2});
  EXPECT_EQ(Out, (std::vector<float>{8, 16}));
}

TEST(Interpreter, GenerateBuildsIndexGrid) {
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr Dummy = param("D", arrayT(floatT(), N));
  // generate 2x3 grid of i*10+j as ints
  UserFunPtr Enc = makeUserFun(
      "enc", {"i", "j"}, {ScalarKind::Int, ScalarKind::Int}, ScalarKind::Int,
      "return i * 10 + j;", [](const std::vector<Scalar> &Args) {
        return Scalar(std::int32_t(Args[0].I * 10 + Args[1].I));
      });
  Program P = makeProgram(
      {Dummy}, generate({cst(2), cst(3)}, lam2("i", "j",
                                               [&](ExprPtr I, ExprPtr J) {
                                                 return apply(Enc, {I, J});
                                               })));
  SizeEnv Sizes{{N->getVarId(), 1}};
  Value Out = evalProgram(P, {makeFloatArray({0})}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, (std::vector<float>{0, 1, 2, 10, 11, 12}));
}

TEST(Interpreter, TransposeSwapsIndices) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, transpose(A));
  SizeEnv Sizes{{N->getVarId(), 2}, {M->getVarId(), 3}};
  Value Out =
      evalProgram(P, {makeFloatArray2D({1, 2, 3, 4, 5, 6}, 2, 3)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  EXPECT_EQ(Flat, (std::vector<float>{1, 4, 2, 5, 3, 6}));
}

TEST(Interpreter, NestedLambdaShadowing) {
  // The same parameter name in nested lambdas must not collide: the
  // interpreter binds by node identity, not by name. Both the outer map
  // parameter and the reduce element parameter are called "x".
  auto Out = run1D(
      [](ParamPtr A) {
        return map(
            lam("x",
                [](ExprPtr Window) {
                  ExprPtr Sum =
                      theOne(reduce(lam2("acc", "x",
                                         [](ExprPtr Acc, ExprPtr X) {
                                           return apply(ufAddFloat(),
                                                        {Acc, X});
                                         }),
                                    lit(0.0f), Window));
                  return apply(ufAddFloat(), {at(0, Window), Sum});
                }),
            slide(cst(2), cst(1), A));
      },
      {1, 2, 3});
  // Windows [1,2] and [2,3]: first + sum = 1+3 and 2+5.
  EXPECT_EQ(Out, (std::vector<float>{4, 7}));
}

} // namespace
