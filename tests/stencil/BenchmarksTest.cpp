//===- BenchmarksTest.cpp - Benchmark suite correctness -------------------===//
//
// Part of the liftcpp project.
//
// Every benchmark program is validated two ways on small grids:
//  1. the high-level interpreter must match the independent golden
//     loop-nest implementation;
//  2. the lowered (mapGlb) program, compiled and executed on the
//     NDRange simulator, must match the golden too.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "interp/Interpreter.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

namespace {

/// Small grids for correctness runs (non-square to catch transposed
/// indexing).
Extents testExtents(const Benchmark &B) {
  if (B.Dims == 2)
    return {10, 12};
  return {4, 6, 8};
}

Value toValue(const std::vector<float> &Data, const Extents &E) {
  if (E.size() == 1)
    return makeFloatArray(Data);
  if (E.size() == 2)
    return makeFloatArray2D(Data, std::size_t(E[0]), std::size_t(E[1]));
  return makeFloatArray3D(Data, std::size_t(E[0]), std::size_t(E[1]),
                          std::size_t(E[2]));
}

void expectClose(const std::vector<float> &Got,
                 const std::vector<float> &Want, const char *What) {
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (std::size_t I = 0; I != Got.size(); ++I)
    ASSERT_NEAR(Got[I], Want[I], 1e-4f) << What << " at " << I;
}

class BenchmarkCorrectness
    : public ::testing::TestWithParam<const char *> {};

TEST_P(BenchmarkCorrectness, InterpreterMatchesGolden) {
  const Benchmark &B = findBenchmark(GetParam());
  Extents E = testExtents(B);
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  std::vector<float> Want = B.Golden(Inputs, E);

  BenchmarkInstance I = B.Build();
  std::vector<Value> InputValues;
  for (const std::vector<float> &In : Inputs)
    InputValues.push_back(toValue(In, E));
  Value Out = evalProgram(I.P, InputValues, makeSizeEnv(I, E));
  std::vector<float> Got;
  flattenValue(Out, Got);
  expectClose(Got, Want, "interpreter vs golden");
}

TEST_P(BenchmarkCorrectness, LoweredSimMatchesGolden) {
  const Benchmark &B = findBenchmark(GetParam());
  Extents E = testExtents(B);
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  std::vector<float> Want = B.Golden(Inputs, E);

  BenchmarkInstance I = B.Build();
  LoweringOptions O; // plain global lowering
  Program Low = lowerStencil(I.P, O);
  ASSERT_NE(Low, nullptr);
  RunResult R = runOnSim(Low, Inputs, makeSizeEnv(I, E));
  expectClose(R.Output, Want, "lowered+sim vs golden");
}

TEST_P(BenchmarkCorrectness, UnrolledVariantMatchesGolden) {
  const Benchmark &B = findBenchmark(GetParam());
  Extents E = testExtents(B);
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  std::vector<float> Want = B.Golden(Inputs, E);

  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.UnrollReduce = true;
  Program Low = lowerStencil(I.P, O);
  ASSERT_NE(Low, nullptr);
  RunResult R = runOnSim(Low, Inputs, makeSizeEnv(I, E));
  expectClose(R.Output, Want, "unrolled+sim vs golden");
}

INSTANTIATE_TEST_SUITE_P(
    All, BenchmarkCorrectness,
    ::testing::Values("Stencil2D", "SRAD1", "SRAD2", "Hotspot2D",
                      "Hotspot3D", "Acoustic", "Gaussian", "Gradient",
                      "Jacobi2D5pt", "Jacobi2D9pt", "Jacobi3D7pt",
                      "Jacobi3D13pt", "Poisson", "Heat"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

/// Tiled variants: single-grid slideNd shapes and multi-grid zipNd
/// shapes (overlapping tiles for slided components, exact tiles for
/// point-wise ones).
class BenchmarkTiled : public ::testing::TestWithParam<const char *> {};

TEST_P(BenchmarkTiled, TiledLocalMatchesGolden) {
  const Benchmark &B = findBenchmark(GetParam());
  // Tile-output size must divide each extent.
  Extents E = B.Dims == 2 ? Extents{12, 16} : Extents{4, 8, 12};
  std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
  std::vector<float> Want = B.Golden(Inputs, E);

  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 4;
  O.UseLocalMem = true;
  Program Low = lowerStencil(I.P, O);
  ASSERT_NE(Low, nullptr) << "tiling failed for " << B.Name;
  RunResult R = runOnSim(Low, Inputs, makeSizeEnv(I, E));
  expectClose(R.Output, Want, "tiled-local+sim vs golden");
  EXPECT_GT(R.Counters.LocalLoads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, BenchmarkTiled,
    ::testing::Values("Stencil2D", "SRAD1", "Gaussian", "Gradient",
                      "Jacobi2D5pt", "Jacobi2D9pt", "Jacobi3D7pt",
                      "Jacobi3D13pt", "Poisson", "Heat", "SRAD2",
                      "Hotspot2D", "Hotspot3D", "Acoustic"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(Benchmarks, Table1Characteristics) {
  // The metadata reproduced in Table 1.
  const Benchmark &S2D = findBenchmark("Stencil2D");
  EXPECT_EQ(S2D.Dims, 2u);
  EXPECT_EQ(S2D.Points, 9);
  EXPECT_EQ(S2D.NumGrids, 1);

  const Benchmark &HS = findBenchmark("Hotspot2D");
  EXPECT_EQ(HS.Points, 5);
  EXPECT_EQ(HS.NumGrids, 2);
  EXPECT_EQ(HS.SmallExtents, (Extents{8192, 8192}));

  const Benchmark &AC = findBenchmark("Acoustic");
  EXPECT_EQ(AC.Dims, 3u);
  EXPECT_EQ(AC.Points, 7);
  EXPECT_EQ(AC.NumGrids, 2);

  const Benchmark &J13 = findBenchmark("Jacobi3D13pt");
  EXPECT_EQ(J13.Points, 13);
  EXPECT_EQ(J13.WindowSize, 5);

  const Benchmark &GA = findBenchmark("Gaussian");
  EXPECT_EQ(GA.Points, 25);
  EXPECT_EQ(GA.LargeExtents, (Extents{8192, 8192}));

  EXPECT_EQ(allBenchmarks().size(), 14u);
  int Fig7 = 0, Fig8 = 0;
  for (const Benchmark &B : allBenchmarks()) {
    Fig7 += B.InFigure7;
    Fig8 += B.InFigure8;
  }
  EXPECT_EQ(Fig7, 6);
  EXPECT_EQ(Fig8, 8);
}

} // namespace
