//===- TypesTest.cpp - Unit tests for the Lift type system ---------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Types.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;

namespace {

TEST(Types, ScalarSingletons) {
  EXPECT_TRUE(typeEquals(floatT(), scalarT(ScalarKind::Float)));
  EXPECT_TRUE(typeEquals(intT(), scalarT(ScalarKind::Int)));
  EXPECT_FALSE(typeEquals(floatT(), intT()));
}

TEST(Types, ArrayCarriesSymbolicSize) {
  AExpr N = var("n", Range(1, 1 << 30));
  TypePtr T = arrayT(floatT(), N);
  EXPECT_EQ(T->getKind(), Type::Kind::Array);
  EXPECT_TRUE(exprEquals(T->getSize(), N));
  EXPECT_TRUE(typeEquals(T->getElem(), floatT()));
}

TEST(Types, EqualityIsStructuralOverSizes) {
  AExpr N = var("n", Range(1, 1 << 30));
  // n + n and 2*n canonicalize identically, so the array types match.
  TypePtr A = arrayT(floatT(), add(N, N));
  TypePtr B = arrayT(floatT(), mul(cst(2), N));
  EXPECT_TRUE(typeEquals(A, B));
  TypePtr C = arrayT(floatT(), add(N, cst(1)));
  EXPECT_FALSE(typeEquals(A, C));
}

TEST(Types, TupleTypes) {
  TypePtr T = tupleT({floatT(), intT()});
  ASSERT_EQ(T->getComponents().size(), 2u);
  EXPECT_TRUE(typeEquals(T->getComponents()[0], floatT()));
  EXPECT_FALSE(typeEquals(T, tupleT({intT(), floatT()})));
}

TEST(Types, NumDims) {
  AExpr N = var("n", Range(1, 1 << 30));
  TypePtr T3 = arrayT(arrayT(arrayT(floatT(), N), N), N);
  EXPECT_EQ(numDims(T3), 3u);
  EXPECT_EQ(numDims(floatT()), 0u);
}

TEST(Types, ElementCount) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr M = var("m", Range(1, 1 << 30));
  TypePtr T = arrayT(arrayT(floatT(), M), N);
  EXPECT_TRUE(exprEquals(elementCount(T), mul(N, M)));
}

TEST(Types, ToString) {
  TypePtr T = arrayT(arrayT(floatT(), cst(3)), cst(5));
  EXPECT_EQ(T->toString(), "[[float]3]5");
}

} // namespace
