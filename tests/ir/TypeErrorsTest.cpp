//===- TypeErrorsTest.cpp - Ill-typed programs are rejected ---------------===//
//
// Part of the liftcpp project.
//
// Every class of type error must be reported as a recoverable
// TypeError (with a diagnostic naming the violated rule) rather than
// silently producing wrong code or aborting the process.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeInference.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

TEST(TypeErrors, ZipLengthMismatch) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), M));
  Program P = makeProgram({A, B}, zip(A, B));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("zip of arrays with different lengths"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, UserFunArityMismatch) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  // addF takes two arguments; apply asserts arity at build time, so
  // build the call node directly with one argument.
  ParamPtr X = param("x");
  auto C = std::make_shared<CallExpr>(Prim::UserFunCall,
                                      std::vector<ExprPtr>{X});
  C->UF = ufAddFloat();
  Program P = makeProgram({A}, map(lambda({X}, C), A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("userFun arity mismatch"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, UserFunArgumentKindMismatch) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(intT(), N)); // ints into a float fun
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("userFun argument"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, ReduceAccumulatorTypeDrift) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  // Operator returns an int while the accumulator starts as float.
  UserFunPtr Bad = makeUserFun(
      "toInt", {"a", "b"}, {ScalarKind::Float, ScalarKind::Float},
      ScalarKind::Int, "return 1;",
      [](const std::vector<Scalar> &) { return Scalar(std::int32_t(1)); });
  Program P = makeProgram({A}, reduce(etaLambda(Bad), lit(0.0f), A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("reduction operator must preserve"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, ConstantIndexOutOfBounds) {
  ParamPtr A = param("A", arrayT(floatT(), cst(3)));
  Program P = makeProgram({A}, at(5, A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("constant index out of bounds"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, GetOnNonTuple) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, get(0, A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("get on non-tuple"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, MapOverScalar) {
  ParamPtr A = param("A", floatT());
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("expected array"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

TEST(TypeErrors, IterateMustPreserveType) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  // The body grows the array, so iteration cannot type-check.
  LambdaPtr Grow = lam("xs", [](ExprPtr Xs) {
    return pad(cst(1), cst(1), Boundary::clamp(), Xs);
  });
  Program P = makeProgram({A}, iterate(2, Grow, A));
  EXPECT_THROW(
      {
        try {
          inferTypes(P);
        } catch (const TypeError &E) {
          EXPECT_NE(std::string(E.what()).find("iterate body must preserve"),
                    std::string::npos)
              << E.what();
          throw;
        }
      },
      TypeError);
}

} // namespace
