//===- ExprTest.cpp - Unit tests for IR expressions ----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;

namespace {

TEST(Expr, LiteralKinds) {
  ExprPtr F = lit(2.5f);
  ExprPtr I = litInt(7);
  EXPECT_EQ(dynCast<LiteralExpr>(F)->getValue().K, ScalarKind::Float);
  EXPECT_EQ(dynCast<LiteralExpr>(I)->getValue().I, 7);
}

TEST(Expr, DynCastDispatch) {
  ExprPtr L = lit(1.0f);
  EXPECT_NE(dynCast<LiteralExpr>(L), nullptr);
  EXPECT_EQ(dynCast<CallExpr>(L), nullptr);
  EXPECT_EQ(dynCast<ParamExpr>(L), nullptr);
}

TEST(Expr, EtaLambdaExpandsUserFun) {
  LambdaPtr L = etaLambda(ufAddFloat());
  ASSERT_EQ(L->getParams().size(), 2u);
  const auto *C = dynCast<CallExpr>(L->getBody());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getPrim(), Prim::UserFunCall);
  EXPECT_EQ(C->UF->getName(), "addF");
  // Body arguments are exactly the lambda's parameters.
  EXPECT_EQ(C->getArgs()[0].get(), L->getParams()[0].get());
  EXPECT_EQ(C->getArgs()[1].get(), L->getParams()[1].get());
}

TEST(Expr, SlideCarriesPayload) {
  ParamPtr A = param("A");
  ExprPtr E = slide(cst(3), cst(1), A);
  const auto *C = dynCast<CallExpr>(E);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->Size->isCst(3));
  EXPECT_TRUE(C->Step->isCst(1));
}

TEST(Expr, ToLocalSetsAddrSpaceWithoutMutatingOriginal) {
  LambdaPtr F = etaLambda(ufIdFloat());
  LambdaPtr L = toLocal(F);
  EXPECT_EQ(F->getAddrSpace(), AddrSpace::Default);
  EXPECT_EQ(L->getAddrSpace(), AddrSpace::Local);
  // Body and params are shared; only the attribute differs.
  EXPECT_EQ(F->getBody().get(), L->getBody().get());
}

TEST(Expr, PrinterRendersListing2Shape) {
  // Paper Listing 2: map(sumNbh, slide(3, 1, pad(1, 1, clamp, A))).
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return at(0, reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  ExprPtr E = map(SumNbh, slide(cst(3), cst(1),
                                pad(cst(1), cst(1), Boundary::clamp(), A)));
  std::string S = toString(E);
  EXPECT_NE(S.find("map("), std::string::npos);
  EXPECT_NE(S.find("slide(3, 1"), std::string::npos);
  EXPECT_NE(S.find("pad(1, 1, clamp"), std::string::npos);
  EXPECT_NE(S.find("reduce("), std::string::npos);
}

TEST(Expr, DeepCloneRemapsBoundParams) {
  LambdaPtr F = lam("x", [](ExprPtr X) {
    return apply(ufAddFloat(), {X, lit(1.0f)});
  });
  ParamPtr A = param("A");
  ExprPtr E = map(F, A);
  ExprPtr Clone = deepClone(E);

  const auto *OrigCall = dynCast<CallExpr>(E);
  const auto *CloneCall = dynCast<CallExpr>(Clone);
  ASSERT_NE(CloneCall, nullptr);
  // Free param A is shared; the lambda's bound param is fresh.
  EXPECT_EQ(CloneCall->getArgs()[1].get(), A.get());
  const auto *OrigLam = dynCast<LambdaExpr>(OrigCall->getArgs()[0]);
  const auto *CloneLam = dynCast<LambdaExpr>(CloneCall->getArgs()[0]);
  EXPECT_NE(OrigLam->getParams()[0].get(), CloneLam->getParams()[0].get());
  // And the cloned body references the cloned param.
  const auto *CloneBody = dynCast<CallExpr>(CloneLam->getBody());
  EXPECT_EQ(CloneBody->getArgs()[0].get(), CloneLam->getParams()[0].get());
}

TEST(Expr, CloneProgramPreservesDeclaredTypes) {
  AExpr N = var("n", Range(1, 1 << 30));
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  Program Q = cloneProgram(P);
  ASSERT_EQ(Q->getParams().size(), 1u);
  EXPECT_NE(Q->getParams()[0].get(), A.get());
  EXPECT_TRUE(typeEquals(Q->getParams()[0]->getDeclaredType(),
                         A->getDeclaredType()));
}

TEST(Expr, BoundaryIndexClamp) {
  using BK = Boundary::Kind;
  EXPECT_EQ(resolveBoundaryIndex(BK::Clamp, -3, 10), 0);
  EXPECT_EQ(resolveBoundaryIndex(BK::Clamp, 12, 10), 9);
  EXPECT_EQ(resolveBoundaryIndex(BK::Clamp, 5, 10), 5);
}

TEST(Expr, BoundaryIndexMirror) {
  using BK = Boundary::Kind;
  // Symmetric reflection with edge duplication.
  EXPECT_EQ(resolveBoundaryIndex(BK::Mirror, -1, 10), 0);
  EXPECT_EQ(resolveBoundaryIndex(BK::Mirror, -2, 10), 1);
  EXPECT_EQ(resolveBoundaryIndex(BK::Mirror, 10, 10), 9);
  EXPECT_EQ(resolveBoundaryIndex(BK::Mirror, 11, 10), 8);
  EXPECT_EQ(resolveBoundaryIndex(BK::Mirror, 4, 10), 4);
}

TEST(Expr, BoundaryIndexWrap) {
  using BK = Boundary::Kind;
  EXPECT_EQ(resolveBoundaryIndex(BK::Wrap, -1, 10), 9);
  EXPECT_EQ(resolveBoundaryIndex(BK::Wrap, 10, 10), 0);
  EXPECT_EQ(resolveBoundaryIndex(BK::Wrap, 13, 10), 3);
  EXPECT_EQ(resolveBoundaryIndex(BK::Wrap, 7, 10), 7);
}

TEST(Expr, PrimNames) {
  EXPECT_STREQ(primName(Prim::Slide), "slide");
  EXPECT_STREQ(primName(Prim::Pad), "pad");
  EXPECT_STREQ(primName(Prim::MapGlb), "mapGlb");
  EXPECT_TRUE(isMapPrim(Prim::MapLcl));
  EXPECT_FALSE(isMapPrim(Prim::Reduce));
  EXPECT_TRUE(isReducePrim(Prim::ReduceSeqUnroll));
}

} // namespace
