//===- TypeInferenceTest.cpp - Unit tests for type inference -------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeInference.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

TEST(TypeInference, MapPreservesLength) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(floatT(), N)));
}

TEST(TypeInference, PadGrowsArray) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P =
      makeProgram({A}, pad(cst(2), cst(3), Boundary::clamp(), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(floatT(), add(N, cst(5)))));
}

TEST(TypeInference, SlideWindowType) {
  // slide(3, 1): [float]n -> [[float]3]{n-2} (paper §3.2).
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, slide(cst(3), cst(1), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(
      typeEquals(T, arrayT(arrayT(floatT(), cst(3)), sub(N, cst(2)))));
}

TEST(TypeInference, SlideWithStep) {
  // slide(5, 3): [float]n -> [[float]5]{(n-2)/3} — the tile window of
  // Listing 4.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, slide(cst(5), cst(3), A));
  TypePtr T = inferTypes(P);
  AExpr Expected = floorDiv(sub(N, cst(2)), cst(3));
  EXPECT_TRUE(exprEquals(T->getSize(), Expected))
      << T->getSize()->toString();
}

TEST(TypeInference, PadSlideComposition) {
  // Listing 2 shape: slide(3,1, pad(1,1,clamp,A)) restores length n.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, slide(cst(3), cst(1), pad(cst(1), cst(1), Boundary::clamp(), A)));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(exprEquals(T->getSize(), N)) << T->getSize()->toString();
}

TEST(TypeInference, SplitJoinRoundTrip) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(floatT(), mul(N, M)));
  Program P = makeProgram({A}, join(split(M, A)));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(exprEquals(T->getSize(), mul(N, M)));
}

TEST(TypeInference, TransposeSwapsDims) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, transpose(A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(arrayT(floatT(), N), M)));
}

TEST(TypeInference, ZipBuildsTuples) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(intT(), N));
  Program P = makeProgram({A, B}, zip(A, B));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(tupleT({floatT(), intT()}), N)));
}

TEST(TypeInference, ReduceYieldsSingleton) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P =
      makeProgram({A}, reduce(etaLambda(ufAddFloat()), lit(0.0f), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(floatT(), cst(1))));
}

TEST(TypeInference, GenerateBuildsIntGrid) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  LambdaPtr F = lam2("i", "j", [](ExprPtr I, ExprPtr J) {
    (void)J; // the generator may ignore indices
    return apply(ufIdInt(), {I});
  });
  Program P = makeProgram({param("dummy", arrayT(floatT(), N))},
                          generate({N, M}, F));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(arrayT(intT(), M), N)));
}

TEST(TypeInference, AtExtractsElement) {
  ParamPtr A = param("A", arrayT(floatT(), cst(3)));
  Program P = makeProgram({A}, at(2, A));
  EXPECT_TRUE(typeEquals(inferTypes(P), floatT()));
}

TEST(TypeInference, StencilNd2DShape) {
  // 2D 3x3 stencil over [n][m] keeps the grid shape.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram(
      {A}, stencilNd(2, sumNeighborhood(2), cst(3), cst(1), cst(1), cst(1),
                     Boundary::clamp(), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(arrayT(floatT(), M), N)))
      << T->toString();
}

TEST(TypeInference, StencilNd3DShape) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  AExpr O = sizeVar("o");
  ParamPtr A = param("A", arrayT(arrayT(arrayT(floatT(), M), N), O));
  Program P = makeProgram(
      {A}, stencilNd(3, sumNeighborhood(3), cst(3), cst(1), cst(1), cst(1),
                     Boundary::clamp(), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(arrayT(arrayT(floatT(), M), N), O)))
      << T->toString();
}

TEST(TypeInference, SlideNd2DNeighborhoodType) {
  // slide2(3,1) over [n][m] has type [[[[f]3]3]{m-2}]{n-2} — grid dims
  // outermost, window dims innermost (paper §3.4).
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, slideNd(2, cst(3), cst(1), A));
  TypePtr T = inferTypes(P);
  TypePtr Expected = arrayT(
      arrayT(arrayT(arrayT(floatT(), cst(3)), cst(3)), sub(M, cst(2))),
      sub(N, cst(2)));
  EXPECT_TRUE(typeEquals(T, Expected)) << T->toString();
}

TEST(TypeInference, MapNdAppliesAtDepth) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, mapNd(2, etaLambda(ufIdFloat()), A));
  TypePtr T = inferTypes(P);
  EXPECT_TRUE(typeEquals(T, arrayT(arrayT(floatT(), M), N)));
}

} // namespace
