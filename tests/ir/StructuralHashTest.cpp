//===- StructuralHashTest.cpp - Structural hash/equality tests ------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "ir/TypeInference.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

Program jacobi1D(ParamPtr A) {
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram(
      {A}, map(SumNbh, slide(cst(3), cst(1),
                             pad(cst(1), cst(1), Boundary::clamp(), A))));
}

TEST(StructuralHash, CloneIsEqualWithEqualHash) {
  // cloneProgram freshens every bound parameter, so equality and hash
  // must be alpha-invariant to identify clone and original.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);
  Program Q = cloneProgram(P);
  ASSERT_NE(P.get(), Q.get());
  EXPECT_TRUE(structuralEquals(P, Q));
  EXPECT_TRUE(structuralEquals(Q, P));
  EXPECT_EQ(structuralHash(ExprPtr(P)), structuralHash(ExprPtr(Q)));
}

TEST(StructuralHash, EqualityIsInsensitiveToInferredTypes) {
  // Dedup keys are probed before type inference runs on the candidate;
  // inferred types must not influence the fingerprint.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);
  Program Q = cloneProgram(P);
  inferTypes(Q);
  EXPECT_TRUE(structuralEquals(P, Q));
  EXPECT_EQ(structuralHash(ExprPtr(P)), structuralHash(ExprPtr(Q)));
}

TEST(StructuralHash, DistinguishesPayloads) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));

  auto Build = [&](std::int64_t SlideSize, float Pad) {
    LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
      return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
    });
    return makeProgram({A}, map(SumNbh, slide(cst(SlideSize), cst(1),
                                              pad(cst(1), cst(1),
                                                  Boundary::constant(Pad),
                                                  A))));
  };

  Program Base = Build(3, 0.0f);
  EXPECT_TRUE(structuralEquals(Base, Build(3, 0.0f)));
  // Different slide size: differs only in an interned AExpr payload.
  EXPECT_FALSE(structuralEquals(Base, Build(5, 0.0f)));
  // Different constant-pad value: differs only in the boundary payload.
  EXPECT_FALSE(structuralEquals(Base, Build(3, 1.0f)));
}

TEST(StructuralHash, FreeParametersCompareByIdentity) {
  // Two programs over *different* free inputs are different programs,
  // even though they are textually identical up to input naming.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("A", arrayT(floatT(), N));
  LambdaPtr Inc = lam("x", [](ExprPtr X) {
    return ir::apply(ufAddFloat(), {X, lit(1.0f)});
  });
  ExprPtr OverA = map(Inc, A);
  ExprPtr OverB = map(Inc, B);
  EXPECT_FALSE(structuralEquals(OverA, OverB));
  // As program bodies with the parameter bound, they unify again.
  EXPECT_TRUE(structuralEquals(makeProgram({A}, OverA),
                               makeProgram({B}, OverB)));
}

TEST(StructuralHash, LambdaBindingPositionsNotNames) {
  // Two lambdas differing only in parameter naming are equal.
  LambdaPtr F = lam("x", [](ExprPtr X) {
    return ir::apply(ufMultFloat(), {X, X});
  });
  LambdaPtr G = lam("y", [](ExprPtr Y) {
    return ir::apply(ufMultFloat(), {Y, Y});
  });
  EXPECT_TRUE(structuralEquals(F, G));
  EXPECT_EQ(structuralHash(ExprPtr(F)), structuralHash(ExprPtr(G)));
  // A function using its parameter differently is not equal.
  LambdaPtr H = lam("z", [](ExprPtr Z) {
    return ir::apply(ufMultFloat(), {Z, lit(2.0f)});
  });
  EXPECT_FALSE(structuralEquals(F, H));
}

TEST(StructuralHash, SetBehavesAsProgramSet) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);

  std::unordered_set<ExprPtr, StructuralExprHash, StructuralExprEq> Set;
  EXPECT_TRUE(Set.insert(P).second);
  EXPECT_FALSE(Set.insert(cloneProgram(P)).second);       // alpha-equal dup
  EXPECT_TRUE(Set.insert(makeProgram({A}, map(lam("x", [](ExprPtr X) {
    return ir::apply(ufAddFloat(), {X, lit(2.0f)});
  }), A))).second);                                       // genuinely new
  EXPECT_EQ(Set.size(), 2u);
}

TEST(StructuralHash, TypeHashConsistentWithTypeEquals) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  TypePtr T1 = arrayT(arrayT(floatT(), M), N);
  TypePtr T2 = arrayT(arrayT(floatT(), M), N);
  EXPECT_TRUE(typeEquals(T1, T2));
  EXPECT_EQ(structuralHash(T1), structuralHash(T2));
  TypePtr T3 = arrayT(arrayT(intT(), M), N);
  EXPECT_FALSE(typeEquals(T1, T3));
}

} // namespace
