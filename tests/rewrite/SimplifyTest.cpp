//===- SimplifyTest.cpp - Simplification rule tests -----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/TypeInference.h"
#include "rewrite/Rules.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::rewrite;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

/// Interprets \p P before and after simplification on \p In and expects
/// identical results plus the given structural node count change.
void expectSimplifyPreserves(const Program &P, const std::vector<Value> &In,
                             const SizeEnv &Sizes) {
  inferTypes(P);
  ExprPtr Simplified = simplify(P->getBody());
  Program Q = makeProgram(P->getParams(), Simplified);
  inferTypes(Q);

  std::vector<float> Before, After;
  flattenValue(evalProgram(P, In, Sizes), Before);
  flattenValue(evalProgram(Q, In, Sizes), After);
  ASSERT_EQ(Before.size(), After.size());
  for (std::size_t I = 0; I != Before.size(); ++I)
    EXPECT_FLOAT_EQ(Before[I], After[I]) << "at " << I;
}

TEST(Simplify, TransposeTranspose) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram({A}, transpose(transpose(A)));
  inferTypes(P);
  ExprPtr S = simplify(P->getBody());
  EXPECT_EQ(S.get(), A.get()); // collapses to the bare parameter
}

TEST(Simplify, JoinSplit) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, join(split(cst(4), A)));
  inferTypes(P);
  EXPECT_EQ(simplify(P->getBody()).get(), A.get());
}

TEST(Simplify, SplitJoinOnlyWhenSizesMatch) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), cst(4)), N));
  // split(4, join(A)) == A since A's rows have length 4.
  Program P = makeProgram({A}, split(cst(4), join(A)));
  inferTypes(P);
  EXPECT_EQ(simplify(P->getBody()).get(), A.get());

  // split(2, join(A)) reshapes and must NOT be eliminated.
  Program Q = makeProgram({A}, split(cst(2), join(A)));
  inferTypes(Q);
  EXPECT_NE(simplify(Q->getBody()).get(), A.get());
}

TEST(Simplify, PadPadMergeClamp) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, pad(cst(1), cst(2), Boundary::clamp(),
               pad(cst(3), cst(1), Boundary::clamp(), A)));
  inferTypes(P);
  ExprPtr S = simplify(P->getBody());
  const auto *C = dynCast<CallExpr>(S);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getPrim(), Prim::Pad);
  EXPECT_TRUE(C->PadL->isCst(4));
  EXPECT_TRUE(C->PadR->isCst(3));
  EXPECT_EQ(C->getArgs()[0].get(), A.get());

  // Semantics preserved on data.
  std::vector<float> In = {1, 2, 3, 4};
  expectSimplifyPreserves(P, {makeFloatArray(In)},
                          {{N->getVarId(), 4}});
}

TEST(Simplify, PadPadMirrorNotMerged) {
  // Double mirroring is not a single mirror: keep it.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, pad(cst(2), cst(2), Boundary::mirror(),
               pad(cst(2), cst(2), Boundary::mirror(), A)));
  inferTypes(P);
  ExprPtr S = simplify(P->getBody());
  const auto *C = dynCast<CallExpr>(S);
  ASSERT_NE(C, nullptr);
  const auto *InnerPad = dynCast<CallExpr>(C->getArgs()[0]);
  ASSERT_NE(InnerPad, nullptr);
  EXPECT_EQ(InnerPad->getPrim(), Prim::Pad); // still two pads
}

TEST(Simplify, PadPadConstantMergeRequiresSameValue) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program Same = makeProgram(
      {A}, pad(cst(1), cst(1), Boundary::constant(0.0f),
               pad(cst(1), cst(1), Boundary::constant(0.0f), A)));
  inferTypes(Same);
  ExprPtr SimpSame = simplify(Same->getBody());
  const auto *C = dynCast<CallExpr>(SimpSame);
  ASSERT_NE(C, nullptr);
  EXPECT_TRUE(C->PadL->isCst(2));

  ParamPtr B = param("B", arrayT(floatT(), N));
  Program Diff = makeProgram(
      {B}, pad(cst(1), cst(1), Boundary::constant(1.0f),
               pad(cst(1), cst(1), Boundary::constant(0.0f), B)));
  inferTypes(Diff);
  ExprPtr SimpDiff = simplify(Diff->getBody());
  const auto *D = dynCast<CallExpr>(SimpDiff);
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->PadL->isCst(1)); // not merged
}

TEST(Simplify, MapIdElimination) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, map(etaLambda(ufIdFloat()), A));
  inferTypes(P);
  EXPECT_EQ(simplify(P->getBody()).get(), A.get());
}

TEST(Simplify, RunsToFixedPoint) {
  // A stack of redundancies collapses completely in one simplify call.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ExprPtr E = join(split(cst(4), map(etaLambda(ufIdFloat()),
                                     join(split(cst(2), A)))));
  Program P = makeProgram({A}, E);
  inferTypes(P);
  EXPECT_EQ(simplify(P->getBody()).get(), A.get());
}

TEST(Simplify, TilingRuleDecomposesIntoSmallerRules) {
  // Paper §4.1 argues the tiling rule's correctness by decomposing it:
  //   slide(sz, st) -> join(map(slide(sz, st)), slide(u, v))   (1)
  //   map(f, join(in)) -> join(map(map(f), in))                (2)
  //   map fusion                                               (3)
  // Applying (1), (2), (3) to map(f, slide(...)) must be semantically
  // identical to the one-shot tiling rule.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  Program P = makeProgram(
      {A}, map(SumNbh, slide(cst(3), cst(1),
                             pad(cst(1), cst(1), Boundary::clamp(), A))));

  // One-shot rule.
  Program OneShot = rewriteProgram(tiling1DRule(4), P);
  ASSERT_NE(OneShot, nullptr);

  // Decomposed: (1) then (2) then (3).
  Program Step1 = rewriteProgram(slideTilingDecompositionRule(4), P);
  ASSERT_NE(Step1, nullptr);
  Program Step2 = rewriteProgram(mapJoinRule(), Step1);
  ASSERT_NE(Step2, nullptr);
  Program Step3 = rewriteProgram(mapFusionRule(), Step2);
  ASSERT_NE(Step3, nullptr);

  std::vector<float> In(16);
  for (std::size_t I = 0; I != In.size(); ++I)
    In[I] = float(I);
  SizeEnv Sizes{{N->getVarId(), 16}};
  std::vector<float> FOne, FDec, FOrig;
  flattenValue(evalProgram(OneShot, {makeFloatArray(In)}, Sizes), FOne);
  flattenValue(evalProgram(Step3, {makeFloatArray(In)}, Sizes), FDec);
  flattenValue(evalProgram(P, {makeFloatArray(In)}, Sizes), FOrig);
  EXPECT_EQ(FOne, FDec);
  EXPECT_EQ(FOne, FOrig);
}

TEST(Simplify, PerDimBoundaryPadNd) {
  // Paper §3.4: different boundary handling per dimension. Clamp rows,
  // wrap columns; validated against the interpreter semantics.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram(
      {A}, padNdPerDim(2, cst(1), cst(1),
                       {Boundary::clamp(), Boundary::wrap()}, A));
  inferTypes(P);

  std::vector<float> In = {1, 2, 3, //
                           4, 5, 6};
  SizeEnv Sizes{{N->getVarId(), 2}, {M->getVarId(), 3}};
  Value Out = evalProgram(P, {makeFloatArray2D(In, 2, 3)}, Sizes);
  std::vector<float> Flat;
  flattenValue(Out, Flat);
  // Rows clamped (row -1 = row 0, row 2 = row 1), columns wrapped.
  EXPECT_EQ(Flat, (std::vector<float>{3, 1, 2, 3, 1,  //
                                      3, 1, 2, 3, 1,  //
                                      6, 4, 5, 6, 4,  //
                                      6, 4, 5, 6, 4}));
}

} // namespace
