//===- RulesTest.cpp - Semantic preservation of rewrite rules ------------===//
//
// Part of the liftcpp project.
//
// Every rewrite rule is property-tested: interpret the program before
// and after rewriting on concrete inputs and require identical results
// (the rules are "provably correct" in the paper; here they are
// machine-checked on samples).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/TypeInference.h"
#include "rewrite/Rules.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::rewrite;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

std::vector<float> iota(std::size_t N) {
  std::vector<float> V(N);
  for (std::size_t I = 0; I != N; ++I)
    V[I] = float((I * 7 + 3) % 23);
  return V;
}

/// Asserts that rewriting with \p R preserves the program's semantics
/// on the given input, and that the rule matched at least once.
void expectRulePreserves(const Rule &R, const Program &P,
                         const std::vector<Value> &Inputs,
                         const SizeEnv &Sizes) {
  Program Rewritten = rewriteProgram(R, P);
  ASSERT_NE(Rewritten, nullptr) << "rule " << R.Name << " did not match";

  Value Before = evalProgram(P, Inputs, Sizes);
  Value After = evalProgram(Rewritten, Inputs, Sizes);
  std::vector<float> FlatBefore, FlatAfter;
  flattenValue(Before, FlatBefore);
  flattenValue(After, FlatAfter);
  ASSERT_EQ(FlatBefore.size(), FlatAfter.size());
  for (std::size_t I = 0; I != FlatBefore.size(); ++I)
    EXPECT_FLOAT_EQ(FlatBefore[I], FlatAfter[I]) << R.Name << " at " << I;
}

LambdaPtr sumNbh() {
  return lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
}

Program jacobi1DProgram(ParamPtr A) {
  return makeProgram(
      {A}, map(sumNbh(), slide(cst(3), cst(1),
                               pad(cst(1), cst(1), Boundary::clamp(), A))));
}

TEST(Rules, MapFusionPreservesSemantics) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr AddOne = lam("x", [](ExprPtr X) {
    return apply(ufAddFloat(), {X, lit(1.0f)});
  });
  LambdaPtr Double = lam("x", [](ExprPtr X) {
    return apply(ufMultFloat(), {X, lit(2.0f)});
  });
  Program P = makeProgram({A}, map(AddOne, map(Double, A)));
  std::vector<float> In = iota(10);
  expectRulePreserves(mapFusionRule(), P, {makeFloatArray(In)},
                      {{N->getVarId(), 10}});
}

TEST(Rules, MapFusionEliminatesInnerMap) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr Id = etaLambda(ufIdFloat());
  Program P = makeProgram({A}, map(Id, map(etaLambda(ufIdFloat()), A)));
  Program Q = rewriteProgram(mapFusionRule(), P);
  ASSERT_NE(Q, nullptr);
  // After fusion there is exactly one map.
  Rule CountMaps{"count", [](const ExprPtr &E) -> ExprPtr {
                   const auto *C = dynCast<CallExpr>(E);
                   return (C && C->getPrim() == Prim::Map) ? E : nullptr;
                 }};
  EXPECT_EQ(countMatches(CountMaps, Q->getBody()), 1);
}

TEST(Rules, SplitJoinPreservesSemantics) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr AddOne = lam("x", [](ExprPtr X) {
    return apply(ufAddFloat(), {X, lit(1.0f)});
  });
  Program P = makeProgram({A}, map(AddOne, A));
  std::vector<float> In = iota(12);
  expectRulePreserves(splitJoinRule(cst(4)), P, {makeFloatArray(In)},
                      {{N->getVarId(), 12}});
}

TEST(Rules, Tiling1DPreservesSemantics) {
  // The paper's central rule (§4.1), checked on several tile sizes and
  // input lengths.
  AExpr N = sizeVar("n");
  for (std::int64_t TileOut : {2, 4, 8}) {
    for (std::size_t Len : {16u, 32u}) {
      ParamPtr A = param("A", arrayT(floatT(), N));
      Program P = jacobi1DProgram(A);
      std::vector<float> In = iota(Len);
      expectRulePreserves(tiling1DRule(TileOut), P, {makeFloatArray(In)},
                          {{N->getVarId(), std::int64_t(Len)}});
    }
  }
}

TEST(Rules, Tiling1DProducesListing4Shape) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1DProgram(A);
  Program Q = rewriteProgram(tiling1DRule(3), P);
  ASSERT_NE(Q, nullptr);
  std::string S = ir::toString(Q->getBody());
  // join(map(tile => map(f, slide(3,1,tile)), slide(5, 3, pad(...))))
  EXPECT_EQ(S.find("join("), 0u) << S;
  EXPECT_NE(S.find("slide(5, 3"), std::string::npos) << S;
  EXPECT_NE(S.find("slide(3, 1"), std::string::npos) << S;
}

TEST(Rules, TilingConstraintHoldsForAnyWindow) {
  // The rule also covers strided windows: slide(5, 2). Besides the
  // paper's u - v == size - step constraint, validity requires the tile
  // step v to be a multiple of the window step so windows inside tiles
  // line up with the untiled window grid: v = 4, u = 4 + 3 = 7.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, map(sumNbh(), slide(cst(5), cst(2),
                               pad(cst(2), cst(2), Boundary::clamp(), A))));
  // padded length 20: 8 windows; 4 tiles x 2 windows each.
  std::vector<float> In = iota(16);
  expectRulePreserves(tiling1DRule(4), P, {makeFloatArray(In)},
                      {{N->getVarId(), 16}});
}

TEST(Rules, ReduceToSeqPreservesSemantics) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1DProgram(A);
  std::vector<float> In = iota(8);
  expectRulePreserves(reduceToSeqRule(), P, {makeFloatArray(In)},
                      {{N->getVarId(), 8}});
}

TEST(Rules, ReduceUnrollRequiresConstantLength) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  // Over a neighborhood (constant size 3): applies.
  Program P = makeProgram(
      {A}, map(lam("nbh",
                   [](ExprPtr Nbh) {
                     return theOne(reduceSeq(etaLambda(ufAddFloat()),
                                             lit(0.0f), Nbh));
                   }),
               slide(cst(3), cst(1),
                     pad(cst(1), cst(1), Boundary::clamp(), A))));
  inferTypes(P);
  Program Q = rewriteProgram(reduceUnrollRule(), P);
  EXPECT_NE(Q, nullptr);

  // Over the whole (symbolic-length) array: must not apply.
  ParamPtr B = param("B", arrayT(floatT(), N));
  Program P2 = makeProgram(
      {B}, reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), B));
  inferTypes(P2);
  EXPECT_EQ(rewriteProgram(reduceUnrollRule(), P2), nullptr);
}

TEST(Rules, ToLocalMarksIdCopies) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram({A}, mapLcl(0, etaLambda(ufIdFloat()), A));
  Program Q = rewriteProgram(toLocalRule(), P);
  ASSERT_NE(Q, nullptr);
  const auto *C = dynCast<CallExpr>(Q->getBody());
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(dynCast<LambdaExpr>(C->getArgs()[0])->getAddrSpace(),
            AddrSpace::Local);
  // Idempotent: it must not match again (address space now Local).
  EXPECT_EQ(rewriteProgram(toLocalRule(), Q), nullptr);
}

TEST(Rules, IterateExpandPreservesSemantics) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr Step = lam("xs", [](ExprPtr Xs) {
    return map(lam("x",
                   [](ExprPtr X) {
                     return apply(ufMultFloat(), {X, lit(2.0f)});
                   }),
               Xs);
  });
  Program P = makeProgram({A}, iterate(3, Step, A));
  std::vector<float> In = iota(6);
  expectRulePreserves(iterateExpandRule(), P, {makeFloatArray(In)},
                      {{N->getVarId(), 6}});
}

//===----------------------------------------------------------------------===//
// Matchers
//===----------------------------------------------------------------------===//

TEST(Matchers, MatchSlideNdRecognizesBuilders) {
  AExpr N = sizeVar("n");
  for (unsigned Dims : {1u, 2u, 3u}) {
    TypePtr Ty = floatT();
    for (unsigned D = 0; D != Dims; ++D)
      Ty = arrayT(Ty, N);
    ParamPtr A = param("A", Ty);
    ExprPtr E = slideNd(Dims, cst(3), cst(1), A);
    std::optional<SlideNdMatch> M = matchSlideNd(E);
    ASSERT_TRUE(M.has_value()) << "dims " << Dims;
    EXPECT_EQ(M->Dims, Dims);
    EXPECT_TRUE(M->Size->isCst(3));
    EXPECT_TRUE(M->Step->isCst(1));
    EXPECT_EQ(M->Inner.get(), A.get());
  }
}

TEST(Matchers, MatchSlideNdSeesThroughToPad) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), N), N));
  ExprPtr Padded = padNd(2, cst(1), cst(1), Boundary::clamp(), A);
  ExprPtr E = slideNd(2, cst(3), cst(1), Padded);
  std::optional<SlideNdMatch> M = matchSlideNd(E);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Inner.get(), Padded.get());
}

TEST(Matchers, MatchMapNdRecognizesBuilders) {
  AExpr N = sizeVar("n");
  for (unsigned Dims : {1u, 2u, 3u}) {
    TypePtr Ty = floatT();
    for (unsigned D = 0; D != Dims; ++D)
      Ty = arrayT(Ty, N);
    ParamPtr A = param("A", Ty);
    LambdaPtr F = lam("x", [](ExprPtr X) {
      return apply(ufAddFloat(), {X, lit(1.0f)});
    });
    ExprPtr E = mapNd(Dims, F, A);
    std::optional<MapNdMatch> M = matchMapNd(E);
    ASSERT_TRUE(M.has_value());
    EXPECT_EQ(M->Dims, Dims);
    EXPECT_EQ(M->F.get(), F.get());
    EXPECT_EQ(M->Input.get(), A.get());
  }
}

TEST(Matchers, IsLayoutOnly) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  EXPECT_TRUE(isLayoutOnly(slide(cst(3), cst(1), A)));
  EXPECT_TRUE(isLayoutOnly(pad(cst(1), cst(1), Boundary::clamp(), A)));
  EXPECT_TRUE(isLayoutOnly(slideNd(2, cst(3), cst(1),
                                   param("B", arrayT(arrayT(floatT(), N), N)))));
  EXPECT_FALSE(isLayoutOnly(map(etaLambda(ufIdFloat()), A)));
  EXPECT_FALSE(
      isLayoutOnly(reduce(etaLambda(ufAddFloat()), lit(0.0f), A)));
}

} // namespace
