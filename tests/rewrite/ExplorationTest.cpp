//===- ExplorationTest.cpp - Rewrite-space exploration tests --------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "rewrite/Exploration.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::rewrite;
using namespace lift::stencil;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

Program jacobi1D(ParamPtr A) {
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram(
      {A}, map(SumNbh, slide(cst(3), cst(1),
                             pad(cst(1), cst(1), Boundary::clamp(), A))));
}

TEST(Exploration, ApplyAtOccurrenceSelectsPositions) {
  // A program with two fusable map pairs: map(f, map(g, map(h, A))).
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  auto Mul = [](float C) {
    return lam("x", [C](ExprPtr X) {
      return ir::apply(ufMultFloat(), {X, lit(C)});
    });
  };
  Program P = makeProgram(
      {A}, map(Mul(2), map(Mul(3), map(Mul(5), A))));
  Rule Fusion = mapFusionRule();
  EXPECT_EQ(countMatches(Fusion, P->getBody()), 2);
  ExprPtr At0 = applyAtOccurrence(Fusion, P->getBody(), 0);
  ExprPtr At1 = applyAtOccurrence(Fusion, P->getBody(), 1);
  ExprPtr At2 = applyAtOccurrence(Fusion, P->getBody(), 2);
  EXPECT_NE(At0, nullptr);
  EXPECT_NE(At1, nullptr);
  EXPECT_EQ(At2, nullptr); // only two occurrences
  EXPECT_NE(toString(At0), toString(At1));
}

TEST(Exploration, FindsDistinctVariantsOfJacobi) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);

  ExplorationOptions O;
  O.MaxDepth = 2;
  O.MaxPrograms = 64;
  std::vector<Derivation> Space = explore(P, stencilExplorationRules(), O);

  // The space contains the original plus several rewrites, including
  // at least one tiled derivation.
  EXPECT_GT(Space.size(), 4u);
  bool FoundTiled = false;
  for (const Derivation &D : Space)
    for (const std::string &RuleName : D.RulesApplied)
      FoundTiled |= RuleName == "overlappedTiling1D";
  EXPECT_TRUE(FoundTiled);
}

TEST(Exploration, AllDerivationsAreSemanticallyEqual) {
  // The heart of the paper's claim: every reachable program computes
  // the same function ("provably correct rewrite rules").
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);

  ExplorationOptions O;
  O.MaxDepth = 2;
  O.MaxPrograms = 32;
  std::vector<Derivation> Space = explore(P, stencilExplorationRules(), O);

  // Length 64 satisfies the divisibility constraints of every tile and
  // split size combination reachable within the depth bound (rules can
  // only check constant lengths statically; symbolic ones become
  // obligations on the launch size, enforced by the tuner in
  // production).
  std::vector<float> In(64);
  for (std::size_t I = 0; I != In.size(); ++I)
    In[I] = float((I * 5 + 2) % 11);
  SizeEnv Sizes{{N->getVarId(), 64}};
  std::vector<float> Reference;
  flattenValue(evalProgram(P, {makeFloatArray(In)}, Sizes), Reference);

  for (const Derivation &D : Space) {
    std::vector<float> Got;
    flattenValue(evalProgram(D.P, {makeFloatArray(In)}, Sizes), Got);
    ASSERT_EQ(Got.size(), Reference.size()) << toString(D.P);
    for (std::size_t I = 0; I != Got.size(); ++I)
      ASSERT_FLOAT_EQ(Got[I], Reference[I])
          << "derivation " << toString(D.P) << " differs at " << I;
  }
}

TEST(Exploration, DepthBoundsTheSpace) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);
  ExplorationOptions Shallow;
  Shallow.MaxDepth = 1;
  ExplorationOptions Deep;
  Deep.MaxDepth = 3;
  std::size_t SizeShallow =
      explore(P, stencilExplorationRules(), Shallow).size();
  std::size_t SizeDeep = explore(P, stencilExplorationRules(), Deep).size();
  EXPECT_GT(SizeShallow, 1u);
  EXPECT_GT(SizeDeep, SizeShallow);
}

TEST(Exploration, RespectsProgramBudget) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = jacobi1D(A);
  ExplorationOptions O;
  O.MaxDepth = 4;
  O.MaxPrograms = 10;
  EXPECT_LE(explore(P, stencilExplorationRules(), O).size(), 10u);
}

TEST(Exploration, DiscoveryOrderIsDeterministic) {
  // Candidates are deduplicated through a hash set; this regression
  // test pins down that the *output* order never depends on that set's
  // internal iteration order. Two runs — with different amounts of
  // prior interning/allocation history, hence different pointer values
  // and hash layouts — must produce the identical derivation sequence.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ExplorationOptions O;
  O.MaxDepth = 2;
  O.MaxPrograms = 64;

  std::vector<Derivation> First = explore(jacobi1D(A), // fresh clones inside
                                          stencilExplorationRules(), O);
  // Perturb allocation/interning history between runs so accidental
  // order-dependence on addresses or table layout would show up.
  for (int I = 0; I != 257; ++I)
    (void)add(sizeVar("perturb"), cst(I));
  std::vector<Derivation> Second =
      explore(jacobi1D(A), stencilExplorationRules(), O);

  ASSERT_EQ(First.size(), Second.size());
  for (std::size_t I = 0; I != First.size(); ++I) {
    ASSERT_EQ(First[I].RulesApplied, Second[I].RulesApplied) << "at " << I;
    ASSERT_EQ(toString(First[I].P), toString(Second[I].P)) << "at " << I;
  }
}

TEST(Exploration, MaxProgramsYieldsExactPrefix) {
  // The documented budget contract: a smaller MaxPrograms returns
  // exactly the first k derivations of the larger run's order — a cut,
  // not a sample.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ExplorationOptions Small, Large;
  Small.MaxDepth = Large.MaxDepth = 2;
  Small.MaxPrograms = 9;
  Large.MaxPrograms = 64;

  std::vector<Derivation> Few =
      explore(jacobi1D(A), stencilExplorationRules(), Small);
  std::vector<Derivation> Many =
      explore(jacobi1D(A), stencilExplorationRules(), Large);

  ASSERT_EQ(Few.size(), 9u);
  ASSERT_GE(Many.size(), Few.size());
  for (std::size_t I = 0; I != Few.size(); ++I) {
    ASSERT_EQ(Few[I].RulesApplied, Many[I].RulesApplied) << "at " << I;
    ASSERT_EQ(toString(Few[I].P), toString(Many[I].P)) << "at " << I;
  }
}

} // namespace
