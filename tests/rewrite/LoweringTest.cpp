//===- LoweringTest.cpp - Lowering strategies end to end -----------------===//
//
// Part of the liftcpp project.
//
// Lowers high-level stencil programs with every option combination,
// compiles them, executes them on the simulator and checks against the
// high-level interpreter — the contract that every point of the
// optimization space is semantics-preserving.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "interp/Interpreter.h"
#include "rewrite/Lowering.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::rewrite;
using namespace lift::stencil;
using namespace lift::codegen;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

std::vector<float> testData(std::size_t N) {
  std::vector<float> V(N);
  for (std::size_t I = 0; I != N; ++I)
    V[I] = float((I * 11 + 7) % 19) * 0.5f;
  return V;
}

/// Builds the canonical n-dim sum stencil program over an n^d grid.
Program sumStencilProgram(unsigned Dims, AExpr N) {
  TypePtr Ty = floatT();
  for (unsigned D = 0; D != Dims; ++D)
    Ty = arrayT(Ty, N);
  ParamPtr A = param("A", Ty);
  return makeProgram(
      {A}, stencilNd(Dims, sumNeighborhood(Dims), cst(3), cst(1), cst(1),
                     cst(1), Boundary::clamp(), A));
}

Value gridValue(unsigned Dims, const std::vector<float> &Data,
                std::size_t G) {
  if (Dims == 1)
    return makeFloatArray(Data);
  if (Dims == 2)
    return makeFloatArray2D(Data, G, G);
  return makeFloatArray3D(Data, G, G, G);
}

/// Lowers with \p O, runs on the simulator, compares to the
/// interpreter on the high-level program.
void expectLoweringCorrect(unsigned Dims, std::int64_t G,
                           const LoweringOptions &O) {
  AExpr N = sizeVar("n");
  Program High = sumStencilProgram(Dims, N);
  Program Low = lowerStencil(High, O);
  ASSERT_NE(Low, nullptr) << O.describe();

  std::size_t Total = 1;
  for (unsigned D = 0; D != Dims; ++D)
    Total *= std::size_t(G);
  std::vector<float> In = testData(Total);
  ocl::SizeEnv Sizes{{N->getVarId(), G}};

  Value Expected =
      evalProgram(High, {gridValue(Dims, In, std::size_t(G))}, Sizes);
  std::vector<float> ExpectedFlat;
  flattenValue(Expected, ExpectedFlat);

  RunResult R = runOnSim(Low, {In}, Sizes);
  ASSERT_EQ(R.Output.size(), ExpectedFlat.size()) << O.describe();
  for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
    ASSERT_FLOAT_EQ(R.Output[I], ExpectedFlat[I])
        << O.describe() << " dims=" << Dims << " at " << I;
}

struct LoweringCase {
  unsigned Dims;
  std::int64_t Grid;
  LoweringOptions O;
};

class LoweringProperty : public ::testing::TestWithParam<LoweringCase> {};

TEST_P(LoweringProperty, MatchesInterpreter) {
  const LoweringCase &C = GetParam();
  expectLoweringCorrect(C.Dims, C.Grid, C.O);
}

LoweringOptions opt(bool Tile, std::int64_t TileOut, bool Local, bool Unroll,
                    std::int64_t Coarsen, std::int64_t TileCoarsen = 1) {
  LoweringOptions O;
  O.Tile = Tile;
  O.TileOutputs = TileOut;
  O.UseLocalMem = Local;
  O.UnrollReduce = Unroll;
  O.Coarsen = Coarsen;
  O.TileCoarsen = TileCoarsen;
  return O;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, LoweringProperty,
    ::testing::Values(
        // Untiled, 1D/2D/3D.
        LoweringCase{1, 16, opt(false, 0, false, false, 1)},
        LoweringCase{2, 12, opt(false, 0, false, false, 1)},
        LoweringCase{3, 8, opt(false, 0, false, false, 1)},
        // Unrolled reductions.
        LoweringCase{1, 16, opt(false, 0, false, true, 1)},
        LoweringCase{2, 12, opt(false, 0, false, true, 1)},
        // Thread coarsening.
        LoweringCase{1, 16, opt(false, 0, false, false, 4)},
        LoweringCase{2, 12, opt(false, 0, false, false, 3)},
        LoweringCase{3, 8, opt(false, 0, false, false, 2)},
        // Tiled without local memory.
        LoweringCase{1, 16, opt(true, 4, false, false, 1)},
        LoweringCase{2, 12, opt(true, 4, false, false, 1)},
        LoweringCase{3, 8, opt(true, 4, false, false, 1)},
        // Tiled with local memory staging.
        LoweringCase{1, 16, opt(true, 4, true, false, 1)},
        LoweringCase{2, 12, opt(true, 4, true, false, 1)},
        LoweringCase{3, 8, opt(true, 4, true, false, 1)},
        // Tiled + local + unroll (the full §4 stack).
        LoweringCase{2, 12, opt(true, 6, true, true, 1)},
        LoweringCase{2, 16, opt(true, 8, true, true, 1)},
        // PPCG-style: tiled + local with intra-tile thread coarsening.
        LoweringCase{2, 16, opt(true, 8, true, false, 1, 4)},
        LoweringCase{1, 16, opt(true, 8, true, false, 1, 2)},
        LoweringCase{3, 8, opt(true, 4, true, false, 1, 2)}));

TEST(Lowering, TiledUsesWorkgroupsAndLocalMem) {
  AExpr N = sizeVar("n");
  Program High = sumStencilProgram(2, N);
  Program Low = lowerStencil(High, opt(true, 4, true, false, 1));
  ASSERT_NE(Low, nullptr);
  std::vector<float> In = testData(12 * 12);
  RunResult R = runOnSim(Low, {In}, {{N->getVarId(), 12}});
  EXPECT_TRUE(R.NDRange.UsesWorkGroups);
  EXPECT_EQ(R.NDRange.NumGroups[0], 3);
  EXPECT_EQ(R.NDRange.NumGroups[1], 3);
  EXPECT_GT(R.NDRange.LocalMemBytes, 0);
  EXPECT_GT(R.Counters.LocalLoads, 0u);
}

TEST(Lowering, LocalStagingReducesGlobalLoads) {
  // Staging through local memory must eliminate redundant global reads:
  // each input element is loaded once per tile instead of ~9 times.
  AExpr N = sizeVar("n");
  Program High = sumStencilProgram(2, N);
  Program Untiled = lowerStencil(High, opt(false, 0, false, false, 1));
  Program Staged = lowerStencil(High, opt(true, 8, true, false, 1));
  ASSERT_NE(Untiled, nullptr);
  ASSERT_NE(Staged, nullptr);
  std::vector<float> In = testData(32 * 32);
  ocl::SizeEnv Sizes{{N->getVarId(), 32}};
  RunResult RU = runOnSim(Untiled, {In}, Sizes);
  RunResult RS = runOnSim(Staged, {In}, Sizes);
  EXPECT_EQ(RU.Counters.GlobalLoads, 9u * 32 * 32);
  EXPECT_LT(RS.Counters.GlobalLoads, RU.Counters.GlobalLoads / 4);
}

TEST(Lowering, CoarseningShrinksNDRange) {
  AExpr N = sizeVar("n");
  Program High = sumStencilProgram(2, N);
  Program Low = lowerStencil(High, opt(false, 0, false, false, 4));
  ASSERT_NE(Low, nullptr);
  std::vector<float> In = testData(16 * 16);
  RunResult R = runOnSim(Low, {In}, {{N->getVarId(), 16}});
  EXPECT_EQ(R.NDRange.GlobalSize[0], 4); // 16 / 4 threads in dim 0
  EXPECT_EQ(R.NDRange.GlobalSize[1], 16);
}

TEST(Lowering, TilingRequiresSlideNd) {
  // A plain elementwise map has no neighborhood: tiling must refuse.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, map(lam("x", [](ExprPtr X) {
             return apply(ufAddFloat(), {X, lit(1.0f)});
           }),
           A));
  std::string WhyNot;
  EXPECT_EQ(lowerStencil(P, opt(true, 4, false, false, 1), &WhyNot), nullptr);
  EXPECT_NE(WhyNot.find("neither a slideNd"), std::string::npos) << WhyNot;
}

TEST(Lowering, MixedWindowGeometriesAreDiagnosed) {
  // zip of two neighborhoods with different window shapes (a 3-window
  // and a 5-window): the tiled lowering cannot pick one tile extent, so
  // it must refuse with a reason instead of returning a bare nullptr
  // that callers then dereference.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), add(N, cst(2))));
  LambdaPtr F = lam("t", [](ExprPtr T) {
    ExprPtr SumA = theOne(
        reduce(etaLambda(ufAddFloat()), lit(0.0f), get(0, T)));
    ExprPtr SumB = theOne(
        reduce(etaLambda(ufAddFloat()), lit(0.0f), get(1, T)));
    return apply(ufAddFloat(), {SumA, SumB});
  });
  Program P = makeProgram(
      {A, B}, map(F, zip(slide(cst(3), cst(1), pad(cst(1), cst(1),
                                                   Boundary::clamp(), A)),
                         slide(cst(5), cst(1), pad(cst(1), cst(1),
                                                   Boundary::clamp(), B)))));
  std::string WhyNot;
  EXPECT_EQ(lowerStencil(P, opt(true, 4, false, false, 1), &WhyNot), nullptr);
  EXPECT_NE(WhyNot.find("mixed window geometries"), std::string::npos)
      << WhyNot;

  // The same program still lowers untiled: the refusal is specific to
  // the tiled strategy, not to the program.
  std::string UntiledWhy;
  EXPECT_NE(lowerStencil(P, opt(false, 0, false, false, 1), &UntiledWhy),
            nullptr)
      << UntiledWhy;
}

TEST(Lowering, IterateExpandsToMultiPhaseKernel) {
  // iterate(2, step) (paper §3.1: "the iterate primitive can be used to
  // perform multiple iterations") expands to two chained stencil
  // phases; the inner phase is lowered too and materializes into a
  // global temporary.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr StepF = lam("xs", [](ExprPtr Xs) {
    return map(lam("nbh",
                   [](ExprPtr Nbh) {
                     return theOne(reduce(etaLambda(ufAddFloat()),
                                          lit(0.0f), Nbh));
                   }),
               slide(cst(3), cst(1),
                     pad(cst(1), cst(1), Boundary::clamp(), Xs)));
  });
  Program High = makeProgram({A}, iterate(2, StepF, A));

  LoweringOptions O;
  Program Low = lowerStencil(High, O);
  ASSERT_NE(Low, nullptr);

  std::vector<float> In = testData(16);
  ocl::SizeEnv Sizes{{N->getVarId(), 16}};
  Value Expected = evalProgram(High, {makeFloatArray(In)}, Sizes);
  std::vector<float> ExpectedFlat;
  flattenValue(Expected, ExpectedFlat);

  RunResult R = runOnSim(Low, {In}, Sizes);
  ASSERT_EQ(R.Output.size(), ExpectedFlat.size());
  for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
    EXPECT_FLOAT_EQ(R.Output[I], ExpectedFlat[I]) << "at " << I;
  // Two phases: the first writes a temporary, the second the output.
  EXPECT_EQ(R.Counters.GlobalStores, 2u * 16u);
}

TEST(Lowering, ThreeIterations2D) {
  AExpr N = sizeVar("n");
  Program OneStep = sumStencilProgram(2, N);
  // Wrap the one-step stencil into iterate(3, ...).
  ParamPtr A = param("A", arrayT(arrayT(floatT(), N), N));
  LambdaPtr StepF = lam("xs", [&](ExprPtr Xs) {
    return stencilNd(2, sumNeighborhood(2), cst(3), cst(1), cst(1), cst(1),
                     Boundary::clamp(), Xs);
  });
  Program High = makeProgram({A}, iterate(3, StepF, A));

  LoweringOptions O;
  Program Low = lowerStencil(High, O);
  ASSERT_NE(Low, nullptr);

  std::vector<float> In = testData(10 * 10);
  ocl::SizeEnv Sizes{{N->getVarId(), 10}};
  Value Expected =
      evalProgram(High, {makeFloatArray2D(In, 10, 10)}, Sizes);
  std::vector<float> ExpectedFlat;
  flattenValue(Expected, ExpectedFlat);
  RunResult R = runOnSim(Low, {In}, Sizes);
  ASSERT_EQ(R.Output.size(), ExpectedFlat.size());
  for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
    EXPECT_FLOAT_EQ(R.Output[I], ExpectedFlat[I]) << "at " << I;
}

TEST(Lowering, DescribeNames) {
  EXPECT_EQ(opt(true, 16, true, true, 1).describe(), "tiled16-local-unroll");
  EXPECT_EQ(opt(false, 0, false, false, 4).describe(), "global-coarsen4");
  EXPECT_EQ(opt(false, 0, false, false, 1).describe(), "global");
}

} // namespace
