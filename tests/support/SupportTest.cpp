//===- SupportTest.cpp - Support utility tests ----------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "support/Support.h"

#include <gtest/gtest.h>

using namespace lift;

namespace {

TEST(Support, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDivInt(7, 2), 3);
  EXPECT_EQ(floorDivInt(-7, 2), -4);
  EXPECT_EQ(floorDivInt(7, -2), -4);
  EXPECT_EQ(floorDivInt(-7, -2), 3);
  EXPECT_EQ(floorDivInt(6, 3), 2);
  EXPECT_EQ(floorDivInt(-6, 3), -2);
}

TEST(Support, FloorModHasDivisorSign) {
  EXPECT_EQ(floorModInt(7, 3), 1);
  EXPECT_EQ(floorModInt(-7, 3), 2);
  EXPECT_EQ(floorModInt(7, -3), -2);
  EXPECT_EQ(floorModInt(-7, -3), -1);
}

TEST(Support, FloorDivModIdentity) {
  // a == b * floorDiv(a, b) + floorMod(a, b) for every sign combo.
  for (std::int64_t A = -20; A <= 20; ++A)
    for (std::int64_t B : {-7, -3, -1, 1, 2, 5, 9})
      EXPECT_EQ(A, B * floorDivInt(A, B) + floorModInt(A, B))
          << A << " / " << B;
}

TEST(Support, FloorModRangeForPositiveDivisor) {
  for (std::int64_t A = -50; A <= 50; ++A) {
    std::int64_t M = floorModInt(A, 8);
    EXPECT_GE(M, 0);
    EXPECT_LT(M, 8);
  }
}

TEST(Support, RandomSourceIsDeterministic) {
  RandomSource A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.nextInt(0, 1 << 20), B.nextInt(0, 1 << 20));
}

TEST(Support, RandomSourceRespectsBounds) {
  RandomSource R(7);
  for (int I = 0; I != 200; ++I) {
    std::int64_t V = R.nextInt(3, 9);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 9);
    float F = R.nextFloat(0.25f, 1.25f);
    EXPECT_GE(F, 0.25f);
    EXPECT_LT(F, 1.25f);
  }
}

TEST(Support, HashCombineSpreads) {
  // Not a strong property, just a regression guard: combining distinct
  // values from the same seed must not collapse.
  std::size_t H1 = hashCombine(0, 1);
  std::size_t H2 = hashCombine(0, 2);
  std::size_t H12 = hashCombine(H1, 2);
  std::size_t H21 = hashCombine(H2, 1);
  EXPECT_NE(H1, H2);
  EXPECT_NE(H12, H21); // order-sensitive
}

} // namespace
