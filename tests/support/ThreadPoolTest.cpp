//===- ThreadPoolTest.cpp - Work-stealing pool tests ----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

using namespace lift;

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  const std::size_t N = 10000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](std::size_t I) { ++Hits[I]; });
  for (std::size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, SmallAndDegenerateRanges) {
  ThreadPool Pool(4);
  for (std::size_t N : {std::size_t(0), std::size_t(1), std::size_t(2),
                        std::size_t(3), std::size_t(7)}) {
    std::atomic<std::size_t> Sum{0};
    Pool.parallelFor(N, [&](std::size_t I) { Sum += I + 1; });
    EXPECT_EQ(Sum.load(), N * (N + 1) / 2) << "N=" << N;
  }
}

TEST(ThreadPool, MaxParallelismOneRunsInline) {
  ThreadPool Pool(4);
  std::vector<int> Order;
  // Not thread-safe on purpose: parallelism 1 must run on the caller.
  Pool.parallelFor(100, [&](std::size_t I) { Order.push_back(int(I)); },
                   /*MaxParallelism=*/1);
  ASSERT_EQ(Order.size(), 100u);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Order[std::size_t(I)], I);
}

TEST(ThreadPool, UnevenWorkloadsComplete) {
  ThreadPool Pool(4);
  const std::size_t N = 256;
  std::vector<std::atomic<std::uint64_t>> Out(N);
  Pool.parallelFor(N, [&](std::size_t I) {
    // Skewed work: later indices are much heavier, exercising stealing.
    std::uint64_t Acc = 0;
    for (std::size_t K = 0; K != I * 100; ++K)
      Acc += K * K + I;
    Out[I] = Acc + 1;
  });
  for (std::size_t I = 0; I != N; ++I)
    EXPECT_NE(Out[I].load(), 0u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool Pool(4);
  std::atomic<std::size_t> Total{0};
  Pool.parallelFor(8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::insideTask());
    // The nested loop must not deadlock waiting on pool workers.
    Pool.parallelFor(8, [&](std::size_t) { ++Total; });
  });
  EXPECT_EQ(Total.load(), 64u);
  EXPECT_FALSE(ThreadPool::insideTask());
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool Pool(4);
  EXPECT_THROW(
      Pool.parallelFor(100,
                       [&](std::size_t I) {
                         if (I == 57)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<std::size_t> Sum{0};
  Pool.parallelFor(10, [&](std::size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 45u);
}

TEST(ThreadPool, SharedSingletonIsUsable) {
  ThreadPool &Pool = ThreadPool::shared();
  EXPECT_GE(Pool.workers(), 1u);
  std::atomic<std::size_t> Sum{0};
  Pool.parallelFor(1000, [&](std::size_t I) { Sum += I; });
  EXPECT_EQ(Sum.load(), 1000u * 999u / 2);
}

} // namespace
