//===- CodeGenTest.cpp - Compile+simulate vs interpreter oracle ----------===//
//
// Part of the liftcpp project.
//
// Every test builds a *low-level* Lift program, runs it through the
// code generator and the NDRange simulator, and compares the result
// against the high-level interpreter — the end-to-end correctness
// contract of the compilation pipeline.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "interp/Interpreter.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;
using namespace lift::codegen;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

/// Runs \p P both on the interpreter and through codegen+simulator and
/// expects identical results.
void expectSimMatchesInterp(const Program &P,
                            const std::vector<std::vector<float>> &Inputs,
                            const std::vector<Value> &InputValues,
                            const ocl::SizeEnv &Sizes) {
  Value Expected = evalProgram(P, InputValues, Sizes);
  std::vector<float> ExpectedFlat;
  flattenValue(Expected, ExpectedFlat);

  RunResult R = runOnSim(P, Inputs, Sizes);
  ASSERT_EQ(R.Output.size(), ExpectedFlat.size());
  for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
    EXPECT_FLOAT_EQ(R.Output[I], ExpectedFlat[I]) << "at " << I;
}

std::vector<float> iota(std::size_t N, float Scale = 1.0f) {
  std::vector<float> V(N);
  for (std::size_t I = 0; I != N; ++I)
    V[I] = Scale * float((I * 13 + 5) % 17);
  return V;
}

LambdaPtr sumNbh1D() {
  return lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
}

TEST(CodeGen, MapGlbElementwise) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapGlb(0, lam("x", [](ExprPtr X) {
             return apply(ufAddFloat(), {X, lit(10.0f)});
           }),
           A));
  std::vector<float> In = iota(16);
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 16}});
}

TEST(CodeGen, Listing2Lowered) {
  // mapGlb(sumNbh, slide(3, 1, pad(1, 1, clamp, A)))
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapGlb(0, sumNbh1D(),
                  slide(cst(3), cst(1),
                        pad(cst(1), cst(1), Boundary::clamp(), A))));
  std::vector<float> In = iota(32);
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 32}});
}

TEST(CodeGen, AllBoundariesLowered) {
  AExpr N = sizeVar("n");
  for (Boundary B : {Boundary::clamp(), Boundary::mirror(), Boundary::wrap(),
                     Boundary::constant(2.5f)}) {
    ParamPtr A = param("A", arrayT(floatT(), N));
    Program P = makeProgram(
        {A},
        mapGlb(0, sumNbh1D(), slide(cst(3), cst(1), pad(cst(1), cst(1), B, A))));
    std::vector<float> In = iota(24);
    expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                           {{N->getVarId(), 24}});
  }
}

TEST(CodeGen, TiledWithWorkgroups) {
  // Listing 4 lowered onto work-groups (no local memory):
  // join(mapWrg(tile => mapLcl(sumNbh, slide(3,1,tile)),
  //             slide(5,3, pad(1,1,clamp,A))))
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
    return mapLcl(0, sumNbh1D(), slide(cst(3), cst(1), Tile));
  });
  Program P = makeProgram(
      {A}, join(mapWrg(0, PerTile,
                       slide(cst(5), cst(3),
                             pad(cst(1), cst(1), Boundary::clamp(), A)))));
  std::vector<float> In = iota(30); // padded size 32 -> 10 tiles
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 30}});
}

TEST(CodeGen, TiledWithLocalMemory) {
  // The full §4.2 pattern: each tile is staged into local memory by a
  // cooperative copy (toLocal(id)), then neighborhoods read from it.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
    ExprPtr Staged = mapLcl(0, toLocal(etaLambda(ufIdFloat())), Tile);
    return mapLcl(0, sumNbh1D(), slide(cst(3), cst(1), Staged));
  });
  Program P = makeProgram(
      {A}, join(mapWrg(0, PerTile,
                       slide(cst(6), cst(4),
                             pad(cst(1), cst(1), Boundary::clamp(), A)))));
  std::vector<float> In = iota(30); // padded 32: (32-6+4)/4 = 7 tiles? 7*4=28+2
  // Need (l+n+r-u) % v == 0: (32-6)%4 != 0 -> use 34 input? choose n=26:
  In = iota(26); // padded 28: (28-6+4)/4 = 6 tiles of 4 outputs = 24? 26 out?
  // For exact tiling pick n such that padded = u + k*v: 6+4k. k=6 -> 30,
  // n=28 -> outputs = (30-6)/4+1 = 7 tiles x 4 = 28 = n.
  In = iota(28);
  Value Expected;
  ocl::SizeEnv Sizes{{N->getVarId(), 28}};
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)}, Sizes);

  // The staged variant must actually use local memory.
  RunResult R = runOnSim(P, {In}, Sizes);
  EXPECT_GT(R.Counters.LocalStores, 0u);
  EXPECT_GT(R.Counters.LocalLoads, 0u);
  EXPECT_GT(R.Counters.Barriers, 0u);
  EXPECT_GT(R.NDRange.LocalMemBytes, 0);
}

TEST(CodeGen, TwoDimensionalStencil) {
  // mapGlb(1) over rows, mapGlb(0) over columns of slide2 windows.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  LambdaPtr Sum2D = lam("nbh", [](ExprPtr Nbh) {
    return theOne(
        reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), join(Nbh)));
  });
  ExprPtr Slided =
      slideNd(2, cst(3), cst(1), padNd(2, cst(1), cst(1), Boundary::clamp(), A));
  Program P = makeProgram(
      {A}, mapGlb(1, lam("row", [&](ExprPtr Row) {
             return mapGlb(0, Sum2D, Row);
           }),
           Slided));
  std::vector<float> In = iota(6 * 8);
  expectSimMatchesInterp(
      P, {In}, {makeFloatArray2D(In, 6, 8)},
      {{N->getVarId(), 6}, {M->getVarId(), 8}});
}

TEST(CodeGen, ThreeDimensionalStencil) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(arrayT(arrayT(floatT(), N), N), N));
  LambdaPtr Sum3D = lam("nbh", [](ExprPtr Nbh) {
    return theOne(
        reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), join(join(Nbh))));
  });
  ExprPtr Slided = slideNd(3, cst(3), cst(1),
                           padNd(3, cst(1), cst(1), Boundary::clamp(), A));
  Program P = makeProgram(
      {A}, mapGlb(2, lam("plane", [&](ExprPtr Plane) {
             return mapGlb(1, lam("row", [&](ExprPtr Row) {
                      return mapGlb(0, Sum3D, Row);
                    }),
                    Plane);
           }),
           Slided));
  std::vector<float> In = iota(5 * 5 * 5);
  expectSimMatchesInterp(P, {In}, {makeFloatArray3D(In, 5, 5, 5)},
                         {{N->getVarId(), 5}});
}

TEST(CodeGen, ZipAndTupleAccess) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), N));
  Program P = makeProgram(
      {A, B}, mapGlb(0, lam("t", [](ExprPtr T) {
                return apply(ufMultFloat(), {get(0, T), get(1, T)});
              }),
              zip(A, B)));
  std::vector<float> In1 = iota(12), In2 = iota(12, 0.5f);
  expectSimMatchesInterp(P, {In1, In2},
                         {makeFloatArray(In1), makeFloatArray(In2)},
                         {{N->getVarId(), 12}});
}

TEST(CodeGen, GenerateInlinesIndexFunction) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  UserFunPtr Mask = makeUserFun(
      "mask", {"i"}, {ScalarKind::Int}, ScalarKind::Float,
      "return (i % 2 == 0) ? 1.0f : 0.0f;",
      [](const std::vector<Scalar> &Args) {
        return Scalar(Args[0].I % 2 == 0 ? 1.0f : 0.0f);
      });
  ParamPtr I = param("i");
  ExprPtr MaskArr = generate({N}, lambda({I}, apply(Mask, {I})));
  Program P = makeProgram(
      {A}, mapGlb(0, lam("t", [](ExprPtr T) {
             return apply(ufMultFloat(), {get(0, T), get(1, T)});
           }),
           zip(A, MaskArr)));
  std::vector<float> In = iota(10);
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 10}});
}

TEST(CodeGen, SplitMapSeqThreadCoarsening) {
  // join(mapGlb(chunk => mapSeq(f, chunk), split(4, A))): each thread
  // computes four elements.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, join(mapGlb(0, lam("chunk", [](ExprPtr Chunk) {
             return mapSeq(lam("x",
                               [](ExprPtr X) {
                                 return apply(ufMultFloat(), {X, lit(3.0f)});
                               }),
                           Chunk);
           }),
           split(cst(4), A))));
  std::vector<float> In = iota(24);
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 24}});

  // Thread coarsening must be visible in the NDRange shape.
  RunResult R = runOnSim(P, {In}, {{N->getVarId(), 24}});
  EXPECT_EQ(R.NDRange.GlobalSize[0], 6);
}

TEST(CodeGen, ReduceSeqUnrollMarksLoop) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapGlb(0, lam("nbh", [](ExprPtr Nbh) {
             return theOne(
                 reduceSeqUnroll(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
           }),
           slide(cst(3), cst(1), pad(cst(1), cst(1), Boundary::clamp(), A))));
  std::vector<float> In = iota(16);
  expectSimMatchesInterp(P, {In}, {makeFloatArray(In)},
                         {{N->getVarId(), 16}});
}

TEST(CodeGen, CountersReflectRedundantLoads) {
  // An untiled 3-point stencil reads each input element ~3 times.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapGlb(0, sumNbh1D(),
                  slide(cst(3), cst(1),
                        pad(cst(1), cst(1), Boundary::clamp(), A))));
  std::vector<float> In = iota(64);
  RunResult R = runOnSim(P, {In}, {{N->getVarId(), 64}});
  EXPECT_EQ(R.Counters.GlobalLoads, 3u * 64u);
  EXPECT_EQ(R.Counters.GlobalStores, 64u);
  // The cache captures the reuse: misses are far fewer than loads.
  EXPECT_LT(R.Counters.GlobalLoadLineMisses, R.Counters.GlobalLoads / 4);
}

} // namespace
