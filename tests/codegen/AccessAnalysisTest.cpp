//===- AccessAnalysisTest.cpp - Coalescing analysis tests -----------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/AccessAnalysis.h"
#include "codegen/CodeGen.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;
using namespace lift::stencil;
using namespace lift::rewrite;
using namespace lift::codegen;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

/// Lowers and fails the test (instead of passing nullptr into
/// compileProgram) when the options do not apply.
ir::Program lowerOrFail(const ir::Program &P, const LoweringOptions &O) {
  std::string WhyNot;
  ir::Program Low = lowerStencil(P, O, &WhyNot);
  if (!Low)
    throw std::runtime_error("lowering failed: " + WhyNot);
  return Low;
}

TEST(AccessAnalysis, RowMajorStencilIsCoalesced) {
  // The code generator assigns the innermost array dimension to
  // get_global_id(0); all loads/stores of a 2D stencil must be
  // coalesced along it.
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  Compiled C = compileProgram(lowerOrFail(I.P, O), "j2d");
  AccessReport R = analyzeAccesses(C.K, makeSizeEnv(I, {64, 64}));
  ASSERT_FALSE(R.Sites.empty());
  EXPECT_TRUE(R.fullyCoalesced());
  // 5 loads + 1 store, all stride 1.
  EXPECT_EQ(R.count(AccessPattern::Coalesced), 6);
}

TEST(AccessAnalysis, TransposedReadIsStrided) {
  // mapGlb over the transpose of a 2D array: lanes walk a column, so
  // consecutive lanes touch elements a full row apart.
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  ParamPtr A = param("A", arrayT(arrayT(floatT(), M), N));
  Program P = makeProgram(
      {A}, mapGlb(1, lam("row", [](ExprPtr Row) {
             return mapGlb(0, etaLambda(ufIdFloat()), Row);
           }),
           transpose(A)));
  Compiled C = compileProgram(P, "tr");
  SizeEnv Sizes{{N->getVarId(), 64}, {M->getVarId(), 32}};
  AccessReport R = analyzeAccesses(C.K, Sizes);
  ASSERT_FALSE(R.Sites.empty());
  bool FoundStrided = false;
  for (const AccessSite &S : R.Sites)
    if (!S.IsStore && S.Pattern == AccessPattern::Strided) {
      FoundStrided = true;
      EXPECT_EQ(S.Stride, 32); // one row of the source per lane
    }
  EXPECT_TRUE(FoundStrided);
  EXPECT_FALSE(R.fullyCoalesced());
}

TEST(AccessAnalysis, BroadcastIsUniform) {
  // Every lane reads element 0: a uniform (broadcast) access.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  ParamPtr B = param("B", arrayT(floatT(), N));
  Program P = makeProgram(
      {A, B}, mapGlb(0, lam("x", [&](ExprPtr X) {
                return ir::apply(ufAddFloat(), {X, at(0, B)});
              }),
              A));
  Compiled C = compileProgram(P, "bc");
  SizeEnv Sizes{{N->getVarId(), 64}};
  AccessReport R = analyzeAccesses(C.K, Sizes);
  EXPECT_EQ(R.count(AccessPattern::Uniform), 1);
  EXPECT_EQ(R.count(AccessPattern::Coalesced), 2); // A load + store
}

TEST(AccessAnalysis, SequentialLoopsHaveNoLaneDimension) {
  // A purely sequential kernel (no parallel dim-0 loop in scope).
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapSeq(lam("x", [](ExprPtr X) {
             return ir::apply(ufMultFloat(), {X, lit(2.0f)});
           }),
           A));
  Compiled C = compileProgram(P, "seq");
  AccessReport R = analyzeAccesses(C.K, {{N->getVarId(), 16}});
  EXPECT_EQ(R.count(AccessPattern::Sequential), int(R.Sites.size()));
}

TEST(AccessAnalysis, TiledLocalKernelKeepsGlobalTrafficCoalesced) {
  // In the tiled+local variant the only global traffic is the staging
  // copy and the final store; both must stay coalesced.
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 8;
  O.UseLocalMem = true;
  Compiled C = compileProgram(lowerOrFail(I.P, O), "j2dtl");
  AccessReport R = analyzeAccesses(C.K, makeSizeEnv(I, {64, 64}));
  ASSERT_FALSE(R.Sites.empty());
  EXPECT_TRUE(R.fullyCoalesced()) << "tiled kernels must stage and store "
                                     "with unit-stride lanes";
}

TEST(AccessAnalysis, CoarsenedChunksAreStridedPerLane) {
  // With split(c)-based coarsening each lane owns a contiguous chunk,
  // so lane-adjacent accesses are c elements apart — the classic
  // coalescing pitfall of blocked distributions.
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Coarsen = 4;
  Compiled C = compileProgram(lowerOrFail(I.P, O), "j2dc");
  AccessReport R = analyzeAccesses(C.K, makeSizeEnv(I, {64, 64}));
  EXPECT_FALSE(R.fullyCoalesced());
  bool Found4 = false;
  for (const AccessSite &S : R.Sites)
    Found4 |= S.Pattern == AccessPattern::Strided && S.Stride == 4;
  EXPECT_TRUE(Found4);
}

} // namespace
