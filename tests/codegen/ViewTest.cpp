//===- ViewTest.cpp - Unit tests for the view system ---------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/View.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;
using namespace lift::codegen;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

/// Evaluates a resolved load's index under an environment.
std::int64_t indexOf(const KExprPtr &E,
                     const std::unordered_map<unsigned, std::int64_t> &Env) {
  EXPECT_EQ(E->K, KExpr::Kind::Load);
  return E->Index->evaluate(Env);
}

TEST(View, MemoryLinearizesRowMajor) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  TypePtr T = arrayT(arrayT(floatT(), M), N);
  ViewPtr V = vMemory(7, T);
  AExpr I = var("i"), J = var("j");
  KExprPtr L = resolveLoad(vAccess(J, vAccess(I, V)), ResolveCallbacks());
  ASSERT_EQ(L->K, KExpr::Kind::Load);
  EXPECT_EQ(L->BufferId, 7);
  std::unordered_map<unsigned, std::int64_t> Env{
      {N->getVarId(), 4}, {M->getVarId(), 5}, {I->getVarId(), 2},
      {J->getVarId(), 3}};
  EXPECT_EQ(L->Index->evaluate(Env), 2 * 5 + 3);
}

TEST(View, SplitCombinesIndices) {
  AExpr N = sizeVar("n");
  ViewPtr Mem = vMemory(0, arrayT(floatT(), N));
  ViewPtr V = vSplit(cst(4), Mem);
  AExpr I = var("i"), J = var("j");
  KExprPtr L = resolveLoad(vAccess(J, vAccess(I, V)), ResolveCallbacks());
  std::unordered_map<unsigned, std::int64_t> Env{
      {N->getVarId(), 32}, {I->getVarId(), 3}, {J->getVarId(), 2}};
  EXPECT_EQ(indexOf(L, Env), 3 * 4 + 2);
}

TEST(View, JoinSplitsIndex) {
  AExpr N = sizeVar("n");
  TypePtr T = arrayT(arrayT(floatT(), cst(4)), N);
  ViewPtr V = vJoin(cst(4), vMemory(0, T));
  AExpr K = var("k");
  KExprPtr L = resolveLoad(vAccess(K, V), ResolveCallbacks());
  std::unordered_map<unsigned, std::int64_t> Env{{N->getVarId(), 8},
                                                 {K->getVarId(), 11}};
  // join(mem)[11] == mem[2][3] == flat 2*4+3 == 11
  EXPECT_EQ(indexOf(L, Env), 11);
}

TEST(View, SlideOverlapsWindows) {
  AExpr N = sizeVar("n");
  ViewPtr V = vSlide(cst(3), cst(1), vMemory(0, arrayT(floatT(), N)));
  AExpr W = var("w"), J = var("j");
  KExprPtr L = resolveLoad(vAccess(J, vAccess(W, V)), ResolveCallbacks());
  std::unordered_map<unsigned, std::int64_t> Env{
      {N->getVarId(), 10}, {W->getVarId(), 4}, {J->getVarId(), 2}};
  EXPECT_EQ(indexOf(L, Env), 4 * 1 + 2);
  // Same element from the next window resolves to the same address —
  // the property quoted in §5 of the paper.
  std::unordered_map<unsigned, std::int64_t> Env2{
      {N->getVarId(), 10}, {W->getVarId(), 5}, {J->getVarId(), 1}};
  EXPECT_EQ(indexOf(L, Env2), 6);
}

TEST(View, PadClampMatchesReferenceSemantics) {
  AExpr N = sizeVar("n");
  ViewPtr V = vPad(cst(1), N, Boundary::clamp(),
                   vMemory(0, arrayT(floatT(), N)));
  AExpr I = var("i", Range(0, 1 << 20));
  KExprPtr L = resolveLoad(vAccess(I, V), ResolveCallbacks());
  for (std::int64_t Len : {5, 9}) {
    for (std::int64_t Idx = 0; Idx != Len + 2; ++Idx) {
      std::unordered_map<unsigned, std::int64_t> Env{{N->getVarId(), Len},
                                                     {I->getVarId(), Idx}};
      EXPECT_EQ(L->Index->evaluate(Env),
                resolveBoundaryIndex(Boundary::Kind::Clamp, Idx - 1, Len));
    }
  }
}

TEST(View, PadMirrorAndWrapMatchReferenceSemantics) {
  AExpr N = sizeVar("n");
  AExpr I = var("i", Range(0, 1 << 20));
  for (auto BK : {Boundary::Kind::Mirror, Boundary::Kind::Wrap}) {
    ViewPtr V = vPad(cst(2), N, Boundary{BK, 0},
                     vMemory(0, arrayT(floatT(), N)));
    KExprPtr L = resolveLoad(vAccess(I, V), ResolveCallbacks());
    for (std::int64_t Len : {4, 7}) {
      for (std::int64_t Idx = 0; Idx != Len + 4; ++Idx) {
        std::unordered_map<unsigned, std::int64_t> Env{{N->getVarId(), Len},
                                                       {I->getVarId(), Idx}};
        EXPECT_EQ(L->Index->evaluate(Env),
                  resolveBoundaryIndex(BK, Idx - 2, Len))
            << "boundary " << int(BK) << " len " << Len << " idx " << Idx;
      }
    }
  }
}

TEST(View, PadConstantProducesGuardedSelect) {
  AExpr N = sizeVar("n");
  ViewPtr V = vPad(cst(1), N, Boundary::constant(9.0f),
                   vMemory(0, arrayT(floatT(), N)));
  AExpr I = var("i", Range(0, 1 << 20));
  KExprPtr L = resolveLoad(vAccess(I, V), ResolveCallbacks());
  ASSERT_EQ(L->K, KExpr::Kind::Select);
  ASSERT_EQ(L->Checks.size(), 1u);
  EXPECT_EQ(L->Then->K, KExpr::Kind::Load);
  ASSERT_EQ(L->Else->K, KExpr::Kind::ConstScalar);
  EXPECT_FLOAT_EQ(L->Else->Const.F, 9.0f);
}

TEST(View, TransposeSwapsIndices) {
  AExpr N = sizeVar("n");
  AExpr M = sizeVar("m");
  TypePtr T = arrayT(arrayT(floatT(), M), N);
  ViewPtr V = vTranspose(vMemory(0, T));
  AExpr I = var("i"), J = var("j");
  // transpose(mem)[i][j] == mem[j][i]
  KExprPtr L = resolveLoad(vAccess(J, vAccess(I, V)), ResolveCallbacks());
  std::unordered_map<unsigned, std::int64_t> Env{
      {N->getVarId(), 4}, {M->getVarId(), 6}, {I->getVarId(), 2},
      {J->getVarId(), 3}};
  EXPECT_EQ(indexOf(L, Env), 3 * 6 + 2);
}

TEST(View, ZipSelectsComponentArrays) {
  AExpr N = sizeVar("n");
  ViewPtr A = vMemory(0, arrayT(floatT(), N));
  ViewPtr B = vMemory(1, arrayT(floatT(), N));
  ViewPtr Z = vTuple({A, B});
  AExpr I = var("i");
  KExprPtr L0 =
      resolveLoad(vTupleAccess(0, vAccess(I, Z)), ResolveCallbacks());
  KExprPtr L1 =
      resolveLoad(vTupleAccess(1, vAccess(I, Z)), ResolveCallbacks());
  EXPECT_EQ(L0->BufferId, 0);
  EXPECT_EQ(L1->BufferId, 1);
}

TEST(View, SlideOfPadComposes) {
  // The Listing 2 access pattern: slide(3,1, pad(1,1,clamp, A))[i][j]
  // must read A[clamp(i + j - 1)].
  AExpr N = sizeVar("n");
  ViewPtr V = vSlide(cst(3), cst(1),
                     vPad(cst(1), N, Boundary::clamp(),
                          vMemory(0, arrayT(floatT(), N))));
  AExpr I = var("i", Range(0, 1 << 20));
  AExpr J = var("j", Range(0, 2));
  KExprPtr L = resolveLoad(vAccess(J, vAccess(I, V)), ResolveCallbacks());
  for (std::int64_t Idx = 0; Idx != 6; ++Idx) {
    for (std::int64_t Off = 0; Off != 3; ++Off) {
      std::unordered_map<unsigned, std::int64_t> Env{
          {N->getVarId(), 6}, {I->getVarId(), Idx}, {J->getVarId(), Off}};
      EXPECT_EQ(L->Index->evaluate(Env),
                resolveBoundaryIndex(Boundary::Kind::Clamp, Idx + Off - 1, 6));
    }
  }
}

TEST(View, StoreThroughSplitView) {
  // The tiling output pattern: writes through join go to w*m+l.
  AExpr N = sizeVar("n");
  ViewPtr Out = vSplit(cst(8), vMemory(3, arrayT(floatT(), N)));
  AExpr W = var("w"), L = var("l");
  StoreTarget T = resolveStore(vAccess(L, vAccess(W, Out)));
  EXPECT_EQ(T.BufferId, 3);
  std::unordered_map<unsigned, std::int64_t> Env{
      {N->getVarId(), 32}, {W->getVarId(), 2}, {L->getVarId(), 5}};
  EXPECT_EQ(T.Index->evaluate(Env), 2 * 8 + 5);
}

} // namespace
