//===- EmitterTest.cpp - OpenCL C emission tests --------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "ocl/Emitter.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;
using namespace lift::stencil;
using namespace lift::codegen;

namespace {

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

std::string emitListing2() {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  Program P = makeProgram(
      {A}, mapGlb(0, SumNbh,
                  slide(cst(3), cst(1),
                        pad(cst(1), cst(1), Boundary::clamp(), A))));
  Compiled C = compileProgram(P, "jacobi3pt");
  return emitOpenCL(C.K);
}

TEST(Emitter, KernelSignature) {
  std::string Src = emitListing2();
  EXPECT_NE(Src.find("kernel void jacobi3pt("), std::string::npos) << Src;
  EXPECT_NE(Src.find("global float* restrict in0"), std::string::npos);
  EXPECT_NE(Src.find("global float* restrict out"), std::string::npos);
  EXPECT_NE(Src.find("int n"), std::string::npos);
}

TEST(Emitter, GlobalIdLoop) {
  std::string Src = emitListing2();
  EXPECT_NE(Src.find("get_global_id(0)"), std::string::npos) << Src;
  EXPECT_NE(Src.find("get_global_size(0)"), std::string::npos);
}

TEST(Emitter, UserFunEmitted) {
  std::string Src = emitListing2();
  EXPECT_NE(Src.find("float addF(float a, float b) { return a + b; }"),
            std::string::npos)
      << Src;
}

TEST(Emitter, ClampedLoadUsesMinMax) {
  std::string Src = emitListing2();
  // The pad(clamp) view must fold into min/max index arithmetic, not
  // data movement.
  EXPECT_NE(Src.find("max("), std::string::npos) << Src;
  EXPECT_NE(Src.find("min("), std::string::npos);
}

TEST(Emitter, LocalMemoryKernel) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
    ExprPtr Staged = mapLcl(0, toLocal(etaLambda(ufIdFloat())), Tile);
    return mapLcl(0, SumNbh, slide(cst(3), cst(1), Staged));
  });
  Program P = makeProgram(
      {A}, join(mapWrg(0, PerTile,
                       slide(cst(6), cst(4),
                             pad(cst(1), cst(1), Boundary::clamp(), A)))));
  Compiled C = compileProgram(P, "tiled_local");
  std::string Src = emitOpenCL(C.K);
  EXPECT_NE(Src.find("local float lcl0[6];"), std::string::npos) << Src;
  EXPECT_NE(Src.find("barrier(CLK_LOCAL_MEM_FENCE);"), std::string::npos);
  EXPECT_NE(Src.find("get_group_id(0)"), std::string::npos);
  EXPECT_NE(Src.find("get_local_id(0)"), std::string::npos);
}

TEST(Emitter, ConstantPadEmitsGuard) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduceSeq(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  Program P = makeProgram(
      {A}, mapGlb(0, SumNbh,
                  slide(cst(3), cst(1),
                        pad(cst(1), cst(1), Boundary::constant(0.0f), A))));
  Compiled C = compileProgram(P, "constpad");
  std::string Src = emitOpenCL(C.K);
  EXPECT_NE(Src.find("?"), std::string::npos) << Src;
  EXPECT_NE(Src.find(" : "), std::string::npos);
}

TEST(Emitter, UnrolledReducePragma) {
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = makeProgram(
      {A}, mapGlb(0, lam("nbh", [](ExprPtr Nbh) {
             return theOne(
                 reduceSeqUnroll(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
           }),
           slide(cst(3), cst(1), pad(cst(1), cst(1), Boundary::clamp(), A))));
  Compiled C = compileProgram(P, "unrolled");
  std::string Src = emitOpenCL(C.K);
  EXPECT_NE(Src.find("#pragma unroll"), std::string::npos) << Src;
}

} // namespace
