//===- FuzzViewsTest.cpp - Randomized view-chain property tests -----------===//
//
// Part of the liftcpp project.
//
// The view system is the riskiest machinery in the compiler: every
// layout primitive folds into index arithmetic that must agree with
// the reference semantics for arbitrary compositions. This test
// generates random layout chains — pads with every boundary kind,
// join-of-slide (which exercises the div/mod simplifier), split/join
// round trips — compiles them, and checks the simulator against the
// interpreter.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "interp/Interpreter.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::codegen;

namespace {

/// Builds a random 1D layout chain over \p Cur whose concrete length is
/// tracked in \p Len. Each op keeps the expression one-dimensional.
ExprPtr randomChain(RandomSource &Rand, ExprPtr Cur, std::int64_t &Len,
                    int Ops) {
  for (int K = 0; K != Ops; ++K) {
    switch (Rand.nextInt(0, 3)) {
    case 0: {
      // pad with a random boundary
      std::int64_t L = Rand.nextInt(0, 2), R = Rand.nextInt(0, 2);
      Boundary B;
      switch (Rand.nextInt(0, 3)) {
      case 0:
        B = Boundary::clamp();
        break;
      case 1:
        B = Boundary::mirror();
        break;
      case 2:
        B = Boundary::wrap();
        break;
      default:
        B = Boundary::constant(float(Rand.nextInt(0, 9)));
        break;
      }
      Cur = pad(cst(L), cst(R), B, std::move(Cur));
      Len += L + R;
      break;
    }
    case 1: {
      // join(slide(sz, 1, .)): overlapping re-concatenation; this is
      // the op whose resolution produces div/mod index chains.
      std::int64_t Sz = Rand.nextInt(2, 3);
      if (Len < Sz)
        break;
      Cur = join(slide(cst(Sz), cst(1), std::move(Cur)));
      Len = (Len - Sz + 1) * Sz;
      break;
    }
    case 2: {
      // split/join round trip with a random divisor of the length.
      std::vector<std::int64_t> Divs;
      for (std::int64_t D = 2; D <= 8; ++D)
        if (Len % D == 0)
          Divs.push_back(D);
      if (Divs.empty())
        break;
      std::int64_t D = Divs[std::size_t(Rand.nextInt(
          0, std::int64_t(Divs.size()) - 1))];
      Cur = join(split(cst(D), std::move(Cur)));
      break;
    }
    default: {
      // slide then take middle windows via split/join? Keep simple:
      // a second pad variant biases toward deeper pad stacks.
      Cur = pad(cst(1), cst(1), Boundary::clamp(), std::move(Cur));
      Len += 2;
      break;
    }
    }
    if (Len > 4096) // keep runs small
      break;
  }
  return Cur;
}

class FuzzViews : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzViews, SimMatchesInterpreterOnRandomLayouts) {
  RandomSource Rand(GetParam());
  for (int Trial = 0; Trial != 8; ++Trial) {
    std::int64_t Base = Rand.nextInt(6, 24);
    AExpr N = var("n", Range(1, 1 << 30));
    ParamPtr A = param("A", arrayT(floatT(), N));

    std::int64_t Len = Base;
    ExprPtr Chain =
        randomChain(Rand, A, Len, int(Rand.nextInt(1, 5)));
    // Consume the chain with a parallel elementwise map so there is
    // real code around the views.
    Program P = makeProgram(
        {A}, mapGlb(0, lam("x", [](ExprPtr X) {
               return ir::apply(ufMultFloat(), {X, lit(2.0f)});
             }),
             Chain));

    std::vector<float> In(static_cast<std::size_t>(Base));
    for (auto &V : In)
      V = Rand.nextFloat(-4.0f, 4.0f);
    SizeEnv Sizes{{N->getVarId(), Base}};

    Value Expected = evalProgram(P, {makeFloatArray(In)}, Sizes);
    std::vector<float> ExpectedFlat;
    flattenValue(Expected, ExpectedFlat);

    RunResult R = runOnSim(P, {In}, Sizes);
    ASSERT_EQ(R.Output.size(), ExpectedFlat.size())
        << "seed " << GetParam() << " trial " << Trial << ": "
        << ir::toString(P);
    for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
      ASSERT_FLOAT_EQ(R.Output[I], ExpectedFlat[I])
          << "seed " << GetParam() << " trial " << Trial << " at " << I
          << ": " << ir::toString(P);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzViews,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

} // namespace
