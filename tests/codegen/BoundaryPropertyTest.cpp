//===- BoundaryPropertyTest.cpp - Symbolic vs concrete boundaries ---------===//
//
// Part of the liftcpp project.
//
// Exhaustive agreement sweep between the symbolic boundary index
// formula the view system emits (codegen::boundaryIndexExpr) and the
// concrete resolver shared by the interpreter and the simulator
// (ir::resolveBoundaryIndex), for every reindexing boundary kind over
// negative and overshooting indices — the floorMod/floorDiv sign
// convention edges. Also locks down the degenerate compositions the
// formulas must survive end to end: nested constant pads with distinct
// values, pad(0, 0), and slide(n, n).
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "codegen/View.h"
#include "interp/Interpreter.h"
#include "ir/TypeInference.h"
#include "rewrite/Lowering.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;
using namespace lift::stencil;
using namespace lift::codegen;

namespace {

const Boundary::Kind ReindexKinds[] = {
    Boundary::Kind::Clamp, Boundary::Kind::Mirror, Boundary::Kind::Wrap};

/// Evaluates the symbolic formula built over *variables*, exercising
/// whatever simplification the arith layer performs on the general
/// (unknown-sign) form, then substituting concrete values.
std::int64_t evalSymbolicVar(Boundary::Kind K, std::int64_t I,
                             std::int64_t N) {
  // The index variable must admit negative values so the simplifier
  // cannot assume a sign; the length is at least 1.
  AExpr IV = var("i", Range(-1024, 1024));
  AExpr NV = var("n", Range(1, 1024));
  AExpr F = boundaryIndexExpr(K, IV, NV);
  return F->evaluate({{IV->getVarId(), I}, {NV->getVarId(), N}});
}

/// Evaluates the symbolic formula built over *constants*, exercising
/// the constant-folding path: the formula must fold to the same value.
std::int64_t evalSymbolicCst(Boundary::Kind K, std::int64_t I,
                             std::int64_t N) {
  AExpr F = boundaryIndexExpr(K, cst(I), cst(N));
  EXPECT_EQ(F->getKind(), ArithExpr::Kind::Cst)
      << "formula over constants did not fold: " << F->toString();
  return F->evaluate({});
}

TEST(BoundaryProperty, SymbolicAgreesWithConcreteExhaustively) {
  // Every length up to 8 and every index overshooting by up to 4
  // array-lengths on both sides; 4N covers multiple mirror periods
  // (period 2N) and wrap periods (period N).
  for (Boundary::Kind K : ReindexKinds) {
    for (std::int64_t N = 1; N <= 8; ++N) {
      for (std::int64_t I = -4 * N; I <= 4 * N; ++I) {
        std::int64_t Expected = resolveBoundaryIndex(K, I, N);
        ASSERT_GE(Expected, 0);
        ASSERT_LT(Expected, N);
        ASSERT_EQ(evalSymbolicVar(K, I, N), Expected)
            << "kind " << int(K) << " I=" << I << " N=" << N;
        ASSERT_EQ(evalSymbolicCst(K, I, N), Expected)
            << "kind " << int(K) << " I=" << I << " N=" << N;
      }
    }
  }
}

TEST(BoundaryProperty, MirrorIsEdgeDuplicatingReflection) {
  // Spot-check the convention: mirror of [a b c] extends as
  // ... c b a | a b c | c b a ... (the edge element repeats).
  EXPECT_EQ(resolveBoundaryIndex(Boundary::Kind::Mirror, -1, 3), 0);
  EXPECT_EQ(resolveBoundaryIndex(Boundary::Kind::Mirror, -2, 3), 1);
  EXPECT_EQ(resolveBoundaryIndex(Boundary::Kind::Mirror, 3, 3), 2);
  EXPECT_EQ(resolveBoundaryIndex(Boundary::Kind::Mirror, 4, 3), 1);
}

//===----------------------------------------------------------------------===//
// End-to-end degenerate compositions: interpreter vs generated code.
//===----------------------------------------------------------------------===//

AExpr sizeVar(const char *Name) { return var(Name, Range(1, 1 << 30)); }

/// Interprets \p P and runs its untiled lowering on the simulator;
/// both must produce bit-identical floats.
void expectInterpMatchesSim(const Program &P, const std::vector<float> &In,
                            std::int64_t N, unsigned VarId) {
  ocl::SizeEnv Sizes{{VarId, N}};
  Value Expected = evalProgram(P, {makeFloatArray(In)}, Sizes);
  std::vector<float> ExpectedFlat;
  flattenValue(Expected, ExpectedFlat);

  std::string WhyNot;
  Program Low = rewrite::lowerStencil(P, rewrite::LoweringOptions(), &WhyNot);
  ASSERT_NE(Low, nullptr) << WhyNot;
  RunResult R = runOnSim(Low, {In}, Sizes);
  ASSERT_EQ(R.Output.size(), ExpectedFlat.size());
  for (std::size_t I = 0; I != ExpectedFlat.size(); ++I)
    ASSERT_EQ(R.Output[I], ExpectedFlat[I]) << "element " << I;
}

/// map(sum-of-window, slide(3, 1, <layout>)) over a length-n input.
Program sumStencilOver(ExprPtr Layout, const ParamPtr &A) {
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  return makeProgram({A}, map(SumNbh, slide(cst(3), cst(1),
                                            std::move(Layout))));
}

std::vector<float> ramp(std::size_t N) {
  std::vector<float> V(N);
  for (std::size_t I = 0; I != N; ++I)
    V[I] = float(I + 1) * 0.5f;
  return V;
}

TEST(BoundaryProperty, NestedConstantPadsWithDistinctValues) {
  // pad(1,1,Constant(5), pad(1,1,Constant(9), A)): the outer constant
  // must win in the outermost halo and the inner constant just inside
  // it — each guard carries its own fill value.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = sumStencilOver(
      pad(cst(1), cst(1), Boundary::constant(5.0f),
          pad(cst(1), cst(1), Boundary::constant(9.0f), A)),
      A);
  expectInterpMatchesSim(P, ramp(6), 6, N->getVarId());
}

TEST(BoundaryProperty, NestedConstantInsideReindexingPad) {
  // A reindexing pad wrapped around a constant pad: the mirror indices
  // must resolve relative to the constant-extended array.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  Program P = sumStencilOver(
      pad(cst(2), cst(2), Boundary::mirror(),
          pad(cst(1), cst(1), Boundary::constant(3.0f), A)),
      A);
  expectInterpMatchesSim(P, ramp(5), 5, N->getVarId());
}

TEST(BoundaryProperty, DegeneratePadZeroZero) {
  // pad(0,0) of any kind is the identity; the view system must not
  // emit guards or reindexing for it.
  AExpr N = sizeVar("n");
  for (Boundary B : {Boundary::clamp(), Boundary::mirror(), Boundary::wrap(),
                     Boundary::constant(7.0f)}) {
    ParamPtr A = param("A", arrayT(floatT(), N));
    Program P = sumStencilOver(pad(cst(0), cst(0), B, A), A);
    expectInterpMatchesSim(P, ramp(6), 6, N->getVarId());
  }
}

TEST(BoundaryProperty, DegenerateSlideNbyN) {
  // slide(n, n) produces adjacent, non-overlapping windows (= split);
  // with a wrap pad in front this exercises window starts landing
  // exactly on the boundary seams.
  AExpr N = sizeVar("n");
  ParamPtr A = param("A", arrayT(floatT(), N));
  LambdaPtr SumNbh = lam("nbh", [](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f), Nbh));
  });
  Program P = makeProgram(
      {A}, map(SumNbh, slide(cst(2), cst(2),
                             pad(cst(1), cst(1), Boundary::wrap(), A))));
  expectInterpMatchesSim(P, ramp(6), 6, N->getVarId());
}

} // namespace
