//===- GoldenCEmitterTest.cpp - Full-source C snapshots --------------------===//
//
// Part of the liftcpp project.
//
// Locks down the complete C translation units the native backend emits
// for representative paper benchmarks (untiled parallel loops, tiled +
// local-memory staging, a 3D stencil). Unlike the inline OpenCL goldens
// in tests/codegen/GoldenKernelTest.cpp these snapshots live as files
// under tests/native/golden/ so a change reads as a plain .c diff in
// review.
//
// To regenerate after an intentional emitter change:
//
//   tests/native/update_golden.sh [build-dir]
//
// (equivalently: run this binary with LIFT_UPDATE_GOLDEN=1).
//
//===----------------------------------------------------------------------===//

#include "analysis/InteriorSpec.h"
#include "codegen/CodeGen.h"
#include "native/CEmitter.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

using namespace lift;
using namespace lift::stencil;
using namespace lift::rewrite;

namespace {

std::string goldenPath(const std::string &File) {
  return std::string(LIFT_NATIVE_GOLDEN_DIR) + "/" + File;
}

bool updateMode() {
  const char *E = std::getenv("LIFT_UPDATE_GOLDEN");
  return E && *E && std::string(E) != "0";
}

/// Lowers a named benchmark and emits native C for it.
std::string emitBenchmark(const std::string &Name,
                          const LoweringOptions &O) {
  const Benchmark &B = findBenchmark(Name);
  BenchmarkInstance I = B.Build();
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  if (!Low)
    throw std::runtime_error("lowering failed: " + WhyNot);
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  return native::emitC(C.K);
}

/// Compares \p Actual against the stored snapshot, or rewrites the
/// snapshot when LIFT_UPDATE_GOLDEN is set.
void checkGolden(const std::string &File, const std::string &Actual) {
  std::string Path = goldenPath(File);
  if (updateMode()) {
    std::ofstream OS(Path);
    ASSERT_TRUE(OS.good()) << "cannot write golden file " << Path;
    OS << Actual;
    std::printf("updated %s (%zu bytes)\n", Path.c_str(), Actual.size());
    return;
  }
  std::ifstream IS(Path);
  ASSERT_TRUE(IS.good())
      << "missing golden file " << Path
      << "; run tests/native/update_golden.sh to create it";
  std::stringstream SS;
  SS << IS.rdbuf();
  EXPECT_EQ(Actual, SS.str())
      << "emitted C changed for " << File
      << "; if intentional, run tests/native/update_golden.sh";
}

TEST(GoldenCEmitter, Stencil2DGlobal) {
  LoweringOptions O;
  checkGolden("stencil2d_global.c", emitBenchmark("Stencil2D", O));
}

TEST(GoldenCEmitter, Stencil2DTiledLocal) {
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  checkGolden("stencil2d_tiled_local.c", emitBenchmark("Stencil2D", O));
}

TEST(GoldenCEmitter, Jacobi3D7ptGlobal) {
  LoweringOptions O;
  checkGolden("jacobi3d7pt_global.c", emitBenchmark("Jacobi3D7pt", O));
}

// The sequential shape (OpenMP pragmas suppressed) of the tiled
// kernel: pins down that disabling CEmitOptions::OpenMP changes ONLY
// pragma lines, never the loop or declaration structure.
TEST(GoldenCEmitter, Stencil2DTiledLocalSequential) {
  const Benchmark &B = findBenchmark("Stencil2D");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  native::CEmitOptions Seq;
  Seq.OpenMP = false;
  checkGolden("stencil2d_tiled_local_seq.c", native::emitC(C.K, Seq));
}

// The interior/edge specialization (analysis/InteriorSpec.h) as plain
// C: each grid loop split into a left-edge loop keeping the clamp
// arithmetic, a clamp-free interior loop, and a right-edge loop. The
// snapshot makes the transform's output reviewable as a .c diff —
// in particular that the interior loop body carries no min/max index
// clamping while the edge loops keep the general path.
TEST(GoldenCEmitter, Jacobi2D5ptGlobalSpecialized) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  analysis::SpecStats S;
  ocl::Kernel K = analysis::specializeInterior(C.K, &S);
  ASSERT_EQ(S.LoopsSplit, 2u) << "both grid loops should split";
  checkGolden("jacobi2d5pt_global_specialized.c", native::emitC(K));
}

// Profile mode as plain C: every loop-nest region wrapped in
// monotonic-clock accumulation into the lift_prof slot array appended
// to the ABI, OpenMP suppressed (timers are not thread-safe), and —
// the part the bit-identity differential test depends on — loop
// bodies untouched.
TEST(GoldenCEmitter, Stencil2DGlobalProfiled) {
  const Benchmark &B = findBenchmark("Stencil2D");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  native::CEmitOptions PO;
  PO.Profile = true;
  checkGolden("stencil2d_global_profiled.c", native::emitC(C.K, PO));
}

TEST(GoldenCEmitter, Stencil2DTiledLocalProfiled) {
  const Benchmark &B = findBenchmark("Stencil2D");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  native::CEmitOptions PO;
  PO.Profile = true;
  checkGolden("stencil2d_tiled_local_profiled.c", native::emitC(C.K, PO));
}

// A remainder-tile kernel at concrete prime extents (53 x 47, tile
// 16): LoweringOptions::OutputExtents makes the per-dimension clamp
// concrete, so the snapshot shows the clamped tail tiles as constant
// arithmetic — ceil-division trip counts (4 and 3 tiles) and
// min(37, 16*i0) / min(31, 16*i1) tile starts — instead of symbolic
// d0/d1 forms. Locks down that no tile start or local fill index can
// exceed the grid.
TEST(GoldenCEmitter, Stencil2DRemainderTile) {
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  O.OutputExtents = {53, 47};
  checkGolden("stencil2d_remainder_tile.c", emitBenchmark("Stencil2D", O));
}

// The same remainder-tile kernel in profile mode: timer regions must
// wrap the clamped loop nests without perturbing their bounds.
TEST(GoldenCEmitter, Stencil2DRemainderTileProfiled) {
  const Benchmark &B = findBenchmark("Stencil2D");
  BenchmarkInstance I = B.Build();
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  O.OutputExtents = {53, 47};
  std::string WhyNot;
  ir::Program Low = lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  native::CEmitOptions PO;
  PO.Profile = true;
  checkGolden("stencil2d_remainder_tile_profiled.c", native::emitC(C.K, PO));
}

// Determinism contract behind both the golden files and the kernel
// cache: two independent builds of the same benchmark emit
// byte-identical source even though their size-variable ids differ.
TEST(GoldenCEmitter, EmissionIsDeterministicAcrossBuilds) {
  LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  EXPECT_EQ(emitBenchmark("Stencil2D", O), emitBenchmark("Stencil2D", O));
}

} // namespace
