//===- NativeDiffTest.cpp - Fuzzer's native oracle ------------------------===//
//
// Part of the liftcpp project.
//
// Runs a fixed-seed slice of the differential fuzzer with the native
// oracle enabled (DiffOptions::Native): every generated program is
// emitted as C, compiled with the host compiler, dlopen()ed, executed,
// and required to be bit-identical to the reference interpreter —
// untiled and, when it fits, tiled. The CI campaign runs 500 programs
// through liftfuzz --native; this in-process slice keeps the oracle
// wiring itself under ctest.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"
#include "native/NativeRunner.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::fuzz;

namespace {

bool haveToolchain() {
  try {
    native::probeToolchain();
    return true;
  } catch (const native::NativeError &) {
    return false;
  }
}

TEST(NativeDiff, FixedSeedCampaignIsClean) {
  if (!haveToolchain())
    GTEST_SKIP() << "no usable host C compiler; skipping native oracle";

  CampaignOptions O;
  O.Diff.Native = true;
  O.Diff.NativeThreads = 2;
  O.Shrink = false; // a mismatch here is reported, not minimized
  CampaignStats S = runCampaign(/*Seed=*/7, /*Count=*/30, O);

  EXPECT_GT(S.Ok, 0u);
  std::string FirstDetail =
      S.Failures.empty() ? std::string() : S.Failures.front().Detail;
  EXPECT_EQ(S.Mismatches, 0u) << FirstDetail;
}

TEST(NativeDiff, SingleSpecDeterministic) {
  if (!haveToolchain())
    GTEST_SKIP() << "no usable host C compiler; skipping native oracle";

  // The native oracle must be a deterministic function of the spec:
  // same spec, same verdict, bit for bit.
  ProgramSpec S = generateSpec(/*SubSeed=*/42);
  DiffOptions O;
  O.Native = true;
  DiffResult R1 = runDifferential(S, O);
  DiffResult R2 = runDifferential(S, O);
  EXPECT_EQ(int(R1.Status), int(R2.Status));
  EXPECT_EQ(R1.Detail, R2.Detail);
  EXPECT_NE(int(R1.Status), int(DiffStatus::Mismatch)) << R1.Detail;
}

} // namespace
