//===- RemainderTileDiffTest.cpp - Ragged-grid tiling differential ---------===//
//
// Part of the liftcpp project.
//
// The definition of done for the remainder-tile lowering: on prime
// grid extents (no tile size divides them) the tiled + local-memory
// pipeline must agree bit for bit across
//
//   * the untiled lowering (the semantic reference),
//   * the sequential NDRange simulator,
//   * the compiled, sharded parallel simulator, and
//   * the native C backend (emit, compile, dlopen, run),
//
// for every boundary kind (clamp / mirror / wrap / constant). A final
// case covers the short-axis shape (extent < tile, Hotspot3D's 4-deep
// z axis) where the per-dimension clamp shrinks the tile to the axis.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "native/NativeRunner.h"
#include "rewrite/Lowering.h"
#include "stencil/StencilOps.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;

namespace {

bool haveToolchain() {
  try {
    native::probeToolchain();
    return true;
  } catch (const native::NativeError &) {
    return false;
  }
}

/// A 3^n-point box-sum stencil over one grid with the given boundary,
/// on concrete extents \p Ext (outermost first), plus deterministic
/// input data. Window 3, step 1, pad 1/1 keeps output extents == Ext.
struct Fixture {
  Program P;
  std::vector<std::vector<float>> Inputs;
  ocl::SizeEnv Sizes;
};

Fixture makeFixture(Boundary B, const std::vector<std::int64_t> &Ext) {
  static const char *Names[3] = {"d0", "d1", "d2"};
  unsigned N = static_cast<unsigned>(Ext.size());
  std::vector<AExpr> SV;
  for (unsigned D = 0; D != N; ++D)
    SV.push_back(var(Names[D], Range(1, 1 << 30)));
  TypePtr T = floatT();
  for (auto It = SV.rbegin(); It != SV.rend(); ++It)
    T = arrayT(T, *It);
  ParamPtr A = param("A", T);
  ExprPtr Body =
      stencilNd(N, sumNeighborhood(N), cst(3), cst(1), cst(1), cst(1), B, A);

  Fixture F;
  F.P = makeProgram({A}, std::move(Body));
  std::int64_t Total = 1;
  for (unsigned D = 0; D != N; ++D) {
    F.Sizes[SV[D]->getVarId()] = Ext[D];
    Total *= Ext[D];
  }
  std::vector<float> In(static_cast<std::size_t>(Total));
  std::uint64_t S = 0x9E3779B97F4A7C15ull;
  for (float &V : In) {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    V = 0.25f + static_cast<float>((S >> 33) % 1024) / 1024.0f;
  }
  F.Inputs.push_back(std::move(In));
  return F;
}

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

/// Lowers \p F untiled (reference) and tiled-with-remainder, then
/// checks every execution engine produces the reference bits.
void checkRaggedAgreement(Boundary B, const std::vector<std::int64_t> &Ext,
                          std::int64_t Tile) {
  Fixture F = makeFixture(B, Ext);
  std::string What = std::string("boundary=") + B.name() + " tile=" +
                     std::to_string(Tile);

  rewrite::LoweringOptions Plain;
  ir::Program RefLow = rewrite::lowerStencil(F.P, Plain);
  ASSERT_TRUE(bool(RefLow)) << What;
  codegen::Compiled RefC = codegen::compileProgram(RefLow, "ref");
  std::vector<float> Ref =
      codegen::runCompiled(RefC, F.Inputs, F.Sizes).Output;

  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = Tile;
  O.UseLocalMem = true;
  O.OutputExtents.assign(Ext.begin(), Ext.end());
  std::string WhyNot;
  ir::Program Low = rewrite::lowerStencil(F.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << What << ": " << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, "tiled");

  std::vector<float> Seq = codegen::runCompiled(C, F.Inputs, F.Sizes).Output;
  EXPECT_TRUE(bitIdentical(Seq, Ref))
      << What << ": tiled sequential sim diverged from untiled reference";

  std::vector<float> Par =
      codegen::runCompiled(C, F.Inputs, F.Sizes, ocl::CacheConfig(),
                           /*Jobs=*/4)
          .Output;
  EXPECT_TRUE(bitIdentical(Par, Ref))
      << What << ": parallel sim diverged from untiled reference";

  if (!haveToolchain())
    return; // sim cross-check still ran; native needs a host compiler
  native::NativeKernelPtr Kern = native::compileKernel(C.K);
  native::NativeRunResult NR =
      native::runNative(C, *Kern, F.Inputs, F.Sizes, /*Threads=*/3);
  EXPECT_TRUE(bitIdentical(NR.Output, Ref))
      << What << ": native backend diverged from untiled reference";
}

// 53 and 47 are prime: no tile size >= 2 divides either extent, so
// every dimension ends in a remainder tile (53 = 3*16 + 5, 47 = 2*16
// + 15).

TEST(RemainderTileDiff, ClampBoundaryPrimeGrid) {
  checkRaggedAgreement(Boundary::clamp(), {53, 47}, 16);
}

TEST(RemainderTileDiff, MirrorBoundaryPrimeGrid) {
  checkRaggedAgreement(Boundary::mirror(), {53, 47}, 16);
}

TEST(RemainderTileDiff, WrapBoundaryPrimeGrid) {
  checkRaggedAgreement(Boundary::wrap(), {53, 47}, 16);
}

TEST(RemainderTileDiff, ConstantBoundaryPrimeGrid) {
  checkRaggedAgreement(Boundary::constant(0.75f), {53, 47}, 16);
}

// Extent smaller than the tile (Hotspot3D's 4-deep z axis under tile
// 16): the per-dimension clamp issues one full-width tile for the
// short axis instead of refusing the configuration.
TEST(RemainderTileDiff, ShortAxisTileWiderThanExtent) {
  checkRaggedAgreement(Boundary::clamp(), {5, 47}, 16);
}

// A ragged 3D grid exercises the transpose-reordering path of the
// per-dimension clamped slide in all three dimensions at once.
TEST(RemainderTileDiff, ThreeDimensionalPrimeGrid) {
  checkRaggedAgreement(Boundary::clamp(), {7, 13, 19}, 8);
}

} // namespace
