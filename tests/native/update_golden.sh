#!/bin/sh
# Regenerates the native-backend C source snapshots in
# tests/native/golden/ from the current emitter. Run after an
# intentional CEmitter change, then review the .c diffs.
#
# Usage: tests/native/update_golden.sh [build-dir]   (default: ./build)
set -e

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/tests/native/native_test"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built; run: cmake --build $BUILD_DIR --target native_test" >&2
  exit 1
fi

LIFT_UPDATE_GOLDEN=1 "$BIN" --gtest_filter='GoldenCEmitter.*'
