//===- ProfileTest.cpp - In-kernel profiling tests -------------------------===//
//
// Part of the liftcpp project.
//
// The profiling contract, bottom to top:
//
//  * profileRegions: which loop nests become timed regions (one per
//    top-level nest; the sub-loops of a tiled kernel's work-group body
//    become separate tile-fill / compute regions).
//  * staticRegionWork: bytes/FLOP counts pinned against hand-computed
//    values for a 3-point 1D stencil, where every number is checkable
//    on paper.
//  * Bit-identity: the instrumented kernel's output is byte-for-byte
//    the output of the uninstrumented kernel — timers wrap loops, they
//    never touch per-iteration computation.
//  * runNativeProfiled/profileKernel: region seconds come back
//    non-negative and sum to roughly the total; the joined
//    obs::Profile carries the static counts.
//
//===----------------------------------------------------------------------===//

#include "native/Profiler.h"

#include "codegen/AccessAnalysis.h"
#include "codegen/CodeGen.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "native/CEmitter.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

using namespace lift;
using namespace lift::native;
using namespace lift::ocl;
using namespace lift::stencil;

namespace {

bool haveToolchain() {
  try {
    probeToolchain();
    return true;
  } catch (const NativeError &) {
    return false;
  }
}

#define REQUIRE_TOOLCHAIN()                                                  \
  if (!haveToolchain())                                                      \
  GTEST_SKIP() << "no usable host C compiler; skipping native test"

/// out[i] = add(add(in0[clamp(i-1)], in0[i]), in0[clamp(i+1)]) over a
/// Glb loop of N iterations: the smallest kernel where every static
/// count is checkable by hand. ufAddFloat costs 1 FLOP, so:
///   Iterations  = N
///   BytesRead   = 3 loads * 4 bytes * N
///   BytesWritten= 1 store * 4 bytes * N
///   Flops       = 2 adds  * 1 FLOP  * N
Kernel stencil1d3pt(AExpr &NOut) {
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  NOut = N;
  K.Name = "stencil1d3pt";
  K.Buffers.push_back({0, "in0", ir::ScalarKind::Float, MemSpace::Global, N,
                       /*IsInput=*/true, /*IsOutput=*/false});
  K.Buffers.push_back({1, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       /*IsInput=*/false, /*IsOutput=*/true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  ir::UserFunPtr Add = ir::ufAddFloat();
  K.noteUserFun(Add);
  KExprPtr Sum = kCallUF(
      Add, {kCallUF(Add, {kLoad(0, clampIndex(sub(I, cst(1)), N)),
                          kLoad(0, I)}),
            kLoad(0, clampIndex(add(I, cst(1)), N))});
  K.Body.push_back(sLoop(LoopKind::Glb, 0, I, N, {sStore(1, I, Sum)}));
  return K;
}

codegen::Compiled wrap(Kernel K) {
  codegen::Compiled C;
  C.K = std::move(K);
  for (const BufferDecl &B : C.K.Buffers) {
    if (B.IsInput)
      C.InputBufferIds.push_back(B.Id);
    if (B.IsOutput)
      C.OutputBufferId = B.Id;
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Region discovery
//===----------------------------------------------------------------------===//

TEST(ProfileRegions, UntiledKernelIsOneRegion) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  std::string WhyNot;
  ir::Program Low = rewrite::lowerStencil(I.P, {}, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  std::vector<KernelRegion> R = profileRegions(C.K);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Kind, "glb");
  EXPECT_EQ(R[0].Name.rfind("glb.", 0), 0u);
  EXPECT_EQ(R[0].Loop, C.K.Body[0].get());
}

TEST(ProfileRegions, TiledLocalKernelSplitsFillAndCompute) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  std::string WhyNot;
  ir::Program Low = rewrite::lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  std::vector<KernelRegion> R = profileRegions(C.K);
  // Local-tile fill and the per-tile compute loop time separately; the
  // barrier between them belongs to neither.
  ASSERT_EQ(R.size(), 2u);
  EXPECT_NE(R[0].Name, R[1].Name);
  for (const KernelRegion &Reg : R) {
    ASSERT_NE(Reg.Loop, nullptr);
    EXPECT_EQ(Reg.Loop->K, Stmt::Kind::Loop);
  }
}

TEST(ProfileRegions, DuplicateLoopVarNamesAreDisambiguated) {
  Kernel K;
  AExpr N = var("n", Range(1, 1024));
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N, {sStore(0, I, kConst(ir::Scalar(1.0f)))}));
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N, {sStore(0, I, kConst(ir::Scalar(2.0f)))}));
  std::vector<KernelRegion> R = profileRegions(K);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_NE(R[0].Name, R[1].Name);
}

//===----------------------------------------------------------------------===//
// Static work counts — hand-computed for the 3-point 1D stencil
//===----------------------------------------------------------------------===//

TEST(StaticRegionWork, ThreePointStencilCountsMatchHandComputation) {
  AExpr N;
  Kernel K = stencil1d3pt(N);
  const std::int64_t Elems = 1000;
  SizeEnv Sizes;
  Sizes[N->getVarId()] = Elems;
  codegen::RegionWork W =
      codegen::staticRegionWork(K, *K.Body[0], Sizes);
  EXPECT_EQ(W.Iterations, std::uint64_t(Elems));
  EXPECT_EQ(W.BytesRead, std::uint64_t(3 * 4 * Elems));
  EXPECT_EQ(W.BytesWritten, std::uint64_t(4 * Elems));
  // Two ufAddFloat applications per point, 1 FLOP each.
  EXPECT_EQ(W.Flops, std::uint64_t(2 * ir::ufAddFloat()->getFlopCost() *
                                   Elems));
}

TEST(StaticRegionWork, LocalMemoryTrafficIsNotDramTraffic) {
  // A tiled Jacobi2D: the fill region reads global and writes local
  // (write side must be 0); the compute region reads local and writes
  // global (read side must be 0). The roofline convention counts DRAM
  // only.
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  BenchmarkInstance I = B.Build();
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  std::string WhyNot;
  ir::Program Low = rewrite::lowerStencil(I.P, O, &WhyNot);
  ASSERT_TRUE(bool(Low)) << WhyNot;
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  Extents E = {256, 256};
  SizeEnv Sizes = makeSizeEnv(I, E);
  std::vector<KernelRegion> R = profileRegions(C.K);
  ASSERT_EQ(R.size(), 2u);
  codegen::RegionWork Fill =
      codegen::staticRegionWork(C.K, *R[0].Loop, Sizes);
  codegen::RegionWork Compute =
      codegen::staticRegionWork(C.K, *R[1].Loop, Sizes);
  EXPECT_GT(Fill.BytesRead, 0u);
  EXPECT_EQ(Fill.BytesWritten, 0u);
  EXPECT_EQ(Compute.BytesRead, 0u);
  // Exactly one float store per output point.
  EXPECT_EQ(Compute.BytesWritten, std::uint64_t(4 * 256 * 256));
}

TEST(StaticRegionWork, UnknownRegionRootIsFatal) {
  AExpr N;
  Kernel K = stencil1d3pt(N);
  SizeEnv Sizes;
  Sizes[N->getVarId()] = 16;
  AExpr I = var("i");
  StmtPtr Foreign = sLoop(LoopKind::Seq, 0, I, cst(4), {});
  EXPECT_DEATH(codegen::staticRegionWork(K, *Foreign, Sizes), "region");
}

//===----------------------------------------------------------------------===//
// Instrumented execution
//===----------------------------------------------------------------------===//

TEST(ProfiledRun, OutputBitIdenticalToUnprofiledRun) {
  REQUIRE_TOOLCHAIN();
  AExpr N;
  codegen::Compiled C = wrap(stencil1d3pt(N));
  const std::int64_t Elems = 512;
  SizeEnv Sizes;
  Sizes[N->getVarId()] = Elems;
  std::vector<std::vector<float>> Inputs(1);
  Inputs[0].resize(std::size_t(Elems));
  for (std::size_t X = 0; X != Inputs[0].size(); ++X)
    Inputs[0][X] = 0.25f * float(X) - 17.0f;

  const std::uint64_t Hash = 0x1234567ULL;
  NativeKernelPtr Plain = KernelCache::global().getOrCompile(Hash, C.K);
  NativeRunResult R = runNative(C, *Plain, Inputs, Sizes);

  ProfiledKernelRun P = profileKernel(C, Hash, Inputs, Sizes,
                                      /*Warmup=*/0, /*Repeats=*/1);
  ASSERT_EQ(P.Output.size(), R.Output.size());
  EXPECT_EQ(std::memcmp(P.Output.data(), R.Output.data(),
                        R.Output.size() * sizeof(float)),
            0)
      << "instrumentation must not perturb results";
}

TEST(ProfiledRun, BenchmarkKernelsBitIdenticalProfiledVsUnprofiled) {
  REQUIRE_TOOLCHAIN();
  for (bool Tiled : {false, true}) {
    const Benchmark &B = findBenchmark("Jacobi2D5pt");
    BenchmarkInstance I = B.Build();
    rewrite::LoweringOptions O;
    if (Tiled) {
      O.Tile = true;
      O.TileOutputs = 16;
      O.UseLocalMem = true;
    }
    std::string WhyNot;
    ir::Program Low = rewrite::lowerStencil(I.P, O, &WhyNot);
    ASSERT_TRUE(bool(Low)) << WhyNot;
    codegen::Compiled C = codegen::compileProgram(Low, B.Name);
    Extents E = {64, 64};
    SizeEnv Sizes = makeSizeEnv(I, E);
    std::vector<std::vector<float>> Inputs = makeBenchmarkInputs(B, E);
    std::uint64_t Hash = ir::structuralHash(Low);
    NativeKernelPtr Plain = KernelCache::global().getOrCompile(Hash, C.K);
    NativeRunResult R = runNative(C, *Plain, Inputs, Sizes);
    ProfiledKernelRun P =
        profileKernel(C, Hash, Inputs, Sizes, /*Warmup=*/0, /*Repeats=*/1);
    ASSERT_EQ(P.Output.size(), R.Output.size());
    EXPECT_EQ(std::memcmp(P.Output.data(), R.Output.data(),
                          R.Output.size() * sizeof(float)),
              0)
        << (Tiled ? "tiled" : "untiled");
  }
}

TEST(ProfiledRun, RegionSecondsAreSaneAndJoinedWithStaticCounts) {
  REQUIRE_TOOLCHAIN();
  AExpr N;
  codegen::Compiled C = wrap(stencil1d3pt(N));
  const std::int64_t Elems = 4096;
  SizeEnv Sizes;
  Sizes[N->getVarId()] = Elems;
  std::vector<std::vector<float>> Inputs(1);
  Inputs[0].assign(std::size_t(Elems), 1.0f);

  MachinePeaks Peaks;
  Peaks.GBPerSec = 10.0;
  Peaks.GFlopsPerSec = 5.0;
  ProfiledKernelRun P =
      profileKernel(C, /*LoweredHash=*/0xfeedULL, Inputs, Sizes,
                    /*Warmup=*/1, /*Repeats=*/3, {}, &Peaks);
  ASSERT_EQ(P.P.Regions.size(), 1u);
  const obs::ProfileRegion &R = P.P.Regions[0];
  EXPECT_GE(R.Seconds, 0.0);
  // The single region accounts for (almost) the entire kernel.
  EXPECT_LE(R.Seconds, P.P.TotalSeconds + 1e-9);
  EXPECT_EQ(R.BytesRead, std::uint64_t(3 * 4 * Elems));
  EXPECT_EQ(R.BytesWritten, std::uint64_t(4 * Elems));
  EXPECT_EQ(P.P.PeakGBPerSec, 10.0);
  EXPECT_EQ(P.P.PeakGFlopsPerSec, 5.0);
  // Output is still the right stencil: interior point = 3.0.
  EXPECT_EQ(P.Output[std::size_t(Elems / 2)], 3.0f);
}

TEST(ProfiledRun, ProfiledAbiIsRejectedByPlainEntryAccessor) {
  REQUIRE_TOOLCHAIN();
  AExpr N;
  codegen::Compiled C = wrap(stencil1d3pt(N));
  NativeOptions O;
  O.Profile = true;
  NativeKernelPtr Kern =
      KernelCache::global().getOrCompile(0xabcdULL, C.K, O);
  ASSERT_TRUE(Kern->profiled());
  EXPECT_DEATH((void)Kern->entry(), "profil");
}

TEST(ProfiledRun, EmittedSourceTimesEveryRegionOnce) {
  AExpr N;
  Kernel K = stencil1d3pt(N);
  CEmitOptions O;
  O.Profile = true;
  std::string Src = emitC(K, O);
  // One region: one accumulation slot, the timer helper, the extended
  // ABI, and no OpenMP pragma (timers are not thread-safe).
  EXPECT_NE(Src.find("double *lift_prof"), std::string::npos);
  EXPECT_NE(Src.find("lift_prof_now()"), std::string::npos);
  EXPECT_NE(Src.find("lift_prof[0] +="), std::string::npos);
  EXPECT_EQ(Src.find("lift_prof[1]"), std::string::npos);
  EXPECT_EQ(Src.find("#pragma omp"), std::string::npos);
}

} // namespace
