//===- CEmitterTest.cpp - Unit tests for the kernel-AST -> C emitter -------===//
//
// Part of the liftcpp project.
//
// Exercises the emitter on hand-built kernels where each property is
// isolated: loop structure and iteration counts, OpenMP pragma
// placement and the sequential fallback, boundary-clamp index
// rendering through the floor-division helpers, local-memory tile
// declarations and their per-thread privatization, and the exact
// float-literal formatting the bit-identity contract depends on.
//
//===----------------------------------------------------------------------===//

#include "native/CEmitter.h"

#include "codegen/CodeGen.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;

namespace {

/// in0[i] summed over a Glb loop: the smallest parallelizable kernel.
Kernel simpleGlbKernel() {
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "simple";
  K.Buffers.push_back({0, "in0", ir::ScalarKind::Float, MemSpace::Global, N,
                       /*IsInput=*/true, /*IsOutput=*/false});
  K.Buffers.push_back({1, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       /*IsInput=*/false, /*IsOutput=*/true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N, {sStore(1, I, kLoad(0, I))}));
  return K;
}

std::string emitDefault(const Kernel &K) { return native::emitC(K); }

TEST(CEmitter, LoopStructureAndAbi) {
  std::string Src = emitDefault(simpleGlbKernel());
  // Positional ABI: buffers unpacked in declaration order, sizes in
  // SizeArgs order, threads last.
  EXPECT_NE(Src.find("void simple(void **lift_bufs, const long long "
                     "*lift_sizes, int lift_threads)"),
            std::string::npos);
  EXPECT_NE(Src.find("float *restrict in0 = (float *)lift_bufs[0];"),
            std::string::npos);
  EXPECT_NE(Src.find("float *restrict out = (float *)lift_bufs[1];"),
            std::string::npos);
  EXPECT_NE(Src.find("const long long n = lift_sizes[0];"),
            std::string::npos);
  // Loops match the simulator's semantics: 0..count-1 regardless of
  // the NDRange kind.
  EXPECT_NE(Src.find("for (long long i = 0; i < n; ++i) {"),
            std::string::npos);
  EXPECT_NE(Src.find("out[i] = in0[i];"), std::string::npos);
}

TEST(CEmitter, OpenMpPragmaOnOutermostGlbLoopOnly) {
  Kernel K = simpleGlbKernel();
  std::string Src = emitDefault(K);
  std::size_t Pragma = Src.find("#pragma omp parallel for");
  ASSERT_NE(Pragma, std::string::npos);
  EXPECT_EQ(Src.find("#pragma omp", Pragma + 1), std::string::npos)
      << "only the root loop may carry the pragma";
  // The pragma must immediately precede the root loop.
  std::size_t Loop = Src.find("for (long long i = 0;");
  EXPECT_LT(Pragma, Loop);
}

TEST(CEmitter, OpenMpCanBeDisabled) {
  native::CEmitOptions O;
  O.OpenMP = false;
  std::string Src = native::emitC(simpleGlbKernel(), O);
  EXPECT_EQ(Src.find("#pragma omp"), std::string::npos);
}

TEST(CEmitter, NestedGlbLoopGetsNoPragma) {
  // Only the outermost Glb/Wrg loop is a parallel root; the inner one
  // stays sequential inside each thread (matching the simulator's
  // sequential per-iteration semantics).
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "nested";
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global,
                       mul(N, N), false, true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i"), J = var("j");
  K.Body.push_back(sLoop(
      LoopKind::Glb, 0, I, N,
      {sLoop(LoopKind::Glb, 1, J, N,
             {sStore(0, add(mul(I, N), J), kConst(ir::Scalar(1.0f)))})}));
  std::string Src = emitDefault(K);
  std::size_t First = Src.find("#pragma omp parallel for");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Src.find("#pragma omp", First + 1), std::string::npos);
}

TEST(CEmitter, RegisterSharedAcrossRootsForcesSequentialFallback) {
  // An accumulator register written under two different parallel
  // roots cannot be privatized into either; the emitter must fall
  // back to fully sequential code rather than emit a data race.
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "shared_reg";
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.Registers.push_back({0, "acc", ir::ScalarKind::Float});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i"), J = var("j");
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N, {sAssign(0, kConst(ir::Scalar(0.0f)))}));
  K.Body.push_back(sLoop(LoopKind::Glb, 0, J, N, {sStore(0, J, kReadVar(0))}));
  std::string Src = emitDefault(K);
  EXPECT_EQ(Src.find("#pragma omp"), std::string::npos)
      << "register live across two roots must disable parallelism";
  EXPECT_NE(Src.find("float acc = 0;"), std::string::npos);
}

TEST(CEmitter, RegisterUsedUnderOneRootIsPrivatized) {
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "priv_reg";
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.Registers.push_back({0, "acc", ir::ScalarKind::Float});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(sLoop(LoopKind::Glb, 0, I, N,
                         {sAssign(0, kConst(ir::Scalar(2.0f))),
                          sStore(0, I, kReadVar(0))}));
  std::string Src = emitDefault(K);
  ASSERT_NE(Src.find("#pragma omp parallel for"), std::string::npos);
  // The register declaration must be *inside* the root loop body (per
  // OpenMP-thread private), i.e. after the root's opening line.
  std::size_t Loop = Src.find("for (long long i = 0;");
  std::size_t Decl = Src.find("float acc = 0;");
  ASSERT_NE(Loop, std::string::npos);
  ASSERT_NE(Decl, std::string::npos);
  EXPECT_LT(Loop, Decl);
}

TEST(CEmitter, BoundaryClampRendersThroughHelpers) {
  // clampIndex(i - 1, n) must render with lift_max/lift_min, never
  // C's truncating operators or int-typed min/max.
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "clamped";
  K.Buffers.push_back({0, "in0", ir::ScalarKind::Float, MemSpace::Global, N,
                       true, false});
  K.Buffers.push_back({1, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N,
            {sStore(1, I, kLoad(0, clampIndex(sub(I, cst(1)), N)))}));
  std::string Src = emitDefault(K);
  EXPECT_NE(Src.find("lift_max(0, lift_min((-1 + n), (-1 + i)))"),
            std::string::npos)
      << Src;
}

TEST(CEmitter, FloorDivisionNeverUsesTruncatingOperators) {
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "divmod";
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(
      sLoop(LoopKind::Glb, 0, I, N,
            {sStore(0, add(floorDiv(I, cst(3)), floorMod(I, cst(3))),
                    kConst(ir::Scalar(1.0f)))}));
  std::string Src = emitDefault(K);
  EXPECT_NE(Src.find("lift_fdiv(i, 3)"), std::string::npos) << Src;
  EXPECT_NE(Src.find("lift_fmod(i, 3)"), std::string::npos) << Src;
}

TEST(CEmitter, FloatLiteralsRoundTrip) {
  auto Lit = [](float V) {
    Kernel K;
    AExpr N = var("n", Range(1, 1 << 30));
    K.Name = "lit";
    K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global,
                         N, false, true});
    K.SizeArgs.push_back({N->getVarId(), "n"});
    AExpr I = var("i");
    K.Body.push_back(
        sLoop(LoopKind::Seq, 0, I, N, {sStore(0, I, kConst(ir::Scalar(V)))}));
    return native::emitC(K);
  };
  // %.9g round-trips every finite float; integral values still get a
  // decimal point so the literal parses as floating.
  EXPECT_NE(Lit(0.1f).find("0.100000001f"), std::string::npos);
  EXPECT_NE(Lit(1.0f).find("1.0f"), std::string::npos);
  EXPECT_NE(Lit(-1.0e30f).find("-1.00000002e+30f"), std::string::npos);
  EXPECT_NE(Lit(1.0f / 6.0f).find("0.166666672f"), std::string::npos);
}

TEST(CEmitter, LocalTileEmission) {
  // The paper's tiled+local Stencil2D: the staged tile becomes a
  // plain C array with a constant extent, zero-initialized, declared
  // inside the parallel root (one tile per OpenMP thread), and the
  // work-group barrier is elided to a comment.
  using namespace lift::stencil;
  const Benchmark &B = findBenchmark("Stencil2D");
  BenchmarkInstance I = B.Build();
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  ir::Program Low = rewrite::lowerStencil(I.P, O);
  ASSERT_TRUE(Low);
  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  std::string Src = native::emitC(C.K);
  ASSERT_NE(Src.find("#pragma omp parallel for"), std::string::npos);
  std::size_t Root = Src.find("for (long long i0 = 0;");
  std::size_t Tile = Src.find("float lcl0[324] = {0};");
  ASSERT_NE(Root, std::string::npos) << Src;
  ASSERT_NE(Tile, std::string::npos) << Src;
  EXPECT_LT(Root, Tile) << "tile must be private to the parallel root";
  EXPECT_NE(Src.find("/* work-group barrier: implicit (loop completed) */"),
            std::string::npos);
  EXPECT_EQ(Src.find("barrier("), std::string::npos);
}

TEST(CEmitter, UnrolledSeqLoopGetsUnrollPragma) {
  Kernel K;
  AExpr N = var("n", Range(1, 1 << 30));
  K.Name = "unrolled";
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float, MemSpace::Global, N,
                       false, true});
  K.SizeArgs.push_back({N->getVarId(), "n"});
  AExpr I = var("i");
  K.Body.push_back(sLoop(LoopKind::Seq, 0, I, cst(3),
                         {sStore(0, I, kConst(ir::Scalar(1.0f)))},
                         /*Unroll=*/true));
  std::string Src = emitDefault(K);
  EXPECT_NE(Src.find("#pragma GCC unroll 3"), std::string::npos) << Src;
}

TEST(CEmitter, KernelNameSanitizedAndCollisionFree) {
  Kernel K = simpleGlbKernel();
  K.Name = "1bad name!";
  std::string Src = native::emitC(K);
  EXPECT_EQ(Src.find("void 1bad"), std::string::npos);
  EXPECT_NE(Src.find("void v_1bad_name_(void **lift_bufs"),
            std::string::npos)
      << Src;
}

} // namespace
