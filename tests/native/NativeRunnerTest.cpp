//===- NativeRunnerTest.cpp - Compile/dlopen/run backend tests -------------===//
//
// Part of the liftcpp project.
//
// Exercises the native execution backend end to end (bit-identity
// against the simulator, thread-count determinism, the compiled-kernel
// cache) and each recoverable error path: compiler not found, compile
// failure with diagnostics, missing entry symbol. Also pins the temp
// hygiene contract — a private $TMPDIR is left empty after both
// successful and failing compilations.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "native/NativeRunner.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::native;
using namespace lift::stencil;

namespace {

bool haveToolchain() {
  try {
    probeToolchain();
    return true;
  } catch (const NativeError &) {
    return false;
  }
}

#define REQUIRE_TOOLCHAIN()                                                  \
  if (!haveToolchain())                                                      \
  GTEST_SKIP() << "no usable host C compiler; skipping native test"

/// A benchmark lowered, compiled and ready to execute on either
/// backend at its measurement grid.
struct Built {
  codegen::Compiled C;
  std::vector<std::vector<float>> Inputs;
  ocl::SizeEnv Sizes;
  std::uint64_t LowHash = 0;
};

Built buildBench(const std::string &Name, bool Tiled) {
  const Benchmark &B = findBenchmark(Name);
  BenchmarkInstance I = B.Build();
  rewrite::LoweringOptions O;
  if (Tiled) {
    O.Tile = true;
    O.TileOutputs = 16;
    O.UseLocalMem = true;
  }
  std::string WhyNot;
  ir::Program Low = rewrite::lowerStencil(I.P, O, &WhyNot);
  if (!Low)
    throw std::runtime_error("lowering failed: " + WhyNot);
  Built R;
  R.C = codegen::compileProgram(Low, B.Name);
  R.Inputs = makeBenchmarkInputs(B, B.MeasureExtents);
  R.Sizes = makeSizeEnv(I, B.MeasureExtents);
  R.LowHash = ir::structuralHash(Low);
  return R;
}

/// Bit-exact float comparison (0.0f == -0.0f and NaN != NaN under
/// operator==, so memcmp is the honest check).
bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

std::size_t countDirEntries(const std::string &Dir) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return std::size_t(-1);
  std::size_t N = 0;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      ++N;
  }
  ::closedir(D);
  return N;
}

const char *TrivialEntry =
    "\nvoid tiny_entry(void **bufs, const long long *sizes, int threads)"
    " { (void)bufs; (void)sizes; (void)threads; }\n";

//===----------------------------------------------------------------------===//
// End-to-end execution
//===----------------------------------------------------------------------===//

TEST(NativeRunner, UntiledMatchesSimulatorBitExactly) {
  REQUIRE_TOOLCHAIN();
  Built B = buildBench("Stencil2D", /*Tiled=*/false);
  codegen::RunResult Sim = codegen::runCompiled(B.C, B.Inputs, B.Sizes);

  NativeKernelPtr Kern = compileKernel(B.C.K);
  for (unsigned Threads : {1u, 3u}) {
    NativeRunResult NR =
        runNative(B.C, *Kern, B.Inputs, B.Sizes, Threads);
    EXPECT_TRUE(bitIdentical(NR.Output, Sim.Output))
        << "native output diverged from simulator at " << Threads
        << " thread(s)";
    EXPECT_GT(NR.Seconds, 0.0);
  }
}

TEST(NativeRunner, TiledLocalMatchesSimulatorBitExactly) {
  REQUIRE_TOOLCHAIN();
  Built B = buildBench("Stencil2D", /*Tiled=*/true);
  codegen::RunResult Sim = codegen::runCompiled(B.C, B.Inputs, B.Sizes);

  NativeKernelPtr Kern = compileKernel(B.C.K);
  NativeRunResult NR =
      runNative(B.C, *Kern, B.Inputs, B.Sizes, /*Threads=*/3);
  EXPECT_TRUE(bitIdentical(NR.Output, Sim.Output));
}

TEST(NativeRunner, WarmupAndRepeatsKeepOutputStable) {
  REQUIRE_TOOLCHAIN();
  Built B = buildBench("Stencil2D", /*Tiled=*/false);
  NativeKernelPtr Kern = compileKernel(B.C.K);
  NativeRunResult Once =
      runNative(B.C, *Kern, B.Inputs, B.Sizes, /*Threads=*/1);
  NativeRunResult Timed =
      runNative(B.C, *Kern, B.Inputs, B.Sizes, /*Threads=*/1,
                /*Warmup=*/2, /*Repeats=*/3);
  // Re-running on the same buffers must not perturb the result (the
  // kernels read inputs and write the output; no accumulation).
  EXPECT_TRUE(bitIdentical(Timed.Output, Once.Output));
  EXPECT_GT(Timed.Seconds, 0.0);
}

//===----------------------------------------------------------------------===//
// Kernel cache
//===----------------------------------------------------------------------===//

TEST(NativeRunner, CacheReturnsIdenticalKernelOnHit) {
  REQUIRE_TOOLCHAIN();
  Built B = buildBench("Stencil2D", /*Tiled=*/false);
  KernelCache &C = KernelCache::global();
  C.clear();
  NativeKernelPtr K1 = C.getOrCompile(B.LowHash, B.C.K);
  NativeKernelPtr K2 = C.getOrCompile(B.LowHash, B.C.K);
  EXPECT_EQ(K1.get(), K2.get()) << "cache hit must share the mapping";
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.hits(), 1u);

  // Collision resolution is by emitted source, not by trusting the
  // hash: an independently built instance of the same benchmark emits
  // byte-identical C (deterministic emission), so under the same
  // bucket key it shares the compiled kernel rather than recompiling.
  Built B2 = buildBench("Stencil2D", /*Tiled=*/false);
  NativeKernelPtr K3 = C.getOrCompile(B.LowHash, B2.C.K);
  EXPECT_EQ(K3.get(), K1.get());
  EXPECT_EQ(C.hits(), 2u);
  C.clear();
}

//===----------------------------------------------------------------------===//
// Error paths (all RecoverableError subclasses; never asserts)
//===----------------------------------------------------------------------===//

TEST(NativeRunner, ExplicitBadCompilerPathIsCompilerNotFound) {
  NativeOptions O;
  O.CompilerPath = "/nonexistent/lift-test-cc";
  EXPECT_THROW(findCompiler(O), CompilerNotFoundError);
  EXPECT_THROW(compileCSource(TrivialEntry, "tiny_entry", O),
               CompilerNotFoundError);
}

TEST(NativeRunner, CompilerNotFoundIsRecoverable) {
  NativeOptions O;
  O.CompilerPath = "/nonexistent/lift-test-cc";
  try {
    findCompiler(O);
    FAIL() << "expected CompilerNotFoundError";
  } catch (const RecoverableError &Ex) {
    EXPECT_NE(std::string(Ex.what()).find("/nonexistent/lift-test-cc"),
              std::string::npos)
        << "message should name the missing compiler";
  }
}

TEST(NativeRunner, CompileFailureCarriesDiagnosticsAndSource) {
  REQUIRE_TOOLCHAIN();
  const std::string Broken = "\nvoid broken(void) { this is not C\n";
  try {
    compileCSource(Broken, "broken");
    FAIL() << "expected CompileFailedError";
  } catch (const CompileFailedError &Ex) {
    EXPECT_FALSE(Ex.Diagnostics.empty())
        << "compiler stderr must be captured";
    EXPECT_EQ(Ex.Source, Broken)
        << "the failing source must ride along for artifacts";
    EXPECT_NE(std::string(Ex.what()).find("failed"), std::string::npos);
  }
}

TEST(NativeRunner, MissingEntrySymbolIsSymbolNotFound) {
  REQUIRE_TOOLCHAIN();
  EXPECT_THROW(compileCSource(TrivialEntry, "no_such_symbol"),
               SymbolNotFoundError);
}

TEST(NativeRunner, TempDirLeftEmptyOnSuccessAndFailure) {
  REQUIRE_TOOLCHAIN();

  // Point the backend at a private TMPDIR so this test observes only
  // its own compilations.
  char Priv[] = "/tmp/lift-native-test-XXXXXX";
  ASSERT_NE(::mkdtemp(Priv), nullptr);
  const char *OldTmp = std::getenv("TMPDIR");
  std::string Saved = OldTmp ? OldTmp : "";
  ::setenv("TMPDIR", Priv, 1);

  NativeKernelPtr Kern = compileCSource(TrivialEntry, "tiny_entry");
  EXPECT_EQ(countDirEntries(Priv), 0u)
      << "successful compile left files behind";

  EXPECT_THROW(compileCSource("\nvoid nope( {\n", "nope"),
               CompileFailedError);
  EXPECT_EQ(countDirEntries(Priv), 0u)
      << "failed compile left files behind";

  // The mapping survives the deletion of its backing file: the kernel
  // is still callable after its .so was unlinked.
  void *Bufs[1] = {nullptr};
  long long Sz[1] = {0};
  Kern->entry()(Bufs, Sz, 1);

  if (OldTmp)
    ::setenv("TMPDIR", Saved.c_str(), 1);
  else
    ::unsetenv("TMPDIR");
  ::rmdir(Priv);
}

} // namespace
