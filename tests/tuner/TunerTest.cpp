//===- TunerTest.cpp - Auto-tuner behavior --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;
using namespace lift::tuner;
using namespace lift::stencil;

namespace {

TEST(Tuner, EvaluatesPlainGlobalCandidate) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
  Candidate C; // defaults: untiled, coarsen 1
  Evaluated E = evaluateCandidate(P, deviceNvidiaK20c(), C);
  ASSERT_TRUE(E.Valid);
  EXPECT_GT(E.GElemsPerSec, 0.0);
  EXPECT_GT(E.T.Total, 0.0);
  EXPECT_LE(E.T.Utilization, 1.0);
}

TEST(Tuner, AcceptsNonDividingTileSize) {
  // Since the clamped remainder-tile lowering a tile no longer has to
  // divide the grid: the last tile per dimension shifts left to cover
  // the remainder, so this candidate is evaluated, not pruned.
  const Benchmark &B = findBenchmark("SRAD1"); // 504 x 458
  TuningProblem P = makeProblem(B, false);
  Candidate C;
  C.Options.Tile = true;
  C.Options.TileOutputs = 16; // 458 % 16 != 0: remainder tiles
  Evaluated E = evaluateCandidate(P, deviceNvidiaK20c(), C);
  EXPECT_TRUE(E.Valid) << E.WhyNot;
  EXPECT_GT(E.T.Total, 0.0);
}

TEST(Tuner, RejectsOversizedLocalTile) {
  const Benchmark &B = findBenchmark("Jacobi3D7pt");
  TuningProblem P = makeProblem(B, false);
  Candidate C;
  C.Options.Tile = true;
  C.Options.TileOutputs = 32; // (32+2)^3 floats = 157 KB > 48 KB local
  C.Options.UseLocalMem = true;
  Evaluated E = evaluateCandidate(P, deviceNvidiaK20c(), C);
  EXPECT_FALSE(E.Valid);
}

TEST(Tuner, TilingSupportsZipShapes) {
  // Multi-grid (zipNd) stencils tile too: slided components get
  // overlapping tiles, point-wise ones exact tiles.
  const Benchmark &B = findBenchmark("Hotspot2D"); // two-grid zip
  TuningProblem P = makeProblem(B, false);
  Candidate C;
  C.Options.Tile = true;
  C.Options.TileOutputs = 16;
  C.Options.UseLocalMem = true;
  Evaluated E = evaluateCandidate(P, deviceNvidiaK20c(), C);
  EXPECT_TRUE(E.Valid);
}

TEST(Tuner, SearchFindsValidBest) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, false);
  TuningSpace S = liftSpace();
  // Trim the space to keep the test fast.
  S.TileOutputs = {8, 16};
  S.CoarsenFactors = {1, 4};
  S.WorkGroupSizes = {128};
  TuneResult R = tuneStencil(P, deviceNvidiaK20c(), S);
  ASSERT_TRUE(R.Best.Valid);
  EXPECT_GE(R.All.size(), 4u);
  // The best candidate is no slower than any other evaluated one.
  for (const Evaluated &E : R.All)
    EXPECT_LE(R.Best.T.Total, E.T.Total) << E.C.describe();
}

TEST(Tuner, PpcgSpaceIsAlwaysTiled) {
  TuningSpace S = ppcgSpace();
  EXPECT_FALSE(S.AllowUntiled);
  EXPECT_TRUE(S.AllowTiling);
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, false);
  TuningSpace Trim = S;
  Trim.TileOutputs = {8, 16};
  Trim.TileCoarsenFactors = {1, 4};
  TuneResult R = tuneStencil(P, deviceNvidiaK20c(), Trim);
  ASSERT_TRUE(R.Best.Valid);
  EXPECT_TRUE(R.Best.C.Options.Tile);
}

TEST(Tuner, MaliPrefersNoLocalMemory) {
  // On the Mali-like device local memory is emulated: staging through
  // it can never win (paper §7.2: no ARM best version uses tiling).
  const Benchmark &B = findBenchmark("Jacobi2D9pt");
  TuningProblem P = makeProblem(B, false);
  TuningSpace S = liftSpace();
  S.TileOutputs = {8, 16};
  S.CoarsenFactors = {1, 2};
  S.WorkGroupSizes = {64, 128};
  TuneResult R = tuneStencil(P, deviceMaliT628(), S);
  ASSERT_TRUE(R.Best.Valid);
  EXPECT_FALSE(R.Best.C.Options.UseLocalMem) << R.Best.C.describe();
}

TEST(Tuner, SmallInputUnderutilizesBigGpu) {
  // SRAD's 504x458 grid cannot saturate a K20c-like device; the tuner's
  // timing must reflect low utilization relative to a large grid
  // (paper §7.1's explanation for SRAD1/2).
  const Benchmark &Srad = findBenchmark("SRAD1");
  TuningProblem PS = makeProblem(Srad, false);
  Candidate C;
  Evaluated ESmall = evaluateCandidate(PS, deviceNvidiaK20c(), C);
  ASSERT_TRUE(ESmall.Valid);

  const Benchmark &Big = findBenchmark("Stencil2D");
  TuningProblem PB = makeProblem(Big, false);
  Evaluated EBig = evaluateCandidate(PB, deviceNvidiaK20c(), C);
  ASSERT_TRUE(EBig.Valid);

  EXPECT_LT(ESmall.GElemsPerSec, EBig.GElemsPerSec);
}

} // namespace
