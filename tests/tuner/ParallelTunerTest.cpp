//===- ParallelTunerTest.cpp - Concurrent tuning determinism --------------===//
//
// Part of the liftcpp project.
//
// The parallel tuner must be a pure performance feature: the winning
// candidate, its predicted time, and the set of valid candidates are
// identical for any job count, the evaluation memo never changes
// results, and a search in which every candidate is pruned reports the
// per-constraint counts instead of failing opaquely.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;
using namespace lift::tuner;
using namespace lift::stencil;

namespace {

TuningSpace trimmedSpace() {
  TuningSpace S = liftSpace();
  S.TileOutputs = {8, 16};
  S.CoarsenFactors = {1, 2};
  S.TileCoarsenFactors = {1, 4};
  S.WorkGroupSizes = {64, 128};
  return S;
}

TEST(ParallelTuner, SameWinnerAtJobs128) {
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
  TuningSpace S = trimmedSpace();
  DeviceSpec Dev = deviceNvidiaK20c();

  TuneOptions O1; // Jobs = 1: legacy sequential path
  TuneResult R1 = tuneStencil(P, Dev, S, O1);

  for (unsigned Jobs : {2u, 8u}) {
    TuneOptions ON;
    ON.Jobs = Jobs;
    TuneResult RN = tuneStencil(P, Dev, S, ON);
    EXPECT_EQ(R1.Best.C.describe(), RN.Best.C.describe()) << "jobs=" << Jobs;
    EXPECT_EQ(R1.Best.T.Total, RN.Best.T.Total) << "jobs=" << Jobs;
    EXPECT_EQ(R1.All.size(), RN.All.size()) << "jobs=" << Jobs;
    // Valid candidates come back in enumeration order with identical
    // predicted times regardless of the thread schedule.
    for (std::size_t I = 0; I != R1.All.size(); ++I) {
      EXPECT_EQ(R1.All[I].C.describe(), RN.All[I].C.describe());
      EXPECT_EQ(R1.All[I].T.Total, RN.All[I].T.Total);
    }
  }
}

TEST(ParallelTuner, MemoDeduplicatesEquivalentLowerings) {
  // Untiled candidates that differ only in work-group size lower to
  // structurally identical programs; the memo must collapse them onto
  // one simulation without changing any result.
  const Benchmark &B = findBenchmark("Jacobi2D5pt");
  TuningProblem P = makeProblem(B, false);
  TuningSpace S = trimmedSpace();
  DeviceSpec Dev = deviceNvidiaK20c();

  TuneOptions WithMemo;
  WithMemo.Jobs = 2;
  TuneOptions NoMemo = WithMemo;
  NoMemo.UseMemo = false;

  TuneResult RM = tuneStencil(P, Dev, S, WithMemo);
  TuneResult RN = tuneStencil(P, Dev, S, NoMemo);

  EXPECT_GT(RM.MemoHits, 0u);
  EXPECT_EQ(RN.MemoHits, 0u);
  ASSERT_EQ(RM.All.size(), RN.All.size());
  for (std::size_t I = 0; I != RM.All.size(); ++I)
    EXPECT_EQ(RM.All[I].T.Total, RN.All[I].T.Total)
        << RM.All[I].C.describe();
  EXPECT_EQ(RM.Best.C.describe(), RN.Best.C.describe());
}

TEST(ParallelTuner, RemainderTilesAreNotPruned) {
  // SRAD1's 504x458 grid is indivisible by 8/16/32/64 tiles (and its
  // 56x56 measurement grid cannot even hold a full 64-output tile).
  // Since the clamped remainder-tile lowering all those candidates
  // are legal -- short extents clamp the tile per dimension -- so the
  // tuner must evaluate them instead of recording stale
  // tile-indivisible prunes.
  const Benchmark &B = findBenchmark("SRAD1");
  TuningProblem P = makeProblem(B, false);
  TuningSpace S = liftSpace();
  DeviceSpec Dev = deviceNvidiaK20c();

  TuneResult R = tuneStencil(P, Dev, S);
  EXPECT_EQ(R.Prunes.TileIndivisible, 0u);
  EXPECT_EQ(R.Prunes.describe().find("tile-indivisible"), std::string::npos);
  // Tiled candidates survived into the valid set.
  bool SawTiled = false;
  for (const auto &E : R.All)
    SawTiled |= E.C.Options.Tile;
  EXPECT_TRUE(SawTiled);
}

TEST(ParallelTuner, StepTwoRemainderPrunesWithDetail) {
  // A remainder fit at window step != 1 is the one shape that stays
  // genuinely unsupported (the shifted tail tile would leave the
  // output lattice), so the prune survives -- and the recorded reason
  // names why.
  Benchmark B = findBenchmark("SRAD1"); // 504 x 458
  B.WindowStep = 2;
  TuningProblem P = makeProblem(B, false);
  TuningSpace S;
  S.AllowUntiled = true;
  S.AllowTiling = true;
  S.TileOutputs = {64}; // k = 32 outputs; 458 % 32 != 0 -> unsupported
  S.TileCoarsenFactors = {1};
  DeviceSpec Dev = deviceNvidiaK20c();

  TuneResult R = tuneStencil(P, Dev, S);
  EXPECT_GT(R.Prunes.TileIndivisible, 0u);
  EXPECT_NE(R.Prunes.describe().find("tile-indivisible"), std::string::npos);
}

TEST(ParallelTunerDeathTest, AllCandidatesPrunedExplainsWhy) {
  // A space whose only tile size leaves a step-2 remainder: every
  // candidate is rejected and the error must carry the per-constraint
  // breakdown.
  Benchmark B = findBenchmark("SRAD1"); // 504 x 458
  B.WindowStep = 2;
  TuningProblem P = makeProblem(B, false);
  TuningSpace S;
  S.AllowUntiled = false;
  S.AllowTiling = true;
  S.TileOutputs = {64}; // k = 32; 458 % 32 != 0 -> tile-indivisible
  S.TileCoarsenFactors = {1};
  DeviceSpec Dev = deviceNvidiaK20c();
  EXPECT_DEATH(tuneStencil(P, Dev, S), "candidates pruned.*tile-indivisible");
}

} // namespace
