//===- ReferencesTest.cpp - Reference baseline validity -------------------===//
//
// Part of the liftcpp project.
//
// The Figure 7 comparison is only meaningful if every modeled reference
// kernel actually lowers, compiles and runs. This locks that in for all
// three devices, and pins the structural choices each reference model
// makes.
//
//===----------------------------------------------------------------------===//

#include "baselines/References.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::stencil;
using namespace lift::tuner;
using namespace lift::baselines;

namespace {

class ReferenceValidity : public ::testing::TestWithParam<const char *> {};

TEST_P(ReferenceValidity, EvaluatesOnEveryDevice) {
  const Benchmark &B = findBenchmark(GetParam());
  TuningProblem P = makeProblem(B, /*LargeTarget=*/false);
  Candidate C = referenceCandidate(B);
  for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
    Evaluated E = evaluateCandidate(P, Dev, C);
    ASSERT_TRUE(E.Valid) << B.Name << " on " << Dev.Name;
    EXPECT_GT(E.GElemsPerSec, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Figure7Set, ReferenceValidity,
    ::testing::Values("Stencil2D", "SRAD1", "SRAD2", "Hotspot2D",
                      "Hotspot3D", "Acoustic"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

TEST(References, StructuralChoices) {
  // SHOC stencil2d: a plain global kernel with the halo loop unrolled.
  Candidate S2D = referenceCandidate(findBenchmark("Stencil2D"));
  EXPECT_FALSE(S2D.Options.Tile);
  EXPECT_TRUE(S2D.Options.UnrollReduce);
  EXPECT_EQ(S2D.Launch.WorkGroupSize, 256);

  // Rodinia hotspot: the fixed 16x16 shared-memory tile kernel.
  Candidate HS = referenceCandidate(findBenchmark("Hotspot2D"));
  EXPECT_TRUE(HS.Options.Tile);
  EXPECT_EQ(HS.Options.TileOutputs, 16);
  EXPECT_TRUE(HS.Options.UseLocalMem);

  // Rodinia hotspot3D: global with 2-point thread coarsening.
  Candidate HS3 = referenceCandidate(findBenchmark("Hotspot3D"));
  EXPECT_FALSE(HS3.Options.Tile);
  EXPECT_EQ(HS3.Options.Coarsen, 2);
}

TEST(References, TunedLiftNeverLosesToReference) {
  // Figure 7's invariant: the references are points inside Lift's
  // space, so tuned Lift is at least as fast everywhere.
  for (const char *Name : {"Stencil2D", "SRAD1", "Hotspot2D"}) {
    const Benchmark &B = findBenchmark(Name);
    TuningProblem P = makeProblem(B, false);
    Candidate Ref = referenceCandidate(B);
    for (const ocl::DeviceSpec &Dev : ocl::paperDevices()) {
      Evaluated ERef = evaluateCandidate(P, Dev, Ref);
      ASSERT_TRUE(ERef.Valid);
      TuningSpace Trim = liftSpace(); // keep the test quick
      Trim.TileOutputs = {16, 32};
      Trim.CoarsenFactors = {1, 2};
      Trim.WorkGroupSizes = {128, 256};
      Trim.AllowUnroll = true;
      TuneResult R = tuneStencil(P, Dev, Trim);
      EXPECT_GE(R.Best.GElemsPerSec * 1.0001, ERef.GElemsPerSec)
          << Name << " on " << Dev.Name;
    }
  }
}

} // namespace
