//===- InteriorSpecTest.cpp - Interior/edge specialization tests ----------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/InteriorSpec.h"

#include "analysis/RangeAnalysis.h"
#include "codegen/Runner.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::analysis;

namespace {

struct Lowered {
  stencil::BenchmarkInstance I;
  codegen::Compiled C;
};

Lowered lower(const stencil::Benchmark &B,
              const rewrite::LoweringOptions &O = {}) {
  Lowered L{B.Build(), {}};
  std::string Why;
  ir::Program Low = rewrite::lowerStencil(L.I.P, O, &Why);
  EXPECT_NE(Low, nullptr) << B.Name << ": " << Why;
  L.C = codegen::compileProgram(Low, B.Name);
  return L;
}

/// Runs original and specialized kernels on the simulator and requires
/// bit-identical outputs over the given extents.
void expectBitIdentical(const stencil::Benchmark &B,
                        const stencil::Extents &E) {
  Lowered L = lower(B);
  SpecStats S;
  codegen::Compiled Spec = L.C;
  Spec.K = specializeInterior(L.C.K, &S);

  auto Env = stencil::makeSizeEnv(L.I, E);
  auto Inputs = stencil::makeBenchmarkInputs(B, E);
  auto Ref = codegen::runCompiled(L.C, Inputs, Env);
  auto Got = codegen::runCompiled(Spec, Inputs, Env);
  ASSERT_EQ(Ref.Output.size(), Got.Output.size()) << B.Name;
  for (std::size_t I = 0; I != Ref.Output.size(); ++I)
    ASSERT_EQ(Ref.Output[I], Got.Output[I])
        << B.Name << " differs at flat index " << I
        << " (split " << S.LoopsSplit << " loops)";
}

TEST(InteriorSpec, SplitsEveryUntiledBenchmarkGridLoop) {
  // Every untiled benchmark lowering is a pure global-memory loop nest,
  // so each grid dimension must split and every constant-pad Select /
  // clamp chain in the interior must dissolve.
  for (const stencil::Benchmark &B : stencil::allBenchmarks()) {
    Lowered L = lower(B);
    SpecStats S;
    ocl::Kernel K = specializeInterior(L.C.K, &S);
    EXPECT_GE(S.LoopsSplit, B.Dims) << B.Name;
    // Any registers used under split loops get fresh interior/right
    // clones (register-free kernels have nothing to duplicate).
    if (!L.C.K.Registers.empty())
      EXPECT_GT(K.Registers.size(), L.C.K.Registers.size()) << B.Name;
  }
}

TEST(InteriorSpec, BitIdenticalOnProxyGrids) {
  for (const stencil::Benchmark &B : stencil::allBenchmarks()) {
    stencil::Extents E = B.MeasureExtents.empty() ? B.SmallExtents
                                                  : B.MeasureExtents;
    expectBitIdentical(B, E);
  }
}

TEST(InteriorSpec, BitIdenticalOnDegenerateGrids) {
  // Grids smaller than the halo exercise the empty-interior partition:
  // left edge takes everything, interior and right edge run zero times.
  const stencil::Benchmark &B = stencil::findBenchmark("Jacobi2D5pt");
  for (std::int64_t N : {1, 2, 3, 5}) {
    expectBitIdentical(B, {N, N});
  }
}

TEST(InteriorSpec, LeavesTiledLocalKernelsAlone) {
  // Local-memory staging uses barriers and Wrg/Lcl loops; the split is
  // not applicable and the kernel must come back unchanged.
  const stencil::Benchmark &B = stencil::findBenchmark("Jacobi2D5pt");
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.UseLocalMem = true;
  Lowered L = lower(B, O);
  SpecStats S;
  ocl::Kernel K = specializeInterior(L.C.K, &S);
  EXPECT_EQ(S.LoopsSplit, 0u);
  EXPECT_EQ(K.Registers.size(), L.C.K.Registers.size());
}

TEST(InteriorSpec, InteriorBodyIsClampFree) {
  // After specialization, the innermost interior loop nest must carry
  // no Min/Max/Mod on its own loop variables — that is the whole point.
  // Verified indirectly: the specialized kernel still bounds-checks
  // clean (the interior loads are in bounds *without* the clamps).
  for (const char *Name : {"Jacobi2D5pt", "Jacobi3D7pt", "Heat"}) {
    Lowered L = lower(stencil::findBenchmark(Name));
    ocl::Kernel K = specializeInterior(L.C.K);
    auto V = checkKernelBounds(K);
    EXPECT_TRUE(V.empty()) << Name << ":\n" << describeViolations(V);
  }
}

} // namespace
