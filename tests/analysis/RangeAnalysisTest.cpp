//===- RangeAnalysisTest.cpp - Symbolic range analysis tests --------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/RangeAnalysis.h"

#include "codegen/CodeGen.h"
#include "ir/TypeInference.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::analysis;

namespace {

//===----------------------------------------------------------------------===//
// Soundness property: for randomly generated expressions (the fuzz
// generator vocabulary: constants, ranged variables, +, -, *, floor
// div/mod, min, max) and randomly sampled assignments consistent with
// the facts, the symbolic bounds must bracket the concrete value and
// fact-driven simplification must preserve it exactly.
//===----------------------------------------------------------------------===//

struct RandomWorld {
  // Size-like vars (declared positive) and index-like vars (unbounded
  // declared range, refined only through Facts).
  std::vector<AExpr> SizeVars;
  std::vector<AExpr> IdxVars;
  Facts F;
  // Refinements actually imposed, for consistent sampling:
  // idx var -> (constant lo, symbolic hi). Hi may mention size vars.
  std::vector<std::pair<AExpr, AExpr>> IdxBounds; // parallel to IdxVars
};

RandomWorld makeWorld(RandomSource &R) {
  RandomWorld W;
  for (int I = 0; I != 2; ++I)
    W.SizeVars.push_back(var("n" + std::to_string(I), Range(1, 1 << 30)));
  for (int I = 0; I != 2; ++I) {
    AExpr V = var("i" + std::to_string(I));
    AExpr Lo = cst(R.nextInt(0, 2));
    AExpr Hi;
    if (R.nextBool()) {
      // Symbolic bound: i <= n - k.
      const AExpr &N = W.SizeVars[std::size_t(R.nextInt(0, 1))];
      Hi = sub(N, cst(R.nextInt(0, 2)));
    } else {
      Hi = cst(R.nextInt(3, 9));
    }
    W.F = W.F.withBound(V->getVarId(), Lo, Hi);
    W.IdxVars.push_back(V);
    W.IdxBounds.emplace_back(Lo, Hi);
  }
  return W;
}

AExpr randomExpr(RandomSource &R, const RandomWorld &W, int Depth) {
  if (Depth == 0 || R.nextBool(0.35)) {
    switch (R.nextInt(0, 3)) {
    case 0:
      return cst(R.nextInt(-4, 4));
    case 1:
      return W.SizeVars[std::size_t(R.nextInt(0, 1))];
    default:
      return W.IdxVars[std::size_t(R.nextInt(0, 1))];
    }
  }
  AExpr A = randomExpr(R, W, Depth - 1);
  AExpr B = randomExpr(R, W, Depth - 1);
  switch (R.nextInt(0, 6)) {
  case 0:
    return add(A, B);
  case 1:
    return sub(A, B);
  case 2:
    return mul(A, cst(R.nextInt(-3, 3))); // keep growth bounded
  case 3:
    return floorDiv(A, cst(R.nextInt(1, 4)));
  case 4:
    return floorMod(A, cst(R.nextInt(1, 5)));
  case 5:
    return amin(A, B);
  default:
    return amax(A, B);
  }
}

/// Samples an assignment consistent with the world's facts; nullopt
/// when the sampled refinement interval is empty.
std::optional<std::unordered_map<unsigned, std::int64_t>>
sampleEnv(RandomSource &R, const RandomWorld &W) {
  std::unordered_map<unsigned, std::int64_t> Env;
  for (const AExpr &N : W.SizeVars)
    Env[N->getVarId()] = R.nextInt(1, 8);
  for (std::size_t I = 0; I != W.IdxVars.size(); ++I) {
    auto Lo = tryEvaluate(W.IdxBounds[I].first, Env);
    auto Hi = tryEvaluate(W.IdxBounds[I].second, Env);
    if (!Lo || !Hi || *Lo > *Hi)
      return std::nullopt;
    Env[W.IdxVars[I]->getVarId()] = R.nextInt(*Lo, *Hi);
  }
  return Env;
}

TEST(RangeAnalysis, BoundsAndSimplifyAreSoundOnRandomExprs) {
  RandomSource R(20260808);
  unsigned Checked = 0;
  for (int Iter = 0; Iter != 400; ++Iter) {
    RandomWorld W = makeWorld(R);
    AExpr E = randomExpr(R, W, 4);
    AExpr LB = lowerBound(E, W.F);
    AExpr UB = upperBound(E, W.F);
    AExpr S = simplifyWithFacts(E, W.F);
    for (int Sample = 0; Sample != 20; ++Sample) {
      auto Env = sampleEnv(R, W);
      if (!Env)
        continue;
      auto VE = tryEvaluate(E, *Env);
      auto VL = tryEvaluate(LB, *Env);
      auto VU = tryEvaluate(UB, *Env);
      auto VS = tryEvaluate(S, *Env);
      ASSERT_TRUE(VE && VL && VU && VS) << E->toString();
      EXPECT_LE(*VL, *VE) << "lower bound " << LB->toString()
                          << " exceeds " << E->toString();
      EXPECT_GE(*VU, *VE) << "upper bound " << UB->toString()
                          << " below " << E->toString();
      EXPECT_EQ(*VS, *VE) << "simplification changed " << E->toString()
                          << " into " << S->toString();
      ++Checked;
    }
  }
  // The sampler must not have starved the property.
  EXPECT_GT(Checked, 2000u);
}

//===----------------------------------------------------------------------===//
// Boundary-arithmetic elimination: the exact clamp / mirror / wrap
// formulas the view system emits must collapse under interior facts.
//===----------------------------------------------------------------------===//

struct InteriorFixture {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr V = var("i");          // interior loop var
  AExpr J = var("j");          // window offset
  Facts F;

  InteriorFixture() {
    // i in [1, n-2] (interior for halo 1), j in [0, 2], shifted by -1.
    F = F.withBound(V->getVarId(), cst(1), sub(N, cst(2)))
            .withBound(J->getVarId(), cst(0), cst(2));
  }

  AExpr shifted() const { return sub(add(V, J), cst(1)); } // in [0, n-1]
};

TEST(RangeAnalysis, ClampEliminatedOnInterior) {
  InteriorFixture X;
  AExpr Clamped = clampIndex(X.shifted(), X.N);
  EXPECT_TRUE(exprEquals(simplifyWithFacts(Clamped, X.F), X.shifted()))
      << simplifyWithFacts(Clamped, X.F)->toString();
}

TEST(RangeAnalysis, MirrorEliminatedOnInterior) {
  InteriorFixture X;
  // The view system's mirror: J = I mod 2n; index = min(J, 2n - 1 - J).
  AExpr TwoN = mul(cst(2), X.N);
  AExpr J = floorMod(X.shifted(), TwoN);
  AExpr Mirror = amin(J, sub(sub(TwoN, cst(1)), J));
  EXPECT_TRUE(exprEquals(simplifyWithFacts(Mirror, X.F), X.shifted()))
      << simplifyWithFacts(Mirror, X.F)->toString();
}

TEST(RangeAnalysis, WrapEliminatedOnInterior) {
  InteriorFixture X;
  AExpr Wrap = floorMod(X.shifted(), X.N);
  EXPECT_TRUE(exprEquals(simplifyWithFacts(Wrap, X.F), X.shifted()));
}

TEST(RangeAnalysis, FlatRowMajorIndexProvablyInBounds) {
  // The 2D store/load pattern: i0 * n1 + i1 with i0 < n0, i1 < n1 must
  // be provably within [0, n0 * n1) purely by cancellation — neither
  // size is numerically bounded.
  AExpr N0 = var("n0", Range(1, 1 << 30));
  AExpr N1 = var("n1", Range(1, 1 << 30));
  AExpr I0 = var("i0");
  AExpr I1 = var("i1");
  Facts F = Facts()
                .withLoopVar(I0, N0)
                .withLoopVar(I1, N1);
  AExpr Flat = add(mul(I0, N1), I1);
  EXPECT_TRUE(provablyInBounds(Flat, cst(0), mul(N0, N1), F));
  // And one past the end is not provable.
  EXPECT_FALSE(provablyInBounds(add(Flat, cst(1)), cst(0), mul(N0, N1), F));
}

TEST(RangeAnalysis, CheckFactSolvesForInnermostVar) {
  // Learning 0 <= i + j - 1 < n while j in [0, 2] must bound the
  // *later-created* variable (j here) and make j + i - 1 in bounds.
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i");
  AExpr J = var("j");
  AExpr Shifted = sub(add(I, J), cst(1));
  Facts F = Facts().withCheckFact(Shifted, cst(0), N);
  EXPECT_TRUE(provablyInBounds(Shifted, cst(0), N, F));
}

TEST(RangeAnalysis, JoinKeepsOnlyCommonFacts) {
  AExpr I = var("i");
  Facts A = Facts().withBound(I->getVarId(), cst(0), cst(4));
  Facts B = Facts().withBound(I->getVarId(), cst(2), cst(9));
  Facts J = A.join(B);
  // i <= 9 and i >= 0 hold on the join; the tighter per-side bounds
  // must not survive.
  EXPECT_TRUE(provablyLE(I, cst(9), J));
  EXPECT_TRUE(provablyLE(cst(0), I, J));
  EXPECT_FALSE(provablyLE(I, cst(4), J));
  EXPECT_FALSE(provablyLE(cst(2), I, J));
}

TEST(RangeAnalysis, TryEvaluateFloorSemanticsAndUnbound) {
  AExpr V = var("x");
  std::unordered_map<unsigned, std::int64_t> Env{{V->getVarId(), -7}};
  EXPECT_EQ(tryEvaluate(floorDiv(V, cst(2)), Env), -4);
  EXPECT_EQ(tryEvaluate(floorMod(V, cst(2)), Env), 1);
  AExpr Other = var("y");
  EXPECT_FALSE(tryEvaluate(add(V, Other), Env).has_value());
}

//===----------------------------------------------------------------------===//
// Split-divisibility refutation
//===----------------------------------------------------------------------===//

TEST(RangeAnalysis, RefutesSplitOnIndivisibleConcreteSize) {
  AExpr N = var("n", Range(1, 1 << 30));
  ir::ParamPtr A = ir::param("A", ir::arrayT(ir::floatT(), N));
  ir::Program P = ir::makeProgram({A}, ir::join(ir::split(cst(4), A)));
  ASSERT_NE(ir::inferTypes(P), nullptr);

  std::unordered_map<unsigned, std::int64_t> Env{{N->getVarId(), 10}};
  auto Why = refuteSplitDivisibility(P, Env);
  ASSERT_TRUE(Why.has_value());
  EXPECT_NE(Why->find("split(4)"), std::string::npos) << *Why;

  Env[N->getVarId()] = 12;
  EXPECT_FALSE(refuteSplitDivisibility(P, Env).has_value());

  // Unbound size: nothing concrete to refute against.
  EXPECT_FALSE(refuteSplitDivisibility(P, {}).has_value());
}

//===----------------------------------------------------------------------===//
// Static kernel bounds checking
//===----------------------------------------------------------------------===//

TEST(RangeAnalysis, AllBenchmarkKernelsCheckClean) {
  for (const stencil::Benchmark &B : stencil::allBenchmarks()) {
    stencil::BenchmarkInstance I = B.Build();
    std::string Why;
    ir::Program Low = rewrite::lowerStencil(I.P, rewrite::LoweringOptions(),
                                            &Why);
    ASSERT_NE(Low, nullptr) << B.Name << ": " << Why;
    codegen::Compiled C = codegen::compileProgram(Low, B.Name);
    auto V = checkKernelBounds(C.K);
    EXPECT_TRUE(V.empty()) << B.Name << ":\n" << describeViolations(V);
  }
}

TEST(RangeAnalysis, CatchesOutOfBoundsStore) {
  // A hand-built kernel storing one past the end must be flagged.
  AExpr N = var("n", Range(1, 1 << 30));
  ocl::Kernel K;
  K.Buffers.push_back({0, "out", ir::ScalarKind::Float,
                       ocl::MemSpace::Global, N, false, true});
  AExpr V = var("i");
  K.Body.push_back(ocl::sLoop(
      ocl::LoopKind::Glb, 0, V, N,
      {ocl::sStore(0, add(V, cst(1)), ocl::kConst(ir::Scalar(1.0f)))}));
  auto Viol = checkKernelBounds(K);
  ASSERT_EQ(Viol.size(), 1u);
  EXPECT_TRUE(Viol[0].IsStore);
  EXPECT_EQ(Viol[0].BufferName, "out");
  EXPECT_FALSE(describeViolations(Viol).empty());

  // The in-bounds version of the same kernel is clean.
  ocl::Kernel OK = K;
  OK.Body.clear();
  OK.Body.push_back(ocl::sLoop(
      ocl::LoopKind::Glb, 0, V, N,
      {ocl::sStore(0, V, ocl::kConst(ir::Scalar(1.0f)))}));
  EXPECT_TRUE(checkKernelBounds(OK).empty());
}

} // namespace
