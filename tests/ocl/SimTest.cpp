//===- SimTest.cpp - NDRange simulator unit tests -------------------------===//
//
// Part of the liftcpp project.
//
// Tests the simulator directly on hand-built kernel ASTs: functional
// semantics of loops/stores/registers/barriers, the cache model's
// response to streaming vs strided access, and NDRange analysis.
//
//===----------------------------------------------------------------------===//

#include "ocl/Emitter.h"
#include "ocl/Sim.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;

namespace {

/// Builds a kernel copying in[i] -> out[i] over a Glb(0) loop with the
/// given index transform applied on the load side.
Kernel makeCopyKernel(const AExpr &N, const AExpr &LoopVar,
                      const AExpr &LoadIndex) {
  Kernel K;
  BufferDecl In;
  In.Id = 0;
  In.Name = "in0";
  In.Space = MemSpace::Global;
  In.NumElems = N;
  In.IsInput = true;
  K.Buffers.push_back(In);
  BufferDecl Out;
  Out.Id = 1;
  Out.Name = "out";
  Out.Space = MemSpace::Global;
  Out.NumElems = N;
  Out.IsOutput = true;
  K.Buffers.push_back(Out);
  K.Body.push_back(sLoop(LoopKind::Glb, 0, LoopVar, N,
                         {sStore(1, LoopVar, kLoad(0, LoadIndex))}));
  K.SizeArgs.emplace_back(N->getVarId(), "n");
  return K;
}

TEST(Sim, CopiesThroughGlobalLoop) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  Kernel K = makeCopyKernel(N, I, I);
  SizeEnv Sizes{{N->getVarId(), 8}};
  Executor Ex(K, Sizes);
  Ex.bindInput(0, {1, 2, 3, 4, 5, 6, 7, 8});
  Ex.run();
  EXPECT_EQ(Ex.bufferContents(1),
            (std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(Ex.counters().GlobalLoads, 8u);
  EXPECT_EQ(Ex.counters().GlobalStores, 8u);
  EXPECT_EQ(Ex.counters().LoopIterations, 8u);
}

TEST(Sim, SequentialStreamHitsCacheLines) {
  // Sequential access: one miss per 32-float line (128B lines).
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  Kernel K = makeCopyKernel(N, I, I);
  SizeEnv Sizes{{N->getVarId(), 1024}};
  CacheConfig Cache;
  Cache.LineBytes = 128;
  Cache.TotalBytes = 64 * 1024;
  Executor Ex(K, Sizes, Cache);
  Ex.bindInput(0, std::vector<float>(1024, 1.0f));
  Ex.run();
  EXPECT_EQ(Ex.counters().GlobalLoadLineMisses, 1024u / 32u);
}

TEST(Sim, StridedAccessMissesMoreLines) {
  // Stride-32 access touches a new line on every load.
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  // load in[(i * 32) % n] — a permutation touching one line each time.
  AExpr Idx = floorMod(mul(I, cst(32)), N);
  Kernel K = makeCopyKernel(N, I, Idx);
  SizeEnv Sizes{{N->getVarId(), 1024}};
  CacheConfig Cache;
  Cache.LineBytes = 128;
  Cache.TotalBytes = 2 * 1024; // too small to retain all lines
  Executor Ex(K, Sizes, Cache);
  Ex.bindInput(0, std::vector<float>(1024, 1.0f));
  Ex.run();
  // Far more misses than the sequential 32-per-line case.
  EXPECT_GT(Ex.counters().GlobalLoadLineMisses, 512u);
}

TEST(Sim, ReuseHitsWithinCapacity) {
  // Reading the same element n times: 1 miss, n-1 hits.
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  Kernel K = makeCopyKernel(N, I, cst(0));
  SizeEnv Sizes{{N->getVarId(), 256}};
  Executor Ex(K, Sizes);
  Ex.bindInput(0, std::vector<float>(256, 7.0f));
  Ex.run();
  EXPECT_EQ(Ex.counters().GlobalLoadLineMisses, 1u);
  EXPECT_EQ(Ex.bufferContents(1)[255], 7.0f);
}

TEST(Sim, RegistersAndSequentialLoops) {
  // acc = 0; for (j in 0..n-1) acc += in[j]; out[0] = acc;
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr J = var("j", Range(0, 1 << 30));
  Kernel K;
  BufferDecl In;
  In.Id = 0;
  In.Name = "in0";
  In.NumElems = N;
  In.IsInput = true;
  K.Buffers.push_back(In);
  BufferDecl Out;
  Out.Id = 1;
  Out.Name = "out";
  Out.NumElems = cst(1);
  Out.IsOutput = true;
  K.Buffers.push_back(Out);
  RegisterDecl Acc;
  Acc.Id = 0;
  Acc.Name = "acc0";
  K.Registers.push_back(Acc);

  K.Body.push_back(sAssign(0, kConst(Scalar(0.0f))));
  K.Body.push_back(sLoop(
      LoopKind::Seq, 0, J, N,
      {sAssign(0, kCallUF(ufAddFloat(), {kReadVar(0), kLoad(0, J)}))}));
  K.Body.push_back(sStore(1, cst(0), kReadVar(0)));

  SizeEnv Sizes{{N->getVarId(), 5}};
  Executor Ex(K, Sizes);
  Ex.bindInput(0, {1, 2, 3, 4, 5});
  Ex.run();
  EXPECT_EQ(Ex.bufferContents(1)[0], 15.0f);
  EXPECT_EQ(Ex.counters().UserFunCalls, 5u);
  EXPECT_EQ(Ex.counters().Flops, 5u);
}

TEST(Sim, BarrierCountsPerWorkgroupExecution) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr W = var("w", Range(0, 1 << 30));
  Kernel K;
  BufferDecl Out;
  Out.Id = 0;
  Out.Name = "out";
  Out.NumElems = N;
  Out.IsOutput = true;
  K.Buffers.push_back(Out);
  K.Body.push_back(sLoop(LoopKind::Wrg, 0, W, N,
                         {sBarrier(), sStore(0, W, kConst(Scalar(1.0f)))}));
  SizeEnv Sizes{{N->getVarId(), 6}};
  Executor Ex(K, Sizes);
  Ex.run();
  EXPECT_EQ(Ex.counters().Barriers, 6u);
}

TEST(Sim, SelectEvaluatesOnlyChosenSide) {
  // Select with an out-of-bounds guard must not touch memory when the
  // guard fails (the constant-pad contract).
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  Kernel K;
  BufferDecl In;
  In.Id = 0;
  In.Name = "in0";
  In.NumElems = N;
  In.IsInput = true;
  K.Buffers.push_back(In);
  BufferDecl Out;
  Out.Id = 1;
  Out.Name = "out";
  Out.NumElems = N;
  Out.IsOutput = true;
  K.Buffers.push_back(Out);
  // out[i] = (i - 1 in [0, n)) ? in[i - 1] : 42
  AExpr Shift = sub(I, cst(1));
  KExprPtr Guarded = kSelect({BoundsCheck{Shift, cst(0), N}},
                             kLoad(0, Shift), kConst(Scalar(42.0f)));
  K.Body.push_back(sLoop(LoopKind::Glb, 0, I, N, {sStore(1, I, Guarded)}));
  SizeEnv Sizes{{N->getVarId(), 4}};
  Executor Ex(K, Sizes);
  Ex.bindInput(0, {10, 20, 30, 40});
  Ex.run();
  EXPECT_EQ(Ex.bufferContents(1), (std::vector<float>{42, 10, 20, 30}));
  EXPECT_EQ(Ex.counters().GlobalLoads, 3u); // i=0 skipped the load
  EXPECT_EQ(Ex.counters().SelectEvals, 4u);
}

TEST(Sim, NDRangeAnalysis) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr W = var("w", Range(0, 1 << 30));
  AExpr L = var("l", Range(0, 1 << 30));
  Kernel K;
  BufferDecl Lcl;
  Lcl.Id = 0;
  Lcl.Name = "lcl0";
  Lcl.Space = MemSpace::Local;
  Lcl.NumElems = cst(18);
  K.Buffers.push_back(Lcl);
  K.Body.push_back(sLoop(
      LoopKind::Wrg, 1, W, N,
      {sLoop(LoopKind::Lcl, 0, L, cst(16),
             {sStore(0, L, kConst(Scalar(0.0f)))})}));
  SizeEnv Sizes{{N->getVarId(), 32}};
  NDRangeInfo Info = analyzeNDRange(K, Sizes);
  EXPECT_TRUE(Info.UsesWorkGroups);
  EXPECT_EQ(Info.NumGroups[1], 32);
  EXPECT_EQ(Info.LocalSize[0], 16);
  EXPECT_EQ(Info.totalWorkGroups(), 32);
  EXPECT_EQ(Info.totalWorkItems(), 32 * 16);
  EXPECT_EQ(Info.LocalMemBytes, 18 * 4);
}

TEST(Sim, UnrolledLoopChargesNoPerIterationOverhead) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr J = var("j", Range(0, 1 << 30));
  Kernel K;
  BufferDecl Out;
  Out.Id = 0;
  Out.Name = "out";
  Out.NumElems = N;
  Out.IsOutput = true;
  K.Buffers.push_back(Out);
  K.Body.push_back(sLoop(LoopKind::Seq, 0, J, N,
                         {sStore(0, J, kConst(Scalar(1.0f)))},
                         /*Unroll=*/true));
  SizeEnv Sizes{{N->getVarId(), 7}};
  Executor Ex(K, Sizes);
  Ex.run();
  EXPECT_EQ(Ex.counters().LoopIterations, 1u); // setup only
  EXPECT_EQ(Ex.counters().GlobalStores, 7u);   // body still ran 7 times
}

TEST(Sim, EmitterRendersHandBuiltKernel) {
  AExpr N = var("n", Range(1, 1 << 30));
  AExpr I = var("i", Range(0, 1 << 30));
  Kernel K = makeCopyKernel(N, I, I);
  K.Name = "copy";
  std::string Src = emitOpenCL(K);
  EXPECT_NE(Src.find("kernel void copy("), std::string::npos) << Src;
  EXPECT_NE(Src.find("out[i] = in0[i];"), std::string::npos) << Src;
}

} // namespace
