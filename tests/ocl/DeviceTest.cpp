//===- DeviceTest.cpp - Device timing model tests --------------------------===//
//
// Part of the liftcpp project.
//
// Property-style tests of the analytic timing model: monotonicity in
// each counter, utilization behavior, and the qualitative differences
// between the three modeled GPUs that the paper's results rest on.
//
//===----------------------------------------------------------------------===//

#include "ocl/Device.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;

namespace {

ExecCounters baseCounters() {
  ExecCounters C;
  C.GlobalLoads = 1'000'000;
  C.GlobalStores = 200'000;
  C.GlobalLoadLineMisses = 40'000;
  C.Flops = 2'000'000;
  C.LoopIterations = 1'200'000;
  return C;
}

NDRangeInfo bigLaunch() {
  NDRangeInfo ND;
  ND.GlobalSize[0] = 4096;
  ND.GlobalSize[1] = 4096;
  return ND;
}

TEST(Device, PaperDevicesAreDistinct) {
  auto Devs = paperDevices();
  ASSERT_EQ(Devs.size(), 3u);
  EXPECT_EQ(Devs[0].Name, "NvidiaK20c");
  EXPECT_EQ(Devs[1].Name, "AmdHd7970");
  EXPECT_EQ(Devs[2].Name, "MaliT628");
  // The mobile GPU is an order of magnitude slower on every engine.
  EXPECT_LT(Devs[2].DramBandwidth, Devs[0].DramBandwidth / 10);
  EXPECT_LT(Devs[2].OpsPerSecond, Devs[0].OpsPerSecond / 10);
  // Mali's "local memory" is no faster than its cache path.
  EXPECT_LE(Devs[2].LocalBandwidth, Devs[2].CacheBandwidth);
  // The discrete GPUs have real scratchpads.
  EXPECT_GT(Devs[0].LocalBandwidth, Devs[0].DramBandwidth);
  EXPECT_GT(Devs[1].LocalBandwidth, Devs[1].DramBandwidth);
}

TEST(Device, TimeIncreasesWithMisses) {
  DeviceSpec Dev = deviceNvidiaK20c();
  LaunchParams LP;
  ExecCounters C = baseCounters();
  Timing T1 = estimateTime(Dev, C, bigLaunch(), LP);
  C.GlobalLoadLineMisses *= 10;
  Timing T2 = estimateTime(Dev, C, bigLaunch(), LP);
  EXPECT_GT(T2.MemTime, T1.MemTime);
  EXPECT_GE(T2.Total, T1.Total);
}

TEST(Device, TimeIncreasesWithFlops) {
  DeviceSpec Dev = deviceMaliT628(); // compute-weak device
  LaunchParams LP;
  ExecCounters C = baseCounters();
  Timing T1 = estimateTime(Dev, C, bigLaunch(), LP);
  C.Flops *= 50;
  Timing T2 = estimateTime(Dev, C, bigLaunch(), LP);
  EXPECT_GT(T2.ComputeTime, T1.ComputeTime);
  EXPECT_GT(T2.Total, T1.Total);
}

TEST(Device, SmallLaunchUnderutilizes) {
  DeviceSpec Dev = deviceNvidiaK20c();
  LaunchParams LP;
  ExecCounters C = baseCounters();

  NDRangeInfo Small;
  Small.GlobalSize[0] = 512; // << 13 SMX * 2048 threads

  Timing TB = estimateTime(Dev, C, bigLaunch(), LP);
  Timing TS = estimateTime(Dev, C, Small, LP);
  EXPECT_LT(TS.Utilization, TB.Utilization);
  EXPECT_GT(TS.Total, TB.Total);
}

TEST(Device, LocalMemoryUseLimitsOccupancy) {
  DeviceSpec Dev = deviceNvidiaK20c();
  LaunchParams LP;
  ExecCounters C = baseCounters();

  NDRangeInfo ND;
  ND.UsesWorkGroups = true;
  ND.NumGroups[0] = 4096;
  ND.LocalSize[0] = 64;

  Timing Light = estimateTime(Dev, C, ND, LP);
  // A work-group hogging all 48 KB of local memory: one resident group
  // per SMX, so far fewer threads in flight.
  ND.LocalMemBytes = 48 * 1024;
  Timing Heavy = estimateTime(Dev, C, ND, LP);
  EXPECT_LT(Heavy.Utilization, Light.Utilization);
  EXPECT_GT(Heavy.Total, Light.Total);
}

TEST(Device, BarriersCostMoreOnAmd) {
  ExecCounters C = baseCounters();
  C.Barriers = 100'000;
  LaunchParams LP;
  Timing TN = estimateTime(deviceNvidiaK20c(), C, bigLaunch(), LP);
  Timing TA = estimateTime(deviceAmdHd7970(), C, bigLaunch(), LP);
  EXPECT_GT(TA.BarrierTime, TN.BarrierTime);
}

TEST(Device, WarpGranularityPenalizesOddGroups) {
  DeviceSpec Dev = deviceAmdHd7970(); // wavefront 64
  LaunchParams LP;
  ExecCounters C = baseCounters();
  NDRangeInfo ND;
  ND.UsesWorkGroups = true;
  ND.NumGroups[0] = 1 << 14;
  ND.LocalSize[0] = 64; // full wavefront
  Timing Full = estimateTime(Dev, C, ND, LP);
  ND.LocalSize[0] = 40; // partially filled wavefront
  Timing Partial = estimateTime(Dev, C, ND, LP);
  EXPECT_LT(Partial.Utilization, Full.Utilization);
}

TEST(Device, TotalDecomposes) {
  DeviceSpec Dev = deviceNvidiaK20c();
  LaunchParams LP;
  ExecCounters C = baseCounters();
  Timing T = estimateTime(Dev, C, bigLaunch(), LP);
  double Busy = std::max({T.MemTime, T.ComputeTime, T.LocalTime});
  EXPECT_NEAR(T.Total, Busy / T.Utilization + T.BarrierTime + T.LaunchTime,
              1e-12);
}

} // namespace
