//===- ParallelSimTest.cpp - Parallel-vs-sequential simulator equivalence -===//
//
// Part of the liftcpp project.
//
// The compiled, sharded ParallelExecutor promises *bit-identical*
// counters and outputs to the sequential tree-walking Executor for any
// thread count (see ParallelSim.h for the merge contract). These tests
// hold it to that promise field-for-field on a 2D and a 3D stencil,
// untiled and tiled+staged, at jobs 1, 2 and 8.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"
#include "ocl/ParallelSim.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;
using namespace lift::stencil;

namespace {

void expectCountersEqual(const ExecCounters &A, const ExecCounters &B,
                         const std::string &What) {
  EXPECT_EQ(A.GlobalLoads, B.GlobalLoads) << What;
  EXPECT_EQ(A.GlobalStores, B.GlobalStores) << What;
  EXPECT_EQ(A.GlobalLoadLineMisses, B.GlobalLoadLineMisses) << What;
  EXPECT_EQ(A.LocalLoads, B.LocalLoads) << What;
  EXPECT_EQ(A.LocalStores, B.LocalStores) << What;
  EXPECT_EQ(A.PrivateAccesses, B.PrivateAccesses) << What;
  EXPECT_EQ(A.Flops, B.Flops) << What;
  EXPECT_EQ(A.UserFunCalls, B.UserFunCalls) << What;
  EXPECT_EQ(A.LoopIterations, B.LoopIterations) << What;
  EXPECT_EQ(A.Barriers, B.Barriers) << What;
  EXPECT_EQ(A.SelectEvals, B.SelectEvals) << What;
}

/// Lowers one benchmark configuration, runs the sequential Executor and
/// the ParallelExecutor at jobs 1/2/8, and asserts exact equivalence of
/// every counter field and every output element.
void checkEquivalence(const char *BenchName,
                      const rewrite::LoweringOptions &O) {
  const Benchmark &B = findBenchmark(BenchName);
  BenchmarkInstance I = B.Build();
  ir::Program Low = rewrite::lowerStencil(I.P, O);
  ASSERT_TRUE(Low) << BenchName << ": lowering failed";

  codegen::Compiled C = codegen::compileProgram(Low, B.Name);
  auto Sizes = makeSizeEnv(I, B.MeasureExtents);
  auto Inputs = makeBenchmarkInputs(B, B.MeasureExtents);
  CacheConfig Cache; // default geometry, same for both engines

  Executor Seq(C.K, Sizes, Cache);
  for (std::size_t X = 0; X != Inputs.size(); ++X)
    Seq.bindInput(C.InputBufferIds[X], Inputs[X]);
  Seq.run();
  std::vector<float> SeqOut = Seq.bufferContents(C.OutputBufferId);

  for (unsigned Jobs : {1u, 2u, 8u}) {
    ParallelExecutor Par(C.K, Sizes, Cache, Jobs);
    for (std::size_t X = 0; X != Inputs.size(); ++X)
      Par.bindInput(C.InputBufferIds[X], Inputs[X]);
    Par.run();

    std::string What =
        std::string(BenchName) + "/" + O.describe() + " jobs=" +
        std::to_string(Jobs);
    expectCountersEqual(Seq.counters(), Par.counters(), What);

    std::vector<float> ParOut = Par.bufferContents(C.OutputBufferId);
    ASSERT_EQ(SeqOut.size(), ParOut.size()) << What;
    for (std::size_t X = 0; X != SeqOut.size(); ++X)
      ASSERT_EQ(SeqOut[X], ParOut[X]) << What << ", element " << X;
  }
}

TEST(ParallelSim, Jacobi2DUntiledMatchesSequential) {
  rewrite::LoweringOptions O;
  checkEquivalence("Jacobi2D5pt", O);
}

TEST(ParallelSim, Jacobi2DTiledLocalUnrollMatchesSequential) {
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  O.UseLocalMem = true;
  O.UnrollReduce = true;
  checkEquivalence("Jacobi2D5pt", O);
}

TEST(ParallelSim, Jacobi3DUntiledMatchesSequential) {
  rewrite::LoweringOptions O;
  checkEquivalence("Jacobi3D7pt", O);
}

TEST(ParallelSim, Jacobi3DTiledLocalMatchesSequential) {
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 8;
  O.UseLocalMem = true;
  checkEquivalence("Jacobi3D13pt", O);
}

TEST(ParallelSim, ZipInputStencilMatchesSequential) {
  rewrite::LoweringOptions O;
  O.Tile = true;
  O.TileOutputs = 16;
  checkEquivalence("Hotspot2D", O);
}

} // namespace
