//===- Generator.cpp - Seeded generation of well-typed stencils -----------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "ir/TypeInference.h"
#include "stencil/StencilOps.h"
#include "support/Support.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <sstream>

using namespace lift;
using namespace lift::ir;
using namespace lift::fuzz;
using namespace lift::stencil;

namespace {

const char *templateName(Template T) {
  switch (T) {
  case Template::Pointwise:
    return "pointwise";
  case Template::Stencil:
    return "stencil";
  case Template::ZipPointwise:
    return "zip-pointwise";
  case Template::ZipStencil:
    return "zip-stencil";
  }
  unreachable("covered switch");
}

std::string boundaryName(const Boundary &B) {
  switch (B.K) {
  case Boundary::Kind::Clamp:
    return "clamp";
  case Boundary::Kind::Mirror:
    return "mirror";
  case Boundary::Kind::Wrap:
    return "wrap";
  case Boundary::Kind::Constant: {
    std::ostringstream OS;
    OS << "constant(" << B.ConstVal << ")";
    return OS.str();
  }
  }
  unreachable("covered switch");
}

/// The outer length of input 0 after the layout chain ran (layout pads
/// grow it; everything else is length-preserving).
std::int64_t outerAfterLayout(const ProgramSpec &S) {
  std::int64_t L = S.Extents.empty() ? 0 : S.Extents[0];
  for (const LayoutOp &Op : S.Layout)
    if (Op.K == LayoutOp::Kind::Pad)
      L += Op.A + Op.B;
  return L;
}

/// Applies the spec's layout chain to input expression \p X (which has
/// outer length \p OuterLen before the chain).
ExprPtr applyLayout(const ProgramSpec &S, ExprPtr X) {
  for (const LayoutOp &Op : S.Layout) {
    switch (Op.K) {
    case LayoutOp::Kind::Pad:
      X = pad(cst(Op.A), cst(Op.B), Op.Bdy, std::move(X));
      break;
    case LayoutOp::Kind::SplitJoin:
      X = join(split(cst(Op.A), std::move(X)));
      break;
    case LayoutOp::Kind::SlideJoin:
      X = join(slide(cst(Op.A), cst(Op.A), std::move(X)));
      break;
    case LayoutOp::Kind::TransposePair:
      X = transpose(transpose(std::move(X)));
      break;
    }
  }
  return X;
}

/// \nbh. theOne(reduce(op, init, flattenNd(nbh))) — the window reducer
/// of the stencil templates.
LambdaPtr windowReducer(unsigned Dims, bool UseMax) {
  return lam("nbh", [&](ExprPtr Nbh) {
    UserFunPtr Op = UseMax ? ufMaxFloat() : ufAddFloat();
    float Init = UseMax ? -1.0e30f : 0.0f;
    return theOne(reduce(etaLambda(Op), lit(Init),
                         flattenNd(Dims, std::move(Nbh))));
  });
}

/// Validates the structural constraints generateSpec promises and the
/// shrinker must re-establish; buildProgram refuses specs that break
/// them instead of constructing ill-typed IR.
bool specRealizable(const ProgramSpec &S) {
  if (S.Dims < 1 || S.Dims > 3 || S.Extents.size() != S.Dims)
    return false;
  for (std::int64_t E : S.Extents)
    if (E < 1)
      return false;
  if (S.PerDimBdy.size() != S.Dims)
    return false;
  bool IsZip = S.Tmpl == Template::ZipPointwise ||
               S.Tmpl == Template::ZipStencil;
  if (S.NumInputs != (IsZip ? 2u : 1u))
    return false;
  bool IsStencil =
      S.Tmpl == Template::Stencil || S.Tmpl == Template::ZipStencil;
  if (IsStencil) {
    if (S.WinSize < 1 || S.WinStep < 1 || S.PadL < 0 || S.PadR < 0)
      return false;
    // Every dimension's padded extent must fit at least one window.
    for (unsigned D = 0; D != S.Dims; ++D) {
      std::int64_t Len =
          (D == 0 ? outerAfterLayout(S) : S.Extents[D]) + S.PadL + S.PadR;
      if (Len < S.WinSize)
        return false;
    }
  }
  std::int64_t Outer = S.Extents[0];
  for (const LayoutOp &Op : S.Layout) {
    switch (Op.K) {
    case LayoutOp::Kind::Pad:
      // Zip templates feed input 0 and input 1 into the same zip; a
      // one-sided pad would break the length agreement.
      if (IsZip || Op.A < 0 || Op.B < 0 || S.SymbolicOuter)
        return false;
      Outer += Op.A + Op.B;
      break;
    case LayoutOp::Kind::SplitJoin:
    case LayoutOp::Kind::SlideJoin:
      if (S.SymbolicOuter || Op.A < 1 || Outer % Op.A != 0)
        return false;
      break;
    case LayoutOp::Kind::TransposePair:
      if (S.Dims < 2)
        return false;
      break;
    }
  }
  if (S.SymbolicOuter && IsZip)
    return false;
  return true;
}

} // namespace

std::string lift::fuzz::describeSpec(const ProgramSpec &S) {
  std::ostringstream OS;
  OS << "seed: " << S.Seed << "\n";
  OS << "template: " << templateName(S.Tmpl) << "\n";
  OS << "dims: " << S.Dims << "\n";
  OS << "extents:";
  for (std::int64_t E : S.Extents)
    OS << " " << E;
  OS << (S.SymbolicOuter ? " (outer symbolic)" : "") << "\n";
  OS << "inputs: " << S.NumInputs << "\n";
  if (S.Tmpl == Template::Stencil || S.Tmpl == Template::ZipStencil) {
    OS << "window: size " << S.WinSize << " step " << S.WinStep << "\n";
    OS << "pad: " << S.PadL << "/" << S.PadR << " boundaries:";
    for (const Boundary &B : S.PerDimBdy)
      OS << " " << boundaryName(B);
    OS << "\n";
    OS << "reduce: " << (S.UseMax ? "max" : "sum") << "\n";
  }
  OS << "layout:";
  if (S.Layout.empty())
    OS << " (none)";
  for (const LayoutOp &Op : S.Layout) {
    switch (Op.K) {
    case LayoutOp::Kind::Pad:
      OS << " pad(" << Op.A << "," << Op.B << "," << boundaryName(Op.Bdy)
         << ")";
      break;
    case LayoutOp::Kind::SplitJoin:
      OS << " splitJoin(" << Op.A << ")";
      break;
    case LayoutOp::Kind::SlideJoin:
      OS << " slideJoin(" << Op.A << ")";
      break;
    case LayoutOp::Kind::TransposePair:
      OS << " transposePair";
      break;
    }
  }
  OS << "\n";
  OS << "rewrite-picks:";
  if (S.RewritePicks.empty())
    OS << " (none)";
  for (std::uint32_t P : S.RewritePicks)
    OS << " " << P;
  OS << "\n";
  return OS.str();
}

ProgramSpec lift::fuzz::generateSpec(std::uint64_t SubSeed) {
  RandomSource R(SubSeed);
  ProgramSpec S;
  S.Seed = SubSeed;

  // Dimensionality: mostly 1D (richest layout variety), some 2D/3D.
  std::int64_t DimRoll = R.nextInt(0, 99);
  S.Dims = DimRoll < 50 ? 1 : DimRoll < 85 ? 2 : 3;

  // Template mix.
  std::int64_t TmplRoll = R.nextInt(0, 99);
  S.Tmpl = TmplRoll < 40   ? Template::Stencil
           : TmplRoll < 60 ? Template::Pointwise
           : TmplRoll < 85 ? Template::ZipStencil
                           : Template::ZipPointwise;
  bool IsZip =
      S.Tmpl == Template::ZipPointwise || S.Tmpl == Template::ZipStencil;
  bool IsStencil =
      S.Tmpl == Template::Stencil || S.Tmpl == Template::ZipStencil;
  S.NumInputs = IsZip ? 2 : 1;

  // Extents biased toward awkward small values (primes, 1, non-powers)
  // so divisibility edge cases are common.
  static const std::int64_t Awkward1D[] = {1, 2,  3,  4,  5,  6,  7,
                                           8, 9, 11, 12, 15, 16, 17, 24};
  static const std::int64_t AwkwardNd[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (unsigned D = 0; D != S.Dims; ++D)
    S.Extents.push_back(
        S.Dims == 1
            ? Awkward1D[R.nextInt(0, std::size(Awkward1D) - 1)]
            : AwkwardNd[R.nextInt(0, std::size(AwkwardNd) - 1)]);

  if (IsStencil) {
    S.WinSize = R.nextInt(1, 5);
    // Step up to the window size; step == size is the degenerate
    // adjacent-window (split-like) case.
    S.WinStep = R.nextInt(1, S.WinSize);
    S.PadL = R.nextInt(0, 3);
    S.PadR = R.nextInt(0, 3);
    for (unsigned D = 0; D != S.Dims; ++D) {
      switch (R.nextInt(0, 3)) {
      case 0:
        S.PerDimBdy.push_back(Boundary::clamp());
        break;
      case 1:
        S.PerDimBdy.push_back(Boundary::mirror());
        break;
      case 2:
        S.PerDimBdy.push_back(Boundary::wrap());
        break;
      default:
        S.PerDimBdy.push_back(
            Boundary::constant(float(R.nextInt(-4, 4)) * 0.5f));
        break;
      }
    }
    S.UseMax = R.nextBool(0.3);
    // Ensure at least one window fits in every padded dimension.
    for (unsigned D = 0; D != S.Dims; ++D)
      S.Extents[D] =
          std::max(S.Extents[D], S.WinSize - S.PadL - S.PadR);
    for (unsigned D = 0; D != S.Dims; ++D)
      S.Extents[D] = std::max<std::int64_t>(S.Extents[D], 1);
  } else {
    for (unsigned D = 0; D != S.Dims; ++D)
      S.PerDimBdy.push_back(Boundary::clamp());
  }

  S.SymbolicOuter = !IsZip && R.nextBool(0.25);

  // Layout chain on input 0.
  std::int64_t Outer = S.Extents[0];
  std::int64_t ChainLen = R.nextInt(0, 3);
  for (std::int64_t I = 0; I != ChainLen; ++I) {
    LayoutOp Op;
    std::int64_t Roll = R.nextInt(0, 4);
    if (Roll <= 1 && !IsZip && !S.SymbolicOuter) {
      Op.K = LayoutOp::Kind::Pad;
      Op.A = R.nextInt(0, 2);
      Op.B = R.nextInt(0, 2);
      switch (R.nextInt(0, 3)) {
      case 0:
        Op.Bdy = Boundary::clamp();
        break;
      case 1:
        Op.Bdy = Boundary::mirror();
        break;
      case 2:
        Op.Bdy = Boundary::wrap();
        break;
      default:
        Op.Bdy = Boundary::constant(float(R.nextInt(-4, 4)) * 0.5f);
        break;
      }
      Outer += Op.A + Op.B;
      // Half the time, immediately stack a second pad with the *same*
      // boundary: adjacent same-boundary pads are exactly what the
      // pad-merge simplification rule fires on, so seeding them keeps
      // that rule under differential test rather than never matching.
      if (R.nextBool(0.5)) {
        S.Layout.push_back(Op);
        Op.A = R.nextInt(0, 2);
        Op.B = R.nextInt(0, 2);
        Outer += Op.A + Op.B;
      }
    } else if ((Roll == 2 || Roll == 3) && !S.SymbolicOuter) {
      // A divisor of the current outer length in [2, 8]; skip when the
      // length is prime or too small.
      std::vector<std::int64_t> Divs;
      for (std::int64_t K = 2; K <= std::min<std::int64_t>(8, Outer); ++K)
        if (Outer % K == 0)
          Divs.push_back(K);
      if (Divs.empty())
        continue;
      Op.K = Roll == 2 ? LayoutOp::Kind::SplitJoin
                       : LayoutOp::Kind::SlideJoin;
      Op.A = Divs[R.nextInt(0, std::int64_t(Divs.size()) - 1)];
    } else if (Roll == 4 && S.Dims >= 2) {
      Op.K = LayoutOp::Kind::TransposePair;
    } else {
      continue;
    }
    S.Layout.push_back(Op);
  }

  // Random rewrite sequence for oracle (b).
  std::int64_t NumPicks = R.nextInt(0, 4);
  for (std::int64_t I = 0; I != NumPicks; ++I)
    S.RewritePicks.push_back(std::uint32_t(R.nextInt(0, 1 << 30)));

  return S;
}

std::optional<BuiltProgram> lift::fuzz::buildProgram(const ProgramSpec &S) {
  if (!specRealizable(S))
    return std::nullopt;

  BuiltProgram B;

  // Declared parameter type (outermost dimension first). The symbolic
  // case binds the outer extent through a size variable instead of a
  // constant — both paths must behave identically.
  AExpr OuterSize;
  if (S.SymbolicOuter) {
    OuterSize = var("n", Range(1, 1 << 30));
    B.Sizes[OuterSize->getVarId()] = S.Extents[0];
  } else {
    OuterSize = cst(S.Extents[0]);
  }
  TypePtr InT = floatT();
  for (unsigned D = S.Dims; D-- > 0;)
    InT = arrayT(InT, D == 0 ? OuterSize : cst(S.Extents[D]));

  // Deterministic input data, quantized to multiples of 0.25 so sums
  // and maxes are exact in float and bit-comparison is meaningful.
  std::size_t Total = 1;
  for (std::int64_t E : S.Extents)
    Total *= std::size_t(E);
  std::vector<ParamPtr> Params;
  for (unsigned I = 0; I != S.NumInputs; ++I) {
    RandomSource DataR(S.Seed * 2654435761u + I + 1);
    std::vector<float> Flat(Total);
    for (float &V : Flat)
      V = float(DataR.nextInt(-32, 32)) * 0.25f;
    switch (S.Dims) {
    case 1:
      B.Vals.push_back(interp::makeFloatArray(Flat));
      break;
    case 2:
      B.Vals.push_back(interp::makeFloatArray2D(
          Flat, std::size_t(S.Extents[0]), std::size_t(S.Extents[1])));
      break;
    default:
      B.Vals.push_back(interp::makeFloatArray3D(
          Flat, std::size_t(S.Extents[0]), std::size_t(S.Extents[1]),
          std::size_t(S.Extents[2])));
      break;
    }
    B.Flat.push_back(std::move(Flat));
    Params.push_back(param("in" + std::to_string(I), InT));
  }

  ExprPtr In0 = applyLayout(S, Params[0]);

  ExprPtr Body;
  switch (S.Tmpl) {
  case Template::Pointwise: {
    LambdaPtr Scale = lam("x", [](ExprPtr X) {
      return apply(ufMultFloat(), {std::move(X), lit(0.5f)});
    });
    Body = mapNd(S.Dims, Scale, std::move(In0));
    break;
  }
  case Template::Stencil: {
    ExprPtr Padded = padNdPerDim(S.Dims, cst(S.PadL), cst(S.PadR),
                                 S.PerDimBdy, std::move(In0));
    Body = mapNd(S.Dims, windowReducer(S.Dims, S.UseMax),
                 slideNd(S.Dims, cst(S.WinSize), cst(S.WinStep),
                         std::move(Padded)));
    break;
  }
  case Template::ZipPointwise: {
    LambdaPtr Add = lam("t", [](ExprPtr T) {
      return apply(ufAddFloat(), {get(0, T), get(1, T)});
    });
    Body = mapNd(S.Dims, Add,
                 zipNd(S.Dims, {std::move(In0), Params[1]}));
    break;
  }
  case Template::ZipStencil: {
    auto Nbh = [&](ExprPtr X) {
      ExprPtr Padded = padNdPerDim(S.Dims, cst(S.PadL), cst(S.PadR),
                                   S.PerDimBdy, std::move(X));
      return slideNd(S.Dims, cst(S.WinSize), cst(S.WinStep),
                     std::move(Padded));
    };
    unsigned Dims = S.Dims;
    bool UseMax = S.UseMax;
    LambdaPtr Combine = lam("t", [&](ExprPtr T) {
      UserFunPtr Op = UseMax ? ufMaxFloat() : ufAddFloat();
      float Init = UseMax ? -1.0e30f : 0.0f;
      ExprPtr A = theOne(reduce(etaLambda(Op), lit(Init),
                                flattenNd(Dims, get(0, T))));
      ExprPtr C = theOne(reduce(etaLambda(Op), lit(Init),
                                flattenNd(Dims, get(1, T))));
      return apply(ufAddFloat(), {std::move(A), std::move(C)});
    });
    Body = mapNd(S.Dims, Combine,
                 zipNd(S.Dims, {Nbh(std::move(In0)), Nbh(Params[1])}));
    break;
  }
  }

  B.P = makeProgram(std::move(Params), std::move(Body));
  if (!tryInferTypes(B.P))
    return std::nullopt;
  return B;
}

unsigned lift::fuzz::countPrims(const Program &P) {
  unsigned Count = 0;
  std::function<void(const ExprPtr &)> Walk = [&](const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal:
    case Expr::Kind::Param:
      return;
    case Expr::Kind::Lambda:
      Walk(dynCast<LambdaExpr>(E)->getBody());
      return;
    case Expr::Kind::Call: {
      const auto *C = dynCast<CallExpr>(E);
      if (C->getPrim() != Prim::UserFunCall)
        ++Count;
      for (const ExprPtr &A : C->getArgs())
        Walk(A);
      return;
    }
    }
  };
  Walk(P->getBody());
  return Count;
}
