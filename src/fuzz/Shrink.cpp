//===- Shrink.cpp - Greedy minimization of failing fuzz specs -------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//
//
// Spec-level shrinking: instead of mutating the IR tree of a failing
// program (which can easily leave the well-typed subset), the shrinker
// proposes strictly-smaller *specs* and keeps a candidate only when
// runDifferential still reports a mismatch. Because every accepted step
// decreases a lexicographic size measure, the loop terminates; because
// acceptance re-runs the full differential check, the final spec is a
// genuine reproducer, replayable from the artifact alone.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <algorithm>
#include <cstdint>

using namespace lift;
using namespace lift::ir;
using namespace lift::fuzz;

namespace {

int templateRank(Template T) {
  switch (T) {
  case Template::Pointwise:
    return 0;
  case Template::Stencil:
    return 1;
  case Template::ZipPointwise:
    return 2;
  case Template::ZipStencil:
    return 3;
  }
  return 3;
}

/// Lexicographic size measure; every shrinking transformation must
/// strictly decrease it, which is what guarantees termination. The
/// component order encodes what "smaller" means for a human reading
/// the reproducer: simpler template first, then fewer dimensions,
/// fewer rewrites, shorter layout chain, concrete sizes, and only then
/// smaller numbers.
std::vector<std::int64_t> measure(const ProgramSpec &S) {
  std::int64_t ExtentSum = 0;
  for (std::int64_t E : S.Extents)
    ExtentSum += E;
  std::int64_t BdyCost = 0;
  for (const Boundary &B : S.PerDimBdy)
    BdyCost += B.K == Boundary::Kind::Clamp ? 0 : 1;
  for (const LayoutOp &Op : S.Layout)
    if (Op.K == LayoutOp::Kind::Pad && Op.Bdy.K != Boundary::Kind::Clamp)
      ++BdyCost;
  std::int64_t PickSum = 0;
  for (std::uint32_t P : S.RewritePicks)
    PickSum += P;
  return {templateRank(S.Tmpl),
          std::int64_t(S.Dims),
          std::int64_t(S.RewritePicks.size()),
          std::int64_t(S.Layout.size()),
          S.SymbolicOuter ? 1 : 0,
          ExtentSum,
          S.WinSize + S.WinStep + S.PadL + S.PadR,
          BdyCost,
          PickSum};
}

/// Emits \p C and, when it still carries rewrite picks, variants with
/// the picks collapsed to a single small literal. Structural changes
/// (fewer dims, simpler template) change the set of applicable
/// rewrites, so the original pick values usually stop selecting the
/// step that caused the failure; re-aiming the pick in the same move
/// is what lets such candidates keep failing and be accepted.
void pushWithPickRetunes(std::vector<ProgramSpec> &Out, ProgramSpec C) {
  if (!C.RewritePicks.empty())
    for (std::uint32_t V = 0; V != 8; ++V) {
      ProgramSpec R = C;
      R.RewritePicks = {V};
      Out.push_back(std::move(R));
    }
  Out.push_back(std::move(C));
}

/// All one-step smaller variants of \p S, roughly biggest win first.
std::vector<ProgramSpec> proposals(const ProgramSpec &S) {
  std::vector<ProgramSpec> Out;

  // Zip templates -> their single-input counterpart.
  if (S.Tmpl == Template::ZipStencil || S.Tmpl == Template::ZipPointwise) {
    ProgramSpec C = S;
    C.Tmpl = S.Tmpl == Template::ZipStencil ? Template::Stencil
                                            : Template::Pointwise;
    C.NumInputs = 1;
    pushWithPickRetunes(Out, std::move(C));
  }

  // Stencil -> Pointwise, folding the stencil's own pad into the
  // layout chain (1D only; the layout chain acts on the outermost
  // dimension). This keeps pad-pad structure alive, so pad-related
  // rewrite bugs survive all the way down to map(pad(pad(x))).
  if (S.Tmpl == Template::Stencil && S.Dims == 1) {
    ProgramSpec C = S;
    C.Tmpl = Template::Pointwise;
    if (S.PadL != 0 || S.PadR != 0) {
      LayoutOp P;
      P.K = LayoutOp::Kind::Pad;
      P.A = S.PadL;
      P.B = S.PadR;
      P.Bdy = S.PerDimBdy.empty() ? Boundary::clamp() : S.PerDimBdy[0];
      C.Layout.insert(C.Layout.begin(), P);
    }
    C.WinSize = 1;
    C.WinStep = 1;
    C.PadL = 0;
    C.PadR = 0;
    C.UseMax = false;
    pushWithPickRetunes(Out, std::move(C));
  }

  // Drop the innermost dimension.
  if (S.Dims > 1) {
    ProgramSpec C = S;
    --C.Dims;
    C.Extents.pop_back();
    if (!C.PerDimBdy.empty())
      C.PerDimBdy.pop_back();
    // A transpose pair needs two dimensions.
    if (C.Dims < 2)
      C.Layout.erase(std::remove_if(C.Layout.begin(), C.Layout.end(),
                                    [](const LayoutOp &Op) {
                                      return Op.K ==
                                             LayoutOp::Kind::TransposePair;
                                    }),
                     C.Layout.end());
    pushWithPickRetunes(Out, std::move(C));
  }

  // Drop one rewrite pick.
  for (std::size_t I = 0; I != S.RewritePicks.size(); ++I) {
    ProgramSpec C = S;
    C.RewritePicks.erase(C.RewritePicks.begin() + std::ptrdiff_t(I));
    Out.push_back(C);
  }

  // Drop one layout op.
  for (std::size_t I = 0; I != S.Layout.size(); ++I) {
    ProgramSpec C = S;
    C.Layout.erase(C.Layout.begin() + std::ptrdiff_t(I));
    pushWithPickRetunes(Out, std::move(C));
  }

  // Bind the symbolic outer extent.
  if (S.SymbolicOuter) {
    ProgramSpec C = S;
    C.SymbolicOuter = false;
    pushWithPickRetunes(Out, std::move(C));
  }

  // Smaller extents: halve, then decrement.
  for (std::size_t D = 0; D != S.Extents.size(); ++D) {
    if (S.Extents[D] > 1) {
      ProgramSpec H = S;
      H.Extents[D] = (S.Extents[D] + 1) / 2;
      pushWithPickRetunes(Out, std::move(H));
      ProgramSpec M = S;
      M.Extents[D] = S.Extents[D] - 1;
      pushWithPickRetunes(Out, std::move(M));
    }
  }

  // Smaller window / step / pads.
  if (S.WinSize > 1) {
    ProgramSpec C = S;
    --C.WinSize;
    C.WinStep = std::min(C.WinStep, C.WinSize);
    pushWithPickRetunes(Out, std::move(C));
  }
  if (S.WinStep > 1) {
    ProgramSpec C = S;
    --C.WinStep;
    pushWithPickRetunes(Out, std::move(C));
  }
  if (S.PadL > 0) {
    ProgramSpec C = S;
    --C.PadL;
    pushWithPickRetunes(Out, std::move(C));
  }
  if (S.PadR > 0) {
    ProgramSpec C = S;
    --C.PadR;
    pushWithPickRetunes(Out, std::move(C));
  }
  for (std::size_t I = 0; I != S.Layout.size(); ++I) {
    if (S.Layout[I].K == LayoutOp::Kind::Pad && S.Layout[I].A > 0) {
      ProgramSpec C = S;
      --C.Layout[I].A;
      pushWithPickRetunes(Out, std::move(C));
    }
    if (S.Layout[I].K == LayoutOp::Kind::Pad && S.Layout[I].B > 0) {
      ProgramSpec C = S;
      --C.Layout[I].B;
      pushWithPickRetunes(Out, std::move(C));
    }
  }

  // Simplify boundaries to clamp.
  for (std::size_t D = 0; D != S.PerDimBdy.size(); ++D) {
    if (S.PerDimBdy[D].K != Boundary::Kind::Clamp) {
      ProgramSpec C = S;
      C.PerDimBdy[D] = Boundary::clamp();
      pushWithPickRetunes(Out, std::move(C));
    }
  }
  for (std::size_t I = 0; I != S.Layout.size(); ++I) {
    if (S.Layout[I].K == LayoutOp::Kind::Pad &&
        S.Layout[I].Bdy.K != Boundary::Kind::Clamp) {
      ProgramSpec C = S;
      C.Layout[I].Bdy = Boundary::clamp();
      pushWithPickRetunes(Out, std::move(C));
    }
  }

  // Smaller rewrite-pick values (they index into the enumerated legal
  // steps, so small values make the replayed choice obvious).
  for (std::size_t I = 0; I != S.RewritePicks.size(); ++I) {
    for (std::uint32_t V : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
      if (V < S.RewritePicks[I]) {
        ProgramSpec C = S;
        C.RewritePicks[I] = V;
        Out.push_back(C);
      }
    }
  }

  return Out;
}

} // namespace

ProgramSpec lift::fuzz::shrinkSpec(const ProgramSpec &Failing,
                                   const DiffOptions &O) {
  ProgramSpec Best = Failing;
  std::vector<std::int64_t> BestM = measure(Best);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const ProgramSpec &C : proposals(Best)) {
      std::vector<std::int64_t> CM = measure(C);
      if (!(CM < BestM))
        continue;
      if (runDifferential(C, O).Status != DiffStatus::Mismatch)
        continue;
      Best = C;
      BestM = std::move(CM);
      Progress = true;
      break;
    }
  }
  return Best;
}
