//===- Fuzzer.h - Differential fuzzing of the stencil pipeline -*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven differential fuzzer for the whole
/// compilation pipeline. Each seed expands into a random *well-typed*
/// stencil program (1D/2D/3D compositions of map, zip, slide, pad with
/// all four boundary kinds, split/join, transpose and reduce, with
/// sizes drawn to hit divisibility edge cases) which is then executed
/// through independent oracles:
///
///   (a) the reference interpreter,
///   (b) random legal rewrite sequences re-interpreted,
///   (c) lowering -> the sequential NDRange simulator,
///   (d) the parallel simulator at several job counts,
///   (e) tiled lowering through both simulator engines when it fits,
///   (f) optionally (DiffOptions::Native) the native executor: the
///       kernel emitted as C, compiled with the host compiler,
///       dlopen()ed and run for real,
///
/// asserting bit-identical outputs everywhere and bit-identical
/// execution counters between the two simulator engines. A mismatch is
/// shrunk to a minimal reproducer by a greedy spec-level shrinker and
/// written out as a replayable artifact. This is the correctness
/// backstop behind the paper's claim that every rewrite and lowering
/// is semantics-preserving.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_FUZZ_FUZZER_H
#define LIFT_FUZZ_FUZZER_H

#include "interp/Interpreter.h"
#include "ir/Expr.h"

#include <optional>
#include <string>
#include <vector>

namespace lift {
namespace rewrite {
struct Rule;
}
namespace fuzz {

//===----------------------------------------------------------------------===//
// Program specifications
//===----------------------------------------------------------------------===//

/// The overall shape of a generated program.
enum class Template {
  Pointwise,    ///< mapNd(scale, layout(A))
  Stencil,      ///< mapNd(reduceWindow, slideNd(padNd(layout(A))))
  ZipPointwise, ///< mapNd(add . gets, zipNd(layout(A), B))
  ZipStencil,   ///< mapNd over zipNd of two same-geometry neighborhoods
};

/// One data-layout operation applied to an input before the template
/// consumes it. All but Pad are identities on the value.
struct LayoutOp {
  enum class Kind {
    Pad,          ///< pad(A, B, Bdy, x) on the outermost dimension
    SplitJoin,    ///< join(split(A, x)); requires A | outer length
    SlideJoin,    ///< join(slide(A, A, x)); requires A | outer length
    TransposePair ///< transpose(transpose(x)); 2D+ only
  };
  Kind K = Kind::Pad;
  std::int64_t A = 0, B = 0;
  ir::Boundary Bdy = ir::Boundary::clamp();
};

/// A complete, replayable description of one fuzz case: the program
/// shape, the input sizes/boundaries, and which random rewrites to
/// apply. Everything the differential checker does is a deterministic
/// function of this struct.
struct ProgramSpec {
  std::uint64_t Seed = 0; ///< sub-seed this spec was generated from
  unsigned Dims = 1;
  std::vector<std::int64_t> Extents; ///< per dimension, outermost first
  bool SymbolicOuter = false; ///< bind the outermost extent at runtime
  Template Tmpl = Template::Stencil;
  unsigned NumInputs = 1;
  // Stencil window, uniform across dimensions (slideNd's shape).
  std::int64_t WinSize = 3, WinStep = 1;
  std::int64_t PadL = 1, PadR = 1;
  std::vector<ir::Boundary> PerDimBdy; ///< boundary kind per dimension
  bool UseMax = false; ///< max-reduce windows instead of sum
  std::vector<LayoutOp> Layout; ///< applied to input 0
  std::vector<std::uint32_t> RewritePicks; ///< oracle (b) choices
};

/// Renders a spec as stable, human-readable key/value lines (used in
/// artifacts and test diagnostics).
std::string describeSpec(const ProgramSpec &S);

/// Expands \p SubSeed deterministically into a well-typed spec. Equal
/// seeds yield equal specs across runs and platforms that share the
/// standard mt19937_64 distributions.
ProgramSpec generateSpec(std::uint64_t SubSeed);

/// A spec realized as an executable case: the typed program, concrete
/// size bindings, and per-input data as both interpreter values and
/// flat simulator buffers (identical contents).
struct BuiltProgram {
  ir::Program P;
  interp::SizeEnv Sizes;
  std::vector<std::vector<float>> Flat;
  std::vector<interp::Value> Vals;
};

/// Materializes a spec; nullopt when the spec is not realizable (the
/// shrinker proposes such specs; the generator never does).
std::optional<BuiltProgram> buildProgram(const ProgramSpec &S);

/// Number of non-UserFunCall primitive calls in the program body — the
/// "primitive count" quoted by reproducer-size guarantees (map + pad +
/// pad is 3 primitives regardless of the lambdas' scalar arithmetic).
unsigned countPrims(const ir::Program &P);

//===----------------------------------------------------------------------===//
// Differential checking
//===----------------------------------------------------------------------===//

/// The rewrite rules oracle (b) samples from. With \p InjectBug the
/// pad-merge rule is replaced by a deliberately wrong variant that
/// swaps the side contributions (a type-preserving sign flip); the
/// harness's self-test asserts the fuzzer catches and shrinks it.
std::vector<rewrite::Rule> fuzzRuleSet(bool InjectBug = false);

struct DiffOptions {
  unsigned ParJobs = 8;   ///< job count for the parallel-engine oracle
  bool TryTiled = true;   ///< add a tiled-lowering oracle when it fits
  bool InjectBug = false; ///< self-test mode: use the broken rule set
  /// Oracle (f): compile every lowered kernel to C with the host
  /// compiler (native/NativeRunner.h) and require its output to be
  /// bit-identical to the interpreter. Mismatch reports embed the
  /// emitted C source. Callers should gate on probeToolchain().
  bool Native = false;
  unsigned NativeThreads = 2; ///< OpenMP threads for the native oracle
  /// Native oracle variant: run every native kernel through the
  /// interior/edge specializer (analysis/InteriorSpec.h) first; the
  /// specialized kernel must still be bit-identical to the
  /// interpreter. Exercises the boundary-elimination transform on
  /// every generated program.
  bool Specialize = false;
  /// Statically bounds-check every lowered kernel against the spec's
  /// concrete sizes (analysis/RangeAnalysis.h). Accesses the prover
  /// cannot discharge are *counted* (fuzz.bounds.unproven), not
  /// failed: the differential oracles already verify the runtime
  /// behavior, so this tracks prover precision, not correctness.
  bool CheckBounds = false;
};

enum class DiffStatus {
  Ok,        ///< every oracle agreed bit-identically
  Discarded, ///< spec not realizable / program partial; nothing checked
  Mismatch   ///< two oracles disagreed: a real (or injected) bug
};

struct DiffResult {
  DiffStatus Status = DiffStatus::Ok;
  /// Discard reason, or a full mismatch report (oracle name, first
  /// divergent element, both outputs).
  std::string Detail;
  /// Rewrite steps statically refuted against the concrete sizes
  /// (splitJoin divisibility) and skipped — the rest of the sequence
  /// still ran, unlike a discard, which checks nothing.
  unsigned RewriteSkips = 0;
  /// DiffOptions::CheckBounds only: kernel accesses the static bounds
  /// prover could not discharge at the concrete sizes.
  unsigned BoundsUnproven = 0;
  /// TryTiled only: 1 when the tiled oracle ran with a tile that does
  /// not divide some output extent (a clamped remainder tile was
  /// exercised end to end).
  unsigned TiledRemainder = 0;
  /// TryTiled only: 1 when a tile the picker judged legal was refused
  /// by the tiled lowering as tile-indivisible. Always a bug in either
  /// the picker or the lowering; campaigns are expected to report 0.
  unsigned TiledIndivisible = 0;
};

/// Runs one spec through all oracles. Deterministic: equal specs give
/// equal results.
DiffResult runDifferential(const ProgramSpec &S, const DiffOptions &O);

//===----------------------------------------------------------------------===//
// Shrinking and campaigns
//===----------------------------------------------------------------------===//

/// Greedily minimizes a failing spec: drops rewrites and layout ops,
/// switches templates toward Pointwise (folding the stencil pad into
/// the layout chain so pad-related failures survive), reduces
/// dimensions, extents, windows and boundary variety — accepting each
/// step only if the candidate still mismatches under \p O. Returns the
/// smallest still-failing spec found.
ProgramSpec shrinkSpec(const ProgramSpec &Failing, const DiffOptions &O);

struct CampaignFailure {
  ProgramSpec Original;
  ProgramSpec Minimal;
  unsigned MinimalPrims = 0; ///< countPrims of the shrunk program
  std::string Detail;        ///< mismatch report of the original
  std::string ArtifactPath;  ///< written file, when an artifact dir is set
};

struct CampaignStats {
  unsigned Ok = 0;
  unsigned Discarded = 0;
  unsigned Mismatches = 0;
  /// Total rewrite steps skipped after static divisibility refutation
  /// (the programs themselves still completed, counted under Ok).
  unsigned RewriteSkips = 0;
  /// Total statically-unproven kernel accesses (CheckBounds only).
  unsigned BoundsUnproven = 0;
  /// Specs whose tiled oracle exercised a clamped remainder tile.
  unsigned TiledRemainder = 0;
  /// Specs whose tiled lowering refused a tile the picker judged
  /// legal (tile-indivisible). Expected to be 0 in every campaign.
  unsigned TiledIndivisible = 0;
  std::vector<CampaignFailure> Failures;
};

struct CampaignOptions {
  DiffOptions Diff;
  bool Shrink = true;
  std::string ArtifactDir; ///< empty: do not write artifacts
};

/// Runs \p Count specs derived from \p Seed (one splitmix64 sub-seed
/// each), shrinking and writing one artifact per mismatch.
CampaignStats runCampaign(std::uint64_t Seed, unsigned Count,
                          const CampaignOptions &O);

} // namespace fuzz
} // namespace lift

#endif // LIFT_FUZZ_FUZZER_H
