//===- Differential.cpp - Cross-oracle checking and campaigns -------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "analysis/InteriorSpec.h"
#include "analysis/RangeAnalysis.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "ir/TypeInference.h"
#include "native/NativeRunner.h"
#include "obs/Metrics.h"
#include "rewrite/Exploration.h"
#include "rewrite/Lowering.h"

#include <cstdio>
#include <cstring>
#include <sstream>

using namespace lift;
using namespace lift::ir;
using namespace lift::fuzz;
using namespace lift::rewrite;
using namespace lift::codegen;

namespace {

/// Bitwise float equality: stricter than ==, so -0.0f vs 0.0f or NaN
/// payload drift between oracles is still a reportable divergence.
bool bitEqual(float A, float B) {
  std::uint32_t UA, UB;
  std::memcpy(&UA, &A, sizeof(UA));
  std::memcpy(&UB, &B, sizeof(UB));
  return UA == UB;
}

/// First index where the outputs differ, or -1 when bit-identical
/// (including equal lengths).
std::int64_t firstDivergence(const std::vector<float> &A,
                             const std::vector<float> &B) {
  if (A.size() != B.size())
    return std::int64_t(std::min(A.size(), B.size()));
  for (std::size_t I = 0; I != A.size(); ++I)
    if (!bitEqual(A[I], B[I]))
      return std::int64_t(I);
  return -1;
}

std::string renderOutputs(const std::vector<float> &V, std::size_t Around) {
  std::ostringstream OS;
  std::size_t Begin = Around >= 4 ? Around - 4 : 0;
  std::size_t End = std::min(V.size(), Around + 5);
  if (Begin > 0)
    OS << "... ";
  for (std::size_t I = Begin; I != End; ++I)
    OS << "[" << I << "]=" << V[I] << " ";
  if (End < V.size())
    OS << "...";
  return OS.str();
}

/// A full mismatch report for one diverging oracle pair.
std::string mismatchReport(const std::string &Oracle,
                           const std::vector<float> &Expected,
                           const std::vector<float> &Got) {
  std::int64_t At = firstDivergence(Expected, Got);
  std::ostringstream OS;
  OS << "oracle mismatch: " << Oracle << "\n";
  OS << "expected " << Expected.size() << " elements, got " << Got.size()
     << "; first divergence at index " << At << "\n";
  std::size_t Around = At >= 0 ? std::size_t(At) : 0;
  OS << "reference: " << renderOutputs(Expected, Around) << "\n";
  OS << "observed:  " << renderOutputs(Got, Around) << "\n";
  return OS.str();
}

bool countersEqual(const ocl::ExecCounters &A, const ocl::ExecCounters &B) {
  return A.GlobalLoads == B.GlobalLoads && A.GlobalStores == B.GlobalStores &&
         A.GlobalLoadLineMisses == B.GlobalLoadLineMisses &&
         A.LocalLoads == B.LocalLoads && A.LocalStores == B.LocalStores &&
         A.PrivateAccesses == B.PrivateAccesses && A.Flops == B.Flops &&
         A.UserFunCalls == B.UserFunCalls &&
         A.LoopIterations == B.LoopIterations && A.Barriers == B.Barriers &&
         A.SelectEvals == B.SelectEvals;
}

std::string counterReport(const ocl::ExecCounters &A,
                          const ocl::ExecCounters &B) {
  std::ostringstream OS;
  auto Row = [&](const char *Name, std::uint64_t X, std::uint64_t Y) {
    if (X != Y)
      OS << "  " << Name << ": " << X << " vs " << Y << "\n";
  };
  OS << "counter divergence:\n";
  Row("GlobalLoads", A.GlobalLoads, B.GlobalLoads);
  Row("GlobalStores", A.GlobalStores, B.GlobalStores);
  Row("GlobalLoadLineMisses", A.GlobalLoadLineMisses,
      B.GlobalLoadLineMisses);
  Row("LocalLoads", A.LocalLoads, B.LocalLoads);
  Row("LocalStores", A.LocalStores, B.LocalStores);
  Row("PrivateAccesses", A.PrivateAccesses, B.PrivateAccesses);
  Row("Flops", A.Flops, B.Flops);
  Row("UserFunCalls", A.UserFunCalls, B.UserFunCalls);
  Row("LoopIterations", A.LoopIterations, B.LoopIterations);
  Row("Barriers", A.Barriers, B.Barriers);
  Row("SelectEvals", A.SelectEvals, B.SelectEvals);
  return OS.str();
}

/// The deliberately broken pad-merge for the harness self-test:
/// structurally identical to padPadMergeRule but the left/right
/// contributions of the two pads are crossed. Total length (and thus
/// the program type) is preserved, so only value-level differential
/// checking can catch it.
Rule buggyPadMergeRule() {
  Rule R;
  R.Name = "padPadMerge(buggy)";
  R.Apply = [](const ExprPtr &E) -> ExprPtr {
    if (E->getKind() != Expr::Kind::Call)
      return nullptr;
    const auto *Outer = dynCast<CallExpr>(E);
    if (Outer->getPrim() != Prim::Pad)
      return nullptr;
    const ExprPtr &InnerE = Outer->getArgs()[0];
    if (InnerE->getKind() != Expr::Kind::Call)
      return nullptr;
    const auto *Inner = dynCast<CallExpr>(InnerE);
    if (Inner->getPrim() != Prim::Pad)
      return nullptr;
    bool SameKind = Outer->Bdy.K == Inner->Bdy.K;
    bool Mergeable =
        SameKind && (Outer->Bdy.K == Boundary::Kind::Clamp ||
                     (Outer->Bdy.K == Boundary::Kind::Constant &&
                      Outer->Bdy.ConstVal == Inner->Bdy.ConstVal));
    if (!Mergeable)
      return nullptr;
    // BUG (intentional): swaps the inner pad's sides in the merge.
    return pad(add(Outer->PadL, Inner->PadR), add(Outer->PadR, Inner->PadL),
               Outer->Bdy, Inner->getArgs()[0]);
  };
  return R;
}

/// Per-dimension output extents at the concrete sizes; the layout
/// chain only affects the outermost dimension and only Pad ops change
/// its length. Empty when tiling is not applicable to the spec.
std::vector<std::int64_t> tiledOutputExtents(const ProgramSpec &S) {
  if (S.Tmpl != Template::Stencil && S.Tmpl != Template::ZipStencil)
    return {};
  if (S.WinStep != 1)
    return {};
  std::vector<std::int64_t> Out;
  for (unsigned D = 0; D != S.Dims; ++D) {
    std::int64_t Len = S.Extents[D];
    if (D == 0)
      for (const LayoutOp &Op : S.Layout)
        if (Op.K == LayoutOp::Kind::Pad)
          Len += Op.A + Op.B;
    Len += S.PadL + S.PadR;
    std::int64_t OutD = Len - S.WinSize + 1;
    if (OutD < 1)
      return {};
    Out.push_back(OutD);
  }
  return Out;
}

/// Picks the tile size for the tiled oracle: the largest v <= 8 that
/// *fits* every output dimension (v <= extent). Exact fits are no
/// longer required — the clamped remainder-tile lowering handles any
/// fitting v — so the picker prefers a v that leaves a remainder in
/// some dimension, exercising the tail-tile path whenever the spec's
/// extents allow it. Returns 0 when tiling is not applicable.
std::int64_t pickTileOutputs(const std::vector<std::int64_t> &Out) {
  if (Out.empty())
    return 0;
  std::int64_t Fallback = 0;
  for (std::int64_t V = 8; V >= 2; --V) {
    bool Fits = true;
    bool Remainder = false;
    for (std::int64_t O : Out) {
      Fits &= V <= O;
      Remainder |= O % V != 0;
    }
    if (!Fits)
      continue;
    if (Remainder)
      return V;
    if (!Fallback)
      Fallback = V;
  }
  return Fallback;
}

DiffResult discarded(std::string Why) {
  DiffResult R;
  R.Status = DiffStatus::Discarded;
  R.Detail = std::move(Why);
  return R;
}

DiffResult mismatch(std::string Report) {
  DiffResult R;
  R.Status = DiffStatus::Mismatch;
  R.Detail = std::move(Report);
  return R;
}

/// Oracle (f): compiles the lowered kernel to C with the host
/// compiler (through the shared KernelCache, so a campaign compiles
/// each distinct lowering once) and requires the native output to be
/// bit-identical to the interpreter's. Mismatch and compile-failure
/// reports embed the emitted C source so shrunk artifacts are
/// self-contained. Returns nullopt when the oracle agrees.
std::optional<DiffResult> checkNative(const Program &Low, const Compiled &C,
                                      const std::string &Label,
                                      const std::vector<float> &RefFlat,
                                      const BuiltProgram &B,
                                      const DiffOptions &O) {
  const std::string L =
      O.Specialize ? Label + " [interior-specialized]" : Label;
  try {
    Compiled NC = C;
    std::size_t Hash = ir::structuralHash(Low);
    if (O.Specialize) {
      // Interior/edge-specialized kernels share the cache with the
      // generic form of the same lowering; perturb the hash so the two
      // binaries stay distinct (source comparison resolves collisions).
      NC.K = analysis::specializeInterior(C.K);
      Hash ^= 0xA5A5A5A5A5A5A5A5ULL;
    }
    native::NativeKernelPtr Kern =
        native::KernelCache::global().getOrCompile(Hash, NC.K);
    native::NativeRunResult NR =
        native::runNative(NC, *Kern, B.Flat, B.Sizes, O.NativeThreads);
    if (firstDivergence(RefFlat, NR.Output) != -1)
      return mismatch(mismatchReport(L, RefFlat, NR.Output) +
                      "emitted C source:\n" + Kern->source());
  } catch (const native::CompileFailedError &Ex) {
    // The emitter produced C the host compiler rejects: an emitter
    // bug, reported (and shrunk) like any other oracle failure.
    return mismatch("oracle mismatch: " + L + "\nnative compile failed: " +
                    Ex.what() + "\nemitted C source:\n" + Ex.Source);
  } catch (const native::NativeError &Ex) {
    return mismatch("oracle mismatch: " + L +
                    "\nnative backend failed: " + Ex.what());
  }
  return std::nullopt;
}

/// splitmix64: decorrelates per-program sub-seeds from the campaign
/// seed so consecutive campaigns do not share prefixes.
std::uint64_t splitmix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

std::vector<Rule> lift::fuzz::fuzzRuleSet(bool InjectBug) {
  std::vector<Rule> Rules = stencilExplorationRules();
  Rules.push_back(transposeTransposeRule());
  if (InjectBug)
    for (Rule &R : Rules)
      if (R.Name == "padPadMerge")
        R = buggyPadMergeRule();
  return Rules;
}

DiffResult lift::fuzz::runDifferential(const ProgramSpec &S,
                                       const DiffOptions &O) {
  std::optional<BuiltProgram> B = buildProgram(S);
  if (!B)
    return discarded("spec not realizable");

  // (a) Reference interpreter.
  std::string Err;
  std::optional<interp::Value> Ref =
      interp::tryEvalProgram(B->P, B->Vals, B->Sizes, &Err);
  if (!Ref)
    return discarded("interpreter rejected the program: " + Err);
  std::vector<float> RefFlat;
  interp::flattenValue(*Ref, RefFlat);

  // (b) Random legal rewrite sequence, re-interpreted after each step.
  std::vector<Rule> Rules = fuzzRuleSet(O.InjectBug);
  Program Cur = B->P;
  std::vector<std::string> Applied;
  unsigned RewriteSkips = 0;
  unsigned BoundsUnproven = 0;
  unsigned TiledRemainder = 0;
  unsigned TiledIndivisible = 0;
  // Attaches the telemetry counts to whatever result the oracles
  // produce.
  auto Finish = [&](DiffResult R) {
    R.RewriteSkips = RewriteSkips;
    R.BoundsUnproven = BoundsUnproven;
    R.TiledRemainder = TiledRemainder;
    R.TiledIndivisible = TiledIndivisible;
    return R;
  };
  for (std::uint32_t Pick : S.RewritePicks) {
    std::vector<ApplicableRewrite> App =
        enumerateApplicableRewrites(Cur, Rules);
    if (App.empty())
      break;
    ApplicableRewrite Step = App[Pick % App.size()];
    Program Next = applyRewrite(Cur, Rules, Step);
    // Static refutation against the concrete sizes: a splitJoin whose
    // factor cannot divide its input length would only make the
    // program partial. Skipping just this step (instead of discarding
    // the whole case) keeps the remaining oracles running.
    if (analysis::refuteSplitDivisibility(Next, B->Sizes)) {
      ++RewriteSkips;
      obs::Registry::global().counter("fuzz.rewrite.skip.divisibility").inc();
      continue;
    }
    Cur = std::move(Next);
    Applied.push_back(Rules[Step.RuleIndex].Name);

    std::optional<interp::Value> Got =
        interp::tryEvalProgram(Cur, B->Vals, B->Sizes, &Err);
    if (!Got) {
      // A rule made the program partial at these concrete sizes (e.g.
      // splitJoin on a symbolic length that is not divisible). The
      // rules are only claimed to preserve semantics where both sides
      // are defined, so this is a discard, not a bug.
      std::string Names;
      for (const std::string &N : Applied)
        Names += (Names.empty() ? "" : " ") + N;
      return Finish(discarded("rewrite sequence [" + Names +
                              "] made the program partial: " + Err));
    }
    std::vector<float> GotFlat;
    interp::flattenValue(*Got, GotFlat);
    if (firstDivergence(RefFlat, GotFlat) != -1) {
      std::string Names;
      for (const std::string &N : Applied)
        Names += (Names.empty() ? "" : " ") + N;
      return Finish(mismatch(mismatchReport(
          "rewrite sequence [" + Names + "]", RefFlat, GotFlat)));
    }
  }

  // (c) Untiled lowering on the sequential simulator engine.
  std::string WhyNot;
  Program Low = lowerStencil(B->P, LoweringOptions(), &WhyNot);
  if (!Low)
    return Finish(discarded("untiled lowering does not apply: " + WhyNot));
  Compiled C = compileProgram(Low, "fuzz");
  RunResult Seq = runCompiled(C, B->Flat, B->Sizes, ocl::CacheConfig(), 1);
  if (firstDivergence(RefFlat, Seq.Output) != -1)
    return Finish(mismatch(
        mismatchReport("sequential simulator vs interpreter", RefFlat,
                       Seq.Output)));

  // (d) The parallel engine must be bit-identical to the sequential
  // one in outputs *and* counters, at any job count.
  RunResult Par =
      runCompiled(C, B->Flat, B->Sizes, ocl::CacheConfig(), O.ParJobs);
  if (firstDivergence(Seq.Output, Par.Output) != -1)
    return Finish(mismatch(mismatchReport(
        "parallel simulator (jobs=" + std::to_string(O.ParJobs) +
            ") vs sequential",
        Seq.Output, Par.Output)));
  if (!countersEqual(Seq.Counters, Par.Counters))
    return Finish(mismatch(
        "oracle mismatch: parallel simulator (jobs=" +
        std::to_string(O.ParJobs) + ") counter determinism\n" +
        counterReport(Seq.Counters, Par.Counters)));

  // (f) Native executor: the dlopen()ed host-compiled C of the same
  // kernel must be bit-identical to the interpreter too.
  // Static bounds check of the lowered kernel at the concrete sizes.
  // Unproven accesses are prover-precision telemetry, not failures:
  // the oracles above already verified the runtime behavior.
  if (O.CheckBounds) {
    auto V = analysis::checkKernelBounds(C.K, &B->Sizes);
    BoundsUnproven += unsigned(V.size());
    obs::Registry::global().counter("fuzz.bounds.unproven").inc(V.size());
  }

  if (O.Native)
    if (std::optional<DiffResult> NR = checkNative(
            Low, C, "native executor vs interpreter", RefFlat, *B, O))
      return Finish(*NR);

  // (e) Tiled lowering, whenever a tile fits (exact fit NOT required:
  // the clamped lowering handles remainder tails).
  if (O.TryTiled) {
    std::vector<std::int64_t> OutExt = tiledOutputExtents(S);
    if (std::int64_t V = pickTileOutputs(OutExt)) {
      LoweringOptions TO;
      TO.Tile = true;
      TO.TileOutputs = V;
      bool Remainder = false;
      for (std::int64_t OD : OutExt)
        Remainder |= OD % V != 0;
      std::string TWhy;
      Program TLow = lowerStencil(B->P, TO, &TWhy);
      if (!TLow && TWhy.find("tile-indivisible") != std::string::npos) {
        // The picker judged this tile legal; a tile-indivisibility
        // refusal here means the lowering lost a case the clamped
        // scheme claims to support. Counted separately so campaigns
        // can assert it never happens.
        TiledIndivisible = 1;
        obs::Registry::global().counter("fuzz.tiled.indivisible").inc();
      }
      if (TLow) {
        if (Remainder) {
          TiledRemainder = 1;
          obs::Registry::global().counter("fuzz.tiled.remainder").inc();
        }
        Compiled TC = compileProgram(TLow, "fuzz_tiled");
        RunResult TSeq =
            runCompiled(TC, B->Flat, B->Sizes, ocl::CacheConfig(), 1);
        if (firstDivergence(RefFlat, TSeq.Output) != -1)
          return Finish(mismatch(mismatchReport(
              "tiled lowering (v=" + std::to_string(V) +
                  ") vs interpreter",
              RefFlat, TSeq.Output)));
        RunResult TPar =
            runCompiled(TC, B->Flat, B->Sizes, ocl::CacheConfig(),
                        O.ParJobs);
        if (firstDivergence(TSeq.Output, TPar.Output) != -1 ||
            !countersEqual(TSeq.Counters, TPar.Counters))
          return Finish(mismatch(
              "oracle mismatch: tiled parallel simulator determinism\n" +
              counterReport(TSeq.Counters, TPar.Counters)));
        if (O.Native)
          if (std::optional<DiffResult> NR = checkNative(
                  TLow, TC,
                  "tiled native executor (v=" + std::to_string(V) +
                      ") vs interpreter",
                  RefFlat, *B, O))
            return Finish(*NR);
      }
    }
  }

  DiffResult R;
  R.Status = DiffStatus::Ok;
  return Finish(R);
}

CampaignStats lift::fuzz::runCampaign(std::uint64_t Seed, unsigned Count,
                                      const CampaignOptions &O) {
  CampaignStats Stats;
  for (unsigned I = 0; I != Count; ++I) {
    std::uint64_t SubSeed = splitmix64(Seed + I);
    ProgramSpec S = generateSpec(SubSeed);
    DiffResult R = runDifferential(S, O.Diff);
    Stats.RewriteSkips += R.RewriteSkips;
    Stats.BoundsUnproven += R.BoundsUnproven;
    Stats.TiledRemainder += R.TiledRemainder;
    Stats.TiledIndivisible += R.TiledIndivisible;
    switch (R.Status) {
    case DiffStatus::Ok:
      ++Stats.Ok;
      break;
    case DiffStatus::Discarded:
      ++Stats.Discarded;
      break;
    case DiffStatus::Mismatch: {
      ++Stats.Mismatches;
      CampaignFailure F;
      F.Original = S;
      F.Detail = R.Detail;
      F.Minimal = O.Shrink ? shrinkSpec(S, O.Diff) : S;
      if (std::optional<BuiltProgram> MB = buildProgram(F.Minimal))
        F.MinimalPrims = countPrims(MB->P);
      if (!O.ArtifactDir.empty()) {
        std::string Path = O.ArtifactDir + "/liftfuzz-" +
                           std::to_string(SubSeed) + ".txt";
        std::ostringstream OS;
        OS << "liftfuzz mismatch artifact\n";
        OS << "campaign-seed: " << Seed << "\n";
        OS << "replay: liftfuzz --seed " << Seed << " --count " << Count
           << (O.Diff.InjectBug ? " --self-test" : "") << "\n\n";
        OS << "== failing spec (sub-seed " << SubSeed << ") ==\n"
           << describeSpec(S);
        if (std::optional<BuiltProgram> OB = buildProgram(S)) {
          OS << "program: " << toString(OB->P) << "\n";
          OS << "structural-hash (per-process): 0x" << std::hex
             << structuralHash(OB->P->getBody()) << std::dec << "\n";
        }
        OS << "\n== divergence ==\n" << R.Detail << "\n";
        OS << "== minimal reproducer ==\n" << describeSpec(F.Minimal);
        if (std::optional<BuiltProgram> MB = buildProgram(F.Minimal)) {
          OS << "program: " << toString(MB->P) << "\n";
          OS << "primitives: " << countPrims(MB->P) << "\n";
        }
        if (std::FILE *FP = std::fopen(Path.c_str(), "w")) {
          std::string Text = OS.str();
          std::fwrite(Text.data(), 1, Text.size(), FP);
          std::fclose(FP);
          F.ArtifactPath = Path;
        }
      }
      Stats.Failures.push_back(std::move(F));
      break;
    }
    }
  }
  return Stats;
}
