//===- Obs.cpp - Observability session for drivers -------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "obs/Calibration.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace lift;
using namespace lift::obs;

bool lift::obs::parseObsFlag(const char *Arg, ObsOptions &O) {
  if (std::strncmp(Arg, "--trace=", 8) == 0) {
    O.TracePath = Arg + 8;
    return true;
  }
  if (std::strncmp(Arg, "--metrics=", 10) == 0) {
    O.MetricsPath = Arg + 10;
    return true;
  }
  if (std::strncmp(Arg, "--calibration=", 14) == 0) {
    O.CalibrationPath = Arg + 14;
    return true;
  }
  if (std::strcmp(Arg, "--obs-report") == 0) {
    O.Report = true;
    return true;
  }
  return false;
}

ObsOptions lift::obs::parseObsOptions(int Argc, char **Argv) {
  ObsOptions O;
  for (int I = 1; I < Argc; ++I)
    parseObsFlag(Argv[I], O);
  return O;
}

ObsSession::ObsSession(ObsOptions Opts) : O(std::move(Opts)) {
  if (!O.TracePath.empty())
    Tracer::global().enable();
  if (O.any())
    FlightRecorder::global().setEnabled(true);
}

ObsSession::~ObsSession() {
  if (!Finished)
    finish();
}

std::string lift::obs::metricsDocumentJson() {
  std::string Out = "{\n\"metrics\": ";
  Out += Registry::global().dumpJson();
  Out += ",\n\"tunes\": ";
  Out += FlightRecorder::global().exportJsonArray();
  Out += "\n}\n";
  return Out;
}

int ObsSession::finish() {
  if (Finished)
    return 0;
  Finished = true;
  int Rc = 0;

  if (!O.TracePath.empty()) {
    Tracer::global().disable();
    if (!Tracer::global().writeChromeJson(O.TracePath))
      Rc = 1;
    else
      std::fprintf(stderr, "obs: wrote trace to %s (%zu events)\n",
                   O.TracePath.c_str(), Tracer::global().eventCount());
  }

  if (!O.MetricsPath.empty()) {
    std::ofstream OS(O.MetricsPath);
    if (!OS) {
      std::fprintf(stderr, "obs: cannot open metrics file %s for writing\n",
                   O.MetricsPath.c_str());
      Rc = 1;
    } else {
      OS << metricsDocumentJson();
      if (!OS)
        Rc = 1;
      else
        std::fprintf(stderr, "obs: wrote metrics to %s\n",
                     O.MetricsPath.c_str());
    }
  }

  if (!O.CalibrationPath.empty()) {
    std::ofstream OS(O.CalibrationPath);
    if (!OS) {
      std::fprintf(stderr,
                   "obs: cannot open calibration file %s for writing\n",
                   O.CalibrationPath.c_str());
      Rc = 1;
    } else {
      OS << calibrationDocumentJson();
      if (!OS)
        Rc = 1;
      else
        std::fprintf(stderr, "obs: wrote calibration to %s\n",
                     O.CalibrationPath.c_str());
    }
  }

  if (O.Report) {
    std::printf("\n== metrics ==\n%s",
                Registry::global().dumpText().c_str());
    std::printf("\n== tuner flight recorder ==\n%s",
                FlightRecorder::global().summary().c_str());
  }
  return Rc;
}
