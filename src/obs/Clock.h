//===- Clock.h - Deterministic monotonic clock seam ------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single monotonic time source for the observability subsystem and
/// the native runner. Everything that timestamps (the span tracer, the
/// native wall-clock measurement loop, the machine-peak probe) reads
/// time through monotonicNowNs(), which normally forwards to the steady
/// clock but can be redirected to a test-controlled function. That seam
/// is what makes timing-dependent unit tests flake-free: a fake clock
/// that advances by a fixed step per query turns "the fastest repeat"
/// and "span duration" into exact, asserted numbers.
///
/// The seam is a single relaxed atomic function-pointer load, so the
/// production path costs the same as calling the clock directly (see
/// bench_obs_overhead's BM_ClockSeamNow vs BM_ChronoSteadyNow).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_CLOCK_H
#define LIFT_OBS_CLOCK_H

#include <cstdint>

namespace lift {
namespace obs {

/// Test hook signature: returns nanoseconds on some monotonic scale.
using ClockFn = std::uint64_t (*)();

/// Nanoseconds from the current clock source (steady clock unless a
/// test installed an override). Only differences are meaningful.
std::uint64_t monotonicNowNs();

/// Redirects monotonicNowNs() to \p Fn; nullptr restores the real
/// clock. Test-only; must not race with concurrent timing.
void setClockForTest(ClockFn Fn);

/// RAII fake clock for tests: installs a deterministic source that
/// starts at \p StartNs and advances by \p StepNs on every query, so
/// the k-th call returns StartNs + k*StepNs exactly. advance() injects
/// extra elapsed time between queries. Restores the real clock on
/// destruction. One instance at a time (enforced).
class ScopedFakeClock {
public:
  explicit ScopedFakeClock(std::uint64_t StartNs = 0,
                           std::uint64_t StepNs = 1000);
  ~ScopedFakeClock();

  ScopedFakeClock(const ScopedFakeClock &) = delete;
  ScopedFakeClock &operator=(const ScopedFakeClock &) = delete;

  /// Moves the fake time forward without a query.
  void advance(std::uint64_t Ns);

  /// The value the *next* query will return.
  std::uint64_t peek() const;
};

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_CLOCK_H
