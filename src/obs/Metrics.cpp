//===- Metrics.cpp - Named counters, gauges and histograms -----------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <cmath>
#include <cstdio>

using namespace lift;
using namespace lift::obs;

void Histogram::observe(double X) {
  std::lock_guard<std::mutex> Lock(M);
  if (Count == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++Count;
  Sum += X;
  int B = 0;
  if (X >= 1.0) {
    B = 1 + int(std::floor(std::log2(X)));
    if (B > 63)
      B = 63;
  }
  ++Buckets[B];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> Lock(M);
  Snapshot S;
  S.Count = Count;
  S.Sum = Sum;
  S.Min = Min;
  S.Max = Max;
  return S;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Count = 0;
  Sum = Min = Max = 0;
  for (std::uint64_t &B : Buckets)
    B = 0;
}

Registry &Registry::global() {
  // Leaked intentionally: metrics may be bumped from static teardown.
  static Registry *R = new Registry();
  return *R;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void Registry::addProvider(std::function<void(Registry &)> Fn) {
  std::lock_guard<std::mutex> Lock(M);
  Providers.push_back(std::move(Fn));
}

void Registry::runProviders() {
  // Copy under the lock, run outside it: providers call back into
  // gauge()/counter().
  std::vector<std::function<void(Registry &)>> Fns;
  {
    std::lock_guard<std::mutex> Lock(M);
    Fns = Providers;
  }
  for (const auto &Fn : Fns)
    Fn(*this);
}

std::map<std::string, std::uint64_t>
Registry::counterValues(const std::string &Prefix) {
  runProviders();
  std::lock_guard<std::mutex> Lock(M);
  std::map<std::string, std::uint64_t> Out;
  for (const auto &KV : Counters)
    if (KV.first.compare(0, Prefix.size(), Prefix) == 0)
      Out.emplace(KV.first, KV.second->value());
  return Out;
}

namespace {

std::string formatDouble(double V) {
  char Buf[40];
  if (std::isfinite(V) && V == std::floor(V) && std::abs(V) < 9.0e15)
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

std::string Registry::dumpText(const std::string &Prefix) {
  runProviders();
  std::lock_guard<std::mutex> Lock(M);
  auto Match = [&Prefix](const std::string &Name) {
    return Name.compare(0, Prefix.size(), Prefix) == 0;
  };
  std::string Out;
  char Line[256];
  for (const auto &KV : Counters) {
    if (!Match(KV.first))
      continue;
    std::snprintf(Line, sizeof(Line), "%-44s %llu\n", KV.first.c_str(),
                  (unsigned long long)KV.second->value());
    Out += Line;
  }
  for (const auto &KV : Gauges) {
    if (!Match(KV.first))
      continue;
    std::snprintf(Line, sizeof(Line), "%-44s %s\n", KV.first.c_str(),
                  formatDouble(KV.second->value()).c_str());
    Out += Line;
  }
  for (const auto &KV : Histograms) {
    if (!Match(KV.first))
      continue;
    Histogram::Snapshot S = KV.second->snapshot();
    std::snprintf(Line, sizeof(Line),
                  "%-44s count=%llu sum=%s min=%s max=%s\n",
                  KV.first.c_str(), (unsigned long long)S.Count,
                  formatDouble(S.Sum).c_str(), formatDouble(S.Min).c_str(),
                  formatDouble(S.Max).c_str());
    Out += Line;
  }
  return Out;
}

std::string Registry::dumpJson() {
  runProviders();
  std::lock_guard<std::mutex> Lock(M);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(KV.first) +
           "\":" + std::to_string(KV.second->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(KV.first) +
           "\":" + formatDouble(KV.second->value());
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &KV : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Histogram::Snapshot S = KV.second->snapshot();
    Out += '"' + json::escape(KV.first) + "\":{\"count\":" +
           std::to_string(S.Count) + ",\"sum\":" + formatDouble(S.Sum) +
           ",\"min\":" + formatDouble(S.Min) +
           ",\"max\":" + formatDouble(S.Max) + "}";
  }
  Out += "}}";
  return Out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &KV : Counters)
    KV.second->reset();
  for (auto &KV : Gauges)
    KV.second->reset();
  for (auto &KV : Histograms)
    KV.second->reset();
}

std::string lift::obs::formatCounts(
    const std::vector<std::pair<std::string, std::uint64_t>> &KVs) {
  std::string S;
  for (const auto &KV : KVs) {
    if (KV.second == 0)
      continue;
    if (!S.empty())
      S += ", ";
    S += KV.first;
    S += '=';
    S += std::to_string(KV.second);
  }
  return S.empty() ? "none" : S;
}
