//===- Profile.h - Per-region kernel profile record ------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result record of an in-kernel profiling run (the Devito-style
/// performance-introspection layer): one entry per instrumented
/// loop-nest region of an emitted native kernel, carrying the measured
/// region time next to statically derived work counts (bytes moved
/// to/from global memory and FLOPs, computed from the kernel AST by
/// codegen/AccessAnalysis). From those the record derives achieved
/// GB/s, GFLOP/s and arithmetic intensity, and — when machine peaks
/// from the STREAM-style probe (native/Peaks.h) are attached — the
/// roofline-limited fraction of peak each region reaches.
///
/// This header is deliberately free of kernel-AST dependencies: the
/// native backend fills the record in, while reporting, JSON round-trip
/// and trace-merging live here so tests can exercise them with
/// synthetic data and no toolchain.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_PROFILE_H
#define LIFT_OBS_PROFILE_H

#include "obs/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lift {
namespace obs {

/// One instrumented loop-nest region of a profiled kernel.
struct ProfileRegion {
  std::string Name; ///< deterministic, e.g. "glb.i0" or "lcl.i4"
  std::string Kind; ///< loop kind of the region root: glb/wrg/lcl/seq
  double Seconds = 0;            ///< measured region time (best repeat)
  std::uint64_t Iterations = 0;  ///< iterations of the region's root loop
  std::uint64_t BytesRead = 0;   ///< static: global-memory bytes loaded
  std::uint64_t BytesWritten = 0;///< static: global-memory bytes stored
  std::uint64_t Flops = 0;       ///< static: user-function FLOPs

  std::uint64_t bytes() const { return BytesRead + BytesWritten; }
  /// Achieved global-memory bandwidth in GB/s (0 when untimed).
  double gbPerSec() const;
  /// Achieved arithmetic throughput in GFLOP/s (0 when untimed).
  double gflopsPerSec() const;
  /// Arithmetic intensity in FLOP/byte (0 when no bytes move).
  double intensity() const;
};

/// A complete profiled execution of one kernel.
struct Profile {
  std::string KernelName;
  std::string Variant; ///< lowering descriptor, e.g. "tiled16-local"
  std::string Grid;    ///< e.g. "4096x4096"
  double TotalSeconds = 0; ///< whole-kernel time (best repeat)
  /// Machine peaks from the STREAM-style probe; 0 when not probed.
  double PeakGBPerSec = 0;
  double PeakGFlopsPerSec = 0;
  std::vector<ProfileRegion> Regions;

  /// Sum of the static counters over all regions.
  std::uint64_t totalBytes() const;
  std::uint64_t totalFlops() const;

  /// Human-readable per-region table with achieved GB/s / GFLOP/s /
  /// intensity and, when peaks are present, percent-of-roofline.
  std::string toText() const;

  /// JSON document (schema pinned by JsonTest round-trip):
  /// {"kernel","variant","grid","total_seconds","peak_gb_per_sec",
  ///  "peak_gflops_per_sec","regions":[{...}]}.
  json::Value toJson() const;
  std::string toJsonString() const;

  /// Rebuilds a Profile from toJson() output. False on schema
  /// mismatch (missing/ill-typed required members).
  static bool fromJson(const json::Value &V, Profile &Out);

  /// Records the regions (and a whole-kernel envelope span) into the
  /// global Tracer so profiled runs merge into the --trace timeline.
  /// Spans are named "profile.region.<name>" (category "profile") and
  /// laid out back-to-back from the current trace time. No-op while
  /// tracing is disabled.
  void emitTraceSpans() const;
};

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_PROFILE_H
