//===- FlightRecorder.cpp - Per-candidate tuner event log ------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/FlightRecorder.h"

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace lift;
using namespace lift::obs;

FlightRecorder &FlightRecorder::global() {
  // Leaked intentionally, like the tracer and the registry.
  static FlightRecorder *F = new FlightRecorder();
  return *F;
}

void FlightRecorder::beginTune(const std::string &Label,
                               std::size_t NumCandidates) {
  std::lock_guard<std::mutex> Lock(M);
  auto Log = std::make_unique<TuneLog>();
  Log->Label = Label;
  Log->Records.resize(NumCandidates);
  Logs.push_back(std::move(Log));
}

void FlightRecorder::record(std::size_t Index, CandidateRecord R) {
  TuneLog *Cur = nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Logs.empty())
      return; // record() without beginTune(): drop silently
    Cur = Logs.back().get();
  }
  if (Index >= Cur->Records.size())
    return;
  // Disjoint-slot write; the slots were preallocated by beginTune.
  Cur->Records[Index] = std::move(R);
}

std::vector<FlightRecorder::TuneLog> FlightRecorder::logs() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<TuneLog> Out;
  Out.reserve(Logs.size());
  for (const auto &L : Logs)
    Out.push_back(*L);
  return Out;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Logs.clear();
}

std::string FlightRecorder::summary() const {
  std::vector<TuneLog> All = logs();
  std::string Out;
  char Line[256];
  for (const TuneLog &L : All) {
    std::size_t Valid = 0, Memo = 0;
    double WallUs = 0;
    std::map<std::string, std::uint64_t> Prunes;
    const CandidateRecord *Best = nullptr;
    for (const CandidateRecord &R : L.Records) {
      WallUs += R.WallMicros;
      if (R.Valid) {
        ++Valid;
        if (R.FromMemo)
          ++Memo;
        if (!Best || R.PredictedTime < Best->PredictedTime)
          Best = &R;
      } else if (!R.PruneReason.empty()) {
        ++Prunes[R.PruneReason];
      }
    }
    std::snprintf(Line, sizeof(Line),
                  "tune %s: %zu candidates, %zu valid, %zu memo-shared, "
                  "%.1f ms wall\n",
                  L.Label.c_str(), L.Records.size(), Valid, Memo,
                  WallUs / 1000.0);
    Out += Line;
    std::vector<std::pair<std::string, std::uint64_t>> KVs(Prunes.begin(),
                                                           Prunes.end());
    Out += "  pruned: " + formatCounts(KVs) + "\n";
    if (Best) {
      if (Best->MeasuredTime > 0)
        std::snprintf(Line, sizeof(Line),
                      "  best: %s (%.3f GElem/s, predicted %.3g s, "
                      "measured %.3g s)\n",
                      Best->Variant.c_str(), Best->GElemsPerSec,
                      Best->PredictedTime, Best->MeasuredTime);
      else
        std::snprintf(Line, sizeof(Line),
                      "  best: %s (%.3f GElem/s, predicted %.3g s)\n",
                      Best->Variant.c_str(), Best->GElemsPerSec,
                      Best->PredictedTime);
      Out += Line;
    }
  }
  return Out.empty() ? std::string("no tuning sweeps recorded\n") : Out;
}

std::string FlightRecorder::exportJsonArray() const {
  std::vector<TuneLog> All = logs();
  std::string Out = "[";
  for (std::size_t I = 0; I != All.size(); ++I) {
    const TuneLog &L = All[I];
    if (I)
      Out += ',';
    Out += "\n{\"label\":\"" + json::escape(L.Label) + "\",\"candidates\":[";
    for (std::size_t J = 0; J != L.Records.size(); ++J) {
      const CandidateRecord &R = L.Records[J];
      if (J)
        Out += ',';
      char Hash[24];
      std::snprintf(Hash, sizeof(Hash), "%016llx",
                    (unsigned long long)R.LoweredHash);
      char Num[64];
      Out += "\n  {\"index\":" + std::to_string(R.Index) + ",\"variant\":\"" +
             json::escape(R.Variant) + "\",\"lowered_hash\":\"" + Hash +
             "\"";
      std::snprintf(Num, sizeof(Num), ",\"predicted_time\":%.9g",
                    R.PredictedTime);
      Out += Num;
      std::snprintf(Num, sizeof(Num), ",\"gelems_per_sec\":%.9g",
                    R.GElemsPerSec);
      Out += Num;
      Out += ",\"prune_reason\":";
      Out += R.PruneReason.empty() ? "null"
                                   : "\"" + json::escape(R.PruneReason) + "\"";
      Out += ",\"from_memo\":";
      Out += R.FromMemo ? "true" : "false";
      Out += ",\"valid\":";
      Out += R.Valid ? "true" : "false";
      std::snprintf(Num, sizeof(Num), ",\"measured_time\":%.9g",
                    R.MeasuredTime);
      Out += Num;
      Out += ",\"objective\":\"" + json::escape(R.Objective) + "\"";
      std::snprintf(Num, sizeof(Num), ",\"wall_us\":%.3f}", R.WallMicros);
      Out += Num;
    }
    Out += "\n]}";
  }
  Out += "\n]";
  return Out;
}
