//===- Clock.cpp - Deterministic monotonic clock seam ----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Clock.h"

#include "support/Support.h"

#include <atomic>
#include <chrono>

using namespace lift;
using namespace lift::obs;

namespace {

std::uint64_t steadyNowNs() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::atomic<ClockFn> Override{nullptr};

// ScopedFakeClock state. The counter is atomic so a fake-clocked query
// from a worker thread still yields a unique, monotonic value.
std::atomic<std::uint64_t> FakeNext{0};
std::uint64_t FakeStep = 0;
bool FakeInstalled = false;

std::uint64_t fakeNowNs() {
  return FakeNext.fetch_add(FakeStep, std::memory_order_relaxed);
}

} // namespace

std::uint64_t lift::obs::monotonicNowNs() {
  if (ClockFn Fn = Override.load(std::memory_order_relaxed))
    return Fn();
  return steadyNowNs();
}

void lift::obs::setClockForTest(ClockFn Fn) {
  Override.store(Fn, std::memory_order_relaxed);
}

ScopedFakeClock::ScopedFakeClock(std::uint64_t StartNs, std::uint64_t StepNs) {
  if (FakeInstalled)
    fatalError("ScopedFakeClock: already installed");
  FakeInstalled = true;
  FakeNext.store(StartNs, std::memory_order_relaxed);
  FakeStep = StepNs;
  setClockForTest(&fakeNowNs);
}

ScopedFakeClock::~ScopedFakeClock() {
  setClockForTest(nullptr);
  FakeInstalled = false;
}

void ScopedFakeClock::advance(std::uint64_t Ns) {
  FakeNext.fetch_add(Ns, std::memory_order_relaxed);
}

std::uint64_t ScopedFakeClock::peek() const {
  return FakeNext.load(std::memory_order_relaxed);
}
