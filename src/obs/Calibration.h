//===- Calibration.h - Cost model vs. wall clock ---------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins the flight recorder's per-candidate (modeled time, measured
/// time) pairs from a measured-objective tuning sweep into a
/// calibration report: per-variant relative error, Spearman rank
/// correlation between the two orderings, and whether the analytical
/// argmin picks the same winner as the wall clock. This is the direct
/// input for the ROADMAP's guided-search item — a cost model only
/// needs to *rank* candidates correctly for the search to trust it, so
/// rank correlation and argmin agreement are the headline numbers, and
/// the per-pair relative error shows where the model's absolute scale
/// drifts.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_CALIBRATION_H
#define LIFT_OBS_CALIBRATION_H

#include "obs/FlightRecorder.h"
#include "obs/Json.h"

#include <string>
#include <vector>

namespace lift {
namespace obs {

/// One candidate evaluated under both objectives.
struct CalibrationPair {
  std::string Variant;
  double ModeledSeconds = 0;
  double MeasuredSeconds = 0;

  /// |modeled - measured| / measured (0 when measured is 0).
  double relativeError() const;
};

/// The joined report over one tuning sweep.
struct CalibrationReport {
  std::string Label;
  std::vector<CalibrationPair> Pairs;
  /// Spearman rank correlation of modeled vs. measured orderings
  /// (average ranks on ties); 1 for fewer than two pairs.
  double SpearmanRho = 1.0;
  double MeanRelativeError = 0.0;
  /// Variant with the smallest modeled / measured time (first on
  /// ties, matching the tuner's argmin tie-break).
  std::string ModeledBest;
  std::string MeasuredBest;
  bool ArgminAgreement = true;

  /// {"label","pairs":[{"variant","modeled_seconds","measured_seconds",
  ///  "relative_error"}],"spearman_rho","mean_relative_error",
  ///  "modeled_best","measured_best","argmin_agreement"}.
  json::Value toJson() const;
  /// One-paragraph human-readable summary.
  std::string toText() const;
};

/// Computes rho/error/argmin fields over \p Pairs.
CalibrationReport calibrate(std::string Label,
                            std::vector<CalibrationPair> Pairs);

/// Extracts the (modeled, measured) pairs of a measured-objective
/// sweep log. Candidates without both times (pruned, or a modeled-only
/// sweep) contribute nothing; an empty report means the log carried no
/// calibration signal.
CalibrationReport calibrateLog(const FlightRecorder::TuneLog &Log);

/// Spearman rank correlation with average-rank tie handling. Returns
/// 1.0 when fewer than two samples or either side is constant-rank
/// degenerate in a way that leaves the correlation undefined.
double spearmanRho(const std::vector<double> &A, const std::vector<double> &B);

/// Calibration reports for every recorded sweep that carries measured
/// times, serialized as {"sweeps":[...]} — the calibration.json
/// document written by ObsSession for --calibration=<file>.
std::string calibrationDocumentJson();

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_CALIBRATION_H
