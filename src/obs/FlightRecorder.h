//===- FlightRecorder.h - Per-candidate tuner event log --------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuner flight recorder: one structured record per candidate of
/// every tuning sweep — what was tried, what it hashed to, why it was
/// pruned (or how fast it was predicted to be), whether the evaluation
/// was shared through the structural-hash memo, and how long the
/// evaluation took on the wall.
///
/// The paper's searches evaluate on the order of a thousand candidate
/// kernels per benchmark; this log is what lets us replay such a
/// search after the fact ("which constraint ate the space?", "how much
/// did the memo save?") without rerunning it.
///
/// Concurrency: beginTune() preallocates one slot per candidate, and
/// the parallel tuner's workers write disjoint slots, so record() is
/// lock-free. beginTune() and the read-side (summary/export) must not
/// run concurrently with record() — the tuner drains its pool before
/// returning, which provides exactly that.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_FLIGHTRECORDER_H
#define LIFT_OBS_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lift {
namespace obs {

/// One evaluated (or pruned) point of a tuning search.
struct CandidateRecord {
  std::uint64_t Index = 0;     ///< enumeration order within the sweep
  std::string Variant;         ///< lowering options + launch knobs
  std::uint64_t LoweredHash = 0; ///< structural hash of the lowered IR
                                 ///< (0 when pruned before lowering)
  double PredictedTime = 0;    ///< device-model runtime (s); 0 if pruned
  double GElemsPerSec = 0;     ///< paper's Figure-7 metric; 0 if pruned
  std::string PruneReason;     ///< empty when the candidate was valid
  bool FromMemo = false;       ///< simulation shared via the eval memo
  bool Valid = false;
  double WallMicros = 0;       ///< wall time of this evaluation
  /// Native wall-clock seconds of one kernel execution when the sweep
  /// ran under the measured objective; 0 under the modeled objective.
  double MeasuredTime = 0;
  /// What this sweep ranked candidates by: "modeled" or "measured".
  std::string Objective = "modeled";
};

/// The process-wide recorder. Disabled (and free) by default; the
/// --trace/--metrics/--obs-report driver paths enable it.
class FlightRecorder {
public:
  static FlightRecorder &global();

  void setEnabled(bool On) {
    EnabledFlag.store(On, std::memory_order_relaxed);
  }
  bool enabled() const {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Opens a new sweep log with \p NumCandidates preallocated slots.
  void beginTune(const std::string &Label, std::size_t NumCandidates);

  /// Stores \p R into slot \p Index of the current sweep. Safe from
  /// concurrent tuner workers (disjoint indices).
  void record(std::size_t Index, CandidateRecord R);

  struct TuneLog {
    std::string Label;
    std::vector<CandidateRecord> Records;
  };

  /// Copies all completed sweep logs.
  std::vector<TuneLog> logs() const;

  /// Human-readable replay: per sweep, candidate totals, prune counts
  /// by reason, memo share rate, best variant and wall time.
  std::string summary() const;

  /// JSON array of sweeps:
  /// [{"label":...,"candidates":[{...}, ...]}, ...]
  std::string exportJsonArray() const;

  /// Drops all logs.
  void clear();

private:
  std::atomic<bool> EnabledFlag{false};
  mutable std::mutex M; ///< guards Logs' vector-of-logs structure
  std::vector<std::unique_ptr<TuneLog>> Logs;
};

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_FLIGHTRECORDER_H
