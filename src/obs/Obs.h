//===- Obs.h - Observability session for drivers ---------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop driver interface to the observability subsystem:
/// parse the shared command-line flags, arm the tracer / metrics /
/// flight recorder, and write everything out at exit. Used by
/// tools/liftc and every tuning/bench harness so they all expose the
/// same three flags with the same semantics:
///
///   --trace=<file>    span trace as Chrome trace_event JSON
///                     (open in chrome://tracing or ui.perfetto.dev)
///   --metrics=<file>  metrics registry + per-candidate tuner records
///                     as JSON
///   --calibration=<file>  modeled-vs-measured calibration report per
///                     measured-objective tuning sweep as JSON
///   --obs-report      human-readable metrics dump + tuner flight
///                     summary on stdout at exit
///
/// With none of the flags present nothing is armed and the
/// instrumentation in the pipeline stays on its no-op path.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_OBS_H
#define LIFT_OBS_OBS_H

#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <string>

namespace lift {
namespace obs {

/// Parsed observability flags.
struct ObsOptions {
  std::string TracePath;
  std::string MetricsPath;
  std::string CalibrationPath;
  bool Report = false;

  bool any() const {
    return Report || !TracePath.empty() || !MetricsPath.empty() ||
           !CalibrationPath.empty();
  }
};

/// Recognizes one argument (--trace=<f>, --metrics=<f>,
/// --calibration=<f>, --obs-report). Returns true when consumed.
bool parseObsFlag(const char *Arg, ObsOptions &O);

/// Scans the whole command line for the observability flags (without
/// removing them; the harnesses' own parsers ignore what they do not
/// know).
ObsOptions parseObsOptions(int Argc, char **Argv);

/// RAII-ish driver session: arms the collectors on construction,
/// finish() writes the files and prints the report. finish() is
/// idempotent; the destructor calls it as a safety net.
class ObsSession {
public:
  explicit ObsSession(ObsOptions O);
  ~ObsSession();

  /// Writes --trace/--metrics files and prints the --obs-report dump.
  /// Returns 0 on success, 1 when an output file could not be written.
  int finish();

private:
  ObsOptions O;
  bool Finished = false;
};

/// The metrics document written for --metrics: the registry dump plus
/// the tuner flight-recorder sweeps.
std::string metricsDocumentJson();

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_OBS_H
