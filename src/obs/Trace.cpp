//===- Trace.cpp - Low-overhead span tracer --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Clock.h"
#include "obs/Json.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace lift;
using namespace lift::obs;

std::atomic<bool> Tracer::EnabledFlag{false};

namespace {

// The calling thread's buffer for the current tracer generation,
// checked (and refreshed) on every record; clear() invalidates it by
// bumping the generation. ThreadBuf is private to Tracer, so the cache
// is an opaque pointer only Tracer code assigns.
thread_local void *TlsBuf = nullptr;
thread_local std::uint64_t TlsGen = 0;

} // namespace

Tracer &Tracer::global() {
  // Leaked intentionally, like ArithCtx::global(): spans may close in
  // static teardown paths.
  static Tracer *T = new Tracer();
  return *T;
}

Tracer::Tracer() { EpochNs = monotonicNowNs(); }

std::uint64_t Tracer::nowNs() const {
  // Through the clock seam (obs/Clock.h), so a test-installed fake
  // clock makes span timestamps deterministic.
  std::uint64_t Now = monotonicNowNs();
  return Now > EpochNs ? Now - EpochNs : 0;
}

void Tracer::enable() {
  clear();
  {
    std::lock_guard<std::mutex> Lock(RegM);
    EpochNs = monotonicNowNs();
  }
  EnabledFlag.store(true, std::memory_order_relaxed);
  // Register the enabling thread eagerly so it gets tid 0 ("main")
  // even if a pool worker records first.
  registerThread();
}

void Tracer::disable() {
  EnabledFlag.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  EnabledFlag.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(RegM);
  Bufs.clear();
  MainSeen = false;
  NonPoolSeq = 0;
  // Invalidate every thread's cached buffer pointer.
  Gen.fetch_add(1, std::memory_order_relaxed);
}

Tracer::ThreadBuf *Tracer::registerThread() {
  std::uint64_t CurGen = Gen.load(std::memory_order_relaxed);
  if (TlsBuf && TlsGen == CurGen)
    return static_cast<ThreadBuf *>(TlsBuf);

  std::lock_guard<std::mutex> Lock(RegM);
  CurGen = Gen.load(std::memory_order_relaxed);
  auto Buf = std::make_unique<ThreadBuf>();
  unsigned W = ThreadPool::workerIndex();
  if (W != 0) {
    // A background pool worker: its spawn index is the stable row id.
    Buf->Tid = W;
    Buf->ThreadName = "worker-" + std::to_string(W);
  } else if (!MainSeen) {
    // The first non-pool thread (the parallelFor caller, logical
    // worker 0) is the driver thread.
    MainSeen = true;
    Buf->Tid = 0;
    Buf->ThreadName = "main";
  } else {
    // Any further non-pool thread; parked far above worker indices.
    Buf->Tid = 1000 + NonPoolSeq++;
    Buf->ThreadName = "thread-" + std::to_string(Buf->Tid);
  }
  ThreadBuf *Raw = Buf.get();
  Bufs.push_back(std::move(Buf));
  TlsBuf = Raw;
  TlsGen = CurGen;
  return Raw;
}

void Tracer::record(TraceEvent E) {
  ThreadBuf *B = registerThread();
  std::lock_guard<std::mutex> Lock(B->M);
  B->Events.push_back(std::move(E));
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(RegM);
  std::size_t N = 0;
  for (const auto &B : Bufs) {
    std::lock_guard<std::mutex> BL(B->M);
    N += B->Events.size();
  }
  return N;
}

namespace {

void appendMicros(std::string &Out, std::uint64_t Ns) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                (unsigned long long)(Ns / 1000),
                (unsigned long long)(Ns % 1000));
  Out += Buf;
}

} // namespace

std::string Tracer::exportChromeJson() const {
  std::lock_guard<std::mutex> Lock(RegM);

  // Stable output: rows ordered by tid.
  std::vector<ThreadBuf *> Order;
  Order.reserve(Bufs.size());
  for (const auto &B : Bufs)
    Order.push_back(B.get());
  std::sort(Order.begin(), Order.end(),
            [](const ThreadBuf *A, const ThreadBuf *B) {
              return A->Tid < B->Tid;
            });

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };

  for (ThreadBuf *B : Order) {
    Sep();
    Out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(B->Tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           json::escape(B->ThreadName) + "\"}}";
  }

  for (ThreadBuf *B : Order) {
    std::lock_guard<std::mutex> BL(B->M);
    for (const TraceEvent &E : B->Events) {
      Sep();
      Out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(B->Tid) +
             ",\"name\":\"" + json::escape(E.Name) + "\",\"cat\":\"" +
             json::escape(E.Cat) + "\",\"ts\":";
      appendMicros(Out, E.StartNs);
      Out += ",\"dur\":";
      appendMicros(Out, E.DurNs);
      if (!E.Args.empty()) {
        Out += ",\"args\":{";
        Out += E.Args;
        Out += "}";
      }
      Out += "}";
    }
  }

  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

bool Tracer::writeChromeJson(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS) {
    std::fprintf(stderr, "obs: cannot open trace file %s for writing\n",
                 Path.c_str());
    return false;
  }
  OS << exportChromeJson();
  return bool(OS);
}

void Span::begin(std::string N, const char *C) {
  Live = true;
  Cat = C;
  Name = std::move(N);
  StartNs = Tracer::global().nowNs();
}

void Span::finish() {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Cat = Cat;
  E.StartNs = StartNs;
  std::uint64_t End = Tracer::global().nowNs();
  E.DurNs = End > StartNs ? End - StartNs : 0;
  E.Args = std::move(Args);
  Tracer::global().record(std::move(E));
  Live = false;
}

void Span::arg(const char *Key, std::int64_t V) {
  if (!Live)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += json::escape(Key);
  Args += "\":";
  Args += std::to_string(V);
}

void Span::arg(const char *Key, const std::string &V) {
  if (!Live)
    return;
  if (!Args.empty())
    Args += ',';
  Args += '"';
  Args += json::escape(Key);
  Args += "\":\"";
  Args += json::escape(V);
  Args += '"';
}
