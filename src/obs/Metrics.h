//===- Metrics.h - Named counters, gauges and histograms -------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry: process-wide named counters, gauges and
/// histograms with deterministic JSON and text dumps.
///
/// This replaces the hand-rolled stat structs scattered through the
/// pipeline (PruneStats printing, interning hit/miss snapshots, bench
/// harness roll-ups) with one first-class facility:
///
///  * Counter — monotonically increasing uint64, relaxed atomic adds.
///    Because counters are pure sums they are order-independent: a
///    jobs=8 tune produces exactly the same totals as jobs=1.
///  * Gauge — a last-write-wins double (frontier depth, hit rates).
///  * Histogram — count/sum/min/max plus power-of-two buckets, for
///    per-candidate wall times.
///  * Providers — callbacks run at dump time that refresh gauges from
///    subsystems that keep their own internal stats (e.g. the ArithCtx
///    interning arena).
///
/// Metric objects are created on first lookup and never deallocated,
/// so hot paths may cache the returned reference. Lookups take a
/// registry mutex; increments are lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_METRICS_H
#define LIFT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lift {
namespace obs {

/// A monotonically increasing event count.
class Counter {
public:
  void inc(std::uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> V{0};
};

/// A last-write-wins instantaneous value.
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0};
};

/// Count/sum/min/max plus log2 buckets. observe() takes a short mutex
/// (histograms record coarse events like per-candidate wall times, not
/// per-node work).
class Histogram {
public:
  void observe(double X);
  struct Snapshot {
    std::uint64_t Count = 0;
    double Sum = 0, Min = 0, Max = 0;
  };
  Snapshot snapshot() const;
  void reset();

private:
  mutable std::mutex M;
  std::uint64_t Count = 0;
  double Sum = 0, Min = 0, Max = 0;
  std::uint64_t Buckets[64] = {}; ///< Buckets[i]: 2^(i-1) <= v < 2^i
};

/// The process-wide metrics registry.
class Registry {
public:
  static Registry &global();

  /// Returns (creating on first use) the named metric. References stay
  /// valid for the life of the process.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Registers a dump-time refresher for gauges owned by another
  /// subsystem. Providers run (outside the registry lock) at the start
  /// of every dump/snapshot call.
  void addProvider(std::function<void(Registry &)> Fn);

  /// All counter values whose name starts with \p Prefix, sorted by
  /// name. Runs providers first.
  std::map<std::string, std::uint64_t>
  counterValues(const std::string &Prefix = std::string());

  /// Human-readable dump, one "name value" line per metric, sorted by
  /// name, optionally restricted to a prefix. Runs providers first.
  std::string dumpText(const std::string &Prefix = std::string());

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with keys
  /// sorted by name. Runs providers first.
  std::string dumpJson();

  /// Zeroes every metric (registrations and providers are kept).
  void reset();

private:
  void runProviders();

  std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::vector<std::function<void(Registry &)>> Providers;
};

/// Formats non-zero counts as "a=1, b=2" (in the given order), or
/// "none" when every count is zero. The one key=value formatter behind
/// PruneStats::describe() and the report paths.
std::string
formatCounts(const std::vector<std::pair<std::string, std::uint64_t>> &KVs);

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_METRICS_H
