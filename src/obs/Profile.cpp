//===- Profile.cpp - Per-region kernel profile record ----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Profile.h"

#include "obs/Trace.h"

#include <cstdio>

using namespace lift;
using namespace lift::obs;

double ProfileRegion::gbPerSec() const {
  return Seconds > 0 ? double(bytes()) / Seconds / 1e9 : 0.0;
}

double ProfileRegion::gflopsPerSec() const {
  return Seconds > 0 ? double(Flops) / Seconds / 1e9 : 0.0;
}

double ProfileRegion::intensity() const {
  return bytes() > 0 ? double(Flops) / double(bytes()) : 0.0;
}

std::uint64_t Profile::totalBytes() const {
  std::uint64_t N = 0;
  for (const ProfileRegion &R : Regions)
    N += R.bytes();
  return N;
}

std::uint64_t Profile::totalFlops() const {
  std::uint64_t N = 0;
  for (const ProfileRegion &R : Regions)
    N += R.Flops;
  return N;
}

namespace {

std::string fmt(const char *Format, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), Format, V);
  return Buf;
}

} // namespace

std::string Profile::toText() const {
  std::string Out;
  Out += "profile: " + KernelName;
  if (!Variant.empty())
    Out += " [" + Variant + "]";
  if (!Grid.empty())
    Out += " grid " + Grid;
  Out += "\n";
  Out += "  total " + fmt("%.6f", TotalSeconds) + " s";
  if (TotalSeconds > 0) {
    Out += ", " + fmt("%.2f", double(totalBytes()) / TotalSeconds / 1e9) +
           " GB/s";
    Out += ", " + fmt("%.2f", double(totalFlops()) / TotalSeconds / 1e9) +
           " GFLOP/s";
  }
  if (PeakGBPerSec > 0)
    Out += "  (machine peak " + fmt("%.1f", PeakGBPerSec) + " GB/s, " +
           fmt("%.1f", PeakGFlopsPerSec) + " GFLOP/s)";
  Out += "\n";

  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "  %-14s %12s %14s %14s %10s %9s %9s %9s\n",
                "region", "time_ms", "bytes_rd", "bytes_wr", "flops", "GB/s",
                "GFLOP/s", "AI");
  Out += Buf;
  for (const ProfileRegion &R : Regions) {
    std::snprintf(Buf, sizeof(Buf),
                  "  %-14s %12.4f %14llu %14llu %10llu %9.2f %9.2f %9.3f",
                  R.Name.c_str(), R.Seconds * 1e3,
                  (unsigned long long)R.BytesRead,
                  (unsigned long long)R.BytesWritten,
                  (unsigned long long)R.Flops, R.gbPerSec(),
                  R.gflopsPerSec(), R.intensity());
    Out += Buf;
    if (PeakGBPerSec > 0 && R.Seconds > 0) {
      // Roofline: which ceiling binds at this region's intensity, and
      // how much of it the region achieves.
      double RooflineGFs = PeakGBPerSec * R.intensity();
      bool MemBound =
          PeakGFlopsPerSec <= 0 || RooflineGFs < PeakGFlopsPerSec;
      double Limit = MemBound ? PeakGBPerSec : PeakGFlopsPerSec;
      double Achieved = MemBound ? R.gbPerSec() : R.gflopsPerSec();
      std::snprintf(Buf, sizeof(Buf), "  %5.1f%% of %s peak",
                    Limit > 0 ? 100.0 * Achieved / Limit : 0.0,
                    MemBound ? "memory" : "compute");
      Out += Buf;
    }
    Out += "\n";
  }
  return Out;
}

json::Value Profile::toJson() const {
  json::Value Doc = json::Value::makeObject();
  Doc.set("kernel", json::Value::string(KernelName));
  Doc.set("variant", json::Value::string(Variant));
  Doc.set("grid", json::Value::string(Grid));
  Doc.set("total_seconds", json::Value::number(TotalSeconds));
  Doc.set("peak_gb_per_sec", json::Value::number(PeakGBPerSec));
  Doc.set("peak_gflops_per_sec", json::Value::number(PeakGFlopsPerSec));
  json::Value Regs = json::Value::makeArray();
  for (const ProfileRegion &R : Regions) {
    json::Value O = json::Value::makeObject();
    O.set("name", json::Value::string(R.Name));
    O.set("kind", json::Value::string(R.Kind));
    O.set("seconds", json::Value::number(R.Seconds));
    O.set("iterations", json::Value::number(double(R.Iterations)));
    O.set("bytes_read", json::Value::number(double(R.BytesRead)));
    O.set("bytes_written", json::Value::number(double(R.BytesWritten)));
    O.set("flops", json::Value::number(double(R.Flops)));
    O.set("gb_per_sec", json::Value::number(R.gbPerSec()));
    O.set("gflops_per_sec", json::Value::number(R.gflopsPerSec()));
    O.set("arithmetic_intensity", json::Value::number(R.intensity()));
    Regs.push(std::move(O));
  }
  Doc.set("regions", std::move(Regs));
  return Doc;
}

std::string Profile::toJsonString() const { return toJson().serialize(); }

namespace {

bool getString(const json::Value &V, const char *Key, std::string &Out) {
  const json::Value *M = V.find(Key);
  if (!M || !M->isString())
    return false;
  Out = M->asString();
  return true;
}

bool getNumber(const json::Value &V, const char *Key, double &Out) {
  const json::Value *M = V.find(Key);
  if (!M || !M->isNumber())
    return false;
  Out = M->asNumber();
  return true;
}

bool getCount(const json::Value &V, const char *Key, std::uint64_t &Out) {
  double D = 0;
  if (!getNumber(V, Key, D) || D < 0)
    return false;
  Out = std::uint64_t(D);
  return true;
}

} // namespace

bool Profile::fromJson(const json::Value &V, Profile &Out) {
  if (!V.isObject())
    return false;
  Profile P;
  if (!getString(V, "kernel", P.KernelName) ||
      !getString(V, "variant", P.Variant) || !getString(V, "grid", P.Grid) ||
      !getNumber(V, "total_seconds", P.TotalSeconds) ||
      !getNumber(V, "peak_gb_per_sec", P.PeakGBPerSec) ||
      !getNumber(V, "peak_gflops_per_sec", P.PeakGFlopsPerSec))
    return false;
  const json::Value *Regs = V.find("regions");
  if (!Regs || !Regs->isArray())
    return false;
  for (const json::Value &RV : Regs->array()) {
    ProfileRegion R;
    if (!getString(RV, "name", R.Name) || !getString(RV, "kind", R.Kind) ||
        !getNumber(RV, "seconds", R.Seconds) ||
        !getCount(RV, "iterations", R.Iterations) ||
        !getCount(RV, "bytes_read", R.BytesRead) ||
        !getCount(RV, "bytes_written", R.BytesWritten) ||
        !getCount(RV, "flops", R.Flops))
      return false;
    P.Regions.push_back(std::move(R));
  }
  Out = std::move(P);
  return true;
}

void Profile::emitTraceSpans() const {
  if (!Tracer::enabled())
    return;
  Tracer &T = Tracer::global();
  std::uint64_t Base = T.nowNs();
  auto Ns = [](double Seconds) {
    return Seconds > 0 ? std::uint64_t(Seconds * 1e9) : 0;
  };
  TraceEvent Whole;
  Whole.Name = "profile.kernel." + KernelName;
  Whole.Cat = "profile";
  Whole.StartNs = Base;
  Whole.DurNs = Ns(TotalSeconds);
  if (!Variant.empty())
    Whole.Args = "\"variant\":\"" + json::escape(Variant) + "\"";
  T.record(std::move(Whole));
  std::uint64_t At = Base;
  for (const ProfileRegion &R : Regions) {
    TraceEvent E;
    E.Name = "profile.region." + R.Name;
    E.Cat = "profile";
    E.StartNs = At;
    E.DurNs = Ns(R.Seconds);
    E.Args = "\"bytes\":" + std::to_string(R.bytes()) +
             ",\"flops\":" + std::to_string(R.Flops);
    At += E.DurNs;
    T.record(std::move(E));
  }
}
