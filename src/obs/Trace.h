//===- Trace.h - Low-overhead span tracer ----------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span tracer for the compilation/tuning pipeline, exporting Chrome
/// trace_event JSON (open chrome://tracing or https://ui.perfetto.dev
/// and load the file).
///
/// Design goals, in order:
///  1. Zero measurable overhead when disabled. Tracing is off by
///     default; a Span's constructor is a single relaxed atomic load
///     and a branch, with no allocation and no time query. Pipeline
///     code can therefore instrument unconditionally.
///  2. Thread-safe capture under the parallel tuner. Events land in
///     per-thread buffers (one uncontended mutex each, registered once
///     per thread); worker threads of the shared ThreadPool are
///     attributed to their stable worker index (ThreadPool::
///     workerIndex()), so a --jobs 8 tune shows eight labeled rows in
///     Perfetto instead of anonymous thread ids.
///  3. RAII scopes. A Span records a single complete ("ph":"X") event
///     on destruction, so nesting in the trace mirrors the C++ scope
///     structure by construction.
///
/// Quiescence contract: enable(), clear() and the export functions
/// must not run concurrently with live spans (the pipeline drains
/// before the driver writes the trace). record() from concurrent
/// threads is always safe while enabled.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_TRACE_H
#define LIFT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lift {
namespace obs {

/// One completed span, as recorded into a thread buffer.
struct TraceEvent {
  std::string Name;
  const char *Cat = "pipeline";
  std::uint64_t StartNs = 0; ///< nanoseconds since the tracer epoch
  std::uint64_t DurNs = 0;
  /// Pre-serialized JSON object members ("\"k\":1,\"s\":\"v\""), empty
  /// when the span had no args.
  std::string Args;
};

/// The process-wide trace collector.
class Tracer {
public:
  static Tracer &global();

  /// Drops previous events, restarts the time epoch and starts
  /// capturing. The calling thread is registered as "main" (tid 0).
  void enable();

  /// Stops capturing (buffered events are kept for export).
  void disable();

  /// True while capturing. The single branch every Span constructor
  /// takes; relaxed is enough because enable/disable only happen at
  /// pipeline quiescence.
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Drops all buffered events and thread registrations.
  void clear();

  /// Nanoseconds since the current epoch (steady clock).
  std::uint64_t nowNs() const;

  /// Appends one event to the calling thread's buffer.
  void record(TraceEvent E);

  /// Total buffered events across all threads.
  std::size_t eventCount() const;

  /// Serializes all buffered events as Chrome trace_event JSON
  /// ({"traceEvents": [...]}), including thread_name metadata so
  /// Perfetto labels the rows. Buffers stay intact.
  std::string exportChromeJson() const;

  /// exportChromeJson() to a file; false (with a message on stderr) on
  /// I/O failure.
  bool writeChromeJson(const std::string &Path) const;

private:
  Tracer();

  struct ThreadBuf {
    std::mutex M;
    unsigned Tid = 0;
    std::string ThreadName;
    std::vector<TraceEvent> Events;
  };

  ThreadBuf *registerThread();

  static std::atomic<bool> EnabledFlag;

  mutable std::mutex RegM; ///< guards Bufs and registration counters
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;
  std::atomic<std::uint64_t> Gen{1}; ///< bumped by clear(); invalidates TLS
  std::uint64_t EpochNs = 0;         ///< steady-clock origin
  bool MainSeen = false;             ///< tid 0 already assigned
  unsigned NonPoolSeq = 0;           ///< extra non-pool threads
};

/// RAII scope that records one complete trace event. Constructing a
/// Span while tracing is disabled is (by design) almost free.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "pipeline") {
    if (Tracer::enabled())
      begin(Name, Cat);
  }
  Span(std::string Name, const char *Cat) {
    if (Tracer::enabled())
      begin(std::move(Name), Cat);
  }
  ~Span() {
    if (Live)
      finish();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value pair shown in the trace viewer. No-ops when
  /// the span is not live (tracing disabled at construction).
  void arg(const char *Key, std::int64_t V);
  void arg(const char *Key, const std::string &V);

private:
  void begin(std::string Name, const char *Cat);
  void finish();

  bool Live = false;
  const char *Cat = nullptr;
  std::uint64_t StartNs = 0;
  std::string Name;
  std::string Args;
};

} // namespace obs
} // namespace lift

#endif // LIFT_OBS_TRACE_H
