//===- Json.cpp - Minimal JSON value, parser and writer --------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace lift::obs::json;

std::string lift::obs::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const Value *Value::find(const std::string &Key) const {
  for (const auto &KV : Obj)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

Value Value::null() { return Value(); }

Value Value::boolean(bool V) {
  Value R;
  R.K = Kind::Bool;
  R.B = V;
  return R;
}

Value Value::number(double V) {
  Value R;
  R.K = Kind::Number;
  R.Num = V;
  return R;
}

Value Value::string(std::string V) {
  Value R;
  R.K = Kind::String;
  R.Str = std::move(V);
  return R;
}

Value Value::makeArray(std::vector<Value> Elems) {
  Value R;
  R.K = Kind::Array;
  R.Arr = std::move(Elems);
  return R;
}

Value Value::makeObject() {
  Value R;
  R.K = Kind::Object;
  return R;
}

static void serializeNumber(double V, std::string &Out) {
  // Integers (the common case: counters, ids) print without a decimal
  // point so the output is stable and diff-friendly.
  if (std::isfinite(V) && V == std::floor(V) && std::abs(V) < 9.0e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

static void serializeRec(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    return;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case Value::Kind::Number:
    serializeNumber(V.asNumber(), Out);
    return;
  case Value::Kind::String:
    Out += '"';
    Out += escape(V.asString());
    Out += '"';
    return;
  case Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : V.array()) {
      if (!First)
        Out += ',';
      First = false;
      serializeRec(E, Out);
    }
    Out += ']';
    return;
  }
  case Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &KV : V.object()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escape(KV.first);
      Out += "\":";
      serializeRec(KV.second, Out);
    }
    Out += '}';
    return;
  }
  }
}

std::string Value::serialize() const {
  std::string Out;
  serializeRec(*this, Out);
  return Out;
}

namespace lift {
namespace obs {
namespace json {

/// Recursive-descent parser over the whole input string.
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : S(Text), Err(Error) {}

  bool run(Value &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != S.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  const std::string &S;
  std::string *Err;
  std::size_t Pos = 0;
  int Depth = 0;

  bool fail(const std::string &What) {
    if (Err)
      *Err = What + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\t' || S[Pos] == '\n' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    std::size_t N = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out) {
    if (++Depth > 128)
      return fail("nesting too deep");
    bool Ok = parseValueInner(Out);
    --Depth;
    return Ok;
  }

  bool parseValueInner(Value &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of input");
    switch (S[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = Value::null();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = Value::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = Value::boolean(false);
      return true;
    case '"': {
      std::string Str;
      if (!parseString(Str))
        return false;
      Out = Value::string(std::move(Str));
      return true;
    }
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= S.size())
        return fail("unterminated string");
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= S.size())
        return fail("unterminated escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        // Encode as UTF-8 (surrogate pairs are not recombined; the
        // exporters never emit them).
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xC0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3F));
        } else {
          Out += char(0xE0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3F));
          Out += char(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(Value &Out) {
    std::size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Tok = S.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      return fail("malformed number '" + Tok + "'");
    Out = Value::number(V);
    return true;
  }

  bool parseArray(Value &Out) {
    ++Pos; // '['
    Out = Value::makeArray();
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value Elem;
      skipWs();
      if (!parseValue(Elem))
        return false;
      Out.push(std::move(Elem));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated array");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parseObject(Value &Out) {
    ++Pos; // '{'
    Out = Value::makeObject();
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      Value Elem;
      if (!parseValue(Elem))
        return false;
      Out.set(std::move(Key), std::move(Elem));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated object");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

bool parse(const std::string &Text, Value &Out, std::string *Error) {
  return Parser(Text, Error).run(Out);
}

} // namespace json
} // namespace obs
} // namespace lift
