//===- Json.h - Minimal JSON value, parser and writer ----------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON layer for the observability subsystem:
/// the trace/metrics exporters need escaping and well-formed output,
/// and the tests and the trace_check tool need to parse that output
/// back to validate it. No external dependency, no streaming, no
/// clever allocation strategy — observability files are megabytes at
/// most and parsed once.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OBS_JSON_H
#define LIFT_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lift {
namespace obs {
namespace json {

/// Escapes a string for inclusion inside JSON double quotes (quotes,
/// backslashes, control characters).
std::string escape(const std::string &S);

/// A parsed JSON document node. Objects keep their keys in file order
/// (duplicate keys are kept; find() returns the first).
class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &object() const {
    return Obj;
  }

  /// First member with the given key, or nullptr (also when this is
  /// not an object).
  const Value *find(const std::string &Key) const;

  /// Serializes back to compact JSON text.
  std::string serialize() const;

  // Builders (used by tests to construct expected documents).
  static Value null();
  static Value boolean(bool V);
  static Value number(double V);
  static Value string(std::string V);
  static Value makeArray(std::vector<Value> Elems = {});
  static Value makeObject();

  void push(Value V) { Arr.push_back(std::move(V)); }
  void set(std::string Key, Value V) {
    Obj.emplace_back(std::move(Key), std::move(V));
  }

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;

  friend class Parser;
};

/// Parses \p Text into \p Out. Returns false on malformed input and,
/// when \p Error is non-null, stores a one-line description with the
/// byte offset of the failure.
bool parse(const std::string &Text, Value &Out, std::string *Error = nullptr);

} // namespace json
} // namespace obs
} // namespace lift

#endif // LIFT_OBS_JSON_H
