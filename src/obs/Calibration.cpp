//===- Calibration.cpp - Cost model vs. wall clock --------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "obs/Calibration.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

using namespace lift;
using namespace lift::obs;

double CalibrationPair::relativeError() const {
  if (MeasuredSeconds <= 0)
    return 0.0;
  return std::fabs(ModeledSeconds - MeasuredSeconds) / MeasuredSeconds;
}

namespace {

/// Average ranks (1-based; ties share the mean of their positions).
std::vector<double> averageRanks(const std::vector<double> &V) {
  std::vector<std::size_t> Order(V.size());
  std::iota(Order.begin(), Order.end(), std::size_t(0));
  std::stable_sort(Order.begin(), Order.end(),
                   [&](std::size_t A, std::size_t B) { return V[A] < V[B]; });
  std::vector<double> Ranks(V.size(), 0.0);
  std::size_t I = 0;
  while (I < Order.size()) {
    std::size_t J = I;
    while (J + 1 < Order.size() && V[Order[J + 1]] == V[Order[I]])
      ++J;
    double Mean = (double(I + 1) + double(J + 1)) / 2.0;
    for (std::size_t K = I; K <= J; ++K)
      Ranks[Order[K]] = Mean;
    I = J + 1;
  }
  return Ranks;
}

} // namespace

double lift::obs::spearmanRho(const std::vector<double> &A,
                              const std::vector<double> &B) {
  if (A.size() != B.size() || A.size() < 2)
    return 1.0;
  std::vector<double> RA = averageRanks(A);
  std::vector<double> RB = averageRanks(B);
  double N = double(RA.size());
  double MA = 0, MB = 0;
  for (std::size_t I = 0; I != RA.size(); ++I) {
    MA += RA[I];
    MB += RB[I];
  }
  MA /= N;
  MB /= N;
  double Cov = 0, VarA = 0, VarB = 0;
  for (std::size_t I = 0; I != RA.size(); ++I) {
    double DA = RA[I] - MA, DB = RB[I] - MB;
    Cov += DA * DB;
    VarA += DA * DA;
    VarB += DB * DB;
  }
  // A constant side (all-ties) carries no ordering information;
  // reporting perfect correlation keeps the degenerate one-variant
  // sweep from looking like a calibration failure.
  if (VarA <= 0 || VarB <= 0)
    return 1.0;
  return Cov / std::sqrt(VarA * VarB);
}

CalibrationReport lift::obs::calibrate(std::string Label,
                                       std::vector<CalibrationPair> Pairs) {
  CalibrationReport R;
  R.Label = std::move(Label);
  R.Pairs = std::move(Pairs);
  if (R.Pairs.empty())
    return R;

  std::vector<double> Modeled, Measured;
  Modeled.reserve(R.Pairs.size());
  Measured.reserve(R.Pairs.size());
  std::size_t BestMod = 0, BestMeas = 0;
  double ErrSum = 0;
  for (std::size_t I = 0; I != R.Pairs.size(); ++I) {
    const CalibrationPair &P = R.Pairs[I];
    Modeled.push_back(P.ModeledSeconds);
    Measured.push_back(P.MeasuredSeconds);
    ErrSum += P.relativeError();
    if (P.ModeledSeconds < R.Pairs[BestMod].ModeledSeconds)
      BestMod = I;
    if (P.MeasuredSeconds < R.Pairs[BestMeas].MeasuredSeconds)
      BestMeas = I;
  }
  R.SpearmanRho = spearmanRho(Modeled, Measured);
  R.MeanRelativeError = ErrSum / double(R.Pairs.size());
  R.ModeledBest = R.Pairs[BestMod].Variant;
  R.MeasuredBest = R.Pairs[BestMeas].Variant;
  R.ArgminAgreement = BestMod == BestMeas;
  return R;
}

CalibrationReport
lift::obs::calibrateLog(const FlightRecorder::TuneLog &Log) {
  std::vector<CalibrationPair> Pairs;
  for (const CandidateRecord &C : Log.Records) {
    if (!C.Valid || C.MeasuredTime <= 0 || C.PredictedTime <= 0)
      continue;
    CalibrationPair P;
    P.Variant = C.Variant;
    P.ModeledSeconds = C.PredictedTime;
    P.MeasuredSeconds = C.MeasuredTime;
    Pairs.push_back(std::move(P));
  }
  return calibrate(Log.Label, std::move(Pairs));
}

json::Value CalibrationReport::toJson() const {
  json::Value Doc = json::Value::makeObject();
  Doc.set("label", json::Value::string(Label));
  json::Value Arr = json::Value::makeArray();
  for (const CalibrationPair &P : Pairs) {
    json::Value O = json::Value::makeObject();
    O.set("variant", json::Value::string(P.Variant));
    O.set("modeled_seconds", json::Value::number(P.ModeledSeconds));
    O.set("measured_seconds", json::Value::number(P.MeasuredSeconds));
    O.set("relative_error", json::Value::number(P.relativeError()));
    Arr.push(std::move(O));
  }
  Doc.set("pairs", std::move(Arr));
  Doc.set("spearman_rho", json::Value::number(SpearmanRho));
  Doc.set("mean_relative_error", json::Value::number(MeanRelativeError));
  Doc.set("modeled_best", json::Value::string(ModeledBest));
  Doc.set("measured_best", json::Value::string(MeasuredBest));
  Doc.set("argmin_agreement", json::Value::boolean(ArgminAgreement));
  return Doc;
}

std::string CalibrationReport::toText() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "calibration %s: %zu pairs, spearman rho %.3f, mean relative "
                "error %.2fx, argmin %s (modeled %s vs measured %s)\n",
                Label.c_str(), Pairs.size(), SpearmanRho, MeanRelativeError,
                ArgminAgreement ? "agrees" : "DISAGREES", ModeledBest.c_str(),
                MeasuredBest.c_str());
  return Buf;
}

std::string lift::obs::calibrationDocumentJson() {
  json::Value Doc = json::Value::makeObject();
  json::Value Sweeps = json::Value::makeArray();
  for (const FlightRecorder::TuneLog &Log : FlightRecorder::global().logs()) {
    CalibrationReport R = calibrateLog(Log);
    if (!R.Pairs.empty())
      Sweeps.push(R.toJson());
  }
  Doc.set("sweeps", std::move(Sweeps));
  return Doc.serialize() + "\n";
}
