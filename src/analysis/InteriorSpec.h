//===- InteriorSpec.h - Interior/edge kernel specialization ----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interior/edge loop splitting over lowered kernel ASTs.
///
/// Every neighbourhood access of a lowered stencil pays boundary
/// arithmetic — clamp (max/min), mirror (mod + min), wrap (mod) or a
/// constant-pad Select — on *every* iteration, even though only the
/// first and last few iterations of each grid loop can actually be out
/// of bounds. This pass splits each parallel grid loop into three:
///
///   left edge  [0, H)            — original body (general path)
///   interior   [H, count - H)    — body re-simplified under the fact
///                                  that accesses are in bounds: clamp /
///                                  mirror / wrap arithmetic erased,
///                                  constant-pad Selects resolved to
///                                  their load branch
///   right edge [count - H, count) — original body (general path)
///
/// for the smallest halo width H whose interior facts eliminate every
/// boundary operation (RangeAnalysis.h provides the proofs). The split
/// is performed only when it is a pure win: if no H up to a small limit
/// clears the body, the loop is left untouched. Interior points
/// dominate every real grid (>= 98% at 4096^2, >= 97% at 256^3), so the
/// general path runs on a vanishing fraction of the domain.
///
/// The rewrite is semantics-preserving by construction — the three
/// ranges partition [0, count) exactly, each clone computes the same
/// function on its subrange — and is additionally enforced end to end
/// by the differential fuzzer (liftfuzz --native --specialize compares
/// specialized native output bit-for-bit against the interpreter).
///
/// Only the native C backend consumes specialized kernels; the NDRange
/// simulator and the OpenCL emitter keep the unsplit form.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ANALYSIS_INTERIORSPEC_H
#define LIFT_ANALYSIS_INTERIORSPEC_H

#include "ocl/KernelAst.h"

namespace lift {
namespace analysis {

/// What specializeInterior did.
struct SpecStats {
  unsigned LoopsSplit = 0;     ///< grid loops split into edge/interior
  unsigned SelectsResolved = 0; ///< constant-pad Selects proved away
  bool changed() const { return LoopsSplit != 0; }
};

/// Returns a copy of \p K with every eligible parallel grid loop split
/// into left-edge / clamp-free-interior / right-edge loops (see file
/// comment). Kernels with local-memory staging, barriers, or
/// non-provable bodies are returned unchanged — the result is always a
/// valid kernel computing the same function.
ocl::Kernel specializeInterior(const ocl::Kernel &K,
                               SpecStats *Stats = nullptr);

} // namespace analysis
} // namespace lift

#endif // LIFT_ANALYSIS_INTERIORSPEC_H
