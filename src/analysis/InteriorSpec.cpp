//===- InteriorSpec.cpp - Interior/edge kernel specialization ------------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/InteriorSpec.h"

#include "analysis/RangeAnalysis.h"

#include <unordered_map>
#include <unordered_set>

namespace lift {
namespace analysis {

namespace {

using ocl::KExpr;
using ocl::KExprPtr;
using ocl::Stmt;
using ocl::StmtPtr;

constexpr int MaxHalo = 4;

//===----------------------------------------------------------------------===//
// Subtree scans
//===----------------------------------------------------------------------===//

bool mentionsVar(const AExpr &E, unsigned Id) {
  if (!E)
    return false;
  std::vector<unsigned> Vars;
  collectVars(E, Vars);
  for (unsigned V : Vars)
    if (V == Id)
      return true;
  return false;
}

/// True when \p E contains a Min/Max/Mod node whose subtree mentions
/// variable \p Id — i.e. surviving boundary arithmetic on that loop.
bool hasBoundaryOpOn(const AExpr &E, unsigned Id) {
  if (!E)
    return false;
  switch (E->getKind()) {
  case ArithExpr::Kind::Min:
  case ArithExpr::Kind::Max:
  case ArithExpr::Kind::Mod:
    if (mentionsVar(E, Id))
      return true;
    break;
  default:
    break;
  }
  for (const AExpr &Op : E->getOperands())
    if (hasBoundaryOpOn(Op, Id))
      return true;
  return false;
}

/// Eligibility scan over one loop subtree: the split duplicates the
/// body into three clones, which is only safe when the body is a pure
/// per-iteration computation over global memory — no barriers, no
/// work-group/local-id loops, no local/private buffers, and every
/// register read after a write within the same subtree.
struct EligibilityScan {
  const ocl::Kernel &K;
  bool Ok = true;
  std::unordered_set<int> Assigned;
  std::unordered_map<int, unsigned> RegUses; ///< reg id -> occurrences

  void expr(const KExprPtr &E) {
    if (!E || !Ok)
      return;
    switch (E->K) {
    case KExpr::Kind::ConstScalar:
    case KExpr::Kind::IndexVal:
      return;
    case KExpr::Kind::ReadVar:
      ++RegUses[E->VarId];
      if (!Assigned.count(E->VarId))
        Ok = false; // value flows in from outside the subtree
      return;
    case KExpr::Kind::Load:
      if (K.buffer(E->BufferId).Space != ocl::MemSpace::Global)
        Ok = false;
      return;
    case KExpr::Kind::CallUF:
      for (const KExprPtr &A : E->Args)
        expr(A);
      return;
    case KExpr::Kind::Select:
      expr(E->Then);
      expr(E->Else);
      return;
    }
  }

  void stmt(const StmtPtr &S) {
    if (!Ok)
      return;
    switch (S->K) {
    case Stmt::Kind::Store:
      if (K.buffer(S->BufferId).Space != ocl::MemSpace::Global)
        Ok = false;
      expr(S->Value);
      return;
    case Stmt::Kind::AssignVar:
      expr(S->Value); // RHS reads happen before the write
      ++RegUses[S->VarId];
      Assigned.insert(S->VarId);
      return;
    case Stmt::Kind::Barrier:
      Ok = false;
      return;
    case Stmt::Kind::Loop:
      if (S->LK == ocl::LoopKind::Wrg || S->LK == ocl::LoopKind::Lcl) {
        Ok = false;
        return;
      }
      for (const StmtPtr &B : S->Body)
        stmt(B);
      return;
    }
  }
};

/// Counts register occurrences (reads + writes) under \p Body.
void countRegUses(const std::vector<StmtPtr> &Body,
                  std::unordered_map<int, unsigned> &Out) {
  struct Walk {
    std::unordered_map<int, unsigned> &Out;
    void expr(const KExprPtr &E) {
      if (!E)
        return;
      if (E->K == KExpr::Kind::ReadVar)
        ++Out[E->VarId];
      for (const KExprPtr &A : E->Args)
        expr(A);
      expr(E->Then);
      expr(E->Else);
    }
    void stmt(const StmtPtr &S) {
      if (S->K == Stmt::Kind::AssignVar)
        ++Out[S->VarId];
      expr(S->Value);
      for (const StmtPtr &B : S->Body)
        stmt(B);
    }
  } W{Out};
  for (const StmtPtr &S : Body)
    W.stmt(S);
}

//===----------------------------------------------------------------------===//
// Cloning with substitution / simplification / register remapping
//===----------------------------------------------------------------------===//

struct CloneCtx {
  const std::unordered_map<unsigned, AExpr> &Subst;
  const std::unordered_map<int, int> *RegMap = nullptr;
  bool Simplify = false; ///< interior mode: simplify + resolve Selects
  SpecStats *Stats = nullptr;

  AExpr index(const AExpr &E, const Facts &F) const {
    if (!E)
      return E;
    AExpr Out = Subst.empty() ? E : substitute(E, Subst);
    if (Simplify)
      Out = simplifyWithFacts(Out, F);
    return Out;
  }

  int reg(int Id) const {
    if (!RegMap)
      return Id;
    auto It = RegMap->find(Id);
    return It == RegMap->end() ? Id : It->second;
  }
};

KExprPtr cloneExpr(const KExprPtr &E, const CloneCtx &C, const Facts &F) {
  if (!E)
    return E;
  switch (E->K) {
  case KExpr::Kind::ConstScalar:
    return E;
  case KExpr::Kind::IndexVal:
    return ocl::kIndexVal(C.index(E->Index, F));
  case KExpr::Kind::ReadVar:
    return C.RegMap ? ocl::kReadVar(C.reg(E->VarId)) : E;
  case KExpr::Kind::Load:
    return ocl::kLoad(E->BufferId, C.index(E->Index, F));
  case KExpr::Kind::CallUF: {
    std::vector<KExprPtr> Args;
    Args.reserve(E->Args.size());
    for (const KExprPtr &A : E->Args)
      Args.push_back(cloneExpr(A, C, F));
    return ocl::kCallUF(E->UF, std::move(Args));
  }
  case KExpr::Kind::Select: {
    std::vector<ocl::BoundsCheck> Checks;
    Checks.reserve(E->Checks.size());
    bool AllProved = C.Simplify;
    for (const ocl::BoundsCheck &B : E->Checks) {
      ocl::BoundsCheck NB{C.index(B.Idx, F), C.index(B.Lo, F),
                          C.index(B.Hi, F)};
      if (AllProved && !provablyInBounds(NB.Idx, NB.Lo, NB.Hi, F))
        AllProved = false;
      Checks.push_back(std::move(NB));
    }
    if (AllProved) {
      // Every lane of this branch is provably in bounds: the guard and
      // the constant fallback vanish.
      if (C.Stats)
        ++C.Stats->SelectsResolved;
      return cloneExpr(E->Then, C, F);
    }
    return ocl::kSelect(std::move(Checks), cloneExpr(E->Then, C, F),
                        cloneExpr(E->Else, C, F));
  }
  }
  return E;
}

StmtPtr cloneStmt(const StmtPtr &S, const CloneCtx &C, const Facts &F) {
  switch (S->K) {
  case Stmt::Kind::Store:
    return ocl::sStore(S->BufferId, C.index(S->Index, F),
                       cloneExpr(S->Value, C, F));
  case Stmt::Kind::AssignVar:
    return ocl::sAssign(C.reg(S->VarId), cloneExpr(S->Value, C, F));
  case Stmt::Kind::Barrier:
    return S;
  case Stmt::Kind::Loop: {
    AExpr Count = C.index(S->Count, F);
    Facts Inner = F.withLoopVar(S->LoopVar, Count);
    std::vector<StmtPtr> Body;
    Body.reserve(S->Body.size());
    for (const StmtPtr &B : S->Body)
      Body.push_back(cloneStmt(B, C, Inner));
    return ocl::sLoop(S->LK, S->Dim, S->LoopVar, std::move(Count),
                      std::move(Body), S->Unroll);
  }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Interior verification
//===----------------------------------------------------------------------===//

/// True when the transformed interior body is fully clamp-free with
/// respect to the interior variable \p Id: no surviving Min/Max/Mod
/// mentioning it in any index/count expression, and no surviving
/// Select guard mentioning it.
struct InteriorVerify {
  unsigned Id;
  bool Clean = true;

  void index(const AExpr &E) {
    if (Clean && hasBoundaryOpOn(E, Id))
      Clean = false;
  }

  void expr(const KExprPtr &E) {
    if (!E || !Clean)
      return;
    index(E->Index);
    for (const ocl::BoundsCheck &B : E->Checks)
      if (mentionsVar(B.Idx, Id) || mentionsVar(B.Lo, Id) ||
          mentionsVar(B.Hi, Id)) {
        Clean = false;
        return;
      }
    for (const KExprPtr &A : E->Args)
      expr(A);
    expr(E->Then);
    expr(E->Else);
  }

  void stmt(const StmtPtr &S) {
    if (!Clean)
      return;
    index(S->Index);
    index(S->Count);
    expr(S->Value);
    for (const StmtPtr &B : S->Body)
      stmt(B);
  }
};

//===----------------------------------------------------------------------===//
// The splitter
//===----------------------------------------------------------------------===//

struct Splitter {
  ocl::Kernel &K;
  SpecStats &Stats;
  /// Occurrences of every register across the whole kernel; updated as
  /// clones introduce fresh registers so nested splits stay checkable.
  std::unordered_map<int, unsigned> GlobalRegUses;

  std::vector<StmtPtr> processBody(const std::vector<StmtPtr> &Body,
                                   const Facts &F) {
    std::vector<StmtPtr> Out;
    Out.reserve(Body.size());
    for (const StmtPtr &S : Body) {
      if (S->K == Stmt::Kind::Loop) {
        if (S->LK == ocl::LoopKind::Glb) {
          trySplit(S, F, Out);
          continue;
        }
        if (S->LK == ocl::LoopKind::Seq) {
          Facts Inner = F.withLoopVar(S->LoopVar, S->Count);
          Out.push_back(ocl::sLoop(S->LK, S->Dim, S->LoopVar, S->Count,
                                   processBody(S->Body, Inner), S->Unroll));
          continue;
        }
        // Wrg/Lcl subtrees (tiled/local-memory kernels) are left alone.
      }
      Out.push_back(S);
    }
    return Out;
  }

  /// Duplicates every register of \p Uses with a suffixed name,
  /// recording the mapping and keeping the global use counts current.
  std::unordered_map<int, int>
  duplicateRegs(const std::unordered_map<int, unsigned> &Uses,
                const char *Suffix) {
    std::unordered_map<int, int> Map;
    for (const auto &[Id, N] : Uses) {
      int NewId = int(K.Registers.size());
      const ocl::RegisterDecl &Old = K.Registers[std::size_t(Id)];
      K.Registers.push_back({NewId, Old.Name + Suffix, Old.Kind});
      Map[Id] = NewId;
      GlobalRegUses[NewId] = N;
    }
    return Map;
  }

  void trySplit(const StmtPtr &Loop, const Facts &F,
                std::vector<StmtPtr> &Out) {
    // Keep the loop (with recursively processed body) when no split
    // applies.
    auto Keep = [&]() {
      Facts Inner = F.withLoopVar(Loop->LoopVar, Loop->Count);
      Out.push_back(ocl::sLoop(Loop->LK, Loop->Dim, Loop->LoopVar,
                               Loop->Count, processBody(Loop->Body, Inner),
                               Loop->Unroll));
    };

    EligibilityScan Scan{K};
    for (const StmtPtr &S : Loop->Body)
      Scan.stmt(S);
    if (!Scan.Ok) {
      Keep();
      return;
    }
    // Registers written here must not be visible elsewhere: clones get
    // fresh copies, so any outside read would see the wrong one.
    for (const auto &[Id, N] : Scan.RegUses) {
      auto It = GlobalRegUses.find(Id);
      if (It == GlobalRegUses.end() || It->second != N) {
        Keep();
        return;
      }
    }

    unsigned VId = Loop->LoopVar->getVarId();
    const std::string &VName = Loop->LoopVar->getVarName();

    for (int H = 1; H <= MaxHalo; ++H) {
      Range VR;
      VR.Min = 0;
      AExpr VI = var(VName + "_i", VR);
      std::unordered_map<unsigned, AExpr> Subst{
          {VId, add(VI, cst(H))}};
      // When the interior loop runs at all, VI <= Count - 2H - 1.
      Facts IF = F.withBound(VI->getVarId(), cst(0),
                             sub(sub(Loop->Count, cst(2 * H)), cst(1)));

      // Probe: transform without committing registers or stats, then
      // verify every boundary operation on this loop evaporated.
      CloneCtx Probe{Subst, nullptr, /*Simplify=*/true, nullptr};
      std::vector<StmtPtr> Probed;
      Probed.reserve(Loop->Body.size());
      for (const StmtPtr &S : Loop->Body)
        Probed.push_back(cloneStmt(S, Probe, IF));
      InteriorVerify V{VI->getVarId()};
      for (const StmtPtr &S : Probed)
        V.stmt(S);
      if (!V.Clean)
        continue;

      // Commit. Left edge [0, min(H, count)) keeps the original body
      // and registers.
      AExpr LeftCount = amin(cst(H), Loop->Count);
      Out.push_back(ocl::sLoop(Loop->LK, Loop->Dim, Loop->LoopVar,
                               std::move(LeftCount), Loop->Body,
                               Loop->Unroll));

      // Interior [H, count - H): fresh registers, simplified body,
      // then recurse so nested grid loops split too.
      auto RegMapI = duplicateRegs(Scan.RegUses, "_i");
      CloneCtx CI{Subst, &RegMapI, /*Simplify=*/true, &Stats};
      std::vector<StmtPtr> InteriorBody;
      InteriorBody.reserve(Loop->Body.size());
      for (const StmtPtr &S : Loop->Body)
        InteriorBody.push_back(cloneStmt(S, CI, IF));
      InteriorBody = processBody(InteriorBody, IF);
      AExpr InteriorCount = amax(cst(0), sub(Loop->Count, cst(2 * H)));
      Out.push_back(ocl::sLoop(Loop->LK, Loop->Dim, VI,
                               std::move(InteriorCount),
                               std::move(InteriorBody), Loop->Unroll));

      // Right edge [max(H, count - H), count): fresh registers, the
      // general body shifted to the tail, no simplification.
      AExpr VRight = var(VName + "_r", VR);
      AExpr RightStart = amax(cst(H), sub(Loop->Count, cst(H)));
      std::unordered_map<unsigned, AExpr> SubstR{
          {VId, add(VRight, RightStart)}};
      auto RegMapR = duplicateRegs(Scan.RegUses, "_r");
      CloneCtx CR{SubstR, &RegMapR, /*Simplify=*/false, nullptr};
      std::vector<StmtPtr> RightBody;
      RightBody.reserve(Loop->Body.size());
      for (const StmtPtr &S : Loop->Body)
        RightBody.push_back(cloneStmt(S, CR, Facts()));
      AExpr RightCount = amax(cst(0), sub(Loop->Count, RightStart));
      Out.push_back(ocl::sLoop(Loop->LK, Loop->Dim, VRight,
                               std::move(RightCount), std::move(RightBody),
                               Loop->Unroll));

      ++Stats.LoopsSplit;
      return;
    }
    Keep();
  }
};

} // namespace

ocl::Kernel specializeInterior(const ocl::Kernel &K, SpecStats *Stats) {
  ocl::Kernel Out = K;
  SpecStats Local;
  Splitter S{Out, Stats ? *Stats : Local, {}};
  countRegUses(Out.Body, S.GlobalRegUses);
  Out.Body = S.processBody(Out.Body, Facts{});
  return Out;
}

} // namespace analysis
} // namespace lift
