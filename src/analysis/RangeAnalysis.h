//===- RangeAnalysis.h - Symbolic range/refinement analysis ----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A symbolic interval/refinement domain over the hash-consed ArithExpr
/// arena. The memoized numeric Range on every node (ArithExpr::getRange)
/// only knows each variable's *declared* interval; this layer adds
/// context facts — per-variable refinements of the form
///
///   lo(other vars) <= v <= hi(other vars)
///
/// gathered from loop bounds (a loop variable lies in [0, count-1]),
/// concrete SizeEnv bindings, and Select guard conditions. Bounds are
/// computed as *symbolic expressions* rather than numbers, so the
/// sum-of-products canonicalizer cancels shared terms: the question
/// "is i + j - 1 <= n - 1 for i <= n - 3, j <= 2?" reduces to the
/// numeric range of (n - 1) - ((n - 3) + 2) = 0, which is decidable
/// even though n itself is unbounded.
///
/// Three consumers (paper §5's "aggressive simplification" taken one
/// step further):
///
///  1. provablyInBounds / simplifyWithFacts — lets the interior
///     specializer (InteriorSpec.h) drop clamp/mirror/wrap boundary
///     arithmetic where an access is provably interior;
///  2. refuteSplitDivisibility — statically refutes split(m)
///     divisibility side conditions against a concrete SizeEnv, so the
///     fuzzer/tuner skip candidates instead of discarding programs;
///  3. checkKernelBounds — a static bounds-check pass over lowered
///     kernel ASTs (liftc emit --check-bounds, liftfuzz --check-bounds).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ANALYSIS_RANGEANALYSIS_H
#define LIFT_ANALYSIS_RANGEANALYSIS_H

#include "arith/ArithExpr.h"
#include "ir/Expr.h"
#include "ocl/KernelAst.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace analysis {

/// Per-variable refinement: symbolic inclusive bounds, either of which
/// may be null (unknown). Bounds may mention *other* variables (e.g.
/// `i <= n - 3`), never the refined variable itself.
struct Refinement {
  AExpr Lo; ///< v >= Lo when non-null
  AExpr Hi; ///< v <= Hi when non-null
};

/// An immutable set of context facts: per-variable refinements.
/// Extension returns a new value (persistent-map style) so facts can be
/// pushed and popped along a kernel walk without mutation.
class Facts {
public:
  Facts() = default;

  /// Adds (meets) the refinement Lo <= v <= Hi. When \p V is already
  /// refined the bounds intersect: the new Lo is max(old, new), the
  /// new Hi min(old, new). Null keeps the old bound.
  Facts withBound(unsigned VarId, AExpr Lo, AExpr Hi) const;

  /// Loop-bound fact for a loop running 0..Count-1: V in [0, Count-1].
  /// \p LoopVar must be a Var node.
  Facts withLoopVar(const AExpr &LoopVar, const AExpr &Count) const;

  /// Binds every (var id -> value) pair as the exact refinement
  /// [cst(v), cst(v)] — the SizeEnv context of a concrete run.
  Facts
  withSizeEnv(const std::unordered_map<unsigned, std::int64_t> &Env) const;

  /// Learns from a guard condition Lo <= Idx < Hi known to hold (e.g. a
  /// Select bounds check when analyzing its Then branch). The guard is
  /// *solved* for one variable: when some v occurs exactly once in Idx,
  /// at the top level of the canonical sum with coefficient +-1, the
  /// condition rewrites to bounds on v (sum-of-products cancellation
  /// guarantees the bounds no longer mention v). Unsolvable guards are
  /// dropped — always sound, merely less precise. When several
  /// variables qualify, the largest id (innermost-created, typically
  /// the innermost loop variable) is chosen.
  Facts withCheckFact(const AExpr &Idx, const AExpr &Lo,
                      const AExpr &Hi) const;

  /// Least upper bound with \p Other: only variables refined on both
  /// sides survive, with min of the Los and max of the His.
  Facts join(const Facts &Other) const;

  /// The refinement for \p VarId, or nullptr.
  const Refinement *refinement(unsigned VarId) const;

private:
  std::unordered_map<unsigned, Refinement> Refs;
};

/// A symbolic lower/upper bound of \p E under \p F: an expression
/// provably <= / >= E for every assignment satisfying the facts.
/// Always sound — the fallback result is E itself.
AExpr lowerBound(const AExpr &E, const Facts &F);
AExpr upperBound(const AExpr &E, const Facts &F);

/// True when A <= B holds for every assignment satisfying \p F.
/// (False means "not provable", not "provably greater".)
bool provablyLE(const AExpr &A, const AExpr &B, const Facts &F);

/// True when Lo <= I < HiExcl is provable under \p F.
bool provablyInBounds(const AExpr &I, const AExpr &Lo, const AExpr &HiExcl,
                      const Facts &F);

/// Rebuilds \p E dropping operations the facts prove redundant:
/// min(a,b) -> a when a <= b is provable (dually max), and
/// a mod b -> a when 0 <= a < b is provable. This is what erases
/// clamp (max/min), mirror (mod + min) and wrap (mod) boundary
/// arithmetic on provably-interior accesses.
AExpr simplifyWithFacts(const AExpr &E, const Facts &F);

/// Non-fatal evaluation: nullopt when a variable is unbound (unlike
/// ArithExpr::evaluate, which is fatal).
std::optional<std::int64_t>
tryEvaluate(const AExpr &E,
            const std::unordered_map<unsigned, std::int64_t> &Env);

//===----------------------------------------------------------------------===//
// Consumer (b): split-divisibility refutation
//===----------------------------------------------------------------------===//

/// Statically refutes the divisibility side condition of every
/// split(m) in \p P against the concrete \p Sizes: returns a
/// human-readable reason when some split's input length L and chunk m
/// both evaluate concretely and L % m != 0 (the program is partial at
/// these sizes — an interpreter or simulator run would fail its
/// divisibility assertion). Returns nullopt when no refutation exists.
/// Requires \p P to be type-checked (split input lengths live in the
/// inferred types); untyped subtrees are skipped conservatively.
std::optional<std::string> refuteSplitDivisibility(
    const ir::Program &P,
    const std::unordered_map<unsigned, std::int64_t> &Sizes);

//===----------------------------------------------------------------------===//
// Consumer (c): static kernel bounds checking
//===----------------------------------------------------------------------===//

/// One access the checker could not prove in bounds.
struct BoundsViolation {
  bool IsStore = false;
  std::string BufferName;
  std::string Index;  ///< the (possibly simplified) index expression
  std::string Extent; ///< the buffer's element count
};

/// Statically checks every Load/Store of \p K: the index must be
/// provably within [0, NumElems) of its buffer under the loop-bound
/// facts (each loop variable in [0, count-1]) and Select guard facts
/// (a guarded branch only runs when its checks hold). With \p Sizes
/// the kernel's size arguments are bound first, making every bound
/// concrete. Returns the unprovable accesses; empty means the kernel
/// is statically memory-safe.
std::vector<BoundsViolation> checkKernelBounds(
    const ocl::Kernel &K,
    const std::unordered_map<unsigned, std::int64_t> *Sizes = nullptr);

/// Renders violations as a human-readable report ("" when clean).
std::string describeViolations(const std::vector<BoundsViolation> &V);

} // namespace analysis
} // namespace lift

#endif // LIFT_ANALYSIS_RANGEANALYSIS_H
