//===- RangeAnalysis.cpp - Symbolic range/refinement analysis ------------===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//

#include "analysis/RangeAnalysis.h"

#include "ir/Types.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace lift {
namespace analysis {

namespace {

using Kind = ArithExpr::Kind;

/// Occurrence count of every variable in \p E (collectVars deduplicates,
/// so the refinement solver counts by hand), plus the Var node itself.
void countVars(const AExpr &E,
               std::unordered_map<unsigned, std::pair<unsigned, AExpr>> &Out) {
  if (E->getKind() == Kind::Var) {
    auto &Slot = Out[E->getVarId()];
    ++Slot.first;
    Slot.second = E;
    return;
  }
  for (const AExpr &Op : E->getOperands())
    countVars(Op, Out);
}

/// The coefficient of \p V at the top level of the canonical sum \p E:
/// +1 when a summand is V itself, -1 when a summand is (-1 * V), 0
/// otherwise (V absent from the top level, or scaled/nested).
int topLevelUnitCoeff(const AExpr &E, const AExpr &V) {
  auto TermCoeff = [&](const AExpr &T) -> int {
    if (exprEquals(T, V))
      return 1;
    if (T->getKind() == Kind::Mul && T->getOperands().size() == 2 &&
        T->getOperands()[0]->isCst(-1) && exprEquals(T->getOperands()[1], V))
      return -1;
    return 0;
  };
  if (E->getKind() != Kind::Add)
    return TermCoeff(E);
  for (const AExpr &T : E->getOperands())
    if (int C = TermCoeff(T))
      return C;
  return 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Facts
//===----------------------------------------------------------------------===//

Facts Facts::withBound(unsigned VarId, AExpr Lo, AExpr Hi) const {
  Facts Out = *this;
  Refinement &R = Out.Refs[VarId];
  if (Lo)
    R.Lo = R.Lo ? amax(R.Lo, std::move(Lo)) : std::move(Lo);
  if (Hi)
    R.Hi = R.Hi ? amin(R.Hi, std::move(Hi)) : std::move(Hi);
  return Out;
}

Facts Facts::withLoopVar(const AExpr &LoopVar, const AExpr &Count) const {
  if (LoopVar->getKind() != Kind::Var)
    fatalError("Facts::withLoopVar needs a Var node");
  // Counts of the form max(c, X) with c <= 0 (the zero-clamped extents
  // of split edge/interior loops) tighten inside the body: iterations
  // exist only when the count is positive, and then max(c, X) == X.
  AExpr Eff = Count;
  if (Count->getKind() == Kind::Max) {
    const auto &Ops = Count->getOperands();
    if (Ops[0]->getKind() == Kind::Cst && Ops[0]->getCst() <= 0)
      Eff = Ops[1];
    else if (Ops[1]->getKind() == Kind::Cst && Ops[1]->getCst() <= 0)
      Eff = Ops[0];
  }
  return withBound(LoopVar->getVarId(), cst(0), sub(Eff, cst(1)));
}

Facts Facts::withSizeEnv(
    const std::unordered_map<unsigned, std::int64_t> &Env) const {
  Facts Out = *this;
  for (const auto &[Id, V] : Env) {
    Refinement &R = Out.Refs[Id];
    R.Lo = cst(V);
    R.Hi = cst(V);
  }
  return Out;
}

Facts Facts::withCheckFact(const AExpr &Idx, const AExpr &Lo,
                           const AExpr &Hi) const {
  std::unordered_map<unsigned, std::pair<unsigned, AExpr>> Occ;
  countVars(Idx, Occ);
  // Prefer the largest id: variables are created outside-in, so the
  // largest is the innermost loop variable — the one worth refining.
  unsigned BestId = 0;
  const AExpr *BestVar = nullptr;
  int BestCoeff = 0;
  for (const auto &[Id, CountAndVar] : Occ) {
    if (CountAndVar.first != 1)
      continue;
    int C = topLevelUnitCoeff(Idx, CountAndVar.second);
    if (C == 0)
      continue;
    if (!BestVar || Id > BestId) {
      BestId = Id;
      BestVar = &CountAndVar.second;
      BestCoeff = C;
    }
  }
  if (!BestVar)
    return *this;
  // Idx = coeff * v + rest. Lo <= Idx <= Hi - 1 solves to bounds on v;
  // the canonicalizer cancels v out of `rest` exactly because it
  // occurred once with unit coefficient.
  AExpr Rest = sub(Idx, mul(cst(BestCoeff), *BestVar));
  AExpr VLo, VHi;
  if (BestCoeff > 0) {
    VLo = sub(Lo, Rest);
    VHi = sub(sub(Hi, cst(1)), Rest);
  } else {
    VLo = sub(Rest, sub(Hi, cst(1)));
    VHi = sub(Rest, Lo);
  }
  return withBound(BestId, std::move(VLo), std::move(VHi));
}

Facts Facts::join(const Facts &Other) const {
  Facts Out;
  for (const auto &[Id, R] : Refs) {
    auto It = Other.Refs.find(Id);
    if (It == Other.Refs.end())
      continue;
    Refinement J;
    if (R.Lo && It->second.Lo)
      J.Lo = amin(R.Lo, It->second.Lo);
    if (R.Hi && It->second.Hi)
      J.Hi = amax(R.Hi, It->second.Hi);
    if (J.Lo || J.Hi)
      Out.Refs[Id] = std::move(J);
  }
  return Out;
}

const Refinement *Facts::refinement(unsigned VarId) const {
  auto It = Refs.find(VarId);
  return It == Refs.end() ? nullptr : &It->second;
}

//===----------------------------------------------------------------------===//
// Symbolic bounds
//===----------------------------------------------------------------------===//

namespace {

/// Recursion state for one bound query: the fact set, the set of
/// variables currently being expanded (cycle guard — two variables may
/// be refined in terms of each other), and a depth fuse. The fallback
/// at every bail-out is the expression itself, which is always a sound
/// bound (E <= E <= E).
/// min/max constructors that collapse when the sign of the difference
/// is decided by the interval domain; the plain factories keep e.g.
/// min(d2, d2 - 1) symbolic, which blocks downstream cancellation.
AExpr tightMin(AExpr A, AExpr B) {
  Range D = sub(A, B)->getRange();
  if (D.atMost(0))
    return A;
  if (D.atLeast(0))
    return B;
  return amin(std::move(A), std::move(B));
}

AExpr tightMax(AExpr A, AExpr B) {
  Range D = sub(A, B)->getRange();
  if (D.atLeast(0))
    return A;
  if (D.atMost(0))
    return B;
  return amax(std::move(A), std::move(B));
}

struct BoundCtx {
  const Facts &F;
  std::unordered_set<unsigned> Active;
  int Depth = 0;

  static constexpr int MaxDepth = 64;

  AExpr bound(const AExpr &E, bool Upper) {
    if (Depth >= MaxDepth)
      return E;
    ++Depth;
    AExpr R = boundImpl(E, Upper);
    --Depth;
    return R;
  }

private:
  AExpr boundImpl(const AExpr &E, bool Upper) {
    switch (E->getKind()) {
    case Kind::Cst:
      return E;
    case Kind::Var: {
      unsigned Id = E->getVarId();
      const Refinement *R = F.refinement(Id);
      if (!R || Active.count(Id))
        return E;
      const AExpr &B = Upper ? R->Hi : R->Lo;
      if (!B)
        return E;
      Active.insert(Id);
      AExpr Out = bound(B, Upper);
      Active.erase(Id);
      return Out;
    }
    case Kind::Add: {
      AExpr Sum = cst(0);
      for (const AExpr &Op : E->getOperands())
        Sum = add(Sum, bound(Op, Upper));
      return Sum;
    }
    case Kind::Mul: {
      // C * f0 * f1 * ...: bound exactly one factor, keep the rest.
      // Sound when every kept symbolic factor is provably >= 0 and the
      // bounding direction accounts for the sign of the constant.
      const auto &Ops = E->getOperands();
      std::int64_t C = 1;
      std::size_t First = 0;
      if (!Ops.empty() && Ops[0]->getKind() == Kind::Cst) {
        C = Ops[0]->getCst();
        First = 1;
      }
      bool FactorUpper = (C < 0) ? !Upper : Upper;
      std::size_t Changed = 0;
      std::vector<AExpr> NewOps;
      NewOps.reserve(Ops.size() - First);
      for (std::size_t I = First; I != Ops.size(); ++I) {
        AExpr B = bound(Ops[I], FactorUpper);
        if (!exprEquals(B, Ops[I]))
          ++Changed;
        NewOps.push_back(std::move(B));
      }
      if (Changed == 0)
        return E;
      if (Changed > 1)
        return E;
      for (std::size_t I = First; I != Ops.size(); ++I)
        if (exprEquals(NewOps[I - First], Ops[I]) &&
            !Ops[I]->getRange().atLeast(0))
          return E;
      AExpr Out = cst(C);
      for (AExpr &Op : NewOps)
        Out = mul(Out, std::move(Op));
      return Out;
    }
    case Kind::Div: {
      // Floor division is monotone in the numerator for a positive
      // constant divisor.
      const AExpr &Num = E->getOperands()[0];
      const AExpr &Den = E->getOperands()[1];
      if (Den->getKind() != Kind::Cst || Den->getCst() < 1)
        return E;
      AExpr B = bound(Num, Upper);
      if (exprEquals(B, Num))
        return E;
      return floorDiv(B, Den);
    }
    case Kind::Mod: {
      // a mod b lies in [0, b-1] for b >= 1.
      const AExpr &Den = E->getOperands()[1];
      AExpr DenLo = bound(Den, /*Upper=*/false);
      if (!DenLo->getRange().atLeast(1))
        return E;
      if (!Upper)
        return cst(0);
      return sub(bound(Den, /*Upper=*/true), cst(1));
    }
    case Kind::Min: {
      AExpr A = bound(E->getOperands()[0], Upper);
      AExpr B = bound(E->getOperands()[1], Upper);
      return tightMin(std::move(A), std::move(B));
    }
    case Kind::Max: {
      AExpr A = bound(E->getOperands()[0], Upper);
      AExpr B = bound(E->getOperands()[1], Upper);
      return tightMax(std::move(A), std::move(B));
    }
    }
    return E;
  }
};

} // namespace

AExpr lowerBound(const AExpr &E, const Facts &F) {
  BoundCtx C{F};
  return C.bound(E, /*Upper=*/false);
}

AExpr upperBound(const AExpr &E, const Facts &F) {
  BoundCtx C{F};
  return C.bound(E, /*Upper=*/true);
}

namespace {

/// Rebuilds \p E with every occurrence of the node \p Target replaced
/// by \p Repl (node identity via structural equality; interning makes
/// equal subtrees one node, so all occurrences are caught).
AExpr replaceNode(const AExpr &E, const AExpr &Target, const AExpr &Repl,
                  std::unordered_map<const ArithExpr *, AExpr> &Memo) {
  if (exprEquals(E, Target))
    return Repl;
  if (E->getOperands().empty())
    return E;
  auto It = Memo.find(E.get());
  if (It != Memo.end())
    return It->second;
  std::vector<AExpr> Ops;
  Ops.reserve(E->getOperands().size());
  for (const AExpr &Op : E->getOperands())
    Ops.push_back(replaceNode(Op, Target, Repl, Memo));
  AExpr Out;
  switch (E->getKind()) {
  case Kind::Add: {
    Out = cst(0);
    for (AExpr &Op : Ops)
      Out = add(Out, std::move(Op));
    break;
  }
  case Kind::Mul: {
    Out = cst(1);
    for (AExpr &Op : Ops)
      Out = mul(Out, std::move(Op));
    break;
  }
  case Kind::Div:
    Out = floorDiv(Ops[0], Ops[1]);
    break;
  case Kind::Mod:
    Out = floorMod(Ops[0], Ops[1]);
    break;
  case Kind::Min:
    Out = amin(Ops[0], Ops[1]);
    break;
  case Kind::Max:
    Out = amax(Ops[0], Ops[1]);
    break;
  default:
    Out = E;
    break;
  }
  Memo.emplace(E.get(), Out);
  return Out;
}

/// First Min/Max node of \p E in pre-order, or nullptr.
AExpr findMinMax(const AExpr &E) {
  if (E->getKind() == Kind::Min || E->getKind() == Kind::Max)
    return E;
  for (const AExpr &Op : E->getOperands())
    if (AExpr M = findMinMax(Op))
      return M;
  return nullptr;
}

bool containsNode(const AExpr &E, const AExpr &T) {
  if (exprEquals(E, T))
    return true;
  for (const AExpr &Op : E->getOperands())
    if (containsNode(Op, T))
      return true;
  return false;
}

constexpr int CtxInc = 1, CtxDec = 2, CtxUnknown = 4;

/// Accumulates a bitmask of the monotonicity contexts in which the atom
/// \p M occurs within \p E: increasing, decreasing, or unknown. Add and
/// Min/Max preserve the sign; a Mul flips it with a negative leading
/// constant and is only sign-definite when the co-factors are provably
/// nonnegative; Div keeps it for positive constant divisors; Mod loses
/// it.
void collectCtx(const AExpr &E, const AExpr &M, int Sign, int &Out) {
  if (exprEquals(E, M)) {
    Out |= Sign > 0 ? CtxInc : Sign < 0 ? CtxDec : CtxUnknown;
    return;
  }
  switch (E->getKind()) {
  case Kind::Add:
  case Kind::Min:
  case Kind::Max:
    for (const AExpr &Op : E->getOperands())
      if (containsNode(Op, M))
        collectCtx(Op, M, Sign, Out);
    return;
  case Kind::Mul: {
    const auto &Ops = E->getOperands();
    int S = Sign;
    std::size_t First = 0;
    if (!Ops.empty() && Ops[0]->getKind() == Kind::Cst) {
      if (Ops[0]->getCst() < 0)
        S = -S;
      First = 1;
    }
    for (std::size_t I = First; I != Ops.size(); ++I) {
      if (!containsNode(Ops[I], M))
        continue;
      bool OthersNonNeg = true;
      for (std::size_t J = First; J != Ops.size(); ++J)
        if (J != I && !Ops[J]->getRange().atLeast(0))
          OthersNonNeg = false;
      collectCtx(Ops[I], M, OthersNonNeg ? S : 0, Out);
    }
    return;
  }
  case Kind::Div: {
    const AExpr &Num = E->getOperands()[0];
    const AExpr &Den = E->getOperands()[1];
    bool DenOk = Den->getKind() == Kind::Cst && Den->getCst() >= 1;
    if (containsNode(Num, M))
      collectCtx(Num, M, DenOk ? Sign : 0, Out);
    if (containsNode(Den, M))
      collectCtx(Den, M, 0, Out);
    return;
  }
  default:
    for (const AExpr &Op : E->getOperands())
      if (containsNode(Op, M))
        collectCtx(Op, M, 0, Out);
    return;
  }
}

bool proveNonNeg(const AExpr &E, int Budget);

/// Factoring rule for flat sums the interval domain cannot correlate,
/// e.g. d0*d1 - d1 (>= 0 because it is d1 * (d0 - 1)): pick a
/// provably-nonnegative variable V, split the sum as V * Q + R, and
/// prove Q >= 0 and R >= 0 separately.
bool proveNonNegByFactoring(const AExpr &E, int Budget) {
  if (E->getKind() != Kind::Add)
    return false;
  // Candidate factors: variables occurring as a direct multiplicand of
  // some summand, nonnegative by declared range, in id order for
  // determinism.
  std::vector<AExpr> Cands;
  auto Consider = [&](const AExpr &V) {
    if (V->getKind() != Kind::Var || !V->getRange().atLeast(0))
      return;
    for (const AExpr &C : Cands)
      if (exprEquals(C, V))
        return;
    Cands.push_back(V);
  };
  for (const AExpr &T : E->getOperands()) {
    if (T->getKind() == Kind::Var)
      Consider(T);
    else if (T->getKind() == Kind::Mul)
      for (const AExpr &F : T->getOperands())
        Consider(F);
  }
  for (const AExpr &V : Cands) {
    AExpr Q = cst(0), R = cst(0);
    for (const AExpr &T : E->getOperands()) {
      if (exprEquals(T, V)) {
        Q = add(Q, cst(1));
        continue;
      }
      AExpr Quot;
      if (T->getKind() == Kind::Mul) {
        // Remove one occurrence of V from the product.
        std::size_t Hit = T->getOperands().size();
        for (std::size_t I = 0; I != T->getOperands().size(); ++I)
          if (exprEquals(T->getOperands()[I], V)) {
            Hit = I;
            break;
          }
        if (Hit != T->getOperands().size()) {
          Quot = cst(1);
          for (std::size_t I = 0; I != T->getOperands().size(); ++I)
            if (I != Hit)
              Quot = mul(Quot, T->getOperands()[I]);
        }
      }
      if (Quot)
        Q = add(Q, Quot);
      else
        R = add(R, T);
    }
    if (Q->isCst(0))
      continue;
    if (proveNonNeg(Q, Budget - 1) && proveNonNeg(R, Budget - 1))
      return true;
  }
  return false;
}

/// Proves E >= 0 for all assignments (of an already var-bounded
/// expression) by interval analysis, factoring, plus case-splitting on
/// Min/Max atoms: pointwise, min(a,b) and max(a,b) each equal one of
/// their operands, so E >= 0 follows when both substitutions prove.
bool proveNonNeg(const AExpr &E, int Budget) {
  if (E->getRange().atLeast(0))
    return true;
  if (Budget <= 0)
    return false;
  if (proveNonNegByFactoring(E, Budget))
    return true;
  AExpr M = findMinMax(E);
  if (!M)
    return false;
  const AExpr &A = M->getOperands()[0];
  const AExpr &B = M->getOperands()[1];
  // One-branch rule: when E is monotone decreasing in a Min atom (or
  // increasing in a Max atom), substituting EITHER operand only moves E
  // down — min(a,b) <= a and <= b pointwise — so a single provable
  // branch suffices, and the branch constraint (a <= b) is never
  // needed.
  int Ctx = 0;
  collectCtx(E, M, +1, Ctx);
  if ((M->getKind() == Kind::Min && Ctx == CtxDec) ||
      (M->getKind() == Kind::Max && Ctx == CtxInc)) {
    for (const AExpr &Op : M->getOperands()) {
      std::unordered_map<const ArithExpr *, AExpr> Memo;
      if (proveNonNeg(replaceNode(E, M, Op, Memo), Budget - 1))
        return true;
    }
  }
  for (const AExpr &Op : M->getOperands()) {
    // Skip branches that can never be the extremum: min(a,b) = a
    // requires a <= b somewhere, so if a - b >= 1 everywhere the
    // a-branch is vacuous (dually for max).
    const AExpr &Other = (Op.get() == A.get()) ? B : A;
    Range DR = sub(Op, Other)->getRange();
    if (M->getKind() == Kind::Min ? DR.atLeast(1) : DR.atMost(-1))
      continue;
    std::unordered_map<const ArithExpr *, AExpr> Memo;
    if (!proveNonNeg(replaceNode(E, M, Op, Memo), Budget - 1))
      return false;
  }
  return true;
}

} // namespace

bool provablyLE(const AExpr &A, const AExpr &B, const Facts &F) {
  // The declared variable ranges may already settle it.
  AExpr D = sub(B, A);
  if (D->getRange().atLeast(0))
    return true;
  // Bound the *difference*: canonicalization has already cancelled the
  // terms shared by A and B, so the refinements only need to cover what
  // genuinely differs. Residual Min/Max atoms (clamped extents, edge
  // bounds) are discharged by case-splitting.
  if (proveNonNeg(lowerBound(D, F), 6))
    return true;
  // Last resort: bound each side separately.
  AExpr Gap = sub(lowerBound(B, F), upperBound(A, F));
  return proveNonNeg(Gap, 6);
}

bool provablyInBounds(const AExpr &I, const AExpr &Lo, const AExpr &HiExcl,
                      const Facts &F) {
  return provablyLE(Lo, I, F) && provablyLE(I, sub(HiExcl, cst(1)), F);
}

//===----------------------------------------------------------------------===//
// Fact-driven simplification
//===----------------------------------------------------------------------===//

namespace {

AExpr simplifyRec(const AExpr &E, const Facts &F,
                  std::unordered_map<const ArithExpr *, AExpr> &Memo) {
  auto It = Memo.find(E.get());
  if (It != Memo.end())
    return It->second;

  AExpr Out;
  switch (E->getKind()) {
  case Kind::Cst:
  case Kind::Var:
    Out = E;
    break;
  case Kind::Add: {
    Out = cst(0);
    for (const AExpr &Op : E->getOperands())
      Out = add(Out, simplifyRec(Op, F, Memo));
    break;
  }
  case Kind::Mul: {
    Out = cst(1);
    for (const AExpr &Op : E->getOperands())
      Out = mul(Out, simplifyRec(Op, F, Memo));
    break;
  }
  case Kind::Div: {
    AExpr A = simplifyRec(E->getOperands()[0], F, Memo);
    AExpr B = simplifyRec(E->getOperands()[1], F, Memo);
    Out = floorDiv(std::move(A), std::move(B));
    break;
  }
  case Kind::Mod: {
    AExpr A = simplifyRec(E->getOperands()[0], F, Memo);
    AExpr B = simplifyRec(E->getOperands()[1], F, Memo);
    // a mod b == a whenever 0 <= a < b.
    if (provablyInBounds(A, cst(0), B, F))
      Out = A;
    else
      Out = floorMod(std::move(A), std::move(B));
    break;
  }
  case Kind::Min: {
    AExpr A = simplifyRec(E->getOperands()[0], F, Memo);
    AExpr B = simplifyRec(E->getOperands()[1], F, Memo);
    if (provablyLE(A, B, F))
      Out = A;
    else if (provablyLE(B, A, F))
      Out = B;
    else
      Out = amin(std::move(A), std::move(B));
    break;
  }
  case Kind::Max: {
    AExpr A = simplifyRec(E->getOperands()[0], F, Memo);
    AExpr B = simplifyRec(E->getOperands()[1], F, Memo);
    if (provablyLE(B, A, F))
      Out = A;
    else if (provablyLE(A, B, F))
      Out = B;
    else
      Out = amax(std::move(A), std::move(B));
    break;
  }
  }
  Memo.emplace(E.get(), Out);
  return Out;
}

} // namespace

AExpr simplifyWithFacts(const AExpr &E, const Facts &F) {
  std::unordered_map<const ArithExpr *, AExpr> Memo;
  return simplifyRec(E, F, Memo);
}

//===----------------------------------------------------------------------===//
// Non-fatal evaluation
//===----------------------------------------------------------------------===//

std::optional<std::int64_t>
tryEvaluate(const AExpr &E,
            const std::unordered_map<unsigned, std::int64_t> &Env) {
  auto Floor = [](std::int64_t A, std::int64_t B,
                  bool Mod) -> std::optional<std::int64_t> {
    if (B == 0)
      return std::nullopt;
    std::int64_t Q = A / B;
    std::int64_t R = A % B;
    if (R != 0 && ((R < 0) != (B < 0))) {
      --Q;
      R += B;
    }
    return Mod ? R : Q;
  };
  switch (E->getKind()) {
  case Kind::Cst:
    return E->getCst();
  case Kind::Var: {
    auto It = Env.find(E->getVarId());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case Kind::Add: {
    std::int64_t S = 0;
    for (const AExpr &Op : E->getOperands()) {
      auto V = tryEvaluate(Op, Env);
      if (!V)
        return std::nullopt;
      S += *V;
    }
    return S;
  }
  case Kind::Mul: {
    std::int64_t P = 1;
    for (const AExpr &Op : E->getOperands()) {
      auto V = tryEvaluate(Op, Env);
      if (!V)
        return std::nullopt;
      P *= *V;
    }
    return P;
  }
  case Kind::Div:
  case Kind::Mod: {
    auto A = tryEvaluate(E->getOperands()[0], Env);
    auto B = tryEvaluate(E->getOperands()[1], Env);
    if (!A || !B)
      return std::nullopt;
    return Floor(*A, *B, E->getKind() == Kind::Mod);
  }
  case Kind::Min:
  case Kind::Max: {
    auto A = tryEvaluate(E->getOperands()[0], Env);
    auto B = tryEvaluate(E->getOperands()[1], Env);
    if (!A || !B)
      return std::nullopt;
    return E->getKind() == Kind::Min ? std::min(*A, *B) : std::max(*A, *B);
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Split-divisibility refutation
//===----------------------------------------------------------------------===//

namespace {

void refuteWalk(const ir::ExprPtr &E,
                const std::unordered_map<unsigned, std::int64_t> &Sizes,
                std::optional<std::string> &Out) {
  if (!E || Out)
    return;
  if (const auto *L = ir::dynCast<ir::LambdaExpr>(E)) {
    refuteWalk(L->getBody(), Sizes, Out);
    return;
  }
  const auto *C = ir::dynCast<ir::CallExpr>(E);
  if (!C)
    return;
  if (C->getPrim() == ir::Prim::Split && !C->getArgs().empty()) {
    // The divisibility side condition lives on the *input* length: the
    // result type [[T]m]{n/m} only exists when m | n.
    const ir::TypePtr &InTy = C->getArgs().back()->getType();
    if (InTy && InTy->getKind() == ir::Type::Kind::Array && C->Factor) {
      auto L = tryEvaluate(InTy->getSize(), Sizes);
      auto M = tryEvaluate(C->Factor, Sizes);
      if (L && M && (*M <= 0 || *L % *M != 0)) {
        char Buf[256];
        std::snprintf(Buf, sizeof(Buf),
                      "split(%lld) does not divide input length %s = %lld "
                      "(remainder %lld)",
                      (long long)*M, InTy->getSize()->toString().c_str(),
                      (long long)*L,
                      (long long)(*M > 0 ? *L % *M : *L));
        Out = Buf;
        return;
      }
    }
  }
  for (const ir::ExprPtr &A : C->getArgs())
    refuteWalk(A, Sizes, Out);
}

} // namespace

std::optional<std::string> refuteSplitDivisibility(
    const ir::Program &P,
    const std::unordered_map<unsigned, std::int64_t> &Sizes) {
  std::optional<std::string> Out;
  if (P)
    refuteWalk(P->getBody(), Sizes, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Static kernel bounds checking
//===----------------------------------------------------------------------===//

namespace {

struct BoundsChecker {
  const ocl::Kernel &K;
  const std::unordered_map<unsigned, AExpr> *Subst; // SizeEnv, as exprs
  std::vector<BoundsViolation> Violations;

  AExpr inst(const AExpr &E) const {
    if (!E)
      return E;
    return Subst ? substitute(E, *Subst) : E;
  }

  void checkAccess(bool IsStore, int BufferId, const AExpr &Index,
                   const Facts &F) {
    const ocl::BufferDecl &B = K.buffer(BufferId);
    AExpr Idx = simplifyWithFacts(inst(Index), F);
    AExpr N = inst(B.NumElems);
    if (provablyInBounds(Idx, cst(0), N, F))
      return;
    Violations.push_back(
        {IsStore, B.Name, Idx->toString(), N->toString()});
  }

  void checkExpr(const ocl::KExprPtr &E, const Facts &F) {
    if (!E)
      return;
    switch (E->K) {
    case ocl::KExpr::Kind::ConstScalar:
    case ocl::KExpr::Kind::IndexVal:
    case ocl::KExpr::Kind::ReadVar:
      return;
    case ocl::KExpr::Kind::Load:
      checkAccess(/*IsStore=*/false, E->BufferId, E->Index, F);
      return;
    case ocl::KExpr::Kind::CallUF:
      for (const ocl::KExprPtr &A : E->Args)
        checkExpr(A, F);
      return;
    case ocl::KExpr::Kind::Select: {
      // The Then branch only executes when every check holds — learn
      // each Lo <= Idx < Hi as a refinement for its analysis.
      Facts ThenF = F;
      for (const ocl::BoundsCheck &C : E->Checks)
        ThenF = ThenF.withCheckFact(inst(C.Idx), inst(C.Lo), inst(C.Hi));
      checkExpr(E->Then, ThenF);
      checkExpr(E->Else, F);
      return;
    }
    }
  }

  void checkStmt(const ocl::StmtPtr &S, const Facts &F) {
    switch (S->K) {
    case ocl::Stmt::Kind::Store:
      checkAccess(/*IsStore=*/true, S->BufferId, S->Index, F);
      checkExpr(S->Value, F);
      return;
    case ocl::Stmt::Kind::AssignVar:
      checkExpr(S->Value, F);
      return;
    case ocl::Stmt::Kind::Barrier:
      return;
    case ocl::Stmt::Kind::Loop: {
      Facts LoopF = F.withLoopVar(S->LoopVar, inst(S->Count));
      for (const ocl::StmtPtr &B : S->Body)
        checkStmt(B, LoopF);
      return;
    }
    }
  }
};

} // namespace

std::vector<BoundsViolation> checkKernelBounds(
    const ocl::Kernel &K,
    const std::unordered_map<unsigned, std::int64_t> *Sizes) {
  std::unordered_map<unsigned, AExpr> Subst;
  if (Sizes)
    for (const auto &[Id, V] : *Sizes)
      Subst.emplace(Id, cst(V));
  BoundsChecker C{K, Sizes ? &Subst : nullptr, {}};
  Facts F;
  for (const ocl::StmtPtr &S : K.Body)
    C.checkStmt(S, F);
  return C.Violations;
}

std::string describeViolations(const std::vector<BoundsViolation> &V) {
  std::string Out;
  for (const BoundsViolation &B : V) {
    Out += B.IsStore ? "store" : "load";
    Out += " of buffer '" + B.BufferName + "': index " + B.Index +
           " not provably within [0, " + B.Extent + ")\n";
  }
  return Out;
}

} // namespace analysis
} // namespace lift
