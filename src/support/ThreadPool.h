//===- ThreadPool.h - Work-stealing thread pool ----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread-pool executor shared by every
/// evaluation-heavy path in the repo: the parallel NDRange simulator
/// shards independent work-groups across workers, and the auto-tuner
/// lowers/compiles/simulates candidates concurrently.
///
/// Design:
///  * parallelFor(N, Body) runs Body(I) for every I in [0, N). The
///    index space is split into per-worker contiguous ranges; each
///    worker claims small blocks from the front of its own range and,
///    when it runs dry, steals the back half of the largest remaining
///    victim range. Contiguous blocks keep per-item state (simulator
///    shards, tuner candidates) cache-friendly.
///  * The calling thread participates as a worker, so a pool of W
///    workers uses W-1 background threads and never idles the caller.
///  * Nested parallelFor calls from inside a pool task run inline
///    (sequentially) on the calling worker: the outer loop already owns
///    the pool's parallelism, and the simulator/tuner composition
///    (parallel tuner -> per-candidate simulation) relies on this to
///    avoid oversubscription and deadlock.
///  * Scheduling is non-deterministic; DETERMINISM IS THE CALLER'S
///    CONTRACT: parallelFor imposes no ordering, so callers must make
///    their merge steps order-independent (the simulator merges
///    per-shard counters by summation and replays cache traces in
///    shard-index order; the tuner reduces argmin by candidate index).
///  * The first exception thrown by a task is captured and rethrown on
///    the calling thread after the loop drains (fatalError paths abort
///    the process directly, as in sequential execution).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_THREADPOOL_H
#define LIFT_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lift {

/// A work-stealing pool of persistent worker threads.
class ThreadPool {
public:
  /// Creates a pool with \p Workers logical workers (including the
  /// caller of parallelFor). 0 means hardwareConcurrency().
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Logical worker count (background threads + the calling thread).
  unsigned workers() const { return NumWorkers; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareConcurrency();

  /// A process-wide pool sized to the hardware, created on first use
  /// and intentionally leaked (workers may be referenced from static
  /// destructors otherwise).
  static ThreadPool &shared();

  /// True while the current thread is executing a parallelFor task (on
  /// any pool). Used to run nested parallel loops inline.
  static bool insideTask();

  /// Stable worker index of the current thread, for trace/metric
  /// attribution: the I-th spawned background worker of its pool
  /// returns I (in [1, workers())), fixed at spawn time and
  /// independent of which loop ranges it later claims or steals.
  /// Threads that are not pool workers — including the caller of
  /// parallelFor, which participates as logical worker 0 — return 0.
  /// Background threads are also named "lift-wI" at the OS level so
  /// native profilers agree with the trace rows.
  static unsigned workerIndex();

  /// Runs Body(I) for every I in [0, N), using at most
  /// min(MaxParallelism, workers()) threads (0 = no extra cap). Blocks
  /// until every iteration has finished. Calls from inside a pool task
  /// run inline on the current thread.
  void parallelFor(std::size_t N, const std::function<void(std::size_t)> &Body,
                   unsigned MaxParallelism = 0);

private:
  /// One worker's claimable range of the current loop. Claims and
  /// steals take M; the victim-selection scan reads Next/End without it
  /// (hence atomics), tolerating stale values and revalidating under M.
  struct WorkerRange {
    std::mutex M;
    std::atomic<std::size_t> Next{0};
    std::atomic<std::size_t> End{0};
    WorkerRange() = default;
    WorkerRange(const WorkerRange &) {}
  };

  /// State of one parallelFor invocation.
  struct Job {
    const std::function<void(std::size_t)> *Body = nullptr;
    std::vector<WorkerRange> Ranges;
    std::size_t Grain = 1;
    std::size_t Remaining = 0; ///< items not yet completed (under DoneM)
    unsigned MaxActive = 0;    ///< cap on participating workers
    unsigned Active = 0;       ///< workers currently participating
    std::mutex DoneM;
    std::condition_variable DoneCV;
    std::exception_ptr FirstError; ///< under DoneM
  };

  void workerLoop();
  void runJob(Job &J, unsigned SelfIndex);
  bool claimBlock(Job &J, unsigned SelfIndex, std::size_t &Lo,
                  std::size_t &Hi);

  unsigned NumWorkers = 1;
  std::vector<std::thread> Threads;

  std::mutex LoopM; ///< serializes top-level parallelFor calls

  std::mutex JobM;
  std::condition_variable JobCV;
  std::condition_variable IdleCV; ///< signalled when a worker leaves a job
  Job *Current = nullptr;         ///< under JobM
  std::uint64_t JobSeq = 0;       ///< bumped per job, under JobM
  unsigned InFlight = 0;          ///< workers inside runJob, under JobM
  bool ShuttingDown = false;      ///< under JobM
};

} // namespace lift

#endif // LIFT_SUPPORT_THREADPOOL_H
