//===- Support.h - Common support utilities -------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small project-wide utilities: fatal-error reporting, unreachable
/// markers, hashing helpers, and a deterministic random number source
/// used by property tests and the tuner.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_SUPPORT_SUPPORT_H
#define LIFT_SUPPORT_SUPPORT_H

#include <cstdint>
#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>

namespace lift {

/// Base class for errors a caller may legitimately want to catch and
/// recover from: malformed programs fed to the type checker or the
/// interpreter by generative tooling (fuzzers, search). Invariant
/// violations that indicate compiler bugs keep going through
/// fatalError; precondition violations on *input* programs throw a
/// subclass of this instead, so Release builds fail cleanly rather
/// than running into UB once asserts vanish under NDEBUG.
class RecoverableError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Reports an unrecoverable usage or internal error and terminates.
///
/// Library code uses this only for broken invariants that indicate a bug
/// in the caller (malformed IR, ill-typed expressions); it never fires on
/// valid programs.
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a code path that must be unreachable when program invariants
/// hold. Prints \p Message and aborts.
[[noreturn]] void unreachable(const char *Message);

/// Combines a new value into a running hash (boost::hash_combine-style).
inline std::size_t hashCombine(std::size_t Seed, std::size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

/// Mathematical floor division (rounds toward negative infinity).
///
/// All symbolic index arithmetic in the compiler uses floor semantics so
/// that algebraic simplification identities hold for every operand sign.
inline std::int64_t floorDivInt(std::int64_t A, std::int64_t B) {
  std::int64_t Quotient = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Quotient;
  return Quotient;
}

/// Mathematical floor modulo; the result has the sign of \p B.
inline std::int64_t floorModInt(std::int64_t A, std::int64_t B) {
  return A - floorDivInt(A, B) * B;
}

/// A deterministic random source with convenience helpers.
///
/// Used by property tests (seeded per test) and the tuner's random
/// search so every run is reproducible.
class RandomSource {
public:
  explicit RandomSource(std::uint64_t Seed) : Engine(Seed) {}

  /// Returns a uniform integer in [Lo, Hi] (inclusive).
  std::int64_t nextInt(std::int64_t Lo, std::int64_t Hi) {
    std::uniform_int_distribution<std::int64_t> Dist(Lo, Hi);
    return Dist(Engine);
  }

  /// Returns a uniform float in [Lo, Hi).
  float nextFloat(float Lo, float Hi) {
    std::uniform_real_distribution<float> Dist(Lo, Hi);
    return Dist(Engine);
  }

  /// Returns true with probability \p P.
  bool nextBool(double P = 0.5) {
    std::bernoulli_distribution Dist(P);
    return Dist(Engine);
  }

  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace lift

#endif // LIFT_SUPPORT_SUPPORT_H
