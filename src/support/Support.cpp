//===- Support.cpp - Common support utilities ----------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "support/Support.h"

#include <cstdio>

void lift::fatalError(const std::string &Message) {
  std::fprintf(stderr, "lift fatal error: %s\n", Message.c_str());
  std::abort();
}

void lift::unreachable(const char *Message) {
  std::fprintf(stderr, "lift unreachable: %s\n", Message);
  std::abort();
}
