//===- ThreadPool.cpp - Work-stealing thread pool -------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <string>

#if defined(__linux__)
#include <pthread.h>
#endif

using namespace lift;

namespace {
/// Set while the current thread executes a pool task; nested
/// parallelFor calls check it to run inline.
thread_local bool InsidePoolTask = false;

/// Spawn-order index of the current background worker (0 when the
/// thread is not a pool worker). Fixed for the thread's lifetime, so
/// trace events attribute work to stable rows even though the
/// work-stealing loop hands out ranges dynamically.
thread_local unsigned PoolWorkerIndex = 0;
} // namespace

unsigned ThreadPool::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool &ThreadPool::shared() {
  // Leaked intentionally, like ArithCtx::global(): tests and tools may
  // run pool work from static teardown paths.
  static ThreadPool *Pool = new ThreadPool();
  return *Pool;
}

bool ThreadPool::insideTask() { return InsidePoolTask; }

unsigned ThreadPool::workerIndex() { return PoolWorkerIndex; }

ThreadPool::ThreadPool(unsigned Workers) {
  NumWorkers = Workers == 0 ? hardwareConcurrency() : Workers;
  // The caller of parallelFor is worker 0; spawn the rest with their
  // stable spawn-order indices.
  for (unsigned I = 1; I < NumWorkers; ++I)
    Threads.emplace_back([this, I] {
      PoolWorkerIndex = I;
#if defined(__linux__)
      // Visible in top -H, perf and native profilers (15-char limit).
      std::string Name = "lift-w" + std::to_string(I);
      pthread_setname_np(pthread_self(), Name.c_str());
#endif
      workerLoop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(JobM);
    ShuttingDown = true;
  }
  JobCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerLoop() {
  std::uint64_t SeenSeq = 0;
  while (true) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(JobM);
      JobCV.wait(Lock, [&] {
        return ShuttingDown || (Current != nullptr && JobSeq != SeenSeq);
      });
      if (ShuttingDown)
        return;
      SeenSeq = JobSeq;
      if (Current->Active >= Current->MaxActive)
        continue; // parallelism cap reached; sleep until the next job
      ++Current->Active;
      ++InFlight;
      J = Current;
    }
    // Background workers own no pre-assigned range (ranges belong to
    // logical indices filled by steals), so start in stealing mode.
    runJob(*J, unsigned(J->Ranges.size()));
    {
      std::lock_guard<std::mutex> Lock(JobM);
      --InFlight;
    }
    IdleCV.notify_all();
  }
}

/// Claims up to Grain items: first from the front of the worker's own
/// range, else by stealing a block from the back of the fullest victim
/// range. Returns false when every item is claimed.
bool ThreadPool::claimBlock(Job &J, unsigned SelfIndex, std::size_t &Lo,
                            std::size_t &Hi) {
  if (SelfIndex < J.Ranges.size()) {
    WorkerRange &R = J.Ranges[SelfIndex];
    std::lock_guard<std::mutex> Lock(R.M);
    std::size_t Next = R.Next.load(std::memory_order_relaxed);
    std::size_t End = R.End.load(std::memory_order_relaxed);
    if (Next < End) {
      Lo = Next;
      Hi = std::min(End, Next + J.Grain);
      R.Next.store(Hi, std::memory_order_relaxed);
      return true;
    }
  }
  while (true) {
    // Pick the victim with the most remaining work. The scan reads the
    // ranges without their locks (atomically, values may be stale); the
    // claim below revalidates under the victim's lock.
    std::size_t BestVictim = J.Ranges.size(), BestLeft = 0;
    for (std::size_t V = 0; V != J.Ranges.size(); ++V) {
      if (V == SelfIndex)
        continue;
      std::size_t Next = J.Ranges[V].Next.load(std::memory_order_relaxed);
      std::size_t End = J.Ranges[V].End.load(std::memory_order_relaxed);
      std::size_t Left = End > Next ? End - Next : 0;
      if (Left > BestLeft) {
        BestLeft = Left;
        BestVictim = V;
      }
    }
    if (BestVictim == J.Ranges.size())
      return false; // everything claimed
    WorkerRange &V = J.Ranges[BestVictim];
    std::lock_guard<std::mutex> Lock(V.M);
    std::size_t Next = V.Next.load(std::memory_order_relaxed);
    std::size_t End = V.End.load(std::memory_order_relaxed);
    if (Next >= End)
      continue; // raced with the owner; rescan
    std::size_t Take = std::min(J.Grain, End - Next);
    Lo = End - Take;
    Hi = End;
    V.End.store(Lo, std::memory_order_relaxed);
    return true;
  }
}

void ThreadPool::runJob(Job &J, unsigned SelfIndex) {
  bool WasInside = InsidePoolTask;
  InsidePoolTask = true;
  std::size_t Done = 0;
  std::size_t Lo = 0, Hi = 0;
  while (claimBlock(J, SelfIndex, Lo, Hi)) {
    for (std::size_t I = Lo; I != Hi; ++I) {
      try {
        (*J.Body)(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(J.DoneM);
        if (!J.FirstError)
          J.FirstError = std::current_exception();
      }
    }
    Done += Hi - Lo;
  }
  InsidePoolTask = WasInside;
  if (Done != 0) {
    std::lock_guard<std::mutex> Lock(J.DoneM);
    J.Remaining -= Done;
    if (J.Remaining == 0)
      J.DoneCV.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t N,
                             const std::function<void(std::size_t)> &Body,
                             unsigned MaxParallelism) {
  if (N == 0)
    return;
  unsigned Par = NumWorkers;
  if (MaxParallelism != 0)
    Par = std::min(Par, MaxParallelism);
  // Inline when there is nothing to parallelize over, or when already
  // running inside a pool task (the outer loop owns the parallelism).
  if (Par <= 1 || N == 1 || InsidePoolTask) {
    bool WasInside = InsidePoolTask;
    InsidePoolTask = true;
    for (std::size_t I = 0; I != N; ++I)
      Body(I);
    InsidePoolTask = WasInside;
    return;
  }

  // One top-level loop at a time; concurrent outside callers queue here.
  std::lock_guard<std::mutex> LoopLock(LoopM);

  Job J;
  J.Body = &Body;
  unsigned NumRanges = unsigned(std::min<std::size_t>(Par, N));
  J.Ranges = std::vector<WorkerRange>(NumRanges);
  // Small blocks give stealing granularity; ~8 blocks per worker keeps
  // claim overhead negligible while smoothing imbalanced item costs.
  J.Grain = std::max<std::size_t>(1, N / (std::size_t(NumRanges) * 8));
  std::size_t Chunk = N / NumRanges, Extra = N % NumRanges;
  std::size_t Pos = 0;
  for (unsigned R = 0; R != NumRanges; ++R) {
    std::size_t Len = Chunk + (R < Extra ? 1 : 0);
    J.Ranges[R].Next.store(Pos, std::memory_order_relaxed);
    J.Ranges[R].End.store(Pos + Len, std::memory_order_relaxed);
    Pos += Len;
  }
  J.Remaining = N;
  J.MaxActive = Par - 1; // background workers; the caller always joins

  {
    std::lock_guard<std::mutex> Lock(JobM);
    Current = &J;
    ++JobSeq;
  }
  JobCV.notify_all();

  // The caller participates as the owner of range 0.
  runJob(J, 0);

  {
    std::unique_lock<std::mutex> Lock(J.DoneM);
    J.DoneCV.wait(Lock, [&] { return J.Remaining == 0; });
  }
  // Wait for late-waking workers to leave runJob before J goes out of
  // scope, then retract the job pointer.
  {
    std::unique_lock<std::mutex> Lock(JobM);
    Current = nullptr;
    IdleCV.wait(Lock, [&] { return InFlight == 0; });
  }
  if (J.FirstError)
    std::rethrow_exception(J.FirstError);
}
