//===- Tuner.h - Constraint-aware auto-tuning ------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auto-tuning substrate standing in for ATF + OpenTuner (paper
/// §6): enumerates the implementation space spanned by the lowering
/// options (tiling on/off + tile size, local memory, unrolling, thread
/// coarsening) and launch parameters (work-group size), subject to
/// OpenCL-style constraints (divisibility of grid extents, local-memory
/// capacity, tile/step alignment), and picks the variant with the best
/// predicted runtime on a given device model.
///
/// Evaluation protocol: each candidate is lowered, compiled once and
/// *executed* on the instrumented simulator over a reduced measurement
/// grid; measured event counts are scaled per-element to the paper's
/// target grid, the modeled cache is scaled by the working-set ratio
/// (a stencil's reuse window grows with the fast dimensions), and the
/// device timing model converts counts into a predicted runtime.
/// Simulation is deterministic, so unlike the paper's three hours of
/// wall-clock tuning per benchmark, exhaustive search is exact.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TUNER_TUNER_H
#define LIFT_TUNER_TUNER_H

#include "ocl/Device.h"
#include "rewrite/Lowering.h"
#include "stencil/Benchmarks.h"

#include <cstdint>

namespace lift {
namespace tuner {

/// One point of the search space: IR-level options + launch knobs.
struct Candidate {
  rewrite::LoweringOptions Options;
  ocl::LaunchParams Launch;

  /// e.g. "tiled16-local/wg128".
  std::string describe() const;
};

/// The dimensions of the search space. The default space is Lift's;
/// ppcgSpace() restricts it to PPCG's always-tiled schedules.
struct TuningSpace {
  bool AllowUntiled = true;
  bool AllowTiling = true;
  bool AllowLocalMem = true;
  /// Generate only local-memory-staged tiled variants (PPCG's default
  /// schedule always stages tiles in shared memory).
  bool LocalMemOnly = false;
  bool AllowUnroll = true;
  // Lift's space strictly contains PPCG's tiled schedules, so tuned
  // Lift can never lose to tuned PPCG — as in the paper.
  std::vector<std::int64_t> TileOutputs = {8, 16, 32, 64};
  std::vector<std::int64_t> TileCoarsenFactors = {1, 2, 4, 8, 16};
  std::vector<std::int64_t> CoarsenFactors = {1, 2, 4};
  std::vector<std::int64_t> WorkGroupSizes = {64, 128, 256};
};

/// Lift's full space.
TuningSpace liftSpace();

/// A PPCG-like space: rectangular overlapped tiling with shared-memory
/// staging is always applied (the polyhedral default schedule), with
/// tile sizes and per-thread sequential work tunable, but no untiled
/// alternative.
TuningSpace ppcgSpace();

/// A tuning task: one benchmark at one target size. Always construct
/// via makeProblem: the built Instance is shared read-only by every
/// candidate evaluation (and every tuner thread), which keeps size-
/// variable identities consistent so structurally equal lowerings of
/// different candidates can share one simulation.
struct TuningProblem {
  const stencil::Benchmark *B = nullptr;
  stencil::BenchmarkInstance Instance; ///< built once, shared read-only
  stencil::Extents Measure; ///< reduced grid executed on the simulator
  stencil::Extents Target;  ///< the paper's grid (counts scaled to it)
  std::vector<std::vector<float>> Inputs; ///< measurement inputs
};

/// Builds a problem for the benchmark's small or large target size.
TuningProblem makeProblem(const stencil::Benchmark &B, bool LargeTarget);

/// The quantity the search minimizes. Modeled is the classic flow:
/// counters from the instrumented simulator through the device timing
/// model. Measured additionally compiles every valid candidate with
/// the native backend (native/NativeRunner.h) and ranks by real
/// wall-clock seconds on the measurement grid; the modeled time is
/// still computed and recorded so flight records can compare the two.
enum class Objective {
  Modeled,
  Measured,
};

/// One evaluated candidate.
struct Evaluated {
  Candidate C;
  ocl::Timing T;
  bool Valid = false;
  /// Valid == false only: the stable prune-reason name (the same
  /// string used by the "tuner.prune.<name>" metrics), so callers can
  /// report *why* a configuration is absent instead of dropping it
  /// silently.
  std::string WhyNot;
  /// True when the simulation was shared with an earlier structurally
  /// identical candidate instead of being executed again.
  bool FromMemo = false;
  /// Giga grid-point updates per second at the target size (the
  /// paper's Figure 7 metric).
  double GElemsPerSec = 0.0;
  /// Objective::Measured only: best native wall-clock seconds of one
  /// kernel execution on the measurement grid, and the corresponding
  /// throughput at measurement size. Zero under Objective::Modeled.
  double MeasuredSeconds = 0.0;
  double MeasuredGElemsPerSec = 0.0;
};

/// Why candidates were rejected before (or during) lowering, counted
/// per constraint. Reported in TuneResult and in the all-candidates-
/// invalid fatal error so a failing search explains itself.
struct PruneStats {
  std::uint64_t TileStepMisaligned = 0;   ///< tile % window step != 0
  std::uint64_t TileIndivisible = 0;      ///< tile does not divide a grid
  std::uint64_t TileCoarsenMisaligned = 0;///< tile % tile-coarsen != 0
  std::uint64_t LocalMemOverflow = 0;     ///< staged tile exceeds local mem
  std::uint64_t CoarsenIndivisible = 0;   ///< coarsening does not divide grid
  std::uint64_t LoweringFailed = 0;       ///< rewrite produced no program
  std::uint64_t Divisibility = 0; ///< split factor refuted against a grid size
  std::uint64_t NativeFailed = 0; ///< measured objective: native backend failed
  std::uint64_t total() const;
  /// e.g. "tile-indivisible=12, local-mem-overflow=3".
  std::string describe() const;
};

/// Knobs of the search driver itself (not of the search space).
struct TuneOptions {
  /// Candidate evaluations run on up to this many pool workers
  /// (0 = all hardware workers). 1 keeps the legacy fully sequential
  /// tree-walking simulator; any other value also switches the inner
  /// simulation to the compiled engine. The winner is identical for
  /// any value: results are deterministic and the argmin tie-break is
  /// always "first candidate in enumeration order".
  unsigned Jobs = 1;
  /// Share one simulation between candidates whose lowered programs
  /// are structurally equal under the same size bindings and cache
  /// configuration (e.g. work-group-size variants of one untiled
  /// lowering). Never changes results, only skips redundant work.
  /// Ignored at Jobs == 1, which stays the legacy tuner verbatim.
  bool UseMemo = true;
  /// What the argmin ranks by. Objective::Measured needs a working
  /// host C toolchain; candidates whose native compilation fails are
  /// pruned as "native-compile-failed". Measured runs are serialized
  /// process-wide, so Jobs == 1 is the sensible pairing.
  Objective Obj = Objective::Modeled;
  /// Measured objective only: OpenMP threads per native run
  /// (0 = all hardware threads), untimed warmup executions, and timed
  /// repeats (the minimum is taken, standard for wall-clock noise).
  unsigned MeasureThreads = 1;
  unsigned MeasureWarmup = 1;
  unsigned MeasureRepeats = 3;
};

/// Result of a search.
struct TuneResult {
  Evaluated Best;
  std::vector<Evaluated> All; ///< every valid candidate, enumeration order
  PruneStats Prunes;          ///< invalid candidates, counted by reason
  std::uint64_t MemoHits = 0; ///< evaluations served from the memo
};

/// Evaluates one candidate (used directly for the fixed, untuned
/// hand-written reference configurations). \p Jobs as in TuneOptions.
Evaluated evaluateCandidate(const TuningProblem &P,
                            const ocl::DeviceSpec &Dev, const Candidate &C,
                            unsigned Jobs = 1);

/// Exhaustively searches \p Space for the fastest predicted variant.
TuneResult tuneStencil(const TuningProblem &P, const ocl::DeviceSpec &Dev,
                       const TuningSpace &Space,
                       const TuneOptions &Opts = TuneOptions());

} // namespace tuner
} // namespace lift

#endif // LIFT_TUNER_TUNER_H
