//===- Tuner.cpp - Constraint-aware auto-tuning --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include "codegen/Runner.h"
#include "support/Support.h"

#include <algorithm>
#include <cmath>

using namespace lift;
using namespace lift::ocl;
using namespace lift::tuner;
using namespace lift::stencil;
using lift::rewrite::LoweringOptions;

std::string Candidate::describe() const {
  return Options.describe() + "/wg" + std::to_string(Launch.WorkGroupSize);
}

TuningSpace lift::tuner::liftSpace() { return TuningSpace(); }

TuningSpace lift::tuner::ppcgSpace() {
  TuningSpace S;
  S.AllowUntiled = false;
  S.AllowTiling = true;
  S.AllowLocalMem = true;
  S.LocalMemOnly = true; // PPCG always stages tiles in shared memory
  S.AllowUnroll = false;
  S.TileOutputs = {8, 16, 32, 64};
  S.TileCoarsenFactors = {1, 2, 4, 8, 16};
  return S;
}

TuningProblem lift::tuner::makeProblem(const Benchmark &B, bool LargeTarget) {
  TuningProblem P;
  P.B = &B;
  P.Measure = B.MeasureExtents;
  P.Target = LargeTarget && !B.LargeExtents.empty() ? B.LargeExtents
                                                    : B.SmallExtents;
  P.Inputs = makeBenchmarkInputs(B, P.Measure);
  return P;
}

namespace {

/// The modeled cache is shrunk by the working-set ratio so reuse
/// behaves at measurement scale as it would at target scale: a d-dim
/// stencil's reuse window spans a few rows/planes whose footprint
/// scales with the product of the d-1 fastest dimensions.
CacheConfig scaledCache(const CacheConfig &Base, const Extents &Measure,
                        const Extents &Target) {
  double Scale = 1.0;
  for (std::size_t D = 1; D < Measure.size(); ++D)
    Scale *= double(Measure[D]) / double(Target[D]);
  CacheConfig C = Base;
  std::int64_t MinBytes = std::int64_t(C.LineBytes) * C.Ways * 4;
  C.TotalBytes = std::max<std::int64_t>(
      MinBytes, std::int64_t(double(C.TotalBytes) * Scale));
  return C;
}

ExecCounters scaleCounters(const ExecCounters &C, double S) {
  ExecCounters R;
  auto Scale = [S](std::uint64_t V) {
    return std::uint64_t(std::llround(double(V) * S));
  };
  R.GlobalLoads = Scale(C.GlobalLoads);
  R.GlobalStores = Scale(C.GlobalStores);
  R.GlobalLoadLineMisses = Scale(C.GlobalLoadLineMisses);
  R.LocalLoads = Scale(C.LocalLoads);
  R.LocalStores = Scale(C.LocalStores);
  R.PrivateAccesses = Scale(C.PrivateAccesses);
  R.Flops = Scale(C.Flops);
  R.UserFunCalls = Scale(C.UserFunCalls);
  R.LoopIterations = Scale(C.LoopIterations);
  R.Barriers = Scale(C.Barriers);
  R.SelectEvals = Scale(C.SelectEvals);
  return R;
}

bool dividesAll(std::int64_t V, const Extents &E) {
  for (std::int64_t X : E)
    if (X % V != 0)
      return false;
  return true;
}

} // namespace

Evaluated lift::tuner::evaluateCandidate(const TuningProblem &P,
                                         const DeviceSpec &Dev,
                                         const Candidate &C) {
  Evaluated R;
  R.C = C;

  const Benchmark &B = *P.B;
  const LoweringOptions &O = C.Options;

  // Structural constraints.
  if (O.Tile) {
    if (O.TileOutputs % B.WindowStep != 0)
      return R;
    if (!dividesAll(O.TileOutputs, P.Measure) ||
        !dividesAll(O.TileOutputs, P.Target))
      return R;
    if (O.TileCoarsen > 1 && O.TileOutputs % O.TileCoarsen != 0)
      return R;
    // Local tile must fit the device's local memory.
    if (O.UseLocalMem) {
      double TileExtent =
          double(O.TileOutputs + B.WindowSize - B.WindowStep);
      double Bytes = 4.0 * std::pow(TileExtent, double(B.Dims));
      if (Bytes > double(Dev.LocalMemPerCU))
        return R;
    }
  } else if (O.Coarsen > 1) {
    if (P.Measure.back() % O.Coarsen != 0 || P.Target.back() % O.Coarsen != 0)
      return R;
  }

  BenchmarkInstance I = B.Build();
  ir::Program Low = rewrite::lowerStencil(I.P, O);
  if (!Low)
    return R;

  codegen::Compiled Compiled = codegen::compileProgram(Low, B.Name);
  CacheConfig Cache = scaledCache(Dev.Cache, P.Measure, P.Target);

  auto MeasureEnv = makeSizeEnv(I, P.Measure);
  codegen::RunResult Run =
      codegen::runCompiled(Compiled, P.Inputs, MeasureEnv, Cache);

  double CountScale =
      double(totalElems(P.Target)) / double(totalElems(P.Measure));
  ExecCounters Scaled = scaleCounters(Run.Counters, CountScale);

  auto TargetEnv = makeSizeEnv(I, P.Target);
  NDRangeInfo ND = analyzeNDRange(Compiled.K, TargetEnv);

  R.T = estimateTime(Dev, Scaled, ND, C.Launch);
  R.Valid = true;
  R.GElemsPerSec = double(totalElems(P.Target)) / R.T.Total / 1e9;
  return R;
}

TuneResult lift::tuner::tuneStencil(const TuningProblem &P,
                                    const DeviceSpec &Dev,
                                    const TuningSpace &Space) {
  std::vector<Candidate> Candidates;

  std::vector<bool> Unrolls = {false};
  if (Space.AllowUnroll)
    Unrolls.push_back(true);

  if (Space.AllowUntiled) {
    for (std::int64_t Coarsen : Space.CoarsenFactors)
      for (std::int64_t Wg : Space.WorkGroupSizes)
        for (bool Unroll : Unrolls) {
          Candidate C;
          C.Options.Tile = false;
          C.Options.Coarsen = Coarsen;
          C.Options.UnrollReduce = Unroll;
          C.Launch.WorkGroupSize = Wg;
          Candidates.push_back(C);
        }
  }

  if (Space.AllowTiling) {
    std::vector<bool> Locals;
    if (!Space.LocalMemOnly)
      Locals.push_back(false);
    if (Space.AllowLocalMem)
      Locals.push_back(true);
    for (std::int64_t V : Space.TileOutputs)
      for (bool Local : Locals)
        for (std::int64_t TC : Space.TileCoarsenFactors)
          for (bool Unroll : Unrolls) {
            Candidate C;
            C.Options.Tile = true;
            C.Options.TileOutputs = V;
            C.Options.UseLocalMem = Local;
            C.Options.TileCoarsen = TC;
            C.Options.UnrollReduce = Unroll;
            // Work-group geometry of tiled kernels comes from the tile
            // shape; the launch knob is unused.
            Candidates.push_back(C);
          }
  }

  TuneResult Result;
  double BestTime = 0;
  for (const Candidate &C : Candidates) {
    Evaluated E = evaluateCandidate(P, Dev, C);
    if (!E.Valid)
      continue;
    Result.All.push_back(E);
    if (!Result.Best.Valid || E.T.Total < BestTime) {
      Result.Best = E;
      BestTime = E.T.Total;
    }
  }
  if (!Result.Best.Valid)
    fatalError("tuner: no valid candidate for " + P.B->Name);
  return Result;
}
