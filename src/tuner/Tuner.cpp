//===- Tuner.cpp - Constraint-aware auto-tuning --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include "analysis/RangeAnalysis.h"
#include "codegen/Runner.h"
#include "ir/StructuralHash.h"
#include "native/NativeRunner.h"
#include "obs/Calibration.h"
#include "obs/FlightRecorder.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>

using namespace lift;
using namespace lift::ocl;
using namespace lift::tuner;
using namespace lift::stencil;
using lift::rewrite::LoweringOptions;

std::string Candidate::describe() const {
  return Options.describe() + "/wg" + std::to_string(Launch.WorkGroupSize);
}

TuningSpace lift::tuner::liftSpace() { return TuningSpace(); }

TuningSpace lift::tuner::ppcgSpace() {
  TuningSpace S;
  S.AllowUntiled = false;
  S.AllowTiling = true;
  S.AllowLocalMem = true;
  S.LocalMemOnly = true; // PPCG always stages tiles in shared memory
  S.AllowUnroll = false;
  S.TileOutputs = {8, 16, 32, 64};
  S.TileCoarsenFactors = {1, 2, 4, 8, 16};
  return S;
}

TuningProblem lift::tuner::makeProblem(const Benchmark &B, bool LargeTarget) {
  TuningProblem P;
  P.B = &B;
  P.Instance = B.Build();
  P.Measure = B.MeasureExtents;
  P.Target = LargeTarget && !B.LargeExtents.empty() ? B.LargeExtents
                                                    : B.SmallExtents;
  P.Inputs = makeBenchmarkInputs(B, P.Measure);
  return P;
}

std::uint64_t PruneStats::total() const {
  return TileStepMisaligned + TileIndivisible + TileCoarsenMisaligned +
         LocalMemOverflow + CoarsenIndivisible + LoweringFailed +
         Divisibility + NativeFailed;
}

std::string PruneStats::describe() const {
  return obs::formatCounts(
      {{"tile-step-misaligned", TileStepMisaligned},
       {"tile-indivisible", TileIndivisible},
       {"tile-coarsen-misaligned", TileCoarsenMisaligned},
       {"local-mem-overflow", LocalMemOverflow},
       {"coarsen-indivisible", CoarsenIndivisible},
       {"lowering-failed", LoweringFailed},
       {"divisibility", Divisibility},
       {"native-compile-failed", NativeFailed}});
}

namespace {

/// The modeled cache is shrunk by the working-set ratio so reuse
/// behaves at measurement scale as it would at target scale: a d-dim
/// stencil's reuse window spans a few rows/planes whose footprint
/// scales with the product of the d-1 fastest dimensions.
CacheConfig scaledCache(const CacheConfig &Base, const Extents &Measure,
                        const Extents &Target) {
  double Scale = 1.0;
  for (std::size_t D = 1; D < Measure.size(); ++D)
    Scale *= double(Measure[D]) / double(Target[D]);
  CacheConfig C = Base;
  std::int64_t MinBytes = std::int64_t(C.LineBytes) * C.Ways * 4;
  C.TotalBytes = std::max<std::int64_t>(
      MinBytes, std::int64_t(double(C.TotalBytes) * Scale));
  return C;
}

ExecCounters scaleCounters(const ExecCounters &C, double S) {
  ExecCounters R;
  auto Scale = [S](std::uint64_t V) {
    return std::uint64_t(std::llround(double(V) * S));
  };
  R.GlobalLoads = Scale(C.GlobalLoads);
  R.GlobalStores = Scale(C.GlobalStores);
  R.GlobalLoadLineMisses = Scale(C.GlobalLoadLineMisses);
  R.LocalLoads = Scale(C.LocalLoads);
  R.LocalStores = Scale(C.LocalStores);
  R.PrivateAccesses = Scale(C.PrivateAccesses);
  R.Flops = Scale(C.Flops);
  R.UserFunCalls = Scale(C.UserFunCalls);
  R.LoopIterations = Scale(C.LoopIterations);
  R.Barriers = Scale(C.Barriers);
  R.SelectEvals = Scale(C.SelectEvals);
  return R;
}

bool dividesAll(std::int64_t V, const Extents &E) {
  for (std::int64_t X : E)
    if (X % V != 0)
      return false;
  return true;
}

/// Which constraint (if any) rejected a candidate.
enum class PruneReason {
  None,
  TileStepMisaligned,
  TileIndivisible,
  TileCoarsenMisaligned,
  LocalMemOverflow,
  CoarsenIndivisible,
  LoweringFailed,
  Divisibility,
  NativeFailed,
};

/// The stable names shared by the "tuner.prune.<name>" metric keys,
/// PruneStats::describe() and the flight-recorder records.
const char *pruneReasonName(PruneReason R) {
  switch (R) {
  case PruneReason::None:
    return "";
  case PruneReason::TileStepMisaligned:
    return "tile-step-misaligned";
  case PruneReason::TileIndivisible:
    return "tile-indivisible";
  case PruneReason::TileCoarsenMisaligned:
    return "tile-coarsen-misaligned";
  case PruneReason::LocalMemOverflow:
    return "local-mem-overflow";
  case PruneReason::CoarsenIndivisible:
    return "coarsen-indivisible";
  case PruneReason::LoweringFailed:
    return "lowering-failed";
  case PruneReason::Divisibility:
    return "divisibility";
  case PruneReason::NativeFailed:
    return "native-compile-failed";
  }
  unreachable("covered switch");
}

/// Memoizes (counters, NDRange analysis) of one simulated execution,
/// keyed on the *lowered* program's structural identity plus the size
/// bindings and cache configuration that shaped the run. Candidates
/// that differ only in knobs the lowering ignores (e.g. the launch
/// work-group size of mapGlb kernels) collapse onto one simulation.
///
/// Thread-safe with in-flight deduplication: the first caller to
/// acquire a key becomes its owner and computes; concurrent callers
/// block on the entry until the owner publishes.
class EvalMemo {
public:
  struct Entry {
    std::mutex M;
    std::condition_variable CV;
    bool Ready = false;
    ExecCounters Counters;
    NDRangeInfo ND;

    void publish(const ExecCounters &C, const NDRangeInfo &N) {
      std::lock_guard<std::mutex> Lock(M);
      Counters = C;
      ND = N;
      Ready = true;
      CV.notify_all();
    }
    void wait() {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [this] { return Ready; });
    }
  };

  /// Returns the entry for the key; sets \p Owner when this caller
  /// inserted it and must compute + publish.
  Entry *acquire(const ir::Program &Low, const SizeEnv &MeasureEnv,
                 const SizeEnv &TargetEnv, const CacheConfig &Cache,
                 bool &Owner) {
    Key K;
    K.Prog = Low;
    K.Hash = ir::structuralHash(Low);
    auto AddEnv = [&K](const SizeEnv &Env) {
      std::vector<std::pair<unsigned, std::int64_t>> V(Env.begin(), Env.end());
      std::sort(V.begin(), V.end());
      for (const auto &KV : V) {
        K.Hash = hashCombine(K.Hash, KV.first);
        K.Hash = hashCombine(K.Hash, std::size_t(KV.second));
        K.Sizes.push_back(KV);
      }
    };
    AddEnv(MeasureEnv);
    AddEnv(TargetEnv);
    K.Hash = hashCombine(K.Hash, std::size_t(Cache.LineBytes));
    K.Hash = hashCombine(K.Hash, std::size_t(Cache.TotalBytes));
    K.Hash = hashCombine(K.Hash, std::size_t(Cache.Ways));
    K.Cache = Cache;

    std::lock_guard<std::mutex> Lock(M);
    auto It = Map.find(K);
    if (It != Map.end()) {
      Owner = false;
      return It->second.get();
    }
    Owner = true;
    return Map.emplace(std::move(K), std::make_unique<Entry>())
        .first->second.get();
  }

private:
  struct Key {
    std::size_t Hash = 0;
    ir::Program Prog;
    std::vector<std::pair<unsigned, std::int64_t>> Sizes;
    CacheConfig Cache;
  };
  struct KeyHash {
    std::size_t operator()(const Key &K) const { return K.Hash; }
  };
  struct KeyEq {
    bool operator()(const Key &A, const Key &B) const {
      return A.Hash == B.Hash && A.Sizes == B.Sizes &&
             A.Cache.LineBytes == B.Cache.LineBytes &&
             A.Cache.TotalBytes == B.Cache.TotalBytes &&
             A.Cache.Ways == B.Cache.Ways &&
             ir::structuralEquals(A.Prog, B.Prog);
    }
  };

  std::mutex M;
  std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash, KeyEq> Map;
};

Evaluated evalImpl(const TuningProblem &P, const DeviceSpec &Dev,
                   const Candidate &C, const TuneOptions &Opts,
                   EvalMemo *Memo, PruneReason &Why,
                   obs::CandidateRecord *Rec) {
  Why = PruneReason::None;
  Evaluated R;
  R.C = C;

  const Benchmark &B = *P.B;
  const LoweringOptions &O = C.Options;

  // Structural constraints.
  if (O.Tile) {
    if (O.TileOutputs % B.WindowStep != 0) {
      Why = PruneReason::TileStepMisaligned;
      return R;
    }
    // Remainder tiles are legal since the clamped-tail lowering: a
    // tile no longer has to divide the grid, and a tile larger than a
    // short extent is clamped to it per dimension. The one genuinely
    // unsupported shape left is a remainder fit at window step != 1
    // (the shifted tail tile would leave the output lattice;
    // deferred), and the recorded WhyNot names it.
    std::int64_t TileK = O.TileOutputs / B.WindowStep;
    if (B.WindowStep != 1 &&
        (!dividesAll(TileK, P.Measure) || !dividesAll(TileK, P.Target))) {
      Why = PruneReason::TileIndivisible;
      R.WhyNot = std::string(pruneReasonName(Why)) +
                 ": remainder tiles at window step != 1 are unsupported "
                 "(tile of " +
                 std::to_string(TileK) + " outputs)";
      return R;
    }
    if (O.TileCoarsen > 1 && O.TileOutputs % O.TileCoarsen != 0) {
      Why = PruneReason::TileCoarsenMisaligned;
      return R;
    }
    // Local tile must fit the device's local memory.
    if (O.UseLocalMem) {
      double TileExtent =
          double(O.TileOutputs + B.WindowSize - B.WindowStep);
      double Bytes = 4.0 * std::pow(TileExtent, double(B.Dims));
      if (Bytes > double(Dev.LocalMemPerCU)) {
        Why = PruneReason::LocalMemOverflow;
        return R;
      }
    }
  } else if (O.Coarsen > 1) {
    if (P.Measure.back() % O.Coarsen != 0 || P.Target.back() % O.Coarsen != 0) {
      Why = PruneReason::CoarsenIndivisible;
      return R;
    }
  }

  const BenchmarkInstance &I = P.Instance;
  // Lower against the concrete measurement extents: the clamped
  // tiling scheme can then clamp a tile per dimension (e.g. a
  // 16-output tile on Hotspot3D's 4-deep axis), which a fully
  // symbolic lowering must refuse. Simulation and the measured
  // objective both run at exactly these extents.
  rewrite::LoweringOptions LO = O;
  if (LO.OutputExtents.empty())
    LO.OutputExtents.assign(P.Measure.begin(), P.Measure.end());
  ir::Program Low = rewrite::lowerStencil(I.P, LO);
  if (!Low) {
    Why = PruneReason::LoweringFailed;
    return R;
  }
  std::size_t LowHash = ir::structuralHash(Low);
  if (Rec)
    Rec->LoweredHash = LowHash;

  CacheConfig Cache = scaledCache(Dev.Cache, P.Measure, P.Target);
  auto MeasureEnv = makeSizeEnv(I, P.Measure);
  auto TargetEnv = makeSizeEnv(I, P.Target);

  // Static refutation: a split whose factor provably cannot divide its
  // input length at either grid would only fail later, inside the
  // simulator — discard it here and record why.
  if (analysis::refuteSplitDivisibility(Low, MeasureEnv) ||
      analysis::refuteSplitDivisibility(Low, TargetEnv)) {
    Why = PruneReason::Divisibility;
    return R;
  }

  ExecCounters Counters;
  NDRangeInfo ND;
  EvalMemo::Entry *Ent = nullptr;
  bool Owner = false;
  if (Memo)
    Ent = Memo->acquire(Low, MeasureEnv, TargetEnv, Cache, Owner);
  if (Ent && !Owner) {
    Ent->wait();
    Counters = Ent->Counters;
    ND = Ent->ND;
    R.FromMemo = true;
  } else {
    codegen::Compiled Compiled = codegen::compileProgram(Low, B.Name);
    codegen::RunResult Run = codegen::runCompiled(Compiled, P.Inputs,
                                                  MeasureEnv, Cache,
                                                  Opts.Jobs);
    Counters = Run.Counters;
    ND = analyzeNDRange(Compiled.K, TargetEnv);
    if (Ent)
      Ent->publish(Counters, ND);
  }

  // Per-candidate simulation roll-up. Counted for memo-served
  // candidates too (re-adding the shared counters), so the totals
  // depend only on the candidate set — identical at any job count and
  // with or without the memo, unlike the runner-level "sim." totals.
  exportCountersToMetrics(Counters, "tuner.sim.");

  double CountScale =
      double(totalElems(P.Target)) / double(totalElems(P.Measure));
  ExecCounters Scaled = scaleCounters(Counters, CountScale);

  R.T = estimateTime(Dev, Scaled, ND, C.Launch);
  R.Valid = true;
  R.GElemsPerSec = double(totalElems(P.Target)) / R.T.Total / 1e9;

  // Measured objective: also execute the candidate for real through
  // the native backend. The KernelCache (keyed on LowHash) compiles
  // each distinct lowering once per process, so work-group-size
  // variants of one lowering share a binary; every candidate is still
  // *measured* individually — wall clock is noisy, never memoized.
  if (Opts.Obj == Objective::Measured) {
    try {
      codegen::Compiled NatC = codegen::compileProgram(Low, B.Name);
      native::NativeKernelPtr Kern =
          native::KernelCache::global().getOrCompile(LowHash, NatC.K);
      native::NativeRunResult NR = native::runNative(
          NatC, *Kern, P.Inputs, MeasureEnv, Opts.MeasureThreads,
          Opts.MeasureWarmup, Opts.MeasureRepeats);
      R.MeasuredSeconds = NR.Seconds;
      R.MeasuredGElemsPerSec =
          double(totalElems(P.Measure)) / NR.Seconds / 1e9;
    } catch (const native::NativeError &) {
      Why = PruneReason::NativeFailed;
      R.Valid = false;
      return R;
    }
  }
  return R;
}

/// evalImpl plus observability: the per-candidate trace span, wall
/// time, prune/valid counters and the flight-recorder record fields
/// (everything except Index, which only the sweep loop knows).
Evaluated evalInstrumented(const TuningProblem &P, const DeviceSpec &Dev,
                           const Candidate &C, const TuneOptions &Opts,
                           EvalMemo *Memo, PruneReason &Why,
                           obs::CandidateRecord *Rec) {
  obs::Span CandSpan("tuner.candidate", "tuner");
  CandSpan.arg("variant", C.describe());
  auto T0 = std::chrono::steady_clock::now();
  Evaluated R = evalImpl(P, Dev, C, Opts, Memo, Why, Rec);
  // evalImpl may have filled in a detailed message (stable reason name
  // as prefix); only fall back to the bare reason name when it did not.
  if (!R.Valid && R.WhyNot.empty())
    R.WhyNot = pruneReasonName(Why);
  double WallUs = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter("tuner.candidates.enumerated").inc();
  if (R.Valid)
    Reg.counter("tuner.candidates.valid").inc();
  else
    Reg.counter(std::string("tuner.prune.") + pruneReasonName(Why)).inc();
  if (R.FromMemo)
    Reg.counter("tuner.memo.hits").inc();
  Reg.histogram("tuner.candidate.wall_us").observe(WallUs);
  if (Rec) {
    Rec->Variant = C.describe();
    Rec->PredictedTime = R.Valid ? R.T.Total : 0;
    Rec->GElemsPerSec = R.GElemsPerSec;
    Rec->PruneReason = pruneReasonName(Why);
    Rec->FromMemo = R.FromMemo;
    Rec->Valid = R.Valid;
    Rec->WallMicros = WallUs;
    Rec->MeasuredTime = R.MeasuredSeconds;
    Rec->Objective =
        Opts.Obj == Objective::Measured ? "measured" : "modeled";
  }
  CandSpan.arg("valid", std::int64_t(R.Valid ? 1 : 0));
  return R;
}

} // namespace

Evaluated lift::tuner::evaluateCandidate(const TuningProblem &P,
                                         const DeviceSpec &Dev,
                                         const Candidate &C, unsigned Jobs) {
  PruneReason Why;
  TuneOptions Opts;
  Opts.Jobs = Jobs;
  return evalInstrumented(P, Dev, C, Opts, /*Memo=*/nullptr, Why,
                          /*Rec=*/nullptr);
}

TuneResult lift::tuner::tuneStencil(const TuningProblem &P,
                                    const DeviceSpec &Dev,
                                    const TuningSpace &Space,
                                    const TuneOptions &Opts) {
  obs::Span TuneSpan("tune", "tuner");
  TuneSpan.arg("benchmark", P.B->Name);
  TuneSpan.arg("jobs", std::int64_t(Opts.Jobs));
  // Materialize every prune counter up front so metric dumps always
  // carry the full reason set, zeros included — prefix comparisons
  // between runs then compare identical key sets.
  obs::Registry &Reg = obs::Registry::global();
  for (const char *Name :
       {"tile-step-misaligned", "tile-indivisible", "tile-coarsen-misaligned",
        "local-mem-overflow", "coarsen-indivisible", "lowering-failed",
        "divisibility", "native-compile-failed"})
    Reg.counter(std::string("tuner.prune.") + Name);

  std::vector<Candidate> Candidates;

  std::vector<bool> Unrolls = {false};
  if (Space.AllowUnroll)
    Unrolls.push_back(true);

  if (Space.AllowUntiled) {
    for (std::int64_t Coarsen : Space.CoarsenFactors)
      for (std::int64_t Wg : Space.WorkGroupSizes)
        for (bool Unroll : Unrolls) {
          Candidate C;
          C.Options.Tile = false;
          C.Options.Coarsen = Coarsen;
          C.Options.UnrollReduce = Unroll;
          C.Launch.WorkGroupSize = Wg;
          Candidates.push_back(C);
        }
  }

  if (Space.AllowTiling) {
    std::vector<bool> Locals;
    if (!Space.LocalMemOnly)
      Locals.push_back(false);
    if (Space.AllowLocalMem)
      Locals.push_back(true);
    for (std::int64_t V : Space.TileOutputs)
      for (bool Local : Locals)
        for (std::int64_t TC : Space.TileCoarsenFactors)
          for (bool Unroll : Unrolls) {
            Candidate C;
            C.Options.Tile = true;
            C.Options.TileOutputs = V;
            C.Options.UseLocalMem = Local;
            C.Options.TileCoarsen = TC;
            C.Options.UnrollReduce = Unroll;
            // Work-group geometry of tiled kernels comes from the tile
            // shape; the launch knob is unused.
            Candidates.push_back(C);
          }
  }

  // Evaluate every candidate into a preallocated slot so the scan
  // below is independent of evaluation order (and thread schedule).
  std::vector<Evaluated> Evals(Candidates.size());
  std::vector<PruneReason> Reasons(Candidates.size(), PruneReason::None);
  EvalMemo Memo;
  // Jobs == 1 is the legacy sequential tuner verbatim: tree-walking
  // simulator, no memo, plain loop.
  EvalMemo *MemoPtr = Opts.UseMemo && Opts.Jobs != 1 ? &Memo : nullptr;

  obs::FlightRecorder &Recorder = obs::FlightRecorder::global();
  const bool Record = Recorder.enabled();
  if (Record)
    Recorder.beginTune(P.B->Name, Candidates.size());
  TuneSpan.arg("candidates", std::int64_t(Candidates.size()));

  unsigned Par =
      Opts.Jobs == 0 ? ThreadPool::shared().workers() : Opts.Jobs;
  auto EvalOne = [&](std::size_t I) {
    obs::CandidateRecord Rec;
    Rec.Index = I;
    Evals[I] = evalInstrumented(P, Dev, Candidates[I], Opts, MemoPtr,
                                Reasons[I], Record ? &Rec : nullptr);
    if (Record)
      Recorder.record(I, std::move(Rec));
  };
  if (Par <= 1) {
    for (std::size_t I = 0; I != Candidates.size(); ++I)
      EvalOne(I);
  } else {
    ThreadPool::shared().parallelFor(Candidates.size(), EvalOne, Par);
  }

  // Deterministic argmin: scan in enumeration order, first strictly
  // smaller predicted time wins — the same tie-break the sequential
  // loop always had, for any thread count.
  TuneResult Result;
  double BestTime = 0;
  for (std::size_t I = 0; I != Candidates.size(); ++I) {
    switch (Reasons[I]) {
    case PruneReason::None:
      break;
    case PruneReason::TileStepMisaligned:
      ++Result.Prunes.TileStepMisaligned;
      break;
    case PruneReason::TileIndivisible:
      ++Result.Prunes.TileIndivisible;
      break;
    case PruneReason::TileCoarsenMisaligned:
      ++Result.Prunes.TileCoarsenMisaligned;
      break;
    case PruneReason::LocalMemOverflow:
      ++Result.Prunes.LocalMemOverflow;
      break;
    case PruneReason::CoarsenIndivisible:
      ++Result.Prunes.CoarsenIndivisible;
      break;
    case PruneReason::LoweringFailed:
      ++Result.Prunes.LoweringFailed;
      break;
    case PruneReason::Divisibility:
      ++Result.Prunes.Divisibility;
      break;
    case PruneReason::NativeFailed:
      ++Result.Prunes.NativeFailed;
      break;
    }
    const Evaluated &E = Evals[I];
    if (!E.Valid)
      continue;
    if (E.FromMemo)
      ++Result.MemoHits;
    Result.All.push_back(E);
    // Under the measured objective real wall-clock seconds rank the
    // candidates; the modeled time is still recorded for comparison.
    double Score =
        Opts.Obj == Objective::Measured ? E.MeasuredSeconds : E.T.Total;
    if (!Result.Best.Valid || Score < BestTime) {
      Result.Best = E;
      BestTime = Score;
    }
  }
  if (!Result.Best.Valid)
    fatalError("tuner: no valid candidate for " + P.B->Name + " (all " +
               std::to_string(Candidates.size()) +
               " candidates pruned: " + Result.Prunes.describe() + ")");

  // Measured sweeps carry both times per candidate; summarize how well
  // the analytical model tracked the wall clock as tune-end gauges so
  // --obs-report surfaces calibration without the full JSON report.
  if (Opts.Obj == Objective::Measured && !Result.All.empty()) {
    std::vector<obs::CalibrationPair> Pairs;
    for (const Evaluated &E : Result.All) {
      if (E.MeasuredSeconds <= 0 || E.T.Total <= 0)
        continue;
      obs::CalibrationPair Pair;
      Pair.Variant = E.C.describe();
      Pair.ModeledSeconds = E.T.Total;
      Pair.MeasuredSeconds = E.MeasuredSeconds;
      Pairs.push_back(std::move(Pair));
    }
    if (!Pairs.empty()) {
      obs::CalibrationReport CR =
          obs::calibrate(P.B->Name, std::move(Pairs));
      Reg.gauge("tuner.calib.pairs").set(double(CR.Pairs.size()));
      Reg.gauge("tuner.calib.spearman_rho").set(CR.SpearmanRho);
      Reg.gauge("tuner.calib.mean_rel_error").set(CR.MeanRelativeError);
      Reg.gauge("tuner.calib.argmin_agreement")
          .set(CR.ArgminAgreement ? 1.0 : 0.0);
    }
  }
  return Result;
}
