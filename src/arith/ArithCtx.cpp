//===- ArithCtx.cpp - Hash-consing arena for ArithExpr ---------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithCtx.h"

#include "obs/Metrics.h"
#include "support/Support.h"

#include <cassert>

using namespace lift;

using Kind = ArithExpr::Kind;

/// Computes the structural hash of a node from its fields; operand
/// hashes are already cached, so this is O(#operands).
static std::size_t hashFields(Kind K, std::int64_t CstVal, unsigned VarId,
                              const std::vector<AExpr> &Operands) {
  std::size_t H = hashCombine(0x51f7, static_cast<std::size_t>(K));
  switch (K) {
  case Kind::Cst:
    return hashCombine(H, std::hash<std::int64_t>()(CstVal));
  case Kind::Var:
    return hashCombine(H, VarId);
  default:
    for (const AExpr &Op : Operands)
      H = hashCombine(H, Op->hash());
    return H;
  }
}

bool ArithCtx::TableEq::operator()(const NodeKey &K, const AExpr &N) const {
  if (K.K != N->getKind())
    return false;
  switch (K.K) {
  case Kind::Cst:
    return K.CstVal == N->getCst();
  case Kind::Var:
    return K.VarId == N->getVarId();
  default: {
    const std::vector<AExpr> &A = *K.Operands;
    const std::vector<AExpr> &B = N->getOperands();
    if (A.size() != B.size())
      return false;
    // Operands are interned, so identity comparison is structural.
    for (std::size_t I = 0, E = A.size(); I != E; ++I)
      if (A[I].get() != B[I].get())
        return false;
    return true;
  }
  }
}

ArithCtx &ArithCtx::global() {
  // Leaked intentionally: interned nodes may be referenced from other
  // function-local statics whose destruction order is unspecified.
  static ArithCtx *Ctx = []() {
    auto *C = new ArithCtx();
    // Surface the arena's internal hit/miss tally as first-class
    // metrics, refreshed whenever the registry is dumped.
    obs::Registry::global().addProvider([](obs::Registry &R) {
      ArithCtxStats S = ArithCtx::global().stats();
      double Total = double(S.Hits + S.Misses);
      R.gauge("arith.intern.hits").set(double(S.Hits));
      R.gauge("arith.intern.misses").set(double(S.Misses));
      R.gauge("arith.intern.hit_rate")
          .set(Total == 0 ? 0.0 : double(S.Hits) / Total);
      R.gauge("arith.intern.live_nodes")
          .set(double(ArithCtx::global().size()));
    });
    return C;
  }();
  return *Ctx;
}

AExpr ArithCtx::intern(Kind K, std::int64_t CstVal, std::string VarName,
                       unsigned VarId, Range VarRange,
                       std::vector<AExpr> Operands) {
  NodeKey Key{K, CstVal, VarId, &Operands,
              hashFields(K, CstVal, VarId, Operands)};
  Shard &S = shardFor(Key.Hash);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Table.find(Key);
  if (It != S.Table.end()) {
    ++S.Stats.Hits;
    return *It;
  }
  ++S.Stats.Misses;
  auto Node = std::shared_ptr<ArithExpr>(new ArithExpr());
  Node->K = K;
  Node->CstVal = CstVal;
  Node->VarName = std::move(VarName);
  Node->VarId = VarId;
  Node->VarRange = VarRange;
  Node->Operands = std::move(Operands);
  Node->HashVal = Key.Hash;
  S.Table.insert(Node);
  return Node;
}

std::size_t ArithCtx::size() const {
  std::size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    N += S.Table.size();
  }
  return N;
}

ArithCtxStats ArithCtx::stats() const {
  ArithCtxStats Sum;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Sum.Hits += S.Stats.Hits;
    Sum.Misses += S.Stats.Misses;
  }
  return Sum;
}

void ArithCtx::resetStats() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Stats = ArithCtxStats();
  }
}

void ArithCtx::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Table.clear();
  }
}
