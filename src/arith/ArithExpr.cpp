//===- ArithExpr.cpp - Symbolic integer arithmetic ------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"

#include "arith/ArithCtx.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>

using namespace lift;

using Kind = ArithExpr::Kind;

//===----------------------------------------------------------------------===//
// Node construction
//===----------------------------------------------------------------------===//

namespace lift {

/// Interns a canonical node in the global arena. All public factories
/// funnel through here after simplification, so structurally equal
/// expressions share one node (and one cached hash / range).
AExpr makeNode(Kind K, std::int64_t CstVal, std::string VarName,
               unsigned VarId, Range VarRange, std::vector<AExpr> Operands) {
  return ArithCtx::global().intern(K, CstVal, std::move(VarName), VarId,
                                   VarRange, std::move(Operands));
}

} // namespace lift

static AExpr makeOp(Kind K, std::vector<AExpr> Operands) {
  return makeNode(K, 0, std::string(), 0, Range(), std::move(Operands));
}

std::int64_t ArithExpr::getCst() const {
  assert(K == Kind::Cst && "getCst on non-constant");
  return CstVal;
}

const std::string &ArithExpr::getVarName() const {
  assert(K == Kind::Var && "getVarName on non-variable");
  return VarName;
}

unsigned ArithExpr::getVarId() const {
  assert(K == Kind::Var && "getVarId on non-variable");
  return VarId;
}

const Range &ArithExpr::getVarRange() const {
  assert(K == Kind::Var && "getVarRange on non-variable");
  return VarRange;
}

AExpr lift::cst(std::int64_t V) {
  return makeNode(Kind::Cst, V, std::string(), 0, Range(), {});
}

AExpr lift::var(std::string Name, Range R) {
  static std::atomic<unsigned> NextId{1};
  return makeNode(Kind::Var, 0, std::move(Name), NextId++, R, {});
}

//===----------------------------------------------------------------------===//
// Structural comparison and hashing
//===----------------------------------------------------------------------===//

static int kindRank(Kind K) { return static_cast<int>(K); }

int lift::compareExprs(const AExpr &A, const AExpr &B) {
  if (A.get() == B.get())
    return 0;
  if (kindRank(A->getKind()) != kindRank(B->getKind()))
    return kindRank(A->getKind()) < kindRank(B->getKind()) ? -1 : 1;
  switch (A->getKind()) {
  case Kind::Cst: {
    std::int64_t VA = A->getCst(), VB = B->getCst();
    return VA < VB ? -1 : (VA > VB ? 1 : 0);
  }
  case Kind::Var: {
    unsigned IA = A->getVarId(), IB = B->getVarId();
    return IA < IB ? -1 : (IA > IB ? 1 : 0);
  }
  default: {
    const auto &OA = A->getOperands();
    const auto &OB = B->getOperands();
    if (OA.size() != OB.size())
      return OA.size() < OB.size() ? -1 : 1;
    for (std::size_t I = 0, E = OA.size(); I != E; ++I)
      if (int C = compareExprs(OA[I], OB[I]))
        return C;
    return 0;
  }
  }
}

bool lift::exprEquals(const AExpr &A, const AExpr &B) {
  // Interned nodes: structural equality == pointer equality, and a hash
  // mismatch settles inequality without walking. The structural walk
  // only runs for equal hashes on distinct nodes (hash collisions, or
  // nodes from different arena generations after ArithCtx::clear()).
  if (A.get() == B.get())
    return true;
  if (A->hash() != B->hash())
    return false;
  return compareExprs(A, B) == 0;
}

//===----------------------------------------------------------------------===//
// Range analysis
//===----------------------------------------------------------------------===//

static Range addRanges(const Range &A, const Range &B) {
  Range R;
  if (A.Min && B.Min)
    R.Min = *A.Min + *B.Min;
  if (A.Max && B.Max)
    R.Max = *A.Max + *B.Max;
  return R;
}

static Range mulRanges(const Range &A, const Range &B) {
  if (A.isBounded() && B.isBounded()) {
    std::int64_t P[4] = {*A.Min * *B.Min, *A.Min * *B.Max, *A.Max * *B.Min,
                         *A.Max * *B.Max};
    return Range(*std::min_element(P, P + 4), *std::max_element(P, P + 4));
  }
  Range R;
  // Both factors known non-negative: the product is non-negative and at
  // least the product of the known lower bounds.
  if (A.atLeast(0) && B.atLeast(0))
    R.Min = *A.Min * *B.Min;
  return R;
}

Range ArithExpr::getRange() const {
  if (RangeCached.load(std::memory_order_acquire))
    return CachedRange;
  // Compute before taking the stripe lock: computeRange() recurses into
  // operand getRange() calls, which may hash to the same stripe.
  // Concurrent threads may compute the same interval redundantly; the
  // first one to take the lock publishes it.
  Range R = computeRange();
  static std::mutex RangeMemoM[16];
  std::mutex &M =
      RangeMemoM[(reinterpret_cast<std::uintptr_t>(this) / 64) % 16];
  std::lock_guard<std::mutex> Lock(M);
  if (!RangeCached.load(std::memory_order_relaxed)) {
    CachedRange = R;
    RangeCached.store(true, std::memory_order_release);
  }
  return R;
}

Range ArithExpr::computeRange() const {
  switch (K) {
  case Kind::Cst:
    return Range(CstVal, CstVal);
  case Kind::Var:
    return VarRange;
  case Kind::Add: {
    Range R(0, 0);
    for (const AExpr &Op : Operands)
      R = addRanges(R, Op->getRange());
    return R;
  }
  case Kind::Mul: {
    Range R(1, 1);
    for (const AExpr &Op : Operands)
      R = mulRanges(R, Op->getRange());
    return R;
  }
  case Kind::Div: {
    Range RA = Operands[0]->getRange();
    Range RB = Operands[1]->getRange();
    Range R;
    if (!RB.atLeast(1))
      return R;
    if (RA.isBounded() && RB.isBounded()) {
      std::int64_t C[4] = {
          floorDivInt(*RA.Min, *RB.Min), floorDivInt(*RA.Min, *RB.Max),
          floorDivInt(*RA.Max, *RB.Min), floorDivInt(*RA.Max, *RB.Max)};
      return Range(*std::min_element(C, C + 4), *std::max_element(C, C + 4));
    }
    if (RA.atLeast(0)) {
      R.Min = 0;
      if (RA.Max)
        R.Max = floorDivInt(*RA.Max, *RB.Min);
    }
    return R;
  }
  case Kind::Mod: {
    Range RB = Operands[1]->getRange();
    Range R;
    // Floor-modulo by a positive divisor always lands in [0, B).
    if (RB.atLeast(1)) {
      R.Min = 0;
      if (RB.Max)
        R.Max = *RB.Max - 1;
      // A tighter bound when the dividend is already within range.
      Range RA = Operands[0]->getRange();
      if (RA.atLeast(0) && RA.Max && R.Max)
        R.Max = std::min(*R.Max, *RA.Max);
    }
    return R;
  }
  case Kind::Min: {
    Range RA = Operands[0]->getRange();
    Range RB = Operands[1]->getRange();
    Range R;
    if (RA.Min && RB.Min)
      R.Min = std::min(*RA.Min, *RB.Min);
    if (RA.Max && RB.Max)
      R.Max = std::min(*RA.Max, *RB.Max);
    else if (RA.Max)
      R.Max = RA.Max;
    else if (RB.Max)
      R.Max = RB.Max;
    return R;
  }
  case Kind::Max: {
    Range RA = Operands[0]->getRange();
    Range RB = Operands[1]->getRange();
    Range R;
    if (RA.Max && RB.Max)
      R.Max = std::max(*RA.Max, *RB.Max);
    if (RA.Min && RB.Min)
      R.Min = std::max(*RA.Min, *RB.Min);
    else if (RA.Min)
      R.Min = RA.Min;
    else if (RB.Min)
      R.Min = RB.Min;
    return R;
  }
  }
  unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Canonical sum-of-products construction
//===----------------------------------------------------------------------===//

namespace {

/// A product of a constant coefficient and sorted symbolic factors.
/// The canonical unit for building Add nodes with like-term merging.
struct Term {
  std::int64_t Coeff = 1;
  std::vector<AExpr> Factors; // sorted, no Cst/Add/Mul inside
};

} // namespace

static bool sameFactors(const Term &A, const Term &B) {
  if (A.Factors.size() != B.Factors.size())
    return false;
  for (std::size_t I = 0, E = A.Factors.size(); I != E; ++I)
    if (!exprEquals(A.Factors[I], B.Factors[I]))
      return false;
  return true;
}

static int compareFactorLists(const Term &A, const Term &B) {
  if (A.Factors.size() != B.Factors.size())
    return A.Factors.size() < B.Factors.size() ? -1 : 1;
  for (std::size_t I = 0, E = A.Factors.size(); I != E; ++I)
    if (int C = compareExprs(A.Factors[I], B.Factors[I]))
      return C;
  return 0;
}

/// Decomposes a canonical non-Add expression into a Term.
static Term exprToTerm(const AExpr &E) {
  Term T;
  switch (E->getKind()) {
  case Kind::Cst:
    T.Coeff = E->getCst();
    return T;
  case Kind::Mul: {
    for (const AExpr &Op : E->getOperands()) {
      if (Op->getKind() == Kind::Cst)
        T.Coeff *= Op->getCst();
      else
        T.Factors.push_back(Op);
    }
    return T;
  }
  default:
    T.Factors.push_back(E);
    return T;
  }
}

/// Rebuilds an expression from a term. Factors must already be sorted.
static AExpr termToExpr(const Term &T) {
  if (T.Coeff == 0 || T.Factors.empty())
    return cst(T.Coeff);
  if (T.Coeff == 1 && T.Factors.size() == 1)
    return T.Factors.front();
  std::vector<AExpr> Ops;
  if (T.Coeff != 1)
    Ops.push_back(cst(T.Coeff));
  Ops.insert(Ops.end(), T.Factors.begin(), T.Factors.end());
  if (Ops.size() == 1)
    return Ops.front();
  return makeOp(Kind::Mul, std::move(Ops));
}

/// Builds a canonical Add from merged, sorted terms.
static AExpr termsToSum(std::vector<Term> Terms) {
  // Drop zero terms.
  Terms.erase(std::remove_if(Terms.begin(), Terms.end(),
                             [](const Term &T) { return T.Coeff == 0; }),
              Terms.end());
  if (Terms.empty())
    return cst(0);
  std::sort(Terms.begin(), Terms.end(), [](const Term &A, const Term &B) {
    return compareFactorLists(A, B) < 0;
  });
  if (Terms.size() == 1)
    return termToExpr(Terms.front());
  std::vector<AExpr> Ops;
  Ops.reserve(Terms.size());
  for (const Term &T : Terms)
    Ops.push_back(termToExpr(T));
  return makeOp(Kind::Add, std::move(Ops));
}

/// Decomposes an arbitrary canonical expression into a term list.
static std::vector<Term> exprToTerms(const AExpr &E) {
  std::vector<Term> Terms;
  if (E->getKind() == Kind::Add) {
    for (const AExpr &Op : E->getOperands())
      Terms.push_back(exprToTerm(Op));
  } else {
    Terms.push_back(exprToTerm(E));
  }
  return Terms;
}

/// Merges like terms in place.
static void mergeTerms(std::vector<Term> &Terms) {
  std::vector<Term> Merged;
  for (Term &T : Terms) {
    bool Found = false;
    for (Term &M : Merged) {
      if (sameFactors(M, T)) {
        M.Coeff += T.Coeff;
        Found = true;
        break;
      }
    }
    if (!Found)
      Merged.push_back(std::move(T));
  }
  Terms = std::move(Merged);
}

static bool removeFactor(Term &T, const AExpr &Factor);

/// Rewrites k*R*c*(x/c) + k*R*(x%c) to k*R*x (valid for c > 0 by the
/// floor-division identity c*floor(x/c) + x mod c == x). This is the
/// simplification that collapses round-tripped split/join index
/// arithmetic like (i/4)*4 + i%4 back to i.
static bool recombineDivMod(std::vector<Term> &Terms) {
  for (std::size_t MI = 0; MI != Terms.size(); ++MI) {
    const Term &MT = Terms[MI];
    // Find a Mod factor in this term.
    for (std::size_t MF = 0; MF != MT.Factors.size(); ++MF) {
      const AExpr &ModE = MT.Factors[MF];
      if (ModE->getKind() != ArithExpr::Kind::Mod)
        continue;
      const AExpr &X = ModE->getOperands()[0];
      const AExpr &C = ModE->getOperands()[1];
      bool CIsCst = C->getKind() == ArithExpr::Kind::Cst;
      if (CIsCst ? C->getCst() <= 0 : !C->getRange().atLeast(1))
        continue;
      // Rest of the mod term's factors.
      Term Rest = MT;
      Rest.Factors.erase(Rest.Factors.begin() + std::ptrdiff_t(MF));
      // Matching div term: coeff k*c (const c) or factors + {c}.
      for (std::size_t DI = 0; DI != Terms.size(); ++DI) {
        if (DI == MI)
          continue;
        const Term &DT = Terms[DI];
        Term DRest = DT;
        bool FoundDiv = false;
        for (std::size_t DF = 0; DF != DT.Factors.size(); ++DF) {
          const AExpr &DivE = DT.Factors[DF];
          if (DivE->getKind() != ArithExpr::Kind::Div ||
              !exprEquals(DivE->getOperands()[0], X) ||
              !exprEquals(DivE->getOperands()[1], C))
            continue;
          DRest = DT;
          DRest.Factors.erase(DRest.Factors.begin() + std::ptrdiff_t(DF));
          FoundDiv = true;
          break;
        }
        if (!FoundDiv)
          continue;
        if (CIsCst) {
          if (DRest.Coeff != Rest.Coeff * C->getCst() ||
              !sameFactors(DRest, Rest))
            continue;
        } else {
          // Remove one occurrence of C from the div term's rest.
          if (DRest.Coeff != Rest.Coeff || !removeFactor(DRest, C) ||
              !sameFactors(DRest, Rest))
            continue;
        }
        // Replace both terms with k * Rest * x.
        AExpr Combined = cst(Rest.Coeff);
        for (const AExpr &F : Rest.Factors)
          Combined = mul(Combined, F);
        Combined = mul(Combined, X);
        std::vector<Term> NewTerms;
        for (std::size_t I = 0; I != Terms.size(); ++I)
          if (I != MI && I != DI)
            NewTerms.push_back(Terms[I]);
        for (Term &T : exprToTerms(Combined))
          NewTerms.push_back(std::move(T));
        Terms = std::move(NewTerms);
        return true;
      }
    }
  }
  return false;
}

AExpr lift::add(AExpr A, AExpr B) {
  std::vector<Term> Terms = exprToTerms(A);
  std::vector<Term> TermsB = exprToTerms(B);
  Terms.insert(Terms.end(), TermsB.begin(), TermsB.end());
  mergeTerms(Terms);
  while (recombineDivMod(Terms))
    mergeTerms(Terms);
  return termsToSum(std::move(Terms));
}

AExpr lift::sub(AExpr A, AExpr B) { return add(std::move(A), mul(cst(-1), std::move(B))); }

AExpr lift::mul(AExpr A, AExpr B) {
  // Distribute over sums so everything stays in sum-of-products form.
  if (A->getKind() == Kind::Add || B->getKind() == Kind::Add) {
    std::vector<Term> TermsA = exprToTerms(A);
    std::vector<Term> TermsB = exprToTerms(B);
    std::vector<Term> Product;
    for (const Term &TA : TermsA) {
      for (const Term &TB : TermsB) {
        Term T;
        T.Coeff = TA.Coeff * TB.Coeff;
        T.Factors = TA.Factors;
        T.Factors.insert(T.Factors.end(), TB.Factors.begin(),
                         TB.Factors.end());
        std::sort(T.Factors.begin(), T.Factors.end(),
                  [](const AExpr &X, const AExpr &Y) {
                    return compareExprs(X, Y) < 0;
                  });
        Product.push_back(std::move(T));
      }
    }
    mergeTerms(Product);
    return termsToSum(std::move(Product));
  }
  Term TA = exprToTerm(A);
  Term TB = exprToTerm(B);
  Term T;
  T.Coeff = TA.Coeff * TB.Coeff;
  T.Factors = TA.Factors;
  T.Factors.insert(T.Factors.end(), TB.Factors.begin(), TB.Factors.end());
  std::sort(T.Factors.begin(), T.Factors.end(),
            [](const AExpr &X, const AExpr &Y) {
              return compareExprs(X, Y) < 0;
            });
  return termToExpr(T);
}

//===----------------------------------------------------------------------===//
// Floor division / modulo
//===----------------------------------------------------------------------===//

/// Removes one occurrence of \p Factor from \p T if present.
static bool removeFactor(Term &T, const AExpr &Factor) {
  for (auto It = T.Factors.begin(), E = T.Factors.end(); It != E; ++It) {
    if (exprEquals(*It, Factor)) {
      T.Factors.erase(It);
      return true;
    }
  }
  return false;
}

AExpr lift::floorDiv(AExpr A, AExpr B) {
  if (B->isCst(0))
    fatalError("floorDiv by constant zero");
  if (B->isCst(1))
    return A;
  if (A->getKind() == Kind::Cst && B->getKind() == Kind::Cst)
    return cst(floorDivInt(A->getCst(), B->getCst()));
  if (exprEquals(A, B) && B->getRange().atLeast(1))
    return cst(1);

  Range RB = B->getRange();
  bool BPositive = RB.atLeast(1);
  if (BPositive) {
    Range RA = A->getRange();
    // The whole dividend is already inside [0, B): quotient is zero.
    if (RA.atLeast(0) && RA.Max && RB.Min && *RA.Max < *RB.Min)
      return cst(0);

    // Term-wise splitting: floor((k*B + r) / B) == k + floor(r / B) for
    // any integers when B > 0.
    std::vector<Term> Quotient, Rest;
    bool BIsCst = B->getKind() == Kind::Cst;
    std::int64_t C = BIsCst ? B->getCst() : 0;
    for (Term &T : exprToTerms(A)) {
      if (BIsCst && T.Coeff % C == 0) {
        T.Coeff /= C;
        Quotient.push_back(std::move(T));
        continue;
      }
      if (!BIsCst && removeFactor(T, B)) {
        Quotient.push_back(std::move(T));
        continue;
      }
      Rest.push_back(std::move(T));
    }
    if (!Quotient.empty()) {
      AExpr QuotExpr = termsToSum(std::move(Quotient));
      if (Rest.empty())
        return QuotExpr;
      return add(QuotExpr, floorDiv(termsToSum(std::move(Rest)), B));
    }

    // Nested constant divisions collapse: (a / c1) / c2 == a / (c1*c2)
    // for positive divisors.
    if (A->getKind() == Kind::Div && BIsCst &&
        A->getOperands()[1]->getKind() == Kind::Cst &&
        A->getOperands()[1]->getCst() > 0)
      return floorDiv(A->getOperands()[0],
                      cst(A->getOperands()[1]->getCst() * C));
  }
  return makeOp(Kind::Div, {std::move(A), std::move(B)});
}

AExpr lift::floorMod(AExpr A, AExpr B) {
  if (B->isCst(0))
    fatalError("floorMod by constant zero");
  if (B->isCst(1))
    return cst(0);
  if (A->getKind() == Kind::Cst && B->getKind() == Kind::Cst)
    return cst(floorModInt(A->getCst(), B->getCst()));
  if (exprEquals(A, B) && B->getRange().atLeast(1))
    return cst(0);

  Range RB = B->getRange();
  if (RB.atLeast(1)) {
    Range RA = A->getRange();
    // Dividend already within [0, B): the modulo is the identity.
    if (RA.atLeast(0) && RA.Max && RB.Min && *RA.Max < *RB.Min)
      return A;

    // Reduce coefficients modulo a constant divisor and drop terms that
    // contain the (symbolic) divisor as a factor.
    bool BIsCst = B->getKind() == Kind::Cst;
    std::int64_t C = BIsCst ? B->getCst() : 0;
    std::vector<Term> Rest;
    bool Changed = false;
    for (Term &T : exprToTerms(A)) {
      if (BIsCst) {
        std::int64_t Reduced = floorModInt(T.Coeff, C);
        if (Reduced != T.Coeff)
          Changed = true;
        T.Coeff = Reduced;
        if (T.Coeff != 0)
          Rest.push_back(std::move(T));
        continue;
      }
      if (removeFactor(T, B)) {
        Changed = true;
        continue;
      }
      Rest.push_back(std::move(T));
    }
    if (Changed)
      return floorMod(termsToSum(std::move(Rest)), B);
  }
  return makeOp(Kind::Mod, {std::move(A), std::move(B)});
}

//===----------------------------------------------------------------------===//
// Min / max
//===----------------------------------------------------------------------===//

AExpr lift::amin(AExpr A, AExpr B) {
  if (exprEquals(A, B))
    return A;
  Range RA = A->getRange();
  Range RB = B->getRange();
  if (RA.Max && RB.Min && *RA.Max <= *RB.Min)
    return A;
  if (RB.Max && RA.Min && *RB.Max <= *RA.Min)
    return B;
  if (compareExprs(A, B) > 0)
    std::swap(A, B);
  return makeOp(Kind::Min, {std::move(A), std::move(B)});
}

AExpr lift::amax(AExpr A, AExpr B) {
  if (exprEquals(A, B))
    return A;
  Range RA = A->getRange();
  Range RB = B->getRange();
  if (RA.Min && RB.Max && *RB.Max <= *RA.Min)
    return A;
  if (RB.Min && RA.Max && *RA.Max <= *RB.Min)
    return B;
  if (compareExprs(A, B) > 0)
    std::swap(A, B);
  return makeOp(Kind::Max, {std::move(A), std::move(B)});
}

AExpr lift::clampIndex(AExpr I, AExpr N) {
  return amax(cst(0), amin(std::move(I), sub(std::move(N), cst(1))));
}

//===----------------------------------------------------------------------===//
// Evaluation, substitution, printing
//===----------------------------------------------------------------------===//

std::int64_t ArithExpr::evaluate(
    const std::unordered_map<unsigned, std::int64_t> &Env) const {
  switch (K) {
  case Kind::Cst:
    return CstVal;
  case Kind::Var: {
    auto It = Env.find(VarId);
    if (It == Env.end())
      fatalError("unbound variable '" + VarName + "' in evaluate");
    return It->second;
  }
  case Kind::Add: {
    std::int64_t Sum = 0;
    for (const AExpr &Op : Operands)
      Sum += Op->evaluate(Env);
    return Sum;
  }
  case Kind::Mul: {
    std::int64_t Product = 1;
    for (const AExpr &Op : Operands)
      Product *= Op->evaluate(Env);
    return Product;
  }
  case Kind::Div: {
    std::int64_t B = Operands[1]->evaluate(Env);
    if (B == 0)
      fatalError("division by zero in evaluate");
    return floorDivInt(Operands[0]->evaluate(Env), B);
  }
  case Kind::Mod: {
    std::int64_t B = Operands[1]->evaluate(Env);
    if (B == 0)
      fatalError("modulo by zero in evaluate");
    return floorModInt(Operands[0]->evaluate(Env), B);
  }
  case Kind::Min:
    return std::min(Operands[0]->evaluate(Env), Operands[1]->evaluate(Env));
  case Kind::Max:
    return std::max(Operands[0]->evaluate(Env), Operands[1]->evaluate(Env));
  }
  unreachable("covered switch");
}

namespace {
/// Per-call substitution memo keyed on interned node identity: subtrees
/// shared through the arena are rewritten once per substitute() call.
using SubstMemo = std::unordered_map<const ArithExpr *, AExpr>;
} // namespace

static AExpr substituteRec(const AExpr &E,
                           const std::unordered_map<unsigned, AExpr> &Subst,
                           SubstMemo &Memo) {
  switch (E->getKind()) {
  case Kind::Cst:
    return E;
  case Kind::Var: {
    auto It = Subst.find(E->getVarId());
    return It == Subst.end() ? E : It->second;
  }
  default:
    break;
  }
  auto Cached = Memo.find(E.get());
  if (Cached != Memo.end())
    return Cached->second;
  AExpr Result;
  switch (E->getKind()) {
  case Kind::Add: {
    AExpr Sum = cst(0);
    for (const AExpr &Op : E->getOperands())
      Sum = add(Sum, substituteRec(Op, Subst, Memo));
    Result = Sum;
    break;
  }
  case Kind::Mul: {
    AExpr Product = cst(1);
    for (const AExpr &Op : E->getOperands())
      Product = mul(Product, substituteRec(Op, Subst, Memo));
    Result = Product;
    break;
  }
  case Kind::Div:
    Result = floorDiv(substituteRec(E->getOperands()[0], Subst, Memo),
                      substituteRec(E->getOperands()[1], Subst, Memo));
    break;
  case Kind::Mod:
    Result = floorMod(substituteRec(E->getOperands()[0], Subst, Memo),
                      substituteRec(E->getOperands()[1], Subst, Memo));
    break;
  case Kind::Min:
    Result = amin(substituteRec(E->getOperands()[0], Subst, Memo),
                  substituteRec(E->getOperands()[1], Subst, Memo));
    break;
  case Kind::Max:
    Result = amax(substituteRec(E->getOperands()[0], Subst, Memo),
                  substituteRec(E->getOperands()[1], Subst, Memo));
    break;
  default:
    unreachable("covered switch");
  }
  Memo.emplace(E.get(), Result);
  return Result;
}

AExpr lift::substitute(const AExpr &E,
                       const std::unordered_map<unsigned, AExpr> &Subst) {
  SubstMemo Memo;
  return substituteRec(E, Subst, Memo);
}

void lift::collectVars(const AExpr &E, std::vector<unsigned> &Out) {
  if (E->getKind() == Kind::Var) {
    Out.push_back(E->getVarId());
    return;
  }
  for (const AExpr &Op : E->getOperands())
    collectVars(Op, Out);
}

std::string ArithExpr::toString() const {
  switch (K) {
  case Kind::Cst:
    return std::to_string(CstVal);
  case Kind::Var:
    return VarName;
  case Kind::Add: {
    std::string S = "(";
    for (std::size_t I = 0, E = Operands.size(); I != E; ++I) {
      if (I != 0)
        S += " + ";
      S += Operands[I]->toString();
    }
    return S + ")";
  }
  case Kind::Mul: {
    std::string S = "(";
    for (std::size_t I = 0, E = Operands.size(); I != E; ++I) {
      if (I != 0)
        S += " * ";
      S += Operands[I]->toString();
    }
    return S + ")";
  }
  case Kind::Div:
    return "(" + Operands[0]->toString() + " / " + Operands[1]->toString() +
           ")";
  case Kind::Mod:
    return "(" + Operands[0]->toString() + " % " + Operands[1]->toString() +
           ")";
  case Kind::Min:
    return "min(" + Operands[0]->toString() + ", " + Operands[1]->toString() +
           ")";
  case Kind::Max:
    return "max(" + Operands[0]->toString() + ", " + Operands[1]->toString() +
           ")";
  }
  unreachable("covered switch");
}
