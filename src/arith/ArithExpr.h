//===- ArithExpr.h - Symbolic integer arithmetic ---------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic integer arithmetic expressions.
///
/// Lift array types carry their sizes symbolically (e.g. an array of
/// length (n - size + step) / step after `slide`), and the view system
/// compiles data-layout primitives into index expressions over loop
/// variables. Both are represented by ArithExpr: an immutable,
/// simplifying-on-construction expression DAG over 64-bit integers with
/// variables, +, *, floor-division, floor-modulo, min and max.
///
/// All division/modulo uses *floor* semantics (rounding toward negative
/// infinity) so that the rewriting identities used by the simplifier,
/// e.g. (a*c + b) / c == a + b/c for c > 0, hold for all operand signs.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_ARITHEXPR_H
#define LIFT_ARITH_ARITHEXPR_H

#include "support/Support.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {

class ArithExpr;

/// Shared handle to an immutable arithmetic expression node.
using AExpr = std::shared_ptr<const ArithExpr>;

/// An (optionally unbounded) inclusive integer interval used for range
/// analysis on arithmetic expressions. Unknown endpoints are nullopt.
struct Range {
  std::optional<std::int64_t> Min;
  std::optional<std::int64_t> Max;

  Range() = default;
  Range(std::int64_t MinVal, std::int64_t MaxVal) : Min(MinVal), Max(MaxVal) {}

  /// Returns true when both endpoints are known.
  bool isBounded() const { return Min.has_value() && Max.has_value(); }

  /// Returns true when the whole interval is >= \p V.
  bool atLeast(std::int64_t V) const { return Min && *Min >= V; }

  /// Returns true when the whole interval is <= \p V.
  bool atMost(std::int64_t V) const { return Max && *Max <= V; }
};

/// An immutable symbolic integer expression.
///
/// Nodes are created through the simplifying factory functions (cst, var,
/// add, mul, floorDiv, floorMod, amin, amax) which maintain a canonical
/// sum-of-products normal form: Add nodes are flat sums of non-Add terms
/// with like terms merged; Mul nodes are flat products with a leading
/// constant and deterministically ordered symbolic factors.
///
/// Canonical nodes are hash-consed in an ArithCtx arena (ArithCtx.h):
/// structurally equal expressions built through the factories are
/// pointer-equal, structural hashes are precomputed at construction,
/// and range analysis memoizes per node.
class ArithExpr {
public:
  enum class Kind {
    Cst, ///< Integer literal.
    Var, ///< Named variable with a unique id and optional range.
    Add, ///< N-ary sum.
    Mul, ///< N-ary product.
    Div, ///< Binary floor division.
    Mod, ///< Binary floor modulo.
    Min, ///< Binary minimum.
    Max, ///< Binary maximum.
  };

  Kind getKind() const { return K; }

  /// Literal value; only valid on Cst nodes.
  std::int64_t getCst() const;

  /// Variable name; only valid on Var nodes.
  const std::string &getVarName() const;

  /// Unique variable id; only valid on Var nodes.
  unsigned getVarId() const;

  /// Declared range of a Var node; only valid on Var nodes.
  const Range &getVarRange() const;

  /// Operand list; empty for Cst/Var.
  const std::vector<AExpr> &getOperands() const { return Operands; }

  /// Returns true if this is the literal \p V.
  bool isCst(std::int64_t V) const {
    return K == Kind::Cst && CstVal == V;
  }

  /// Computes a conservative value interval via interval analysis.
  /// The result is memoized on the node (nodes are immutable, so the
  /// interval is a pure function of identity).
  Range getRange() const;

  /// Evaluates with concrete variable bindings keyed by variable id.
  /// Unbound variables are a fatal error.
  std::int64_t evaluate(
      const std::unordered_map<unsigned, std::int64_t> &Env) const;

  /// Renders a human-readable form, also valid as C/OpenCL source for
  /// expressions whose division operands are non-negative.
  std::string toString() const;

  /// Structural hash, consistent with compareExprs equality. Computed
  /// once at construction and cached, so this is O(1).
  std::size_t hash() const { return HashVal; }

  // Factories are friends so the constructor can stay private and all
  // nodes are guaranteed to be simplified.
  friend AExpr makeNode(Kind K, std::int64_t CstVal, std::string VarName,
                        unsigned VarId, Range VarRange,
                        std::vector<AExpr> Operands);

  // The hash-consing arena allocates nodes and fills in the cached
  // structural hash before publishing them.
  friend class ArithCtx;

private:
  ArithExpr() = default;

  /// The uncached interval computation behind getRange().
  Range computeRange() const;

  Kind K = Kind::Cst;
  std::int64_t CstVal = 0;
  std::string VarName;
  unsigned VarId = 0;
  Range VarRange;
  std::vector<AExpr> Operands;
  std::size_t HashVal = 0;

  // Range-analysis memo (see getRange). Thread-safe publication: the
  // flag is set with release ordering after CachedRange is written
  // under a striped mutex (see ArithExpr.cpp); readers acquire-load the
  // flag before touching CachedRange.
  mutable Range CachedRange;
  mutable std::atomic<bool> RangeCached{false};
};

/// Total structural order over expressions; returns <0, 0, >0.
/// Equal expressions (0) are semantically identical.
int compareExprs(const AExpr &A, const AExpr &B);

/// Structural equality (compareExprs == 0). O(1) for interned nodes:
/// hash-consing makes structural equality coincide with pointer
/// equality, and a hash mismatch settles inequality without a walk.
bool exprEquals(const AExpr &A, const AExpr &B);

//===----------------------------------------------------------------------===//
// Simplifying factory functions
//===----------------------------------------------------------------------===//

/// Creates an integer literal.
AExpr cst(std::int64_t V);

/// Creates a fresh variable with a process-unique id.
/// \p R declares the values the variable may take; size variables are
/// typically given Range(1, HUGE) and index variables [0, n-1].
AExpr var(std::string Name, Range R = Range());

/// Sum; flattens, folds constants and merges like terms.
AExpr add(AExpr A, AExpr B);

/// Difference (A + (-1) * B).
AExpr sub(AExpr A, AExpr B);

/// Product; flattens, folds constants and distributes over sums.
AExpr mul(AExpr A, AExpr B);

/// Floor division. Simplifies exactly-divisible sums term-wise.
AExpr floorDiv(AExpr A, AExpr B);

/// Floor modulo; the result lies in [0, B) for positive B.
AExpr floorMod(AExpr A, AExpr B);

/// Minimum of two expressions.
AExpr amin(AExpr A, AExpr B);

/// Maximum of two expressions.
AExpr amax(AExpr A, AExpr B);

/// max(0, min(I, N-1)): the `clamp` boundary index function from the
/// paper (Section 3.2).
AExpr clampIndex(AExpr I, AExpr N);

/// Replaces variables (by id) with expressions, re-simplifying.
/// Memoized on node identity within one call, so subtrees shared via
/// interning are rewritten once.
AExpr substitute(const AExpr &E,
                 const std::unordered_map<unsigned, AExpr> &Subst);

/// Collects the ids of all variables occurring in \p E into \p Out.
void collectVars(const AExpr &E, std::vector<unsigned> &Out);

} // namespace lift

#endif // LIFT_ARITH_ARITHEXPR_H
