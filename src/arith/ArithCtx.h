//===- ArithCtx.h - Hash-consing arena for ArithExpr -----------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hash-consing arena behind the ArithExpr factory functions.
///
/// Every node built through cst/var/add/mul/floorDiv/floorMod/amin/amax
/// is canonicalized by the simplifier and then *interned* here: the
/// arena keeps one shared node per distinct structure, so two
/// structurally equal expressions constructed independently are
/// pointer-equal. This turns the equality checks that dominate the
/// rewrite engine (like-term merging, type checking of symbolic sizes,
/// program deduplication during exploration) into single pointer
/// comparisons, and lets range analysis and substitution memoize on
/// node identity.
///
/// Lifetime rules:
///  - The arena owns one shared_ptr per interned node, so interned
///    nodes live at least as long as the arena (the process, for the
///    global arena). AExpr handles held by clients additionally keep
///    their nodes alive independently.
///  - clear() drops the arena's references. Existing AExpr handles
///    remain valid, but the structural-equality ⇔ pointer-equality
///    guarantee only holds among nodes interned in the same arena
///    generation; exprEquals() stays correct across generations by
///    falling back to a structural walk.
///
/// Thread safety: the arena is sharded by node hash into NumShards
/// independently locked hash tables, so concurrent factory calls from
/// the parallel tuner/simulator contend only when they intern nodes
/// that land in the same shard. The invariant that makes this sound is
/// that a node's shard is a pure function of its structural hash: two
/// threads racing to intern the same structure serialize on one shard
/// lock and the loser gets the winner's node, preserving
/// structural-equality == pointer-equality globally. clear() and
/// resetStats() take every shard lock and are not meant to run
/// concurrently with interning.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_ARITH_ARITHCTX_H
#define LIFT_ARITH_ARITHCTX_H

#include "arith/ArithExpr.h"

#include <cstddef>
#include <mutex>
#include <unordered_set>

namespace lift {

/// Counters describing arena behaviour; used by tests and benchmarks
/// to assert that interning actually deduplicates.
struct ArithCtxStats {
  std::size_t Hits = 0;   ///< factory calls answered from the table
  std::size_t Misses = 0; ///< distinct nodes constructed
};

/// The hash-consing arena. All ArithExpr factories funnel through
/// intern() via makeNode(); client code normally never touches this
/// class except to inspect stats() or to clear() between independent
/// compilation sessions.
class ArithCtx {
public:
  /// The process-wide arena used by the factory functions.
  static ArithCtx &global();

  /// Returns the canonical node for the given field values, creating
  /// and caching it on first use. Operands must already be interned
  /// (guaranteed when they come from the factory functions). Safe to
  /// call from multiple threads.
  AExpr intern(ArithExpr::Kind K, std::int64_t CstVal, std::string VarName,
               unsigned VarId, Range VarRange, std::vector<AExpr> Operands);

  /// Number of distinct live nodes across all shards.
  std::size_t size() const;

  /// Aggregated counters across all shards (a snapshot, by value).
  ArithCtxStats stats() const;
  void resetStats();

  /// Drops all interned nodes (handles held by clients stay valid; see
  /// the lifetime rules in the file comment).
  void clear();

private:
  /// Lookup key describing a node without allocating it.
  struct NodeKey {
    ArithExpr::Kind K;
    std::int64_t CstVal;
    unsigned VarId;
    const std::vector<AExpr> *Operands;
    std::size_t Hash;
  };

  struct TableHash {
    using is_transparent = void;
    std::size_t operator()(const AExpr &N) const { return N->hash(); }
    std::size_t operator()(const NodeKey &K) const { return K.Hash; }
  };

  struct TableEq {
    using is_transparent = void;
    // Two live table entries are distinct by construction (an entry is
    // only inserted after a failed structural lookup), so identity
    // comparison is exact here.
    bool operator()(const AExpr &A, const AExpr &B) const {
      return A.get() == B.get();
    }
    bool operator()(const NodeKey &K, const AExpr &N) const;
    bool operator()(const AExpr &N, const NodeKey &K) const {
      return (*this)(K, N);
    }
  };

  /// One independently locked slice of the arena.
  struct Shard {
    mutable std::mutex M;
    std::unordered_set<AExpr, TableHash, TableEq> Table;
    ArithCtxStats Stats;
  };

  static constexpr std::size_t NumShards = 16;

  Shard &shardFor(std::size_t Hash) {
    // hash() already mixes well; fold the high bits in so shard choice
    // is not correlated with the table's own bucket index.
    return Shards[(Hash ^ (Hash >> 16)) % NumShards];
  }

  Shard Shards[NumShards];
};

} // namespace lift

#endif // LIFT_ARITH_ARITHCTX_H
