//===- Device.h - GPU device timing models ---------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analytic device timing models. The simulator (Sim.h) measures what a
/// kernel *does* — memory transactions through a cache, local-memory
/// traffic, arithmetic, barriers; a DeviceSpec says how fast a given
/// GPU does each of those things. Predicted runtime:
///
///   t_mem     = (miss lines * line bytes + store bytes) / DRAM BW
///               + hit bytes / cache-hit BW
///   t_local   = local bytes / local-memory BW
///   t_compute = weighted ops / op throughput
///   busy      = max(t_mem, t_compute, t_local)   (overlapped engines)
///   total     = busy / utilization + barriers * cost + launch overhead
///
/// Utilization captures the two occupancy effects the paper observes:
/// small inputs cannot fill big GPUs (SRAD1/2 on K20c/HD7970, §7.1),
/// and heavy local-memory use limits resident work-groups. Three
/// calibrated specs model the paper's platforms: an NVIDIA Tesla
/// K20c-, an AMD Radeon HD 7970- and an ARM Mali T628-like device. The
/// Mali spec has *emulated* local memory (no faster than cache), which
/// is why local-memory tiling never wins there (paper §7.2).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_DEVICE_H
#define LIFT_OCL_DEVICE_H

#include "ocl/Sim.h"

#include <string>

namespace lift {
namespace ocl {

/// Performance characteristics of a modeled GPU.
struct DeviceSpec {
  std::string Name;
  double DramBandwidth;  ///< bytes/s from DRAM
  double CacheBandwidth; ///< bytes/s on cache hits
  double LocalBandwidth; ///< bytes/s to local (scratchpad) memory
  double OpsPerSecond;   ///< weighted scalar ops/s (all work-items)
  CacheConfig Cache;     ///< last-level cache geometry
  std::int64_t NumCUs;          ///< compute units (SM / CU / core)
  std::int64_t ThreadsPerCU;    ///< resident work-items per CU
  std::int64_t MaxGroupsPerCU;  ///< resident work-groups per CU
  std::int64_t LocalMemPerCU;   ///< bytes of local memory per CU
  std::int64_t MaxWorkGroupSize;
  int WarpSize;          ///< SIMT width (1 = no divergence penalty)
  double BarrierCost;    ///< seconds per work-group barrier execution
  double LaunchOverhead; ///< seconds per kernel launch

  std::int64_t maxConcurrentThreads() const { return NumCUs * ThreadsPerCU; }
};

/// NVIDIA Tesla K20c-like device (Kepler, 13 SMX, 208 GB/s).
DeviceSpec deviceNvidiaK20c();
/// AMD Radeon HD 7970-like device (GCN, 32 CUs, 264 GB/s).
DeviceSpec deviceAmdHd7970();
/// ARM Mali T628-like device (6 cores, shared LPDDR3, emulated local
/// memory).
DeviceSpec deviceMaliT628();

/// All three paper platforms.
std::vector<DeviceSpec> paperDevices();

/// Launch-time tuning knobs that are not part of the kernel structure.
struct LaunchParams {
  /// Work-group size used for kernels without Wrg/Lcl structure
  /// (mapGlb-only kernels); kernels with explicit work-group structure
  /// take their group shape from the loop extents.
  std::int64_t WorkGroupSize = 128;
};

/// Predicted execution time, decomposed.
struct Timing {
  double MemTime = 0;
  double ComputeTime = 0;
  double LocalTime = 0;
  double BarrierTime = 0;
  double LaunchTime = 0;
  double Utilization = 1.0;
  double Total = 0;
};

/// Applies the timing model to measured counters.
Timing estimateTime(const DeviceSpec &Dev, const ExecCounters &C,
                    const NDRangeInfo &ND, const LaunchParams &LP);

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_DEVICE_H
