//===- Sim.cpp - Instrumented NDRange simulator -----------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ocl/Sim.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Support.h"

#include <algorithm>
#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;

//===----------------------------------------------------------------------===//
// NDRange analysis
//===----------------------------------------------------------------------===//

std::int64_t NDRangeInfo::totalWorkItems() const {
  if (UsesWorkGroups)
    return totalWorkGroups() * LocalSize[0] * LocalSize[1] * LocalSize[2];
  return GlobalSize[0] * GlobalSize[1] * GlobalSize[2];
}

std::int64_t NDRangeInfo::totalWorkGroups() const {
  return NumGroups[0] * NumGroups[1] * NumGroups[2];
}

static void analyzeLoops(const std::vector<StmtPtr> &Stmts,
                         const SizeEnv &Sizes, NDRangeInfo &Info) {
  for (const StmtPtr &S : Stmts) {
    if (S->K != Stmt::Kind::Loop)
      continue;
    std::int64_t Extent = S->Count->evaluate(Sizes);
    switch (S->LK) {
    case LoopKind::Glb:
      Info.GlobalSize[S->Dim] = std::max(Info.GlobalSize[S->Dim], Extent);
      break;
    case LoopKind::Wrg:
      Info.UsesWorkGroups = true;
      Info.NumGroups[S->Dim] = std::max(Info.NumGroups[S->Dim], Extent);
      break;
    case LoopKind::Lcl:
      Info.UsesWorkGroups = true;
      Info.LocalSize[S->Dim] = std::max(Info.LocalSize[S->Dim], Extent);
      break;
    case LoopKind::Seq:
      break;
    }
    // Parallel loop extents may be symbolic in outer loop variables;
    // analysis only runs on sizes, so bind missing loop vars to zero
    // would be wrong — instead, inner structures get analyzed with the
    // same Sizes and rely on counts independent of outer indices (true
    // for Lift-generated code).
    analyzeLoops(S->Body, Sizes, Info);
  }
}

NDRangeInfo lift::ocl::analyzeNDRange(const Kernel &K, const SizeEnv &Sizes) {
  NDRangeInfo Info;
  analyzeLoops(K.Body, Sizes, Info);
  for (const BufferDecl &B : K.Buffers)
    if (B.Space == MemSpace::Local)
      Info.LocalMemBytes += B.NumElems->evaluate(Sizes) * 4;
  return Info;
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

Executor::Executor(const Kernel &K, const SizeEnv &Sizes,
                   const CacheConfig &Cache)
    : K(K), Env(Sizes), Cache(Cache) {
  Buffers.resize(K.Buffers.size());
  std::int64_t NextBase = 0;
  for (const BufferDecl &Decl : K.Buffers) {
    BufferStorage &B = Buffers[std::size_t(Decl.Id)];
    B.Kind = Decl.ElemKind;
    std::int64_t N = Decl.NumElems->evaluate(Sizes);
    if (N < 0)
      fatalError("negative buffer size for " + Decl.Name);
    if (Decl.ElemKind == ScalarKind::Float)
      B.F.assign(std::size_t(N), 0.0f);
    else
      B.I.assign(std::size_t(N), 0);
    // Buffers get disjoint line-aligned virtual address ranges so the
    // cache model never aliases them.
    B.VirtualBase = NextBase;
    std::int64_t Bytes = N * 4;
    NextBase += (Bytes + Cache.LineBytes - 1) / Cache.LineBytes *
                    Cache.LineBytes +
                Cache.LineBytes;
  }
  Registers.resize(K.Registers.size());
  for (const RegisterDecl &R : K.Registers)
    Registers[std::size_t(R.Id)] =
        R.Kind == ScalarKind::Float ? Scalar(0.0f) : Scalar(std::int32_t(0));

  CacheSets = std::max<std::int64_t>(
      1, Cache.TotalBytes / (Cache.LineBytes * Cache.Ways));
  CacheTags.assign(std::size_t(CacheSets * Cache.Ways), -1);
}

void Executor::bindInput(int BufferId, const std::vector<float> &Data) {
  BufferStorage &B = Buffers[std::size_t(BufferId)];
  if (B.Kind == ScalarKind::Float) {
    if (Data.size() != B.F.size())
      fatalError("bindInput: size mismatch for buffer " +
                 K.buffer(BufferId).Name + " (got " +
                 std::to_string(Data.size()) + ", want " +
                 std::to_string(B.F.size()) + ")");
    B.F = Data;
    return;
  }
  if (Data.size() != B.I.size())
    fatalError("bindInput: size mismatch for int buffer");
  for (std::size_t I = 0; I != Data.size(); ++I)
    B.I[I] = std::int32_t(Data[I]);
}

std::vector<float> Executor::bufferContents(int BufferId) const {
  const BufferStorage &B = Buffers[std::size_t(BufferId)];
  if (B.Kind == ScalarKind::Float)
    return B.F;
  std::vector<float> Out(B.I.size());
  for (std::size_t I = 0; I != B.I.size(); ++I)
    Out[I] = float(B.I[I]);
  return Out;
}

void Executor::run() {
  obs::Span RunSpan("sim.run", "sim");
  RunSpan.arg("kernel", K.Name);
  execStmts(K.Body);
  RunSpan.arg("flops", std::int64_t(Counters.Flops));
}

void lift::ocl::exportCountersToMetrics(const ExecCounters &C,
                                        const std::string &Prefix) {
  obs::Registry &Reg = obs::Registry::global();
  Reg.counter(Prefix + "global_loads").inc(C.GlobalLoads);
  Reg.counter(Prefix + "global_stores").inc(C.GlobalStores);
  Reg.counter(Prefix + "global_load_line_misses")
      .inc(C.GlobalLoadLineMisses);
  Reg.counter(Prefix + "local_loads").inc(C.LocalLoads);
  Reg.counter(Prefix + "local_stores").inc(C.LocalStores);
  Reg.counter(Prefix + "private_accesses").inc(C.PrivateAccesses);
  Reg.counter(Prefix + "flops").inc(C.Flops);
  Reg.counter(Prefix + "user_fun_calls").inc(C.UserFunCalls);
  Reg.counter(Prefix + "loop_iterations").inc(C.LoopIterations);
  Reg.counter(Prefix + "barriers").inc(C.Barriers);
  Reg.counter(Prefix + "select_evals").inc(C.SelectEvals);
}

void Executor::execStmts(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts)
    execStmt(*S);
}

std::int64_t Executor::evalIndex(const AExpr &A) { return A->evaluate(Env); }

void Executor::execStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Store: {
    Scalar V = evalExpr(*S.Value);
    storeTo(S.BufferId, evalIndex(S.Index), V);
    return;
  }
  case Stmt::Kind::AssignVar:
    Registers[std::size_t(S.VarId)] = evalExpr(*S.Value);
    return;
  case Stmt::Kind::Barrier:
    ++Counters.Barriers;
    return;
  case Stmt::Kind::Loop: {
    std::int64_t Extent = evalIndex(S.Count);
    unsigned VarId = S.LoopVar->getVarId();
    for (std::int64_t I = 0; I != Extent; ++I) {
      Env[VarId] = I;
      execStmts(S.Body);
    }
    Env.erase(VarId);
    // Unrolled loops (reduceSeqUnroll, paper §4.3) pay no per-iteration
    // branch/increment overhead; only the loop setup is charged.
    Counters.LoopIterations += S.Unroll ? 1 : std::uint64_t(Extent);
    return;
  }
  }
  unreachable("covered switch");
}

void Executor::touchCache(const BufferStorage &B, std::int64_t ElemIndex) {
  std::int64_t Addr = B.VirtualBase + ElemIndex * 4;
  std::int64_t Line = Addr / Cache.LineBytes;
  std::int64_t Set = Line % CacheSets;
  std::int64_t *Ways = &CacheTags[std::size_t(Set * Cache.Ways)];
  // LRU within the set: front is most recently used.
  for (int W = 0; W != Cache.Ways; ++W) {
    if (Ways[W] != Line)
      continue;
    // Hit: move to front.
    for (int X = W; X > 0; --X)
      Ways[X] = Ways[X - 1];
    Ways[0] = Line;
    return;
  }
  // Miss: evict LRU.
  ++Counters.GlobalLoadLineMisses;
  for (int X = Cache.Ways - 1; X > 0; --X)
    Ways[X] = Ways[X - 1];
  Ways[0] = Line;
}

Scalar Executor::loadFrom(int BufferId, std::int64_t Index) {
  const BufferDecl &Decl = K.buffer(BufferId);
  BufferStorage &B = Buffers[std::size_t(BufferId)];
  std::size_t N = B.Kind == ScalarKind::Float ? B.F.size() : B.I.size();
  if (Index < 0 || std::size_t(Index) >= N)
    fatalError("simulated load out of bounds: " + Decl.Name + "[" +
               std::to_string(Index) + "] of " + std::to_string(N));
  switch (Decl.Space) {
  case MemSpace::Global:
    ++Counters.GlobalLoads;
    touchCache(B, Index);
    break;
  case MemSpace::Local:
    ++Counters.LocalLoads;
    break;
  case MemSpace::Private:
    ++Counters.PrivateAccesses;
    break;
  }
  if (B.Kind == ScalarKind::Float)
    return Scalar(B.F[std::size_t(Index)]);
  return Scalar(B.I[std::size_t(Index)]);
}

void Executor::storeTo(int BufferId, std::int64_t Index, Scalar V) {
  const BufferDecl &Decl = K.buffer(BufferId);
  BufferStorage &B = Buffers[std::size_t(BufferId)];
  std::size_t N = B.Kind == ScalarKind::Float ? B.F.size() : B.I.size();
  if (Index < 0 || std::size_t(Index) >= N)
    fatalError("simulated store out of bounds: " + Decl.Name + "[" +
               std::to_string(Index) + "] of " + std::to_string(N));
  switch (Decl.Space) {
  case MemSpace::Global:
    ++Counters.GlobalStores;
    break;
  case MemSpace::Local:
    ++Counters.LocalStores;
    break;
  case MemSpace::Private:
    ++Counters.PrivateAccesses;
    break;
  }
  if (B.Kind == ScalarKind::Float) {
    B.F[std::size_t(Index)] = V.asFloat();
    return;
  }
  B.I[std::size_t(Index)] = V.asInt();
}

Scalar Executor::evalExpr(const KExpr &E) {
  switch (E.K) {
  case KExpr::Kind::ConstScalar:
    return E.Const;
  case KExpr::Kind::IndexVal:
    return Scalar(std::int32_t(evalIndex(E.Index)));
  case KExpr::Kind::ReadVar:
    return Registers[std::size_t(E.VarId)];
  case KExpr::Kind::Load:
    return loadFrom(E.BufferId, evalIndex(E.Index));
  case KExpr::Kind::CallUF: {
    std::vector<Scalar> Args;
    Args.reserve(E.Args.size());
    for (const KExprPtr &A : E.Args)
      Args.push_back(evalExpr(*A));
    ++Counters.UserFunCalls;
    Counters.Flops += std::uint64_t(E.UF->getFlopCost());
    return E.UF->evaluate(Args);
  }
  case KExpr::Kind::Select: {
    ++Counters.SelectEvals;
    for (const BoundsCheck &C : E.Checks) {
      std::int64_t I = evalIndex(C.Idx);
      if (I < evalIndex(C.Lo) || I >= evalIndex(C.Hi))
        return evalExpr(*E.Else);
    }
    return evalExpr(*E.Then);
  }
  }
  unreachable("covered switch");
}
