//===- Emitter.h - OpenCL C source emission --------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-prints a kernel AST as OpenCL C source. This is the artifact
/// a real OpenCL runtime would compile; here it serves inspection and
/// golden tests, while execution goes through the simulator (Sim.h).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_EMITTER_H
#define LIFT_OCL_EMITTER_H

#include "ocl/KernelAst.h"

#include <string>

namespace lift {
namespace ocl {

/// Renders \p K as a complete OpenCL C translation unit: user-function
/// definitions followed by the kernel.
std::string emitOpenCL(const Kernel &K);

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_EMITTER_H
