//===- ParallelSim.cpp - Compiled, multi-threaded NDRange simulator ---------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ocl/ParallelSim.h"

#include "obs/Trace.h"
#include "support/Support.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;

/// Sentinel for a loop-variable slot that is not currently bound (the
/// compiled analogue of a variable missing from the Executor's Env).
static constexpr std::int64_t UnboundSlot =
    std::numeric_limits<std::int64_t>::min();

//===----------------------------------------------------------------------===//
// Plan compilation
//===----------------------------------------------------------------------===//

int ParallelExecutor::slotFor(unsigned VarId) {
  auto It = SlotIds.find(VarId);
  if (It != SlotIds.end())
    return It->second;
  int Id = int(SlotNames.size());
  SlotIds.emplace(VarId, Id);
  SlotNames.push_back(std::string());
  return Id;
}

int ParallelExecutor::compileBinary(IndexProgram::BinOp Op, const AExpr &A,
                                    const AExpr &B) {
  int PA = compileIndex(A);
  int PB = compileIndex(B);
  // Fold when both operands reduced to constants.
  const IndexProgram &IA = Progs[std::size_t(PA)];
  const IndexProgram &IB = Progs[std::size_t(PB)];
  IndexProgram P;
  if (IA.IsConst && IB.IsConst) {
    std::int64_t VA = IA.ConstVal, VB = IB.ConstVal;
    std::int64_t V = 0;
    switch (Op) {
    case IndexProgram::BinOp::Div:
      if (VB == 0)
        fatalError("division by zero in evaluate");
      V = floorDivInt(VA, VB);
      break;
    case IndexProgram::BinOp::Mod:
      if (VB == 0)
        fatalError("modulo by zero in evaluate");
      V = floorModInt(VA, VB);
      break;
    case IndexProgram::BinOp::Min:
      V = std::min(VA, VB);
      break;
    case IndexProgram::BinOp::Max:
      V = std::max(VA, VB);
      break;
    case IndexProgram::BinOp::Mul:
      V = VA * VB;
      break;
    }
    P.F = IndexProgram::Form::Const;
    P.IsConst = true;
    P.ConstVal = V;
  } else {
    P.F = IndexProgram::Form::Binary;
    P.Op = Op;
    P.A = PA;
    P.B = PB;
  }
  int Id = int(Progs.size());
  Progs.push_back(std::move(P));
  return Id;
}

/// Accumulates Scale * E into an affine form Base + sum(Coeff * slot) +
/// sum(Coeff * sub-program). Non-affine subtrees (floor div/mod,
/// min/max, products of symbolic factors) compile into their own
/// programs and join as SubTerms, so this never fails.
void ParallelExecutor::toAffine(
    const AExpr &E, std::int64_t Scale, std::int64_t &Base,
    std::unordered_map<int, std::int64_t> &Coeffs,
    std::vector<std::pair<std::int64_t, int>> &SubTerms) {
  using Kind = ArithExpr::Kind;
  switch (E->getKind()) {
  case Kind::Cst:
    Base += Scale * E->getCst();
    return;
  case Kind::Var: {
    auto SizeIt = SizeConsts.find(E->getVarId());
    if (SizeIt != SizeConsts.end()) {
      Base += Scale * SizeIt->second;
      return;
    }
    int Slot = slotFor(E->getVarId());
    SlotNames[std::size_t(Slot)] = E->getVarName();
    Coeffs[Slot] += Scale;
    return;
  }
  case Kind::Add:
    for (const AExpr &Op : E->getOperands())
      toAffine(Op, Scale, Base, Coeffs, SubTerms);
    return;
  case Kind::Mul: {
    // Fold constant factors into the scale; a single remaining symbolic
    // factor keeps the term affine, two or more become a product chain.
    std::int64_t Factor = Scale;
    std::vector<const AExpr *> Symbolic;
    for (const AExpr &Op : E->getOperands()) {
      if (Op->getKind() == Kind::Cst) {
        Factor *= Op->getCst();
        continue;
      }
      if (Op->getKind() == Kind::Var) {
        auto SizeIt = SizeConsts.find(Op->getVarId());
        if (SizeIt != SizeConsts.end()) {
          Factor *= SizeIt->second;
          continue;
        }
      }
      Symbolic.push_back(&Op);
    }
    if (Symbolic.empty()) {
      Base += Factor;
      return;
    }
    if (Symbolic.size() == 1) {
      toAffine(*Symbolic[0], Factor, Base, Coeffs, SubTerms);
      return;
    }
    int Prog = compileBinary(IndexProgram::BinOp::Mul, *Symbolic[0],
                             *Symbolic[1]);
    for (std::size_t I = 2; I != Symbolic.size(); ++I) {
      IndexProgram P;
      P.F = IndexProgram::Form::Binary;
      P.Op = IndexProgram::BinOp::Mul;
      P.A = Prog;
      P.B = compileIndex(*Symbolic[I]);
      Prog = int(Progs.size());
      Progs.push_back(std::move(P));
    }
    SubTerms.emplace_back(Factor, Prog);
    return;
  }
  case Kind::Div:
  case Kind::Mod:
  case Kind::Min:
  case Kind::Max: {
    IndexProgram::BinOp Op = E->getKind() == Kind::Div ? IndexProgram::BinOp::Div
                             : E->getKind() == Kind::Mod
                                 ? IndexProgram::BinOp::Mod
                             : E->getKind() == Kind::Min
                                 ? IndexProgram::BinOp::Min
                                 : IndexProgram::BinOp::Max;
    int Prog = compileBinary(Op, E->getOperands()[0], E->getOperands()[1]);
    if (Progs[std::size_t(Prog)].IsConst) {
      Base += Scale * Progs[std::size_t(Prog)].ConstVal;
      return;
    }
    SubTerms.emplace_back(Scale, Prog);
    return;
  }
  }
  unreachable("covered switch");
}

int ParallelExecutor::compileIndex(const AExpr &E) {
  auto It = ProgIds.find(E.get());
  if (It != ProgIds.end())
    return It->second;

  std::int64_t Base = 0;
  std::unordered_map<int, std::int64_t> Coeffs;
  std::vector<std::pair<std::int64_t, int>> SubTerms;
  toAffine(E, 1, Base, Coeffs, SubTerms);
  for (auto KV = Coeffs.begin(); KV != Coeffs.end();)
    KV = KV->second == 0 ? Coeffs.erase(KV) : std::next(KV);

  int Id;
  if (Coeffs.empty() && SubTerms.empty()) {
    IndexProgram P;
    P.F = IndexProgram::Form::Const;
    P.IsConst = true;
    P.ConstVal = Base;
    Id = int(Progs.size());
    Progs.push_back(std::move(P));
  } else if (Base == 0 && Coeffs.empty() && SubTerms.size() == 1 &&
             SubTerms[0].first == 1) {
    // The whole expression is a single sub-program; no wrapper needed.
    Id = SubTerms[0].second;
  } else {
    IndexProgram P;
    P.F = IndexProgram::Form::Affine;
    P.Base = Base;
    for (const auto &KV : Coeffs)
      P.SlotTerms.emplace_back(KV.second, KV.first); // (coeff, slot)
    // Deterministic term order (unordered_map iteration is not).
    std::sort(P.SlotTerms.begin(), P.SlotTerms.end(),
              [](const auto &A, const auto &B) { return A.second < B.second; });
    P.SubTerms = std::move(SubTerms);
    Id = int(Progs.size());
    Progs.push_back(std::move(P));
  }
  ProgIds.emplace(E.get(), Id);
  return Id;
}

int ParallelExecutor::compileExpr(const KExpr &E) {
  PExpr P;
  P.Kind = E.K;
  switch (E.K) {
  case KExpr::Kind::ConstScalar:
    P.Const = E.Const;
    break;
  case KExpr::Kind::IndexVal:
    P.Prog = compileIndex(E.Index);
    break;
  case KExpr::Kind::ReadVar:
    P.VarId = E.VarId;
    break;
  case KExpr::Kind::Load:
    P.BufferId = E.BufferId;
    P.Prog = compileIndex(E.Index);
    break;
  case KExpr::Kind::CallUF:
    P.UF = E.UF.get();
    P.FlopCost = std::uint64_t(E.UF->getFlopCost());
    for (const KExprPtr &A : E.Args)
      P.Args.push_back(compileExpr(*A));
    break;
  case KExpr::Kind::Select:
    for (const BoundsCheck &C : E.Checks)
      P.Checks.push_back(
          {compileIndex(C.Idx), compileIndex(C.Lo), compileIndex(C.Hi)});
    P.Then = compileExpr(*E.Then);
    P.Else = compileExpr(*E.Else);
    break;
  }
  int Id = int(Exprs.size());
  Exprs.push_back(std::move(P));
  return Id;
}

ParallelExecutor::PStmt ParallelExecutor::compileStmt(const Stmt &S) {
  PStmt P;
  P.Kind = S.K;
  switch (S.K) {
  case Stmt::Kind::Store:
    P.BufferId = S.BufferId;
    P.Prog = compileIndex(S.Index);
    P.Value = compileExpr(*S.Value);
    break;
  case Stmt::Kind::AssignVar:
    P.VarId = S.VarId;
    P.Value = compileExpr(*S.Value);
    break;
  case Stmt::Kind::Barrier:
    break;
  case Stmt::Kind::Loop: {
    int Slot = slotFor(S.LoopVar->getVarId());
    SlotNames[std::size_t(Slot)] = S.LoopVar->getVarName();
    P.Slot = Slot;
    P.CountProg = compileIndex(S.Count);
    P.Unroll = S.Unroll;
    for (const StmtPtr &C : S.Body)
      P.Body.push_back(compileStmt(*C));
    break;
  }
  }
  return P;
}

void ParallelExecutor::compileTopLevel(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &SP : Stmts) {
    const Stmt &S = *SP;
    bool Parallel = S.K == Stmt::Kind::Loop &&
                    (S.LK == LoopKind::Wrg || S.LK == LoopKind::Glb);
    if (!Parallel) {
      TopStmt T;
      T.S = compileStmt(S);
      TopLevel.push_back(std::move(T));
      continue;
    }
    // Flatten a perfectly nested chain of parallel loops into one
    // region (loop counts must be size-constant, which they are for
    // top-level Wrg/Glb nests: only size variables are in scope).
    TopStmt T;
    T.IsRegion = true;
    const Stmt *Cur = &S;
    while (true) {
      int CountProg = compileIndex(Cur->Count);
      if (!Progs[std::size_t(CountProg)].IsConst)
        break; // only possible at the first level (outer counts checked)
      int Slot = slotFor(Cur->LoopVar->getVarId());
      SlotNames[std::size_t(Slot)] = Cur->LoopVar->getVarName();
      T.Levels.push_back(
          {Slot, Progs[std::size_t(CountProg)].ConstVal, Cur->Unroll});
      const Stmt *Next =
          Cur->Body.size() == 1 && Cur->Body[0]->K == Stmt::Kind::Loop &&
                  (Cur->Body[0]->LK == LoopKind::Wrg ||
                   Cur->Body[0]->LK == LoopKind::Glb)
              ? Cur->Body[0].get()
              : nullptr;
      // Descend only when the next level's extent is size-constant;
      // otherwise the next loop becomes part of the sequential body.
      if (!Next ||
          !Progs[std::size_t(compileIndex(Next->Count))].IsConst)
        break;
      Cur = Next;
    }
    if (T.Levels.empty()) {
      // Symbolic top-level parallel count (not produced by our code
      // generator); fall back to sequential execution.
      T.IsRegion = false;
      T.S = compileStmt(S);
      TopLevel.push_back(std::move(T));
      continue;
    }
    for (const StmtPtr &C : Cur->Body)
      T.Inner.push_back(compileStmt(*C));
    TopLevel.push_back(std::move(T));
  }
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

ParallelExecutor::ParallelExecutor(const Kernel &K, const SizeEnv &Sizes,
                                   const CacheConfig &Cache, unsigned Jobs)
    : K(K), Cache(Cache), Jobs(Jobs) {
  for (const auto &KV : Sizes)
    SizeConsts.emplace(KV.first, KV.second);

  // Buffer layout: identical to ocl::Executor (every buffer, whatever
  // its space, advances the same virtual address cursor) so cache line
  // numbers match the sequential simulator bit-for-bit.
  Buffers.resize(K.Buffers.size());
  Main.PrivBufs.resize(K.Buffers.size());
  std::int64_t NextBase = 0;
  for (const BufferDecl &Decl : K.Buffers) {
    BufferStorage &B = Buffers[std::size_t(Decl.Id)];
    B.Kind = Decl.ElemKind;
    B.Space = Decl.Space;
    std::int64_t N = Decl.NumElems->evaluate(Sizes);
    if (N < 0)
      fatalError("negative buffer size for " + Decl.Name);
    B.VirtualBase = NextBase;
    std::int64_t Bytes = N * 4;
    NextBase += (Bytes + Cache.LineBytes - 1) / Cache.LineBytes *
                    Cache.LineBytes +
                Cache.LineBytes;
    BufferStorage &Store =
        Decl.Space == MemSpace::Global ? B : Main.PrivBufs[std::size_t(Decl.Id)];
    if (Decl.Space != MemSpace::Global) {
      Store.Kind = Decl.ElemKind;
      Store.Space = Decl.Space;
    }
    if (Decl.ElemKind == ScalarKind::Float)
      Store.F.assign(std::size_t(N), 0.0f);
    else
      Store.I.assign(std::size_t(N), 0);
  }

  Main.Registers.resize(K.Registers.size());
  for (const RegisterDecl &R : K.Registers)
    Main.Registers[std::size_t(R.Id)] =
        R.Kind == ScalarKind::Float ? Scalar(0.0f) : Scalar(std::int32_t(0));

  CacheSets = std::max<std::int64_t>(
      1, Cache.TotalBytes / (Cache.LineBytes * Cache.Ways));
  CacheTags.assign(std::size_t(CacheSets * Cache.Ways), -1);

  compileTopLevel(K.Body);
  Main.Slots.assign(SlotNames.size(), UnboundSlot);
  Main.CacheLive = true;
}

void ParallelExecutor::bindInput(int BufferId, const std::vector<float> &Data) {
  BufferStorage &B = storageFor(BufferId, Main);
  if (B.Kind == ScalarKind::Float) {
    if (Data.size() != B.F.size())
      fatalError("bindInput: size mismatch for buffer " +
                 K.buffer(BufferId).Name + " (got " +
                 std::to_string(Data.size()) + ", want " +
                 std::to_string(B.F.size()) + ")");
    B.F = Data;
    return;
  }
  if (Data.size() != B.I.size())
    fatalError("bindInput: size mismatch for int buffer");
  for (std::size_t I = 0; I != Data.size(); ++I)
    B.I[I] = std::int32_t(Data[I]);
}

std::vector<float> ParallelExecutor::bufferContents(int BufferId) const {
  const BufferStorage &B =
      Buffers[std::size_t(BufferId)].Space == MemSpace::Global
          ? Buffers[std::size_t(BufferId)]
          : Main.PrivBufs[std::size_t(BufferId)];
  if (B.Kind == ScalarKind::Float)
    return B.F;
  std::vector<float> Out(B.I.size());
  for (std::size_t I = 0; I != B.I.size(); ++I)
    Out[I] = float(B.I[I]);
  return Out;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

std::int64_t ParallelExecutor::evalProgram(int ProgId, ShardState &S) {
  const IndexProgram &P = Progs[std::size_t(ProgId)];
  switch (P.F) {
  case IndexProgram::Form::Const:
    return P.ConstVal;
  case IndexProgram::Form::Affine: {
    std::int64_t V = P.Base;
    for (const auto &T : P.SlotTerms) {
      std::int64_t SlotVal = S.Slots[std::size_t(T.second)];
      if (SlotVal == UnboundSlot)
        fatalError("unbound variable '" + SlotNames[std::size_t(T.second)] +
                   "' in evaluate");
      V += T.first * SlotVal;
    }
    for (const auto &T : P.SubTerms)
      V += T.first * evalProgram(T.second, S);
    return V;
  }
  case IndexProgram::Form::Binary: {
    std::int64_t VA = evalProgram(P.A, S);
    std::int64_t VB = evalProgram(P.B, S);
    switch (P.Op) {
    case IndexProgram::BinOp::Div:
      if (VB == 0)
        fatalError("division by zero in evaluate");
      return floorDivInt(VA, VB);
    case IndexProgram::BinOp::Mod:
      if (VB == 0)
        fatalError("modulo by zero in evaluate");
      return floorModInt(VA, VB);
    case IndexProgram::BinOp::Min:
      return std::min(VA, VB);
    case IndexProgram::BinOp::Max:
      return std::max(VA, VB);
    case IndexProgram::BinOp::Mul:
      return VA * VB;
    }
    unreachable("covered switch");
  }
  }
  unreachable("covered switch");
}

ParallelExecutor::BufferStorage &
ParallelExecutor::storageFor(int BufferId, ShardState &S) {
  BufferStorage &Shared = Buffers[std::size_t(BufferId)];
  if (Shared.Space == MemSpace::Global)
    return Shared;
  return S.PrivBufs[std::size_t(BufferId)];
}

void ParallelExecutor::touchLine(std::int64_t Line, ShardState &S) {
  if (!S.CacheLive) {
    S.Trace.push_back(Line);
    return;
  }
  std::int64_t Set = Line % CacheSets;
  std::int64_t *Ways = &CacheTags[std::size_t(Set * Cache.Ways)];
  // LRU within the set: front is most recently used.
  for (int W = 0; W != Cache.Ways; ++W) {
    if (Ways[W] != Line)
      continue;
    for (int X = W; X > 0; --X)
      Ways[X] = Ways[X - 1];
    Ways[0] = Line;
    return;
  }
  ++S.Counters.GlobalLoadLineMisses;
  for (int X = Cache.Ways - 1; X > 0; --X)
    Ways[X] = Ways[X - 1];
  Ways[0] = Line;
}

Scalar ParallelExecutor::loadFrom(int BufferId, std::int64_t Index,
                                  ShardState &S) {
  BufferStorage &B = storageFor(BufferId, S);
  std::size_t N = B.Kind == ScalarKind::Float ? B.F.size() : B.I.size();
  if (Index < 0 || std::size_t(Index) >= N)
    fatalError("simulated load out of bounds: " + K.buffer(BufferId).Name +
               "[" + std::to_string(Index) + "] of " + std::to_string(N));
  switch (B.Space) {
  case MemSpace::Global: {
    ++S.Counters.GlobalLoads;
    std::int64_t Addr = Buffers[std::size_t(BufferId)].VirtualBase + Index * 4;
    touchLine(Addr / Cache.LineBytes, S);
    break;
  }
  case MemSpace::Local:
    ++S.Counters.LocalLoads;
    break;
  case MemSpace::Private:
    ++S.Counters.PrivateAccesses;
    break;
  }
  if (B.Kind == ScalarKind::Float)
    return Scalar(B.F[std::size_t(Index)]);
  return Scalar(B.I[std::size_t(Index)]);
}

void ParallelExecutor::storeTo(int BufferId, std::int64_t Index, Scalar V,
                               ShardState &S) {
  BufferStorage &B = storageFor(BufferId, S);
  std::size_t N = B.Kind == ScalarKind::Float ? B.F.size() : B.I.size();
  if (Index < 0 || std::size_t(Index) >= N)
    fatalError("simulated store out of bounds: " + K.buffer(BufferId).Name +
               "[" + std::to_string(Index) + "] of " + std::to_string(N));
  switch (B.Space) {
  case MemSpace::Global:
    ++S.Counters.GlobalStores;
    break;
  case MemSpace::Local:
    ++S.Counters.LocalStores;
    break;
  case MemSpace::Private:
    ++S.Counters.PrivateAccesses;
    break;
  }
  if (B.Space == MemSpace::Global) {
    // Global buffers are shared across shards. Clamped (remainder)
    // tilings store overlap positions from two adjacent work-groups —
    // with identical values by construction — so the write-write race
    // is benign; relaxed atomics keep it defined behavior.
    if (B.Kind == ScalarKind::Float) {
      std::atomic_ref<float>(B.F[std::size_t(Index)])
          .store(V.asFloat(), std::memory_order_relaxed);
      return;
    }
    std::atomic_ref<std::int32_t>(B.I[std::size_t(Index)])
        .store(V.asInt(), std::memory_order_relaxed);
    return;
  }
  if (B.Kind == ScalarKind::Float) {
    B.F[std::size_t(Index)] = V.asFloat();
    return;
  }
  B.I[std::size_t(Index)] = V.asInt();
}

Scalar ParallelExecutor::evalExpr(int ExprId, ShardState &S, unsigned Depth) {
  const PExpr &E = Exprs[std::size_t(ExprId)];
  switch (E.Kind) {
  case KExpr::Kind::ConstScalar:
    return E.Const;
  case KExpr::Kind::IndexVal:
    return Scalar(std::int32_t(evalProgram(E.Prog, S)));
  case KExpr::Kind::ReadVar:
    return S.Registers[std::size_t(E.VarId)];
  case KExpr::Kind::Load:
    return loadFrom(E.BufferId, evalProgram(E.Prog, S), S);
  case KExpr::Kind::CallUF: {
    if (S.ArgScratch.size() <= Depth)
      S.ArgScratch.resize(Depth + 1);
    // Re-index ArgScratch on every access: evaluating an argument can
    // recurse into a deeper CallUF, and the resize above then moves the
    // inner vectors, invalidating any reference held across the call.
    S.ArgScratch[Depth].clear();
    for (int A : E.Args) {
      Scalar V = evalExpr(A, S, Depth + 1);
      S.ArgScratch[Depth].push_back(V);
    }
    ++S.Counters.UserFunCalls;
    S.Counters.Flops += E.FlopCost;
    return E.UF->evaluate(S.ArgScratch[Depth]);
  }
  case KExpr::Kind::Select: {
    ++S.Counters.SelectEvals;
    for (const PExpr::PCheck &C : E.Checks) {
      std::int64_t I = evalProgram(C.Idx, S);
      if (I < evalProgram(C.Lo, S) || I >= evalProgram(C.Hi, S))
        return evalExpr(E.Else, S, Depth);
    }
    return evalExpr(E.Then, S, Depth);
  }
  }
  unreachable("covered switch");
}

void ParallelExecutor::execStmts(const std::vector<PStmt> &Stmts,
                                 ShardState &S) {
  for (const PStmt &St : Stmts)
    execStmt(St, S);
}

void ParallelExecutor::execStmt(const PStmt &St, ShardState &S) {
  switch (St.Kind) {
  case Stmt::Kind::Store: {
    Scalar V = evalExpr(St.Value, S, 0);
    storeTo(St.BufferId, evalProgram(St.Prog, S), V, S);
    return;
  }
  case Stmt::Kind::AssignVar:
    S.Registers[std::size_t(St.VarId)] = evalExpr(St.Value, S, 0);
    return;
  case Stmt::Kind::Barrier:
    ++S.Counters.Barriers;
    return;
  case Stmt::Kind::Loop: {
    std::int64_t Extent = evalProgram(St.CountProg, S);
    for (std::int64_t I = 0; I != Extent; ++I) {
      S.Slots[std::size_t(St.Slot)] = I;
      execStmts(St.Body, S);
    }
    S.Slots[std::size_t(St.Slot)] = UnboundSlot;
    S.Counters.LoopIterations += St.Unroll ? 1 : std::uint64_t(Extent);
    return;
  }
  }
  unreachable("covered switch");
}

ParallelExecutor::ShardState ParallelExecutor::makeShard() const {
  ShardState S;
  S.Slots = Main.Slots;
  S.Registers = Main.Registers;
  S.PrivBufs = Main.PrivBufs;
  S.CacheLive = false;
  return S;
}

void ParallelExecutor::runRegion(const TopStmt &Region) {
  std::int64_t Total = 1;
  for (const RegionLevel &L : Region.Levels)
    Total *= L.Extent;

  // Loop-iteration counts of the region levels are added analytically:
  // level k executes once per combination of the outer levels and adds
  // its extent (or 1 when unrolled), exactly as the sequential nest.
  std::uint64_t RegionIters = 0;
  std::uint64_t OuterExec = 1;
  for (const RegionLevel &L : Region.Levels) {
    RegionIters += OuterExec * (L.Unroll ? 1 : std::uint64_t(L.Extent));
    OuterExec *= std::uint64_t(L.Extent);
  }

  if (Total > 0) {
    ThreadPool &Pool = ThreadPool::shared();
    unsigned Par = Jobs == 0 ? Pool.workers()
                             : std::min(Jobs, Pool.workers());
    std::size_t NumChunks =
        std::size_t(std::min<std::int64_t>(Total, std::int64_t(Par) * 4));
    std::vector<ShardState> Shards;
    Shards.reserve(NumChunks);
    for (std::size_t C = 0; C != NumChunks; ++C)
      Shards.push_back(makeShard());

    // Precompute row-major strides for index decomposition.
    std::vector<std::int64_t> Strides(Region.Levels.size(), 1);
    for (std::size_t L = Region.Levels.size(); L-- > 1;)
      Strides[L - 1] = Strides[L] * Region.Levels[L].Extent;

    std::int64_t Chunk = Total / std::int64_t(NumChunks);
    std::int64_t Extra = Total % std::int64_t(NumChunks);
    auto ChunkLo = [&](std::size_t C) {
      std::int64_t SC = std::int64_t(C);
      return SC * Chunk + std::min(SC, Extra);
    };

    Pool.parallelFor(
        NumChunks,
        [&](std::size_t C) {
          obs::Span ChunkSpan("sim.chunk", "sim");
          ChunkSpan.arg("chunk", std::int64_t(C));
          ShardState &S = Shards[C];
          std::int64_t Lo = ChunkLo(C), Hi = ChunkLo(C + 1);
          ChunkSpan.arg("items", Hi - Lo);
          for (std::int64_t I = Lo; I != Hi; ++I) {
            for (std::size_t L = 0; L != Region.Levels.size(); ++L)
              S.Slots[std::size_t(Region.Levels[L].Slot)] =
                  (I / Strides[L]) % Region.Levels[L].Extent;
            execStmts(Region.Inner, S);
          }
        },
        Par);

    // Merge deterministically: counters by summation, the global-load
    // traces replayed through the shared cache in ascending chunk order
    // (their concatenation is exactly the sequential access stream),
    // and the last chunk's registers + local/private buffers adopted
    // (sequential last-iteration-wins).
    for (ShardState &S : Shards) {
      Main.Counters.GlobalLoads += S.Counters.GlobalLoads;
      Main.Counters.GlobalStores += S.Counters.GlobalStores;
      Main.Counters.GlobalLoadLineMisses += S.Counters.GlobalLoadLineMisses;
      Main.Counters.LocalLoads += S.Counters.LocalLoads;
      Main.Counters.LocalStores += S.Counters.LocalStores;
      Main.Counters.PrivateAccesses += S.Counters.PrivateAccesses;
      Main.Counters.Flops += S.Counters.Flops;
      Main.Counters.UserFunCalls += S.Counters.UserFunCalls;
      Main.Counters.LoopIterations += S.Counters.LoopIterations;
      Main.Counters.Barriers += S.Counters.Barriers;
      Main.Counters.SelectEvals += S.Counters.SelectEvals;
      for (std::int64_t Line : S.Trace)
        touchLine(Line, Main);
    }
    Main.Registers = std::move(Shards.back().Registers);
    Main.PrivBufs = std::move(Shards.back().PrivBufs);
  }
  Main.Counters.LoopIterations += RegionIters;
}

void ParallelExecutor::run() {
  obs::Span RunSpan("sim.run", "sim");
  RunSpan.arg("kernel", K.Name);
  RunSpan.arg("jobs", std::int64_t(Jobs));
  for (const TopStmt &T : TopLevel) {
    if (T.IsRegion)
      runRegion(T);
    else
      execStmt(T.S, Main);
  }
  RunSpan.arg("flops", std::int64_t(Main.Counters.Flops));
}
