//===- KernelAst.h - Imperative kernel AST ---------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The imperative kernel AST produced by the code generator. It plays
/// the role of Lift's OpenCL AST: one Kernel is (a) pretty-printed to
/// OpenCL C source by the Emitter and (b) executed by the NDRange
/// simulator. Index arithmetic is carried as symbolic ArithExprs over
/// loop variables and size parameters, which the simulator evaluates
/// per iteration and the coalescing analysis differentiates per lane.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_KERNELAST_H
#define LIFT_OCL_KERNELAST_H

#include "arith/ArithExpr.h"
#include "ir/UserFun.h"

#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ocl {

/// OpenCL memory spaces for buffers.
enum class MemSpace { Global, Local, Private };

const char *memSpaceName(MemSpace S);

/// A linear buffer of scalars, identified by index into
/// Kernel::Buffers.
struct BufferDecl {
  int Id = -1;
  std::string Name;
  ir::ScalarKind ElemKind = ir::ScalarKind::Float;
  MemSpace Space = MemSpace::Global;
  AExpr NumElems;        ///< symbolic element count
  bool IsInput = false;  ///< bound to a program input
  bool IsOutput = false; ///< the kernel result
};

/// A scalar register (OpenCL: a private variable), identified by index
/// into Kernel::Registers.
struct RegisterDecl {
  int Id = -1;
  std::string Name;
  ir::ScalarKind Kind = ir::ScalarKind::Float;
};

class KExpr;
using KExprPtr = std::shared_ptr<const KExpr>;

/// A conjunction of half-open bounds checks Lo <= Idx < Hi, used by
/// Select for constant-padding: out-of-bounds lanes read the constant
/// instead of memory.
struct BoundsCheck {
  AExpr Idx;
  AExpr Lo;
  AExpr Hi;
};

/// A scalar kernel expression.
class KExpr {
public:
  enum class Kind {
    ConstScalar, ///< literal float/int
    IndexVal,    ///< value of an index expression as an int scalar
    ReadVar,     ///< read a register
    Load,        ///< buf[idx]
    CallUF,      ///< user function application
    Select,      ///< bounds-checked choice (constant pad)
  };

  Kind K = Kind::ConstScalar;
  ir::Scalar Const;                ///< ConstScalar
  AExpr Index;                     ///< IndexVal / Load index
  int VarId = -1;                  ///< ReadVar
  int BufferId = -1;               ///< Load
  ir::UserFunPtr UF;               ///< CallUF
  std::vector<KExprPtr> Args;      ///< CallUF arguments
  std::vector<BoundsCheck> Checks; ///< Select condition (conjunction)
  KExprPtr Then, Else;             ///< Select branches
};

KExprPtr kConst(ir::Scalar V);
KExprPtr kIndexVal(AExpr E);
KExprPtr kReadVar(int VarId);
KExprPtr kLoad(int BufferId, AExpr Index);
KExprPtr kCallUF(ir::UserFunPtr UF, std::vector<KExprPtr> Args);
KExprPtr kSelect(std::vector<BoundsCheck> Checks, KExprPtr Then,
                 KExprPtr Else);

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

/// How a loop's iteration space maps onto the NDRange.
enum class LoopKind {
  Seq, ///< plain sequential loop inside one work-item
  Glb, ///< iterations distributed over global work-item ids (dim Dim)
  Wrg, ///< iterations distributed over work-group ids (dim Dim)
  Lcl, ///< iterations distributed over local work-item ids (dim Dim)
};

const char *loopKindName(LoopKind K);

/// A kernel statement.
class Stmt {
public:
  enum class Kind {
    Store,     ///< buf[idx] = value
    AssignVar, ///< reg = value
    Loop,      ///< for-loop (sequential or NDRange-mapped)
    Barrier,   ///< work-group barrier
  };

  Kind K = Kind::Store;

  // Store / AssignVar
  int BufferId = -1;
  AExpr Index;
  int VarId = -1;
  KExprPtr Value;

  // Loop
  LoopKind LK = LoopKind::Seq;
  int Dim = 0;            ///< NDRange dimension for Glb/Wrg/Lcl
  AExpr LoopVar;          ///< the ArithExpr Var bound per iteration
  AExpr Count;            ///< iteration count (loop runs 0..Count-1)
  bool Unroll = false;    ///< unrolled by the emitter (reduceSeqUnroll)
  std::vector<StmtPtr> Body;
};

StmtPtr sStore(int BufferId, AExpr Index, KExprPtr Value);
StmtPtr sAssign(int VarId, KExprPtr Value);
StmtPtr sLoop(LoopKind LK, int Dim, AExpr LoopVar, AExpr Count,
              std::vector<StmtPtr> Body, bool Unroll = false);
StmtPtr sBarrier();

/// A complete kernel: declarations plus a statement list. The NDRange
/// shape is implicit in the loop structure (Glb/Wrg/Lcl loop counts);
/// the launch configuration (work-group sizes) is supplied separately
/// at execution time and only affects the device timing model.
struct Kernel {
  std::string Name = "kernel_fn";
  std::vector<BufferDecl> Buffers;
  std::vector<RegisterDecl> Registers;
  std::vector<StmtPtr> Body;
  /// Size variables (ArithExpr var ids and names) that must be bound at
  /// launch; emitted as int kernel arguments.
  std::vector<std::pair<unsigned, std::string>> SizeArgs;
  /// User functions referenced by the body (for emission).
  std::vector<ir::UserFunPtr> UserFuns;

  int outputBufferId() const;
  const BufferDecl &buffer(int Id) const { return Buffers[std::size_t(Id)]; }

  /// Registers a user function (dedup by pointer identity).
  void noteUserFun(const ir::UserFunPtr &UF);
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_KERNELAST_H
