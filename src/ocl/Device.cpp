//===- Device.cpp - GPU device timing models ---------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ocl/Device.h"

#include <algorithm>
#include <cmath>

using namespace lift;
using namespace lift::ocl;

DeviceSpec lift::ocl::deviceNvidiaK20c() {
  DeviceSpec D;
  D.Name = "NvidiaK20c";
  D.DramBandwidth = 140e9;  // ECC-on effective of the 208 GB/s peak
  D.CacheBandwidth = 1300e9; // L1/tex + L2 hit bandwidth, aggregate
  D.LocalBandwidth = 900e9;  // shared memory with bank-conflict slack
  D.OpsPerSecond = 1.1e12;  // effective scalar op throughput
  D.Cache = CacheConfig{128, std::int64_t(1280) * 1024, 4}; // 1.25 MB L2
  D.NumCUs = 13;
  D.ThreadsPerCU = 2048;
  D.MaxGroupsPerCU = 16;
  D.LocalMemPerCU = 48 * 1024;
  D.MaxWorkGroupSize = 1024;
  D.WarpSize = 32;
  D.BarrierCost = 30e-9;
  D.LaunchOverhead = 20e-6;
  return D;
}

DeviceSpec lift::ocl::deviceAmdHd7970() {
  DeviceSpec D;
  D.Name = "AmdHd7970";
  D.DramBandwidth = 230e9;  // ~87% of 264 GB/s
  D.CacheBandwidth = 1100e9; // L1 vector caches + L2, aggregate
  // LDS bandwidth degraded by bank conflicts in halo access patterns.
  D.LocalBandwidth = 650e9;
  D.OpsPerSecond = 1.3e12;
  D.Cache = CacheConfig{64, std::int64_t(768) * 1024, 4}; // 768 KB L2
  D.NumCUs = 32;
  D.ThreadsPerCU = 2560; // 40 wavefronts x 64
  D.MaxGroupsPerCU = 16;
  D.LocalMemPerCU = 64 * 1024;
  D.MaxWorkGroupSize = 256;
  D.WarpSize = 64;
  // Wavefront-wide barriers on GCN are comparatively expensive.
  D.BarrierCost = 150e-9;
  D.LaunchOverhead = 20e-6;
  return D;
}

DeviceSpec lift::ocl::deviceMaliT628() {
  DeviceSpec D;
  D.Name = "MaliT628";
  D.DramBandwidth = 5.5e9; // shared LPDDR3, effective
  D.CacheBandwidth = 17e9;
  // Mali has no scratchpad: OpenCL local memory is emulated in the
  // same L2/DRAM path, with extra address translation overhead, so
  // staging through it is strictly slower than reading through the
  // cache (ARM's own optimization guides advise against local memory).
  D.LocalBandwidth = 6e9;
  D.OpsPerSecond = 35e9;
  D.Cache = CacheConfig{64, std::int64_t(256) * 1024, 4}; // 256 KB L2
  D.NumCUs = 6;
  D.ThreadsPerCU = 256;
  D.MaxGroupsPerCU = 8;
  D.LocalMemPerCU = 32 * 1024;
  D.MaxWorkGroupSize = 256;
  D.WarpSize = 4; // quad-style threading; mild granularity effect
  D.BarrierCost = 150e-9;
  D.LaunchOverhead = 60e-6;
  return D;
}

std::vector<DeviceSpec> lift::ocl::paperDevices() {
  return {deviceNvidiaK20c(), deviceAmdHd7970(), deviceMaliT628()};
}

Timing lift::ocl::estimateTime(const DeviceSpec &Dev, const ExecCounters &C,
                               const NDRangeInfo &ND,
                               const LaunchParams &LP) {
  Timing T;

  // Memory engine: line misses stream from DRAM, hits come from the
  // cache; stores are written through.
  double MissBytes =
      double(C.GlobalLoadLineMisses) * double(Dev.Cache.LineBytes);
  double StoreBytes = double(C.GlobalStores) * 4.0;
  double HitLoads =
      double(C.GlobalLoads - std::min(C.GlobalLoads, C.GlobalLoadLineMisses));
  T.MemTime = (MissBytes + StoreBytes) / Dev.DramBandwidth +
              HitLoads * 4.0 / Dev.CacheBandwidth;

  // Local memory engine.
  T.LocalTime =
      double(C.LocalLoads + C.LocalStores) * 4.0 / Dev.LocalBandwidth;

  // Compute engine: user-function flops plus per-access/loop overhead
  // instructions.
  double Ops = double(C.Flops) +
               double(C.GlobalLoads + C.GlobalStores) * 1.0 +
               double(C.LocalLoads + C.LocalStores) * 1.0 +
               double(C.PrivateAccesses) * 0.5 +
               double(C.LoopIterations) * 2.0 +
               double(C.SelectEvals) * 2.0;
  T.ComputeTime = Ops / Dev.OpsPerSecond;

  // Utilization: how much of the machine the launch can keep busy.
  std::int64_t WgSize =
      ND.UsesWorkGroups
          ? ND.LocalSize[0] * ND.LocalSize[1] * ND.LocalSize[2]
          : std::min<std::int64_t>(LP.WorkGroupSize, ND.totalWorkItems());
  WgSize = std::max<std::int64_t>(1, WgSize);

  // Resident groups per CU, limited by local memory use.
  std::int64_t GroupsPerCU = Dev.MaxGroupsPerCU;
  if (ND.LocalMemBytes > 0)
    GroupsPerCU = std::min(
        GroupsPerCU,
        std::max<std::int64_t>(1, Dev.LocalMemPerCU / ND.LocalMemBytes));
  std::int64_t ResidentPerCU =
      std::min(Dev.ThreadsPerCU, GroupsPerCU * WgSize);
  std::int64_t Concurrent = Dev.NumCUs * ResidentPerCU;

  // Warp granularity: partially filled warps waste lanes.
  double WarpEff = 1.0;
  if (Dev.WarpSize > 1) {
    double Warps = std::ceil(double(WgSize) / double(Dev.WarpSize));
    WarpEff = double(WgSize) / (Warps * double(Dev.WarpSize));
  }

  double Active =
      double(std::min<std::int64_t>(ND.totalWorkItems(), Concurrent)) *
      WarpEff;
  T.Utilization = std::clamp(
      Active / double(Dev.maxConcurrentThreads()), 1e-4, 1.0);

  T.BarrierTime = double(C.Barriers) * Dev.BarrierCost;
  T.LaunchTime = Dev.LaunchOverhead;

  double Busy = std::max({T.MemTime, T.ComputeTime, T.LocalTime});
  T.Total = Busy / T.Utilization + T.BarrierTime + T.LaunchTime;
  return T;
}
