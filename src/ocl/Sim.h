//===- Sim.h - Instrumented NDRange simulator ------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenCL-runtime substitute: executes kernel ASTs with NDRange
/// semantics and instruments the memory system.
///
/// The paper ran on real GPUs; we have none, so this simulator executes
/// the *same kernels our code generator emits* and measures the effects
/// the paper's results hinge on:
///
///  * every global load/store is pushed through a line-granular cache
///    model, so coalescing (strided lanes touch many lines) and data
///    reuse (neighboring work-items hit each other's lines) are
///    *measured*, not assumed;
///  * local-memory traffic, barriers, loop overhead and user-function
///    arithmetic are counted;
///  * work-group/work-item structure is honored: a Lcl loop completes
///    for all local ids before the next statement runs, giving barrier
///    semantics; Wrg iterations are independent work-groups.
///
/// A DeviceModel (Device.h) converts the measured counters into a
/// predicted runtime for a particular GPU.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_SIM_H
#define LIFT_OCL_SIM_H

#include "ocl/KernelAst.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lift {
namespace ocl {

/// Concrete bindings for symbolic size variables, keyed by ArithExpr
/// variable id.
using SizeEnv = std::unordered_map<unsigned, std::int64_t>;

/// Cache geometry used while executing (models the GPU's last-level
/// cache in front of DRAM).
struct CacheConfig {
  int LineBytes = 128;
  std::int64_t TotalBytes = 1256 * 1024;
  /// Direct-mapped if 1; N-way set associative (LRU) otherwise.
  int Ways = 4;
};

/// Event counters accumulated over one kernel execution.
struct ExecCounters {
  std::uint64_t GlobalLoads = 0;
  std::uint64_t GlobalStores = 0;
  std::uint64_t GlobalLoadLineMisses = 0;
  std::uint64_t LocalLoads = 0;
  std::uint64_t LocalStores = 0;
  std::uint64_t PrivateAccesses = 0;
  std::uint64_t Flops = 0;          ///< weighted user-function work
  std::uint64_t UserFunCalls = 0;
  std::uint64_t LoopIterations = 0; ///< total iterations entered
  std::uint64_t Barriers = 0;       ///< barrier executions (per group)
  std::uint64_t SelectEvals = 0;    ///< bounds checks evaluated
};

/// Static NDRange shape derived from the kernel's loop structure with
/// sizes bound: how many work-items/groups an exact-fit launch needs.
struct NDRangeInfo {
  std::int64_t GlobalSize[3] = {1, 1, 1}; ///< work-items per dim
  std::int64_t NumGroups[3] = {1, 1, 1};  ///< work-groups per dim
  std::int64_t LocalSize[3] = {1, 1, 1};  ///< work-items per group
  bool UsesWorkGroups = false; ///< kernel has Wrg/Lcl structure
  std::int64_t LocalMemBytes = 0; ///< local memory per work-group

  std::int64_t totalWorkItems() const;
  std::int64_t totalWorkGroups() const;
};

/// Computes the exact-fit NDRange shape of \p K under \p Sizes.
NDRangeInfo analyzeNDRange(const Kernel &K, const SizeEnv &Sizes);

/// Adds one execution's counters into the global metrics registry
/// (obs/Metrics.h) under \p Prefix (e.g. "sim." -> "sim.global_loads").
/// Used by the runner for whole-process roll-ups and by the tuner for
/// its per-candidate deterministic roll-ups.
void exportCountersToMetrics(const ExecCounters &C,
                             const std::string &Prefix);

/// Executes kernels functionally while counting events.
class Executor {
public:
  Executor(const Kernel &K, const SizeEnv &Sizes,
           const CacheConfig &Cache = CacheConfig());

  /// Binds the contents of an input buffer (floats are converted to the
  /// buffer's element kind).
  void bindInput(int BufferId, const std::vector<float> &Data);

  /// Runs the kernel body once.
  void run();

  /// Returns a buffer's contents as floats (ints converted).
  std::vector<float> bufferContents(int BufferId) const;

  const ExecCounters &counters() const { return Counters; }

private:
  struct BufferStorage {
    ir::ScalarKind Kind = ir::ScalarKind::Float;
    std::vector<float> F;
    std::vector<std::int32_t> I;
    std::int64_t VirtualBase = 0; ///< global address for the cache model
  };

  const Kernel &K;
  SizeEnv Env; ///< size vars + live loop vars
  CacheConfig Cache;
  std::vector<BufferStorage> Buffers;
  std::vector<ir::Scalar> Registers;
  ExecCounters Counters;

  // Set-associative cache state: Sets x Ways line tags (-1 = empty)
  // with LRU order (front = most recent).
  std::vector<std::int64_t> CacheTags;
  std::int64_t CacheSets = 0;

  void execStmts(const std::vector<StmtPtr> &Stmts);
  void execStmt(const Stmt &S);
  ir::Scalar evalExpr(const KExpr &E);
  std::int64_t evalIndex(const AExpr &A);
  void touchCache(const BufferStorage &B, std::int64_t ElemIndex);
  ir::Scalar loadFrom(int BufferId, std::int64_t Index);
  void storeTo(int BufferId, std::int64_t Index, ir::Scalar V);
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_SIM_H
