//===- KernelAst.cpp - Imperative kernel AST --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ocl/KernelAst.h"

#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ocl;

const char *lift::ocl::memSpaceName(MemSpace S) {
  switch (S) {
  case MemSpace::Global:
    return "global";
  case MemSpace::Local:
    return "local";
  case MemSpace::Private:
    return "private";
  }
  unreachable("covered switch");
}

const char *lift::ocl::loopKindName(LoopKind K) {
  switch (K) {
  case LoopKind::Seq:
    return "seq";
  case LoopKind::Glb:
    return "glb";
  case LoopKind::Wrg:
    return "wrg";
  case LoopKind::Lcl:
    return "lcl";
  }
  unreachable("covered switch");
}

KExprPtr lift::ocl::kConst(ir::Scalar V) {
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::ConstScalar;
  E->Const = V;
  return E;
}

KExprPtr lift::ocl::kIndexVal(AExpr Ex) {
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::IndexVal;
  E->Index = std::move(Ex);
  return E;
}

KExprPtr lift::ocl::kReadVar(int VarId) {
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::ReadVar;
  E->VarId = VarId;
  return E;
}

KExprPtr lift::ocl::kLoad(int BufferId, AExpr Index) {
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::Load;
  E->BufferId = BufferId;
  E->Index = std::move(Index);
  return E;
}

KExprPtr lift::ocl::kCallUF(ir::UserFunPtr UF, std::vector<KExprPtr> Args) {
  assert(UF && Args.size() == UF->arity() && "kCallUF arity mismatch");
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::CallUF;
  E->UF = std::move(UF);
  E->Args = std::move(Args);
  return E;
}

KExprPtr lift::ocl::kSelect(std::vector<BoundsCheck> Checks, KExprPtr Then,
                            KExprPtr Else) {
  assert(!Checks.empty() && Then && Else && "malformed select");
  auto E = std::make_shared<KExpr>();
  E->K = KExpr::Kind::Select;
  E->Checks = std::move(Checks);
  E->Then = std::move(Then);
  E->Else = std::move(Else);
  return E;
}

StmtPtr lift::ocl::sStore(int BufferId, AExpr Index, KExprPtr Value) {
  auto S = std::make_shared<Stmt>();
  S->K = Stmt::Kind::Store;
  S->BufferId = BufferId;
  S->Index = std::move(Index);
  S->Value = std::move(Value);
  return S;
}

StmtPtr lift::ocl::sAssign(int VarId, KExprPtr Value) {
  auto S = std::make_shared<Stmt>();
  S->K = Stmt::Kind::AssignVar;
  S->VarId = VarId;
  S->Value = std::move(Value);
  return S;
}

StmtPtr lift::ocl::sLoop(LoopKind LK, int Dim, AExpr LoopVar, AExpr Count,
                         std::vector<StmtPtr> Body, bool Unroll) {
  assert(LoopVar->getKind() == ArithExpr::Kind::Var &&
         "loop variable must be an ArithExpr variable");
  auto S = std::make_shared<Stmt>();
  S->K = Stmt::Kind::Loop;
  S->LK = LK;
  S->Dim = Dim;
  S->LoopVar = std::move(LoopVar);
  S->Count = std::move(Count);
  S->Body = std::move(Body);
  S->Unroll = Unroll;
  return S;
}

StmtPtr lift::ocl::sBarrier() {
  auto S = std::make_shared<Stmt>();
  S->K = Stmt::Kind::Barrier;
  return S;
}

int Kernel::outputBufferId() const {
  for (const BufferDecl &B : Buffers)
    if (B.IsOutput)
      return B.Id;
  fatalError("kernel has no output buffer");
}

void Kernel::noteUserFun(const ir::UserFunPtr &UF) {
  for (const ir::UserFunPtr &Existing : UserFuns)
    if (Existing.get() == UF.get())
      return;
  UserFuns.push_back(UF);
}
