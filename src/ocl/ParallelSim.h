//===- ParallelSim.h - Compiled, multi-threaded NDRange simulator -*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A drop-in replacement for ocl::Executor that (a) compiles the kernel
/// AST to an execution plan before running it and (b) shards the
/// outermost parallel loop nest (Wrg/Glb) across a thread pool.
///
/// Why a compiled plan: the tree-walking Executor spends most of its
/// time in std::unordered_map environment lookups and per-call argument
/// vector allocation. The plan replaces the environment with a dense
/// slot array (size variables constant-folded at compile time, loop
/// variables assigned fixed slots), flattens every symbolic index
/// expression into a postfix program evaluated on a reusable stack, and
/// reuses per-depth argument scratch buffers for user-function calls.
///
/// Why sharding is exact: iterations of Wrg/Glb loops are independent
/// work-groups/work-items by construction of the Lift code generator
/// (they write disjoint global elements and only use registers/local
/// memory they first wrote themselves). Each shard executes a
/// contiguous chunk of the flattened iteration space with its own
/// counters, register file, local/private buffers and *global-load
/// trace*; after the region:
///  * counters merge by summation (order-independent),
///  * the per-chunk global-load line traces are replayed through the
///    single set-associative LRU cache model in ascending chunk order —
///    concatenated chunk traces equal the sequential access stream
///    exactly, so GlobalLoadLineMisses (and every other counter) is
///    bit-identical to ocl::Executor for any thread count,
///  * the last chunk's registers and local/private buffers are adopted
///    (sequential last-iteration-wins semantics).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_OCL_PARALLELSIM_H
#define LIFT_OCL_PARALLELSIM_H

#include "ocl/Sim.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace lift {

class ThreadPool;

namespace ocl {

/// Executes kernels functionally while counting events, like
/// ocl::Executor, but from a compiled plan and with the outermost
/// parallel loop nest sharded over \p Jobs pool workers (0 = all
/// hardware workers, 1 = single-threaded but still compiled).
class ParallelExecutor {
public:
  ParallelExecutor(const Kernel &K, const SizeEnv &Sizes,
                   const CacheConfig &Cache = CacheConfig(),
                   unsigned Jobs = 0);

  /// Binds the contents of an input buffer (floats are converted to the
  /// buffer's element kind).
  void bindInput(int BufferId, const std::vector<float> &Data);

  /// Runs the kernel body once.
  void run();

  /// Returns a buffer's contents as floats (ints converted).
  std::vector<float> bufferContents(int BufferId) const;

  const ExecCounters &counters() const { return Main.Counters; }

private:
  //===--------------------------------------------------------------------===//
  // Compiled plan representation
  //===--------------------------------------------------------------------===//

  /// A compiled index expression, stored in the Progs arena. Size
  /// variables are folded to constants at compile time, so a program is
  /// one of:
  ///  * Const — fully folded;
  ///  * Affine — Base + sum(Coeff * slot) + sum(Coeff * sub-program),
  ///    the dominant form: flat row-major indices are affine in the
  ///    loop variables with clamp() sub-terms for boundary handling;
  ///  * Binary — floor div/mod, min, max (or a product of two symbolic
  ///    factors) over two sub-programs.
  struct IndexProgram {
    enum class Form : std::uint8_t { Const, Affine, Binary };
    enum class BinOp : std::uint8_t { Div, Mod, Min, Max, Mul };
    Form F = Form::Const;
    bool IsConst = false; ///< F == Const (kept for terse call sites)
    std::int64_t ConstVal = 0;
    std::int64_t Base = 0;                               ///< Affine
    std::vector<std::pair<std::int64_t, int>> SlotTerms; ///< (coeff, slot)
    std::vector<std::pair<std::int64_t, int>> SubTerms;  ///< (coeff, prog)
    BinOp Op = BinOp::Div; ///< Binary
    int A = -1, B = -1;    ///< Binary operand programs
  };

  /// Compiled KExpr node (indices into the Exprs arena).
  struct PExpr {
    KExpr::Kind Kind = KExpr::Kind::ConstScalar;
    ir::Scalar Const;
    int Prog = -1; ///< IndexVal / Load index program
    int VarId = -1;
    int BufferId = -1;
    const ir::UserFun *UF = nullptr;
    std::uint64_t FlopCost = 0;
    std::vector<int> Args;
    struct PCheck {
      int Idx, Lo, Hi;
    };
    std::vector<PCheck> Checks;
    int Then = -1, Else = -1;
  };

  /// Compiled statement tree.
  struct PStmt {
    Stmt::Kind Kind = Stmt::Kind::Store;
    int BufferId = -1;
    int Prog = -1; ///< Store index program
    int VarId = -1;
    int Value = -1; ///< PExpr id
    // Loop
    int Slot = -1;
    int CountProg = -1;
    bool Unroll = false;
    std::vector<PStmt> Body;
  };

  /// One flattened level of a parallel (Wrg/Glb) loop nest.
  struct RegionLevel {
    int Slot = -1;
    std::int64_t Extent = 0;
    bool Unroll = false;
  };

  /// A top-level statement: either a parallel region (flattened Wrg/Glb
  /// nest with a sequential inner body) or an ordinary statement.
  struct TopStmt {
    bool IsRegion = false;
    PStmt S;                         ///< when !IsRegion
    std::vector<RegionLevel> Levels; ///< when IsRegion
    std::vector<PStmt> Inner;        ///< region inner body
  };

  //===--------------------------------------------------------------------===//
  // Runtime state
  //===--------------------------------------------------------------------===//

  struct BufferStorage {
    ir::ScalarKind Kind = ir::ScalarKind::Float;
    MemSpace Space = MemSpace::Global;
    std::vector<float> F;
    std::vector<std::int32_t> I;
    std::int64_t VirtualBase = 0;
  };

  /// Execution state of one shard (or of the sequential main thread,
  /// with CacheLive = true).
  struct ShardState {
    std::vector<std::int64_t> Slots;
    std::vector<ir::Scalar> Registers;
    /// Per-shard copies of Local/Private buffers; Global entries stay
    /// empty and alias the shared storage.
    std::vector<BufferStorage> PrivBufs;
    ExecCounters Counters;
    bool CacheLive = false;
    std::vector<std::int64_t> Trace; ///< global-load lines (when !CacheLive)
    std::vector<std::vector<ir::Scalar>> ArgScratch; ///< per UF call depth
  };

  //===--------------------------------------------------------------------===//
  // Plan compilation
  //===--------------------------------------------------------------------===//

  int slotFor(unsigned VarId);
  int compileIndex(const AExpr &E);
  int compileBinary(IndexProgram::BinOp Op, const AExpr &A, const AExpr &B);
  void toAffine(const AExpr &E, std::int64_t Scale, std::int64_t &Base,
                std::unordered_map<int, std::int64_t> &Coeffs,
                std::vector<std::pair<std::int64_t, int>> &SubTerms);
  int compileExpr(const KExpr &E);
  PStmt compileStmt(const Stmt &S);
  void compileTopLevel(const std::vector<StmtPtr> &Stmts);

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  std::int64_t evalProgram(int ProgId, ShardState &S);
  ir::Scalar evalExpr(int ExprId, ShardState &S, unsigned Depth);
  void execStmts(const std::vector<PStmt> &Stmts, ShardState &S);
  void execStmt(const PStmt &St, ShardState &S);
  ir::Scalar loadFrom(int BufferId, std::int64_t Index, ShardState &S);
  void storeTo(int BufferId, std::int64_t Index, ir::Scalar V, ShardState &S);
  BufferStorage &storageFor(int BufferId, ShardState &S);
  void touchLine(std::int64_t Line, ShardState &S);
  void runRegion(const TopStmt &Region);
  ShardState makeShard() const;

  const Kernel &K;
  CacheConfig Cache;
  unsigned Jobs;

  // Plan.
  std::vector<IndexProgram> Progs;
  std::unordered_map<const ArithExpr *, int> ProgIds;
  std::unordered_map<unsigned, std::int64_t> SizeConsts;
  std::unordered_map<unsigned, int> SlotIds;
  std::vector<std::string> SlotNames; ///< for unbound-variable errors
  std::vector<PExpr> Exprs;
  std::vector<TopStmt> TopLevel;

  // Shared runtime state. Main is the sequential state (CacheLive);
  // shard counters and traces merge into it after each region, so
  // Main.Counters is the final merged result.
  std::vector<BufferStorage> Buffers; ///< Global storage (+ layout info)
  ShardState Main;

  // Set-associative cache state (same layout as ocl::Executor).
  std::vector<std::int64_t> CacheTags;
  std::int64_t CacheSets = 0;
};

} // namespace ocl
} // namespace lift

#endif // LIFT_OCL_PARALLELSIM_H
