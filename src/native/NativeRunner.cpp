//===- NativeRunner.cpp - Compile-and-run-natively --------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "native/NativeRunner.h"

#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace lift;
using namespace lift::native;
using namespace lift::ocl;

namespace {

bool isExecutableFile(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode) &&
         ::access(Path.c_str(), X_OK) == 0;
}

/// Resolves \p Name against $PATH (absolute/relative paths are checked
/// directly). Returns the usable path or empty.
std::string resolveExecutable(const std::string &Name) {
  if (Name.empty())
    return "";
  if (Name.find('/') != std::string::npos)
    return isExecutableFile(Name) ? Name : "";
  const char *PathEnv = std::getenv("PATH");
  if (!PathEnv)
    return "";
  std::string Paths(PathEnv);
  std::size_t Pos = 0;
  while (Pos <= Paths.size()) {
    std::size_t Colon = Paths.find(':', Pos);
    if (Colon == std::string::npos)
      Colon = Paths.size();
    std::string Dir = Paths.substr(Pos, Colon - Pos);
    if (!Dir.empty()) {
      std::string Cand = Dir + "/" + Name;
      if (isExecutableFile(Cand))
        return Cand;
    }
    Pos = Colon + 1;
  }
  return "";
}

/// Removes one temp compilation directory and its known contents on
/// every exit path.
class TempDir {
public:
  explicit TempDir(bool Keep) : Keep(Keep) {
    const char *Base = std::getenv("TMPDIR");
    std::string Tmpl = (Base && *Base ? std::string(Base) : "/tmp");
    if (Tmpl.back() == '/')
      Tmpl.pop_back();
    Tmpl += "/liftc-native-XXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    if (!::mkdtemp(Buf.data()))
      throw NativeError("native backend: mkdtemp failed under " + Tmpl);
    Dir = Buf.data();
  }

  ~TempDir() {
    if (Keep || Dir.empty())
      return;
    for (const std::string &F : Files)
      ::unlink(F.c_str());
    ::rmdir(Dir.c_str());
  }

  TempDir(const TempDir &) = delete;
  TempDir &operator=(const TempDir &) = delete;

  /// Registers (and returns) a path inside the directory for cleanup.
  std::string file(const std::string &Name) {
    Files.push_back(Dir + "/" + Name);
    return Files.back();
  }

  const std::string &path() const { return Dir; }

private:
  std::string Dir;
  std::vector<std::string> Files;
  bool Keep;
};

void writeFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    throw NativeError("native backend: cannot write " + Path);
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
}

/// Shell-quotes one word (single quotes; rejects embedded quotes, which
/// never occur in sane compiler paths).
std::string shellQuote(const std::string &S) {
  if (S.find('\'') != std::string::npos)
    throw NativeError("native backend: refusing path containing a quote: " +
                      S);
  return "'" + S + "'";
}

/// Runs \p Command via popen, capturing combined stdout+stderr.
/// Returns the exit code (-1 when the shell could not run).
int runCommand(const std::string &Command, std::string &Output) {
  Output.clear();
  std::FILE *P = ::popen((Command + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Output.append(Buf, N);
  int Status = ::pclose(P);
  if (Status < 0)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// One compile attempt; returns the compiler exit code.
int invokeCompiler(const std::string &Compiler, const std::string &Src,
                   const std::string &Obj, const NativeOptions &O,
                   bool WithOpenMP, std::string &Diag) {
  std::string Cmd = shellQuote(Compiler) + " -O" +
                    std::to_string(O.OptLevel) +
                    " -fPIC -shared -ffp-contract=off";
  if (WithOpenMP)
    Cmd += " -fopenmp";
  Cmd += " -o " + shellQuote(Obj) + " " + shellQuote(Src) + " -lm";
  return runCommand(Cmd, Diag);
}

/// Recovers the entry name from emitted source: the emitter may have
/// renamed the kernel on collision with a reserved word, so the
/// signature line is the source of truth.
std::string entryNameFromSource(const std::string &Source) {
  std::size_t At = Source.find("\nvoid ");
  std::size_t Paren =
      Source.find('(', At == std::string::npos ? 0 : At);
  if (At == std::string::npos || Paren == std::string::npos)
    fatalError("native backend: emitted source has no entry signature");
  return Source.substr(At + 6, Paren - (At + 6));
}

} // namespace

std::string lift::native::findCompiler(const NativeOptions &O) {
  std::vector<std::string> Candidates;
  if (!O.CompilerPath.empty()) {
    // An explicit path must work; no silent fallback past a typo.
    std::string R = resolveExecutable(O.CompilerPath);
    if (R.empty())
      throw CompilerNotFoundError(
          "native backend: compiler '" + O.CompilerPath +
          "' not found or not executable");
    return R;
  }
  if (const char *E = std::getenv("LIFT_NATIVE_CC"))
    Candidates.push_back(E);
  if (const char *E = std::getenv("CC"))
    Candidates.push_back(E);
  Candidates.push_back("cc");
  Candidates.push_back("gcc");
  Candidates.push_back("clang");
  for (const std::string &C : Candidates) {
    std::string R = resolveExecutable(C);
    if (!R.empty())
      return R;
  }
  throw CompilerNotFoundError(
      "native backend: no host C compiler found (tried $LIFT_NATIVE_CC, "
      "$CC, cc, gcc, clang); set LIFT_NATIVE_CC or install one");
}

NativeKernel::NativeKernel(void *Handle, void *Sym, bool Profiled,
                           std::string Source)
    : Handle(Handle), Sym(Sym), Profiled(Profiled),
      Source(std::move(Source)) {}

NativeKernel::~NativeKernel() {
  if (Handle)
    ::dlclose(Handle);
}

NativeKernel::EntryFn NativeKernel::entry() const {
  if (Profiled)
    fatalError("native backend: profiled kernel called through the "
               "unprofiled entry ABI");
  EntryFn F;
  static_assert(sizeof(F) == sizeof(Sym), "function pointer size");
  std::memcpy(&F, &Sym, sizeof(F));
  return F;
}

NativeKernel::ProfiledEntryFn NativeKernel::profiledEntry() const {
  if (!Profiled)
    fatalError("native backend: unprofiled kernel called through the "
               "profiled entry ABI");
  ProfiledEntryFn F;
  static_assert(sizeof(F) == sizeof(Sym), "function pointer size");
  std::memcpy(&F, &Sym, sizeof(F));
  return F;
}

NativeKernelPtr lift::native::compileCSource(const std::string &Source,
                                             const std::string &EntryName,
                                             const NativeOptions &O) {
  obs::Span CompSpan("native.compile", "native");
  CompSpan.arg("entry", EntryName);
  std::string Compiler = findCompiler(O);

  TempDir Tmp(O.KeepTemps);
  std::string Src = Tmp.file(EntryName + ".c");
  std::string Obj = Tmp.file(EntryName + ".so");
  writeFile(Src, Source);

  std::string Diag;
  int RC = invokeCompiler(Compiler, Src, Obj, O, O.OpenMP, Diag);
  if (RC != 0 && O.OpenMP) {
    // Some toolchains (clang without libomp) cannot link -fopenmp;
    // retry sequentially — the pragmas are then inert, which is still
    // correct, just single-threaded.
    std::string Diag2;
    if (invokeCompiler(Compiler, Src, Obj, O, /*WithOpenMP=*/false,
                       Diag2) == 0) {
      RC = 0;
      Diag.clear();
    }
  }
  if (RC != 0)
    throw CompileFailedError("native backend: '" + Compiler +
                                 "' failed (exit " + std::to_string(RC) +
                                 "):\n" + Diag,
                             Diag, Source);

  void *Handle = ::dlopen(Obj.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *E = ::dlerror();
    throw NativeError(std::string("native backend: dlopen failed: ") +
                      (E ? E : "unknown error"));
  }
  ::dlerror();
  void *Sym = ::dlsym(Handle, EntryName.c_str());
  if (!Sym) {
    const char *E = ::dlerror();
    ::dlclose(Handle);
    throw SymbolNotFoundError(
        "native backend: entry symbol '" + EntryName +
        "' not found in compiled kernel" +
        (E ? std::string(" (") + E + ")" : std::string()));
  }
  obs::Registry::global().counter("native.compiles").inc();
  // The signature line tells the ABI apart: profile-mode sources take
  // the extra lift_prof accumulator parameter.
  bool Profiled = Source.find(", double *lift_prof)") != std::string::npos;
  // TempDir now removes source and object; the mapping stays valid.
  return std::make_shared<NativeKernel>(Handle, Sym, Profiled, Source);
}

NativeKernelPtr lift::native::compileKernel(const ocl::Kernel &K,
                                            const NativeOptions &O) {
  CEmitOptions EO;
  EO.OpenMP = O.EmitOpenMP;
  EO.Profile = O.Profile;
  std::string Source = emitC(K, EO);
  return compileCSource(Source, entryNameFromSource(Source), O);
}

//===----------------------------------------------------------------------===//
// KernelCache
//===----------------------------------------------------------------------===//

struct KernelCache::Entry {
  std::mutex M;
  std::condition_variable CV;
  bool Ready = false;
  std::string Source; ///< key part: resolves hash collisions
  NativeKernelPtr Kernel;
  std::string Error; ///< non-empty: cached compile failure

  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [this] { return Ready; });
  }
};

KernelCache &KernelCache::global() {
  static KernelCache *C = new KernelCache(); // leaked like the registries
  return *C;
}

NativeKernelPtr KernelCache::getOrCompile(std::uint64_t LoweredHash,
                                          const ocl::Kernel &K,
                                          const NativeOptions &O) {
  CEmitOptions EO;
  EO.OpenMP = O.EmitOpenMP;
  EO.Profile = O.Profile;
  std::string Source = emitC(K, EO);

  std::shared_ptr<Entry> E;
  bool Owner = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto Range = Map.equal_range(LoweredHash);
    for (auto It = Range.first; It != Range.second; ++It)
      if (It->second->Source == Source) {
        E = It->second;
        break;
      }
    if (E) {
      ++Hits;
    } else {
      ++Misses;
      Owner = true;
      E = std::make_shared<Entry>();
      E->Source = Source;
      Map.emplace(LoweredHash, E);
    }
  }
  obs::Registry::global()
      .counter(Owner ? "native.cache.misses" : "native.cache.hits")
      .inc();

  if (Owner) {
    NativeKernelPtr Kern;
    std::string Err;
    try {
      Kern = compileCSource(Source, entryNameFromSource(Source), O);
    } catch (const NativeError &Ex) {
      Err = Ex.what();
    }
    {
      std::lock_guard<std::mutex> Lock(E->M);
      E->Kernel = Kern;
      E->Error = Err;
      E->Ready = true;
    }
    E->CV.notify_all();
  } else {
    E->wait();
  }
  if (!E->Kernel)
    throw NativeError(E->Error.empty()
                          ? std::string("native backend: cached compile "
                                        "failure")
                          : E->Error);
  return E->Kernel;
}

std::uint64_t KernelCache::hits() const {
  std::lock_guard<std::mutex> Lock(M);
  return Hits;
}

std::uint64_t KernelCache::misses() const {
  std::lock_guard<std::mutex> Lock(M);
  return Misses;
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
  Hits = Misses = 0;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void lift::native::probeToolchain(const NativeOptions &O) {
  NativeKernelPtr Probe = compileCSource(
      "void lift_probe(void **bufs, const long long *sizes, int threads) "
      "{ (void)bufs; (void)sizes; (void)threads; }\n",
      "lift_probe", O);
  void *Dummy[1] = {nullptr};
  long long Sz[1] = {0};
  Probe->entry()(Dummy, Sz, 1);
}

namespace {

/// Storage and arguments of one native execution, shared by the plain
/// and the profiled runner.
struct BoundRun {
  std::vector<std::vector<float>> FloatStore;
  std::vector<std::vector<std::int32_t>> IntStore;
  std::vector<void *> Ptrs;
  std::vector<long long> SizeVals;

  std::vector<float> takeOutput(const codegen::Compiled &C) {
    const BufferDecl &OutB = C.K.buffer(C.OutputBufferId);
    std::size_t OutIdx = std::size_t(OutB.Id);
    if (OutB.ElemKind == ir::ScalarKind::Float)
      return std::move(FloatStore[OutIdx]);
    std::vector<float> Out(IntStore[OutIdx].size());
    for (std::size_t I = 0; I != Out.size(); ++I)
      Out[I] = float(IntStore[OutIdx][I]);
    return Out;
  }
};

/// Allocates global buffers (zero-initialized exactly like the
/// simulator's fresh storage), binds inputs with the simulator
/// runner's conventions (Executor::bindInput) and resolves size
/// arguments.
BoundRun bindRun(const codegen::Compiled &C,
                 const std::vector<std::vector<float>> &Inputs,
                 const SizeEnv &Sizes) {
  if (Inputs.size() != C.InputBufferIds.size())
    fatalError("runNative: input count mismatch");
  const Kernel &K = C.K;
  BoundRun R;
  R.FloatStore.resize(K.Buffers.size());
  R.IntStore.resize(K.Buffers.size());
  for (const BufferDecl &B : K.Buffers) {
    if (B.Space != MemSpace::Global)
      continue;
    std::int64_t N = B.NumElems->evaluate(Sizes);
    if (N < 0)
      fatalError("runNative: negative buffer extent for " + B.Name);
    std::size_t Idx = std::size_t(B.Id);
    if (B.ElemKind == ir::ScalarKind::Float) {
      R.FloatStore[Idx].assign(std::size_t(N), 0.0f);
      R.Ptrs.push_back(R.FloatStore[Idx].data());
    } else {
      R.IntStore[Idx].assign(std::size_t(N), 0);
      R.Ptrs.push_back(R.IntStore[Idx].data());
    }
  }

  for (std::size_t I = 0; I != Inputs.size(); ++I) {
    const BufferDecl &B = K.buffer(C.InputBufferIds[I]);
    std::size_t Idx = std::size_t(B.Id);
    if (B.ElemKind == ir::ScalarKind::Float) {
      if (Inputs[I].size() != R.FloatStore[Idx].size())
        fatalError("runNative: size mismatch for buffer " + B.Name +
                   " (got " + std::to_string(Inputs[I].size()) + ", want " +
                   std::to_string(R.FloatStore[Idx].size()) + ")");
      R.FloatStore[Idx] = Inputs[I];
    } else {
      if (Inputs[I].size() != R.IntStore[Idx].size())
        fatalError("runNative: size mismatch for int buffer " + B.Name);
      for (std::size_t J = 0; J != Inputs[I].size(); ++J)
        R.IntStore[Idx][J] = std::int32_t(Inputs[I][J]);
    }
  }

  for (const auto &SA : K.SizeArgs) {
    auto It = Sizes.find(SA.first);
    if (It == Sizes.end())
      fatalError("runNative: unbound size variable " + SA.second);
    R.SizeVals.push_back((long long)It->second);
  }
  // The entry dereferences lift_sizes[0] layout only up to SizeArgs
  // entries; keep the pointer valid even for zero size args.
  if (R.SizeVals.empty())
    R.SizeVals.push_back(0);
  return R;
}

/// Serializes timed sections process-wide so concurrent candidate
/// evaluations cannot contaminate each other's wall clock.
std::mutex &measureMutex() {
  static std::mutex M;
  return M;
}

} // namespace

NativeRunResult lift::native::runNative(
    const codegen::Compiled &C, const NativeKernel &Kern,
    const std::vector<std::vector<float>> &Inputs, const SizeEnv &Sizes,
    unsigned Threads, unsigned Warmup, unsigned Repeats) {
  if (Repeats == 0)
    Repeats = 1;
  if (Threads == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    Threads = HW ? HW : 1;
  }

  obs::Span RunSpan("native.run", "native");
  RunSpan.arg("kernel", C.K.Name);
  RunSpan.arg("threads", std::int64_t(Threads));

  BoundRun Bound = bindRun(C, Inputs, Sizes);

  NativeRunResult R;
  {
    std::lock_guard<std::mutex> Lock(measureMutex());
    for (unsigned I = 0; I != Warmup; ++I)
      Kern.entry()(Bound.Ptrs.data(), Bound.SizeVals.data(), int(Threads));
    double Best = 0;
    for (unsigned I = 0; I != Repeats; ++I) {
      // Timed through the obs clock seam so tests can fake the clock.
      std::uint64_t T0 = obs::monotonicNowNs();
      Kern.entry()(Bound.Ptrs.data(), Bound.SizeVals.data(), int(Threads));
      double S = double(obs::monotonicNowNs() - T0) * 1e-9;
      if (I == 0 || S < Best)
        Best = S;
    }
    R.Seconds = Best;
  }
  obs::Registry::global().counter("native.runs").inc();

  R.Output = Bound.takeOutput(C);
  return R;
}

NativeProfiledResult lift::native::runNativeProfiled(
    const codegen::Compiled &C, const NativeKernel &Kern,
    const std::vector<std::vector<float>> &Inputs, const SizeEnv &Sizes,
    std::size_t NumRegions, unsigned Warmup, unsigned Repeats) {
  if (Repeats == 0)
    Repeats = 1;

  obs::Span RunSpan("native.run.profiled", "native");
  RunSpan.arg("kernel", C.K.Name);

  BoundRun Bound = bindRun(C, Inputs, Sizes);
  NativeKernel::ProfiledEntryFn Entry = Kern.profiledEntry();

  NativeProfiledResult Out;
  std::vector<double> Prof(NumRegions ? NumRegions : 1, 0.0);
  {
    std::lock_guard<std::mutex> Lock(measureMutex());
    for (unsigned I = 0; I != Warmup; ++I)
      Entry(Bound.Ptrs.data(), Bound.SizeVals.data(), 1, Prof.data());
    double Best = 0;
    for (unsigned I = 0; I != Repeats; ++I) {
      // The emitted timers accumulate; zero the slots per repeat so
      // the kept vector belongs to exactly one (the fastest) run.
      std::fill(Prof.begin(), Prof.end(), 0.0);
      std::uint64_t T0 = obs::monotonicNowNs();
      Entry(Bound.Ptrs.data(), Bound.SizeVals.data(), 1, Prof.data());
      double S = double(obs::monotonicNowNs() - T0) * 1e-9;
      if (I == 0 || S < Best) {
        Best = S;
        Out.RegionSeconds.assign(Prof.begin(), Prof.begin() + NumRegions);
      }
    }
    Out.R.Seconds = Best;
  }
  obs::Registry::global().counter("native.runs.profiled").inc();

  Out.R.Output = Bound.takeOutput(C);
  return Out;
}
