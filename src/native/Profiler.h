//===- Profiler.h - In-kernel profiling driver -----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the profiling pieces together: compiles a kernel in profile
/// mode (through the shared kernel cache, under a distinct identity so
/// profiled and unprofiled binaries coexist), executes it with
/// runNativeProfiled, joins the measured per-region seconds with the
/// statically derived work counts (codegen/AccessAnalysis) and returns
/// an obs::Profile ready for reporting. The kernel's computation is
/// untouched by instrumentation, so the returned output is bit-
/// identical to an unprofiled run — the differential test's contract.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_PROFILER_H
#define LIFT_NATIVE_PROFILER_H

#include "native/NativeRunner.h"
#include "native/Peaks.h"
#include "obs/Profile.h"

namespace lift {
namespace native {

struct ProfiledKernelRun {
  obs::Profile P;
  std::vector<float> Output; ///< bit-identical to the unprofiled run
};

/// Profiles one execution of \p C on \p Inputs/\p Sizes: \p Warmup
/// untimed passes, \p Repeats timed passes, region times of the
/// fastest pass. \p LoweredHash keys the kernel cache (the profiled
/// binary gets its own cache identity). \p Peaks, when non-null, is
/// copied into the record for the roofline columns. Throws
/// NativeError subclasses like the rest of the backend.
ProfiledKernelRun
profileKernel(const codegen::Compiled &C, std::uint64_t LoweredHash,
              const std::vector<std::vector<float>> &Inputs,
              const ocl::SizeEnv &Sizes, unsigned Warmup, unsigned Repeats,
              const NativeOptions &O = {},
              const MachinePeaks *Peaks = nullptr);

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_PROFILER_H
