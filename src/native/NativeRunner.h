//===- NativeRunner.h - Compile-and-run-natively ---------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native execution backend: takes a compiled kernel AST, emits C
/// (native/CEmitter.h), invokes the host C compiler on it in a private
/// temp directory, dlopen()s the resulting shared object and runs the
/// entry point with the same buffer/size conventions as the simulator
/// runner (codegen/Runner.h). This is the "real hardware" leg the
/// paper measured on GPUs, reproduced on the host CPU: the simulator
/// stays the bit-exact correctness oracle while wall-clock time comes
/// from actual execution.
///
/// Everything that can fail for environmental reasons (no compiler,
/// compile error, missing symbol) throws a subclass of
/// lift::RecoverableError carrying the compiler diagnostics, so
/// drivers can degrade gracefully; invariant violations (mismatched
/// buffer counts, unbound sizes) stay fatal like everywhere else.
///
/// Temp hygiene: each compilation gets a fresh mkdtemp directory under
/// $TMPDIR (default /tmp) which is removed on *every* path — success,
/// compile failure, dlopen/dlsym failure. The shared object is
/// unlinked while still mapped (safe on POSIX), so a crash cannot
/// leave binaries behind either.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_NATIVERUNNER_H
#define LIFT_NATIVE_NATIVERUNNER_H

#include "codegen/CodeGen.h"
#include "native/CEmitter.h"
#include "ocl/Sim.h"
#include "support/Support.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace native {

//===----------------------------------------------------------------------===//
// Errors and options
//===----------------------------------------------------------------------===//

/// Base of every recoverable native-backend failure.
class NativeError : public RecoverableError {
public:
  using RecoverableError::RecoverableError;
};

/// No usable host C compiler was found.
class CompilerNotFoundError : public NativeError {
public:
  using NativeError::NativeError;
};

/// The host compiler rejected the emitted source (or died). what()
/// includes the diagnostics; Source carries the full emitted C for
/// artifacts.
class CompileFailedError : public NativeError {
public:
  CompileFailedError(const std::string &Msg, std::string Diagnostics,
                     std::string Source)
      : NativeError(Msg), Diagnostics(std::move(Diagnostics)),
        Source(std::move(Source)) {}
  std::string Diagnostics;
  std::string Source;
};

/// dlopen succeeded but the entry symbol is missing.
class SymbolNotFoundError : public NativeError {
public:
  using NativeError::NativeError;
};

struct NativeOptions {
  /// Compiler executable. Empty selects the first usable of
  /// $LIFT_NATIVE_CC, $CC, cc, gcc, clang.
  std::string CompilerPath;
  /// Compile with -fopenmp so the emitter's pragmas take effect. If
  /// that compilation fails (e.g. clang without libomp) the runner
  /// retries once without it — the pragmas are then ignored and the
  /// kernel runs sequentially, which is always correct.
  bool OpenMP = true;
  int OptLevel = 2;
  /// Leave the temp directory (source + object) behind for debugging.
  bool KeepTemps = false;
  /// Disable `#pragma omp` emission entirely (sequential source).
  bool EmitOpenMP = true;
  /// Emit with CEmitOptions::Profile: region timers, the extended
  /// `double *lift_prof` ABI, sequential execution. Profiled and
  /// unprofiled compilations of the same lowering coexist in the
  /// kernel cache (the emitted source differs, which is part of the
  /// cache key).
  bool Profile = false;
};

/// Resolves the compiler per NativeOptions::CompilerPath; throws
/// CompilerNotFoundError when nothing usable exists.
std::string findCompiler(const NativeOptions &O = {});

/// Compiles and loads a trivial translation unit, verifying the whole
/// toolchain path (compiler, shared objects, dlopen) works. Throws a
/// NativeError subclass describing the first broken step.
void probeToolchain(const NativeOptions &O = {});

//===----------------------------------------------------------------------===//
// Loaded kernels
//===----------------------------------------------------------------------===//

/// A dlopen()ed native kernel. Owns the library handle; the mapping
/// (and the entry pointer) stays valid for the object's lifetime even
/// though the backing file is already unlinked.
class NativeKernel {
public:
  /// The positional ABI emitted by CEmitter.
  using EntryFn = void (*)(void **Bufs, const long long *Sizes,
                           int Threads);
  /// The extended profile-mode ABI (CEmitOptions::Profile): \p Prof
  /// points at one double per profile region, accumulated into.
  using ProfiledEntryFn = void (*)(void **Bufs, const long long *Sizes,
                                   int Threads, double *Prof);

  NativeKernel(void *Handle, void *Sym, bool Profiled, std::string Source);
  ~NativeKernel();
  NativeKernel(const NativeKernel &) = delete;
  NativeKernel &operator=(const NativeKernel &) = delete;

  /// True when the kernel was emitted in profile mode and must be
  /// called through profiledEntry().
  bool profiled() const { return Profiled; }
  EntryFn entry() const;
  ProfiledEntryFn profiledEntry() const;
  /// The emitted C source (kept for mismatch artifacts / debugging).
  const std::string &source() const { return Source; }

private:
  void *Handle = nullptr;
  void *Sym = nullptr;
  bool Profiled = false;
  std::string Source;
};

using NativeKernelPtr = std::shared_ptr<const NativeKernel>;

/// Compiles \p Source (a complete C translation unit) into a shared
/// object and resolves \p EntryName. Building block of compileKernel
/// and directly testable for the error paths.
NativeKernelPtr compileCSource(const std::string &Source,
                               const std::string &EntryName,
                               const NativeOptions &O = {});

/// Emits C for \p K and compiles it. The entry name is the kernel name
/// (sanitized by the emitter).
NativeKernelPtr compileKernel(const ocl::Kernel &K,
                              const NativeOptions &O = {});

//===----------------------------------------------------------------------===//
// Compiled-kernel cache
//===----------------------------------------------------------------------===//

/// Process-wide cache of compiled kernels, keyed on the *lowered*
/// program's structural hash (ir/StructuralHash.h). Alpha-equivalent
/// lowerings have identical positional ABIs (buffer and size-arg
/// order is structural), so a cached binary is safe to share across
/// candidates — the property the tuner exploits to compile each
/// distinct lowering once per sweep. Hash collisions are resolved by
/// comparing the emitted source, so a collision costs a second
/// compile, never a wrong binary.
///
/// Thread-safe with in-flight deduplication (first caller compiles,
/// concurrent callers wait). Compile failures are cached and rethrown
/// so a broken toolchain fails fast instead of re-invoking cc per
/// candidate. Hit/miss totals feed the "native.cache.*" metrics.
class KernelCache {
public:
  static KernelCache &global();

  /// Returns the cached kernel for (\p LoweredHash, emitted source of
  /// \p K), compiling on first use. Throws NativeError on (possibly
  /// cached) compile failure.
  NativeKernelPtr getOrCompile(std::uint64_t LoweredHash,
                               const ocl::Kernel &K,
                               const NativeOptions &O = {});

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

private:
  struct Entry;
  mutable std::mutex M;
  std::unordered_multimap<std::uint64_t, std::shared_ptr<Entry>> Map;
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
};

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

/// One native execution's results: the output buffer and the best
/// (minimum over repeats) wall-clock time of a single kernel call.
struct NativeRunResult {
  std::vector<float> Output;
  double Seconds = 0;
};

/// Runs a loaded kernel with the simulator runner's conventions: one
/// flat float vector per program input (ints converted like
/// Executor::bindInput), sizes bound by ArithExpr variable id, output
/// returned as floats. \p Threads is the OpenMP thread count (0 = all
/// hardware threads). Executes \p Warmup + \p Repeats times on the
/// same buffers and reports the fastest repeat; timed sections are
/// serialized process-wide so concurrent measurements cannot
/// contaminate each other.
NativeRunResult runNative(const codegen::Compiled &C,
                          const NativeKernel &Kern,
                          const std::vector<std::vector<float>> &Inputs,
                          const ocl::SizeEnv &Sizes, unsigned Threads = 1,
                          unsigned Warmup = 0, unsigned Repeats = 1);

/// runNative for a profile-mode kernel: additionally returns the
/// per-region accumulated seconds (profileRegions() order) of the
/// fastest repeat. \p NumRegions must equal profileRegions().size()
/// for the kernel — the emitted code writes exactly that many slots.
/// Profiled kernels execute sequentially by construction.
struct NativeProfiledResult {
  NativeRunResult R;
  std::vector<double> RegionSeconds;
};
NativeProfiledResult
runNativeProfiled(const codegen::Compiled &C, const NativeKernel &Kern,
                  const std::vector<std::vector<float>> &Inputs,
                  const ocl::SizeEnv &Sizes, std::size_t NumRegions,
                  unsigned Warmup = 0, unsigned Repeats = 1);

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_NATIVERUNNER_H
