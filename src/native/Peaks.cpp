//===- Peaks.cpp - STREAM-style machine peak probe --------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "native/Peaks.h"

#include <chrono>
#include <cstdint>
#include <vector>

using namespace lift;
using namespace lift::native;

namespace {

double secondsNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sinks defeat dead-code elimination without perturbing the loops.
volatile float FloatSink;

double triadGBPerSec(std::size_t N, int Repeats) {
  std::vector<float> A(N, 0.0f), B(N, 1.0f), C(N, 2.0f);
  const float S = 3.0f;
  double Best = 0;
  // One untimed pass touches every page first.
  for (int R = 0; R <= Repeats; ++R) {
    double T0 = secondsNow();
    for (std::size_t I = 0; I != N; ++I)
      A[I] = B[I] + S * C[I];
    double Dt = secondsNow() - T0;
    FloatSink = A[N / 2];
    if (R == 0 || Dt <= 0)
      continue;
    // STREAM convention: 12 bytes of traffic per element (two float
    // loads, one store; write-allocate traffic not counted).
    double GB = double(N) * 12.0 / 1e9;
    double Rate = GB / Dt;
    if (Rate > Best)
      Best = Rate;
  }
  return Best;
}

double madGFlopsPerSec(int Repeats) {
  // Eight independent multiply-add chains per pass: enough parallelism
  // to fill SIMD lanes and FMA pipes, few enough to stay in registers.
  const std::size_t Iters = 1u << 22;
  double Best = 0;
  for (int R = 0; R <= Repeats; ++R) {
    float X0 = 0.1f, X1 = 0.2f, X2 = 0.3f, X3 = 0.4f;
    float X4 = 0.5f, X5 = 0.6f, X6 = 0.7f, X7 = 0.8f;
    const float M = 0.999999f, Add = 1e-6f;
    double T0 = secondsNow();
    for (std::size_t I = 0; I != Iters; ++I) {
      X0 = X0 * M + Add;
      X1 = X1 * M + Add;
      X2 = X2 * M + Add;
      X3 = X3 * M + Add;
      X4 = X4 * M + Add;
      X5 = X5 * M + Add;
      X6 = X6 * M + Add;
      X7 = X7 * M + Add;
    }
    double Dt = secondsNow() - T0;
    FloatSink = X0 + X1 + X2 + X3 + X4 + X5 + X6 + X7;
    if (R == 0 || Dt <= 0)
      continue;
    double Flops = double(Iters) * 8 * 2; // mul + add per chain step
    double Rate = Flops / Dt / 1e9;
    if (Rate > Best)
      Best = Rate;
  }
  return Best;
}

} // namespace

MachinePeaks lift::native::probeMachinePeaks(std::size_t Elems, int Repeats) {
  if (Repeats < 1)
    Repeats = 1;
  if (Elems < 1024)
    Elems = 1024;
  MachinePeaks P;
  P.GBPerSec = triadGBPerSec(Elems, Repeats);
  P.GFlopsPerSec = madGFlopsPerSec(Repeats);
  return P;
}
