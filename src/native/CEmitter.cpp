//===- CEmitter.cpp - Kernel AST to plain C --------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "native/CEmitter.h"

#include "support/Support.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace lift;
using namespace lift::native;
using namespace lift::ocl;

namespace {

const char *cKindName(ir::ScalarKind K) {
  return K == ir::ScalarKind::Float ? "float" : "int32_t";
}

/// Prints a float so it round-trips bit-exactly through the C
/// compiler: 9 significant decimal digits suffice for binary32, and a
/// trailing 'f' keeps the literal (and all arithmetic folded on it) in
/// float. Infinities and NaNs map onto the math.h macros.
std::string formatFloat(float V) {
  if (std::isnan(V))
    return "NAN";
  if (std::isinf(V))
    return V > 0 ? "INFINITY" : "(-INFINITY)";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", double(V));
  std::string S(Buf);
  if (S.find_first_of(".e") == std::string::npos)
    S += ".0";
  return S + "f";
}

/// C identifier map for everything the kernel names: buffers,
/// registers, loop variables and size arguments. Names are sanitized
/// and deduplicated against each other, the ABI parameter names, the
/// runtime helpers and the C keywords, in a deterministic order, so
/// equal kernels always render identically.
class NameMap {
public:
  NameMap() {
    for (const char *R :
         {"auto",     "break",   "case",     "char",   "const",    "continue",
          "default",  "do",      "double",   "else",   "enum",     "extern",
          "float",    "for",     "goto",     "if",     "inline",   "int",
          "long",     "register", "restrict", "return", "short",   "signed",
          "sizeof",   "static",  "struct",   "switch", "typedef",  "union",
          "unsigned", "void",    "volatile", "while",  "lift_bufs",
          "lift_sizes", "lift_threads", "lift_fdiv", "lift_fmod", "lift_min",
          "lift_max", "lift_i",  "int32_t",  "sqrt",   "fmax",     "fmin",
          "lift_prof", "lift_prof_now", "lift_t0"})
      Used.insert(R);
  }

  std::string claim(const std::string &Requested) {
    std::string Base = sanitize(Requested);
    std::string Name = Base;
    for (unsigned N = 2; !Used.insert(Name).second; ++N)
      Name = Base + "_" + std::to_string(N);
    return Name;
  }

  void setBuffer(int Id, std::string Name) { BufNames[Id] = std::move(Name); }
  void setRegister(int Id, std::string Name) {
    RegNames[Id] = std::move(Name);
  }
  void setVar(unsigned Id, std::string Name) { VarNames[Id] = std::move(Name); }

  const std::string &buffer(int Id) const { return BufNames.at(Id); }
  const std::string &reg(int Id) const { return RegNames.at(Id); }
  const std::string &var(unsigned Id) const {
    auto It = VarNames.find(Id);
    if (It == VarNames.end())
      fatalError("native emitter: unbound arith variable in kernel index");
    return It->second;
  }

private:
  static std::string sanitize(const std::string &S) {
    std::string Out;
    for (char C : S)
      Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_') ? C
                                                                       : '_';
    if (Out.empty() || std::isdigit(static_cast<unsigned char>(Out[0])))
      Out = "v_" + Out;
    return Out;
  }

  std::unordered_set<std::string> Used;
  std::unordered_map<int, std::string> BufNames;
  std::unordered_map<int, std::string> RegNames;
  std::unordered_map<unsigned, std::string> VarNames;
};

/// Where registers and local/private buffers get declared: inside the
/// parallel root that (exclusively) uses them, or at function scope
/// with parallelism disabled when any use escapes that discipline.
struct ParPlan {
  bool Parallel = false; ///< pragmas on the roots, decls privatized
  std::set<const Stmt *> Roots; ///< outermost Glb/Wrg loops
  /// Registers / non-global buffers to declare in each root's body.
  std::unordered_map<const Stmt *, std::vector<int>> RootRegs;
  std::unordered_map<const Stmt *, std::vector<int>> RootBufs;
  /// Declared at function scope (sequential fallback, or unused).
  std::vector<int> TopRegs;
  std::vector<int> TopBufs;
};

class PlanBuilder {
public:
  PlanBuilder(const Kernel &K, bool WantParallel) : K(K) {
    for (const StmtPtr &S : K.Body)
      findRoots(*S, /*InRoot=*/false);
    for (const StmtPtr &S : K.Body)
      scanStmt(*S, /*Root=*/nullptr);
    build(WantParallel);
  }

  ParPlan take() { return std::move(Plan); }

private:
  /// Use sites of one register or buffer: the set of parallel roots it
  /// appears under, and whether it also appears outside every root.
  struct Uses {
    std::set<const Stmt *> Roots;
    bool OutsideRoot = false;

    void note(const Stmt *Root) {
      if (Root)
        Roots.insert(Root);
      else
        OutsideRoot = true;
    }
    bool privatizable() const { return !OutsideRoot && Roots.size() <= 1; }
  };

  void findRoots(const Stmt &S, bool InRoot) {
    if (S.K != Stmt::Kind::Loop) {
      return;
    }
    bool IsPar = S.LK == LoopKind::Glb || S.LK == LoopKind::Wrg;
    if (IsPar && !InRoot)
      Plan.Roots.insert(&S);
    for (const StmtPtr &C : S.Body)
      findRoots(*C, InRoot || IsPar);
  }

  void scanStmt(const Stmt &S, const Stmt *Root) {
    switch (S.K) {
    case Stmt::Kind::Store:
      noteBuffer(S.BufferId, Root);
      scanExpr(*S.Value, Root);
      break;
    case Stmt::Kind::AssignVar:
      RegUses[S.VarId].note(Root);
      scanExpr(*S.Value, Root);
      break;
    case Stmt::Kind::Loop: {
      const Stmt *Inner = Plan.Roots.count(&S) ? &S : Root;
      for (const StmtPtr &C : S.Body)
        scanStmt(*C, Inner);
      break;
    }
    case Stmt::Kind::Barrier:
      break;
    }
  }

  void scanExpr(const KExpr &E, const Stmt *Root) {
    switch (E.K) {
    case KExpr::Kind::ReadVar:
      RegUses[E.VarId].note(Root);
      break;
    case KExpr::Kind::Load:
      noteBuffer(E.BufferId, Root);
      break;
    case KExpr::Kind::CallUF:
      for (const KExprPtr &A : E.Args)
        scanExpr(*A, Root);
      break;
    case KExpr::Kind::Select:
      scanExpr(*E.Then, Root);
      scanExpr(*E.Else, Root);
      break;
    case KExpr::Kind::ConstScalar:
    case KExpr::Kind::IndexVal:
      break;
    }
  }

  void noteBuffer(int Id, const Stmt *Root) {
    if (K.buffer(Id).Space != MemSpace::Global)
      BufUses[Id].note(Root);
  }

  void build(bool WantParallel) {
    bool AllPrivatizable = true;
    for (const auto &KV : RegUses)
      AllPrivatizable &= KV.second.privatizable();
    for (const auto &KV : BufUses)
      AllPrivatizable &= KV.second.privatizable();
    Plan.Parallel = WantParallel && AllPrivatizable && !Plan.Roots.empty();

    // Declaration order follows the kernel's declaration lists so the
    // output is independent of use order.
    for (const BufferDecl &B : K.Buffers) {
      if (B.Space == MemSpace::Global)
        continue;
      auto It = BufUses.find(B.Id);
      const Stmt *Root = Plan.Parallel && It != BufUses.end() &&
                                 !It->second.Roots.empty()
                             ? *It->second.Roots.begin()
                             : nullptr;
      if (Root)
        Plan.RootBufs[Root].push_back(B.Id);
      else
        Plan.TopBufs.push_back(B.Id);
    }
    for (const RegisterDecl &R : K.Registers) {
      auto It = RegUses.find(R.Id);
      const Stmt *Root = Plan.Parallel && It != RegUses.end() &&
                                 !It->second.Roots.empty()
                             ? *It->second.Roots.begin()
                             : nullptr;
      if (Root)
        Plan.RootRegs[Root].push_back(R.Id);
      else
        Plan.TopRegs.push_back(R.Id);
    }
  }

  const Kernel &K;
  ParPlan Plan;
  std::unordered_map<int, Uses> RegUses;
  std::unordered_map<int, Uses> BufUses;
};

class Printer {
public:
  Printer(const Kernel &K, const CEmitOptions &O)
      : K(K), Profile(O.Profile), Plan(makePlan(O)) {
    // Claim names in a fixed order: buffers, registers, size args,
    // loop variables (in syntactic order), so renames on collision are
    // deterministic.
    for (const BufferDecl &B : K.Buffers)
      Names.setBuffer(B.Id, Names.claim(B.Name));
    for (const RegisterDecl &R : K.Registers)
      Names.setRegister(R.Id, Names.claim(R.Name));
    for (const auto &SA : K.SizeArgs)
      Names.setVar(SA.first, Names.claim(SA.second));
    for (const StmtPtr &S : K.Body)
      claimLoopVars(*S);
    EntryName = Names.claim(K.Name);
    if (Profile) {
      std::vector<KernelRegion> Regions = profileRegions(K);
      for (std::size_t I = 0; I != Regions.size(); ++I)
        RegionIdx[Regions[I].Loop] = {I, Regions[I].Name};
    }
  }

  std::string run();

private:
  ParPlan makePlan(const CEmitOptions &O) {
    // Profiling forces sequential emission: region timers nested in a
    // parallel loop would race and attribute one thread's clock to the
    // whole grid.
    return PlanBuilder(K, O.OpenMP && !O.Profile).take();
  }

  void claimLoopVars(const Stmt &S) {
    if (S.K != Stmt::Kind::Loop)
      return;
    Names.setVar(S.LoopVar->getVarId(), Names.claim(S.LoopVar->getVarName()));
    for (const StmtPtr &C : S.Body)
      claimLoopVars(*C);
  }

  void line(const std::string &S) {
    for (int I = 0; I != Indent; ++I)
      Out += "  ";
    Out += S;
    Out += '\n';
  }

  std::string renderIndex(const AExpr &E) const;
  std::string renderExpr(const KExpr &E) const;
  void printDecl(int BufId);
  void printRegDecl(int RegId);
  void printStmt(const Stmt &S);
  void printStmts(const std::vector<StmtPtr> &Body);

  const Kernel &K;
  bool Profile;
  ParPlan Plan;
  NameMap Names;
  std::string EntryName;
  std::string Out;
  int Indent = 0;
  /// Profile mode: region root -> (lift_prof slot, region name).
  std::unordered_map<const Stmt *, std::pair<std::size_t, std::string>>
      RegionIdx;
};

std::string Printer::renderIndex(const AExpr &E) const {
  switch (E->getKind()) {
  case ArithExpr::Kind::Cst:
    return std::to_string(E->getCst());
  case ArithExpr::Kind::Var:
    return Names.var(E->getVarId());
  case ArithExpr::Kind::Add:
  case ArithExpr::Kind::Mul: {
    const char *Op = E->getKind() == ArithExpr::Kind::Add ? " + " : " * ";
    std::string S = "(";
    const std::vector<AExpr> &Ops = E->getOperands();
    for (std::size_t I = 0; I != Ops.size(); ++I) {
      if (I)
        S += Op;
      S += renderIndex(Ops[I]);
    }
    return S + ")";
  }
  case ArithExpr::Kind::Div:
  case ArithExpr::Kind::Mod:
  case ArithExpr::Kind::Min:
  case ArithExpr::Kind::Max: {
    const char *Fn = nullptr;
    switch (E->getKind()) {
    case ArithExpr::Kind::Div:
      Fn = "lift_fdiv";
      break;
    case ArithExpr::Kind::Mod:
      Fn = "lift_fmod";
      break;
    case ArithExpr::Kind::Min:
      Fn = "lift_min";
      break;
    default:
      Fn = "lift_max";
      break;
    }
    return std::string(Fn) + "(" + renderIndex(E->getOperands()[0]) + ", " +
           renderIndex(E->getOperands()[1]) + ")";
  }
  }
  unreachable("covered switch");
}

std::string Printer::renderExpr(const KExpr &E) const {
  switch (E.K) {
  case KExpr::Kind::ConstScalar:
    return E.Const.K == ir::ScalarKind::Float ? formatFloat(E.Const.F)
                                              : std::to_string(E.Const.I);
  case KExpr::Kind::IndexVal:
    // The simulator narrows index values to int32 when they enter the
    // scalar world (Sim.cpp evalExpr); mirror that exactly.
    return "(int32_t)" + renderIndex(E.Index);
  case KExpr::Kind::ReadVar:
    return Names.reg(E.VarId);
  case KExpr::Kind::Load:
    return Names.buffer(E.BufferId) + "[" + renderIndex(E.Index) + "]";
  case KExpr::Kind::CallUF: {
    std::string S = E.UF->getName() + "(";
    for (std::size_t I = 0; I != E.Args.size(); ++I) {
      if (I)
        S += ", ";
      S += renderExpr(*E.Args[I]);
    }
    return S + ")";
  }
  case KExpr::Kind::Select: {
    std::string Cond;
    for (std::size_t I = 0; I != E.Checks.size(); ++I) {
      const BoundsCheck &C = E.Checks[I];
      if (I)
        Cond += " && ";
      std::string Idx = renderIndex(C.Idx);
      Cond += "(" + renderIndex(C.Lo) + " <= " + Idx + " && " + Idx + " < " +
              renderIndex(C.Hi) + ")";
    }
    return "(" + Cond + " ? " + renderExpr(*E.Then) + " : " +
           renderExpr(*E.Else) + ")";
  }
  }
  unreachable("covered switch");
}

void Printer::printDecl(int BufId) {
  const BufferDecl &B = K.buffer(BufId);
  // Local/private tiles become (possibly variable-length) stack
  // arrays, zero-initialized like the simulator's fresh storage so an
  // unwritten element reads identically. VLAs cannot take an
  // initializer, so symbolic extents get an explicit fill loop.
  std::string N = renderIndex(B.NumElems);
  if (B.NumElems->getKind() == ArithExpr::Kind::Cst) {
    line(std::string(cKindName(B.ElemKind)) + " " + Names.buffer(BufId) +
         "[" + N + "] = {0};");
    return;
  }
  line(std::string(cKindName(B.ElemKind)) + " " + Names.buffer(BufId) + "[" +
       N + "];");
  line("for (long long lift_i = 0; lift_i < " + N + "; ++lift_i)");
  line("  " + Names.buffer(BufId) + "[lift_i] = 0;");
}

void Printer::printRegDecl(int RegId) {
  const RegisterDecl &R = K.Registers[std::size_t(RegId)];
  line(std::string(cKindName(R.Kind)) + " " + Names.reg(RegId) + " = 0;");
}

void Printer::printStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Kind::Store:
    line(Names.buffer(S.BufferId) + "[" + renderIndex(S.Index) +
         "] = " + renderExpr(*S.Value) + ";");
    return;
  case Stmt::Kind::AssignVar:
    line(Names.reg(S.VarId) + " = " + renderExpr(*S.Value) + ";");
    return;
  case Stmt::Kind::Barrier:
    // A Lcl loop completes for all local ids before the next statement
    // runs — both here and on the simulator — so the barrier is
    // structural and compiles to nothing.
    line("/* work-group barrier: implicit (loop completed) */");
    return;
  case Stmt::Kind::Loop:
    break;
  }

  auto Region = RegionIdx.end();
  if (Profile && (Region = RegionIdx.find(&S)) != RegionIdx.end()) {
    line("{ /* region " + std::to_string(Region->second.first) + ": " +
         Region->second.second + " */");
    ++Indent;
    line("const double lift_t0 = lift_prof_now();");
  }

  bool IsRoot = Plan.Parallel && Plan.Roots.count(&S);
  if (IsRoot)
    line("#pragma omp parallel for schedule(static) "
         "num_threads(lift_threads)");
  if (S.Unroll && S.Count->getKind() == ArithExpr::Kind::Cst &&
      S.Count->getCst() >= 1 && S.Count->getCst() <= 64)
    line("#pragma GCC unroll " + std::to_string(S.Count->getCst()));
  const std::string V = Names.var(S.LoopVar->getVarId());
  line("for (long long " + V + " = 0; " + V + " < " + renderIndex(S.Count) +
       "; ++" + V + ") {");
  ++Indent;
  if (IsRoot) {
    auto BI = Plan.RootBufs.find(&S);
    if (BI != Plan.RootBufs.end())
      for (int Id : BI->second)
        printDecl(Id);
    auto RI = Plan.RootRegs.find(&S);
    if (RI != Plan.RootRegs.end())
      for (int Id : RI->second)
        printRegDecl(Id);
  }
  printStmts(S.Body);
  --Indent;
  line("}");

  if (Region != RegionIdx.end()) {
    line("lift_prof[" + std::to_string(Region->second.first) +
         "] += lift_prof_now() - lift_t0;");
    --Indent;
    line("}");
  }
}

void Printer::printStmts(const std::vector<StmtPtr> &Body) {
  for (const StmtPtr &S : Body)
    printStmt(*S);
}

std::string Printer::run() {
  Out += "// " + EntryName + ": generated by the liftcpp native backend.\n";
  Out += "// Semantics contract: bit-identical to the NDRange simulator\n";
  Out += "// (all loops run 0..count-1; floor division; exact float\n";
  Out += "// literals; float-precision math builtins).\n\n";
  Out += "#include <math.h>\n";
  Out += "#include <stdint.h>\n";
  if (Profile)
    Out += "#include <time.h>\n";
  Out += "\n";
  // OpenCL's sqrt/fmax/fmin on float stay in float; C promotes to
  // double. Map them to the float-precision versions the interpreter's
  // C++ callbacks (std::sqrt(float) etc.) compile to.
  Out += "#define sqrt(x) sqrtf(x)\n";
  Out += "#define fmax(a, b) fmaxf((a), (b))\n";
  Out += "#define fmin(a, b) fminf((a), (b))\n\n";
  // Floor-semantics integer helpers: the simulator evaluates index
  // arithmetic with floorDivInt/floorModInt (support/Support.h); these
  // are the same functions in C.
  Out += "static inline long long lift_fdiv(long long a, long long b) {\n";
  Out += "  long long q = a / b;\n";
  Out += "  if ((a % b != 0) && ((a < 0) != (b < 0)))\n";
  Out += "    --q;\n";
  Out += "  return q;\n";
  Out += "}\n";
  Out += "static inline long long lift_fmod(long long a, long long b) {\n";
  Out += "  return a - lift_fdiv(a, b) * b;\n";
  Out += "}\n";
  Out += "static inline long long lift_min(long long a, long long b) {\n";
  Out += "  return a < b ? a : b;\n";
  Out += "}\n";
  Out += "static inline long long lift_max(long long a, long long b) {\n";
  Out += "  return a > b ? a : b;\n";
  Out += "}\n";
  if (Profile) {
    // The region timer: the same monotonic clock the runner times whole
    // kernels with, read as seconds so accumulation stays a single add.
    Out += "static inline double lift_prof_now(void) {\n";
    Out += "  struct timespec lift_ts;\n";
    Out += "  clock_gettime(CLOCK_MONOTONIC, &lift_ts);\n";
    Out += "  return (double)lift_ts.tv_sec + 1e-9 * "
           "(double)lift_ts.tv_nsec;\n";
    Out += "}\n";
  }
  Out += "\n";

  for (const ir::UserFunPtr &UF : K.UserFuns) {
    std::string Sig = "static ";
    Sig += UF->getRetKind() == ir::ScalarKind::Float ? "float" : "int";
    Sig += " " + UF->getName() + "(";
    for (std::size_t I = 0; I != UF->getParamNames().size(); ++I) {
      if (I)
        Sig += ", ";
      Sig += UF->getParamKinds()[I] == ir::ScalarKind::Float ? "float"
                                                             : "int";
      Sig += " " + UF->getParamNames()[I];
    }
    Sig += ") { " + UF->getOpenCLBody() + " }";
    Out += Sig + "\n";
  }
  if (!K.UserFuns.empty())
    Out += "\n";

  Out += "void " + EntryName +
         "(void **lift_bufs, const long long *lift_sizes, "
         "int lift_threads" +
         (Profile ? std::string(", double *lift_prof") : std::string()) +
         ") {\n";
  Indent = 1;
  std::size_t Slot = 0;
  for (const BufferDecl &B : K.Buffers) {
    if (B.Space != MemSpace::Global)
      continue;
    line(std::string(cKindName(B.ElemKind)) + " *restrict " +
         Names.buffer(B.Id) + " = (" + cKindName(B.ElemKind) +
         " *)lift_bufs[" + std::to_string(Slot++) + "];");
  }
  for (std::size_t I = 0; I != K.SizeArgs.size(); ++I)
    line("const long long " + Names.var(K.SizeArgs[I].first) +
         " = lift_sizes[" + std::to_string(I) + "];");
  line("(void)lift_threads;");
  for (int Id : Plan.TopBufs)
    printDecl(Id);
  for (int Id : Plan.TopRegs)
    printRegDecl(Id);
  printStmts(K.Body);
  Indent = 0;
  Out += "}\n";
  return Out;
}

} // namespace

std::vector<KernelRegion> lift::native::profileRegions(const Kernel &K) {
  std::vector<KernelRegion> Out;
  std::unordered_set<std::string> UsedNames;
  auto Add = [&](const Stmt &Loop) {
    KernelRegion R;
    R.Kind = loopKindName(Loop.LK);
    std::string Base = R.Kind + "." + Loop.LoopVar->getVarName();
    R.Name = Base;
    for (unsigned N = 2; !UsedNames.insert(R.Name).second; ++N)
      R.Name = Base + "_" + std::to_string(N);
    R.Loop = &Loop;
    Out.push_back(std::move(R));
  };
  auto IsPar = [](const Stmt &S) {
    return S.LK == LoopKind::Glb || S.LK == LoopKind::Wrg;
  };

  for (const StmtPtr &Top : K.Body) {
    if (Top->K != Stmt::Kind::Loop)
      continue;
    // Walk the grid spine: consecutive Glb/Wrg loops whose body is a
    // single nested Glb/Wrg loop (the NDRange dimensions).
    const Stmt *Cur = Top.get();
    while (IsPar(*Cur) && Cur->Body.size() == 1 &&
           Cur->Body[0]->K == Stmt::Kind::Loop && IsPar(*Cur->Body[0]))
      Cur = Cur->Body[0].get();
    // A grid whose innermost spine loop carries several sub-loops
    // (tile fill / compute / reduce) gets one region per sub-loop;
    // everything else is a single whole-nest region.
    std::vector<const Stmt *> Subloops;
    if (IsPar(*Cur))
      for (const StmtPtr &C : Cur->Body)
        if (C->K == Stmt::Kind::Loop)
          Subloops.push_back(C.get());
    if (Subloops.size() >= 2)
      for (const Stmt *L : Subloops)
        Add(*L);
    else
      Add(*Top);
  }
  return Out;
}

std::string lift::native::emitC(const Kernel &K, const CEmitOptions &O) {
  return Printer(K, O).run();
}
