//===- Peaks.h - STREAM-style machine peak probe ---------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Probes the host's practical performance ceilings for the roofline
/// lines of profile reports: sustainable memory bandwidth via a
/// STREAM-triad sweep (a[i] = b[i] + s*c[i] over arrays far larger
/// than cache) and float arithmetic throughput via independent
/// multiply-add chains the compiler is free to vectorize. These are
/// achievable-by-ordinary-code peaks, not datasheet numbers — exactly
/// the ceilings an emitted stencil kernel competes against.
///
/// Probing takes tens of milliseconds and is only invoked on explicit
/// profile runs; pass the result into the profiler or leave peaks at
/// zero to skip the roofline columns.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_PEAKS_H
#define LIFT_NATIVE_PEAKS_H

#include <cstddef>

namespace lift {
namespace native {

struct MachinePeaks {
  double GBPerSec = 0;     ///< sustainable triad bandwidth
  double GFlopsPerSec = 0; ///< float multiply-add throughput
};

/// Runs both microbenchmarks. \p Elems is the per-array element count
/// of the triad (default 8M floats = 96 MB of traffic per pass, far
/// beyond any cache); the best of \p Repeats passes is reported.
/// Deliberately reads the real steady clock, not the obs clock seam:
/// a faked clock would make "peak hardware speed" meaningless.
MachinePeaks probeMachinePeaks(std::size_t Elems = std::size_t(8) << 20,
                               int Repeats = 3);

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_PEAKS_H
