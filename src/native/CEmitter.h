//===- CEmitter.h - Kernel AST to plain C ----------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the imperative kernel AST (ocl/KernelAst.h) to plain C so it
/// can be compiled by the host toolchain and executed natively (the
/// Devito-style "emit C, compile, dlopen" backend). The emitted source
/// is a semantic mirror of the NDRange simulator:
///
///  * every loop — Seq, Glb, Wrg, Lcl — iterates 0..count-1 in order,
///    matching the simulator's exact-fit NDRange execution;
///  * index arithmetic uses *floor* division/modulo helpers
///    (lift_fdiv/lift_fmod), the semantics ArithExpr::evaluate uses —
///    C's truncating `/` and `%` would diverge on negative operands;
///  * float literals are printed with 9 significant digits, enough for
///    any float to round-trip bit-exactly;
///  * user functions keep their OpenCL C bodies, with sqrt/fmax/fmin
///    mapped onto their float-precision C versions so arithmetic stays
///    in float exactly as the interpreter's C++ callbacks compute it;
///  * barriers vanish: a Lcl loop runs to completion before the next
///    statement, which is the simulator's (and, under the pragma
///    placement below, OpenMP's) implicit barrier.
///
/// Parallelism: the outermost Glb/Wrg loops get
/// `#pragma omp parallel for` and every register and local/private
/// buffer used under such a loop is declared inside its body, making
/// it iteration-private — the moral equivalent of OpenCL private
/// variables and per-work-group local memory. When a register or
/// local/private buffer is used outside any such loop (or across two
/// of them) the emitter falls back to a fully sequential program,
/// which is always correct.
///
/// The entry point ABI is positional:
///
///   void <name>(void **lift_bufs, const long long *lift_sizes,
///               int lift_threads);
///
/// `lift_bufs` holds one pointer per *global* buffer in declaration
/// order (float* or int32_t* according to the element kind);
/// `lift_sizes` holds one value per Kernel::SizeArgs entry, in order.
/// Buffer/size order is a pure function of the kernel structure, so
/// alpha-equivalent kernels (equal structural hash) share one ABI —
/// the property the compiled-kernel cache relies on.
///
/// Profile mode (CEmitOptions::Profile) appends one parameter:
///
///   void <name>(void **lift_bufs, const long long *lift_sizes,
///               int lift_threads, double *lift_prof);
///
/// and wraps each profile region (profileRegions()) in monotonic-clock
/// timers that *accumulate* elapsed seconds into lift_prof[k], k being
/// the region's index in profileRegions() order. The computation is
/// untouched — outputs stay bit-identical to the unprofiled kernel —
/// but pragmas are suppressed (sequential execution) so nested region
/// timers measure exactly one thread's work and attribution is exact;
/// lift_threads is accordingly inert under profiling.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_NATIVE_CEMITTER_H
#define LIFT_NATIVE_CEMITTER_H

#include "ocl/KernelAst.h"

#include <string>
#include <vector>

namespace lift {
namespace native {

struct CEmitOptions {
  /// Emit `#pragma omp parallel for` on parallelizable outermost
  /// Glb/Wrg loops. The pragmas are ignored when the source is
  /// compiled without -fopenmp, so disabling this only pins the
  /// golden-source tests of the sequential shape.
  bool OpenMP = true;
  /// Instrument profile regions with timers and extend the ABI with a
  /// `double *lift_prof` accumulator array (see file comment). Forces
  /// sequential emission.
  bool Profile = false;
};

/// One instrumentable loop-nest region of a kernel. Regions partition
/// the interesting work: every top-level loop nest is one region,
/// except that when a spine of singleton Glb/Wrg loops (the NDRange
/// grid) ends in a body with several sub-loops (local-tile fill,
/// compute/reduce loops), each of those sub-loops becomes its own
/// region — the shape tiled+local-memory lowerings produce.
struct KernelRegion {
  /// Deterministic name: "<kind>.<loop var>", e.g. "glb.i0", "lcl.i4"
  /// (deduplicated with numeric suffixes if loop-var names repeat).
  std::string Name;
  std::string Kind; ///< loopKindName of the region root
  const ocl::Stmt *Loop = nullptr; ///< the loop the timer wraps
};

/// The profile regions of \p K, in the order their timers index
/// lift_prof[]. A pure function of the kernel structure — the emitter
/// and the runtime report derive the same list independently.
std::vector<KernelRegion> profileRegions(const ocl::Kernel &K);

/// Renders \p K as a self-contained C translation unit. The output is
/// deterministic: equal kernels produce byte-identical source (the
/// golden-snapshot contract in tests/native/golden/).
std::string emitC(const ocl::Kernel &K, const CEmitOptions &O = {});

} // namespace native
} // namespace lift

#endif // LIFT_NATIVE_CEMITTER_H
