//===- Profiler.cpp - In-kernel profiling driver ----------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "native/Profiler.h"

#include "codegen/AccessAnalysis.h"

using namespace lift;
using namespace lift::native;

ProfiledKernelRun lift::native::profileKernel(
    const codegen::Compiled &C, std::uint64_t LoweredHash,
    const std::vector<std::vector<float>> &Inputs, const ocl::SizeEnv &Sizes,
    unsigned Warmup, unsigned Repeats, const NativeOptions &O,
    const MachinePeaks *Peaks) {
  NativeOptions PO = O;
  PO.Profile = true;
  // Separate cache identity for the instrumented binary (the same
  // XOR-a-constant convention the interior-specialized kernels use).
  NativeKernelPtr Kern = KernelCache::global().getOrCompile(
      LoweredHash ^ 0x9E3779B97F4A7C15ULL, C.K, PO);

  std::vector<KernelRegion> Regions = profileRegions(C.K);
  NativeProfiledResult Run = runNativeProfiled(
      C, *Kern, Inputs, Sizes, Regions.size(), Warmup, Repeats);

  ProfiledKernelRun Out;
  Out.Output = std::move(Run.R.Output);
  Out.P.KernelName = C.K.Name;
  Out.P.TotalSeconds = Run.R.Seconds;
  if (Peaks) {
    Out.P.PeakGBPerSec = Peaks->GBPerSec;
    Out.P.PeakGFlopsPerSec = Peaks->GFlopsPerSec;
  }
  for (std::size_t I = 0; I != Regions.size(); ++I) {
    codegen::RegionWork W =
        codegen::staticRegionWork(C.K, *Regions[I].Loop, Sizes);
    obs::ProfileRegion R;
    R.Name = Regions[I].Name;
    R.Kind = Regions[I].Kind;
    R.Seconds = I < Run.RegionSeconds.size() ? Run.RegionSeconds[I] : 0.0;
    R.Iterations = W.Iterations;
    R.BytesRead = W.BytesRead;
    R.BytesWritten = W.BytesWritten;
    R.Flops = W.Flops;
    Out.P.Regions.push_back(std::move(R));
  }
  return Out;
}
