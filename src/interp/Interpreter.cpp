//===- Interpreter.cpp - Reference semantics for the Lift IR ---------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ir/TypeInference.h"
#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::interp;

namespace {

/// Raises a precondition failure as a recoverable error. Kept out of
/// line so each call site reads as a one-line check.
[[noreturn]] void evalError(const std::string &Msg) {
  throw EvalError("interpreter: " + Msg);
}

class Evaluator {
public:
  Evaluator(const SizeEnv &Sizes) : Sizes(Sizes) {}

  Value eval(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal:
      return Value::scalar(dynCast<LiteralExpr>(E)->getValue());
    case Expr::Kind::Param: {
      auto It = Env.find(static_cast<const ParamExpr *>(E.get()));
      if (It == Env.end())
        evalError("unbound parameter " + dynCast<ParamExpr>(E)->getName());
      return It->second;
    }
    case Expr::Kind::Lambda:
      evalError("lambda outside function position");
    case Expr::Kind::Call:
      return evalCall(*dynCast<CallExpr>(E));
    }
    unreachable("covered switch");
  }

  void bind(const ParamExpr *P, Value V) { Env[P] = std::move(V); }

private:
  const SizeEnv &Sizes;
  std::unordered_map<const ParamExpr *, Value> Env;

  /// Size expressions are hash-consed (one node per distinct
  /// structure), so caching by node identity makes every repeated
  /// evaluation of the same symbolic size — e.g. a slide step queried
  /// once per window — a single hash-map hit instead of a tree walk.
  std::unordered_map<const ArithExpr *, std::int64_t> SizeMemo;

  std::int64_t evalSize(const AExpr &A) {
    auto [It, Inserted] = SizeMemo.try_emplace(A.get(), 0);
    if (Inserted)
      It->second = A->evaluate(Sizes);
    return It->second;
  }

  Value applyLambda(const LambdaPtr &L, std::vector<Value> Args) {
    assert(L->getParams().size() == Args.size() && "lambda arity");
    // Save and restore bindings so recursion through nested lambdas with
    // shadowed parameters stays correct.
    std::vector<std::pair<const ParamExpr *, std::optional<Value>>> Saved;
    for (std::size_t I = 0, E = Args.size(); I != E; ++I) {
      const ParamExpr *P = L->getParams()[I].get();
      auto It = Env.find(P);
      Saved.emplace_back(P, It == Env.end()
                                ? std::optional<Value>()
                                : std::optional<Value>(It->second));
      Env[P] = std::move(Args[I]);
    }
    Value Result = eval(L->getBody());
    for (auto &[P, Old] : Saved) {
      if (Old)
        Env[P] = std::move(*Old);
      else
        Env.erase(P);
    }
    return Result;
  }

  static LambdaPtr lambdaArg(const CallExpr &C, std::size_t I) {
    return std::static_pointer_cast<LambdaExpr>(C.getArgs()[I]);
  }

  Value evalCall(const CallExpr &C) {
    switch (C.getPrim()) {
    case Prim::UserFunCall: {
      std::vector<Scalar> Args;
      Args.reserve(C.getArgs().size());
      for (const ExprPtr &A : C.getArgs())
        Args.push_back(eval(A).getScalar());
      return Value::scalar(C.UF->evaluate(Args));
    }

    case Prim::Map:
    case Prim::MapGlb:
    case Prim::MapWrg:
    case Prim::MapLcl:
    case Prim::MapSeq: {
      LambdaPtr F = lambdaArg(C, 0);
      Value In = eval(C.getArgs()[1]);
      std::vector<Value> Out;
      Out.reserve(In.size());
      for (const Value &E : In.getElems())
        Out.push_back(applyLambda(F, {E}));
      return Value::array(std::move(Out));
    }

    case Prim::Reduce:
    case Prim::ReduceSeq:
    case Prim::ReduceSeqUnroll: {
      LambdaPtr F = lambdaArg(C, 0);
      Value Acc = eval(C.getArgs()[1]);
      Value In = eval(C.getArgs()[2]);
      for (const Value &E : In.getElems())
        Acc = applyLambda(F, {Acc, E});
      return Value::array({Acc});
    }

    case Prim::Iterate: {
      LambdaPtr F = lambdaArg(C, 0);
      Value V = eval(C.getArgs()[1]);
      for (int I = 0; I != C.IterCount; ++I)
        V = applyLambda(F, {V});
      return V;
    }

    case Prim::Zip: {
      std::vector<Value> Ins;
      Ins.reserve(C.getArgs().size());
      for (const ExprPtr &A : C.getArgs())
        Ins.push_back(eval(A));
      std::size_t N = Ins.front().size();
      for (const Value &In : Ins)
        if (In.size() != N)
          evalError("zip length mismatch at runtime: " + std::to_string(N) +
                    " vs " + std::to_string(In.size()));
      std::vector<Value> Out;
      Out.reserve(N);
      for (std::size_t I = 0; I != N; ++I) {
        std::vector<Value> Comps;
        Comps.reserve(Ins.size());
        for (const Value &In : Ins)
          Comps.push_back(In[I]);
        Out.push_back(Value::tuple(std::move(Comps)));
      }
      return Value::array(std::move(Out));
    }

    case Prim::Split: {
      Value In = eval(C.getArgs()[0]);
      std::int64_t M = evalSize(C.Factor);
      if (M <= 0 || std::int64_t(In.size()) % M != 0)
        evalError("split factor " + std::to_string(M) +
                  " must evenly divide the array length " +
                  std::to_string(In.size()));
      std::vector<Value> Out;
      Out.reserve(In.size() / M);
      for (std::size_t I = 0; I < In.size(); I += M) {
        std::vector<Value> Chunk(In.getElems().begin() + I,
                                 In.getElems().begin() + I + M);
        Out.push_back(Value::array(std::move(Chunk)));
      }
      return Value::array(std::move(Out));
    }

    case Prim::Join: {
      Value In = eval(C.getArgs()[0]);
      std::vector<Value> Out;
      for (const Value &Inner : In.getElems())
        for (const Value &E : Inner.getElems())
          Out.push_back(E);
      return Value::array(std::move(Out));
    }

    case Prim::Transpose: {
      Value In = eval(C.getArgs()[0]);
      std::size_t N = In.size();
      if (N == 0)
        evalError("transpose of empty array");
      std::size_t M = In[0].size();
      for (const Value &Row : In.getElems())
        if (Row.size() != M)
          evalError("transpose of ragged array");
      std::vector<Value> Out;
      Out.reserve(M);
      for (std::size_t J = 0; J != M; ++J) {
        std::vector<Value> Row;
        Row.reserve(N);
        for (std::size_t I = 0; I != N; ++I)
          Row.push_back(In[I][J]);
        Out.push_back(Value::array(std::move(Row)));
      }
      return Value::array(std::move(Out));
    }

    case Prim::Slide: {
      Value In = eval(C.getArgs()[0]);
      std::int64_t Size = evalSize(C.Size);
      std::int64_t Step = evalSize(C.Step);
      if (Size <= 0 || Step <= 0)
        evalError("slide parameters must be positive; got size " +
                  std::to_string(Size) + ", step " + std::to_string(Step));
      std::int64_t N = std::int64_t(In.size());
      std::int64_t Count = floorDivInt(N - Size + Step, Step);
      if (Count < 0)
        evalError("slide window of size " + std::to_string(Size) +
                  " larger than array of length " + std::to_string(N));
      std::vector<Value> Out;
      Out.reserve(std::size_t(Count));
      for (std::int64_t W = 0; W != Count; ++W) {
        std::vector<Value> Window;
        Window.reserve(std::size_t(Size));
        for (std::int64_t J = 0; J != Size; ++J)
          Window.push_back(In[std::size_t(W * Step + J)]);
        Out.push_back(Value::array(std::move(Window)));
      }
      return Value::array(std::move(Out));
    }

    case Prim::SlideClamp: {
      Value In = eval(C.getArgs()[0]);
      std::int64_t Size = evalSize(C.Size);
      std::int64_t Step = evalSize(C.Step);
      if (Size <= 0 || Step <= 0)
        evalError("slideClamp parameters must be positive; got size " +
                  std::to_string(Size) + ", step " + std::to_string(Step));
      std::int64_t N = std::int64_t(In.size());
      if (N < Size)
        evalError("slideClamp window of size " + std::to_string(Size) +
                  " larger than array of length " + std::to_string(N));
      // ceil((n - size) / step) + 1 full-width windows; the last starts
      // are clamped so every element is covered.
      std::int64_t Count = floorDivInt(N - Size + Step - 1, Step) + 1;
      std::vector<Value> Out;
      Out.reserve(std::size_t(Count));
      for (std::int64_t W = 0; W != Count; ++W) {
        std::int64_t Start = std::min(W * Step, N - Size);
        std::vector<Value> Window;
        Window.reserve(std::size_t(Size));
        for (std::int64_t J = 0; J != Size; ++J)
          Window.push_back(In[std::size_t(Start + J)]);
        Out.push_back(Value::array(std::move(Window)));
      }
      return Value::array(std::move(Out));
    }

    case Prim::JoinClamp: {
      Value In = eval(C.getArgs()[0]);
      std::int64_t M = evalSize(C.Size);
      std::int64_t T = std::int64_t(In.size());
      if (T == 0)
        evalError("joinClamp of empty tile grid");
      std::int64_t K = std::int64_t(In[0].size());
      for (const Value &Tile : In.getElems())
        if (std::int64_t(Tile.size()) != K)
          evalError("joinClamp of ragged tile grid");
      // Exactly t = ceil(m/k) tiles: (t-1)*k < m <= t*k, and k <= m.
      if (K > M || T * K < M || (T - 1) * K >= M)
        evalError("joinClamp tile grid " + std::to_string(T) + "x" +
                  std::to_string(K) + " does not cover output length " +
                  std::to_string(M));
      std::vector<Value> Out(static_cast<std::size_t>(M));
      // Ascending w so overlap positions get the last writer, matching
      // the codegen store order; the written values are identical.
      for (std::int64_t W = 0; W != T; ++W) {
        std::int64_t Start = std::min(W * K, M - K);
        for (std::int64_t J = 0; J != K; ++J)
          Out[std::size_t(Start + J)] = In[std::size_t(W)][std::size_t(J)];
      }
      return Value::array(std::move(Out));
    }

    case Prim::Pad: {
      Value In = eval(C.getArgs()[0]);
      std::int64_t L = evalSize(C.PadL);
      std::int64_t R = evalSize(C.PadR);
      if (L < 0 || R < 0)
        evalError("pad amounts must be non-negative; got " +
                  std::to_string(L) + ", " + std::to_string(R));
      std::int64_t N = std::int64_t(In.size());
      if (N == 0 && (L > 0 || R > 0))
        evalError("pad of empty array has no boundary values");
      std::vector<Value> Out;
      Out.reserve(std::size_t(L + N + R));
      for (std::int64_t I = -L; I != N + R; ++I) {
        if (I >= 0 && I < N) {
          Out.push_back(In[std::size_t(I)]);
          continue;
        }
        if (C.Bdy.K == Boundary::Kind::Constant) {
          // Fill a whole element (possibly a nested array) with the
          // constant, using the first real element as the shape proto.
          Out.push_back(fillLike(In[0], C.Bdy.ConstVal));
          continue;
        }
        Out.push_back(In[std::size_t(resolveBoundaryIndex(C.Bdy.K, I, N))]);
      }
      return Value::array(std::move(Out));
    }

    case Prim::At: {
      Value In = eval(C.getArgs()[0]);
      if (C.Index < 0 || std::size_t(C.Index) >= In.size())
        evalError("at index " + std::to_string(C.Index) +
                  " out of bounds for length " + std::to_string(In.size()));
      return In[std::size_t(C.Index)];
    }

    case Prim::Get: {
      Value In = eval(C.getArgs()[0]);
      if (!In.isTuple())
        evalError("get on non-tuple");
      if (C.Index < 0 || std::size_t(C.Index) >= In.size())
        evalError("get index " + std::to_string(C.Index) +
                  " out of bounds for tuple of size " +
                  std::to_string(In.size()));
      return In[std::size_t(C.Index)];
    }

    case Prim::SizeVal:
      return Value::scalar(Scalar(std::int32_t(evalSize(C.Size))));

    case Prim::Generate: {
      LambdaPtr F = lambdaArg(C, 0);
      std::vector<std::int64_t> Dims;
      for (const AExpr &S : C.GenSizes)
        Dims.push_back(evalSize(S));
      return generateDim(F, Dims, 0, {});
    }
    }
    unreachable("covered switch");
  }

  /// Recursively builds the nested array produced by Generate.
  Value generateDim(const LambdaPtr &F, const std::vector<std::int64_t> &Dims,
                    std::size_t Depth, std::vector<Value> Indices) {
    if (Depth == Dims.size())
      return applyLambda(F, Indices);
    std::vector<Value> Out;
    Out.reserve(std::size_t(Dims[Depth]));
    for (std::int64_t I = 0; I != Dims[Depth]; ++I) {
      std::vector<Value> Next = Indices;
      Next.push_back(Value::scalar(Scalar(std::int32_t(I))));
      Out.push_back(generateDim(F, Dims, Depth + 1, std::move(Next)));
    }
    return Value::array(std::move(Out));
  }

  /// A value shaped like \p Proto with every scalar replaced by \p C.
  static Value fillLike(const Value &Proto, float C) {
    switch (Proto.getKind()) {
    case Value::Kind::Scalar: {
      Scalar S = Proto.getScalar();
      if (S.K == ScalarKind::Float)
        return Value::scalar(Scalar(C));
      return Value::scalar(Scalar(std::int32_t(C)));
    }
    case Value::Kind::Array:
    case Value::Kind::Tuple: {
      std::vector<Value> Elems;
      Elems.reserve(Proto.getElems().size());
      for (const Value &E : Proto.getElems())
        Elems.push_back(fillLike(E, C));
      return Proto.getKind() == Value::Kind::Array
                 ? Value::array(std::move(Elems))
                 : Value::tuple(std::move(Elems));
    }
    }
    unreachable("covered switch");
  }
};

} // namespace

Value lift::interp::evalProgram(const Program &P,
                                const std::vector<Value> &Inputs,
                                const SizeEnv &Sizes) {
  if (!P->getType())
    inferTypes(P);
  if (Inputs.size() != P->getParams().size())
    evalError("input count mismatch: got " + std::to_string(Inputs.size()) +
              " for " + std::to_string(P->getParams().size()) +
              " parameters");
  Evaluator Ev(Sizes);
  for (std::size_t I = 0, E = Inputs.size(); I != E; ++I)
    Ev.bind(P->getParams()[I].get(), Inputs[I]);
  return Ev.eval(P->getBody());
}

std::optional<Value> lift::interp::tryEvalProgram(const Program &P,
                                                  const std::vector<Value> &Inputs,
                                                  const SizeEnv &Sizes,
                                                  std::string *Err) {
  try {
    return evalProgram(P, Inputs, Sizes);
  } catch (const RecoverableError &E) {
    if (Err)
      *Err = E.what();
    return std::nullopt;
  }
}
