//===- Interpreter.h - Reference semantics for the Lift IR -----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct, high-level interpreter giving the Lift IR its executable
/// semantics. This is the correctness oracle of the whole system:
/// rewrite rules are property-tested by interpreting both sides, and the
/// OpenCL code generator + NDRange simulator are validated against it.
/// It materializes every intermediate value, so it is only meant for
/// small grids — performance comes from the compiled path.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_INTERP_INTERPRETER_H
#define LIFT_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "ir/Expr.h"

#include <unordered_map>

namespace lift {
namespace interp {

/// Concrete bindings for the size variables of a program, keyed by
/// ArithExpr variable id.
using SizeEnv = std::unordered_map<unsigned, std::int64_t>;

/// Evaluates program \p P on \p Inputs (one value per program
/// parameter). \p Sizes binds every size variable appearing in the
/// input types. Runs type inference if \p P has no types yet.
Value evalProgram(const ir::Program &P, const std::vector<Value> &Inputs,
                  const SizeEnv &Sizes);

} // namespace interp
} // namespace lift

#endif // LIFT_INTERP_INTERPRETER_H
