//===- Interpreter.h - Reference semantics for the Lift IR -----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct, high-level interpreter giving the Lift IR its executable
/// semantics. This is the correctness oracle of the whole system:
/// rewrite rules are property-tested by interpreting both sides, and the
/// OpenCL code generator + NDRange simulator are validated against it.
/// It materializes every intermediate value, so it is only meant for
/// small grids — performance comes from the compiled path.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_INTERP_INTERPRETER_H
#define LIFT_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "ir/Expr.h"
#include "support/Support.h"

#include <optional>
#include <unordered_map>

namespace lift {
namespace interp {

/// Concrete bindings for the size variables of a program, keyed by
/// ArithExpr variable id.
using SizeEnv = std::unordered_map<unsigned, std::int64_t>;

/// Thrown when a program violates a runtime precondition the type
/// system cannot express (split divisibility, zip length agreement,
/// slide window fit, negative pad amounts, out-of-bounds at, ...).
/// These used to be asserts, which vanish under NDEBUG and let Release
/// builds run malformed programs into UB; throwing keeps the check in
/// every build and lets generative tooling discard the program.
class EvalError : public RecoverableError {
public:
  using RecoverableError::RecoverableError;
};

/// Evaluates program \p P on \p Inputs (one value per program
/// parameter). \p Sizes binds every size variable appearing in the
/// input types. Runs type inference if \p P has no types yet. Throws
/// EvalError (or ir::TypeError from inference) on malformed programs.
Value evalProgram(const ir::Program &P, const std::vector<Value> &Inputs,
                  const SizeEnv &Sizes);

/// Non-throwing wrapper: returns nullopt when \p P is ill-typed or
/// violates an evaluation precondition, storing the diagnostic in
/// \p Err when non-null.
std::optional<Value> tryEvalProgram(const ir::Program &P,
                                    const std::vector<Value> &Inputs,
                                    const SizeEnv &Sizes,
                                    std::string *Err = nullptr);

} // namespace interp
} // namespace lift

#endif // LIFT_INTERP_INTERPRETER_H
