//===- Value.h - Runtime values for the interpreter ------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the high-level interpreter: scalars, nested
/// arrays and tuples, mirroring the Lift type system.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_INTERP_VALUE_H
#define LIFT_INTERP_VALUE_H

#include "ir/Types.h"
#include "ir/UserFun.h"

#include <string>
#include <vector>

namespace lift {
namespace interp {

/// A runtime value: scalar, array of values, or tuple of values.
class Value {
public:
  enum class Kind { Scalar, Array, Tuple };

  Value() : K(Kind::Scalar) {}

  static Value scalar(ir::Scalar S) {
    Value V;
    V.K = Kind::Scalar;
    V.S = S;
    return V;
  }

  static Value array(std::vector<Value> Elems) {
    Value V;
    V.K = Kind::Array;
    V.Elems = std::move(Elems);
    return V;
  }

  static Value tuple(std::vector<Value> Comps) {
    Value V;
    V.K = Kind::Tuple;
    V.Elems = std::move(Comps);
    return V;
  }

  Kind getKind() const { return K; }
  bool isScalar() const { return K == Kind::Scalar; }
  bool isArray() const { return K == Kind::Array; }
  bool isTuple() const { return K == Kind::Tuple; }

  ir::Scalar getScalar() const;
  const std::vector<Value> &getElems() const;
  std::size_t size() const { return getElems().size(); }
  const Value &operator[](std::size_t I) const;

  /// Renders e.g. "[1, 2, {3, 4}]" for debugging and test diagnostics.
  std::string toString() const;

private:
  Kind K;
  ir::Scalar S;
  std::vector<Value> Elems;
};

/// Builds a 1D float array value.
Value makeFloatArray(const std::vector<float> &Data);

/// Builds a 2D float array value with \p Rows rows of \p Cols columns,
/// read row-major from \p Data.
Value makeFloatArray2D(const std::vector<float> &Data, std::size_t Rows,
                       std::size_t Cols);

/// Builds a 3D float array value (outermost dimension first), read from
/// \p Data in row-major order.
Value makeFloatArray3D(const std::vector<float> &Data, std::size_t D0,
                       std::size_t D1, std::size_t D2);

/// Appends all scalars of \p V in row-major order to \p Out (floats as
/// stored, ints converted to float).
void flattenValue(const Value &V, std::vector<float> &Out);

/// Builds a value of array/scalar type \p T (sizes evaluated with
/// \p SizeEnv) where every scalar equals \p Fill.
Value filledValue(const ir::TypePtr &T,
                  const std::unordered_map<unsigned, std::int64_t> &SizeEnv,
                  ir::Scalar Fill);

} // namespace interp
} // namespace lift

#endif // LIFT_INTERP_VALUE_H
