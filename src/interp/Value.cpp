//===- Value.cpp - Runtime values for the interpreter ----------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::interp;

ir::Scalar Value::getScalar() const {
  assert(K == Kind::Scalar && "getScalar on non-scalar value");
  return S;
}

const std::vector<Value> &Value::getElems() const {
  assert(K != Kind::Scalar && "getElems on scalar value");
  return Elems;
}

const Value &Value::operator[](std::size_t I) const {
  assert(K != Kind::Scalar && I < Elems.size() && "value index out of range");
  return Elems[I];
}

std::string Value::toString() const {
  switch (K) {
  case Kind::Scalar:
    return S.K == ir::ScalarKind::Float ? std::to_string(S.F)
                                        : std::to_string(S.I);
  case Kind::Array:
  case Kind::Tuple: {
    std::string Str = K == Kind::Array ? "[" : "{";
    for (std::size_t I = 0, E = Elems.size(); I != E; ++I) {
      if (I != 0)
        Str += ", ";
      Str += Elems[I].toString();
    }
    return Str + (K == Kind::Array ? "]" : "}");
  }
  }
  unreachable("covered switch");
}

Value lift::interp::makeFloatArray(const std::vector<float> &Data) {
  std::vector<Value> Elems;
  Elems.reserve(Data.size());
  for (float F : Data)
    Elems.push_back(Value::scalar(ir::Scalar(F)));
  return Value::array(std::move(Elems));
}

Value lift::interp::makeFloatArray2D(const std::vector<float> &Data,
                                     std::size_t Rows, std::size_t Cols) {
  assert(Data.size() == Rows * Cols && "2D array shape mismatch");
  std::vector<Value> RowVals;
  RowVals.reserve(Rows);
  for (std::size_t R = 0; R != Rows; ++R) {
    std::vector<Value> RowElems;
    RowElems.reserve(Cols);
    for (std::size_t C = 0; C != Cols; ++C)
      RowElems.push_back(Value::scalar(ir::Scalar(Data[R * Cols + C])));
    RowVals.push_back(Value::array(std::move(RowElems)));
  }
  return Value::array(std::move(RowVals));
}

Value lift::interp::makeFloatArray3D(const std::vector<float> &Data,
                                     std::size_t D0, std::size_t D1,
                                     std::size_t D2) {
  assert(Data.size() == D0 * D1 * D2 && "3D array shape mismatch");
  std::vector<Value> Outer;
  Outer.reserve(D0);
  for (std::size_t I = 0; I != D0; ++I) {
    std::vector<Value> Mid;
    Mid.reserve(D1);
    for (std::size_t J = 0; J != D1; ++J) {
      std::vector<Value> Inner;
      Inner.reserve(D2);
      for (std::size_t L = 0; L != D2; ++L)
        Inner.push_back(
            Value::scalar(ir::Scalar(Data[(I * D1 + J) * D2 + L])));
      Mid.push_back(Value::array(std::move(Inner)));
    }
    Outer.push_back(Value::array(std::move(Mid)));
  }
  return Value::array(std::move(Outer));
}

void lift::interp::flattenValue(const Value &V, std::vector<float> &Out) {
  if (V.isScalar()) {
    Out.push_back(V.getScalar().asFloat());
    return;
  }
  for (const Value &E : V.getElems())
    flattenValue(E, Out);
}

Value lift::interp::filledValue(
    const ir::TypePtr &T,
    const std::unordered_map<unsigned, std::int64_t> &SizeEnv,
    ir::Scalar Fill) {
  switch (T->getKind()) {
  case ir::Type::Kind::Scalar: {
    if (T->getScalarKind() == ir::ScalarKind::Float)
      return Value::scalar(ir::Scalar(Fill.asFloat()));
    return Value::scalar(ir::Scalar(Fill.asInt()));
  }
  case ir::Type::Kind::Array: {
    std::int64_t N = T->getSize()->evaluate(SizeEnv);
    assert(N >= 0 && "negative array size");
    std::vector<Value> Elems(
        std::size_t(N), filledValue(T->getElem(), SizeEnv, Fill));
    return Value::array(std::move(Elems));
  }
  case ir::Type::Kind::Tuple: {
    std::vector<Value> Comps;
    for (const ir::TypePtr &C : T->getComponents())
      Comps.push_back(filledValue(C, SizeEnv, Fill));
    return Value::tuple(std::move(Comps));
  }
  }
  unreachable("covered switch");
}
