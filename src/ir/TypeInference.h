//===- TypeInference.h - Lift IR type inference ----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type inference over Lift programs. Sizes are propagated symbolically:
/// e.g. slide(size, step) maps [T]n to [[T]size]{(n-size+step)/step}
/// (paper §3.2) and pad(l, r) maps [T]n to [T]{l+n+r}. Ill-typed
/// programs (mismatched zip lengths, wrong userFun arity, non-invariant
/// iterate bodies, ...) are fatal errors: they indicate bugs in builders
/// or rewrite rules, never valid user input.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_TYPEINFERENCE_H
#define LIFT_IR_TYPEINFERENCE_H

#include "ir/Expr.h"

namespace lift {
namespace ir {

/// Infers and stores the type of every node in \p P. The program's
/// parameters must carry declared types. Returns the program result
/// type.
TypePtr inferTypes(const Program &P);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_TYPEINFERENCE_H
