//===- TypeInference.h - Lift IR type inference ----------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type inference over Lift programs. Sizes are propagated symbolically:
/// e.g. slide(size, step) maps [T]n to [[T]size]{(n-size+step)/step}
/// (paper §3.2) and pad(l, r) maps [T]n to [T]{l+n+r}. Ill-typed
/// programs (mismatched zip lengths, wrong userFun arity, non-invariant
/// iterate bodies, ...) throw TypeError: handwritten pipelines treat
/// that as a bug, while generative tooling (the differential fuzzer,
/// exploration) catches it via tryInferTypes and discards the program.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_TYPEINFERENCE_H
#define LIFT_IR_TYPEINFERENCE_H

#include "ir/Expr.h"
#include "support/Support.h"

namespace lift {
namespace ir {

/// Thrown when a program fails to type-check. The message names the
/// violated rule and pretty-prints the offending expression.
class TypeError : public RecoverableError {
public:
  using RecoverableError::RecoverableError;
};

/// Infers and stores the type of every node in \p P. The program's
/// parameters must carry declared types. Returns the program result
/// type. Throws TypeError on ill-typed programs.
TypePtr inferTypes(const Program &P);

/// Non-throwing wrapper around inferTypes: returns nullptr on a type
/// error and, when \p Err is non-null, stores the diagnostic there.
TypePtr tryInferTypes(const Program &P, std::string *Err = nullptr);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_TYPEINFERENCE_H
