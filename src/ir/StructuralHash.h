//===- StructuralHash.h - Structural hash/equality for the IR --*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alpha-invariant structural hashing and equality over IR expressions,
/// programs and types.
///
/// The rewrite-space exploration (paper §1, §5) visits thousands of
/// candidate programs and must deduplicate them; doing so by printed
/// string form costs a full render plus a string hash per candidate.
/// These visitors instead compute a structural fingerprint directly:
///
///  - Bound parameters hash and compare by *binding position* (de
///    Bruijn-style), so alpha-renamed and freshly cloned programs
///    coincide. Free parameters compare by node identity.
///  - Symbolic payloads (split factors, slide sizes, pad amounts,
///    array sizes) are hash-consed ArithExprs: they hash via their
///    precomputed node hash and compare by interned pointer.
///  - User functions compare by name, matching the printed-form
///    convention used elsewhere.
///
/// The contract exploration relies on: structuralEquals(A, B) implies
/// structuralHash(A) == structuralHash(B), and equality is exactly
/// "same program modulo bound-parameter names". Hashes are stable
/// within a process but NOT across processes (free parameters and
/// variable ids are assigned in construction order), so they must not
/// be persisted.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_STRUCTURALHASH_H
#define LIFT_IR_STRUCTURALHASH_H

#include "ir/Expr.h"

#include <cstddef>

namespace lift {
namespace ir {

/// Alpha-invariant structural hash of an expression tree. Lambdas hash
/// their parameters by binding position and declared type; payload
/// ArithExprs hash via their interned node hash.
std::size_t structuralHash(const ExprPtr &E);

/// Structural hash of a type; array sizes hash via their interned
/// ArithExpr node hash, consistent with typeEquals.
std::size_t structuralHash(const TypePtr &T);

/// Alpha-invariant structural equality: true when \p A and \p B are the
/// same program modulo bound-parameter naming. Free parameters must be
/// the identical nodes; symbolic payloads compare via exprEquals
/// (pointer comparison for interned nodes).
bool structuralEquals(const ExprPtr &A, const ExprPtr &B);

/// Hash functor for unordered containers keyed on expressions or
/// programs (Program converts to ExprPtr).
struct StructuralExprHash {
  std::size_t operator()(const ExprPtr &E) const { return structuralHash(E); }
};

/// Matching equality functor.
struct StructuralExprEq {
  bool operator()(const ExprPtr &A, const ExprPtr &B) const {
    return structuralEquals(A, B);
  }
};

} // namespace ir
} // namespace lift

#endif // LIFT_IR_STRUCTURALHASH_H
