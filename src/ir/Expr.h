//===- Expr.h - Lift IR expressions ----------------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lift IR: a small functional language of data-parallel primitives.
///
/// A program is a lambda whose parameters are the input arrays and whose
/// body composes primitives (paper §3.1) plus the two stencil additions
/// `slide` and `pad` (paper §3.2). Higher-order primitives take their
/// function arguments as LambdaExpr nodes; partial applications like
/// `map(f)` are eta-expanded by the builders so every function position
/// holds a lambda. OpenCL-specific low-level primitives (mapGlb, mapWrg,
/// mapLcl, mapSeq, reduceSeq, reduceSeqUnroll, and the address-space
/// wrappers toLocal/toGlobal/toPrivate — represented as an address-space
/// attribute on lambdas) encode implementation choices introduced by the
/// rewrite engine.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_EXPR_H
#define LIFT_IR_EXPR_H

#include "ir/Types.h"
#include "ir/UserFun.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace ir {

class Expr;
class ParamExpr;
class LambdaExpr;

using ExprPtr = std::shared_ptr<Expr>;
using ParamPtr = std::shared_ptr<ParamExpr>;
using LambdaPtr = std::shared_ptr<LambdaExpr>;

/// Primitive operations callable in the IR.
enum class Prim {
  UserFunCall, ///< scalar computation (paper: userFun)
  // High-level data parallelism (paper §3.1).
  Map,     ///< apply f to each element
  Reduce,  ///< fold with operator and init; result [U]1
  Iterate, ///< apply f m times
  Zip,     ///< n-ary elementwise tupling
  Split,   ///< [T]n -> [[T]m]{n/m}
  Join,    ///< [[T]m]n -> [T]{m*n}
  Transpose,
  At,       ///< constant index into an array
  Get,      ///< constant index into a tuple
  Generate, ///< lazily built array from an index function (paper: array)
  SizeVal,  ///< a symbolic size expression as an int scalar value
  // Stencil extensions (paper §3.2).
  Slide, ///< sliding window: size, step
  Pad,   ///< boundary handling: l, r, boundary function
  // Remainder-tile extensions: the clamped duals of slide/join used by
  // the tiling rule when the tile does not divide the extent. A
  // slideClamp window w starts at min(w*step, n-size), so the last
  // window is a full-width tile shifted left into bounds; joinClamp
  // reassembles the resulting overlapping tile grid, overlap positions
  // being rewritten with identical values (last writer wins).
  SlideClamp, ///< clamped sliding window: size, step
  JoinClamp,  ///< [[T]k]t -> [T]m with clamped tile offsets
  // OpenCL-specific low-level primitives (paper §4, §5).
  MapGlb, ///< map over global work-item ids in dimension Dim
  MapWrg, ///< map over work-group ids in dimension Dim
  MapLcl, ///< map over local work-item ids in dimension Dim
  MapSeq, ///< sequential loop
  ReduceSeq,
  ReduceSeqUnroll, ///< unrolled sequential reduction (paper §4.3)
};

/// Returns the printable name of a primitive (e.g. "mapGlb").
const char *primName(Prim P);

/// True for the map family (any of Map, MapGlb, MapWrg, MapLcl, MapSeq).
bool isMapPrim(Prim P);

/// True for Reduce, ReduceSeq and ReduceSeqUnroll.
bool isReducePrim(Prim P);

/// Boundary handling strategies for `pad` (paper §3.2). Clamp/Mirror/
/// Wrap reindex into the array; Constant appends a fixed value.
struct Boundary {
  enum class Kind { Clamp, Mirror, Wrap, Constant };
  Kind K = Kind::Clamp;
  float ConstVal = 0.0f;

  static Boundary clamp() { return Boundary{Kind::Clamp, 0.0f}; }
  static Boundary mirror() { return Boundary{Kind::Mirror, 0.0f}; }
  static Boundary wrap() { return Boundary{Kind::Wrap, 0.0f}; }
  static Boundary constant(float V) { return Boundary{Kind::Constant, V}; }

  const char *name() const;
};

/// Resolves an out-of-range index \p I into [0, N) for a reindexing
/// boundary (Clamp/Mirror/Wrap). This is the single source of truth for
/// boundary semantics: the interpreter and the NDRange simulator call it
/// directly and the view system emits the equivalent symbolic formula
/// (property-tested against this function). Constant boundaries do not
/// reindex and must not be passed here.
std::int64_t resolveBoundaryIndex(Boundary::Kind K, std::int64_t I,
                                  std::int64_t N);

/// OpenCL address spaces; attached to lambdas by toLocal/toGlobal/
/// toPrivate to direct where the lambda's result is written (paper §4.2).
enum class AddrSpace { Default, Global, Local, Private };

/// Base class of all IR expressions. The type field is filled in by
/// TypeInference and is null before inference ran.
class Expr {
public:
  enum class Kind { Literal, Param, Lambda, Call };

  virtual ~Expr();

  Kind getKind() const { return EK; }

  /// The inferred type; null before inference.
  const TypePtr &getType() const { return Ty; }
  void setType(TypePtr T) { Ty = std::move(T); }

protected:
  explicit Expr(Kind K) : EK(K) {}

private:
  Kind EK;
  TypePtr Ty;
};

/// A scalar literal.
class LiteralExpr : public Expr {
public:
  explicit LiteralExpr(Scalar V) : Expr(Kind::Literal), Val(V) {}

  Scalar getValue() const { return Val; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Literal; }

private:
  Scalar Val;
};

/// A lambda parameter / program input. Identity (the node address)
/// distinguishes parameters; the name is only for printing.
class ParamExpr : public Expr {
public:
  explicit ParamExpr(std::string Name, TypePtr DeclaredTy = nullptr)
      : Expr(Kind::Param), Name(std::move(Name)),
        DeclaredTy(std::move(DeclaredTy)) {}

  const std::string &getName() const { return Name; }

  /// Declared type for program inputs; null for lambda-bound params
  /// whose type comes from the call site.
  const TypePtr &getDeclaredType() const { return DeclaredTy; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Param; }

private:
  std::string Name;
  TypePtr DeclaredTy;
};

/// An anonymous function. Carries the address-space attribute set by
/// toLocal/toGlobal/toPrivate.
class LambdaExpr : public Expr {
public:
  LambdaExpr(std::vector<ParamPtr> Params, ExprPtr Body,
             AddrSpace Space = AddrSpace::Default)
      : Expr(Kind::Lambda), Params(std::move(Params)), Body(std::move(Body)),
        Space(Space) {}

  const std::vector<ParamPtr> &getParams() const { return Params; }
  const ExprPtr &getBody() const { return Body; }
  AddrSpace getAddrSpace() const { return Space; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Lambda; }

private:
  std::vector<ParamPtr> Params;
  ExprPtr Body;
  AddrSpace Space;
};

/// A primitive application. Numeric/structural payloads (split factor,
/// slide size/step, pad amounts, tuple index, ...) live in the node;
/// expression arguments (function lambdas first, then data) in Args.
class CallExpr : public Expr {
public:
  CallExpr(Prim P, std::vector<ExprPtr> Args)
      : Expr(Kind::Call), P(P), Args(std::move(Args)) {}

  Prim getPrim() const { return P; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  void setArg(std::size_t I, ExprPtr E) { Args[I] = std::move(E); }

  // Payload accessors; validity depends on the primitive.
  UserFunPtr UF;             ///< UserFunCall
  int Dim = 0;               ///< MapGlb/MapWrg/MapLcl dimension (0..2)
  AExpr Factor;              ///< Split chunk size
  AExpr Size, Step;          ///< Slide window size and step
  AExpr PadL, PadR;          ///< Pad amounts
  Boundary Bdy;              ///< Pad boundary handling
  int Index = 0;             ///< At / Get constant index
  int IterCount = 1;         ///< Iterate repetition count
  std::vector<AExpr> GenSizes; ///< Generate dimension sizes

  static bool classof(const Expr *E) { return E->getKind() == Kind::Call; }

private:
  Prim P;
  std::vector<ExprPtr> Args;
};

/// dyn_cast-style helpers (LLVM-style kind dispatch, no RTTI).
template <typename T> T *dynCast(Expr *E) {
  return (E && T::classof(E)) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T *dynCast(const Expr *E) {
  return (E && T::classof(E)) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> T *dynCast(const ExprPtr &E) { return dynCast<T>(E.get()); }

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

/// Float literal.
ExprPtr lit(float V);
/// Int literal.
ExprPtr litInt(std::int32_t V);
/// Fresh parameter.
ParamPtr param(std::string Name, TypePtr DeclaredTy = nullptr);

/// Lambda from explicit parameter list and body.
LambdaPtr lambda(std::vector<ParamPtr> Params, ExprPtr Body,
                 AddrSpace Space = AddrSpace::Default);

/// One-parameter lambda built from a C++ body builder.
LambdaPtr lam(const std::string &ParamName,
              const std::function<ExprPtr(ExprPtr)> &BuildBody);

/// Two-parameter lambda built from a C++ body builder.
LambdaPtr lam2(const std::string &P0, const std::string &P1,
               const std::function<ExprPtr(ExprPtr, ExprPtr)> &BuildBody);

/// Eta-expands a user function into a lambda: \x0..xk -> uf(x0..xk).
LambdaPtr etaLambda(const UserFunPtr &UF);

/// Scalar user-function application.
ExprPtr apply(const UserFunPtr &UF, std::vector<ExprPtr> Args);

/// map(f, in) — data-parallel application (paper §3.1).
ExprPtr map(LambdaPtr F, ExprPtr In);
/// OpenCL-mapped variants over global / work-group / local ids.
ExprPtr mapGlb(int Dim, LambdaPtr F, ExprPtr In);
ExprPtr mapWrg(int Dim, LambdaPtr F, ExprPtr In);
ExprPtr mapLcl(int Dim, LambdaPtr F, ExprPtr In);
/// Sequential map (a loop inside one work-item).
ExprPtr mapSeq(LambdaPtr F, ExprPtr In);
/// Rebuilds a map-family call with the same lowering but new operands.
ExprPtr makeMapLike(Prim P, int Dim, LambdaPtr F, ExprPtr In);

/// reduce(f, init, in) — result is the singleton array [U]1.
ExprPtr reduce(LambdaPtr F, ExprPtr Init, ExprPtr In);
ExprPtr reduceSeq(LambdaPtr F, ExprPtr Init, ExprPtr In);
ExprPtr reduceSeqUnroll(LambdaPtr F, ExprPtr Init, ExprPtr In);
/// Rebuilds a reduce-family call with new operands.
ExprPtr makeReduceLike(Prim P, LambdaPtr F, ExprPtr Init, ExprPtr In);

/// iterate(m, f, in) — applies f m times (paper §3.1).
ExprPtr iterate(int Count, LambdaPtr F, ExprPtr In);

/// zip of 2..4 equal-length arrays into an array of tuples.
ExprPtr zip(std::vector<ExprPtr> Ins);
ExprPtr zip(ExprPtr A, ExprPtr B);
ExprPtr zip3(ExprPtr A, ExprPtr B, ExprPtr C);

ExprPtr split(AExpr ChunkSize, ExprPtr In);
ExprPtr join(ExprPtr In);
ExprPtr transpose(ExprPtr In);

/// slide(size, step, in) — neighborhood creation (paper §3.2).
ExprPtr slide(AExpr Size, AExpr Step, ExprPtr In);
/// slideClamp(size, step, in) — like slide, but covers the whole input:
/// produces ceil((n - size) / step) + 1 windows whose starts are
/// clamped to min(w * step, n - size). Identical to slide when step
/// divides n - size. Used by the tiling rule for remainder tiles.
ExprPtr slideClamp(AExpr Size, AExpr Step, ExprPtr In);
/// joinClamp(m, in) — merges [[T]k]t into [T]m, tile w's element j
/// landing at min(w * k, m - k) + j. The inverse of slideClamp(k, k)
/// over an array of length m; requires t = ceil(m / k) and k <= m.
/// Overlapping positions are written more than once with equal values.
ExprPtr joinClamp(AExpr OutLen, ExprPtr In);
/// pad(l, r, boundary, in) — boundary handling (paper §3.2).
ExprPtr pad(AExpr L, AExpr R, Boundary B, ExprPtr In);

/// in[i] with constant i (paper: at; written in[3]).
ExprPtr at(int Index, ExprPtr In);
/// tuple component access (paper: get; written in.2).
ExprPtr get(int Index, ExprPtr In);

/// generate(sizes, f) — lazily built array; f takes one int index per
/// dimension (paper: array constructor, used e.g. for the acoustic mask).
ExprPtr generate(std::vector<AExpr> Sizes, LambdaPtr F);

/// The value of a symbolic size expression as an int scalar (used by
/// generators that need grid extents, e.g. the acoustic benchmark's
/// neighbor-count mask).
ExprPtr sizeVal(AExpr Size);

/// Address-space wrappers: return a copy of \p F writing its result to
/// the given space (paper §4.2).
LambdaPtr toLocal(const LambdaPtr &F);
LambdaPtr toGlobal(const LambdaPtr &F);
LambdaPtr toPrivate(const LambdaPtr &F);

//===----------------------------------------------------------------------===//
// Programs and utilities
//===----------------------------------------------------------------------===//

/// A whole program: a top-level lambda whose parameters carry declared
/// types (the input arrays).
using Program = LambdaPtr;

/// Builds a program; all parameters must have declared types.
Program makeProgram(std::vector<ParamPtr> Inputs, ExprPtr Body);

/// Deep-copies an expression tree. Lambda parameters are replaced by
/// fresh ParamExprs and references remapped, so the clone shares no
/// mutable state with the original. Free parameter references (program
/// inputs) are preserved.
ExprPtr deepClone(const ExprPtr &E);

/// Deep-copies a program including its input parameters.
Program cloneProgram(const Program &P);

/// Deep-copies \p E replacing occurrences of the given parameters by
/// the corresponding expressions (beta reduction). Replacement
/// expressions are inserted as-is (shared), other lambda parameters are
/// freshened as in deepClone.
ExprPtr substituteParams(
    const ExprPtr &E,
    const std::unordered_map<const ParamExpr *, ExprPtr> &Subst);

/// Applies \p F to \p Args by substituting parameters into a clone of
/// the body.
ExprPtr betaReduce(const LambdaPtr &F, const std::vector<ExprPtr> &Args);

/// Renders a compact single-line textual form, e.g.
/// "map(\x0. addF(x0, 1), slide(3, 1, pad(1, 1, clamp, A)))".
std::string toString(const ExprPtr &E);
std::string toString(const Program &P);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_EXPR_H
