//===- UserFun.cpp - Scalar user functions ---------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/UserFun.h"

#include "support/Support.h"

#include <cassert>
#include <cmath>

using namespace lift;
using namespace lift::ir;

UserFun::UserFun(std::string Name, std::vector<std::string> ParamNames,
                 std::vector<ScalarKind> ParamKinds, ScalarKind RetKind,
                 std::string OpenCLBody, EvalFn Eval, int FlopCost)
    : Name(std::move(Name)), ParamNames(std::move(ParamNames)),
      ParamKinds(std::move(ParamKinds)), RetKind(RetKind),
      OpenCLBody(std::move(OpenCLBody)), Eval(std::move(Eval)),
      FlopCost(FlopCost) {
  assert(this->ParamNames.size() == this->ParamKinds.size() &&
         "param name/kind count mismatch");
  assert(this->Eval && "user function requires an evaluation callback");
}

Scalar UserFun::evaluate(const std::vector<Scalar> &Args) const {
  assert(Args.size() == ParamKinds.size() && "user function arity mismatch");
#ifndef NDEBUG
  for (std::size_t I = 0, E = Args.size(); I != E; ++I)
    assert(Args[I].K == ParamKinds[I] && "user function argument kind");
#endif
  Scalar Result = Eval(Args);
  assert(Result.K == RetKind && "user function result kind");
  return Result;
}

static const char *scalarKindName(ScalarKind K) {
  return K == ScalarKind::Float ? "float" : "int";
}

std::string UserFun::toOpenCL() const {
  std::string S = std::string(scalarKindName(RetKind)) + " " + Name + "(";
  for (std::size_t I = 0, E = ParamNames.size(); I != E; ++I) {
    if (I != 0)
      S += ", ";
    S += std::string(scalarKindName(ParamKinds[I])) + " " + ParamNames[I];
  }
  S += ") { " + OpenCLBody + " }";
  return S;
}

UserFunPtr lift::ir::makeUserFun(std::string Name,
                                 std::vector<std::string> ParamNames,
                                 std::vector<ScalarKind> ParamKinds,
                                 ScalarKind RetKind, std::string OpenCLBody,
                                 UserFun::EvalFn Eval, int FlopCost) {
  return std::make_shared<UserFun>(std::move(Name), std::move(ParamNames),
                                   std::move(ParamKinds), RetKind,
                                   std::move(OpenCLBody), std::move(Eval),
                                   FlopCost);
}

/// Builds a binary float userfun with the given C expression over a, b.
static UserFunPtr binaryFloat(const char *Name, const char *CExpr,
                              float (*Fn)(float, float)) {
  return makeUserFun(
      Name, {"a", "b"}, {ScalarKind::Float, ScalarKind::Float},
      ScalarKind::Float, std::string("return ") + CExpr + ";",
      [Fn](const std::vector<Scalar> &Args) {
        return Scalar(Fn(Args[0].F, Args[1].F));
      });
}

UserFunPtr lift::ir::ufIdFloat() {
  static UserFunPtr UF = makeUserFun(
      "idF", {"x"}, {ScalarKind::Float}, ScalarKind::Float, "return x;",
      [](const std::vector<Scalar> &Args) { return Args[0]; });
  return UF;
}

UserFunPtr lift::ir::ufIdInt() {
  static UserFunPtr UF = makeUserFun(
      "idI", {"x"}, {ScalarKind::Int}, ScalarKind::Int, "return x;",
      [](const std::vector<Scalar> &Args) { return Args[0]; });
  return UF;
}

UserFunPtr lift::ir::ufAddFloat() {
  static UserFunPtr UF = binaryFloat(
      "addF", "a + b", [](float A, float B) { return A + B; });
  return UF;
}

UserFunPtr lift::ir::ufSubFloat() {
  static UserFunPtr UF = binaryFloat(
      "subF", "a - b", [](float A, float B) { return A - B; });
  return UF;
}

UserFunPtr lift::ir::ufMultFloat() {
  static UserFunPtr UF = binaryFloat(
      "multF", "a * b", [](float A, float B) { return A * B; });
  return UF;
}

UserFunPtr lift::ir::ufDivFloat() {
  static UserFunPtr UF = binaryFloat(
      "divF", "a / b", [](float A, float B) { return A / B; });
  return UF;
}

UserFunPtr lift::ir::ufMaxFloat() {
  static UserFunPtr UF = binaryFloat(
      "maxF", "fmax(a, b)", [](float A, float B) { return std::fmax(A, B); });
  return UF;
}

UserFunPtr lift::ir::ufMinFloat() {
  static UserFunPtr UF = binaryFloat(
      "minF", "fmin(a, b)", [](float A, float B) { return std::fmin(A, B); });
  return UF;
}
