//===- UserFun.h - Scalar user functions -----------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// UserFuns are the arbitrary scalar functions of the Lift IR (paper
/// §3.1): "userFuns define arbitrary functions which operate on scalar
/// values. These functions are written in C and are embedded in the
/// generated OpenCL code." Each UserFun here carries both its OpenCL C
/// body (for the code generator) and a C++ evaluation callback (for the
/// interpreter and the NDRange simulator), which are kept in agreement
/// by golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_USERFUN_H
#define LIFT_IR_USERFUN_H

#include "ir/Types.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ir {

/// A runtime scalar value: a float or a 32-bit int, tagged by kind.
struct Scalar {
  ScalarKind K = ScalarKind::Float;
  float F = 0.0f;
  std::int32_t I = 0;

  Scalar() = default;
  /*implicit*/ Scalar(float V) : K(ScalarKind::Float), F(V) {}
  /*implicit*/ Scalar(std::int32_t V) : K(ScalarKind::Int), I(V) {}

  /// Numeric value as float regardless of kind.
  float asFloat() const { return K == ScalarKind::Float ? F : float(I); }

  /// Numeric value as int; floats are truncated.
  std::int32_t asInt() const {
    return K == ScalarKind::Int ? I : std::int32_t(F);
  }

  bool operator==(const Scalar &O) const {
    return K == O.K && (K == ScalarKind::Float ? F == O.F : I == O.I);
  }
};

/// An arbitrary scalar function with an OpenCL C body and a matching
/// C++ implementation.
class UserFun {
public:
  using EvalFn = std::function<Scalar(const std::vector<Scalar> &)>;

  UserFun(std::string Name, std::vector<std::string> ParamNames,
          std::vector<ScalarKind> ParamKinds, ScalarKind RetKind,
          std::string OpenCLBody, EvalFn Eval, int FlopCost = 1);

  const std::string &getName() const { return Name; }
  const std::vector<std::string> &getParamNames() const { return ParamNames; }
  const std::vector<ScalarKind> &getParamKinds() const { return ParamKinds; }
  ScalarKind getRetKind() const { return RetKind; }

  /// The function body as OpenCL C source (without signature).
  const std::string &getOpenCLBody() const { return OpenCLBody; }

  /// Approximate arithmetic operation count of one application; used by
  /// the device timing model. Defaults to 1 (a single binary op).
  int getFlopCost() const { return FlopCost; }

  std::size_t arity() const { return ParamKinds.size(); }

  /// Applies the C++ implementation. Argument count/kinds are asserted.
  Scalar evaluate(const std::vector<Scalar> &Args) const;

  /// Renders the full OpenCL function definition.
  std::string toOpenCL() const;

private:
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<ScalarKind> ParamKinds;
  ScalarKind RetKind;
  std::string OpenCLBody;
  EvalFn Eval;
  int FlopCost = 1;
};

using UserFunPtr = std::shared_ptr<const UserFun>;

/// Creates a user function. \p OpenCLBody is the body of the function
/// (e.g. "return a + b;"). \p FlopCost estimates the arithmetic
/// operations of one application for the device timing model.
UserFunPtr makeUserFun(std::string Name, std::vector<std::string> ParamNames,
                       std::vector<ScalarKind> ParamKinds, ScalarKind RetKind,
                       std::string OpenCLBody, UserFun::EvalFn Eval,
                       int FlopCost = 1);

/// \name Built-in user functions (float unless noted)
/// The small algebra every stencil in the paper is built from.
/// @{
UserFunPtr ufIdFloat();   ///< identity; used for copies into local memory
UserFunPtr ufIdInt();     ///< identity on int
UserFunPtr ufAddFloat();  ///< a + b
UserFunPtr ufSubFloat();  ///< a - b
UserFunPtr ufMultFloat(); ///< a * b
UserFunPtr ufDivFloat();  ///< a / b
UserFunPtr ufMaxFloat();  ///< fmax(a, b)
UserFunPtr ufMinFloat();  ///< fmin(a, b)
/// @}

} // namespace ir
} // namespace lift

#endif // LIFT_IR_USERFUN_H
