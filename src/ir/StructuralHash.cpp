//===- StructuralHash.cpp - Structural hash/equality for the IR -------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/StructuralHash.h"

#include "support/Support.h"

#include <unordered_map>

using namespace lift;
using namespace lift::ir;

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

std::size_t lift::ir::structuralHash(const TypePtr &T) {
  std::size_t H = hashCombine(0x7e9e, static_cast<std::size_t>(T->getKind()));
  switch (T->getKind()) {
  case Type::Kind::Scalar:
    return hashCombine(H, static_cast<std::size_t>(T->getScalarKind()));
  case Type::Kind::Array:
    H = hashCombine(H, T->getSize()->hash());
    return hashCombine(H, structuralHash(T->getElem()));
  case Type::Kind::Tuple:
    for (const TypePtr &C : T->getComponents())
      H = hashCombine(H, structuralHash(C));
    return H;
  }
  unreachable("covered switch");
}

namespace {

/// Node-kind tags mixed into hashes so different constructs with equal
/// children cannot collide trivially.
enum HashTag : std::size_t {
  TagLiteral = 0x11,
  TagBoundParam = 0xb2,
  TagFreeParam = 0xf3,
  TagLambda = 0x1a4,
  TagCall = 0xca5,
};

/// Computes the alpha-invariant hash; bound parameters are numbered in
/// binding order (de Bruijn levels).
class HashVisitor {
public:
  std::size_t hash(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal: {
      Scalar V = dynCast<LiteralExpr>(E)->getValue();
      std::size_t H = hashCombine(TagLiteral,
                                  static_cast<std::size_t>(V.K));
      return hashCombine(H, V.K == ScalarKind::Float
                                ? std::hash<float>()(V.F)
                                : std::hash<std::int32_t>()(V.I));
    }
    case Expr::Kind::Param: {
      const auto *P = static_cast<const ParamExpr *>(E.get());
      auto It = BindIdx.find(P);
      if (It != BindIdx.end())
        return hashCombine(TagBoundParam, It->second);
      // Free parameter: identity is all that distinguishes it.
      return hashCombine(TagFreeParam, std::hash<const void *>()(P));
    }
    case Expr::Kind::Lambda:
      return hashLambda(std::static_pointer_cast<LambdaExpr>(E));
    case Expr::Kind::Call:
      return hashCall(*dynCast<CallExpr>(E));
    }
    unreachable("covered switch");
  }

private:
  std::unordered_map<const ParamExpr *, unsigned> BindIdx;
  unsigned NextIdx = 0;

  std::size_t hashLambda(const LambdaPtr &L) {
    std::size_t H = hashCombine(TagLambda,
                                static_cast<std::size_t>(L->getAddrSpace()));
    H = hashCombine(H, L->getParams().size());
    // Save shadowed bindings so sibling lambdas reusing a parameter
    // object (legal after rule rewrites) hash consistently.
    std::vector<std::pair<const ParamExpr *, unsigned>> Saved;
    for (const ParamPtr &P : L->getParams()) {
      if (const TypePtr &DT = P->getDeclaredType())
        H = hashCombine(H, structuralHash(DT));
      else
        H = hashCombine(H, 0x40);
      auto It = BindIdx.find(P.get());
      if (It != BindIdx.end())
        Saved.emplace_back(P.get(), It->second);
      BindIdx[P.get()] = NextIdx++;
    }
    H = hashCombine(H, hash(L->getBody()));
    for (const ParamPtr &P : L->getParams())
      BindIdx.erase(P.get());
    for (auto &[P, Idx] : Saved)
      BindIdx[P] = Idx;
    return H;
  }

  std::size_t hashCall(const CallExpr &C) {
    std::size_t H = hashCombine(TagCall, static_cast<std::size_t>(C.getPrim()));
    switch (C.getPrim()) {
    case Prim::UserFunCall:
      H = hashCombine(H, std::hash<std::string>()(C.UF->getName()));
      break;
    case Prim::MapGlb:
    case Prim::MapWrg:
    case Prim::MapLcl:
      H = hashCombine(H, static_cast<std::size_t>(C.Dim));
      break;
    case Prim::Split:
      H = hashCombine(H, C.Factor->hash());
      break;
    case Prim::Slide:
    case Prim::SlideClamp:
      H = hashCombine(H, C.Size->hash());
      H = hashCombine(H, C.Step->hash());
      break;
    case Prim::JoinClamp:
      H = hashCombine(H, C.Size->hash());
      break;
    case Prim::Pad:
      H = hashCombine(H, C.PadL->hash());
      H = hashCombine(H, C.PadR->hash());
      H = hashCombine(H, static_cast<std::size_t>(C.Bdy.K));
      if (C.Bdy.K == Boundary::Kind::Constant)
        H = hashCombine(H, std::hash<float>()(C.Bdy.ConstVal));
      break;
    case Prim::At:
    case Prim::Get:
      H = hashCombine(H, static_cast<std::size_t>(C.Index));
      break;
    case Prim::Iterate:
      H = hashCombine(H, static_cast<std::size_t>(C.IterCount));
      break;
    case Prim::Generate:
      for (const AExpr &S : C.GenSizes)
        H = hashCombine(H, S->hash());
      break;
    case Prim::SizeVal:
      H = hashCombine(H, C.Size->hash());
      break;
    default:
      break;
    }
    for (const ExprPtr &A : C.getArgs())
      H = hashCombine(H, hash(A));
    return H;
  }
};

} // namespace

std::size_t lift::ir::structuralHash(const ExprPtr &E) {
  HashVisitor V;
  return V.hash(E);
}

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

namespace {

/// Structural equality with a correspondence map between the two sides'
/// bound parameters.
class EqVisitor {
public:
  bool eq(const ExprPtr &A, const ExprPtr &B) {
    // Identical subtrees are equal as long as no bound parameter has
    // been remapped to a different node (always true when comparing a
    // program against itself or against an unrelated clone).
    if (A.get() == B.get() && AllIdentity)
      return true;
    if (A->getKind() != B->getKind())
      return false;
    switch (A->getKind()) {
    case Expr::Kind::Literal:
      return dynCast<LiteralExpr>(A)->getValue() ==
             dynCast<LiteralExpr>(B)->getValue();
    case Expr::Kind::Param: {
      const auto *PA = static_cast<const ParamExpr *>(A.get());
      const auto *PB = static_cast<const ParamExpr *>(B.get());
      auto It = Map.find(PA);
      if (It != Map.end())
        return It->second == PB;
      // Free parameters must be the identical binding.
      return PA == PB;
    }
    case Expr::Kind::Lambda:
      return eqLambda(std::static_pointer_cast<LambdaExpr>(A),
                      std::static_pointer_cast<LambdaExpr>(B));
    case Expr::Kind::Call:
      return eqCall(*dynCast<CallExpr>(A), *dynCast<CallExpr>(B));
    }
    unreachable("covered switch");
  }

private:
  std::unordered_map<const ParamExpr *, const ParamExpr *> Map;
  bool AllIdentity = true;

  static bool eqDeclaredType(const TypePtr &A, const TypePtr &B) {
    if (!A || !B)
      return !A && !B;
    return typeEquals(A, B);
  }

  bool eqLambda(const LambdaPtr &A, const LambdaPtr &B) {
    if (A->getAddrSpace() != B->getAddrSpace() ||
        A->getParams().size() != B->getParams().size())
      return false;
    std::vector<std::pair<const ParamExpr *, const ParamExpr *>> Saved;
    for (std::size_t I = 0, E = A->getParams().size(); I != E; ++I) {
      const ParamExpr *PA = A->getParams()[I].get();
      const ParamExpr *PB = B->getParams()[I].get();
      if (!eqDeclaredType(A->getParams()[I]->getDeclaredType(),
                          B->getParams()[I]->getDeclaredType()))
        return false;
      auto It = Map.find(PA);
      if (It != Map.end())
        Saved.emplace_back(PA, It->second);
      Map[PA] = PB;
      if (PA != PB)
        AllIdentity = false;
    }
    bool Result = eq(A->getBody(), B->getBody());
    for (const ParamPtr &P : A->getParams())
      Map.erase(P.get());
    for (auto &[PA, PB] : Saved)
      Map[PA] = PB;
    return Result;
  }

  bool eqCall(const CallExpr &A, const CallExpr &B) {
    if (A.getPrim() != B.getPrim() ||
        A.getArgs().size() != B.getArgs().size())
      return false;
    switch (A.getPrim()) {
    case Prim::UserFunCall:
      if (A.UF->getName() != B.UF->getName())
        return false;
      break;
    case Prim::MapGlb:
    case Prim::MapWrg:
    case Prim::MapLcl:
      if (A.Dim != B.Dim)
        return false;
      break;
    case Prim::Split:
      if (!exprEquals(A.Factor, B.Factor))
        return false;
      break;
    case Prim::Slide:
    case Prim::SlideClamp:
      if (!exprEquals(A.Size, B.Size) || !exprEquals(A.Step, B.Step))
        return false;
      break;
    case Prim::JoinClamp:
      if (!exprEquals(A.Size, B.Size))
        return false;
      break;
    case Prim::Pad:
      if (!exprEquals(A.PadL, B.PadL) || !exprEquals(A.PadR, B.PadR) ||
          A.Bdy.K != B.Bdy.K)
        return false;
      if (A.Bdy.K == Boundary::Kind::Constant &&
          A.Bdy.ConstVal != B.Bdy.ConstVal)
        return false;
      break;
    case Prim::At:
    case Prim::Get:
      if (A.Index != B.Index)
        return false;
      break;
    case Prim::Iterate:
      if (A.IterCount != B.IterCount)
        return false;
      break;
    case Prim::Generate: {
      if (A.GenSizes.size() != B.GenSizes.size())
        return false;
      for (std::size_t I = 0, E = A.GenSizes.size(); I != E; ++I)
        if (!exprEquals(A.GenSizes[I], B.GenSizes[I]))
          return false;
      break;
    }
    case Prim::SizeVal:
      if (!exprEquals(A.Size, B.Size))
        return false;
      break;
    default:
      break;
    }
    for (std::size_t I = 0, E = A.getArgs().size(); I != E; ++I)
      if (!eq(A.getArgs()[I], B.getArgs()[I]))
        return false;
    return true;
  }
};

} // namespace

bool lift::ir::structuralEquals(const ExprPtr &A, const ExprPtr &B) {
  EqVisitor V;
  return V.eq(A, B);
}
