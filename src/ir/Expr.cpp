//===- Expr.cpp - Lift IR expressions ---------------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;

Expr::~Expr() = default;

const char *lift::ir::primName(Prim P) {
  switch (P) {
  case Prim::UserFunCall:
    return "userFun";
  case Prim::Map:
    return "map";
  case Prim::Reduce:
    return "reduce";
  case Prim::Iterate:
    return "iterate";
  case Prim::Zip:
    return "zip";
  case Prim::Split:
    return "split";
  case Prim::Join:
    return "join";
  case Prim::Transpose:
    return "transpose";
  case Prim::At:
    return "at";
  case Prim::Get:
    return "get";
  case Prim::Generate:
    return "generate";
  case Prim::SizeVal:
    return "sizeVal";
  case Prim::Slide:
    return "slide";
  case Prim::SlideClamp:
    return "slideClamp";
  case Prim::JoinClamp:
    return "joinClamp";
  case Prim::Pad:
    return "pad";
  case Prim::MapGlb:
    return "mapGlb";
  case Prim::MapWrg:
    return "mapWrg";
  case Prim::MapLcl:
    return "mapLcl";
  case Prim::MapSeq:
    return "mapSeq";
  case Prim::ReduceSeq:
    return "reduceSeq";
  case Prim::ReduceSeqUnroll:
    return "reduceSeqUnroll";
  }
  unreachable("covered switch");
}

bool lift::ir::isMapPrim(Prim P) {
  switch (P) {
  case Prim::Map:
  case Prim::MapGlb:
  case Prim::MapWrg:
  case Prim::MapLcl:
  case Prim::MapSeq:
    return true;
  default:
    return false;
  }
}

bool lift::ir::isReducePrim(Prim P) {
  return P == Prim::Reduce || P == Prim::ReduceSeq ||
         P == Prim::ReduceSeqUnroll;
}

const char *Boundary::name() const {
  switch (K) {
  case Kind::Clamp:
    return "clamp";
  case Kind::Mirror:
    return "mirror";
  case Kind::Wrap:
    return "wrap";
  case Kind::Constant:
    return "constant";
  }
  unreachable("covered switch");
}

std::int64_t lift::ir::resolveBoundaryIndex(Boundary::Kind K, std::int64_t I,
                                            std::int64_t N) {
  assert(N > 0 && "boundary resolution needs a non-empty array");
  switch (K) {
  case Boundary::Kind::Clamp:
    return std::max<std::int64_t>(0, std::min(I, N - 1));
  case Boundary::Kind::Mirror: {
    // Symmetric reflection with edge duplication: -1 -> 0, n -> n-1.
    std::int64_t J = floorModInt(I, 2 * N);
    return std::min(J, 2 * N - 1 - J);
  }
  case Boundary::Kind::Wrap:
    return floorModInt(I, N);
  case Boundary::Kind::Constant:
    break;
  }
  unreachable("constant boundary does not reindex");
}

//===----------------------------------------------------------------------===//
// Builders
//===----------------------------------------------------------------------===//

ExprPtr lift::ir::lit(float V) {
  return std::make_shared<LiteralExpr>(Scalar(V));
}

ExprPtr lift::ir::litInt(std::int32_t V) {
  return std::make_shared<LiteralExpr>(Scalar(V));
}

ParamPtr lift::ir::param(std::string Name, TypePtr DeclaredTy) {
  return std::make_shared<ParamExpr>(std::move(Name), std::move(DeclaredTy));
}

LambdaPtr lift::ir::lambda(std::vector<ParamPtr> Params, ExprPtr Body,
                           AddrSpace Space) {
  assert(Body && "lambda requires a body");
  return std::make_shared<LambdaExpr>(std::move(Params), std::move(Body),
                                      Space);
}

LambdaPtr lift::ir::lam(const std::string &ParamName,
                        const std::function<ExprPtr(ExprPtr)> &BuildBody) {
  ParamPtr P = param(ParamName);
  ExprPtr Body = BuildBody(P);
  return lambda({P}, std::move(Body));
}

LambdaPtr
lift::ir::lam2(const std::string &P0, const std::string &P1,
               const std::function<ExprPtr(ExprPtr, ExprPtr)> &BuildBody) {
  ParamPtr A = param(P0);
  ParamPtr B = param(P1);
  ExprPtr Body = BuildBody(A, B);
  return lambda({A, B}, std::move(Body));
}

LambdaPtr lift::ir::etaLambda(const UserFunPtr &UF) {
  std::vector<ParamPtr> Params;
  std::vector<ExprPtr> Args;
  for (std::size_t I = 0, E = UF->arity(); I != E; ++I) {
    ParamPtr P = param("x" + std::to_string(I));
    Params.push_back(P);
    Args.push_back(P);
  }
  return lambda(std::move(Params), apply(UF, std::move(Args)));
}

ExprPtr lift::ir::apply(const UserFunPtr &UF, std::vector<ExprPtr> Args) {
  assert(UF && Args.size() == UF->arity() && "userFun arity mismatch");
  auto C = std::make_shared<CallExpr>(Prim::UserFunCall, std::move(Args));
  C->UF = UF;
  return C;
}

ExprPtr lift::ir::makeMapLike(Prim P, int Dim, LambdaPtr F, ExprPtr In) {
  assert(isMapPrim(P) && "makeMapLike requires a map primitive");
  assert(F->getParams().size() == 1 && "map function takes one argument");
  auto C = std::make_shared<CallExpr>(
      P, std::vector<ExprPtr>{std::move(F), std::move(In)});
  C->Dim = Dim;
  return C;
}

ExprPtr lift::ir::map(LambdaPtr F, ExprPtr In) {
  return makeMapLike(Prim::Map, 0, std::move(F), std::move(In));
}

ExprPtr lift::ir::mapGlb(int Dim, LambdaPtr F, ExprPtr In) {
  assert(Dim >= 0 && Dim < 3 && "OpenCL has three NDRange dimensions");
  return makeMapLike(Prim::MapGlb, Dim, std::move(F), std::move(In));
}

ExprPtr lift::ir::mapWrg(int Dim, LambdaPtr F, ExprPtr In) {
  assert(Dim >= 0 && Dim < 3 && "OpenCL has three NDRange dimensions");
  return makeMapLike(Prim::MapWrg, Dim, std::move(F), std::move(In));
}

ExprPtr lift::ir::mapLcl(int Dim, LambdaPtr F, ExprPtr In) {
  assert(Dim >= 0 && Dim < 3 && "OpenCL has three NDRange dimensions");
  return makeMapLike(Prim::MapLcl, Dim, std::move(F), std::move(In));
}

ExprPtr lift::ir::mapSeq(LambdaPtr F, ExprPtr In) {
  return makeMapLike(Prim::MapSeq, 0, std::move(F), std::move(In));
}

ExprPtr lift::ir::makeReduceLike(Prim P, LambdaPtr F, ExprPtr Init,
                                 ExprPtr In) {
  assert(isReducePrim(P) && "makeReduceLike requires a reduce primitive");
  assert(F->getParams().size() == 2 &&
         "reduce operator takes accumulator and element");
  return std::make_shared<CallExpr>(
      P, std::vector<ExprPtr>{std::move(F), std::move(Init), std::move(In)});
}

ExprPtr lift::ir::reduce(LambdaPtr F, ExprPtr Init, ExprPtr In) {
  return makeReduceLike(Prim::Reduce, std::move(F), std::move(Init),
                        std::move(In));
}

ExprPtr lift::ir::reduceSeq(LambdaPtr F, ExprPtr Init, ExprPtr In) {
  return makeReduceLike(Prim::ReduceSeq, std::move(F), std::move(Init),
                        std::move(In));
}

ExprPtr lift::ir::reduceSeqUnroll(LambdaPtr F, ExprPtr Init, ExprPtr In) {
  return makeReduceLike(Prim::ReduceSeqUnroll, std::move(F), std::move(Init),
                        std::move(In));
}

ExprPtr lift::ir::iterate(int Count, LambdaPtr F, ExprPtr In) {
  assert(Count >= 0 && "iterate count must be non-negative");
  auto C = std::make_shared<CallExpr>(
      Prim::Iterate, std::vector<ExprPtr>{std::move(F), std::move(In)});
  C->IterCount = Count;
  return C;
}

ExprPtr lift::ir::zip(std::vector<ExprPtr> Ins) {
  assert(Ins.size() >= 2 && Ins.size() <= 4 && "zip takes 2..4 arrays");
  return std::make_shared<CallExpr>(Prim::Zip, std::move(Ins));
}

ExprPtr lift::ir::zip(ExprPtr A, ExprPtr B) {
  return zip(std::vector<ExprPtr>{std::move(A), std::move(B)});
}

ExprPtr lift::ir::zip3(ExprPtr A, ExprPtr B, ExprPtr C) {
  return zip(std::vector<ExprPtr>{std::move(A), std::move(B), std::move(C)});
}

ExprPtr lift::ir::split(AExpr ChunkSize, ExprPtr In) {
  auto C = std::make_shared<CallExpr>(Prim::Split,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Factor = std::move(ChunkSize);
  return C;
}

ExprPtr lift::ir::join(ExprPtr In) {
  return std::make_shared<CallExpr>(Prim::Join,
                                    std::vector<ExprPtr>{std::move(In)});
}

ExprPtr lift::ir::transpose(ExprPtr In) {
  return std::make_shared<CallExpr>(Prim::Transpose,
                                    std::vector<ExprPtr>{std::move(In)});
}

ExprPtr lift::ir::slide(AExpr Size, AExpr Step, ExprPtr In) {
  auto C = std::make_shared<CallExpr>(Prim::Slide,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Size = std::move(Size);
  C->Step = std::move(Step);
  return C;
}

ExprPtr lift::ir::slideClamp(AExpr Size, AExpr Step, ExprPtr In) {
  auto C = std::make_shared<CallExpr>(Prim::SlideClamp,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Size = std::move(Size);
  C->Step = std::move(Step);
  return C;
}

ExprPtr lift::ir::joinClamp(AExpr OutLen, ExprPtr In) {
  auto C = std::make_shared<CallExpr>(Prim::JoinClamp,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Size = std::move(OutLen);
  return C;
}

ExprPtr lift::ir::pad(AExpr L, AExpr R, Boundary B, ExprPtr In) {
  auto C = std::make_shared<CallExpr>(Prim::Pad,
                                      std::vector<ExprPtr>{std::move(In)});
  C->PadL = std::move(L);
  C->PadR = std::move(R);
  C->Bdy = B;
  return C;
}

ExprPtr lift::ir::at(int Index, ExprPtr In) {
  assert(Index >= 0 && "array index must be non-negative");
  auto C = std::make_shared<CallExpr>(Prim::At,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Index = Index;
  return C;
}

ExprPtr lift::ir::get(int Index, ExprPtr In) {
  assert(Index >= 0 && "tuple index must be non-negative");
  auto C = std::make_shared<CallExpr>(Prim::Get,
                                      std::vector<ExprPtr>{std::move(In)});
  C->Index = Index;
  return C;
}

ExprPtr lift::ir::sizeVal(AExpr Size) {
  auto C = std::make_shared<CallExpr>(Prim::SizeVal, std::vector<ExprPtr>{});
  C->Size = std::move(Size);
  return C;
}

ExprPtr lift::ir::generate(std::vector<AExpr> Sizes, LambdaPtr F) {
  assert(!Sizes.empty() && Sizes.size() <= 3 && "generate is 1D..3D");
  assert(F->getParams().size() == Sizes.size() &&
         "generator takes one index per dimension");
  auto C = std::make_shared<CallExpr>(Prim::Generate,
                                      std::vector<ExprPtr>{std::move(F)});
  C->GenSizes = std::move(Sizes);
  return C;
}

/// Rebuilds \p F with a different address space.
static LambdaPtr withAddrSpace(const LambdaPtr &F, AddrSpace Space) {
  return std::make_shared<LambdaExpr>(F->getParams(), F->getBody(), Space);
}

LambdaPtr lift::ir::toLocal(const LambdaPtr &F) {
  return withAddrSpace(F, AddrSpace::Local);
}

LambdaPtr lift::ir::toGlobal(const LambdaPtr &F) {
  return withAddrSpace(F, AddrSpace::Global);
}

LambdaPtr lift::ir::toPrivate(const LambdaPtr &F) {
  return withAddrSpace(F, AddrSpace::Private);
}

Program lift::ir::makeProgram(std::vector<ParamPtr> Inputs, ExprPtr Body) {
#ifndef NDEBUG
  for (const ParamPtr &P : Inputs)
    assert(P->getDeclaredType() && "program inputs must declare types");
#endif
  return lambda(std::move(Inputs), std::move(Body));
}

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

namespace {
using ParamMap = std::unordered_map<const ParamExpr *, ExprPtr>;
} // namespace

static ExprPtr cloneRec(const ExprPtr &E, ParamMap &PM) {
  switch (E->getKind()) {
  case Expr::Kind::Literal:
    return std::make_shared<LiteralExpr>(
        dynCast<LiteralExpr>(E)->getValue());
  case Expr::Kind::Param: {
    auto It = PM.find(static_cast<const ParamExpr *>(E.get()));
    // Free parameters (program inputs) are shared, bound ones remapped.
    if (It == PM.end())
      return E;
    return It->second;
  }
  case Expr::Kind::Lambda: {
    const auto *L = dynCast<LambdaExpr>(E);
    std::vector<ParamPtr> NewParams;
    for (const ParamPtr &P : L->getParams()) {
      ParamPtr NP = param(P->getName(), P->getDeclaredType());
      PM[P.get()] = NP;
      NewParams.push_back(std::move(NP));
    }
    ExprPtr NewBody = cloneRec(L->getBody(), PM);
    return lambda(std::move(NewParams), std::move(NewBody),
                  L->getAddrSpace());
  }
  case Expr::Kind::Call: {
    const auto *C = dynCast<CallExpr>(E);
    std::vector<ExprPtr> NewArgs;
    NewArgs.reserve(C->getArgs().size());
    for (const ExprPtr &A : C->getArgs())
      NewArgs.push_back(cloneRec(A, PM));
    auto NC = std::make_shared<CallExpr>(C->getPrim(), std::move(NewArgs));
    NC->UF = C->UF;
    NC->Dim = C->Dim;
    NC->Factor = C->Factor;
    NC->Size = C->Size;
    NC->Step = C->Step;
    NC->PadL = C->PadL;
    NC->PadR = C->PadR;
    NC->Bdy = C->Bdy;
    NC->Index = C->Index;
    NC->IterCount = C->IterCount;
    NC->GenSizes = C->GenSizes;
    return NC;
  }
  }
  unreachable("covered switch");
}

ExprPtr lift::ir::deepClone(const ExprPtr &E) {
  ParamMap PM;
  return cloneRec(E, PM);
}

ExprPtr lift::ir::substituteParams(
    const ExprPtr &E,
    const std::unordered_map<const ParamExpr *, ExprPtr> &Subst) {
  ParamMap PM(Subst.begin(), Subst.end());
  return cloneRec(E, PM);
}

ExprPtr lift::ir::betaReduce(const LambdaPtr &F,
                             const std::vector<ExprPtr> &Args) {
  assert(F->getParams().size() == Args.size() && "betaReduce arity");
  std::unordered_map<const ParamExpr *, ExprPtr> Subst;
  for (std::size_t I = 0, E = Args.size(); I != E; ++I)
    Subst[F->getParams()[I].get()] = Args[I];
  return substituteParams(F->getBody(), Subst);
}

Program lift::ir::cloneProgram(const Program &P) {
  ParamMap PM;
  std::vector<ParamPtr> NewInputs;
  for (const ParamPtr &In : P->getParams()) {
    ParamPtr NP = param(In->getName(), In->getDeclaredType());
    PM[In.get()] = NP;
    NewInputs.push_back(std::move(NP));
  }
  ExprPtr NewBody = cloneRec(P->getBody(), PM);
  return makeProgram(std::move(NewInputs), std::move(NewBody));
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

static std::string scalarToString(Scalar V) {
  if (V.K == ScalarKind::Float) {
    std::string S = std::to_string(V.F);
    // Trim trailing zeros for readability; keep one decimal digit.
    while (S.size() > 1 && S.back() == '0' &&
           S[S.size() - 2] != '.')
      S.pop_back();
    return S;
  }
  return std::to_string(V.I);
}

static std::string printRec(const ExprPtr &E) {
  switch (E->getKind()) {
  case Expr::Kind::Literal:
    return scalarToString(dynCast<LiteralExpr>(E)->getValue());
  case Expr::Kind::Param:
    return dynCast<ParamExpr>(E)->getName();
  case Expr::Kind::Lambda: {
    const auto *L = dynCast<LambdaExpr>(E);
    std::string S = "\\";
    for (std::size_t I = 0, N = L->getParams().size(); I != N; ++I) {
      if (I != 0)
        S += ", ";
      S += L->getParams()[I]->getName();
    }
    S += ". " + printRec(L->getBody());
    switch (L->getAddrSpace()) {
    case AddrSpace::Default:
      return S;
    case AddrSpace::Global:
      return "toGlobal(" + S + ")";
    case AddrSpace::Local:
      return "toLocal(" + S + ")";
    case AddrSpace::Private:
      return "toPrivate(" + S + ")";
    }
    unreachable("covered switch");
  }
  case Expr::Kind::Call: {
    const auto *C = dynCast<CallExpr>(E);
    std::string S;
    if (C->getPrim() == Prim::UserFunCall)
      S = C->UF->getName() + "(";
    else
      S = std::string(primName(C->getPrim())) + "(";
    std::string Payload;
    switch (C->getPrim()) {
    case Prim::MapGlb:
    case Prim::MapWrg:
    case Prim::MapLcl:
      Payload = std::to_string(C->Dim);
      break;
    case Prim::Split:
      Payload = C->Factor->toString();
      break;
    case Prim::Slide:
    case Prim::SlideClamp:
      Payload = C->Size->toString() + ", " + C->Step->toString();
      break;
    case Prim::JoinClamp:
      Payload = C->Size->toString();
      break;
    case Prim::Pad:
      Payload = C->PadL->toString() + ", " + C->PadR->toString() + ", " +
                C->Bdy.name();
      break;
    case Prim::At:
    case Prim::Get:
      Payload = std::to_string(C->Index);
      break;
    case Prim::Iterate:
      Payload = std::to_string(C->IterCount);
      break;
    case Prim::Generate: {
      for (std::size_t I = 0, N = C->GenSizes.size(); I != N; ++I) {
        if (I != 0)
          Payload += ", ";
        Payload += C->GenSizes[I]->toString();
      }
      break;
    }
    case Prim::SizeVal:
      Payload = C->Size->toString();
      break;
    default:
      break;
    }
    bool NeedComma = false;
    if (!Payload.empty()) {
      S += Payload;
      NeedComma = true;
    }
    for (const ExprPtr &A : C->getArgs()) {
      if (NeedComma)
        S += ", ";
      S += printRec(A);
      NeedComma = true;
    }
    return S + ")";
  }
  }
  unreachable("covered switch");
}

std::string lift::ir::toString(const ExprPtr &E) { return printRec(E); }

std::string lift::ir::toString(const Program &P) {
  std::string S = "fun(";
  for (std::size_t I = 0, N = P->getParams().size(); I != N; ++I) {
    if (I != 0)
      S += ", ";
    S += P->getParams()[I]->getName();
    if (const TypePtr &T = P->getParams()[I]->getDeclaredType())
      S += ": " + T->toString();
  }
  return S + " => " + printRec(P->getBody()) + ")";
}
