//===- TypeInference.cpp - Lift IR type inference ---------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/TypeInference.h"

#include "support/Support.h"

#include <cassert>
#include <unordered_map>

using namespace lift;
using namespace lift::ir;

namespace {

/// Recursive type checker. Parameter types are assigned at binding
/// sites (program entry or higher-order call sites) and looked up by
/// node identity.
class Inferer {
public:
  TypePtr inferProgram(const Program &P) {
    for (const ParamPtr &In : P->getParams()) {
      In->setType(In->getDeclaredType());
      Env[In.get()] = In->getDeclaredType();
    }
    TypePtr T = infer(P->getBody());
    P->setType(T);
    return T;
  }

private:
  std::unordered_map<const ParamExpr *, TypePtr> Env;

  [[noreturn]] void typeError(const std::string &Msg, const ExprPtr &E) {
    throw TypeError("type error: " + Msg + " in: " + toString(E));
  }

  /// Binds \p L's parameters to \p ArgTypes and infers the body type.
  TypePtr inferLambda(const LambdaPtr &L, const std::vector<TypePtr> &ArgTypes,
                      const ExprPtr &Context) {
    if (L->getParams().size() != ArgTypes.size())
      typeError("lambda arity mismatch", Context);
    for (std::size_t I = 0, E = ArgTypes.size(); I != E; ++I) {
      L->getParams()[I]->setType(ArgTypes[I]);
      Env[L->getParams()[I].get()] = ArgTypes[I];
    }
    TypePtr T = infer(L->getBody());
    L->setType(T);
    return T;
  }

  LambdaPtr lambdaArg(const CallExpr *C, std::size_t I) {
    ExprPtr A = C->getArgs()[I];
    if (A->getKind() != Expr::Kind::Lambda)
      throw TypeError("type error: expected lambda argument in " +
                      std::string(primName(C->getPrim())));
    return std::static_pointer_cast<LambdaExpr>(A);
  }

  const TypePtr &arrayOrError(const TypePtr &T, const ExprPtr &E) {
    if (T->getKind() != Type::Kind::Array)
      typeError("expected array, got " + T->toString(), E);
    return T;
  }

  TypePtr infer(const ExprPtr &E) {
    TypePtr T = inferImpl(E);
    E->setType(T);
    return T;
  }

  TypePtr inferImpl(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal: {
      Scalar V = dynCast<LiteralExpr>(E)->getValue();
      return V.K == ScalarKind::Float ? floatT() : intT();
    }
    case Expr::Kind::Param: {
      auto It = Env.find(static_cast<const ParamExpr *>(E.get()));
      if (It == Env.end())
        typeError("unbound parameter", E);
      return It->second;
    }
    case Expr::Kind::Lambda:
      typeError("lambda outside function position", E);
    case Expr::Kind::Call:
      return inferCall(std::static_pointer_cast<CallExpr>(E));
    }
    unreachable("covered switch");
  }

  TypePtr inferCall(const std::shared_ptr<CallExpr> &C) {
    const ExprPtr E = C;
    switch (C->getPrim()) {
    case Prim::UserFunCall: {
      const auto &Kinds = C->UF->getParamKinds();
      if (C->getArgs().size() != Kinds.size())
        typeError("userFun arity mismatch", E);
      for (std::size_t I = 0, N = Kinds.size(); I != N; ++I) {
        TypePtr AT = infer(C->getArgs()[I]);
        if (!typeEquals(AT, scalarT(Kinds[I])))
          typeError("userFun argument " + std::to_string(I) + " has type " +
                        AT->toString(),
                    E);
      }
      return scalarT(C->UF->getRetKind());
    }

    case Prim::Map:
    case Prim::MapGlb:
    case Prim::MapWrg:
    case Prim::MapLcl:
    case Prim::MapSeq: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[1]), E);
      TypePtr OutElem = inferLambda(lambdaArg(C.get(), 0), {InT->getElem()}, E);
      return arrayT(OutElem, InT->getSize());
    }

    case Prim::Reduce:
    case Prim::ReduceSeq:
    case Prim::ReduceSeqUnroll: {
      TypePtr InitT = infer(C->getArgs()[1]);
      TypePtr InT = arrayOrError(infer(C->getArgs()[2]), E);
      TypePtr BodyT =
          inferLambda(lambdaArg(C.get(), 0), {InitT, InT->getElem()}, E);
      if (!typeEquals(BodyT, InitT))
        typeError("reduction operator must preserve accumulator type; got " +
                      BodyT->toString() + " vs " + InitT->toString(),
                  E);
      return arrayT(InitT, cst(1));
    }

    case Prim::Iterate: {
      TypePtr InT = infer(C->getArgs()[1]);
      TypePtr OutT = inferLambda(lambdaArg(C.get(), 0), {InT}, E);
      if (!typeEquals(OutT, InT))
        typeError("iterate body must preserve its type; got " +
                      OutT->toString() + " vs " + InT->toString(),
                  E);
      return InT;
    }

    case Prim::Zip: {
      std::vector<TypePtr> Comps;
      TypePtr FirstT = arrayOrError(infer(C->getArgs()[0]), E);
      Comps.push_back(FirstT->getElem());
      for (std::size_t I = 1, N = C->getArgs().size(); I != N; ++I) {
        TypePtr T = arrayOrError(infer(C->getArgs()[I]), E);
        if (!exprEquals(T->getSize(), FirstT->getSize()))
          typeError("zip of arrays with different lengths: " +
                        FirstT->getSize()->toString() + " vs " +
                        T->getSize()->toString(),
                    E);
        Comps.push_back(T->getElem());
      }
      return arrayT(tupleT(std::move(Comps)), FirstT->getSize());
    }

    case Prim::Split: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      // [T]n -> [[T]m]{n/m}; m must divide n at runtime.
      return arrayT(arrayT(InT->getElem(), C->Factor),
                    floorDiv(InT->getSize(), C->Factor));
    }

    case Prim::Join: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      TypePtr Inner = arrayOrError(InT->getElem(), E);
      return arrayT(Inner->getElem(), mul(InT->getSize(), Inner->getSize()));
    }

    case Prim::Transpose: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      TypePtr Inner = arrayOrError(InT->getElem(), E);
      return arrayT(arrayT(Inner->getElem(), InT->getSize()),
                    Inner->getSize());
    }

    case Prim::Slide: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      // [T]n -> [[T]size]{(n - size + step) / step}
      AExpr OutLen = floorDiv(add(sub(InT->getSize(), C->Size), C->Step),
                              C->Step);
      return arrayT(arrayT(InT->getElem(), C->Size), OutLen);
    }

    case Prim::SlideClamp: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      // [T]n -> [[T]size]{ceil((n - size) / step) + 1}: every window is
      // full-width, the last one clamped to start at n - size. Equals
      // the slide count when step divides n - size.
      AExpr OutLen =
          add(floorDiv(sub(add(InT->getSize(), sub(C->Step, cst(1))), C->Size),
                       C->Step),
              cst(1));
      return arrayT(arrayT(InT->getElem(), C->Size), OutLen);
    }

    case Prim::JoinClamp: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      TypePtr Inner = arrayOrError(InT->getElem(), E);
      // [[T]k]t -> [T]m with tile w starting at min(w*k, m-k); m is the
      // declared output extent (payload), validated at evaluation time.
      return arrayT(Inner->getElem(), C->Size);
    }

    case Prim::Pad: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      return arrayT(InT->getElem(),
                    add(add(C->PadL, InT->getSize()), C->PadR));
    }

    case Prim::At: {
      TypePtr InT = arrayOrError(infer(C->getArgs()[0]), E);
      if (InT->getSize()->getKind() == ArithExpr::Kind::Cst &&
          C->Index >= InT->getSize()->getCst())
        typeError("constant index out of bounds", E);
      return InT->getElem();
    }

    case Prim::Get: {
      TypePtr InT = infer(C->getArgs()[0]);
      if (InT->getKind() != Type::Kind::Tuple)
        typeError("get on non-tuple " + InT->toString(), E);
      if (std::size_t(C->Index) >= InT->getComponents().size())
        typeError("tuple index out of bounds", E);
      return InT->getComponents()[C->Index];
    }

    case Prim::SizeVal:
      return intT();

    case Prim::Generate: {
      std::vector<TypePtr> IdxTypes(C->GenSizes.size(), intT());
      TypePtr ElemT = inferLambda(lambdaArg(C.get(), 0), IdxTypes, E);
      if (ElemT->getKind() != Type::Kind::Scalar)
        typeError("generate produces scalars only", E);
      TypePtr T = ElemT;
      for (auto It = C->GenSizes.rbegin(); It != C->GenSizes.rend(); ++It)
        T = arrayT(T, *It);
      return T;
    }
    }
    unreachable("covered switch");
  }
};

} // namespace

TypePtr lift::ir::inferTypes(const Program &P) {
  Inferer I;
  return I.inferProgram(P);
}

TypePtr lift::ir::tryInferTypes(const Program &P, std::string *Err) {
  try {
    return inferTypes(P);
  } catch (const TypeError &E) {
    if (Err)
      *Err = E.what();
    return nullptr;
  }
}
