//===- Types.h - Lift IR types ---------------------------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Lift type system: scalars, size-carrying arrays and tuples.
///
/// Array types carry their length as a symbolic ArithExpr (paper §3.1:
/// "arrays can be nested and carry their size in their type"), which is
/// what lets the type checker verify primitive composition — e.g. that
/// slide(3, 1) over [T]n yields [[T]3]{n-2} — for unknown n.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_IR_TYPES_H
#define LIFT_IR_TYPES_H

#include "arith/ArithExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace ir {

class Type;

/// Shared handle to an immutable type.
using TypePtr = std::shared_ptr<const Type>;

/// Scalar element kinds. The paper's experiments use single-precision
/// floats; Int exists for index-valued generators and masks.
enum class ScalarKind { Float, Int };

/// An immutable Lift type: scalar, sized array, or tuple.
class Type {
public:
  enum class Kind { Scalar, Array, Tuple };

  Kind getKind() const { return K; }

  /// Scalar kind; only valid on Scalar types.
  ScalarKind getScalarKind() const;

  /// Element type; only valid on Array types.
  const TypePtr &getElem() const;

  /// Symbolic element count; only valid on Array types.
  const AExpr &getSize() const;

  /// Tuple component types; only valid on Tuple types.
  const std::vector<TypePtr> &getComponents() const;

  /// Renders e.g. "[[float]3](n + -2)" or "{float, int}".
  std::string toString() const;

  friend TypePtr scalarT(ScalarKind SK);
  friend TypePtr arrayT(TypePtr Elem, AExpr Size);
  friend TypePtr tupleT(std::vector<TypePtr> Components);

private:
  Type() = default;

  Kind K = Kind::Scalar;
  ScalarKind SK = ScalarKind::Float;
  TypePtr Elem;
  AExpr Size;
  std::vector<TypePtr> Components;
};

/// Creates a scalar type.
TypePtr scalarT(ScalarKind SK);

/// float
TypePtr floatT();

/// int
TypePtr intT();

/// Creates an array type [Elem]Size.
TypePtr arrayT(TypePtr Elem, AExpr Size);

/// Creates a tuple type {C0, C1, ...}.
TypePtr tupleT(std::vector<TypePtr> Components);

/// Structural equality; array sizes compare via exprEquals, i.e. two
/// sizes are equal when their canonical forms coincide.
bool typeEquals(const TypePtr &A, const TypePtr &B);

/// Number of nested array dimensions (0 for non-arrays).
unsigned numDims(const TypePtr &T);

/// The scalar type at the bottom of an array/tuple-free nest; fatal on
/// tuples.
TypePtr ultimateElem(const TypePtr &T);

/// Total number of scalar elements in an array nest (product of sizes);
/// tuples count the sum of their component footprints.
AExpr elementCount(const TypePtr &T);

} // namespace ir
} // namespace lift

#endif // LIFT_IR_TYPES_H
