//===- Types.cpp - Lift IR types ------------------------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Types.h"

#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;

ScalarKind Type::getScalarKind() const {
  assert(K == Kind::Scalar && "getScalarKind on non-scalar");
  return SK;
}

const TypePtr &Type::getElem() const {
  assert(K == Kind::Array && "getElem on non-array");
  return Elem;
}

const AExpr &Type::getSize() const {
  assert(K == Kind::Array && "getSize on non-array");
  return Size;
}

const std::vector<TypePtr> &Type::getComponents() const {
  assert(K == Kind::Tuple && "getComponents on non-tuple");
  return Components;
}

TypePtr lift::ir::scalarT(ScalarKind SK) {
  // Scalar types are interned: one shared node per kind, so the hot
  // typeEquals checks in type inference hit the pointer-equality fast
  // path and no allocation happens per call.
  auto Make = [](ScalarKind K) {
    auto T = std::shared_ptr<Type>(new Type());
    T->K = Type::Kind::Scalar;
    T->SK = K;
    return T;
  };
  static TypePtr Float = Make(ScalarKind::Float);
  static TypePtr Int = Make(ScalarKind::Int);
  return SK == ScalarKind::Float ? Float : Int;
}

TypePtr lift::ir::floatT() { return scalarT(ScalarKind::Float); }

TypePtr lift::ir::intT() { return scalarT(ScalarKind::Int); }

TypePtr lift::ir::arrayT(TypePtr Elem, AExpr Size) {
  assert(Elem && Size && "arrayT requires element type and size");
  auto T = std::shared_ptr<Type>(new Type());
  T->K = Type::Kind::Array;
  T->Elem = std::move(Elem);
  T->Size = std::move(Size);
  return T;
}

TypePtr lift::ir::tupleT(std::vector<TypePtr> Components) {
  assert(Components.size() >= 2 && "tuples have at least two components");
  auto T = std::shared_ptr<Type>(new Type());
  T->K = Type::Kind::Tuple;
  T->Components = std::move(Components);
  return T;
}

bool lift::ir::typeEquals(const TypePtr &A, const TypePtr &B) {
  if (A.get() == B.get())
    return true;
  if (A->getKind() != B->getKind())
    return false;
  switch (A->getKind()) {
  case Type::Kind::Scalar:
    return A->getScalarKind() == B->getScalarKind();
  case Type::Kind::Array:
    return exprEquals(A->getSize(), B->getSize()) &&
           typeEquals(A->getElem(), B->getElem());
  case Type::Kind::Tuple: {
    const auto &CA = A->getComponents();
    const auto &CB = B->getComponents();
    if (CA.size() != CB.size())
      return false;
    for (std::size_t I = 0, E = CA.size(); I != E; ++I)
      if (!typeEquals(CA[I], CB[I]))
        return false;
    return true;
  }
  }
  unreachable("covered switch");
}

unsigned lift::ir::numDims(const TypePtr &T) {
  unsigned N = 0;
  const Type *Cur = T.get();
  while (Cur->getKind() == Type::Kind::Array) {
    ++N;
    Cur = Cur->getElem().get();
  }
  return N;
}

TypePtr lift::ir::ultimateElem(const TypePtr &T) {
  TypePtr Cur = T;
  while (Cur->getKind() == Type::Kind::Array)
    Cur = Cur->getElem();
  if (Cur->getKind() == Type::Kind::Tuple)
    fatalError("ultimateElem on tuple-element array");
  return Cur;
}

AExpr lift::ir::elementCount(const TypePtr &T) {
  switch (T->getKind()) {
  case Type::Kind::Scalar:
    return cst(1);
  case Type::Kind::Array:
    return mul(T->getSize(), elementCount(T->getElem()));
  case Type::Kind::Tuple: {
    AExpr Sum = cst(0);
    for (const TypePtr &C : T->getComponents())
      Sum = add(Sum, elementCount(C));
    return Sum;
  }
  }
  unreachable("covered switch");
}

std::string Type::toString() const {
  switch (K) {
  case Kind::Scalar:
    return SK == ScalarKind::Float ? "float" : "int";
  case Kind::Array:
    return "[" + Elem->toString() + "]" + Size->toString();
  case Kind::Tuple: {
    std::string S = "{";
    for (std::size_t I = 0, E = Components.size(); I != E; ++I) {
      if (I != 0)
        S += ", ";
      S += Components[I]->toString();
    }
    return S + "}";
  }
  }
  unreachable("covered switch");
}
