//===- StencilOps.cpp - Multi-dimensional stencil builders ------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "stencil/StencilOps.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;

ExprPtr lift::stencil::mapAtDepth(
    unsigned Depth, const std::function<ExprPtr(ExprPtr)> &F, ExprPtr In) {
  if (Depth == 0)
    return F(std::move(In));
  return map(lam("x" + std::to_string(Depth),
                 [&](ExprPtr X) { return mapAtDepth(Depth - 1, F, X); }),
             std::move(In));
}

ExprPtr lift::stencil::mapNd(unsigned N, LambdaPtr F, ExprPtr In) {
  assert(N >= 1 && "mapNd needs at least one dimension");
  // map_n(f) = map_{n-1}(map(f)); equivalently map(f) at depth n-1.
  return mapAtDepth(
      N - 1, [&](ExprPtr X) { return map(F, std::move(X)); }, std::move(In));
}

ExprPtr lift::stencil::padNd(unsigned N, AExpr L, AExpr R, Boundary B,
                             ExprPtr In) {
  assert(N >= 1 && "padNd needs at least one dimension");
  // pad_n = map_{n-1}(pad) o pad_{n-1}: pad the outer dimension first,
  // then each nested dimension underneath the corresponding maps.
  ExprPtr E = std::move(In);
  for (unsigned D = 0; D != N; ++D)
    E = mapAtDepth(
        D, [&](ExprPtr X) { return pad(L, R, B, std::move(X)); }, E);
  return E;
}

ExprPtr lift::stencil::padNdPerDim(unsigned N, AExpr L, AExpr R,
                                   const std::vector<Boundary> &Bs,
                                   ExprPtr In) {
  assert(Bs.size() == N && "one boundary per dimension");
  ExprPtr E = std::move(In);
  for (unsigned D = 0; D != N; ++D)
    E = mapAtDepth(
        D, [&](ExprPtr X) { return pad(L, R, Bs[D], std::move(X)); }, E);
  return E;
}

ExprPtr lift::stencil::slideNd(unsigned N, AExpr Size, AExpr Step,
                               ExprPtr In) {
  assert(N >= 1 && "slideNd needs at least one dimension");
  if (N == 1)
    return slide(std::move(Size), std::move(Step), std::move(In));
  // slide_n = reorderDims o slide o map(slide_{n-1}) (paper §3.4).
  ExprPtr Inner = map(lam("row", [&](ExprPtr Row) {
                        return slideNd(N - 1, Size, Step, Row);
                      }),
                      std::move(In));
  ExprPtr E = slide(Size, Step, std::move(Inner));
  // The window dimension created by the outer slide sits at depth 1 and
  // must sink below the N-1 remaining grid dimensions; each
  // map^k(transpose) swaps depths k and k+1.
  for (unsigned K = 1; K != N; ++K)
    E = mapAtDepth(
        K, [](ExprPtr X) { return transpose(std::move(X)); }, E);
  return E;
}

ExprPtr lift::stencil::slideClampNd(unsigned N, AExpr Size, AExpr Step,
                                    ExprPtr In) {
  assert(N >= 1 && "slideClampNd needs at least one dimension");
  if (N == 1)
    return slideClamp(std::move(Size), std::move(Step), std::move(In));
  // Same composition as slideNd with the clamped 1D primitive: the
  // last window per dimension shifts left to cover the remainder.
  ExprPtr Inner = map(lam("row", [&](ExprPtr Row) {
                        return slideClampNd(N - 1, Size, Step, Row);
                      }),
                      std::move(In));
  ExprPtr E = slideClamp(Size, Step, std::move(Inner));
  for (unsigned K = 1; K != N; ++K)
    E = mapAtDepth(
        K, [](ExprPtr X) { return transpose(std::move(X)); }, E);
  return E;
}

ExprPtr lift::stencil::slideClampNd(unsigned N,
                                    const std::vector<AExpr> &Sizes,
                                    const std::vector<AExpr> &Steps,
                                    ExprPtr In) {
  assert(N >= 1 && Sizes.size() == N && Steps.size() == N &&
         "slideClampNd needs one size/step per dimension");
  if (N == 1)
    return slideClamp(Sizes[0], Steps[0], std::move(In));
  std::vector<AExpr> InnerSizes(Sizes.begin() + 1, Sizes.end());
  std::vector<AExpr> InnerSteps(Steps.begin() + 1, Steps.end());
  ExprPtr Inner =
      map(lam("row",
              [&](ExprPtr Row) {
                return slideClampNd(N - 1, InnerSizes, InnerSteps, Row);
              }),
          std::move(In));
  ExprPtr E = slideClamp(Sizes[0], Steps[0], std::move(Inner));
  for (unsigned K = 1; K != N; ++K)
    E = mapAtDepth(
        K, [](ExprPtr X) { return transpose(std::move(X)); }, E);
  return E;
}

ExprPtr lift::stencil::stencilNd(unsigned N, LambdaPtr F, AExpr Size,
                                 AExpr Step, AExpr L, AExpr R, Boundary B,
                                 ExprPtr In) {
  return mapNd(N, std::move(F),
               slideNd(N, std::move(Size), std::move(Step),
                       padNd(N, std::move(L), std::move(R), B,
                             std::move(In))));
}

ExprPtr lift::stencil::zipNd(unsigned N, std::vector<ExprPtr> Arrays) {
  assert(N >= 1 && Arrays.size() >= 2 && "zipNd needs >=2 arrays");
  if (N == 1)
    return zip(std::move(Arrays));
  std::size_t Count = Arrays.size();
  ExprPtr Outer = zip(std::move(Arrays));
  // zip_n = map(\t. zip_{n-1}(t.0, t.1, ...), zip(...)): layout-only.
  return map(lam("t",
                 [&](ExprPtr T) {
                   std::vector<ExprPtr> Comps;
                   for (std::size_t I = 0; I != Count; ++I)
                     Comps.push_back(get(int(I), T));
                   return zipNd(N - 1, std::move(Comps));
                 }),
             std::move(Outer));
}

ExprPtr lift::stencil::atNd(const std::vector<int> &Indices, ExprPtr In) {
  ExprPtr E = std::move(In);
  for (int I : Indices)
    E = at(I, std::move(E));
  return E;
}

ExprPtr lift::stencil::flattenNd(unsigned N, ExprPtr In) {
  assert(N >= 1 && "flattenNd needs at least one dimension");
  ExprPtr E = std::move(In);
  for (unsigned I = 1; I != N; ++I)
    E = join(std::move(E));
  return E;
}

ExprPtr lift::stencil::theOne(ExprPtr In) { return at(0, std::move(In)); }

LambdaPtr lift::stencil::sumNeighborhood(unsigned N) {
  return lam("nbh", [&](ExprPtr Nbh) {
    return theOne(reduce(etaLambda(ufAddFloat()), lit(0.0f),
                         flattenNd(N, std::move(Nbh))));
  });
}
