//===- StencilOps.h - Multi-dimensional stencil builders -------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-dimensional stencil construction (paper §3.4): `padNd`,
/// `slideNd` and `mapNd` are *compositions* of the 1D primitives — the
/// paper's central point is that no n-dimensional primitives are needed.
///
///   padNd(n)  = pads every dimension by nesting `map(pad(...))`
///   slideNd(n)= slides every dimension and reorders the window
///               dimensions innermost with `map^k(transpose)`
///   mapNd(n)  = n nested maps applying the stencil function to each
///               n-dimensional neighborhood
///
/// `stencilNd` composes the three into the canonical shape
/// mapNd(f, slideNd(size, step, padNd(l, r, h, input))).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_STENCIL_STENCILOPS_H
#define LIFT_STENCIL_STENCILOPS_H

#include "ir/Expr.h"

#include <functional>

namespace lift {
namespace stencil {

/// Applies \p F underneath \p Depth nested maps: depth 0 is F(In),
/// depth 1 is map(\x. F(x), In), and so on.
ir::ExprPtr mapAtDepth(unsigned Depth,
                       const std::function<ir::ExprPtr(ir::ExprPtr)> &F,
                       ir::ExprPtr In);

/// n nested maps: applies \p F to every element at nesting depth \p N
/// of the input (paper: map_n).
ir::ExprPtr mapNd(unsigned N, ir::LambdaPtr F, ir::ExprPtr In);

/// Pads all \p N dimensions by l/r with the same boundary handling
/// (paper: pad_n).
ir::ExprPtr padNd(unsigned N, AExpr L, AExpr R, ir::Boundary B,
                  ir::ExprPtr In);

/// Pads with a *different* boundary handling per dimension
/// (paper §3.4: "It is straightforward — and supported by our
/// implementation — to do different boundary handlings in each
/// dimension"). \p Bs[d] applies to dimension d (outermost first).
ir::ExprPtr padNdPerDim(unsigned N, AExpr L, AExpr R,
                        const std::vector<ir::Boundary> &Bs,
                        ir::ExprPtr In);

/// Creates \p N-dimensional neighborhoods of extent size^N (paper:
/// slide_n). The result nests the N grid dimensions outermost and the N
/// window dimensions innermost.
ir::ExprPtr slideNd(unsigned N, AExpr Size, AExpr Step, ir::ExprPtr In);

/// slideNd with clamped window starts: the last window of every
/// dimension is shifted left to min(w*step, n-size), so the tiling is
/// legal even when step does not divide n - size (remainder tiles).
ir::ExprPtr slideClampNd(unsigned N, AExpr Size, AExpr Step, ir::ExprPtr In);

/// Per-dimension variant of the clamped slide (outermost dimension
/// first): each dimension gets its own window size and step, so a
/// dimension shorter than the tile can be covered by one full-width
/// window. Requires Sizes.size() == Steps.size() == N.
ir::ExprPtr slideClampNd(unsigned N, const std::vector<AExpr> &Sizes,
                         const std::vector<AExpr> &Steps, ir::ExprPtr In);

/// The canonical n-dimensional stencil shape (paper §3.4):
/// mapNd(f, slideNd(size, step, padNd(l, r, b, input))).
ir::ExprPtr stencilNd(unsigned N, ir::LambdaPtr F, AExpr Size, AExpr Step,
                      AExpr L, AExpr R, ir::Boundary B, ir::ExprPtr In);

/// Element-wise zip of \p N-dimensional arrays: produces an
/// n-dimensional array of tuples, built by composing 1D zips with maps
/// (used by the two-grid benchmarks, e.g. the acoustic simulation's
/// zip3 in paper Listing 3).
ir::ExprPtr zipNd(unsigned N, std::vector<ir::ExprPtr> Arrays);

/// in[i0][i1]...[ik] with constant indices.
ir::ExprPtr atNd(const std::vector<int> &Indices, ir::ExprPtr In);

/// Flattens an \p N-dimensional array to 1D by N-1 joins.
ir::ExprPtr flattenNd(unsigned N, ir::ExprPtr In);

/// at(0, e): extracts the single element of an [T]1 array, e.g. a
/// reduce result.
ir::ExprPtr theOne(ir::ExprPtr In);

/// A lambda summing all scalars of an \p N-dimensional neighborhood:
/// \nbh. at(0, reduce(addF, 0.0f, flatten(nbh))).
ir::LambdaPtr sumNeighborhood(unsigned N);

} // namespace stencil
} // namespace lift

#endif // LIFT_STENCIL_STENCILOPS_H
