//===- Benchmarks.cpp - The paper's benchmark suite ---------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "stencil/Benchmarks.h"

#include "stencil/StencilOps.h"
#include "support/Support.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace lift;
using namespace lift::ir;
using namespace lift::stencil;

std::int64_t lift::stencil::totalElems(const Extents &E) {
  std::int64_t N = 1;
  for (std::int64_t X : E)
    N *= X;
  return N;
}

std::unordered_map<unsigned, std::int64_t>
lift::stencil::makeSizeEnv(const BenchmarkInstance &I, const Extents &E) {
  if (I.SizeVarIds.size() != E.size())
    fatalError("makeSizeEnv: extent count mismatch");
  std::unordered_map<unsigned, std::int64_t> Env;
  for (std::size_t D = 0; D != E.size(); ++D)
    Env[I.SizeVarIds[D]] = E[D];
  return Env;
}

std::vector<std::vector<float>>
lift::stencil::makeBenchmarkInputs(const Benchmark &B, const Extents &E,
                                   std::uint64_t Seed) {
  RandomSource Rand(Seed);
  std::vector<std::vector<float>> Inputs;
  for (int G = 0; G != B.NumGrids; ++G) {
    std::vector<float> Grid(std::size_t(totalElems(E)));
    for (float &V : Grid)
      V = Rand.nextFloat(0.25f, 1.25f);
    Inputs.push_back(std::move(Grid));
  }
  return Inputs;
}

namespace {

//===----------------------------------------------------------------------===//
// Program building helpers
//===----------------------------------------------------------------------===//

/// Fresh per-dimension size variables, outermost first.
std::vector<AExpr> makeSizeVars(unsigned Dims) {
  static const char *Names[3] = {"d0", "d1", "d2"};
  std::vector<AExpr> Vars;
  for (unsigned D = 0; D != Dims; ++D)
    Vars.push_back(var(Names[D], Range(1, 1 << 30)));
  return Vars;
}

TypePtr gridType(const std::vector<AExpr> &SizeVars) {
  TypePtr T = floatT();
  for (auto It = SizeVars.rbegin(); It != SizeVars.rend(); ++It)
    T = arrayT(T, *It);
  return T;
}

std::vector<unsigned> varIds(const std::vector<AExpr> &SizeVars) {
  std::vector<unsigned> Ids;
  for (const AExpr &V : SizeVars)
    Ids.push_back(V->getVarId());
  return Ids;
}

/// Renders \p V as a C float literal that parses back to exactly the
/// same float, so the generated-code weights agree bit-for-bit with
/// the evaluation closure's (%.9g round-trips any float).
std::string floatLiteral(float V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", double(V));
  std::string S(Buf);
  if (S.find_first_of(".e") == std::string::npos)
    S += ".0";
  return S + "f";
}

/// A user function computing a weighted sum of K scalar arguments.
UserFunPtr weightedUF(const std::string &Name,
                      const std::vector<float> &Weights) {
  std::vector<std::string> ParamNames;
  std::vector<ScalarKind> Kinds;
  std::string Body = "return ";
  for (std::size_t I = 0; I != Weights.size(); ++I) {
    ParamNames.push_back("a" + std::to_string(I));
    Kinds.push_back(ScalarKind::Float);
    if (I != 0)
      Body += " + ";
    Body += floatLiteral(Weights[I]) + " * a" + std::to_string(I);
  }
  Body += ";";
  std::vector<float> W = Weights;
  return makeUserFun(Name, std::move(ParamNames), std::move(Kinds),
                     ScalarKind::Float, std::move(Body),
                     [W](const std::vector<Scalar> &Args) {
                       float Sum = 0.0f;
                       for (std::size_t I = 0; I != W.size(); ++I)
                         Sum += W[I] * Args[I].F;
                       return Scalar(Sum);
                     },
                     /*FlopCost=*/int(2 * Weights.size()));
}

/// Builds the lambda \nbh -> uf(nbh[o0], nbh[o1], ...) extracting the
/// given window offsets.
LambdaPtr pointExtractor(const UserFunPtr &UF,
                         const std::vector<std::vector<int>> &Offsets) {
  return lam("nbh", [&](ExprPtr Nbh) {
    std::vector<ExprPtr> Args;
    for (const std::vector<int> &O : Offsets)
      Args.push_back(atNd(O, Nbh));
    return ir::apply(UF, std::move(Args));
  });
}

/// Reduce-style stencil: \nbh -> scale * reduce(+, 0, flatten(nbh)).
/// This is the Listing 2 formulation; its reduction is the unrolling
/// target of the paper's 4.3 (reduceSeqUnroll).
BenchmarkInstance reduceStyleInstance(unsigned Dims, std::int64_t Window,
                                      Boundary B, float Scale) {
  std::vector<AExpr> SV = makeSizeVars(Dims);
  ParamPtr A = param("A", gridType(SV));
  std::int64_t R = (Window - 1) / 2;
  LambdaPtr F = lam("nbh", [&](ExprPtr Nbh) {
    ExprPtr Sum = theOne(
        reduce(etaLambda(ufAddFloat()), lit(0.0f), flattenNd(Dims, Nbh)));
    return ir::apply(ufMultFloat(), {Sum, lit(Scale)});
  });
  ExprPtr Body = stencilNd(Dims, F, cst(Window), cst(1), cst(R), cst(R), B,
                           A);
  return BenchmarkInstance{makeProgram({A}, Body), varIds(SV)};
}

/// mapNd(f, slideNd(w, 1, padNd(r, r, B, A))) over one grid.
BenchmarkInstance singleGridInstance(
    unsigned Dims, std::int64_t Window, Boundary B, const UserFunPtr &UF,
    const std::vector<std::vector<int>> &Offsets) {
  std::vector<AExpr> SV = makeSizeVars(Dims);
  ParamPtr A = param("A", gridType(SV));
  std::int64_t R = (Window - 1) / 2;
  ExprPtr Body = stencilNd(Dims, pointExtractor(UF, Offsets), cst(Window),
                           cst(1), cst(R), cst(R), B, A);
  return BenchmarkInstance{makeProgram({A}, Body), varIds(SV)};
}

/// Two grids: the first taken point-by-point, the second through a
/// slided neighborhood (the Hotspot/acoustic shape). The user function
/// receives (point, stencil points of grid 2...).
BenchmarkInstance pointPlusStencilInstance(
    unsigned Dims, std::int64_t Window, Boundary B, const UserFunPtr &UF,
    const std::vector<std::vector<int>> &Offsets) {
  std::vector<AExpr> SV = makeSizeVars(Dims);
  ParamPtr P = param("P", gridType(SV));
  ParamPtr T = param("T", gridType(SV));
  std::int64_t R = (Window - 1) / 2;
  ExprPtr Slided = slideNd(Dims, cst(Window), cst(1),
                           padNd(Dims, cst(R), cst(R), B, T));
  ExprPtr Zipped = zipNd(Dims, {ExprPtr(P), Slided});
  LambdaPtr F = lam("t", [&](ExprPtr Tup) {
    std::vector<ExprPtr> Args;
    Args.push_back(get(0, Tup));
    for (const std::vector<int> &O : Offsets)
      Args.push_back(atNd(O, get(1, Tup)));
    return ir::apply(UF, std::move(Args));
  });
  return BenchmarkInstance{makeProgram({P, T}, mapNd(Dims, F, Zipped)),
                           varIds(SV)};
}

/// Two grids, both slided (the SRAD2 shape). The user function receives
/// grid-1 points then grid-2 points.
BenchmarkInstance twoSlidedInstance(
    unsigned Dims, std::int64_t Window, Boundary B, const UserFunPtr &UF,
    const std::vector<std::vector<int>> &Offsets1,
    const std::vector<std::vector<int>> &Offsets2) {
  std::vector<AExpr> SV = makeSizeVars(Dims);
  ParamPtr A = param("J", gridType(SV));
  ParamPtr C = param("C", gridType(SV));
  std::int64_t R = (Window - 1) / 2;
  ExprPtr S1 = slideNd(Dims, cst(Window), cst(1),
                       padNd(Dims, cst(R), cst(R), B, A));
  ExprPtr S2 = slideNd(Dims, cst(Window), cst(1),
                       padNd(Dims, cst(R), cst(R), B, C));
  ExprPtr Zipped = zipNd(Dims, {S1, S2});
  LambdaPtr F = lam("t", [&](ExprPtr Tup) {
    std::vector<ExprPtr> Args;
    for (const std::vector<int> &O : Offsets1)
      Args.push_back(atNd(O, get(0, Tup)));
    for (const std::vector<int> &O : Offsets2)
      Args.push_back(atNd(O, get(1, Tup)));
    return ir::apply(UF, std::move(Args));
  });
  return BenchmarkInstance{makeProgram({A, C}, mapNd(Dims, F, Zipped)),
                           varIds(SV)};
}

//===----------------------------------------------------------------------===//
// Golden (independent loop-nest) helpers
//===----------------------------------------------------------------------===//

/// Clamped load from a flat row-major grid of up to 3 dims.
float loadClamp(const std::vector<float> &G, const Extents &E,
                std::int64_t I0, std::int64_t I1, std::int64_t I2 = 0) {
  I0 = resolveBoundaryIndex(Boundary::Kind::Clamp, I0, E[0]);
  I1 = E.size() > 1 ? resolveBoundaryIndex(Boundary::Kind::Clamp, I1, E[1])
                    : 0;
  I2 = E.size() > 2 ? resolveBoundaryIndex(Boundary::Kind::Clamp, I2, E[2])
                    : 0;
  std::int64_t Idx = I0;
  if (E.size() > 1)
    Idx = Idx * E[1] + I1;
  if (E.size() > 2)
    Idx = Idx * E[2] + I2;
  return G[std::size_t(Idx)];
}

/// Zero-padded load (constant boundary).
float loadZero(const std::vector<float> &G, const Extents &E,
               std::int64_t I0, std::int64_t I1, std::int64_t I2 = 0) {
  if (I0 < 0 || I0 >= E[0])
    return 0.0f;
  if (E.size() > 1 && (I1 < 0 || I1 >= E[1]))
    return 0.0f;
  if (E.size() > 2 && (I2 < 0 || I2 >= E[2]))
    return 0.0f;
  std::int64_t Idx = I0;
  if (E.size() > 1)
    Idx = Idx * E[1] + I1;
  if (E.size() > 2)
    Idx = Idx * E[2] + I2;
  return G[std::size_t(Idx)];
}

/// Generic weighted-sum golden sharing the (offsets, weights) data with
/// the built program — the formula exists exactly once.
std::vector<float> goldenWeighted(
    unsigned Dims, std::int64_t Window,
    const std::vector<std::vector<int>> &Offsets,
    const std::vector<float> &Weights,
    const std::vector<std::vector<float>> &Inputs, const Extents &E) {
  std::int64_t R = (Window - 1) / 2;
  const std::vector<float> &G = Inputs[0];
  std::vector<float> Out(std::size_t(totalElems(E)));
  std::int64_t N0 = E[0];
  std::int64_t N1 = Dims > 1 ? E[1] : 1;
  std::int64_t N2 = Dims > 2 ? E[2] : 1;
  std::size_t Idx = 0;
  for (std::int64_t I = 0; I != N0; ++I)
    for (std::int64_t J = 0; J != N1; ++J)
      for (std::int64_t K = 0; K != N2; ++K) {
        float Sum = 0.0f;
        for (std::size_t P = 0; P != Offsets.size(); ++P) {
          const std::vector<int> &O = Offsets[P];
          std::int64_t A0 = I + O[0] - R;
          std::int64_t A1 = Dims > 1 ? J + O[1] - R : 0;
          std::int64_t A2 = Dims > 2 ? K + O[2] - R : 0;
          Sum += Weights[P] * loadClamp(G, E, A0, A1, A2);
        }
        Out[Idx++] = Sum;
      }
  return Out;
}

//===----------------------------------------------------------------------===//
// Offset patterns
//===----------------------------------------------------------------------===//

std::vector<std::vector<int>> box2D(int W) {
  std::vector<std::vector<int>> O;
  for (int I = 0; I != W; ++I)
    for (int J = 0; J != W; ++J)
      O.push_back({I, J});
  return O;
}

std::vector<std::vector<int>> cross2D() {
  // N, W, C, E, S (window coordinates, radius 1)
  return {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}};
}

std::vector<std::vector<int>> cross3D() {
  // the 6 face neighbors + center (window coordinates, radius 1)
  return {{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
          {1, 1, 2}, {1, 2, 1}, {2, 1, 1}};
}

std::vector<std::vector<int>> star3DRadius2() {
  // center + +-1 and +-2 along each axis (window 5): 13 points
  std::vector<std::vector<int>> O = {{2, 2, 2}};
  for (int A = 0; A != 3; ++A)
    for (int D : {-2, -1, 1, 2}) {
      std::vector<int> P = {2, 2, 2};
      P[std::size_t(A)] += D;
      O.push_back(P);
    }
  return O;
}

std::vector<std::vector<int>> poisson19Offsets() {
  // radius-1 box minus the 8 corners: 19 points
  std::vector<std::vector<int>> O;
  for (int I = 0; I != 3; ++I)
    for (int J = 0; J != 3; ++J)
      for (int K = 0; K != 3; ++K) {
        int Manhattan = std::abs(I - 1) + std::abs(J - 1) + std::abs(K - 1);
        if (Manhattan <= 2)
          O.push_back({I, J, K});
      }
  return O;
}

/// Builds a weighted benchmark where the program and the golden share
/// the same offsets/weights tables.
Benchmark weightedBenchmark(std::string Name, std::string Suite,
                            unsigned Dims, std::int64_t Window,
                            std::vector<std::vector<int>> Offsets,
                            std::vector<float> Weights, Extents Small,
                            Extents Large, Extents Measure, bool Fig7,
                            bool Fig8, bool ReduceStyle = false,
                            float ReduceScale = 1.0f) {
  Benchmark B;
  B.Name = Name;
  B.Suite = std::move(Suite);
  B.Dims = Dims;
  B.Points = int(Offsets.size());
  B.NumGrids = 1;
  B.WindowSize = Window;
  B.SmallExtents = std::move(Small);
  B.LargeExtents = std::move(Large);
  B.MeasureExtents = std::move(Measure);
  B.InFigure7 = Fig7;
  B.InFigure8 = Fig8;
  if (ReduceStyle) {
    B.Build = [Dims, Window, ReduceScale]() {
      return reduceStyleInstance(Dims, Window, Boundary::clamp(),
                                 ReduceScale);
    };
  } else {
    UserFunPtr UF = weightedUF(Name + "_f", Weights);
    B.Build = [Dims, Window, UF, Offsets]() {
      return singleGridInstance(Dims, Window, Boundary::clamp(), UF,
                                Offsets);
    };
  }
  B.Golden = [Dims, Window, Offsets, Weights](
                 const std::vector<std::vector<float>> &Inputs,
                 const Extents &E) {
    return goldenWeighted(Dims, Window, Offsets, Weights, Inputs, E);
  };
  return B;
}

//===----------------------------------------------------------------------===//
// Custom user functions
//===----------------------------------------------------------------------===//

UserFunPtr gradientUF() {
  static UserFunPtr UF = makeUserFun(
      "gradient_f", {"n", "w", "c", "e", "s"},
      std::vector<ScalarKind>(5, ScalarKind::Float), ScalarKind::Float,
      "return c + sqrt((e - w) * (e - w) + (s - n) * (s - n));",
      [](const std::vector<Scalar> &A) {
        float N = A[0].F, W = A[1].F, C = A[2].F, E = A[3].F, S = A[4].F;
        return Scalar(C + std::sqrt((E - W) * (E - W) + (S - N) * (S - N)));
      },
      /*FlopCost=*/10);
  return UF;
}

UserFunPtr srad1UF() {
  // Diffusion-coefficient kernel in the style of Rodinia's srad_kernel1
  // with a fixed q0; the coefficient is clamped into [0, 1].
  static UserFunPtr UF = makeUserFun(
      "srad1_f", {"n", "w", "c", "e", "s"},
      std::vector<ScalarKind>(5, ScalarKind::Float), ScalarKind::Float,
      "float dN = n - c; float dS = s - c; float dW = w - c;"
      " float dE = e - c;"
      " float g2 = (dN*dN + dS*dS + dW*dW + dE*dE) / (c*c);"
      " float l = (dN + dS + dW + dE) / c;"
      " float num = 0.5f*g2 - 0.0625f*(l*l);"
      " float den = 1.0f + 0.25f*l; den = den*den;"
      " float q = num / den;"
      " float q0 = 0.5f;"
      " float coeff = 1.0f / (1.0f + (q - q0) / (q0 * (1.0f + q0)));"
      " return fmax(0.0f, fmin(1.0f, coeff));",
      [](const std::vector<Scalar> &A) {
        float N = A[0].F, W = A[1].F, C = A[2].F, E = A[3].F, S = A[4].F;
        float DN = N - C, DS = S - C, DW = W - C, DE = E - C;
        float G2 = (DN * DN + DS * DS + DW * DW + DE * DE) / (C * C);
        float L = (DN + DS + DW + DE) / C;
        float Num = 0.5f * G2 - 0.0625f * (L * L);
        float Den = 1.0f + 0.25f * L;
        Den = Den * Den;
        float Q = Num / Den;
        float Q0 = 0.5f;
        float Coeff = 1.0f / (1.0f + (Q - Q0) / (Q0 * (1.0f + Q0)));
        return Scalar(std::fmax(0.0f, std::fmin(1.0f, Coeff)));
      },
      /*FlopCost=*/25);
  return UF;
}

UserFunPtr srad2UF() {
  // Image update from the diffusion coefficients (Rodinia srad_kernel2
  // uses c, s, e of both grids: 3 stencil points across 2 grids).
  static UserFunPtr UF = makeUserFun(
      "srad2_f", {"jc", "js", "je", "cc", "cs", "ce"},
      std::vector<ScalarKind>(6, ScalarKind::Float), ScalarKind::Float,
      "float d = cs * (js - jc) + ce * (je - jc) + cc * (jc - jc);"
      " return jc + 0.25f * d;",
      [](const std::vector<Scalar> &A) {
        float JC = A[0].F, JS = A[1].F, JE = A[2].F;
        float CC = A[3].F, CS = A[4].F, CE = A[5].F;
        float D = CS * (JS - JC) + CE * (JE - JC) + CC * (JC - JC);
        return Scalar(JC + 0.25f * D);
      },
      /*FlopCost=*/12);
  return UF;
}

UserFunPtr hotspot2dUF() {
  // Rodinia hotspot: temperature update from power and conduction.
  static UserFunPtr UF = makeUserFun(
      "hotspot2d_f", {"p", "tn", "tw", "tc", "te", "ts"},
      std::vector<ScalarKind>(6, ScalarKind::Float), ScalarKind::Float,
      "float cap = 0.5f; float rx = 0.2f; float ry = 0.1f;"
      " float rz = 0.05f; float amb = 80.0f;"
      " return tc + cap * (p + (tn + ts - 2.0f*tc) * ry"
      "   + (te + tw - 2.0f*tc) * rx + (amb - tc) * rz);",
      [](const std::vector<Scalar> &A) {
        float P = A[0].F, TN = A[1].F, TW = A[2].F, TC = A[3].F,
              TE = A[4].F, TS = A[5].F;
        float Cap = 0.5f, Rx = 0.2f, Ry = 0.1f, Rz = 0.05f, Amb = 80.0f;
        return Scalar(TC + Cap * (P + (TN + TS - 2.0f * TC) * Ry +
                                  (TE + TW - 2.0f * TC) * Rx +
                                  (Amb - TC) * Rz));
      },
      /*FlopCost=*/15);
  return UF;
}

UserFunPtr hotspot3dUF() {
  static UserFunPtr UF = makeUserFun(
      "hotspot3d_f", {"p", "ta", "tn", "tw", "tc", "te", "ts", "tb"},
      std::vector<ScalarKind>(8, ScalarKind::Float), ScalarKind::Float,
      "float cap = 0.5f; float rx = 0.2f; float ry = 0.1f;"
      " float rz = 0.15f; float amb = 80.0f;"
      " return tc + cap * (p + (tn + ts - 2.0f*tc) * ry"
      "   + (te + tw - 2.0f*tc) * rx + (ta + tb - 2.0f*tc) * rz"
      "   + (amb - tc) * 0.05f);",
      [](const std::vector<Scalar> &A) {
        float P = A[0].F, TA = A[1].F, TN = A[2].F, TW = A[3].F,
              TC = A[4].F, TE = A[5].F, TS = A[6].F, TB = A[7].F;
        float Cap = 0.5f, Rx = 0.2f, Ry = 0.1f, Rz = 0.15f, Amb = 80.0f;
        return Scalar(TC + Cap * (P + (TN + TS - 2.0f * TC) * Ry +
                                  (TE + TW - 2.0f * TC) * Rx +
                                  (TA + TB - 2.0f * TC) * Rz +
                                  (Amb - TC) * 0.05f));
      },
      /*FlopCost=*/20);
  return UF;
}

UserFunPtr acousticUF() {
  // Paper Listing 3 update: cf * ((2 - l2*nn)*cur + l2*sum6 - cf2*prev)
  // with loss coefficients applied at obstacle/wall boundaries (nn<6).
  static UserFunPtr UF = makeUserFun(
      "acoustic_f",
      {"prev", "s0", "s1", "s2", "cur", "s3", "s4", "s5", "nn"},
      {ScalarKind::Float, ScalarKind::Float, ScalarKind::Float,
       ScalarKind::Float, ScalarKind::Float, ScalarKind::Float,
       ScalarKind::Float, ScalarKind::Float, ScalarKind::Int},
      ScalarKind::Float,
      "float l2 = 0.25f; float loss1 = 0.999f; float loss2 = 1.001f;"
      " float nnf = (float)nn;"
      " float cf  = (nn == 6) ? 1.0f : loss1;"
      " float cf2 = (nn == 6) ? 1.0f : loss2;"
      " float sum = s0 + s1 + s2 + s3 + s4 + s5;"
      " return cf * ((2.0f - l2 * nnf) * cur + l2 * sum - cf2 * prev);",
      [](const std::vector<Scalar> &A) {
        float Prev = A[0].F;
        float Sum = A[1].F + A[2].F + A[3].F + A[5].F + A[6].F + A[7].F;
        float Cur = A[4].F;
        std::int32_t NN = A[8].I;
        float L2 = 0.25f, Loss1 = 0.999f, Loss2 = 1.001f;
        float CF = NN == 6 ? 1.0f : Loss1;
        float CF2 = NN == 6 ? 1.0f : Loss2;
        return Scalar(CF * ((2.0f - L2 * float(NN)) * Cur + L2 * Sum -
                            CF2 * Prev));
      },
      /*FlopCost=*/15);
  return UF;
}

UserFunPtr numNeighborsUF() {
  static UserFunPtr UF = makeUserFun(
      "numNeighbors", {"i", "j", "k", "d0", "d1", "d2"},
      std::vector<ScalarKind>(6, ScalarKind::Int), ScalarKind::Int,
      "return (i > 0) + (i < d0 - 1) + (j > 0) + (j < d1 - 1)"
      " + (k > 0) + (k < d2 - 1);",
      [](const std::vector<Scalar> &A) {
        std::int32_t I = A[0].I, J = A[1].I, K = A[2].I;
        std::int32_t D0 = A[3].I, D1 = A[4].I, D2 = A[5].I;
        std::int32_t NN = (I > 0) + (I < D0 - 1) + (J > 0) + (J < D1 - 1) +
                          (K > 0) + (K < D2 - 1);
        return Scalar(NN);
      },
      /*FlopCost=*/8);
  return UF;
}

//===----------------------------------------------------------------------===//
// Custom benchmark builders + goldens
//===----------------------------------------------------------------------===//

Benchmark gradientBenchmark() {
  Benchmark B;
  B.Name = "Gradient";
  B.Suite = "Rawat et al.";
  B.Dims = 2;
  B.Points = 5;
  B.NumGrids = 1;
  B.SmallExtents = {4096, 4096};
  B.LargeExtents = {8192, 8192};
  B.MeasureExtents = {128, 128};
  B.InFigure8 = true;
  B.Build = [] {
    return singleGridInstance(2, 3, Boundary::clamp(), gradientUF(),
                              cross2D());
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J) {
        float N = loadClamp(In[0], E, I - 1, J);
        float W = loadClamp(In[0], E, I, J - 1);
        float C = loadClamp(In[0], E, I, J);
        float Ee = loadClamp(In[0], E, I, J + 1);
        float S = loadClamp(In[0], E, I + 1, J);
        Out[Idx++] =
            C + std::sqrt((Ee - W) * (Ee - W) + (S - N) * (S - N));
      }
    return Out;
  };
  return B;
}

Benchmark srad1Benchmark() {
  Benchmark B;
  B.Name = "SRAD1";
  B.Suite = "Rodinia";
  B.Dims = 2;
  B.Points = 5;
  B.NumGrids = 1;
  B.SmallExtents = {504, 458};
  B.MeasureExtents = {56, 56};
  B.InFigure7 = true;
  B.Build = [] {
    return singleGridInstance(2, 3, Boundary::clamp(), srad1UF(), cross2D());
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J) {
        std::vector<Scalar> Args = {
            Scalar(loadClamp(In[0], E, I - 1, J)),
            Scalar(loadClamp(In[0], E, I, J - 1)),
            Scalar(loadClamp(In[0], E, I, J)),
            Scalar(loadClamp(In[0], E, I, J + 1)),
            Scalar(loadClamp(In[0], E, I + 1, J))};
        Out[Idx++] = srad1UF()->evaluate(Args).F;
      }
    return Out;
  };
  return B;
}

Benchmark srad2Benchmark() {
  Benchmark B;
  B.Name = "SRAD2";
  B.Suite = "Rodinia";
  B.Dims = 2;
  B.Points = 3;
  B.NumGrids = 2;
  B.SmallExtents = {504, 458};
  B.MeasureExtents = {56, 56};
  B.InFigure7 = true;
  // c, s, e of both grids (window coordinates).
  std::vector<std::vector<int>> Offsets = {{1, 1}, {2, 1}, {1, 2}};
  B.Build = [Offsets] {
    return twoSlidedInstance(2, 3, Boundary::clamp(), srad2UF(), Offsets,
                             Offsets);
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J) {
        std::vector<Scalar> Args = {
            Scalar(loadClamp(In[0], E, I, J)),
            Scalar(loadClamp(In[0], E, I + 1, J)),
            Scalar(loadClamp(In[0], E, I, J + 1)),
            Scalar(loadClamp(In[1], E, I, J)),
            Scalar(loadClamp(In[1], E, I + 1, J)),
            Scalar(loadClamp(In[1], E, I, J + 1))};
        Out[Idx++] = srad2UF()->evaluate(Args).F;
      }
    return Out;
  };
  return B;
}

Benchmark hotspot2dBenchmark() {
  Benchmark B;
  B.Name = "Hotspot2D";
  B.Suite = "Rodinia";
  B.Dims = 2;
  B.Points = 5;
  B.NumGrids = 2;
  B.SmallExtents = {8192, 8192};
  B.MeasureExtents = {128, 128};
  B.InFigure7 = true;
  // n, w, c, e, s of the temperature grid.
  B.Build = [] {
    return pointPlusStencilInstance(2, 3, Boundary::clamp(), hotspot2dUF(),
                                    {{0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 1}});
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J) {
        std::vector<Scalar> Args = {
            Scalar(In[0][std::size_t(I * E[1] + J)]),
            Scalar(loadClamp(In[1], E, I - 1, J)),
            Scalar(loadClamp(In[1], E, I, J - 1)),
            Scalar(loadClamp(In[1], E, I, J)),
            Scalar(loadClamp(In[1], E, I, J + 1)),
            Scalar(loadClamp(In[1], E, I + 1, J))};
        Out[Idx++] = hotspot2dUF()->evaluate(Args).F;
      }
    return Out;
  };
  return B;
}

Benchmark hotspot3dBenchmark() {
  Benchmark B;
  B.Name = "Hotspot3D";
  B.Suite = "Rodinia";
  B.Dims = 3;
  B.Points = 7;
  B.NumGrids = 2;
  B.SmallExtents = {8, 512, 512};
  B.MeasureExtents = {4, 64, 64};
  B.InFigure7 = true;
  // above, n, w, c, e, s, below of the temperature grid.
  B.Build = [] {
    return pointPlusStencilInstance(
        3, 3, Boundary::clamp(), hotspot3dUF(),
        {{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {1, 1, 1},
         {1, 1, 2}, {1, 2, 1}, {2, 1, 1}});
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J)
        for (std::int64_t K = 0; K != E[2]; ++K) {
          std::vector<Scalar> Args = {
              Scalar(In[0][std::size_t((I * E[1] + J) * E[2] + K)]),
              Scalar(loadClamp(In[1], E, I - 1, J, K)),
              Scalar(loadClamp(In[1], E, I, J - 1, K)),
              Scalar(loadClamp(In[1], E, I, J, K - 1)),
              Scalar(loadClamp(In[1], E, I, J, K)),
              Scalar(loadClamp(In[1], E, I, J, K + 1)),
              Scalar(loadClamp(In[1], E, I, J + 1, K)),
              Scalar(loadClamp(In[1], E, I + 1, J, K))};
          Out[Idx++] = hotspot3dUF()->evaluate(Args).F;
        }
    return Out;
  };
  return B;
}

Benchmark acousticBenchmark() {
  Benchmark B;
  B.Name = "Acoustic";
  B.Suite = "Acoustics [49]";
  B.Dims = 3;
  B.Points = 7;
  B.NumGrids = 2;
  B.SmallExtents = {404, 512, 512};
  B.MeasureExtents = {20, 48, 48};
  B.InFigure7 = true;
  B.Build = [] {
    // Paper Listing 3: zip3(grid_prev, slide3(pad3(0, grid_cur)), mask).
    std::vector<AExpr> SV = makeSizeVars(3);
    ParamPtr Prev = param("prev", gridType(SV));
    ParamPtr Cur = param("cur", gridType(SV));
    ExprPtr Slided = slideNd(3, cst(3), cst(1),
                             padNd(3, cst(1), cst(1),
                                   Boundary::constant(0.0f), Cur));
    // The neighbor-count mask is computed on the fly (array3 in the
    // paper) from the position and the grid extents.
    AExpr D0 = SV[0], D1 = SV[1], D2 = SV[2];
    ParamPtr Pi = param("i"), Pj = param("j"), Pk = param("k");
    LambdaPtr MaskF = lambda(
        {Pi, Pj, Pk},
        apply(numNeighborsUF(),
              {Pi, Pj, Pk, sizeVal(D0), sizeVal(D1), sizeVal(D2)}));
    ExprPtr Mask = generate({D0, D1, D2}, MaskF);
    ExprPtr Zipped = zipNd(3, {ExprPtr(Prev), Slided, Mask});
    LambdaPtr F = lam("m", [&](ExprPtr M) {
      ExprPtr Nbh = get(1, M);
      std::vector<ExprPtr> Args = {get(0, M),
                                   atNd({0, 1, 1}, Nbh),
                                   atNd({1, 0, 1}, Nbh),
                                   atNd({1, 1, 0}, Nbh),
                                   atNd({1, 1, 1}, Nbh),
                                   atNd({1, 1, 2}, Nbh),
                                   atNd({1, 2, 1}, Nbh),
                                   atNd({2, 1, 1}, Nbh),
                                   get(2, M)};
      return ir::apply(acousticUF(), std::move(Args));
    });
    return BenchmarkInstance{
        makeProgram({Prev, Cur}, mapNd(3, F, Zipped)), varIds(SV)};
  };
  B.Golden = [](const std::vector<std::vector<float>> &In, const Extents &E) {
    std::vector<float> Out(std::size_t(totalElems(E)));
    std::size_t Idx = 0;
    for (std::int64_t I = 0; I != E[0]; ++I)
      for (std::int64_t J = 0; J != E[1]; ++J)
        for (std::int64_t K = 0; K != E[2]; ++K) {
          std::int32_t NN =
              (I > 0) + (I < E[0] - 1) + (J > 0) + (J < E[1] - 1) +
              (K > 0) + (K < E[2] - 1);
          std::vector<Scalar> Args = {
              Scalar(In[0][std::size_t((I * E[1] + J) * E[2] + K)]),
              Scalar(loadZero(In[1], E, I - 1, J, K)),
              Scalar(loadZero(In[1], E, I, J - 1, K)),
              Scalar(loadZero(In[1], E, I, J, K - 1)),
              Scalar(loadZero(In[1], E, I, J, K)),
              Scalar(loadZero(In[1], E, I, J, K + 1)),
              Scalar(loadZero(In[1], E, I, J + 1, K)),
              Scalar(loadZero(In[1], E, I + 1, J, K)),
              Scalar(NN)};
          Out[Idx++] = acousticUF()->evaluate(Args).F;
        }
    return Out;
  };
  return B;
}

std::vector<Benchmark> buildAll() {
  std::vector<Benchmark> B;

  // --- Figure 7 set -------------------------------------------------
  {
    // SHOC Stencil2D: weighted 9-point.
    std::vector<float> W = {0.02f, 0.08f, 0.02f, 0.08f, 0.60f,
                            0.08f, 0.02f, 0.08f, 0.02f};
    B.push_back(weightedBenchmark("Stencil2D", "SHOC", 2, 3, box2D(3), W,
                                  {4096, 4096}, {}, {128, 128},
                                  /*Fig7=*/true, /*Fig8=*/false));
  }
  B.push_back(srad1Benchmark());
  B.push_back(srad2Benchmark());
  B.push_back(hotspot2dBenchmark());
  B.push_back(hotspot3dBenchmark());
  B.push_back(acousticBenchmark());

  // --- Figure 8 set -------------------------------------------------
  {
    // Gaussian 25-point: 5x5 binomial weights / 256.
    static const float Binomial[5] = {1, 4, 6, 4, 1};
    std::vector<float> W;
    for (int I = 0; I != 5; ++I)
      for (int J = 0; J != 5; ++J)
        W.push_back(Binomial[I] * Binomial[J] / 256.0f);
    B.push_back(weightedBenchmark("Gaussian", "Rawat et al.", 2, 5,
                                  box2D(5), W, {4096, 4096}, {8192, 8192},
                                  {128, 128}, false, true));
  }
  B.push_back(gradientBenchmark());
  B.push_back(weightedBenchmark(
      "Jacobi2D5pt", "Rawat et al.", 2, 3, cross2D(),
      std::vector<float>(5, 0.2f), {4096, 4096}, {8192, 8192}, {128, 128},
      false, true));
  // Jacobi2D9pt covers the full 3x3 window with a uniform weight, so
  // it is expressed reduce-style (Listing 2) and exercises the
  // reduceSeqUnroll rule.
  B.push_back(weightedBenchmark(
      "Jacobi2D9pt", "Rawat et al.", 2, 3, box2D(3),
      std::vector<float>(9, 1.0f / 9.0f), {4096, 4096}, {8192, 8192},
      {128, 128}, false, true, /*ReduceStyle=*/true, 1.0f / 9.0f));
  B.push_back(weightedBenchmark(
      "Jacobi3D7pt", "Rawat et al.", 3, 3, cross3D(),
      std::vector<float>(7, 1.0f / 7.0f), {256, 256, 256}, {512, 512, 512},
      {32, 32, 32}, false, true));
  B.push_back(weightedBenchmark(
      "Jacobi3D13pt", "Rawat et al.", 3, 5, star3DRadius2(),
      std::vector<float>(13, 1.0f / 13.0f), {256, 256, 256},
      {512, 512, 512}, {32, 32, 32}, false, true));
  {
    // Poisson 19-point: center + faces + edges with FD weights.
    std::vector<std::vector<int>> O = poisson19Offsets();
    std::vector<float> W;
    for (const std::vector<int> &P : O) {
      int Manhattan = std::abs(P[0] - 1) + std::abs(P[1] - 1) +
                      std::abs(P[2] - 1);
      if (Manhattan == 0)
        W.push_back(2.6666f);
      else if (Manhattan == 1)
        W.push_back(-0.1666f);
      else
        W.push_back(-0.0833f);
    }
    B.push_back(weightedBenchmark("Poisson", "Rawat et al.", 3, 3, O, W,
                                  {256, 256, 256}, {512, 512, 512},
                                  {32, 32, 32}, false, true));
  }
  {
    // Heat 7-point: out = c + 0.125 * (sum of faces - 6c).
    std::vector<std::vector<int>> O = cross3D();
    std::vector<float> W;
    for (const std::vector<int> &P : O) {
      bool Center = P[0] == 1 && P[1] == 1 && P[2] == 1;
      W.push_back(Center ? 1.0f - 6.0f * 0.125f : 0.125f);
    }
    B.push_back(weightedBenchmark("Heat", "Rawat et al.", 3, 3, O, W,
                                  {256, 256, 256}, {512, 512, 512},
                                  {32, 32, 32}, false, true));
  }
  return B;
}

} // namespace

const std::vector<Benchmark> &lift::stencil::allBenchmarks() {
  static const std::vector<Benchmark> All = buildAll();
  return All;
}

const Benchmark &lift::stencil::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (B.Name == Name)
      return B;
  fatalError("unknown benchmark: " + Name);
}
