//===- Benchmarks.h - The paper's benchmark suite --------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The twelve stencil benchmarks of Table 1, expressed as high-level
/// Lift programs built from pad/slide/map compositions (fourteen
/// programs: Jacobi2D and Jacobi3D each come in two point variants):
///
///   Figure 7 set (vs hand-written references): Stencil2D (SHOC),
///   SRAD1, SRAD2, Hotspot2D, Hotspot3D (Rodinia), Acoustic (room
///   acoustics, paper §3.5 / Listing 3).
///
///   Figure 8 set (vs PPCG): Gaussian, Gradient, Jacobi2D 5pt/9pt,
///   Jacobi3D 7pt/13pt, Poisson, Heat (Rawat et al. benchmarks), each
///   with a small and a large input size.
///
/// Every benchmark also carries an independent straight-loop golden
/// implementation used by the correctness tests, and the metadata the
/// tuner needs (window geometry, tuning/measurement grid sizes).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_STENCIL_BENCHMARKS_H
#define LIFT_STENCIL_BENCHMARKS_H

#include "ir/Expr.h"

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lift {
namespace stencil {

/// A built benchmark program plus its per-dimension size variables
/// (outermost dimension first).
struct BenchmarkInstance {
  ir::Program P;
  std::vector<unsigned> SizeVarIds;
};

/// Grid extents, outermost dimension first.
using Extents = std::vector<std::int64_t>;

/// One benchmark of Table 1.
struct Benchmark {
  std::string Name;
  std::string Suite; ///< SHOC / Rodinia / Acoustic / Rawat et al.
  unsigned Dims = 2;
  int Points = 5;    ///< stencil points (Table 1 "Pts")
  int NumGrids = 1;  ///< input grids (Table 1 "#grids")
  std::int64_t WindowSize = 3;
  std::int64_t WindowStep = 1;
  Extents SmallExtents;   ///< Table 1 input size (small where two)
  Extents LargeExtents;   ///< large size for Figure 8 (empty if none)
  Extents MeasureExtents; ///< reduced grid for simulator measurement
  bool InFigure7 = false;
  bool InFigure8 = false;

  /// Builds a fresh program (independent size variables per call).
  std::function<BenchmarkInstance()> Build;

  /// Independent reference implementation: plain loop nests over flat
  /// row-major grids. Returns the expected output.
  std::function<std::vector<float>(const std::vector<std::vector<float>> &,
                                   const Extents &)>
      Golden;
};

/// All fourteen benchmark programs, in Table 1 order.
const std::vector<Benchmark> &allBenchmarks();

/// Looks a benchmark up by name; fatal if absent.
const Benchmark &findBenchmark(const std::string &Name);

/// Binds an instance's size variables to concrete extents.
std::unordered_map<unsigned, std::int64_t>
makeSizeEnv(const BenchmarkInstance &I, const Extents &E);

/// Deterministic pseudo-random input grids (one per NumGrids), values
/// in (0.25, 1.25) so divisions in SRAD stay well-behaved.
std::vector<std::vector<float>> makeBenchmarkInputs(const Benchmark &B,
                                                    const Extents &E,
                                                    std::uint64_t Seed = 42);

/// Number of grid points (the output element count).
std::int64_t totalElems(const Extents &E);

} // namespace stencil
} // namespace lift

#endif // LIFT_STENCIL_BENCHMARKS_H
