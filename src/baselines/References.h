//===- References.h - Hand-written reference kernel models -----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the hand-written reference kernels the paper compares
/// against in Figure 7 (SHOC v1.1.5, Rodinia v3.1, and the acoustic
/// simulation code). Each reference is a *fixed* implementation choice
/// — the way those kernels were written once, typically for an NVIDIA
/// card, with hard-coded work-group sizes and no per-device tuning —
/// expressed as a pinned point in our implementation space and executed
/// through exactly the same code generator and simulator as the Lift
/// variants. The contrast Lift-tuned vs. reference-fixed is the effect
/// Figure 7 measures.
///
/// The PPCG baseline of Figure 8 is NOT here: it is a restricted
/// *tuning space* (tuner::ppcgSpace()) — always-tiled, shared-memory
/// staged, thread-coarsened schedules, tuned like the paper tunes PPCG
/// tile/block sizes.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_BASELINES_REFERENCES_H
#define LIFT_BASELINES_REFERENCES_H

#include "stencil/Benchmarks.h"
#include "tuner/Tuner.h"

namespace lift {
namespace baselines {

/// The fixed configuration modeling \p B's hand-written reference
/// kernel. Fatal for benchmarks without one (only the Figure 7 set has
/// references).
tuner::Candidate referenceCandidate(const stencil::Benchmark &B);

} // namespace baselines
} // namespace lift

#endif // LIFT_BASELINES_REFERENCES_H
