//===- References.cpp - Hand-written reference kernel models ------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "baselines/References.h"

#include "support/Support.h"

using namespace lift;
using namespace lift::tuner;

Candidate lift::baselines::referenceCandidate(const stencil::Benchmark &B) {
  Candidate C;
  // All reference kernels hard-code a 256-work-item group (the common
  // NVIDIA-oriented choice in SHOC and Rodinia).
  C.Launch.WorkGroupSize = 256;

  if (B.Name == "Stencil2D") {
    // SHOC stencil2d: one thread per output point, no local memory,
    // inner halo loop unrolled.
    C.Options.UnrollReduce = true;
    return C;
  }
  if (B.Name == "SRAD1" || B.Name == "SRAD2") {
    // Rodinia srad: straightforward one-point-per-thread kernels.
    return C;
  }
  if (B.Name == "Hotspot2D") {
    // Rodinia hotspot: 16x16 thread blocks staging the temperature
    // tile in shared memory (BLOCK_SIZE = 16), written for NVIDIA.
    // On devices where barriers are expensive or local memory is
    // emulated this fixed choice is exactly what Figure 7 punishes.
    C.Options.Tile = true;
    C.Options.TileOutputs = 16;
    C.Options.UseLocalMem = true;
    return C;
  }
  if (B.Name == "Hotspot3D") {
    // Rodinia hotspot3D: global-memory kernel, each thread walking
    // two points along the innermost dimension.
    C.Options.Coarsen = 2;
    return C;
  }
  if (B.Name == "Acoustic") {
    // The HPC physicists' kernel: one thread per point, hard-coded
    // launch geometry.
    return C;
  }
  fatalError("no hand-written reference for benchmark " + B.Name);
}
