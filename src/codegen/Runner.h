//===- Runner.h - Compile-and-simulate convenience -------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call pipeline: compile a low-level Lift program, execute it on
/// the instrumented NDRange simulator, and return outputs + counters.
/// Used by tests (against the interpreter oracle), the auto-tuner and
/// the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CODEGEN_RUNNER_H
#define LIFT_CODEGEN_RUNNER_H

#include "codegen/CodeGen.h"
#include "ocl/Sim.h"

namespace lift {
namespace codegen {

/// Everything a caller may want from one simulated execution.
struct RunResult {
  std::vector<float> Output;
  ocl::ExecCounters Counters;
  ocl::NDRangeInfo NDRange;
};

/// Compiles \p P and executes it on the simulator. \p Inputs holds one
/// flat row-major float vector per program parameter; \p Sizes binds
/// the size variables. \p Cache configures the modeled last-level
/// cache. \p Jobs selects the execution engine: 1 (the default) is the
/// legacy sequential Executor; any other value uses the compiled
/// ParallelExecutor with up to that many threads (0 = all hardware
/// workers). Counters and outputs are identical either way.
RunResult runOnSim(const ir::Program &P,
                   const std::vector<std::vector<float>> &Inputs,
                   const ocl::SizeEnv &Sizes,
                   const ocl::CacheConfig &Cache = ocl::CacheConfig(),
                   unsigned Jobs = 1);

/// Executes an already-compiled kernel on fresh input data. \p Jobs as
/// in runOnSim.
RunResult runCompiled(const Compiled &C,
                      const std::vector<std::vector<float>> &Inputs,
                      const ocl::SizeEnv &Sizes,
                      const ocl::CacheConfig &Cache = ocl::CacheConfig(),
                      unsigned Jobs = 1);

} // namespace codegen
} // namespace lift

#endif // LIFT_CODEGEN_RUNNER_H
