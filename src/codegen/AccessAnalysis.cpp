//===- AccessAnalysis.cpp - Static memory-access analysis --------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/AccessAnalysis.h"

#include "support/Support.h"

using namespace lift;
using namespace lift::ocl;
using namespace lift::codegen;

const char *lift::codegen::accessPatternName(AccessPattern P) {
  switch (P) {
  case AccessPattern::Coalesced:
    return "coalesced";
  case AccessPattern::Uniform:
    return "uniform";
  case AccessPattern::Strided:
    return "strided";
  case AccessPattern::Irregular:
    return "irregular";
  case AccessPattern::Sequential:
    return "sequential";
  }
  unreachable("covered switch");
}

int AccessReport::count(AccessPattern P) const {
  int N = 0;
  for (const AccessSite &S : Sites)
    N += S.Pattern == P;
  return N;
}

bool AccessReport::fullyCoalesced() const {
  for (const AccessSite &S : Sites)
    if (S.Pattern == AccessPattern::Strided ||
        S.Pattern == AccessPattern::Irregular)
      return false;
  return true;
}

namespace {

class Analyzer {
public:
  Analyzer(const Kernel &K, const SizeEnv &Sizes) : K(K), Env(Sizes) {}

  AccessReport run() {
    walkStmts(K.Body);
    return std::move(Report);
  }

private:
  const Kernel &K;
  SizeEnv Env; ///< sizes + sample values for loop variables
  /// Innermost lane variable in scope (a Glb/Lcl dim-0 loop var id), or
  /// 0 when none.
  unsigned LaneVar = 0;
  AccessReport Report;

  /// A small interior sample value avoiding boundary clamps, chosen
  /// below the smallest loop extent seen so far where possible.
  static constexpr std::int64_t SampleBase = 5;

  void walkStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      walkStmt(*S);
  }

  void walkStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Store:
      noteSite(/*IsStore=*/true, S.BufferId, S.Index);
      walkExpr(*S.Value);
      return;
    case Stmt::Kind::AssignVar:
      walkExpr(*S.Value);
      return;
    case Stmt::Kind::Barrier:
      return;
    case Stmt::Kind::Loop: {
      unsigned VarId = S.LoopVar->getVarId();
      // Bind an interior sample value for this loop variable so index
      // probes avoid the boundary clamps.
      std::int64_t Extent = 0;
      // Counts may reference outer loop vars, already bound.
      Extent = S.Count->evaluate(Env);
      std::int64_t Sample =
          Extent > 2 * SampleBase ? SampleBase : std::max<std::int64_t>(
                                                     0, Extent / 2);
      Env[VarId] = Sample;
      unsigned SavedLane = LaneVar;
      bool IsLane = (S.LK == LoopKind::Glb || S.LK == LoopKind::Lcl) &&
                    S.Dim == 0;
      if (IsLane)
        LaneVar = VarId;
      walkStmts(S.Body);
      LaneVar = SavedLane;
      Env.erase(VarId);
      return;
    }
    }
    unreachable("covered switch");
  }

  void walkExpr(const KExpr &E) {
    switch (E.K) {
    case KExpr::Kind::Load:
      noteSite(/*IsStore=*/false, E.BufferId, E.Index);
      return;
    case KExpr::Kind::CallUF:
      for (const KExprPtr &A : E.Args)
        walkExpr(*A);
      return;
    case KExpr::Kind::Select:
      walkExpr(*E.Then);
      walkExpr(*E.Else);
      return;
    case KExpr::Kind::ConstScalar:
    case KExpr::Kind::IndexVal:
    case KExpr::Kind::ReadVar:
      return;
    }
    unreachable("covered switch");
  }

  void noteSite(bool IsStore, int BufferId, const AExpr &Index) {
    const BufferDecl &B = K.buffer(BufferId);
    if (B.Space != MemSpace::Global)
      return;
    AccessSite Site;
    Site.IsStore = IsStore;
    Site.BufferId = BufferId;
    Site.BufferName = B.Name;
    Site.Index = Index;

    if (LaneVar == 0 || !referencesVar(Index, LaneVar)) {
      Site.Pattern =
          LaneVar == 0 ? AccessPattern::Sequential : AccessPattern::Uniform;
      Report.Sites.push_back(std::move(Site));
      return;
    }

    // Probe linearity: index at lane, lane+1, lane+2.
    std::int64_t Saved = Env[LaneVar];
    std::int64_t V0 = Index->evaluate(Env);
    Env[LaneVar] = Saved + 1;
    std::int64_t V1 = Index->evaluate(Env);
    Env[LaneVar] = Saved + 2;
    std::int64_t V2 = Index->evaluate(Env);
    Env[LaneVar] = Saved;

    std::int64_t D1 = V1 - V0;
    std::int64_t D2 = V2 - V1;
    if (D1 != D2) {
      Site.Pattern = AccessPattern::Irregular;
    } else {
      Site.Stride = D1;
      Site.Pattern = D1 == 0   ? AccessPattern::Uniform
                     : D1 == 1 ? AccessPattern::Coalesced
                               : AccessPattern::Strided;
    }
    Report.Sites.push_back(std::move(Site));
  }

  static bool referencesVar(const AExpr &E, unsigned VarId) {
    if (E->getKind() == ArithExpr::Kind::Var)
      return E->getVarId() == VarId;
    for (const AExpr &Op : E->getOperands())
      if (referencesVar(Op, VarId))
        return true;
    return false;
  }
};

} // namespace

AccessReport lift::codegen::analyzeAccesses(const Kernel &K,
                                            const SizeEnv &Sizes) {
  Analyzer A(K, Sizes);
  return A.run();
}

//===----------------------------------------------------------------------===//
// Static region work counts
//===----------------------------------------------------------------------===//

namespace {

/// Evaluates \p E under \p Env without touching loop variables that
/// are not bound; false when any such variable appears. Loop trip
/// counts in generated kernels only reference size variables, so this
/// normally succeeds — the fallible form keeps malformed input from
/// turning a report into a fatal error.
bool tryEval(const AExpr &E, const SizeEnv &Env, std::int64_t &Out) {
  switch (E->getKind()) {
  case ArithExpr::Kind::Cst:
    Out = E->getCst();
    return true;
  case ArithExpr::Kind::Var: {
    auto It = Env.find(E->getVarId());
    if (It == Env.end())
      return false;
    Out = It->second;
    return true;
  }
  case ArithExpr::Kind::Add:
  case ArithExpr::Kind::Mul: {
    bool IsAdd = E->getKind() == ArithExpr::Kind::Add;
    std::int64_t Acc = IsAdd ? 0 : 1;
    for (const AExpr &Op : E->getOperands()) {
      std::int64_t V;
      if (!tryEval(Op, Env, V))
        return false;
      Acc = IsAdd ? Acc + V : Acc * V;
    }
    Out = Acc;
    return true;
  }
  case ArithExpr::Kind::Div:
  case ArithExpr::Kind::Mod:
  case ArithExpr::Kind::Min:
  case ArithExpr::Kind::Max: {
    std::int64_t A, B;
    if (!tryEval(E->getOperands()[0], Env, A) ||
        !tryEval(E->getOperands()[1], Env, B))
      return false;
    switch (E->getKind()) {
    case ArithExpr::Kind::Div:
      if (B == 0)
        return false;
      Out = floorDivInt(A, B);
      return true;
    case ArithExpr::Kind::Mod:
      if (B == 0)
        return false;
      Out = floorModInt(A, B);
      return true;
    case ArithExpr::Kind::Min:
      Out = A < B ? A : B;
      return true;
    default:
      Out = A > B ? A : B;
      return true;
    }
  }
  }
  unreachable("covered switch");
}

std::uint64_t tripCount(const Stmt &Loop, const SizeEnv &Env) {
  std::int64_t N = 0;
  if (!tryEval(Loop.Count, Env, N) || N < 0)
    return 0;
  return std::uint64_t(N);
}

class WorkCounter {
public:
  WorkCounter(const Kernel &K, const SizeEnv &Env) : K(K), Env(Env) {}

  RegionWork count(const Stmt &Root, std::uint64_t OuterMult) {
    Work.Iterations = tripCount(Root, Env);
    walkStmt(Root, OuterMult);
    return Work;
  }

private:
  void walkStmt(const Stmt &S, std::uint64_t Mult) {
    switch (S.K) {
    case Stmt::Kind::Store:
      if (K.buffer(S.BufferId).Space == MemSpace::Global)
        Work.BytesWritten += 4 * Mult;
      walkExpr(*S.Value, Mult);
      return;
    case Stmt::Kind::AssignVar:
      walkExpr(*S.Value, Mult);
      return;
    case Stmt::Kind::Loop: {
      std::uint64_t Inner = Mult * tripCount(S, Env);
      for (const StmtPtr &C : S.Body)
        walkStmt(*C, Inner);
      return;
    }
    case Stmt::Kind::Barrier:
      return;
    }
  }

  void walkExpr(const KExpr &E, std::uint64_t Mult) {
    switch (E.K) {
    case KExpr::Kind::Load:
      if (K.buffer(E.BufferId).Space == MemSpace::Global)
        Work.BytesRead += 4 * Mult;
      return;
    case KExpr::Kind::CallUF:
      Work.Flops += std::uint64_t(E.UF->getFlopCost()) * Mult;
      for (const KExprPtr &A : E.Args)
        walkExpr(*A, Mult);
      return;
    case KExpr::Kind::Select:
      // Count the in-bounds branch on every lane (see header comment).
      walkExpr(*E.Then, Mult);
      return;
    case KExpr::Kind::ConstScalar:
    case KExpr::Kind::IndexVal:
    case KExpr::Kind::ReadVar:
      return;
    }
  }

  const Kernel &K;
  const SizeEnv &Env;
  RegionWork Work;
};

/// Product of the trip counts of every loop strictly enclosing
/// \p Target, or false when \p Target is not in this statement tree.
bool enclosingMult(const std::vector<StmtPtr> &Body, const Stmt *Target,
                   const SizeEnv &Env, std::uint64_t &Mult) {
  for (const StmtPtr &S : Body) {
    if (S.get() == Target)
      return true;
    if (S->K != Stmt::Kind::Loop)
      continue;
    std::uint64_t Here = Mult;
    Mult *= tripCount(*S, Env);
    if (enclosingMult(S->Body, Target, Env, Mult))
      return true;
    Mult = Here;
  }
  return false;
}

} // namespace

RegionWork lift::codegen::staticRegionWork(const Kernel &K,
                                           const Stmt &RegionRoot,
                                           const SizeEnv &Sizes) {
  std::uint64_t Mult = 1;
  if (!enclosingMult(K.Body, &RegionRoot, Sizes, Mult))
    fatalError("staticRegionWork: region root is not a statement of the "
               "kernel");
  WorkCounter C(K, Sizes);
  RegionWork W = C.count(RegionRoot, Mult);
  W.Iterations *= Mult;
  return W;
}
