//===- AccessAnalysis.cpp - Static memory-access analysis --------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/AccessAnalysis.h"

#include "support/Support.h"

using namespace lift;
using namespace lift::ocl;
using namespace lift::codegen;

const char *lift::codegen::accessPatternName(AccessPattern P) {
  switch (P) {
  case AccessPattern::Coalesced:
    return "coalesced";
  case AccessPattern::Uniform:
    return "uniform";
  case AccessPattern::Strided:
    return "strided";
  case AccessPattern::Irregular:
    return "irregular";
  case AccessPattern::Sequential:
    return "sequential";
  }
  unreachable("covered switch");
}

int AccessReport::count(AccessPattern P) const {
  int N = 0;
  for (const AccessSite &S : Sites)
    N += S.Pattern == P;
  return N;
}

bool AccessReport::fullyCoalesced() const {
  for (const AccessSite &S : Sites)
    if (S.Pattern == AccessPattern::Strided ||
        S.Pattern == AccessPattern::Irregular)
      return false;
  return true;
}

namespace {

class Analyzer {
public:
  Analyzer(const Kernel &K, const SizeEnv &Sizes) : K(K), Env(Sizes) {}

  AccessReport run() {
    walkStmts(K.Body);
    return std::move(Report);
  }

private:
  const Kernel &K;
  SizeEnv Env; ///< sizes + sample values for loop variables
  /// Innermost lane variable in scope (a Glb/Lcl dim-0 loop var id), or
  /// 0 when none.
  unsigned LaneVar = 0;
  AccessReport Report;

  /// A small interior sample value avoiding boundary clamps, chosen
  /// below the smallest loop extent seen so far where possible.
  static constexpr std::int64_t SampleBase = 5;

  void walkStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      walkStmt(*S);
  }

  void walkStmt(const Stmt &S) {
    switch (S.K) {
    case Stmt::Kind::Store:
      noteSite(/*IsStore=*/true, S.BufferId, S.Index);
      walkExpr(*S.Value);
      return;
    case Stmt::Kind::AssignVar:
      walkExpr(*S.Value);
      return;
    case Stmt::Kind::Barrier:
      return;
    case Stmt::Kind::Loop: {
      unsigned VarId = S.LoopVar->getVarId();
      // Bind an interior sample value for this loop variable so index
      // probes avoid the boundary clamps.
      std::int64_t Extent = 0;
      // Counts may reference outer loop vars, already bound.
      Extent = S.Count->evaluate(Env);
      std::int64_t Sample =
          Extent > 2 * SampleBase ? SampleBase : std::max<std::int64_t>(
                                                     0, Extent / 2);
      Env[VarId] = Sample;
      unsigned SavedLane = LaneVar;
      bool IsLane = (S.LK == LoopKind::Glb || S.LK == LoopKind::Lcl) &&
                    S.Dim == 0;
      if (IsLane)
        LaneVar = VarId;
      walkStmts(S.Body);
      LaneVar = SavedLane;
      Env.erase(VarId);
      return;
    }
    }
    unreachable("covered switch");
  }

  void walkExpr(const KExpr &E) {
    switch (E.K) {
    case KExpr::Kind::Load:
      noteSite(/*IsStore=*/false, E.BufferId, E.Index);
      return;
    case KExpr::Kind::CallUF:
      for (const KExprPtr &A : E.Args)
        walkExpr(*A);
      return;
    case KExpr::Kind::Select:
      walkExpr(*E.Then);
      walkExpr(*E.Else);
      return;
    case KExpr::Kind::ConstScalar:
    case KExpr::Kind::IndexVal:
    case KExpr::Kind::ReadVar:
      return;
    }
    unreachable("covered switch");
  }

  void noteSite(bool IsStore, int BufferId, const AExpr &Index) {
    const BufferDecl &B = K.buffer(BufferId);
    if (B.Space != MemSpace::Global)
      return;
    AccessSite Site;
    Site.IsStore = IsStore;
    Site.BufferId = BufferId;
    Site.BufferName = B.Name;
    Site.Index = Index;

    if (LaneVar == 0 || !referencesVar(Index, LaneVar)) {
      Site.Pattern =
          LaneVar == 0 ? AccessPattern::Sequential : AccessPattern::Uniform;
      Report.Sites.push_back(std::move(Site));
      return;
    }

    // Probe linearity: index at lane, lane+1, lane+2.
    std::int64_t Saved = Env[LaneVar];
    std::int64_t V0 = Index->evaluate(Env);
    Env[LaneVar] = Saved + 1;
    std::int64_t V1 = Index->evaluate(Env);
    Env[LaneVar] = Saved + 2;
    std::int64_t V2 = Index->evaluate(Env);
    Env[LaneVar] = Saved;

    std::int64_t D1 = V1 - V0;
    std::int64_t D2 = V2 - V1;
    if (D1 != D2) {
      Site.Pattern = AccessPattern::Irregular;
    } else {
      Site.Stride = D1;
      Site.Pattern = D1 == 0   ? AccessPattern::Uniform
                     : D1 == 1 ? AccessPattern::Coalesced
                               : AccessPattern::Strided;
    }
    Report.Sites.push_back(std::move(Site));
  }

  static bool referencesVar(const AExpr &E, unsigned VarId) {
    if (E->getKind() == ArithExpr::Kind::Var)
      return E->getVarId() == VarId;
    for (const AExpr &Op : E->getOperands())
      if (referencesVar(Op, VarId))
        return true;
    return false;
  }
};

} // namespace

AccessReport lift::codegen::analyzeAccesses(const Kernel &K,
                                            const SizeEnv &Sizes) {
  Analyzer A(K, Sizes);
  return A.run();
}
