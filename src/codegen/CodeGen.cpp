//===- CodeGen.cpp - Low-level Lift IR to kernel AST ------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/CodeGen.h"

#include "codegen/View.h"
#include "ir/TypeInference.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/Support.h"

#include <cassert>
#include <optional>
#include <unordered_map>

using namespace lift;
using namespace lift::ir;
using namespace lift::ocl;
using namespace lift::codegen;

namespace {

class Generator {
public:
  Compiled run(const Program &P, const std::string &Name) {
    if (!P->getType())
      inferTypes(P);
    Compiled Result;
    K.Name = Name;

    for (const ParamPtr &In : P->getParams()) {
      int Id = newBuffer("in" + std::to_string(Result.InputBufferIds.size()),
                         MemSpace::Global, In->getDeclaredType(),
                         /*IsInput=*/true, /*IsOutput=*/false);
      Result.InputBufferIds.push_back(Id);
      ViewEnv[In.get()] = vMemory(Id, In->getDeclaredType());
    }

    const TypePtr &OutTy = P->getBody()->getType();
    int OutId = newBuffer("out", MemSpace::Global, OutTy, /*IsInput=*/false,
                          /*IsOutput=*/true);
    Result.OutputBufferId = OutId;

    CurBlock = &K.Body;
    genToView(P->getBody(), vMemory(OutId, OutTy));

    collectSizeArgs();
    Result.K = std::move(K);
    return Result;
  }

private:
  Kernel K;
  std::unordered_map<const ParamExpr *, ViewPtr> ViewEnv;
  std::vector<StmtPtr> *CurBlock = nullptr;
  int NextTmp = 0;
  int NextLoopVar = 0;

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  int newBuffer(const std::string &Name, MemSpace Space, const TypePtr &Ty,
                bool IsInput, bool IsOutput) {
    BufferDecl B;
    B.Id = int(K.Buffers.size());
    B.Name = Name;
    B.ElemKind = ultimateElem(Ty)->getScalarKind();
    B.Space = Space;
    B.NumElems = elementCount(Ty);
    B.IsInput = IsInput;
    B.IsOutput = IsOutput;
    K.Buffers.push_back(B);
    return B.Id;
  }

  int newRegister(ScalarKind Kind) {
    RegisterDecl R;
    R.Id = int(K.Registers.size());
    R.Name = "acc" + std::to_string(R.Id);
    R.Kind = Kind;
    K.Registers.push_back(R);
    return R.Id;
  }

  /// A fresh loop variable with range [0, Count-1] when Count is
  /// constant (tight ranges enable div/mod simplification in views).
  AExpr newLoopVar(const AExpr &Count) {
    Range R;
    R.Min = 0;
    if (Count->getKind() == ArithExpr::Kind::Cst)
      R.Max = Count->getCst() - 1;
    return var("i" + std::to_string(NextLoopVar++), R);
  }

  void emit(StmtPtr S) { CurBlock->push_back(std::move(S)); }

  //===--------------------------------------------------------------------===//
  // Views for data expressions
  //===--------------------------------------------------------------------===//

  static bool isLayoutPrim(Prim P) {
    switch (P) {
    case Prim::Zip:
    case Prim::Split:
    case Prim::Join:
    case Prim::Transpose:
    case Prim::Slide:
    case Prim::SlideClamp:
    case Prim::JoinClamp:
    case Prim::Pad:
    case Prim::At:
    case Prim::Get:
    case Prim::Generate:
      return true;
    default:
      return false;
    }
  }

  /// Returns a view of \p E's value, materializing compute expressions
  /// into temporary buffers.
  ViewPtr valueOf(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal:
      return vScalar(kConst(dynCast<LiteralExpr>(E)->getValue()));
    case Expr::Kind::Param: {
      auto It = ViewEnv.find(static_cast<const ParamExpr *>(E.get()));
      if (It == ViewEnv.end())
        fatalError("codegen: unbound parameter " +
                   dynCast<ParamExpr>(E)->getName());
      return It->second;
    }
    case Expr::Kind::Lambda:
      fatalError("codegen: lambda outside function position");
    case Expr::Kind::Call:
      break;
    }

    const auto *C = dynCast<CallExpr>(E);
    if (isLayoutPrim(C->getPrim()))
      return layoutView(*C);

    // High-level maps whose body is pure layout (the map(slide) /
    // map(transpose) compositions of slideNd/padNd, paper 3.4) are
    // themselves layout: beta-reduce them lazily during resolution.
    if (C->getPrim() == Prim::Map) {
      const auto F = std::static_pointer_cast<LambdaExpr>(C->getArgs()[0]);
      if (isLayoutOnly(F->getBody()))
        return vMapLazy(F, valueOf(C->getArgs()[1]));
      fatalError("codegen: high-level map with compute body used as "
                 "data; lower it first: " + ir::toString(E));
    }

    // A compute expression used as data.
    if (E->getType()->getKind() == Type::Kind::Scalar)
      return vScalar(genScalar(E));
    return materialize(E);
  }

  /// True when \p E consists only of layout primitives, parameters and
  /// layout-only maps -- i.e. it can live entirely in the view system.
  static bool isLayoutOnly(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Param:
      return true;
    case Expr::Kind::Literal:
    case Expr::Kind::Lambda:
      return false;
    case Expr::Kind::Call:
      break;
    }
    const auto *C = dynCast<CallExpr>(E);
    if (C->getPrim() == Prim::Map) {
      const auto *F = dynCast<LambdaExpr>(C->getArgs()[0]);
      return isLayoutOnly(F->getBody()) && isLayoutOnly(C->getArgs()[1]);
    }
    if (!isLayoutPrim(C->getPrim()))
      return false;
    if (C->getPrim() == Prim::Generate)
      return true;
    for (const ExprPtr &A : C->getArgs())
      if (!isLayoutOnly(A))
        return false;
    return true;
  }

  ViewPtr layoutView(const CallExpr &C) {
    switch (C.getPrim()) {
    case Prim::Zip: {
      std::vector<ViewPtr> Comps;
      for (const ExprPtr &A : C.getArgs())
        Comps.push_back(valueOf(A));
      return vTuple(std::move(Comps));
    }
    case Prim::Split:
      return vSplit(C.Factor, valueOf(C.getArgs()[0]));
    case Prim::Join: {
      const TypePtr &InTy = C.getArgs()[0]->getType();
      return vJoin(InTy->getElem()->getSize(), valueOf(C.getArgs()[0]));
    }
    case Prim::Transpose:
      return vTranspose(valueOf(C.getArgs()[0]));
    case Prim::Slide:
      return vSlide(C.Size, C.Step, valueOf(C.getArgs()[0]));
    case Prim::SlideClamp: {
      // Window w starts at min(w*step, n - size).
      const TypePtr &InTy = C.getArgs()[0]->getType();
      return vSlideClamped(C.Size, C.Step, sub(InTy->getSize(), C.Size),
                           valueOf(C.getArgs()[0]));
    }
    case Prim::JoinClamp: {
      // Element o lives in tile o/k at offset o - min((o/k)*k, m - k).
      const TypePtr &InTy = C.getArgs()[0]->getType();
      AExpr K = InTy->getElem()->getSize();
      return vJoinClamped(K, sub(C.Size, K), valueOf(C.getArgs()[0]));
    }
    case Prim::Pad: {
      const TypePtr &InTy = C.getArgs()[0]->getType();
      return vPad(C.PadL, InTy->getSize(), C.Bdy, valueOf(C.getArgs()[0]));
    }
    case Prim::At:
      return vAccess(cst(C.Index), valueOf(C.getArgs()[0]));
    case Prim::Get:
      return vTupleAccess(C.Index, valueOf(C.getArgs()[0]));
    case Prim::Generate:
      return vGenerate(
          std::static_pointer_cast<LambdaExpr>(C.getArgs()[0]), C.GenSizes);
    default:
      unreachable("not a layout primitive");
    }
  }

  /// Evaluates compute expression \p E into a fresh buffer and returns
  /// its memory view. The buffer's space comes from the expression's
  /// producing lambda (toLocal/toGlobal/toPrivate); the default is a
  /// global temporary.
  ViewPtr materialize(const ExprPtr &E) {
    MemSpace Space = MemSpace::Global;
    std::string Prefix = "tmp";
    if (const auto *C = dynCast<CallExpr>(E)) {
      if (isMapPrim(C->getPrim())) {
        const auto *F = dynCast<LambdaExpr>(C->getArgs()[0]);
        if (F->getAddrSpace() == AddrSpace::Local) {
          Space = MemSpace::Local;
          Prefix = "lcl";
        } else if (F->getAddrSpace() == AddrSpace::Private) {
          Space = MemSpace::Private;
          Prefix = "prv";
        }
      }
    }
    int Id = newBuffer(Prefix + std::to_string(NextTmp++), Space,
                       E->getType(), false, false);
    ViewPtr Mem = vMemory(Id, E->getType());
    genToView(E, Mem);
    // Local results are read by other work-items: synchronize.
    if (Space == MemSpace::Local)
      emit(sBarrier());
    return Mem;
  }

  //===--------------------------------------------------------------------===//
  // Statement generation
  //===--------------------------------------------------------------------===//

  /// Emits statements computing \p E into \p Out.
  void genToView(const ExprPtr &E, const ViewPtr &Out) {
    if (const auto *C = dynCast<CallExpr>(E)) {
      // A reshaping map around a producer: push the inverted element
      // layout onto the output view and recurse into the map's input.
      if (C->getPrim() == Prim::Map) {
        const auto F = std::static_pointer_cast<LambdaExpr>(C->getArgs()[0]);
        if (auto Inv = buildElementInverse(F->getBody(),
                                           F->getParams()[0].get())) {
          genToView(C->getArgs()[1], vMapLazyFn(*Inv, Out));
          return;
        }
      }
      if (isMapPrim(C->getPrim())) {
        genMap(*C, Out);
        return;
      }
      if (isReducePrim(C->getPrim())) {
        genReduceStore(*C, Out);
        return;
      }
      if (C->getPrim() == Prim::Iterate)
        fatalError("codegen: iterate must be unrolled by the rewriter "
                   "before code generation");
      // Layout on the *output* path: push the inverse transform onto
      // the output view and recurse into the producer, so e.g. the
      // tiling rule's join(mapWrg(...)) writes directly to the right
      // offsets (paper 4.1).
      if (C->getPrim() == Prim::Join) {
        const TypePtr &ArgTy = C->getArgs()[0]->getType();
        genToView(C->getArgs()[0],
                  vSplit(ArgTy->getElem()->getSize(), Out));
        return;
      }
      if (C->getPrim() == Prim::JoinClamp) {
        // The producer's tile w element j must land at out[min(w*k,
        // m-k)+j]: exactly a clamped slide view of the output buffer.
        // Overlap positions are stored more than once with identical
        // values (last writer wins).
        const TypePtr &ArgTy = C->getArgs()[0]->getType();
        AExpr K = ArgTy->getElem()->getSize();
        genToView(C->getArgs()[0],
                  vSlideClamped(K, K, sub(C->Size, K), Out));
        return;
      }
      if (C->getPrim() == Prim::Split) {
        genToView(C->getArgs()[0], vJoin(C->Factor, Out));
        return;
      }
      if (C->getPrim() == Prim::Transpose) {
        genToView(C->getArgs()[0], vTranspose(Out));
        return;
      }
    }
    if (E->getType()->getKind() == Type::Kind::Scalar) {
      // Covers user-function calls, literals and at(0, reduceSeq(...));
      // genScalar keeps reduction results in registers.
      storeScalar(genScalar(E), Out);
      return;
    }
    // Pure layout (or parameter) written to memory: an element-wise copy.
    emitCopy(valueOf(E), Out, E->getType());
  }

  void genMap(const CallExpr &C, const ViewPtr &Out) {
    LoopKind LK;
    switch (C.getPrim()) {
    case Prim::MapGlb:
      LK = LoopKind::Glb;
      break;
    case Prim::MapWrg:
      LK = LoopKind::Wrg;
      break;
    case Prim::MapLcl:
      LK = LoopKind::Lcl;
      break;
    case Prim::MapSeq:
      LK = LoopKind::Seq;
      break;
    case Prim::Map:
      fatalError("codegen: high-level map reached code generation; "
                 "lower it to mapGlb/mapWrg/mapLcl/mapSeq first");
    default:
      unreachable("not a map primitive");
    }

    const auto F = std::static_pointer_cast<LambdaExpr>(C.getArgs()[0]);
    ViewPtr In = valueOf(C.getArgs()[1]);
    AExpr Count = C.getType()->getSize();
    AExpr I = newLoopVar(Count);

    std::vector<StmtPtr> BodyStmts;
    std::vector<StmtPtr> *Saved = CurBlock;
    CurBlock = &BodyStmts;
    ViewEnv[F->getParams()[0].get()] = vAccess(I, In);
    genToView(F->getBody(), vAccess(I, Out));
    CurBlock = Saved;

    emit(sLoop(LK, C.Dim, I, Count, std::move(BodyStmts)));
  }

  /// Generates a reduce-family expression into an accumulator register
  /// and returns the register id.
  int genReduceToRegister(const CallExpr &C) {
    const auto F = std::static_pointer_cast<LambdaExpr>(C.getArgs()[0]);
    const ExprPtr &Init = C.getArgs()[1];
    if (Init->getType()->getKind() != Type::Kind::Scalar)
      fatalError("codegen: only scalar reduction accumulators are "
                 "supported");
    int Acc = newRegister(Init->getType()->getScalarKind());
    emit(sAssign(Acc, genScalar(Init)));

    ViewPtr In = valueOf(C.getArgs()[2]);
    AExpr Count = C.getArgs()[2]->getType()->getSize();
    AExpr I = newLoopVar(Count);

    std::vector<StmtPtr> BodyStmts;
    std::vector<StmtPtr> *Saved = CurBlock;
    CurBlock = &BodyStmts;
    ViewEnv[F->getParams()[0].get()] = vScalar(kReadVar(Acc));
    ViewEnv[F->getParams()[1].get()] = vAccess(I, In);
    KExprPtr Updated = genScalar(F->getBody());
    emit(sAssign(Acc, Updated));
    CurBlock = Saved;

    bool Unroll = C.getPrim() == Prim::ReduceSeqUnroll;
    emit(sLoop(LoopKind::Seq, 0, I, Count, std::move(BodyStmts), Unroll));
    return Acc;
  }

  void genReduceStore(const CallExpr &C, const ViewPtr &Out) {
    if (C.getPrim() == Prim::Reduce)
      fatalError("codegen: high-level reduce reached code generation; "
                 "lower it to reduceSeq first");
    int Acc = genReduceToRegister(C);
    // The result type is [U]1: store the accumulator at index 0.
    storeScalar(kReadVar(Acc), vAccess(cst(0), Out));
  }

  void storeScalar(KExprPtr Val, const ViewPtr &Out) {
    StoreTarget T = resolveStore(Out, callbacks());
    emit(sStore(T.BufferId, T.Index, std::move(Val)));
  }

  /// Builds, when possible, the elementwise *inverse* of a layout-only
  /// lambda consisting of Join/Split/Transpose over its parameter, as a
  /// view transformer: writing x through Inv(out) is equivalent to
  /// writing chain(x) to out. Enables reshaping maps (untileNd) around
  /// producers to vanish into output index arithmetic.
  std::optional<std::function<ViewPtr(const ViewPtr &)>>
  buildElementInverse(const ExprPtr &Body, const ParamExpr *P) {
    if (Body.get() == P)
      return std::function<ViewPtr(const ViewPtr &)>(
          [](const ViewPtr &V) { return V; });
    const auto *C = dynCast<CallExpr>(Body);
    if (!C || C->getArgs().empty())
      return std::nullopt;
    const ExprPtr &Inner = C->getArgs()[0];
    switch (C->getPrim()) {
    case Prim::Join: {
      // forward join merges [a][m] -> [a*m]; inverse splits by m.
      const TypePtr &InnerTy = Inner->getType();
      if (!InnerTy || InnerTy->getKind() != Type::Kind::Array)
        return std::nullopt;
      AExpr M = InnerTy->getElem()->getSize();
      auto Rec = buildElementInverse(Inner, P);
      if (!Rec)
        return std::nullopt;
      return std::function<ViewPtr(const ViewPtr &)>(
          [M, Rec](const ViewPtr &V) { return (*Rec)(vSplit(M, V)); });
    }
    case Prim::JoinClamp: {
      // forward joinClamp merges [t][k] -> [m] with clamped tile
      // starts; inverse views the output as a clamped k/k slide.
      const TypePtr &InnerTy = Inner->getType();
      if (!InnerTy || InnerTy->getKind() != Type::Kind::Array ||
          InnerTy->getElem()->getKind() != Type::Kind::Array)
        return std::nullopt;
      AExpr K = InnerTy->getElem()->getSize();
      AExpr ClampMax = sub(C->Size, K);
      auto Rec = buildElementInverse(Inner, P);
      if (!Rec)
        return std::nullopt;
      return std::function<ViewPtr(const ViewPtr &)>(
          [K, ClampMax, Rec](const ViewPtr &V) {
            return (*Rec)(vSlideClamped(K, K, ClampMax, V));
          });
    }
    case Prim::Split: {
      AExpr M = C->Factor;
      auto Rec = buildElementInverse(Inner, P);
      if (!Rec)
        return std::nullopt;
      return std::function<ViewPtr(const ViewPtr &)>(
          [M, Rec](const ViewPtr &V) { return (*Rec)(vJoin(M, V)); });
    }
    case Prim::Transpose: {
      auto Rec = buildElementInverse(Inner, P);
      if (!Rec)
        return std::nullopt;
      return std::function<ViewPtr(const ViewPtr &)>(
          [Rec](const ViewPtr &V) { return (*Rec)(vTranspose(V)); });
    }
    case Prim::Map: {
      // map(g) applied along the way (e.g. map(map(join)) in 3D
      // untiling): invert g elementwise one level deeper. Note the
      // map's data argument is getArgs()[1].
      const auto G = std::static_pointer_cast<LambdaExpr>(C->getArgs()[0]);
      auto InvG = buildElementInverse(G->getBody(), G->getParams()[0].get());
      auto Rec = buildElementInverse(C->getArgs()[1], P);
      if (!InvG || !Rec)
        return std::nullopt;
      auto InvGFn = *InvG;
      return std::function<ViewPtr(const ViewPtr &)>(
          [InvGFn, Rec](const ViewPtr &V) {
            return (*Rec)(vMapLazyFn(InvGFn, V));
          });
    }
    default:
      return std::nullopt;
    }
  }

  /// Copies \p Ty-shaped data from \p In to \p Out with sequential
  /// loops (used when a layout expression must land in memory).
  void emitCopy(const ViewPtr &In, const ViewPtr &Out, const TypePtr &Ty) {
    if (Ty->getKind() == Type::Kind::Scalar) {
      storeScalar(loadScalar(In), Out);
      return;
    }
    if (Ty->getKind() == Type::Kind::Tuple)
      fatalError("codegen: cannot copy tuple values to memory");
    AExpr Count = Ty->getSize();
    AExpr I = newLoopVar(Count);
    std::vector<StmtPtr> BodyStmts;
    std::vector<StmtPtr> *Saved = CurBlock;
    CurBlock = &BodyStmts;
    emitCopy(vAccess(I, In), vAccess(I, Out), Ty->getElem());
    CurBlock = Saved;
    emit(sLoop(LoopKind::Seq, 0, I, Count, std::move(BodyStmts)));
  }

  //===--------------------------------------------------------------------===//
  // Scalar expression generation
  //===--------------------------------------------------------------------===//

  ResolveCallbacks callbacks() {
    ResolveCallbacks CB;
    CB.InlineGenerate = [this](const LambdaPtr &F,
                               const std::vector<AExpr> &Indices) {
      return inlineGenerator(F, Indices);
    };
    CB.ExpandMap = [this](const LambdaPtr &F, const ViewPtr &Elem) {
      ViewEnv[F->getParams()[0].get()] = Elem;
      return valueOf(F->getBody());
    };
    return CB;
  }

  KExprPtr loadScalar(const ViewPtr &V) { return resolveLoad(V, callbacks()); }

  KExprPtr inlineGenerator(const LambdaPtr &F,
                           const std::vector<AExpr> &Indices) {
    assert(F->getParams().size() == Indices.size() && "generator arity");
    for (std::size_t I = 0, E = Indices.size(); I != E; ++I)
      ViewEnv[F->getParams()[I].get()] = vScalar(kIndexVal(Indices[I]));
    return genScalar(F->getBody());
  }

  /// Generates a scalar-typed expression; may emit statements (e.g. a
  /// reduction loop feeding a register) into the current block.
  KExprPtr genScalar(const ExprPtr &E) {
    switch (E->getKind()) {
    case Expr::Kind::Literal:
      return kConst(dynCast<LiteralExpr>(E)->getValue());
    case Expr::Kind::Param:
      return loadScalar(valueOf(E));
    case Expr::Kind::Lambda:
      fatalError("codegen: lambda in scalar position");
    case Expr::Kind::Call:
      break;
    }

    const auto *C = dynCast<CallExpr>(E);
    switch (C->getPrim()) {
    case Prim::UserFunCall: {
      std::vector<KExprPtr> Args;
      Args.reserve(C->getArgs().size());
      for (const ExprPtr &A : C->getArgs())
        Args.push_back(genScalar(A));
      K.noteUserFun(C->UF);
      return kCallUF(C->UF, std::move(Args));
    }
    case Prim::SizeVal:
      return kIndexVal(C->Size);
    case Prim::At: {
      // at(0, reduceSeq(...)): keep the result in its register instead
      // of bouncing through memory — this matches Lift's accumulator
      // code generation.
      if (const auto *Inner = dynCast<CallExpr>(C->getArgs()[0])) {
        if (isReducePrim(Inner->getPrim()) && C->Index == 0) {
          if (Inner->getPrim() == Prim::Reduce)
            fatalError("codegen: high-level reduce reached code "
                       "generation; lower it to reduceSeq first");
          return kReadVar(genReduceToRegister(*Inner));
        }
      }
      return loadScalar(valueOf(E));
    }
    default:
      // Any other scalar-typed expression is layout over data.
      return loadScalar(valueOf(E));
    }
  }

  //===--------------------------------------------------------------------===//
  // Size argument collection
  //===--------------------------------------------------------------------===//

  void collectVarsIn(const AExpr &A, std::vector<unsigned> &Bound,
                     std::vector<std::pair<unsigned, std::string>> &Out) {
    if (!A)
      return;
    collectFreeVarExprs(A, Bound, Out);
  }

  static void collectFreeVarExprs(
      const AExpr &A, const std::vector<unsigned> &Bound,
      std::vector<std::pair<unsigned, std::string>> &Out) {
    if (A->getKind() == ArithExpr::Kind::Var) {
      unsigned Id = A->getVarId();
      for (unsigned B : Bound)
        if (B == Id)
          return;
      for (const auto &[ExistingId, Name] : Out)
        if (ExistingId == Id)
          return;
      Out.emplace_back(Id, A->getVarName());
      return;
    }
    for (const AExpr &Op : A->getOperands())
      collectFreeVarExprs(Op, Bound, Out);
  }

  void collectStmtVars(const StmtPtr &S, std::vector<unsigned> &Bound,
                       std::vector<std::pair<unsigned, std::string>> &Out) {
    switch (S->K) {
    case Stmt::Kind::Store:
      collectVarsIn(S->Index, Bound, Out);
      collectExprVars(S->Value, Bound, Out);
      return;
    case Stmt::Kind::AssignVar:
      collectExprVars(S->Value, Bound, Out);
      return;
    case Stmt::Kind::Barrier:
      return;
    case Stmt::Kind::Loop: {
      collectVarsIn(S->Count, Bound, Out);
      Bound.push_back(S->LoopVar->getVarId());
      for (const StmtPtr &B : S->Body)
        collectStmtVars(B, Bound, Out);
      Bound.pop_back();
      return;
    }
    }
  }

  void collectExprVars(const KExprPtr &E, std::vector<unsigned> &Bound,
                       std::vector<std::pair<unsigned, std::string>> &Out) {
    if (!E)
      return;
    collectVarsIn(E->Index, Bound, Out);
    for (const KExprPtr &A : E->Args)
      collectExprVars(A, Bound, Out);
    for (const BoundsCheck &C : E->Checks) {
      collectVarsIn(C.Idx, Bound, Out);
      collectVarsIn(C.Lo, Bound, Out);
      collectVarsIn(C.Hi, Bound, Out);
    }
    collectExprVars(E->Then, Bound, Out);
    collectExprVars(E->Else, Bound, Out);
  }

  void collectSizeArgs() {
    std::vector<unsigned> Bound;
    std::vector<std::pair<unsigned, std::string>> Args;
    for (const BufferDecl &B : K.Buffers)
      collectVarsIn(B.NumElems, Bound, Args);
    for (const StmtPtr &S : K.Body)
      collectStmtVars(S, Bound, Args);
    K.SizeArgs = std::move(Args);
  }
};

} // namespace

Compiled lift::codegen::compileProgram(const Program &P,
                                       const std::string &Name) {
  obs::Span CodegenSpan("codegen", "codegen");
  CodegenSpan.arg("kernel", Name);
  Generator G;
  Compiled C = G.run(P, Name);
  obs::Registry::global().counter("codegen.kernels").inc();
  CodegenSpan.arg("buffers", std::int64_t(C.K.Buffers.size()));
  return C;
}
