//===- Runner.cpp - Compile-and-simulate convenience -------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"

#include "obs/Trace.h"
#include "ocl/ParallelSim.h"
#include "support/Support.h"

using namespace lift;
using namespace lift::codegen;
using namespace lift::ocl;

RunResult lift::codegen::runCompiled(
    const Compiled &C, const std::vector<std::vector<float>> &Inputs,
    const SizeEnv &Sizes, const CacheConfig &Cache, unsigned Jobs) {
  if (Inputs.size() != C.InputBufferIds.size())
    fatalError("runCompiled: input count mismatch");
  obs::Span SimSpan("simulate", "sim");
  SimSpan.arg("kernel", C.K.Name);
  SimSpan.arg("jobs", std::int64_t(Jobs));
  RunResult R;
  if (Jobs == 1) {
    // Legacy path: the tree-walking sequential simulator.
    Executor Ex(C.K, Sizes, Cache);
    for (std::size_t I = 0, E = Inputs.size(); I != E; ++I)
      Ex.bindInput(C.InputBufferIds[I], Inputs[I]);
    Ex.run();
    R.Output = Ex.bufferContents(C.OutputBufferId);
    R.Counters = Ex.counters();
  } else {
    // Compiled engine; shards the outermost parallel loop nest over
    // min(Jobs, pool workers) threads (Jobs == 0: all workers). The
    // counters are bit-identical to the Executor path by construction
    // (see ParallelSim.h).
    ParallelExecutor Ex(C.K, Sizes, Cache, Jobs);
    for (std::size_t I = 0, E = Inputs.size(); I != E; ++I)
      Ex.bindInput(C.InputBufferIds[I], Inputs[I]);
    Ex.run();
    R.Output = Ex.bufferContents(C.OutputBufferId);
    R.Counters = Ex.counters();
  }
  R.NDRange = analyzeNDRange(C.K, Sizes);
  // Whole-process roll-up. Not part of the jobs-invariant metric set:
  // tuner-level memoization can skip entire executions, so these totals
  // legitimately depend on the memo hit pattern (the per-candidate
  // roll-ups under "tuner.sim." are the deterministic ones).
  exportCountersToMetrics(R.Counters, "sim.");
  return R;
}

RunResult lift::codegen::runOnSim(
    const ir::Program &P, const std::vector<std::vector<float>> &Inputs,
    const SizeEnv &Sizes, const CacheConfig &Cache, unsigned Jobs) {
  Compiled C = compileProgram(P, "kernel_fn");
  return runCompiled(C, Inputs, Sizes, Cache, Jobs);
}
