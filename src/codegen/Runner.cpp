//===- Runner.cpp - Compile-and-simulate convenience -------------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/Runner.h"

#include "support/Support.h"

using namespace lift;
using namespace lift::codegen;
using namespace lift::ocl;

RunResult lift::codegen::runCompiled(
    const Compiled &C, const std::vector<std::vector<float>> &Inputs,
    const SizeEnv &Sizes, const CacheConfig &Cache) {
  if (Inputs.size() != C.InputBufferIds.size())
    fatalError("runCompiled: input count mismatch");
  Executor Ex(C.K, Sizes, Cache);
  for (std::size_t I = 0, E = Inputs.size(); I != E; ++I)
    Ex.bindInput(C.InputBufferIds[I], Inputs[I]);
  Ex.run();
  RunResult R;
  R.Output = Ex.bufferContents(C.OutputBufferId);
  R.Counters = Ex.counters();
  R.NDRange = analyzeNDRange(C.K, Sizes);
  return R;
}

RunResult lift::codegen::runOnSim(
    const ir::Program &P, const std::vector<std::vector<float>> &Inputs,
    const SizeEnv &Sizes, const CacheConfig &Cache) {
  Compiled C = compileProgram(P, "kernel_fn");
  return runCompiled(C, Inputs, Sizes, Cache);
}
