//===- View.cpp - Lift views: data layout as index arithmetic ---------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "codegen/View.h"

#include "support/Support.h"

#include <cassert>
#include <optional>

using namespace lift;
using namespace lift::ir;
using namespace lift::codegen;
using namespace lift::ocl;

static std::shared_ptr<View> makeView(View::Kind K) {
  auto V = std::make_shared<View>();
  V->K = K;
  return V;
}

ViewPtr lift::codegen::vMemory(int BufferId, TypePtr MemType) {
  auto V = makeView(View::Kind::Memory);
  V->BufferId = BufferId;
  V->MemType = std::move(MemType);
  return V;
}

ViewPtr lift::codegen::vTuple(std::vector<ViewPtr> Comps) {
  auto V = makeView(View::Kind::Tuple);
  V->Comps = std::move(Comps);
  return V;
}

ViewPtr lift::codegen::vSplit(AExpr ChunkSize, ViewPtr Base) {
  auto V = makeView(View::Kind::Split);
  V->ChunkSize = std::move(ChunkSize);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vJoin(AExpr InnerSize, ViewPtr Base) {
  auto V = makeView(View::Kind::Join);
  V->InnerSize = std::move(InnerSize);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vSlide(AExpr Size, AExpr Step, ViewPtr Base) {
  auto V = makeView(View::Kind::Slide);
  V->Size = std::move(Size);
  V->Step = std::move(Step);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vSlideClamped(AExpr Size, AExpr Step, AExpr ClampMax,
                                     ViewPtr Base) {
  auto V = makeView(View::Kind::Slide);
  V->Size = std::move(Size);
  V->Step = std::move(Step);
  V->ClampMax = std::move(ClampMax);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vJoinClamped(AExpr InnerSize, AExpr ClampMax,
                                    ViewPtr Base) {
  auto V = makeView(View::Kind::Join);
  V->InnerSize = std::move(InnerSize);
  V->ClampMax = std::move(ClampMax);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vPad(AExpr PadLeft, AExpr PadInnerLen, Boundary B,
                            ViewPtr Base) {
  auto V = makeView(View::Kind::Pad);
  V->PadLeft = std::move(PadLeft);
  V->PadInnerLen = std::move(PadInnerLen);
  V->Bdy = B;
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vTranspose(ViewPtr Base) {
  auto V = makeView(View::Kind::Transpose);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vAccess(AExpr Index, ViewPtr Base) {
  auto V = makeView(View::Kind::Access);
  V->Index = std::move(Index);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vTupleAccess(int Component, ViewPtr Base) {
  auto V = makeView(View::Kind::TupleAccess);
  V->Component = Component;
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vGenerate(LambdaPtr GenFun,
                                 std::vector<AExpr> GenSizes) {
  auto V = makeView(View::Kind::Generate);
  V->GenFun = std::move(GenFun);
  V->GenSizes = std::move(GenSizes);
  return V;
}

ViewPtr lift::codegen::vScalar(KExprPtr Val) {
  auto V = makeView(View::Kind::ScalarExpr);
  V->ScalarVal = std::move(Val);
  return V;
}

ViewPtr lift::codegen::vMapLazy(LambdaPtr MapFun, ViewPtr Base) {
  auto V = makeView(View::Kind::MapLazy);
  V->MapFun = std::move(MapFun);
  V->Base = std::move(Base);
  return V;
}

ViewPtr lift::codegen::vMapLazyFn(
    std::function<ViewPtr(const ViewPtr &)> Fn, ViewPtr Base) {
  auto V = makeView(View::Kind::MapLazyFn);
  V->MapViewFn = std::move(Fn);
  V->Base = std::move(Base);
  return V;
}

//===----------------------------------------------------------------------===//
// Resolution
//===----------------------------------------------------------------------===//

/// The symbolic equivalent of ir::resolveBoundaryIndex.
AExpr lift::codegen::boundaryIndexExpr(Boundary::Kind K, AExpr I, AExpr N) {
  switch (K) {
  case Boundary::Kind::Clamp:
    return clampIndex(std::move(I), std::move(N));
  case Boundary::Kind::Mirror: {
    // j = i mod 2n; min(j, 2n - 1 - j)
    AExpr TwoN = mul(cst(2), N);
    AExpr J = floorMod(std::move(I), TwoN);
    return amin(J, sub(sub(TwoN, cst(1)), J));
  }
  case Boundary::Kind::Wrap:
    return floorMod(std::move(I), std::move(N));
  case Boundary::Kind::Constant:
    break;
  }
  unreachable("constant boundary has no index function");
}

namespace {

/// The two LIFO stacks of the view resolution walk plus the constant-pad
/// bookkeeping accumulated along the way.
struct ResolveState {
  std::vector<AExpr> IdxStack;      ///< back = outermost pending index
  std::vector<int> TupleStack;      ///< back = innermost pending selection
  std::vector<BoundsCheck> Checks;  ///< constant-pad guards (outer first)
  std::vector<float> ConstVals;     ///< fallback value per guard
};

} // namespace

/// Wraps \p Inner in the accumulated constant-pad guards, innermost
/// first, so an out-of-bounds outer pad dominates an inner one. Each
/// guard carries its own constant, so nested constant pads with
/// different values compose correctly.
static KExprPtr guardWithChecks(const ResolveState &S, KExprPtr Inner,
                                bool IsInt) {
  KExprPtr Result = std::move(Inner);
  for (std::size_t I = S.Checks.size(); I-- > 0;) {
    Scalar C = IsInt ? Scalar(std::int32_t(S.ConstVals[I]))
                     : Scalar(S.ConstVals[I]);
    Result = kSelect({S.Checks[I]}, std::move(Result), kConst(C));
  }
  return Result;
}

/// Walks a view chain consuming the index stacks; returns the load
/// expression at a Memory / Generate / ScalarExpr root.
static KExprPtr resolveRec(const ViewPtr &V, ResolveState &S,
                           const ResolveCallbacks &CB) {
  switch (V->K) {
  case View::Kind::Access:
    S.IdxStack.push_back(V->Index);
    return resolveRec(V->Base, S, CB);

  case View::Kind::TupleAccess:
    S.TupleStack.push_back(V->Component);
    return resolveRec(V->Base, S, CB);

  case View::Kind::Split: {
    assert(S.IdxStack.size() >= 2 && "split view needs two applied indices");
    AExpr Outer = S.IdxStack.back();
    S.IdxStack.pop_back();
    AExpr Inner = S.IdxStack.back();
    S.IdxStack.pop_back();
    S.IdxStack.push_back(add(mul(Outer, V->ChunkSize), Inner));
    return resolveRec(V->Base, S, CB);
  }

  case View::Kind::Join: {
    assert(!S.IdxStack.empty() && "join view needs an applied index");
    AExpr K = S.IdxStack.back();
    S.IdxStack.pop_back();
    if (V->ClampMax) {
      // Clamped tile grid: element k lives in tile w = k/m at offset
      // k - start(w), start(w) = min(w*m, ClampMax). Tile k/m always
      // covers position k: overlap positions hold identical values in
      // every covering tile, so reading the canonical one is exact.
      AExpr W = floorDiv(K, V->InnerSize);
      S.IdxStack.push_back(sub(K, amin(mul(W, V->InnerSize), V->ClampMax)));
      S.IdxStack.push_back(W);
    } else {
      S.IdxStack.push_back(floorMod(K, V->InnerSize));
      S.IdxStack.push_back(floorDiv(K, V->InnerSize));
    }
    return resolveRec(V->Base, S, CB);
  }

  case View::Kind::Slide: {
    assert(S.IdxStack.size() >= 2 && "slide view needs two applied indices");
    AExpr Window = S.IdxStack.back();
    S.IdxStack.pop_back();
    AExpr Offset = S.IdxStack.back();
    S.IdxStack.pop_back();
    AExpr Start = V->ClampMax ? amin(mul(Window, V->Step), V->ClampMax)
                              : mul(Window, V->Step);
    S.IdxStack.push_back(add(std::move(Start), Offset));
    return resolveRec(V->Base, S, CB);
  }

  case View::Kind::Transpose: {
    assert(S.IdxStack.size() >= 2 &&
           "transpose view needs two applied indices");
    std::swap(S.IdxStack[S.IdxStack.size() - 1],
              S.IdxStack[S.IdxStack.size() - 2]);
    return resolveRec(V->Base, S, CB);
  }

  case View::Kind::Pad: {
    assert(!S.IdxStack.empty() && "pad view needs an applied index");
    AExpr I = S.IdxStack.back();
    S.IdxStack.pop_back();
    AExpr Shifted = sub(I, V->PadLeft);
    if (V->Bdy.K == Boundary::Kind::Constant) {
      S.Checks.push_back(BoundsCheck{Shifted, cst(0), V->PadInnerLen});
      S.ConstVals.push_back(V->Bdy.ConstVal);
      S.IdxStack.push_back(Shifted);
    } else {
      S.IdxStack.push_back(
          boundaryIndexExpr(V->Bdy.K, Shifted, V->PadInnerLen));
    }
    return resolveRec(V->Base, S, CB);
  }

  case View::Kind::Tuple: {
    assert(!S.TupleStack.empty() && "tuple view needs a selection");
    int C = S.TupleStack.back();
    S.TupleStack.pop_back();
    assert(std::size_t(C) < V->Comps.size() && "tuple component range");
    return resolveRec(V->Comps[std::size_t(C)], S, CB);
  }

  case View::Kind::Memory: {
    // Linearize the pending indices (outermost on top) row-major
    // through the buffer's logical array type. Seeding Flat with the
    // outermost index (instead of cst(0)) keeps the expression the
    // canonical interned form without an add/mul round trip through
    // the arena per dimension.
    AExpr Flat;
    TypePtr T = V->MemType;
    while (T->getKind() == Type::Kind::Array) {
      assert(!S.IdxStack.empty() && "not enough indices for memory view");
      AExpr I = S.IdxStack.back();
      S.IdxStack.pop_back();
      Flat = Flat ? add(mul(std::move(Flat), T->getSize()), std::move(I))
                  : std::move(I);
      T = T->getElem();
    }
    if (!Flat)
      Flat = cst(0); // zero-dimensional buffer: a single scalar cell
    assert(T->getKind() == Type::Kind::Scalar &&
           "memory views hold scalar-element arrays");
    assert(S.IdxStack.empty() && S.TupleStack.empty() &&
           "leftover indices after memory resolution");
    KExprPtr Load = kLoad(V->BufferId, Flat);
    return guardWithChecks(S, std::move(Load),
                           T->getScalarKind() == ScalarKind::Int);
  }

  case View::Kind::Generate: {
    assert(S.IdxStack.size() == V->GenSizes.size() &&
           "generate view arity mismatch");
    assert(CB.InlineGenerate && "generate view needs an inliner");
    // Pop indices outermost-first to match the generator's parameters.
    std::vector<AExpr> Indices;
    for (std::size_t I = 0, E = V->GenSizes.size(); I != E; ++I) {
      Indices.push_back(S.IdxStack.back());
      S.IdxStack.pop_back();
    }
    KExprPtr Val = CB.InlineGenerate(V->GenFun, Indices);
    // A generated value under a constant pad is guarded like a load.
    // The generator's element kind comes from its inferred body type.
    const TypePtr &GenTy = V->GenFun->getType();
    bool IsInt = GenTy && GenTy->getKind() == Type::Kind::Scalar &&
                 GenTy->getScalarKind() == ScalarKind::Int;
    return guardWithChecks(S, std::move(Val), IsInt);
  }

  case View::Kind::ScalarExpr:
    assert(S.IdxStack.empty() && S.TupleStack.empty() &&
           "scalar view with leftover indices");
    assert(S.Checks.empty() && "scalar view under constant pad");
    return V->ScalarVal;

  case View::Kind::MapLazy: {
    assert(!S.IdxStack.empty() && "map view needs an applied index");
    if (!CB.ExpandMap)
      fatalError("layout-only map reached store resolution");
    AExpr I = S.IdxStack.back();
    S.IdxStack.pop_back();
    ViewPtr Expanded = CB.ExpandMap(V->MapFun, vAccess(I, V->Base));
    return resolveRec(Expanded, S, CB);
  }

  case View::Kind::MapLazyFn: {
    assert(!S.IdxStack.empty() && "map view needs an applied index");
    AExpr I = S.IdxStack.back();
    S.IdxStack.pop_back();
    ViewPtr Expanded = V->MapViewFn(vAccess(I, V->Base));
    return resolveRec(Expanded, S, CB);
  }
  }
  unreachable("covered switch");
}

KExprPtr lift::codegen::resolveLoad(const ViewPtr &V,
                                    const ResolveCallbacks &CB) {
  ResolveState S;
  return resolveRec(V, S, CB);
}

StoreTarget lift::codegen::resolveStore(const ViewPtr &V,
                                        const ResolveCallbacks &CB) {
  ResolveState S;
  KExprPtr E = resolveRec(V, S, CB);
  if (E->K != KExpr::Kind::Load)
    fatalError("output view did not resolve to a plain memory location");
  return StoreTarget{E->BufferId, E->Index};
}
