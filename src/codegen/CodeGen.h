//===- CodeGen.h - Low-level Lift IR to kernel AST -------------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a *low-level* Lift program (parallelism mapped with
/// mapGlb/mapWrg/mapLcl/mapSeq, reductions sequentialized, address
/// spaces chosen) into an imperative Kernel:
///
///  * data-layout primitives become views and vanish into index
///    arithmetic (paper §5);
///  * map-family primitives become loops over the corresponding id
///    space;
///  * reduceSeq becomes an accumulator register and a sequential loop
///    (reduceSeqUnroll marks the loop for unrolling, paper §4.3);
///  * lambdas carrying a Local/Private address space materialize their
///    result into local/private buffers with a barrier after local
///    writes (paper §4.2).
///
/// High-level primitives (map, reduce, iterate) are rejected: the
/// rewrite engine must lower them first.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CODEGEN_CODEGEN_H
#define LIFT_CODEGEN_CODEGEN_H

#include "ir/Expr.h"
#include "ocl/KernelAst.h"

namespace lift {
namespace codegen {

/// The result of compiling a program: the kernel plus the buffer ids of
/// the program inputs (in parameter order) and the output.
struct Compiled {
  ocl::Kernel K;
  std::vector<int> InputBufferIds;
  int OutputBufferId = -1;
};

/// Compiles low-level program \p P into a kernel named \p Name. Runs
/// type inference on \p P if needed. Fatal on high-level primitives.
Compiled compileProgram(const ir::Program &P, const std::string &Name);

} // namespace codegen
} // namespace lift

#endif // LIFT_CODEGEN_CODEGEN_H
