//===- View.h - Lift views: data layout as index arithmetic ----*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Views implement the paper's key compilation idea (§5): the
/// data-layout primitives `split`, `join`, `slide`, `pad`, `transpose`,
/// `zip`, `at` and `get` perform no data movement. Each is a View node
/// that transforms *index expressions*; when the generated code finally
/// reads (or writes) a scalar, the view chain is folded into a single
/// flat ArithExpr index into the underlying buffer:
///
///   "Slide guides accesses to elements in a neighborhood to the
///    original array, so that accesses to the same element in different
///    neighborhoods result in memory accesses from the same physical
///    location."
///
/// The same machinery resolves output positions: the inverse transforms
/// of `join`/`split`/`transpose` appear on the output path (e.g. the
/// overlapped-tiling rule wraps the producer in `join`), so a store
/// through Split(m)[w][l] lands at w*m+l.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CODEGEN_VIEW_H
#define LIFT_CODEGEN_VIEW_H

#include "ir/Expr.h"
#include "ocl/KernelAst.h"

#include <functional>
#include <memory>
#include <vector>

namespace lift {
namespace codegen {

class View;
using ViewPtr = std::shared_ptr<const View>;

/// A node in a view chain. Chains are built outside-in: the node
/// holding the most recently applied operation wraps (points to) its
/// base view, terminating in Memory / Generate / ScalarExpr roots.
class View {
public:
  enum class Kind {
    Memory,      ///< a buffer holding an array of the recorded type
    Tuple,       ///< zip: component array views, selected by TupleAccess
    Split,       ///< [i][j] -> base[i*m + j]
    Join,        ///< [k] -> base[k / m][k % m]
    Slide,       ///< [w][j] -> base[w*step + j]
    Pad,         ///< [i] -> base[h(i - l, n)] or bounds-checked constant
    Transpose,   ///< [i][j] -> base[j][i]
    Access,      ///< an applied array index
    TupleAccess, ///< an applied tuple component selection
    Generate,    ///< array materialized on the fly from an index function
    ScalarExpr,  ///< a scalar kernel expression (register, literal, ...)
    MapLazy,     ///< a layout-only map, beta-reduced during resolution
    MapLazyFn,   ///< like MapLazy, but the element transform is a C++
                 ///< view function (used for inverted output layouts)
  };

  Kind K;
  ViewPtr Base;                  ///< all but Memory/Generate/ScalarExpr/Tuple
  std::vector<ViewPtr> Comps;    ///< Tuple
  int BufferId = -1;             ///< Memory
  ir::TypePtr MemType;           ///< Memory: logical array type (row-major)
  AExpr ChunkSize;               ///< Split m
  AExpr InnerSize;               ///< Join m
  AExpr Size, Step;              ///< Slide
  /// Clamped variants (remainder tiles): when set on a Slide, window w
  /// starts at min(w*step, ClampMax) instead of w*step; when set on a
  /// Join, tile w starts at min(w*m, ClampMax) and element [k] maps to
  /// base[k / m][k - min((k / m)*m, ClampMax)].
  AExpr ClampMax;
  AExpr PadLeft, PadInnerLen;    ///< Pad: l and the unpadded length n
  ir::Boundary Bdy;              ///< Pad
  AExpr Index;                   ///< Access
  int Component = 0;             ///< TupleAccess
  ir::LambdaPtr GenFun;          ///< Generate
  std::vector<AExpr> GenSizes;   ///< Generate
  ocl::KExprPtr ScalarVal;       ///< ScalarExpr
  ir::LambdaPtr MapFun;          ///< MapLazy
  std::function<ViewPtr(const ViewPtr &)> MapViewFn; ///< MapLazyFn
};

ViewPtr vMemory(int BufferId, ir::TypePtr MemType);
ViewPtr vTuple(std::vector<ViewPtr> Comps);
ViewPtr vSplit(AExpr ChunkSize, ViewPtr Base);
ViewPtr vJoin(AExpr InnerSize, ViewPtr Base);
ViewPtr vSlide(AExpr Size, AExpr Step, ViewPtr Base);
/// Slide with clamped window starts: window w covers
/// base[min(w*step, ClampMax) + j]. ClampMax is n - size, so the last
/// window is shifted left to stay in bounds (remainder tiles).
ViewPtr vSlideClamped(AExpr Size, AExpr Step, AExpr ClampMax, ViewPtr Base);
/// Join of a clamped tile grid: element [k] maps to
/// base[w][k - min(w*m, ClampMax)] with w = k / m and ClampMax = out - m.
ViewPtr vJoinClamped(AExpr InnerSize, AExpr ClampMax, ViewPtr Base);
ViewPtr vPad(AExpr PadLeft, AExpr PadInnerLen, ir::Boundary B, ViewPtr Base);
ViewPtr vTranspose(ViewPtr Base);
ViewPtr vAccess(AExpr Index, ViewPtr Base);
ViewPtr vTupleAccess(int Component, ViewPtr Base);
ViewPtr vGenerate(ir::LambdaPtr GenFun, std::vector<AExpr> GenSizes);
ViewPtr vScalar(ocl::KExprPtr Val);
/// A high-level map whose body contains only layout operations, e.g.
/// the map(slide)/map(transpose) compositions inside slideNd (paper
/// §3.4). It is expanded lazily during resolution: accessing element i
/// beta-reduces the lambda with its parameter viewing Base[i].
ViewPtr vMapLazy(ir::LambdaPtr MapFun, ViewPtr Base);

/// Like vMapLazy with a C++ element-view transformer instead of an IR
/// lambda. The code generator uses this to push *inverted* element
/// layouts (split/join/transpose) onto output views, so reshaping maps
/// around a producer (e.g. untileNd after the tiling rule) cost nothing.
ViewPtr vMapLazyFn(std::function<ViewPtr(const ViewPtr &)> Fn, ViewPtr Base);

/// Inlines a Generate lambda at concrete symbolic indices, producing
/// the scalar kernel expression of the generated element. Provided by
/// the code generator (it owns scalar expression generation).
using GenerateInliner = std::function<ocl::KExprPtr(
    const ir::LambdaPtr &, const std::vector<AExpr> &)>;

/// Builds the view of a MapLazy body with the map parameter bound to
/// the given element view. Provided by the code generator (it owns the
/// view environment).
using MapExpander =
    std::function<ViewPtr(const ir::LambdaPtr &, const ViewPtr &)>;

/// Callbacks the resolver needs for views that reference IR lambdas.
struct ResolveCallbacks {
  GenerateInliner InlineGenerate;
  MapExpander ExpandMap;
};

/// The symbolic twin of ir::resolveBoundaryIndex: maps a possibly
/// out-of-range index \p I into [0, N) for the Clamp / Mirror / Wrap
/// boundary kinds. Exposed so property tests can sweep it against the
/// concrete resolver over every sign convention edge (negative and
/// overshooting indices go through floorMod/floorDiv). Constant has no
/// index function and is rejected.
AExpr boundaryIndexExpr(ir::Boundary::Kind K, AExpr I, AExpr N);

/// Folds a fully-applied (scalar) view chain into a load expression:
/// a single buffer access with a flat index, possibly wrapped in a
/// bounds-checked Select for constant padding, or an inlined Generate /
/// scalar expression.
ocl::KExprPtr resolveLoad(const ViewPtr &V, const ResolveCallbacks &CB);

/// Folds a fully-applied (scalar) view chain into a store target.
/// Output views contain no pads/generates; violations are fatal.
struct StoreTarget {
  int BufferId;
  AExpr Index;
};
StoreTarget resolveStore(const ViewPtr &V,
                         const ResolveCallbacks &CB = ResolveCallbacks());

} // namespace codegen
} // namespace lift

#endif // LIFT_CODEGEN_VIEW_H
