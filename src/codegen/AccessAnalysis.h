//===- AccessAnalysis.h - Static memory-access analysis --------*- C++ -*-===//
//
// Part of the liftcpp project, a C++ reproduction of "High Performance
// Stencil Code Generation with Lift" (CGO 2018).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static coalescing analysis over generated kernels. For every global
/// load/store site, the per-lane stride is computed by symbolically
/// probing the index expression along the fastest-varying parallel
/// dimension (global/local id 0): consecutive work-items with stride 1
/// coalesce into single memory transactions, larger strides split them,
/// and lane-invariant indices broadcast. GPU coalescing is one of the
/// "hardware details" the paper's introduction lists as requiring
/// expert care; this pass makes the property of generated kernels
/// checkable (and is used by tests to assert that the code generator's
/// dimension assignment keeps row-major stencils coalesced).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_CODEGEN_ACCESSANALYSIS_H
#define LIFT_CODEGEN_ACCESSANALYSIS_H

#include "ocl/Sim.h"

#include <string>
#include <vector>

namespace lift {
namespace codegen {

/// Classification of one access site along the lane dimension.
enum class AccessPattern {
  Coalesced, ///< stride 1: consecutive lanes, consecutive elements
  Uniform,   ///< stride 0: all lanes read the same element (broadcast)
  Strided,   ///< constant stride > 1: transactions split
  Irregular, ///< non-affine in the lane id (e.g. boundary clamping)
  Sequential ///< not indexed by any parallel id (inside one work-item)
};

const char *accessPatternName(AccessPattern P);

/// One global-memory access site in a kernel.
struct AccessSite {
  bool IsStore = false;
  int BufferId = -1;
  std::string BufferName;
  AExpr Index;
  /// Elements between lane i and lane i+1 (valid for Coalesced/
  /// Uniform/Strided).
  std::int64_t Stride = 0;
  AccessPattern Pattern = AccessPattern::Sequential;
};

/// Summary of a kernel's global access behavior.
struct AccessReport {
  std::vector<AccessSite> Sites;

  int count(AccessPattern P) const;
  /// True when no site is Strided or Irregular along the lane dim.
  bool fullyCoalesced() const;
};

/// Analyzes the global-memory accesses of \p K with concrete \p Sizes
/// (sizes are needed to evaluate strides through row-major
/// linearization). Local/private accesses are ignored.
AccessReport analyzeAccesses(const ocl::Kernel &K,
                             const ocl::SizeEnv &Sizes);

/// Statically derived work of one loop-nest region, counted over the
/// full iteration space with concrete sizes (the per-region
/// denominators of the native profiler's roofline report).
struct RegionWork {
  std::uint64_t Iterations = 0;   ///< trip count of the region's root loop
  std::uint64_t BytesRead = 0;    ///< global-memory bytes loaded
  std::uint64_t BytesWritten = 0; ///< global-memory bytes stored
  std::uint64_t Flops = 0;        ///< user-function applications, weighted
                                  ///< by UserFun::getFlopCost()
};

/// Counts the static work under \p RegionRoot (a loop of \p K,
/// possibly nested — enclosing loop trip counts multiply in). Only
/// global-space accesses count toward bytes: local/private staging
/// traffic is deliberately excluded so arithmetic intensity is
/// DRAM-relative, the roofline convention. Both scalar kinds are 4
/// bytes. For bounds-checked Select expressions the then-branch (the
/// in-bounds load) is counted on every lane — an over-approximation at
/// edges that is exact in the interior. Loop counts that cannot be
/// evaluated under \p Sizes contribute zero.
RegionWork staticRegionWork(const ocl::Kernel &K,
                            const ocl::Stmt &RegionRoot,
                            const ocl::SizeEnv &Sizes);

} // namespace codegen
} // namespace lift

#endif // LIFT_CODEGEN_ACCESSANALYSIS_H
