//===- Lowering.cpp - High-level to OpenCL-level lowering ---------------------===//
//
// Part of the liftcpp project.
//
//===----------------------------------------------------------------------===//

#include "rewrite/Lowering.h"

#include "ir/TypeInference.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "stencil/StencilOps.h"
#include "support/Support.h"

#include <cassert>

using namespace lift;
using namespace lift::ir;
using namespace lift::rewrite;
using lift::stencil::mapAtDepth;
using lift::stencil::slideNd;

std::string LoweringOptions::describe() const {
  std::string S;
  if (Tile) {
    S = "tiled" + std::to_string(TileOutputs);
    if (UseLocalMem)
      S += "-local";
    if (TileCoarsen > 1)
      S += "-coarsen" + std::to_string(TileCoarsen);
  } else {
    S = "global";
    if (Coarsen > 1)
      S += "-coarsen" + std::to_string(Coarsen);
  }
  if (UnrollReduce)
    S += "-unroll";
  return S;
}

namespace {

LambdaPtr cloneLambda(const LambdaPtr &F) {
  return std::static_pointer_cast<LambdaExpr>(
      deepClone(std::static_pointer_cast<Expr>(F)));
}

/// Builds an n-deep nest of the given map primitive over \p In,
/// applying \p F at the innermost level. Depth d maps to OpenCL
/// dimension n-1-d so the innermost (contiguous) array dimension rides
/// on id dimension 0 for coalescing. \p InnerCoarsen > 1 makes each
/// innermost-dimension thread compute several points sequentially.
ExprPtr buildMapNest(unsigned N, Prim MapKind, const LambdaPtr &F,
                     ExprPtr In, std::int64_t InnerCoarsen = 1,
                     unsigned Depth = 0) {
  int Dim = int(N - 1 - Depth);
  assert(Dim >= 0 && Dim < 3 && "stencils are at most 3D");
  if (Depth == N - 1) {
    if (InnerCoarsen > 1) {
      LambdaPtr PerChunk = lam("chunk", [&](ExprPtr Chunk) {
        return mapSeq(cloneLambda(F), Chunk);
      });
      return join(makeMapLike(MapKind, Dim, PerChunk,
                              split(cst(InnerCoarsen), std::move(In))));
    }
    return makeMapLike(MapKind, Dim, F, std::move(In));
  }
  LambdaPtr Level = lam("lvl" + std::to_string(Depth), [&](ExprPtr X) {
    return buildMapNest(N, MapKind, F, std::move(X), InnerCoarsen,
                        Depth + 1);
  });
  return makeMapLike(MapKind, Dim, Level, std::move(In));
}

/// Innermost-dimension thread coarsening:
/// join(mapGlb(0, chunk => mapSeq(f, chunk), split(c, in))).
ExprPtr buildCoarsenedInner(const LambdaPtr &F, ExprPtr In,
                            std::int64_t Coarsen) {
  LambdaPtr PerChunk = lam("chunk", [&](ExprPtr Chunk) {
    return mapSeq(cloneLambda(F), Chunk);
  });
  return join(mapGlb(0, PerChunk, split(cst(Coarsen), std::move(In))));
}

/// Untiled lowering of an n-dim map nest onto global ids, optionally
/// coarsened along the innermost dimension.
ExprPtr buildGlbNest(unsigned N, const LambdaPtr &F, ExprPtr In,
                     std::int64_t Coarsen, unsigned Depth = 0) {
  if (Depth == N - 1) {
    if (Coarsen > 1)
      return buildCoarsenedInner(F, std::move(In), Coarsen);
    return mapGlb(0, F, std::move(In));
  }
  int Dim = int(N - 1 - Depth);
  LambdaPtr Level = lam("lvl" + std::to_string(Depth), [&](ExprPtr X) {
    return buildGlbNest(N, F, std::move(X), Coarsen, Depth + 1);
  });
  return makeMapLike(Prim::MapGlb, Dim, Level, std::move(In));
}

/// A cooperative copy of an n-dim tile into local memory: nested mapLcl
/// loops of the identity with the outermost lambda marked toLocal.
ExprPtr buildLocalCopy(unsigned N, ExprPtr Tile, unsigned Depth = 0) {
  int Dim = int(N - 1 - Depth);
  if (Depth == N - 1) {
    LambdaPtr Id = etaLambda(ufIdFloat());
    if (Depth == 0)
      Id = toLocal(Id);
    return mapLcl(Dim, Id, std::move(Tile));
  }
  LambdaPtr Level = lam("cpy" + std::to_string(Depth), [&](ExprPtr X) {
    return buildLocalCopy(N, std::move(X), Depth + 1);
  });
  if (Depth == 0)
    Level = toLocal(Level);
  return makeMapLike(Prim::MapLcl, Dim, Level, std::move(Tile));
}

/// Merges a tiled result of shape [t0]..[t_{n-1}][v0]..[v_{n-1}] back
/// into the flat n-dim grid [t0*v0]..: the multi-dimensional inverse of
/// the tiling rule's join (paper §4.1, Figure 6). Interleaves tile and
/// intra-tile dimensions with transposes, then joins each pair.
ExprPtr untileNd(unsigned N, ExprPtr E) {
  if (N == 1)
    return join(std::move(E));
  // Track dimension order: 0..N-1 are tile-grid dims, N..2N-1 are
  // intra-tile dims. Bring each vi right after ti by adjacent swaps.
  std::vector<unsigned> Order;
  for (unsigned I = 0; I != 2 * N; ++I)
    Order.push_back(I);
  for (unsigned I = 0; I != N; ++I) {
    unsigned Target = 2 * I + 1;
    unsigned Pos = 0;
    while (Order[Pos] != N + I)
      ++Pos;
    while (Pos > Target) {
      // Swap positions Pos-1 and Pos == transpose at depth Pos-1.
      E = mapAtDepth(
          Pos - 1, [](ExprPtr X) { return transpose(std::move(X)); }, E);
      std::swap(Order[Pos - 1], Order[Pos]);
      --Pos;
    }
  }
  // Join each (ti, vi) pair; after joining pair i, it occupies one
  // dimension at depth i.
  for (unsigned I = 0; I != N; ++I)
    E = mapAtDepth(I, [](ExprPtr X) { return join(std::move(X)); }, E);
  return E;
}

/// Rebuilds a call with new arguments, copying payload fields.
ExprPtr rebuildCallArgs(const CallExpr &C, std::vector<ExprPtr> Args) {
  auto NC = std::make_shared<CallExpr>(C.getPrim(), std::move(Args));
  NC->UF = C.UF;
  NC->Dim = C.Dim;
  NC->Factor = C.Factor;
  NC->Size = C.Size;
  NC->Step = C.Step;
  NC->PadL = C.PadL;
  NC->PadR = C.PadR;
  NC->Bdy = C.Bdy;
  NC->Index = C.Index;
  NC->IterCount = C.IterCount;
  NC->GenSizes = C.GenSizes;
  return NC;
}

/// Replaces embedded high-level compute map nests (e.g. the inner
/// applications produced by expanding `iterate`) with untiled lowered
/// nests. The code generator then materializes each lowered phase into
/// a global temporary read by the next phase — the multi-phase
/// execution the paper's `iterate` implies (§3.1).
ExprPtr lowerEmbeddedNests(const ExprPtr &E) {
  if (E->getKind() == Expr::Kind::Lambda) {
    const auto *L = dynCast<LambdaExpr>(E);
    ExprPtr NewBody = lowerEmbeddedNests(L->getBody());
    if (NewBody.get() == L->getBody().get())
      return E;
    return lambda(L->getParams(), std::move(NewBody), L->getAddrSpace());
  }
  const auto *C = dynCast<CallExpr>(E);
  if (!C)
    return E;

  // An embedded high-level compute map nest: lower it (untiled).
  if (C->getPrim() == Prim::Map) {
    const auto F = std::static_pointer_cast<LambdaExpr>(C->getArgs()[0]);
    if (!isLayoutOnly(F->getBody())) {
      std::optional<MapNdMatch> M = matchMapNd(E);
      if (M && M->Dims <= 3) {
        ExprPtr Input = lowerEmbeddedNests(M->Input);
        return buildGlbNest(M->Dims, M->F, Input, /*Coarsen=*/1);
      }
    }
  }

  std::vector<ExprPtr> NewArgs;
  bool Changed = false;
  for (const ExprPtr &A : C->getArgs()) {
    ExprPtr NA = lowerEmbeddedNests(A);
    Changed |= NA.get() != A.get();
    NewArgs.push_back(std::move(NA));
  }
  if (!Changed)
    return E;
  return rebuildCallArgs(*C, std::move(NewArgs));
}

/// Records \p Reason for the caller (when requested) and returns the
/// null program, so every bail-out site carries a diagnostic.
Program lowerFail(std::string *WhyNot, const std::string &Reason) {
  if (WhyNot)
    *WhyNot = Reason;
  return nullptr;
}

/// The actual lowering; the public entry point wraps it with a trace
/// span and success/failure counters.
Program lowerStencilImpl(const Program &P, const LoweringOptions &O,
                         std::string *WhyNot) {
  Program Copy = cloneProgram(P);

  // Expand any iterate into repeated application first.
  int Dummy = 0;
  ExprPtr Body = applyEverywhere(iterateExpandRule(), Copy->getBody(), Dummy);

  std::optional<MapNdMatch> M = matchMapNd(Body);
  if (!M)
    return lowerFail(WhyNot, "program is not a mapNd nest over its input");
  if (M->Dims > 3)
    return lowerFail(WhyNot, "mapNd nests beyond 3 dimensions are unsupported (got " +
                                 std::to_string(M->Dims) + ")");
  unsigned N = M->Dims;

  // Inner stencil phases (from iterate expansion or explicit chains)
  // become lowered nests materialized into global temporaries.
  M->Input = lowerEmbeddedNests(M->Input);

  ExprPtr Lowered;
  if (O.Tile) {
    AExpr V = cst(O.TileOutputs);

    // Single-grid shape: mapNd(f, slideNd(size, step, inner)).
    if (std::optional<SlideNdMatch> S = matchSlideNd(M->Input)) {
      if (S->Dims != N)
        return lowerFail(WhyNot,
                         "slideNd dimensionality does not match the mapNd nest");
      // Tile extent u = v + (size - step), the §4.1 validity constraint.
      AExpr U = add(V, sub(S->Size, S->Step));
      ExprPtr Tiles = slideNd(N, U, V, S->Inner);

      LambdaPtr F = M->F;
      auto SizeE = S->Size;
      auto StepE = S->Step;
      bool Local = O.UseLocalMem;
      std::int64_t TC = O.TileCoarsen;
      LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
        ExprPtr Staged = Local ? buildLocalCopy(N, Tile) : Tile;
        return buildMapNest(N, Prim::MapLcl, cloneLambda(F),
                            slideNd(N, SizeE, StepE, std::move(Staged)),
                            TC);
      });
      Lowered = untileNd(N, buildMapNest(N, Prim::MapWrg, PerTile, Tiles));
    } else if (std::optional<ZipNdMatch> Z = matchZipNd(M->Input, N)) {
      // Multi-grid shape: mapNd(f, zipNd(comps)). Components that are
      // themselves slideNd neighborhoods get overlapping tiles of
      // extent u (optionally staged in local memory); point-wise
      // components get exact tiles of extent v. The per-tile zips line
      // up because both produce v^n outputs per tile.
      std::vector<bool> IsSlided;
      std::vector<ExprPtr> TiledComps;
      AExpr SizeE, StepE;
      for (const ExprPtr &Comp : Z->Comps) {
        if (std::optional<SlideNdMatch> CS = matchSlideNd(Comp)) {
          if (CS->Dims != N)
            return lowerFail(
                WhyNot, "zip component slideNd dimensionality does not match "
                        "the mapNd nest");
          if (SizeE && (!exprEquals(SizeE, CS->Size) ||
                        !exprEquals(StepE, CS->Step)))
            return lowerFail(
                WhyNot,
                "mixed window geometries are unsupported: slide(" +
                    SizeE->toString() + ", " + StepE->toString() +
                    ") vs slide(" + CS->Size->toString() + ", " +
                    CS->Step->toString() + ")");
          SizeE = CS->Size;
          StepE = CS->Step;
          AExpr U = add(V, sub(CS->Size, CS->Step));
          TiledComps.push_back(slideNd(N, U, V, CS->Inner));
          IsSlided.push_back(true);
          continue;
        }
        TiledComps.push_back(slideNd(N, V, V, Comp));
        IsSlided.push_back(false);
      }
      if (!SizeE)
        return lowerFail(WhyNot,
                         "tiling requested but no zip component is a slideNd "
                         "neighborhood: nothing to tile");

      LambdaPtr F = M->F;
      bool Local = O.UseLocalMem;
      std::int64_t TC = O.TileCoarsen;
      LambdaPtr PerTile = lam("tile", [&](ExprPtr Tile) {
        std::vector<ExprPtr> Parts;
        for (std::size_t I = 0, E2 = IsSlided.size(); I != E2; ++I) {
          ExprPtr Part = get(int(I), Tile);
          if (IsSlided[I]) {
            if (Local)
              Part = buildLocalCopy(N, std::move(Part));
            Part = slideNd(N, SizeE, StepE, std::move(Part));
          }
          Parts.push_back(std::move(Part));
        }
        return buildMapNest(N, Prim::MapLcl, cloneLambda(F),
                            lift::stencil::zipNd(N, std::move(Parts)), TC);
      });
      Lowered = untileNd(
          N, buildMapNest(N, Prim::MapWrg, PerTile,
                          lift::stencil::zipNd(N, std::move(TiledComps))));
    } else {
      return lowerFail(WhyNot,
                       "tiling requested but the input is neither a slideNd "
                       "neighborhood nor a zipNd of grids");
    }
  } else {
    Lowered = buildGlbNest(N, M->F, M->Input, O.Coarsen);
  }

  // Sequentialize all remaining high-level compute: reductions and any
  // compute maps inside the stencil function.
  Lowered = applyEverywhere(reduceToSeqRule(), Lowered, Dummy);
  Lowered = applyEverywhere(mapToSeqRule(), Lowered, Dummy);

  Program Result = makeProgram(Copy->getParams(), Lowered);
  inferTypes(Result);

  if (O.UnrollReduce) {
    int Unrolled = 0;
    ExprPtr NewBody =
        applyEverywhere(reduceUnrollRule(), Result->getBody(), Unrolled);
    Result = makeProgram(Result->getParams(), NewBody);
    inferTypes(Result);
  }
  return Result;
}

} // namespace

Program lift::rewrite::lowerStencil(const Program &P, const LoweringOptions &O,
                                    std::string *WhyNot) {
  obs::Span LowerSpan("lower", "rewrite");
  LowerSpan.arg("variant", O.describe());
  Program Result = lowerStencilImpl(P, O, WhyNot);
  obs::Registry &Reg = obs::Registry::global();
  if (Result)
    Reg.counter("rewrite.lowerings").inc();
  else
    Reg.counter("rewrite.lowerings_failed").inc();
  LowerSpan.arg("ok", std::int64_t(Result ? 1 : 0));
  return Result;
}
